// Package horse_test holds the benchmark harness: one bench per experiment
// in DESIGN.md's index (the tables of EXPERIMENTS.md). The harness in
// internal/experiments produces the full report (`go run ./cmd/horsebench`);
// these testing.B benches time the underlying simulation kernels so
// `go test -bench=. -benchmem` tracks regressions per experiment.
package horse_test

import (
	"context"
	"fmt"
	"testing"

	"horse"
	"horse/internal/experiments"
)

// BenchmarkE1PolicyCoexistence times the Figure-1 all-policies scenario.
func BenchmarkE1PolicyCoexistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E1PolicyCoexistence()
	}
}

// BenchmarkE2ScaleSwitches times one fabric-size point of the scalability
// sweep (32 hosts, ~1000 flows).
func BenchmarkE2ScaleSwitches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2Scale([]int{8}, nil)
	}
}

// BenchmarkE2ScaleFlows times one flow-count point of the scalability
// sweep (λ=2000 on the fixed 8-leaf fabric).
func BenchmarkE2ScaleFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2Scale(nil, []float64{2000})
	}
}

// BenchmarkE3FlowLevel times the flow-level side of the accuracy scenarios.
func BenchmarkE3FlowLevel(b *testing.B) {
	topo := horse.LeafSpine(3, 2, 3, horse.Gig, horse.TenGig)
	gen := horse.NewGenerator(21)
	tr := gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 30, Horizon: horse.Second,
		Sizes: horse.FixedSize(4e6), TCPFraction: 0.5, CBRRateBps: 2e7,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t2 := horse.LeafSpine(3, 2, 3, horse.Gig, horse.TenGig)
		eng, err := horse.New(t2,
			horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
			horse.WithMiss(horse.MissController),
		)
		if err != nil {
			b.Fatal(err)
		}
		eng.Load(retarget(tr))
		b.StartTimer()
		if _, err := eng.Run(context.Background(), horse.Time(2*horse.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3PacketLevel times the packet-level side of the same scenario.
func BenchmarkE3PacketLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo := horse.LeafSpine(3, 2, 3, horse.Gig, horse.TenGig)
		gen := horse.NewGenerator(21)
		tr := gen.PoissonArrivals(horse.PoissonConfig{
			Hosts: topo.Hosts(), Lambda: 30, Horizon: horse.Second,
			Sizes: horse.FixedSize(4e6), TCPFraction: 0.5, CBRRateBps: 2e7,
		})
		eng, err := horse.New(topo, horse.WithFidelity(horse.Packet), horse.WithMiss(horse.MissDrop))
		if err != nil {
			b.Fatal(err)
		}
		horse.InstallMACRoutes(eng.Network())
		eng.Load(tr)
		b.StartTimer()
		if _, err := eng.Run(context.Background(), horse.Time(2*horse.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// retarget deep-copies a trace (flows carry no per-run state, but reusing
// the identical slice keeps the benches honest about per-run setup).
func retarget(tr horse.Trace) horse.Trace {
	out := make(horse.Trace, len(tr))
	copy(out, tr)
	return out
}

// BenchmarkE4IXPReplay times a 6-hour replay on a 100-member fabric.
func BenchmarkE4IXPReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E4IXPReplay([]int{100}, 6)
	}
}

// BenchmarkE5ConfigSweep times the full policy-configuration sweep.
func BenchmarkE5ConfigSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E5ConfigSweep()
	}
}

// BenchmarkE6EventQueue and BenchmarkE6FairShare time the ablation suite
// (both axes are produced by the same harness).
func BenchmarkE6EventQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E6Ablations()
	}
}

// BenchmarkE7FidelitySweep times the full hybrid fidelity sweep (reference
// packet run plus the 0/50/100% arms).
func BenchmarkE7FidelitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E7HybridFidelity([]float64{0, 0.5, 1})
	}
}

// BenchmarkE7HybridHalf times a single 50%-fidelity hybrid run — the
// steady-state cost of the coupled engines, without the sweep harness.
func BenchmarkE7HybridHalf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E7HybridFidelity([]float64{0.5})
	}
}

// BenchmarkE8Resilience times one resilience arm (both policies under a
// 500ms-MTBF failure process plus their failure-free baselines).
func BenchmarkE8Resilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E8Resilience(
			[]horse.Duration{500 * horse.Millisecond},
			[]horse.Duration{200 * horse.Millisecond},
		)
	}
}

// benchE9 times one packet-level fat-tree run at a shard count; the
// BenchmarkE9Sharded/K=N variants divide out as the speedup curve
// (compare ns/op across K — on a multi-core machine K=4 should run the
// same event population >1.5× faster than K=1).
func benchE9(b *testing.B, shards int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo := horse.FatTree(4, horse.Gig)
		gen := horse.NewGenerator(101)
		tr := gen.PoissonArrivals(horse.PoissonConfig{
			Hosts: topo.Hosts(), Lambda: 40 * float64(len(topo.Hosts())),
			Horizon: 200 * horse.Millisecond,
			Sizes:   horse.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 2e7,
		})
		eng, err := horse.New(topo,
			horse.WithFidelity(horse.Packet), horse.WithMiss(horse.MissDrop),
			horse.WithShards(shards),
		)
		if err != nil {
			b.Fatal(err)
		}
		horse.InstallMACRoutes(eng.Network())
		eng.Load(tr)
		b.StartTimer()
		if _, err := eng.Run(context.Background(), horse.Time(2*horse.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Sharded is the E9 scaling matrix: the identical event
// population at K ∈ {1, 2, 4}.
func BenchmarkE9Sharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("K=%d", shards), func(b *testing.B) { benchE9(b, shards) })
	}
}

// BenchmarkMillionFlowRecordSink times the bounded-memory streaming path
// at the paper's headline scale — one million flows through the flow
// engine with a record sink — once per event-queue backend. The wheel's
// O(1) schedule/cancel targets exactly this profile: every arrival
// re-arms completion timers, and cancellation keeps the queue population
// at live flows instead of accumulating gen-stamped corpses.
func BenchmarkMillionFlowRecordSink(b *testing.B) {
	backends := []horse.EventQueue{
		horse.EventQueueHeap, horse.EventQueueCalendar, horse.EventQueueWheel,
	}
	for _, q := range backends {
		q := q
		b.Run(q.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				const n = 1_000_000
				topo := horse.Star(4, horse.Gig)
				hosts := topo.Hosts()
				streamed := 0
				eng, err := horse.New(topo,
					horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
					horse.WithMiss(horse.MissController),
					horse.WithEventQueue(q),
					horse.WithRecordSink(func(r horse.FlowRecord) { streamed++ }),
				)
				if err != nil {
					b.Fatal(err)
				}
				tr := make(horse.Trace, n)
				for j := range tr {
					src, dst := hosts[j%len(hosts)], hosts[(j+1)%len(hosts)]
					tr[j] = horse.Demand{
						Key: udpKey(src, dst, uint16(30000+j%1000)),
						Src: src, Dst: dst,
						Start:    horse.Time(j) * horse.Time(10*horse.Microsecond),
						SizeBits: 1e4, RateBps: 1e9,
					}
				}
				eng.Load(tr)
				b.StartTimer()
				if _, err := eng.Run(context.Background(), horse.Never); err != nil {
					b.Fatal(err)
				}
				if streamed != n {
					b.Fatalf("streamed %d records, want %d", streamed, n)
				}
			}
		})
	}
}
