package horse_test

import (
	"context"
	"fmt"
	"log"

	"horse"
)

// ExampleNew builds the default flow-level engine with the unified
// builder and runs a small leaf-spine workload to completion.
func ExampleNew() {
	topo := horse.LeafSpine(2, 2, 2, horse.Gig, horse.TenGig)
	eng, err := horse.New(topo,
		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
		horse.WithMiss(horse.MissController),
	)
	if err != nil {
		log.Fatal(err)
	}
	gen := horse.NewGenerator(42)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 50, Horizon: horse.Second,
		Sizes: horse.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 1e7,
	}))
	col, err := eng.Run(context.Background(), horse.Never)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fidelity=flow flows=%d completed=%d\n", len(col.Flows()), col.FlowsCompleted)
	// Output: fidelity=flow flows=50 completed=50
}

// ExampleNew_packet selects the packet-level engine with the same
// builder: every packet is simulated against pre-installed routes.
func ExampleNew_packet() {
	topo := horse.Dumbbell(2, 2, horse.Gig, horse.TenGig)
	eng, err := horse.New(topo,
		horse.WithFidelity(horse.Packet),
		horse.WithMiss(horse.MissDrop),
	)
	if err != nil {
		log.Fatal(err)
	}
	horse.InstallMACRoutes(eng.Network())
	gen := horse.NewGenerator(7)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 20, Horizon: 500 * horse.Millisecond,
		Sizes: horse.FixedSize(4e5), TCPFraction: 0.5, CBRRateBps: 1e7,
	}))
	col, err := eng.Run(context.Background(), horse.Time(10*horse.Second))
	if err != nil {
		log.Fatal(err)
	}
	completed := 0
	for _, r := range col.Flows() {
		if r.Completed {
			completed++
		}
	}
	fmt.Printf("fidelity=packet flows=%d completed=%d\n", len(col.Flows()), completed)
	// Output: fidelity=packet flows=9 completed=9
}

// ExampleNew_hybrid runs half the demand stream packet-by-packet and the
// rest at flow level, under one clock and one control plane.
func ExampleNew_hybrid() {
	topo := horse.Dumbbell(2, 2, horse.Gig, horse.TenGig)
	eng, err := horse.New(topo,
		horse.WithFidelity(horse.Hybrid),
		horse.WithController(horse.NewChain(&horse.ReactiveMAC{})),
		horse.WithMiss(horse.MissController),
		horse.WithPacketFraction(0.5),
	)
	if err != nil {
		log.Fatal(err)
	}
	gen := horse.NewGenerator(7)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 20, Horizon: 500 * horse.Millisecond,
		Sizes: horse.FixedSize(4e5), TCPFraction: 0.5, CBRRateBps: 1e7,
	}))
	col, err := eng.Run(context.Background(), horse.Time(10*horse.Second))
	if err != nil {
		log.Fatal(err)
	}
	pkt, flow := eng.(*horse.HybridSimulator).Split()
	fmt.Printf("fidelity=hybrid packet-flows=%d flow-flows=%d completed=%d\n", pkt, flow, col.FlowsCompleted)
	// Output: fidelity=hybrid packet-flows=4 flow-flows=5 completed=9
}

// ExampleNew_recordSink streams flow records as they finalize instead of
// retaining them — the bounded-memory results path.
func ExampleNew_recordSink() {
	topo := horse.LeafSpine(2, 2, 2, horse.Gig, horse.TenGig)
	streamed := 0
	eng, err := horse.New(topo,
		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
		horse.WithMiss(horse.MissController),
		horse.WithRecordSink(func(r horse.FlowRecord) { streamed++ }),
	)
	if err != nil {
		log.Fatal(err)
	}
	gen := horse.NewGenerator(42)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 50, Horizon: horse.Second,
		Sizes: horse.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 1e7,
	}))
	col, err := eng.Run(context.Background(), horse.Never)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed=%d retained=%d\n", streamed, len(col.Flows()))
	// Output: streamed=50 retained=0
}
