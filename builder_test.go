package horse_test

import (
	"context"
	"errors"
	"io"
	"reflect"
	"runtime"
	"testing"

	"horse"
)

// fatTreeWorkload is the golden parity workload: a k=4 fat tree and a
// mixed CBR/TCP Poisson trace that crosses pods.
func fatTreeWorkload() (*horse.Topology, horse.Trace) {
	topo := horse.FatTree(4, horse.Gig)
	gen := horse.NewGenerator(101)
	tr := gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 20 * float64(len(topo.Hosts())),
		Horizon: 100 * horse.Millisecond,
		Sizes:   horse.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 2e7,
	})
	return topo, tr
}

// failureWorkload is the scripted-failure parity scenario: a dual-spine
// leaf-spine under proactive forwarding with one core link dying
// mid-traffic and recovering.
func failureWorkload() (*horse.Topology, horse.Trace, *horse.Scenario) {
	topo := horse.LeafSpine(4, 2, 2, horse.Gig, horse.TenGig)
	gen := horse.NewGenerator(91)
	tr := gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 150, Horizon: 2 * horse.Second,
		Sizes: horse.Pareto{XMin: 1e5, Alpha: 1.5}, TCPFraction: 0.5, CBRRateBps: 1e7,
	})
	leaf0 := topo.MustLookup("leaf0")
	spine0 := topo.MustLookup("spine0")
	core := topo.LinkAt(leaf0, topo.PortToward(leaf0, spine0)).ID
	tl := horse.NewScenario().
		LinkOutage(horse.Time(500*horse.Millisecond), horse.Time(1200*horse.Millisecond), core)
	return topo, tr, tl
}

// assertCollectorsEqual pins byte-identical output: records, link series,
// reroute times, and every counter.
func assertCollectorsEqual(t *testing.T, name string, want, got *horse.Collector) {
	t.Helper()
	if !reflect.DeepEqual(want.Flows(), got.Flows()) {
		t.Errorf("%s: flow records differ (legacy %d vs builder %d)", name, len(want.Flows()), len(got.Flows()))
	}
	if !reflect.DeepEqual(want.LinkSeries(), got.LinkSeries()) {
		t.Errorf("%s: link series differ", name)
	}
	if !reflect.DeepEqual(want.RerouteTimes(), got.RerouteTimes()) {
		t.Errorf("%s: reroute times differ", name)
	}
	type counters struct {
		started, completed, dropped, looped, stuck    uint64
		packetIns, flowMods, rateChanges, pathChanges uint64
		packetsLost                                   uint64
	}
	w := counters{want.FlowsStarted, want.FlowsCompleted, want.FlowsDropped, want.FlowsLooped, want.FlowsStuck,
		want.PacketIns, want.FlowMods, want.RateChanges, want.PathChanges, want.PacketsLost}
	g := counters{got.FlowsStarted, got.FlowsCompleted, got.FlowsDropped, got.FlowsLooped, got.FlowsStuck,
		got.PacketIns, got.FlowMods, got.RateChanges, got.PathChanges, got.PacketsLost}
	if w != g {
		t.Errorf("%s: counters differ: legacy %+v vs builder %+v", name, w, g)
	}
}

// TestBuilderLegacyParityFlow pins that a builder-constructed flow engine
// produces byte-identical results to the legacy constructor — golden
// fat-tree and scripted-failure scenario.
func TestBuilderLegacyParityFlow(t *testing.T) {
	window := horse.Time(10 * horse.Second)

	topoL, trL := fatTreeWorkload()
	legacy := horse.NewSimulator(horse.Config{
		Topology:   topoL,
		Controller: horse.NewChain(&horse.ECMPLoadBalancer{}),
		Miss:       horse.MissController,
		StatsEvery: 10 * horse.Millisecond,
	})
	legacy.Load(trL)
	colL := legacy.RunUntil(window)

	topoB, trB := fatTreeWorkload()
	eng, err := horse.New(topoB,
		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
		horse.WithMiss(horse.MissController),
		horse.WithStatsEvery(10*horse.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.Load(trB)
	colB, err := eng.Run(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	assertCollectorsEqual(t, "fat-tree/flow", colL, colB)

	// Scripted failure: legacy Apply+Load vs WithScenario (which applies
	// at New, before Load — the same relative order).
	topoL2, trL2, tlL := failureWorkload()
	legacy2 := horse.NewSimulator(horse.Config{
		Topology:   topoL2,
		Controller: horse.NewChain(&horse.ProactiveMAC{}),
		Miss:       horse.MissController,
	})
	if err := tlL.Apply(legacy2, window); err != nil {
		t.Fatal(err)
	}
	legacy2.Load(trL2)
	colL2 := legacy2.RunUntil(window)

	topoB2, trB2, tlB := failureWorkload()
	eng2, err := horse.New(topoB2,
		horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
		horse.WithMiss(horse.MissController),
		horse.WithScenario(tlB),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Load(trB2)
	colB2, err := eng2.Run(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	if len(colL2.RerouteTimes()) == 0 {
		t.Error("failure scenario never rerouted (scenario not applied?)")
	}
	assertCollectorsEqual(t, "failure/flow", colL2, colB2)
}

// TestBuilderLegacyParityPacket pins builder/legacy parity for the packet
// engine on the golden fat tree with pre-installed routes, serial and
// sharded.
func TestBuilderLegacyParityPacket(t *testing.T) {
	window := horse.Time(2 * horse.Second)
	for _, shards := range []int{1, 2} {
		topoL, trL := fatTreeWorkload()
		legacy := horse.NewPacketSimulator(horse.PacketConfig{
			Topology: topoL, Miss: horse.MissDrop, Shards: shards,
		})
		horse.InstallMACRoutes(legacy.Network())
		legacy.Load(trL)
		colL := legacy.RunUntil(window)

		topoB, trB := fatTreeWorkload()
		eng, err := horse.New(topoB,
			horse.WithFidelity(horse.Packet),
			horse.WithMiss(horse.MissDrop),
			horse.WithShards(shards),
		)
		if err != nil {
			t.Fatal(err)
		}
		horse.InstallMACRoutes(eng.Network())
		eng.Load(trB)
		colB, err := eng.Run(context.Background(), window)
		if err != nil {
			t.Fatal(err)
		}
		assertCollectorsEqual(t, "fat-tree/packet", colL, colB)
	}
}

// TestBuilderLegacyParityHybrid pins builder/legacy parity for the hybrid
// coupler under a scripted failure at a 50% packet share.
func TestBuilderLegacyParityHybrid(t *testing.T) {
	window := horse.Time(10 * horse.Second)

	topoL, trL, tlL := failureWorkload()
	legacy := horse.NewHybridSimulator(horse.HybridConfig{
		Topology:    topoL,
		Controller:  horse.NewChain(&horse.ProactiveMAC{}),
		Miss:        horse.MissController,
		PacketLevel: horse.PacketFraction(0.5),
	})
	if err := tlL.Apply(legacy, window); err != nil {
		t.Fatal(err)
	}
	legacy.Load(trL)
	colL := legacy.RunUntil(window)

	topoB, trB, tlB := failureWorkload()
	eng, err := horse.New(topoB,
		horse.WithFidelity(horse.Hybrid),
		horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
		horse.WithMiss(horse.MissController),
		horse.WithPacketFraction(0.5),
		horse.WithScenario(tlB),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.Load(trB)
	colB, err := eng.Run(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	assertCollectorsEqual(t, "failure/hybrid", colL, colB)
	if !reflect.DeepEqual(legacy.Records(), eng.(*horse.HybridSimulator).Records()) {
		t.Error("failure/hybrid: merged Records differ")
	}
}

// TestRecordSinkStreamsIdenticalRecords pins the streaming contract: the
// sink receives exactly the records, in exactly the order, an in-memory
// run of the identical scenario retains.
func TestRecordSinkStreamsIdenticalRecords(t *testing.T) {
	window := horse.Time(10 * horse.Second)
	run := func(sink func(horse.FlowRecord)) *horse.Collector {
		topo, tr, tl := failureWorkload()
		opts := []horse.Option{
			horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
			horse.WithMiss(horse.MissController),
			horse.WithScenario(tl),
		}
		if sink != nil {
			opts = append(opts, horse.WithRecordSink(sink))
		}
		eng, err := horse.New(topo, opts...)
		if err != nil {
			t.Fatal(err)
		}
		eng.Load(tr)
		col, err := eng.Run(context.Background(), window)
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	want := run(nil).Flows()
	var got []horse.FlowRecord
	col := run(func(r horse.FlowRecord) { got = append(got, r) })
	if len(col.Flows()) != 0 {
		t.Errorf("sink run retained %d records", len(col.Flows()))
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("streamed records differ from in-memory run: %d vs %d", len(got), len(want))
	}
}

// TestHybridMidRunCollectorDoesNotDuplicateSink: a Collector() snapshot
// taken from a mid-run hook (Collector is on the Engine interface, so
// progress/observer callbacks can reach it) must not stream records to
// the sink — only the end-of-Run delivery does, exactly once.
func TestHybridMidRunCollectorDoesNotDuplicateSink(t *testing.T) {
	window := horse.Time(10 * horse.Second)
	run := func(peek bool) []horse.FlowRecord {
		topo, tr, tl := failureWorkload()
		var streamed []horse.FlowRecord
		var eng horse.Engine
		opts := []horse.Option{
			horse.WithFidelity(horse.Hybrid),
			horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
			horse.WithMiss(horse.MissController),
			horse.WithPacketFraction(0.5),
			horse.WithScenario(tl),
			horse.WithRecordSink(func(r horse.FlowRecord) { streamed = append(streamed, r) }),
		}
		if peek {
			opts = append(opts, horse.WithProgressEvery(200*horse.Millisecond, func(horse.Progress) {
				_ = eng.Collector().FlowsStarted // mid-run snapshot
			}))
		}
		var err error
		eng, err = horse.New(topo, opts...)
		if err != nil {
			t.Fatal(err)
		}
		eng.Load(tr)
		if _, err := eng.Run(context.Background(), window); err != nil {
			t.Fatal(err)
		}
		return streamed
	}
	clean := run(false)
	peeked := run(true)
	if len(clean) == 0 {
		t.Fatal("sink received nothing")
	}
	if !reflect.DeepEqual(clean, peeked) {
		t.Errorf("mid-run Collector() perturbed the record stream: %d records vs %d", len(peeked), len(clean))
	}
}

// synthFlows streams a synthetic single-packet UDP workload demand by
// demand — the input side of the bounded-memory contract: the 1M-demand
// trace never materializes.
type synthFlows struct {
	hosts []horse.NodeID
	n, i  int
}

func (g *synthFlows) Next() (horse.Demand, error) {
	if g.i >= g.n {
		return horse.Demand{}, io.EOF
	}
	i := g.i
	g.i++
	src, dst := g.hosts[i%len(g.hosts)], g.hosts[(i+1)%len(g.hosts)]
	return horse.Demand{
		Key:      udpKey(src, dst, uint16(30000+i%1000)),
		Src:      src,
		Dst:      dst,
		Start:    horse.Time(i) * horse.Time(10*horse.Microsecond),
		SizeBits: 1e4, RateBps: 1e9,
	}, nil
}

// TestRecordSinkMillionFlows is the scale contract, per fidelity: a
// ≥1M-flow fully streamed run (trace reader in, record sink out)
// completes with no retained []FlowRecord anywhere and peak heap under a
// pinned budget — memory stays O(live flows), not O(workload). The
// budgets are several times the steady-state observed at the time of
// pinning (tens of MB, dominated by topology + GC slack), far below the
// hundreds of MB a retained 1M-flow run costs; a regression to retention
// on either side of any engine blows straight through them.
func TestRecordSinkMillionFlows(t *testing.T) {
	const n = 1_000_000
	cases := []struct {
		fidelity horse.Fidelity
		budget   uint64 // peak HeapAlloc, bytes
	}{
		{horse.Flow, 192 << 20},
		{horse.Packet, 192 << 20},
		{horse.Hybrid, 256 << 20}, // two engines + merge reorder buffer
	}
	for _, tc := range cases {
		t.Run(tc.fidelity.String(), func(t *testing.T) {
			topo := horse.Star(4, horse.Gig)
			streamed, completed := 0, 0
			var peak uint64
			sample := func() {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
			opts := []horse.Option{
				horse.WithFidelity(tc.fidelity),
				horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
				horse.WithMiss(horse.MissController),
				horse.WithTraceReader(&synthFlows{hosts: topo.Hosts(), n: n}),
				// Records stream in finalize order (the order Flows() would
				// hold them — pinned by the stream equivalence battery);
				// here only the scale contract matters.
				horse.WithRecordSink(func(r horse.FlowRecord) {
					streamed++
					if r.Completed {
						completed++
					}
				}),
				horse.WithProgressEvery(100*horse.Millisecond, func(horse.Progress) { sample() }),
			}
			if tc.fidelity == horse.Hybrid {
				opts = append(opts, horse.WithPacketFraction(0.5))
			}
			eng, err := horse.New(topo, opts...)
			if err != nil {
				t.Fatal(err)
			}
			col, err := eng.Run(context.Background(), horse.Never)
			if err != nil {
				t.Fatal(err)
			}
			sample()
			if streamed != n {
				t.Errorf("streamed %d records, want %d", streamed, n)
			}
			if len(col.Flows()) != 0 {
				t.Errorf("collector retained %d records in sink mode", len(col.Flows()))
			}
			// Completion is judged from the streamed records themselves:
			// the Flow engine also counts FlowsCompleted on the collector,
			// but the Packet engine's counters have never included it.
			if completed != n {
				t.Errorf("completed %d of %d", completed, n)
			}
			if peak > tc.budget {
				t.Errorf("peak heap %d MiB exceeds the %d MiB budget",
					peak>>20, tc.budget>>20)
			}
			t.Logf("peak heap %d MiB (budget %d MiB)", peak>>20, tc.budget>>20)
		})
	}
}

// udpKey builds a UDP flow key on the repo's addressing plan (host n has
// MAC n+1).
func udpKey(src, dst horse.NodeID, sport uint16) horse.FlowKey {
	var k horse.FlowKey
	sv, dv := uint64(src)+1, uint64(dst)+1
	for i := 5; i >= 0; i-- {
		k.EthSrc[i] = byte(sv)
		k.EthDst[i] = byte(dv)
		sv >>= 8
		dv >>= 8
	}
	k.EthType = 0x0800
	k.Proto = 17
	k.SrcPort, k.DstPort = sport, 80
	return k
}

// TestRunCancellationFlow: cancelling the context mid-run returns
// promptly with ctx.Err() and a partial, consistent collector (every
// arrived flow settled and recorded).
func TestRunCancellationFlow(t *testing.T) {
	topo := horse.LeafSpine(2, 2, 2, horse.Gig, horse.TenGig)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng, err := horse.New(topo,
		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
		horse.WithMiss(horse.MissController),
		// Cancel deterministically from the progress callback partway in.
		horse.WithProgressEvery(100*horse.Millisecond, func(p horse.Progress) {
			if p.Now >= horse.Time(500*horse.Millisecond) {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	gen := horse.NewGenerator(3)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 200, Horizon: 5 * horse.Second,
		Sizes: horse.FixedSize(1e7), TCPFraction: 0.5, CBRRateBps: 1e7,
	}))
	col, err := eng.Run(ctx, horse.Never)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if now := eng.Now(); now < horse.Time(500*horse.Millisecond) || now >= horse.Time(5*horse.Second) {
		t.Errorf("stopped at %v; want shortly after the 500ms cancel, far before the 5s workload end", now)
	}
	if len(col.Flows()) == 0 {
		t.Error("partial collector has no records")
	}
	for _, r := range col.Flows() {
		if r.End > eng.Now() {
			t.Errorf("flow %d recorded beyond the stop instant: %v > %v", r.ID, r.End, eng.Now())
		}
	}
}

// TestRunCancellationShardedPacket: the sharded executor honors
// cancellation at window barriers.
func TestRunCancellationShardedPacket(t *testing.T) {
	topo, tr := fatTreeWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run: must stop at the first barrier
	eng, err := horse.New(topo,
		horse.WithFidelity(horse.Packet),
		horse.WithMiss(horse.MissDrop),
		horse.WithShards(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	horse.InstallMACRoutes(eng.Network())
	eng.Load(tr)
	col, err := eng.Run(ctx, horse.Time(2*horse.Second))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if got, want := len(col.Flows()), len(tr); got != want {
		t.Errorf("partial collector records %d flows, want all %d loaded (as unfinished)", got, want)
	}
}

// TestProgressReports pins the progress lifecycle: monotone virtual
// times, non-decreasing event counts, roughly one report per period.
func TestProgressReports(t *testing.T) {
	topo := horse.LeafSpine(2, 2, 2, horse.Gig, horse.TenGig)
	var reports []horse.Progress
	eng, err := horse.New(topo,
		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
		horse.WithMiss(horse.MissController),
		horse.WithProgressEvery(100*horse.Millisecond, func(p horse.Progress) {
			reports = append(reports, p)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	gen := horse.NewGenerator(5)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 100, Horizon: horse.Second,
		Sizes: horse.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 1e7,
	}))
	if _, err := eng.Run(context.Background(), horse.Never); err != nil {
		t.Fatal(err)
	}
	if len(reports) < 5 {
		t.Fatalf("got %d progress reports over ~1s at 100ms period", len(reports))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Now <= reports[i-1].Now || reports[i].Events < reports[i-1].Events {
			t.Fatalf("non-monotone progress: %+v after %+v", reports[i], reports[i-1])
		}
	}
}

// TestObserveAcrossFidelities pins the Observe hook: the same scripted
// outage reports the same observation sequence from the flow and packet
// engines.
func TestObserveAcrossFidelities(t *testing.T) {
	window := horse.Time(5 * horse.Second)
	observe := func(fidelity horse.Fidelity) []horse.Observation {
		topo, tr, tl := failureWorkload()
		opts := []horse.Option{
			horse.WithFidelity(fidelity),
			horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
			horse.WithMiss(horse.MissController),
			horse.WithScenario(tl),
		}
		var obs []horse.Observation
		opts = append(opts, horse.WithObserver(func(o horse.Observation) { obs = append(obs, o) }))
		eng, err := horse.New(topo, opts...)
		if err != nil {
			t.Fatal(err)
		}
		eng.Load(tr)
		if _, err := eng.Run(context.Background(), window); err != nil {
			t.Fatal(err)
		}
		return obs
	}
	flowObs := observe(horse.Flow)
	pktObs := observe(horse.Packet)
	if len(flowObs) != 2 {
		t.Fatalf("flow observations = %v, want down+up", flowObs)
	}
	if flowObs[0].Kind != horse.ObsLinkChange || flowObs[0].Up ||
		flowObs[1].Kind != horse.ObsLinkChange || !flowObs[1].Up {
		t.Fatalf("flow observations = %v", flowObs)
	}
	if !reflect.DeepEqual(flowObs, pktObs) {
		t.Errorf("observation sequences differ across fidelities: flow %v vs packet %v", flowObs, pktObs)
	}
}

// TestBuildErrors pins the eager-validation contract: bad arguments and
// fidelity-incompatible options fail New with a typed *BuildError.
func TestBuildErrors(t *testing.T) {
	topo := horse.Star(2, horse.Gig)
	cases := []struct {
		name string
		opts []horse.Option
	}{
		{"nil topology", nil},
		{"fraction out of range", []horse.Option{horse.WithPacketFraction(1.5)}},
		{"fraction on flow engine", []horse.Option{horse.WithPacketFraction(0.5)}},
		{"tcp on packet engine", []horse.Option{horse.WithFidelity(horse.Packet), horse.WithTCP(horse.TCPParams{RTT: horse.Millisecond})}},
		{"shards on hybrid", []horse.Option{horse.WithFidelity(horse.Hybrid), horse.WithPacketFraction(0.5), horse.WithShards(2)}},
		{"negative stats period", []horse.Option{horse.WithStatsEvery(-horse.Second)}},
		{"nil controller", []horse.Option{horse.WithController(nil)}},
		{"nil sink", []horse.Option{horse.WithRecordSink(nil)}},
		{"unknown fidelity", []horse.Option{horse.WithFidelity(horse.Fidelity(9))}},
		{"full recompute on packet", []horse.Option{horse.WithFidelity(horse.Packet), horse.WithFullRecompute()}},
		{"queue on flow", []horse.Option{horse.WithQueuePackets(10)}},
		{"scenario with unknown link", []horse.Option{horse.WithScenario(horse.NewScenario().LinkDown(0, 99))}},
		{"balancing out of range", []horse.Option{horse.WithFidelity(horse.Packet), horse.WithShards(2), horse.WithShardBalancing(horse.ShardBalancing(9))}},
		{"balancing on flow", []horse.Option{horse.WithShardBalancing(horse.BalanceWeighted)}},
		{"balancing without shards", []horse.Option{horse.WithFidelity(horse.Packet), horse.WithShardBalancing(horse.BalanceSteal)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := topo
			if tc.name == "nil topology" {
				tp = nil
			}
			eng, err := horse.New(tp, tc.opts...)
			if err == nil {
				t.Fatal("New accepted an invalid configuration")
			}
			if eng != nil {
				t.Error("New returned both an engine and an error")
			}
			var be *horse.BuildError
			var se *horse.ScenarioEventError
			if !errors.As(err, &be) && !errors.As(err, &se) {
				t.Errorf("error %T (%v) is neither *BuildError nor *ScenarioEventError", err, err)
			}
		})
	}
	// Options validate independently of order: fidelity last still wins.
	if _, err := horse.New(topo, horse.WithPacketFraction(0.5), horse.WithFidelity(horse.Hybrid)); err != nil {
		t.Errorf("option order mattered: %v", err)
	}
}
