package horse_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"horse"
	"horse/api/wire"
)

// specFixture is a small deterministic session: two explicit demands on
// a leaf-spine fabric plus a link flap. Used across the bridge tests and
// mirrored by the service parity tests.
func specFixture() *wire.SessionSpec {
	return &wire.SessionSpec{
		Topology: wire.TopoSpec{Kind: wire.TopoLeafSpine, Leaves: 2, Spines: 2, Hosts: 2},
		Workload: wire.WorkloadSpec{Demands: []wire.DemandSpec{
			{Src: "h0", Dst: "h3", SizeBits: 8e5, RateBps: wire.Float(math.Inf(1)), TCP: true},
			{Src: "h1", Dst: "h2", StartNs: 1e6, SizeBits: 8e5, RateBps: 1e8},
		}},
		Scenario: []wire.EventSpec{
			{AtNs: 2e6, Kind: wire.EventLinkDown, LinkA: "leaf0", LinkB: "spine0"},
			{AtNs: 5e6, Kind: wire.EventLinkUp, LinkA: "leaf0", LinkB: "spine0"},
		},
		Options: wire.OptionsSpec{
			Controller: []wire.AppSpec{{Kind: wire.AppProactiveMAC}},
			Miss:       "controller",
		},
		UntilNs: int64(10 * horse.Second),
	}
}

func TestNewFromSpecRuns(t *testing.T) {
	eng, until, err := horse.NewFromSpec(specFixture())
	if err != nil {
		t.Fatal(err)
	}
	if until != horse.Time(10*horse.Second) {
		t.Fatalf("until = %v, want 10s", until)
	}
	col, err := eng.Run(context.Background(), until)
	if err != nil {
		t.Fatal(err)
	}
	if col.FlowsCompleted != 2 {
		t.Fatalf("completed %d flows, want 2", col.FlowsCompleted)
	}
}

// TestNewFromSpecParity is the contract behind the daemon: a spec-built
// engine must produce records identical to the same simulation assembled
// by hand through the public builder.
func TestNewFromSpecParity(t *testing.T) {
	eng, until, err := horse.NewFromSpec(specFixture())
	if err != nil {
		t.Fatal(err)
	}
	specCol, err := eng.Run(context.Background(), until)
	if err != nil {
		t.Fatal(err)
	}

	// The same session, hand-assembled.
	spec := specFixture()
	topo, err := spec.Topology.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := spec.Workload.Trace(topo)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := wire.Timeline(spec.Scenario, topo)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := horse.New(topo,
		horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
		horse.WithMiss(horse.MissController),
	)
	if err != nil {
		t.Fatal(err)
	}
	hand.Load(tr)
	if err := tl.Apply(hand, until); err != nil {
		t.Fatal(err)
	}
	handCol, err := hand.Run(context.Background(), until)
	if err != nil {
		t.Fatal(err)
	}

	a, b := specCol.Flows(), handCol.Flows()
	if len(a) != len(b) {
		t.Fatalf("spec run: %d records, hand run: %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n spec %+v\n hand %+v", i, a[i], b[i])
		}
	}
}

// TestNewFromSpecStreamed pins the daemon's bounded-memory ingestion
// path: a Poisson-only workload submitted with Stream (fed through
// WorkloadSpec.Reader → WithTraceReader) must produce records
// byte-identical to the same spec materialized eagerly, and a streamed
// spec with sorted explicit demands must match their eager load. A
// streamed session mixing demands and Poisson is also exercised — it
// must run clean even though its load-order numbering (global start
// order) legitimately differs from the demands-first eager order.
func TestNewFromSpecStreamed(t *testing.T) {
	poisson := func(stream bool) *wire.SessionSpec {
		return &wire.SessionSpec{
			Topology: wire.TopoSpec{Kind: wire.TopoLeafSpine, Leaves: 2, Spines: 2, Hosts: 2},
			Workload: wire.WorkloadSpec{
				Poisson: &wire.PoissonSpec{
					Seed: 7, Lambda: 300, HorizonNs: int64(200 * horse.Millisecond),
					Size: wire.SizeSpec{Kind: "fixed", Bits: 8e5}, CBRRateBps: 1e8,
				},
				Stream: stream,
			},
			Options: wire.OptionsSpec{
				Controller: []wire.AppSpec{{Kind: wire.AppProactiveMAC}},
				Miss:       "controller",
			},
			UntilNs: int64(10 * horse.Second),
		}
	}
	run := func(spec *wire.SessionSpec) []horse.FlowRecord {
		eng, until, err := horse.NewFromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		col, err := eng.Run(context.Background(), until)
		if err != nil {
			t.Fatal(err)
		}
		return col.Flows()
	}
	want := run(poisson(false))
	if len(want) == 0 {
		t.Fatal("poisson workload produced no records")
	}
	got := run(poisson(true))
	if len(want) != len(got) {
		t.Fatalf("streamed run: %d records, eager: %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("record %d differs:\n eager %+v\nstream %+v", i, want[i], got[i])
		}
	}

	// Sorted explicit demands: streamed == eager (specFixture's demands
	// are already in start order).
	eagerFix := run(specFixture())
	streamFix := specFixture()
	streamFix.Workload.Stream = true
	gotFix := run(streamFix)
	if len(eagerFix) != len(gotFix) {
		t.Fatalf("streamed fixture: %d records, eager: %d", len(gotFix), len(eagerFix))
	}
	for i := range eagerFix {
		if eagerFix[i] != gotFix[i] {
			t.Fatalf("fixture record %d differs:\n eager %+v\nstream %+v", i, eagerFix[i], gotFix[i])
		}
	}

	// Mixed demands + Poisson streams in global start order; the session
	// must run clean with every demand accounted.
	mixed := poisson(true)
	mixed.Workload.Demands = []wire.DemandSpec{
		{Src: "h0", Dst: "h3", SizeBits: 8e5, RateBps: 1e8},
	}
	if n := len(run(mixed)); n != len(want)+1 {
		t.Fatalf("mixed streamed run: %d records, want %d", n, len(want)+1)
	}
}

func TestNewFromSpecValidation(t *testing.T) {
	barely := func(mut func(*wire.SessionSpec)) *wire.SessionSpec {
		s := specFixture()
		mut(s)
		return s
	}
	cases := []struct {
		name    string
		spec    *wire.SessionSpec
		asBuild bool // expect *horse.BuildError (else *wire.SpecError)
	}{
		{"nil spec", nil, true},
		{"bad topology", barely(func(s *wire.SessionSpec) { s.Topology.Kind = "moebius" }), false},
		{"bad workload", barely(func(s *wire.SessionSpec) { s.Workload.Demands[0].Dst = "nowhere" }), false},
		{"bad scenario", barely(func(s *wire.SessionSpec) { s.Scenario[0].Switch = ""; s.Scenario[0].Kind = "melt" }), false},
		{"bad fidelity", barely(func(s *wire.SessionSpec) { s.Options.Fidelity = "quantum" }), true},
		{"bad app", barely(func(s *wire.SessionSpec) { s.Options.Controller = []wire.AppSpec{{Kind: "oracle"}} }), true},
		{"bad miss", barely(func(s *wire.SessionSpec) { s.Options.Miss = "explode" }), true},
		{"bad option combo", barely(func(s *wire.SessionSpec) {
			s.Options.Fidelity = wire.FidelityHybrid
			s.Options.Shards = 4
			pf := 0.5
			s.Options.PacketFraction = &pf
		}), true},
		{"bad balancing name", barely(func(s *wire.SessionSpec) {
			s.Options.Fidelity = wire.FidelityPacket
			s.Options.Shards = 4
			s.Options.ShardBalancing = "lopsided"
		}), true},
		{"balancing without shards", barely(func(s *wire.SessionSpec) {
			s.Options.Fidelity = wire.FidelityPacket
			s.Options.ShardBalancing = wire.BalanceSteal
		}), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := horse.NewFromSpec(c.spec)
			if err == nil {
				t.Fatal("spec accepted, want error")
			}
			var berr *horse.BuildError
			var serr *wire.SpecError
			switch {
			case c.asBuild && !errors.As(err, &berr):
				t.Fatalf("error %v is not a *BuildError", err)
			case !c.asBuild && !errors.As(err, &serr):
				t.Fatalf("error %v is not a *SpecError", err)
			}
		})
	}
}

func TestSpecOptionsDefaults(t *testing.T) {
	// A zero OptionsSpec must behave exactly like no options at all.
	spec := specFixture()
	spec.Scenario = nil
	spec.Options = wire.OptionsSpec{}
	eng, until, err := horse.NewFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	// No controller and default drop-on-miss: flows still traverse the
	// default-built engine (flow fidelity).
	if _, err := eng.Run(context.Background(), until); err != nil {
		t.Fatal(err)
	}
}
