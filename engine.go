package horse

import (
	"fmt"

	"horse/internal/eventq"
	"horse/internal/flowsim"
	"horse/internal/hybrid"
	"horse/internal/linkmodel"
	"horse/internal/packetsim"
	"horse/internal/scenario"
	"horse/internal/simevent"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// Engine is the one simulator surface of Horse, implemented by all three
// fidelities. Build one with New, feed it with Load (and, optionally, a
// Scenario), execute with Run — which honors context cancellation and
// deadlines — and inspect it through Topology / Network / Kernel /
// Collector / Now. The concrete type behind the interface is *Simulator,
// *PacketSimulator, or *HybridSimulator per the configured fidelity;
// type-assert when an engine-specific accessor (e.g. HybridSimulator's
// Records) is needed.
type Engine = scenario.Engine

// Fidelity selects the engine granularity behind New: the dial the
// simulator is named for.
type Fidelity uint8

// Fidelities.
const (
	// Flow simulates at data-flow granularity (the Horse engine proper):
	// max–min fair-shared rates, orders of magnitude fewer events.
	Flow Fidelity = iota
	// Packet simulates every packet: store-and-forward switching,
	// drop-tail queues, window-based TCP. The accuracy baseline, and the
	// fidelity that shards across cores (WithShards).
	Packet
	// Hybrid runs flagged flows packet-by-packet and the rest at flow
	// level, under one clock and one control plane (WithPacketFraction).
	Hybrid
)

func (f Fidelity) String() string {
	switch f {
	case Flow:
		return "flow"
	case Packet:
		return "packet"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("fidelity(%d)", uint8(f))
}

// BuildError is the typed error New returns for an invalid configuration:
// which option (or argument) is at fault, and why. Options validate
// eagerly — New fails before any engine state exists, instead of an
// engine panicking mid-construction or mid-run.
type BuildError struct {
	// Option names the offending option, e.g. "WithPacketFraction".
	Option string
	// Reason says what is wrong with it.
	Reason string
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("horse: %s: %s", e.Option, e.Reason)
}

// Observation surface of a running engine (the Observe hook / the
// WithObserver option).
type (
	// Observation is one applied network-dynamics occurrence: a link or
	// switch state flip, or a controller detach/reattach.
	Observation = simevent.Observation
	// Observer receives observations on the simulation goroutine.
	Observer = simevent.Observer
	// ObsKind discriminates observations.
	ObsKind = simevent.Kind
	// Progress is one progress report of a running engine.
	Progress = simevent.Progress
	// ProgressFunc receives progress reports (WithProgress).
	ProgressFunc = simevent.ProgressFunc
)

// Observation kinds.
const (
	ObsLinkChange       = simevent.LinkChange
	ObsSwitchChange     = simevent.SwitchChange
	ObsControllerChange = simevent.ControllerChange
	ObsLinkDegrade      = simevent.LinkDegrade
)

// DefaultProgressEvery is the reporting period WithProgress uses: one
// report per virtual second (WithProgressEvery overrides).
const DefaultProgressEvery = Second

// New builds a simulation engine over topo from functional options:
//
//	eng, err := horse.New(topo,
//		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
//		horse.WithMiss(horse.MissController),
//		horse.WithFidelity(horse.Flow),
//	)
//	if err != nil { ... }
//	eng.Load(trace)
//	col, err := eng.Run(ctx, horse.Never)
//
// Every option validates eagerly: New returns a *BuildError (and no
// engine) for out-of-range arguments or options that do not apply to the
// selected fidelity, instead of panicking deep inside a constructor.
// Defaults match the zero-value legacy Configs: Flow fidelity, no
// controller, MissDrop, 1 ms control latency, no stats sampling.
func New(topo *Topology, opts ...Option) (Engine, error) {
	if topo == nil {
		return nil, &BuildError{Option: "New", Reason: "nil Topology"}
	}
	var o options
	for _, opt := range opts {
		if opt == nil {
			return nil, &BuildError{Option: "New", Reason: "nil Option"}
		}
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if err := o.validate(); err != nil {
		return nil, err
	}

	// Link-degradation registry: built once here and handed to whichever
	// engine(s) the fidelity selects, so all fidelities read one Set.
	var links *linkmodel.Set
	if o.linkSet {
		links = linkmodel.NewSet(o.linkSeed, topo.NumLinks())
		if o.linkDefault != nil {
			links.SetDefault(o.linkDefault)
		}
		for _, p := range o.linkPer {
			if int(p.link) < 0 || int(p.link) >= topo.NumLinks() {
				return nil, &BuildError{Option: "WithLinkModelFor", Reason: fmt.Sprintf("unknown link %d", p.link)}
			}
			links.SetLink(p.link, p.m)
		}
	}

	var eng Engine
	switch o.fidelity {
	case Flow:
		eng = flowsim.New(flowsim.Config{
			Topology:         topo,
			Controller:       o.controller,
			Miss:             o.miss,
			ControlLatency:   o.controlLat,
			TCP:              o.tcp,
			StatsEvery:       o.statsEvery,
			FullRecompute:    o.fullRecompute,
			UseCalendarQueue: o.calendar,
			EventQueue:       eventq.Backend(o.eventQueue),
			RateEpsilon:      o.rateEpsilon,
			Shards:           o.shards,
			Links:            links,
		})
	case Packet:
		eng = packetsim.New(packetsim.Config{
			Topology:         topo,
			QueuePackets:     o.queuePackets,
			Miss:             o.miss,
			StatsEvery:       o.statsEvery,
			RTOMin:           o.rtoMin,
			Controller:       o.controller,
			ControlLatency:   o.controlLat,
			UseCalendarQueue: o.calendar,
			EventQueue:       eventq.Backend(o.eventQueue),
			Shards:           o.shards,
			ShardWorkers:     o.shardWorkers,
			Balance:          packetsim.BalanceMode(o.balance),
			Links:            links,
		})
	case Hybrid:
		eng = hybrid.New(hybrid.Config{
			Topology:         topo,
			Controller:       o.controller,
			Miss:             o.miss,
			ControlLatency:   o.controlLat,
			TCP:              o.tcp,
			StatsEvery:       o.statsEvery,
			UseCalendarQueue: o.calendar,
			EventQueue:       eventq.Backend(o.eventQueue),
			RateEpsilon:      o.rateEpsilon,
			QueuePackets:     o.queuePackets,
			RTOMin:           o.rtoMin,
			PacketLevel:      o.packetLevel,
			Links:            links,
		})
	}

	// Run-lifecycle attachments. Every engine implements both side
	// interfaces; they stay off Engine so the interface carries only the
	// simulation surface.
	if o.sink != nil {
		eng.(interface {
			SetRecordSink(func(stats.FlowRecord))
		}).SetRecordSink(o.sink)
	}
	if o.reader != nil {
		eng.(interface {
			SetTraceReader(traffic.Reader)
		}).SetTraceReader(o.reader)
	}
	if o.progressFn != nil {
		eng.(interface {
			SetProgress(simtime.Duration, simevent.ProgressFunc)
		}).SetProgress(o.progressEvery, o.progressFn)
	}
	for _, fn := range o.observers {
		eng.Observe(fn)
	}
	if o.timeline != nil {
		// The run horizon is not known at build time; Apply validates
		// event times and subjects against the topology (horizon checks
		// are available through Scenario.Validate / Apply directly).
		if err := o.timeline.Apply(eng, Never); err != nil {
			return nil, err
		}
	}
	return eng, nil
}
