# Targets mirror .github/workflows/ci.yml so local runs match the gate.

GO ?= go

.PHONY: all build test race bench lint ci

all: build

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/flowsim/... ./internal/simcore/... ./internal/packetsim/... ./internal/hybrid/...
	$(GO) test -race -run 'TestParallel' ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: build lint test race bench
