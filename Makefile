# Targets mirror .github/workflows/ci.yml so local runs match the gate.

GO ?= go

.PHONY: all build test race bench fuzz-smoke lint ci

all: build

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/flowsim/... ./internal/simcore/... ./internal/packetsim/... ./internal/hybrid/... ./internal/scenario/...
	$(GO) test -race -run 'TestParallel|TestE8Parallel' ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./...

# A short native-fuzzing pass over the trace codec (seed corpus checked in
# under internal/traffic/testdata/fuzz).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzTraceRoundTrip -fuzztime=1000x ./internal/traffic/

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: build lint test race bench fuzz-smoke
