# Targets mirror .github/workflows/ci.yml so local runs match the gate.

GO ?= go

.PHONY: all build test race bench bench-baseline bench-compare scaling-gate fuzz-smoke service-smoke lint ci api api-check

all: build

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/eventq/... ./internal/fairshare/... ./internal/flowsim/... ./internal/simcore/... ./internal/simcore/shard/... ./internal/packetsim/... ./internal/hybrid/... ./internal/scenario/... ./internal/service/... ./internal/linkmodel/...
	$(GO) test -race -run 'TestParallel|TestE8Parallel|TestE6Shape|TestE10Parallel' ./internal/experiments/...
	$(GO) test -race -run 'TestShardDeterminism' ./internal/packetsim/
	$(GO) test -race -run 'TestBalanceDeterminismMatrix|TestScriptedStealMigrates|TestControllerShardingComponents' ./internal/packetsim/
	$(GO) test -race -run 'TestLinkModelShardParity' ./internal/packetsim/
	$(GO) test -race -run 'TestParallelMatchesSerial' ./internal/fairshare/
	$(GO) test -race -run 'TestStreamEquivalence' .

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./...

# Regenerate the committed benchmark baseline (do this deliberately, on a
# quiet machine, when a PR intentionally changes event counts or
# performance; the bench-compare CI job gates against this file).
bench-baseline:
	$(GO) run ./cmd/horsebench -quick -parallel 1 -json BENCH_baseline.json

# The CI bench-compare gate, locally: quick suite vs the committed
# baseline at the default ±20% tolerance.
bench-compare:
	$(GO) run ./cmd/horsebench -quick -parallel 1 -json BENCH_new.json -compare BENCH_baseline.json

# The CI scaling-gate, locally: E9 at the quick grid gated against the
# committed baseline's speedup floor (plus its deterministic columns).
scaling-gate:
	$(GO) run ./cmd/horsebench -quick -only E9 -parallel 1 -json BENCH_scaling.json -compare BENCH_baseline.json

# A short native-fuzzing pass over the trace codec, the windowed
# streaming reader, the timing-wheel cascade/overflow paths, the
# steal-schedule determinism property (any legal migration schedule
# yields byte-identical records), and the link-model parity property
# (any model parameters, seed, shard count, backend, and balancing mode
# reproduce the serial heap run). Seed corpora are f.Add'd in the fuzz
# targets plus any checked-in testdata/fuzz entries; the simulation
# fuzzers run fewer iterations because every exec runs full simulations.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzTraceRoundTrip -fuzztime=1000x ./internal/traffic/
	$(GO) test -run='^$$' -fuzz=FuzzStreamVsReadCSV -fuzztime=1000x ./internal/traffic/
	$(GO) test -run='^$$' -fuzz=FuzzWheelVsHeap -fuzztime=1000x ./internal/eventq/
	$(GO) test -run='^$$' -fuzz=FuzzStealSchedule -fuzztime=150x ./internal/packetsim/
	$(GO) test -run='^$$' -fuzz=FuzzLinkModelParity -fuzztime=25x ./internal/packetsim/

# End-to-end daemon smoke: horsed on a unix socket, horsectl submit with
# streamed records, a mid-run cancel, and a SIGTERM drain.
service-smoke:
	./scripts/service-smoke.sh

# Regenerate the checked-in public-API surface goldens (api/horse.txt,
# api/wire.txt, api/service.txt). Run after any deliberate change to a
# public surface; TestAPISurfaceGolden (and the lint job's api-check)
# diff the live source against these files.
api:
	$(GO) run ./cmd/horseapi -out api

# Fail if any committed surface golden is stale (the CI lint job's check).
api-check:
	$(GO) run ./cmd/horseapi -check -out api

# golangci-lint (the CI lint job) when installed; vet+gofmt otherwise.
lint: api-check
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; falling back to vet+gofmt"; \
		$(GO) vet ./...; \
		out=$$(gofmt -l .); if [ -n "$$out" ]; then \
			echo "gofmt needed on:"; echo "$$out"; exit 1; \
		fi \
	fi

ci: build lint test race bench fuzz-smoke service-smoke bench-compare
