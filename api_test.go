package horse_test

import (
	"os"
	"testing"

	"horse/internal/apisurface"
)

// TestAPISurfaceGolden diffs the checked-in export surface (api/horse.txt)
// against the live façade source. A mismatch means the public API changed:
// review the diff, and if the change is intended, regenerate the golden
// with `make api` and commit it alongside — accidental breaking changes
// cannot land silently.
func TestAPISurfaceGolden(t *testing.T) {
	want, err := os.ReadFile("api/horse.txt")
	if err != nil {
		t.Fatalf("missing golden (run `make api`): %v", err)
	}
	got, err := apisurface.Surface(".")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("public API surface drifted from api/horse.txt.\n"+
			"If the change is intended, run `make api` and commit the result.\n\n--- api/horse.txt\n+++ live\n%s",
			surfaceDiff(string(want), got))
	}
}

// surfaceDiff renders a minimal line diff (the surfaces are sorted line
// sets, so set difference reads well).
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range splitLines(want) {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range splitLines(got) {
		gotSet[l] = true
	}
	var out []byte
	for _, l := range splitLines(want) {
		if !gotSet[l] {
			out = append(out, '-')
			out = append(out, l...)
			out = append(out, '\n')
		}
	}
	for _, l := range splitLines(got) {
		if !wantSet[l] {
			out = append(out, '+')
			out = append(out, l...)
			out = append(out, '\n')
		}
	}
	return string(out)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
