package horse_test

import (
	"os"
	"testing"

	"horse/internal/apisurface"
)

// TestAPISurfaceGolden diffs the checked-in export surfaces (api/*.txt)
// against the live sources: the root façade, the api/wire protocol
// package, and the exported internal/service session layer. A mismatch
// means a public API changed: review the diff, and if the change is
// intended, regenerate the goldens with `make api` and commit them
// alongside — accidental breaking changes cannot land silently.
func TestAPISurfaceGolden(t *testing.T) {
	for _, p := range []struct{ dir, golden string }{
		{".", "api/horse.txt"},
		{"api/wire", "api/wire.txt"},
		{"internal/service", "api/service.txt"},
	} {
		t.Run(p.golden, func(t *testing.T) {
			want, err := os.ReadFile(p.golden)
			if err != nil {
				t.Fatalf("missing golden (run `make api`): %v", err)
			}
			got, err := apisurface.Surface(p.dir)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("public API surface drifted from %s.\n"+
					"If the change is intended, run `make api` and commit the result.\n\n--- %s\n+++ live\n%s",
					p.golden, p.golden, surfaceDiff(string(want), got))
			}
		})
	}
}

// surfaceDiff renders a minimal line diff (the surfaces are sorted line
// sets, so set difference reads well).
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range splitLines(want) {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range splitLines(got) {
		gotSet[l] = true
	}
	var out []byte
	for _, l := range splitLines(want) {
		if !gotSet[l] {
			out = append(out, '-')
			out = append(out, l...)
			out = append(out, '\n')
		}
	}
	for _, l := range splitLines(got) {
		if !wantSet[l] {
			out = append(out, '+')
			out = append(out, l...)
			out = append(out, '\n')
		}
	}
	return string(out)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
