package horse_test

import (
	"context"
	"math"
	"testing"

	"horse"
)

// TestQuickstart exercises the documented public-API quickstart.
func TestQuickstart(t *testing.T) {
	topo := horse.LeafSpine(4, 2, 8, horse.Gig, horse.TenGig)
	eng, err := horse.New(topo,
		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
		horse.WithMiss(horse.MissController),
	)
	if err != nil {
		t.Fatal(err)
	}
	gen := horse.NewGenerator(42)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 100, Horizon: 2 * horse.Second,
		Sizes: horse.Pareto{XMin: 1e5, Alpha: 1.3}, TCPFraction: 0.8,
		CBRRateBps: 1e7,
	}))
	col, err := eng.Run(context.Background(), horse.Never)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Flows()) == 0 {
		t.Fatal("no flows")
	}
	s := horse.Summarize(col.FCTs())
	if s.N == 0 || s.Mean <= 0 {
		t.Errorf("summary = %+v", s)
	}
}

// TestPublicIXPAPI exercises the IXP substrate through the façade.
func TestPublicIXPAPI(t *testing.T) {
	f, err := horse.BuildIXP(horse.SmallIXP())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := horse.New(f.Topo,
		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
		horse.WithMiss(horse.MissController),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.Load(f.ReplayTrace(1e9, 0.3, horse.Hour, horse.Hour, 7))
	col, err := eng.Run(context.Background(), 2*horse.Time(horse.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Flows()) == 0 {
		t.Fatal("no replay flows")
	}
}

// TestPublicPacketBaseline exercises the packet-level baseline facade.
func TestPublicPacketBaseline(t *testing.T) {
	topo := horse.Dumbbell(1, 1, horse.Gig, horse.TenGig)
	eng, err := horse.New(topo, horse.WithFidelity(horse.Packet), horse.WithMiss(horse.MissDrop))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Network() == nil {
		t.Fatal("no network access")
	}
}

// TestMetricsFacade keeps metric helpers reachable.
func TestMetricsFacade(t *testing.T) {
	if horse.Percentile([]float64{1, 2, 3}, 50) != 2 {
		t.Error("Percentile broken")
	}
	if horse.W1Distance([]float64{1}, []float64{1}) != 0 {
		t.Error("W1Distance broken")
	}
	if !math.IsInf(horse.Unlimited, 1) {
		t.Error("Unlimited should be +Inf")
	}
}
