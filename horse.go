// Package horse is a flow-level, discrete-event simulator of SDN traffic
// dynamics for large-scale networks — a from-scratch Go reproduction of
// "Horse: towards an SDN traffic dynamics simulator for large scale
// networks" (Fernandes, Antichi, Castro, Uhlig — SIGCOMM 2016).
//
// Horse simulates the interaction of SDN control and data planes at the
// granularity of data flows (aggregates of packets sharing header fields,
// with time-varying rates) instead of packets. Flow rates are computed by
// max–min fair sharing across links and meters; controller applications
// translate high-level policies (load balancing, blackholing, rate
// limiting, application-specific peering, source routing) into abstracted
// OpenFlow state with no protocol connections, only latency-modeled
// message events.
//
// Quickstart — one constructor, one Engine interface, fidelity as a dial:
//
//	topo := horse.LeafSpine(4, 2, 8, horse.Gig, horse.TenGig)
//	eng, err := horse.New(topo,
//		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
//		horse.WithMiss(horse.MissController),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	gen := horse.NewGenerator(42)
//	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
//		Hosts: topo.Hosts(), Lambda: 500, Horizon: 10 * horse.Second,
//		Sizes: horse.Pareto{XMin: 1e5, Alpha: 1.3}, TCPFraction: 0.8,
//	}))
//	col, err := eng.Run(ctx, horse.Never)
//	fmt.Println(horse.Summarize(col.FCTs()))
//
// Swap horse.WithFidelity(horse.Packet) or horse.WithFidelity(horse.Hybrid)
// in and the same program runs at packet granularity, or with a
// packet-level foreground over a fluid background — same Engine surface,
// same Run lifecycle (context cancellation, WithProgress reports), same
// streaming results path (WithRecordSink).
//
// The package is a façade over the internal building blocks; beyond the
// New builder, everything below is a type alias or thin constructor, so
// the full documentation lives on the aliased types.
package horse

import (
	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/fairshare"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/hybrid"
	"horse/internal/ixp"
	"horse/internal/linkmodel"
	"horse/internal/metrics"
	"horse/internal/netgraph"
	"horse/internal/packetsim"
	"horse/internal/policy"
	"horse/internal/scenario"
	"horse/internal/simcore"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/tcpmodel"
	"horse/internal/traffic"
)

// Virtual time.
type (
	// Time is an instant in virtual time (ns since simulation start).
	Time = simtime.Time
	// Duration is a span of virtual time.
	Duration = simtime.Duration
)

// Time constants.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
	Hour        = simtime.Hour
	// Never is a Time beyond any reachable instant (no deadline).
	Never = simtime.Never
)

// Topology.
type (
	// Topology is the network graph of switches, hosts and links.
	Topology = netgraph.Topology
	// NodeID identifies a topology node.
	NodeID = netgraph.NodeID
	// LinkID identifies a link.
	LinkID = netgraph.LinkID
	// LinkSpec bundles link capacity and delay for builders.
	LinkSpec = netgraph.LinkSpec
	// Path is a node sequence.
	Path = netgraph.Path
)

// Common link specs.
var (
	// Gig is a 1 Gbps / 50 µs link.
	Gig = netgraph.Gig
	// TenGig is a 10 Gbps / 50 µs link.
	TenGig = netgraph.TenGig
	// HundredGig is a 100 Gbps / 50 µs link.
	HundredGig = netgraph.HundredGig
)

// Topology constructors.
var (
	// NewTopology returns an empty topology.
	NewTopology = netgraph.New
	// Linear builds a switch chain with one host per switch.
	Linear = netgraph.Linear
	// Star builds one switch with n hosts.
	Star = netgraph.Star
	// LeafSpine builds a two-tier Clos fabric.
	LeafSpine = netgraph.LeafSpine
	// FatTree builds a k-ary fat tree.
	FatTree = netgraph.FatTree
	// Ring builds a switch ring with one host per switch.
	Ring = netgraph.Ring
	// RandomConnected builds a seeded random connected graph.
	RandomConnected = netgraph.RandomConnected
	// Dumbbell builds the classic shared-bottleneck scenario.
	Dumbbell = netgraph.Dumbbell
)

// Path cost functions.
var (
	// HopCost counts hops.
	HopCost = netgraph.HopCost
	// DelayCost uses propagation delay.
	DelayCost = netgraph.DelayCost
)

// Headers and policies.
type (
	// FlowKey identifies a data flow by its header fields.
	FlowKey = header.FlowKey
	// Match is an OpenFlow-style wildcard match.
	Match = header.Match
	// MAC is an Ethernet address.
	MAC = header.MAC
	// IPv4 is an IPv4 address.
	IPv4 = header.IPv4
)

// The simulator.
type (
	// Simulator is a flow-level Horse simulation run.
	Simulator = flowsim.Simulator
	// Config parameterizes a Simulator.
	Config = flowsim.Config
	// Controller is the control-plane interface.
	Controller = flowsim.Controller
	// Context is the API controllers use to act on the network.
	Context = flowsim.Context
	// MissBehavior selects table-miss handling.
	MissBehavior = dataplane.MissBehavior
	// Collector accumulates run statistics.
	Collector = stats.Collector
	// Counters is a point-in-time copy of a Collector's counters.
	Counters = stats.Counters
	// FlowRecord is the outcome of one data flow.
	FlowRecord = stats.FlowRecord
	// TCPParams tunes the flow-level TCP model.
	TCPParams = tcpmodel.Params
)

// Miss behaviors.
const (
	// MissDrop discards unmatched flows.
	MissDrop = dataplane.MissDrop
	// MissController punts unmatched flows to the controller.
	MissController = dataplane.MissController
)

// NewSimulator builds a flow-level simulator from a legacy Config.
//
// Deprecated: use New with WithFidelity(Flow) (the default) and the
// matching options — see the "Migrating to the unified API" section of
// the README. NewSimulator remains as a thin wrapper so existing code
// keeps building; note that Run now takes a context (RunUntil is the
// drop-in for the old signature).
func NewSimulator(cfg Config) *Simulator { return flowsim.New(cfg) }

// Controller applications (the modular policy generator).
type (
	// Chain composes controller apps.
	Chain = controller.Chain
	// App is one modular controller application.
	App = controller.App
	// ProactiveMAC pre-installs MAC shortest-path forwarding.
	ProactiveMAC = controller.ProactiveMAC
	// ReactiveMAC installs MAC forwarding on PacketIn.
	ReactiveMAC = controller.ReactiveMAC
	// ECMPLoadBalancer spreads flows over equal-cost paths.
	ECMPLoadBalancer = controller.ECMPLoadBalancer
	// MisconfiguredLoadBalancer reproduces the Figure-1 failure mode.
	MisconfiguredLoadBalancer = controller.MisconfiguredLoadBalancer
	// Blackhole drops configured traffic.
	Blackhole = controller.Blackhole
	// RateLimiter polices traffic with meters.
	RateLimiter = controller.RateLimiter
	// RateLimitRule is one rate-limiting policy.
	RateLimitRule = controller.RateLimitRule
	// AppPeering steers application classes between edges.
	AppPeering = controller.AppPeering
	// PeeringRule is one application-peering policy.
	PeeringRule = controller.PeeringRule
	// SourceRouting pins host pairs to explicit paths.
	SourceRouting = controller.SourceRouting
	// SourceRoute is one pinned path.
	SourceRoute = controller.SourceRoute
	// Monitor polls port statistics and reports congestion.
	Monitor = controller.Monitor
)

// NewChain composes controller apps into a Controller.
func NewChain(apps ...App) *Chain { return controller.NewChain(apps...) }

// Policy configuration (Figure-2 style JSON).
type (
	// PolicyConfig is the parsed policy document.
	PolicyConfig = policy.Config
	// PolicyConflict is a composition-validation finding.
	PolicyConflict = policy.Conflict
)

// ParsePolicy reads a JSON policy document.
var ParsePolicy = policy.Parse

// Traffic.
type (
	// Demand is one data-flow input event.
	Demand = traffic.Demand
	// Trace is a time-ordered demand set.
	Trace = traffic.Trace
	// Generator produces stochastic traffic deterministically per seed.
	Generator = traffic.Generator
	// PoissonConfig parameterizes Poisson arrivals.
	PoissonConfig = traffic.PoissonConfig
	// Matrix is a traffic matrix.
	Matrix = traffic.Matrix
	// ReplayConfig parameterizes matrix replay.
	ReplayConfig = traffic.ReplayConfig
	// Diurnal is a time-of-day modulation.
	Diurnal = traffic.Diurnal
	// Pareto draws heavy-tailed flow sizes.
	Pareto = traffic.Pareto
	// LogNormal draws log-normal flow sizes.
	LogNormal = traffic.LogNormal
	// FixedSize draws a constant flow size.
	FixedSize = traffic.FixedSize
	// TraceReader streams demands one at a time in nondecreasing Start
	// order — the bounded-memory workload input (WithTraceReader).
	TraceReader = traffic.Reader
)

// Traffic constructors.
var (
	// NewGenerator returns a seeded traffic generator.
	NewGenerator = traffic.NewGenerator
	// GravityMatrix fills a matrix with a gravity model.
	GravityMatrix = traffic.Gravity
	// ParetoWeights draws heavy-tailed member weights.
	ParetoWeights = traffic.ParetoWeights
	// ReadTraceCSV parses a trace file.
	ReadTraceCSV = traffic.ReadCSV
	// NewTraceCSVReader streams a trace file through a bounded reorder
	// window (0 means DefaultTraceWindow) instead of parsing it whole.
	NewTraceCSVReader = traffic.NewCSVReader
	// NewPoissonReader streams the same workload PoissonArrivals would
	// materialize, one demand at a time.
	NewPoissonReader = traffic.NewPoissonReader
	// NewTraceReader adapts an in-memory sorted trace to a TraceReader.
	NewTraceReader = traffic.TraceReader
	// MergeTraceReaders merges sorted streams into one sorted stream.
	MergeTraceReaders = traffic.MergeReaders
	// ErrTraceOrder reports demands out of start-time order beyond the
	// reader's reorder window.
	ErrTraceOrder = traffic.ErrTraceOrder
)

// DefaultTraceWindow is the CSV reader's default reorder window.
const DefaultTraceWindow = traffic.DefaultTraceWindow

// IXP substrate.
type (
	// IXPProfile parameterizes an IXP fabric.
	IXPProfile = ixp.Profile
	// IXPFabric is a built IXP topology with member inventory.
	IXPFabric = ixp.Fabric
)

// IXP constructors.
var (
	// SmallIXP is a laptop-scale IXP profile.
	SmallIXP = ixp.SmallIXP
	// LargeIXP approximates a large European IXP fabric.
	LargeIXP = ixp.LargeIXP
	// BuildIXP constructs the fabric.
	BuildIXP = ixp.Build
)

// Packet-level engine.
type (
	// PacketSimulator is the per-packet engine (baseline comparator, and
	// a controller-attached simulator in its own right).
	PacketSimulator = packetsim.Simulator
	// PacketConfig parameterizes it.
	PacketConfig = packetsim.Config
	// Network is the shared data-plane state (switch tables) behind an
	// engine, exposed for pre-installing rules.
	Network = dataplane.Network
)

// NewPacketSimulator builds the packet-level engine from a legacy Config.
//
// Deprecated: use New with WithFidelity(Packet) — see the "Migrating to
// the unified API" section of the README.
func NewPacketSimulator(cfg PacketConfig) *PacketSimulator { return packetsim.New(cfg) }

// InstallMACRoutes pre-installs shortest-path MAC forwarding for every
// host on a network's switches — the identical-pre-installed-state
// methodology of the E3/E9 packet baselines.
func InstallMACRoutes(n *Network) { dataplane.InstallMACRoutes(n) }

// Hybrid fidelity: both engines coupled under one kernel.
type (
	// HybridSimulator runs flagged flows packet-by-packet and the rest at
	// flow level, under one clock and one control plane.
	HybridSimulator = hybrid.Simulator
	// HybridConfig parameterizes a hybrid run.
	HybridConfig = hybrid.Config
	// Kernel is the shared discrete-event simulation core.
	Kernel = simcore.Kernel
)

// NewHybridSimulator builds a hybrid-fidelity simulator from a legacy
// Config.
//
// Deprecated: use New with WithFidelity(Hybrid) and WithPacketFraction —
// see the "Migrating to the unified API" section of the README.
func NewHybridSimulator(cfg HybridConfig) *HybridSimulator { return hybrid.New(cfg) }

// PacketFraction flags ~p of the demand stream for packet-level
// simulation in a HybridConfig (spread evenly over load order).
func PacketFraction(p float64) func(i int, d traffic.Demand) bool { return hybrid.Fraction(p) }

// Scenario engine: scripted failures and dynamics across all engines.
type (
	// Scenario is a deterministic timeline of network events (link and
	// switch outages, controller detach, demand surges) that drives any
	// engine — flow-level, packet-level, or hybrid.
	Scenario = scenario.Timeline
	// ScenarioEngine is the simulator surface a Scenario compiles onto —
	// the same interface as Engine, now that the scenario surface and the
	// public engine surface are one.
	//
	// Deprecated: use Engine.
	ScenarioEngine = scenario.Engine
	// ScenarioEventError reports a timeline event Apply/Validate rejected.
	ScenarioEventError = scenario.EventError
	// ScenarioOutcome summarizes what a scripted disruption cost a run.
	ScenarioOutcome = scenario.Outcome
	// FailureConfig parameterizes RandomLinkFailures.
	FailureConfig = scenario.FailureConfig
)

// Scenario constructors and evaluation.
var (
	// NewScenario returns an empty timeline.
	NewScenario = scenario.New
	// RandomLinkFailures draws a seed-reproducible failure process.
	RandomLinkFailures = scenario.RandomLinkFailures
	// EvaluateScenario computes resilience metrics for a disturbed run.
	EvaluateScenario = scenario.Evaluate
)

// Link-degradation models (WithLinkModel / Scenario.LinkDegrade): how
// well an up link carries traffic, deterministic and seed-reproducible,
// composed with scripted outages at every fidelity.
type (
	// LinkModel is one link-degradation model: per-frame corruption for
	// the packet engine, a loss rate and capacity scale for the flow
	// engine, both off one per-direction state in hybrid runs.
	LinkModel = linkmodel.Model
	// BernoulliLoss corrupts frames i.i.d. with probability P.
	BernoulliLoss = linkmodel.BernoulliLoss
	// GilbertElliott is the two-state bursty-loss channel.
	GilbertElliott = linkmodel.GilbertElliott
	// AdaptiveRate steps link capacity over discrete rate levels under
	// block fading (SNR-driven rate adaptation).
	AdaptiveRate = linkmodel.AdaptiveRate
)

// ValidateLinkModel reports whether a model's parameters are usable (the
// same check New and Scenario.Validate run).
var ValidateLinkModel = linkmodel.Validate

// Metrics.
type (
	// Summary bundles descriptive statistics of a sample.
	Summary = metrics.Summary
)

// Metric helpers.
var (
	// Summarize computes a Summary.
	Summarize = metrics.Summarize
	// Percentile returns the p-th percentile.
	Percentile = metrics.Percentile
	// MeanRelErr is the mean element-wise relative error.
	MeanRelErr = metrics.MeanRelErr
	// W1Distance is the earth-mover distance between samples.
	W1Distance = metrics.W1Distance
)

// Unlimited is the demand of a backlogged flow (takes all it can get).
var Unlimited = fairshare.Unlimited
