// Command horsectl is the horsed client: it submits session specs,
// watches their streamed results, and manages session lifecycles over
// the horse-wire protocol.
//
// Usage:
//
//	horsectl -addr unix:/run/horsed.sock submit -name exp1 -watch spec.json
//	horsectl -addr unix:/run/horsed.sock list
//	horsectl -addr unix:/run/horsed.sock status s1
//	horsectl -addr unix:/run/horsed.sock watch s1
//	horsectl -addr unix:/run/horsed.sock cancel s1
//	horsectl -addr unix:/run/horsed.sock retire s1
//
// submit reads the spec JSON (api/wire.SessionSpec) from the named file,
// or stdin when the argument is "-". With -watch it streams the
// session's flow records (CSV on stdout, -flows redirects to a file) and
// prints the final summary in cmd/horse's format; without it, the
// session ID prints immediately.
//
// run executes the same spec in-process, without a daemon, writing the
// identical record CSV — the reference arm for wire-vs-local parity
// checks (scripts/service-smoke.sh) and a way to dry-run a spec before
// submitting it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"horse"
	"horse/api/wire"
)

func main() {
	addr := flag.String("addr", "unix:/tmp/horsed.sock", "daemon address (unix:/path or tcp:host:port)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: horsectl [-addr ADDR] {submit|run|list|status|watch|cancel|retire} ...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	if cmd == "run" {
		// In-process execution: no daemon, no dial.
		if err := runLocal(args); err != nil {
			fatal(err)
		}
		return
	}

	c, err := wire.DialAddr(*addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch cmd {
	case "submit":
		err = submit(c, args)
	case "list":
		err = list(c)
	case "status":
		err = sessionCmd(args, c.Status)
	case "cancel":
		err = sessionCmd(args, c.Cancel)
	case "retire":
		err = sessionCmd(args, c.Retire)
	case "watch":
		err = watch(c, args)
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
	if err != nil {
		fatal(err)
	}
}

func submit(c *wire.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	name := fs.String("name", "", "human label for the session")
	watch := fs.Bool("watch", false, "stream the session's records and wait for completion")
	flows := fs.String("flows", "", "write streamed records CSV here (default stdout; -watch only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("submit needs exactly one spec file (or - for stdin)")
	}

	var spec wire.SessionSpec
	if err := readSpec(fs.Arg(0), &spec); err != nil {
		return err
	}
	st, stream, err := c.Submit(wire.SubmitParams{Name: *name, Spec: spec, Stream: *watch})
	if err != nil {
		return err
	}
	if !*watch {
		fmt.Println(st.Session)
		return nil
	}
	fmt.Fprintf(os.Stderr, "horsectl: session %s %s\n", st.Session, st.State)
	return drain(st.Session, stream, *flows)
}

// runLocal executes a session spec in-process through the same
// spec-to-engine bridge the daemon uses (horse.NewFromSpec), streaming
// records to the identical CSV the wire path produces. A spec that runs
// locally and a spec submitted to horsed must yield byte-identical
// record files — the determinism contract across the service boundary.
func runLocal(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	flows := fs.String("flows", "", "write record CSV here (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run needs exactly one spec file (or - for stdin)")
	}
	var spec wire.SessionSpec
	if err := readSpec(fs.Arg(0), &spec); err != nil {
		return err
	}

	out := io.Writer(os.Stdout)
	if *flows != "" {
		f, err := os.Create(*flows)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintln(out, "id,arrival_s,end_s,size_bits,sent_bits,completed,outcome,path_len,punts")
	var sinkErr error
	eng, until, err := horse.NewFromSpec(&spec, horse.WithRecordSink(func(fr horse.FlowRecord) {
		r := wire.FromRecord(fr)
		if _, werr := fmt.Fprintf(out, "%d,%.9f,%.9f,%g,%g,%t,%s,%d,%d\n",
			r.ID, float64(r.ArrivalNs)/1e9, float64(r.EndNs)/1e9,
			float64(r.SizeBits), float64(r.SentBits),
			r.Completed, r.Outcome, r.PathLen, r.Punts); werr != nil && sinkErr == nil {
			sinkErr = werr
		}
	}))
	if err != nil {
		return err
	}
	col, err := eng.Run(context.Background(), until)
	if err != nil {
		return err
	}
	if sinkErr != nil {
		return sinkErr
	}
	fmt.Fprintf(os.Stderr, "horsectl: run done at t=%.3fs\n", eng.Now().Seconds())
	fmt.Fprintf(os.Stderr, "run:      %d events\n", col.EventsRun)
	fmt.Fprintf(os.Stderr, "flows:    %d completed, %d dropped, %d looped, %d packet-ins, %d flow-mods\n",
		col.FlowsCompleted, col.FlowsDropped, col.FlowsLooped,
		col.PacketIns, col.FlowMods)
	return nil
}

func watch(c *wire.Client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	flows := fs.String("flows", "", "write received records CSV here (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("watch needs exactly one session ID")
	}
	st, stream, err := c.Watch(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "horsectl: session %s %s\n", st.Session, st.State)
	return drain(st.Session, stream, *flows)
}

// drain consumes a session stream: records as CSV, progress to stderr,
// then the final summary in cmd/horse's report format.
func drain(session string, stream *wire.Stream, flowsOut string) error {
	out := io.Writer(os.Stdout)
	if flowsOut != "" {
		f, err := os.Create(flowsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintln(out, "id,arrival_s,end_s,size_bits,sent_bits,completed,outcome,path_len,punts")
	n := 0
	done, err := stream.Drain(
		func(p wire.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "horsectl: t=%.3fs events=%d records=%d\n",
				float64(p.NowNs)/1e9, p.Events, n)
		},
		func(r wire.Record) {
			n++
			fmt.Fprintf(out, "%d,%.9f,%.9f,%g,%g,%t,%s,%d,%d\n",
				r.ID, float64(r.ArrivalNs)/1e9, float64(r.EndNs)/1e9,
				float64(r.SizeBits), float64(r.SentBits),
				r.Completed, r.Outcome, r.PathLen, r.Punts)
		})
	if err != nil {
		return err
	}
	printDone(session, done)
	if done.State == wire.StateFailed {
		return fmt.Errorf("session %s failed: %s", session, done.Error)
	}
	return nil
}

func printDone(session string, d wire.DoneEvent) {
	fmt.Fprintf(os.Stderr, "horsectl: session %s %s", session, d.State)
	if d.Error != "" {
		fmt.Fprintf(os.Stderr, " (%s)", d.Error)
	}
	fmt.Fprintln(os.Stderr)
	if d.Summary == nil {
		return
	}
	s := d.Summary
	fmt.Fprintf(os.Stderr, "run:      %d events\n", s.Counters.EventsRun)
	fmt.Fprintf(os.Stderr, "flows:    %d completed, %d dropped, %d looped, %d packet-ins, %d flow-mods\n",
		s.Counters.FlowsCompleted, s.Counters.FlowsDropped, s.Counters.FlowsLooped,
		s.Counters.PacketIns, s.Counters.FlowMods)
	if s.FCT != nil {
		fmt.Fprintf(os.Stderr, "fct:      n=%d mean=%.4fs p50=%.4fs p90=%.4fs p99=%.4fs max=%.4fs\n",
			s.FCT.N, s.FCT.Mean, s.FCT.P50, s.FCT.P90, s.FCT.P99, s.FCT.Max)
	}
}

func list(c *wire.Client) error {
	sessions, err := c.List()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %-9s %-8s %7s %12s %10s\n",
		"SESSION", "NAME", "STATE", "FIDELITY", "WORKERS", "T(s)", "EVENTS")
	for _, s := range sessions {
		fmt.Printf("%-8s %-12s %-9s %-8s %7d %12.3f %10d\n",
			s.Session, s.Name, s.State, s.Fidelity, s.Workers,
			float64(s.NowNs)/1e9, s.Events)
	}
	return nil
}

func sessionCmd(args []string, fn func(string) (wire.SessionStatus, error)) error {
	if len(args) != 1 {
		return fmt.Errorf("need exactly one session ID")
	}
	st, err := fn(args[0])
	if err != nil {
		return err
	}
	b, _ := json.MarshalIndent(st, "", "  ")
	fmt.Println(string(b))
	return nil
}

func readSpec(path string, spec *wire.SessionSpec) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return fmt.Errorf("spec %s: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horsectl:", err)
	os.Exit(1)
}
