// Command horsegen generates Horse traffic traces as CSV: Poisson arrivals
// with heavy-tailed sizes, or IXP gravity-matrix replay with diurnal
// modulation. Traces are deterministic per seed and replayable with
// `horse -trace`.
//
// Usage:
//
//	horsegen -kind poisson -hosts 64 -lambda 500 -horizon 10s > trace.csv
//	horsegen -kind ixp -members 200 -replay 24h -epoch 1h > day.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"horse/internal/ixp"
	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/traffic"
)

func main() {
	var (
		kind    = flag.String("kind", "poisson", "workload: poisson|ixp")
		hosts   = flag.Int("hosts", 32, "number of hosts (poisson; IDs 0..n-1 as in leaf-spine builders)")
		lambda  = flag.Float64("lambda", 200, "arrival rate (flows/s)")
		horizon = flag.Duration("horizon", 5*time.Second, "workload horizon")
		tcpFrac = flag.Float64("tcp", 0.7, "TCP fraction")
		xmin    = flag.Float64("xmin", 1e5, "Pareto minimum flow size (bits)")
		alpha   = flag.Float64("alpha", 1.3, "Pareto tail exponent")
		seed    = flag.Int64("seed", 1, "generator seed")

		members = flag.Int("members", 100, "IXP members")
		replay  = flag.Duration("replay", 24*time.Hour, "IXP replay horizon")
		epoch   = flag.Duration("epoch", time.Hour, "IXP replay epoch")
		aggGbps = flag.Float64("agg-gbps", 50, "IXP aggregate traffic (Gbps)")
		density = flag.Float64("density", 0.2, "IXP peering density (0..1]")
	)
	flag.Parse()

	var tr traffic.Trace
	switch *kind {
	case "poisson":
		// Host IDs follow the leaf-spine builder layout: hosts are the
		// host-kind nodes of a fabric sized to fit the count.
		leaves := (*hosts + 3) / 4
		topo := netgraph.LeafSpine(leaves, 2, 4, netgraph.Gig, netgraph.TenGig)
		ids := topo.Hosts()
		if len(ids) > *hosts {
			ids = ids[:*hosts]
		}
		g := traffic.NewGenerator(*seed)
		tr = g.PoissonArrivals(traffic.PoissonConfig{
			Hosts:       ids,
			Lambda:      *lambda,
			Horizon:     simtime.FromSeconds(horizon.Seconds()),
			Sizes:       traffic.Pareto{XMin: *xmin, Alpha: *alpha},
			TCPFraction: *tcpFrac,
			CBRRateBps:  1e7,
		})
	case "ixp":
		fab, err := ixp.Build(ixp.LargeIXP(*members))
		if err != nil {
			fatal(err)
		}
		tr = fab.ReplayTrace(*aggGbps*1e9, *density,
			simtime.FromSeconds(epoch.Seconds()),
			simtime.FromSeconds(replay.Seconds()), *seed)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	if err := tr.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "horsegen: wrote %d demands\n", len(tr))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horsegen:", err)
	os.Exit(1)
}
