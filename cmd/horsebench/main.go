// Command horsebench regenerates the full Horse evaluation: every
// experiment in DESIGN.md's index (E1–E6), printed as the tables recorded
// in EXPERIMENTS.md.
//
// Usage:
//
//	horsebench            # full suite (~minutes)
//	horsebench -quick     # reduced suite (~seconds)
//	horsebench -only E3   # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"horse/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced suite")
	only := flag.String("only", "", "run a single experiment (E1..E6)")
	flag.Parse()

	var tables []*experiments.Table
	switch strings.ToUpper(*only) {
	case "":
		if *quick {
			tables = experiments.Quick()
		} else {
			tables = experiments.All()
		}
	case "E1":
		tables = []*experiments.Table{experiments.E1PolicyCoexistence()}
	case "E2":
		tables = []*experiments.Table{experiments.E2Scale([]int{4, 8, 16, 32}, []float64{200, 1000, 5000})}
	case "E3":
		tables = []*experiments.Table{experiments.E3Accuracy()}
	case "E4":
		tables = []*experiments.Table{experiments.E4IXPReplay([]int{100, 200, 400}, 24)}
	case "E5":
		tables = []*experiments.Table{experiments.E5ConfigSweep()}
	case "E6":
		tables = []*experiments.Table{experiments.E6Ablations()}
	default:
		fmt.Fprintf(os.Stderr, "horsebench: unknown experiment %q\n", *only)
		os.Exit(1)
	}

	for _, t := range tables {
		t.Fprint(func(format string, args ...interface{}) { fmt.Printf(format, args...) })
	}
}
