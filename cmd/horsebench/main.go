// Command horsebench regenerates the full Horse evaluation: every
// experiment in DESIGN.md's index (E1–E8), printed as the tables recorded
// in EXPERIMENTS.md. Independent grid cells (fabric sizes, arrival rates,
// member counts, config rows, ablation arms) fan out across a worker pool.
//
// Usage:
//
//	horsebench                  # full suite (~minutes sequential, parallel by default)
//	horsebench -quick           # reduced suite (~seconds)
//	horsebench -only E3         # one experiment
//	horsebench -parallel 4      # bound the worker pool (default GOMAXPROCS)
//	horsebench -json out.json   # machine-readable BENCH_*.json report ("-" = stdout)
package main

import (
	"os"

	"horse/internal/benchcli"
)

func main() {
	os.Exit(benchcli.Main("horsebench", os.Args[1:], os.Stdout, os.Stderr))
}
