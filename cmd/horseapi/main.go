// Command horseapi prints the exported API surface of the horse façade
// package as deterministic text. `make api` redirects it into
// api/horse.txt, the golden file TestAPISurfaceGolden (and the CI lint
// job) diffs against the live source — so a breaking change to the public
// API cannot land silently.
//
// Usage:
//
//	horseapi [-dir .]
package main

import (
	"flag"
	"fmt"
	"os"

	"horse/internal/apisurface"
)

func main() {
	dir := flag.String("dir", ".", "directory of the package to render (the repo root)")
	flag.Parse()
	s, err := apisurface.Surface(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "horseapi:", err)
		os.Exit(1)
	}
	fmt.Print(s)
}
