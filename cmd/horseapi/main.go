// Command horseapi renders the exported API surface of the repo's public
// packages as deterministic text goldens under api/: horse.txt (the root
// façade), wire.txt (the api/wire protocol package), and service.txt
// (the exported surface of internal/service, the session layer hosted
// apps embed). `make api` regenerates them; TestAPISurfaceGolden and the
// CI lint job's `make api-check` diff the live source against these
// files — so a breaking change to any public surface cannot land
// silently.
//
// Usage:
//
//	horseapi -out api            # (re)write every golden
//	horseapi -check -out api     # exit nonzero if any golden is stale
//	horseapi -dir api/wire       # print one package's surface to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"horse/internal/apisurface"
)

// packages maps source directory (relative to -root) to golden file name
// (relative to -out).
var packages = []struct{ dir, golden string }{
	{".", "horse.txt"},
	{"api/wire", "wire.txt"},
	{"internal/service", "service.txt"},
}

func main() {
	root := flag.String("root", ".", "repository root")
	out := flag.String("out", "", "write per-package goldens into this directory")
	check := flag.Bool("check", false, "with -out: diff instead of writing, exit 1 on drift")
	dir := flag.String("dir", "", "render a single package directory to stdout")
	flag.Parse()

	if *dir != "" {
		s, err := apisurface.Surface(*dir)
		if err != nil {
			fatal(err)
		}
		fmt.Print(s)
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("pass -out DIR (golden mode) or -dir PKG (stdout mode)"))
	}

	stale := false
	for _, p := range packages {
		s, err := apisurface.Surface(filepath.Join(*root, p.dir))
		if err != nil {
			fatal(err)
		}
		golden := filepath.Join(*out, p.golden)
		if *check {
			want, err := os.ReadFile(golden)
			if err != nil {
				fmt.Fprintf(os.Stderr, "horseapi: %s: %v\n", golden, err)
				stale = true
				continue
			}
			if string(want) != s {
				fmt.Fprintf(os.Stderr, "horseapi: %s is stale (package %s drifted); run 'make api' and commit the result\n", golden, p.dir)
				stale = true
			}
			continue
		}
		if err := os.WriteFile(golden, []byte(s), 0o644); err != nil {
			fatal(err)
		}
	}
	if stale {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horseapi:", err)
	os.Exit(1)
}
