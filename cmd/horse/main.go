// Command horse runs one Horse simulation scenario: a topology, a policy
// configuration (Figure-2 style JSON), and a workload (CSV trace or a
// generated one), and reports flow and link statistics.
//
// Usage:
//
//	horse -topo leafspine -leaves 8 -spines 4 -hosts 4 \
//	      -policy policy.json -lambda 500 -horizon 10s \
//	      -flows flows.csv -links links.csv
//
//	horse -topo ixp -members 200 -replay 24h -epoch 1h
//
// The experiments subcommand runs the E1–E8 evaluation grid on a worker
// pool and can emit the machine-readable bench report:
//
//	horse experiments -quick -parallel 8 -json BENCH_experiments.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"horse"
	"horse/internal/benchcli"
	"horse/internal/controller"
	"horse/internal/flowsim"
	"horse/internal/ixp"
	"horse/internal/metrics"
	"horse/internal/netgraph"
	"horse/internal/policy"
	"horse/internal/simtime"
	"horse/internal/traffic"
)

func main() {
	// The experiments subcommand shares cmd/horsebench's driver so the
	// two binaries expose the identical E1–E8 grid and flags.
	if len(os.Args) > 1 && os.Args[1] == "experiments" {
		os.Exit(benchcli.Main("horse", os.Args[2:], os.Stdout, os.Stderr))
	}
	runScenario()
}

func runScenario() {
	var (
		topoKind = flag.String("topo", "leafspine", "topology: leafspine|fattree|ring|linear|dumbbell|ixp")
		leaves   = flag.Int("leaves", 4, "leaf switches (leafspine)")
		spines   = flag.Int("spines", 2, "spine switches (leafspine)")
		hosts    = flag.Int("hosts", 4, "hosts per leaf / switches in ring")
		k        = flag.Int("k", 4, "fat-tree arity")
		members  = flag.Int("members", 100, "IXP members")

		policyPath = flag.String("policy", "", "policy JSON file (default: proactive MAC forwarding)")
		validate   = flag.Bool("validate", true, "run policy composition validation")

		tracePath = flag.String("trace", "", "CSV trace to replay (overrides generator)")
		lambda    = flag.Float64("lambda", 200, "Poisson arrival rate (flows/s)")
		horizon   = flag.Duration("horizon", 5*time.Second, "workload horizon (virtual)")
		tcpFrac   = flag.Float64("tcp", 0.7, "fraction of TCP flows")
		seed      = flag.Int64("seed", 1, "workload seed")

		replay = flag.Duration("replay", 0, "IXP replay horizon (enables matrix replay)")
		epoch  = flag.Duration("epoch", time.Hour, "IXP replay epoch")
		aggGbs = flag.Float64("agg-gbps", 50, "IXP aggregate traffic (Gbps)")

		until      = flag.Duration("until", 0, "virtual-time bound (0 = run until traffic drains; required sense when monitoring polls forever)")
		statsEvery = flag.Duration("stats-every", 100*time.Millisecond, "utilization sampling period")
		flowsOut   = flag.String("flows", "", "write per-flow CSV here")
		linksOut   = flag.String("links", "", "write link-utilization CSV here")
	)
	flag.Parse()

	topo, fab, err := buildTopo(*topoKind, *leaves, *spines, *hosts, *k, *members)
	if err != nil {
		fatal(err)
	}

	ctrl, cfg, err := buildController(topo, *policyPath, *validate)
	if err != nil {
		fatal(err)
	}

	eng, err := horse.New(topo,
		horse.WithController(ctrl),
		horse.WithMiss(horse.MissController),
		horse.WithStatsEvery(simtime.FromSeconds(statsEvery.Seconds())),
	)
	if err != nil {
		fatal(err)
	}

	tr, err := buildWorkload(topo, fab, *tracePath, *lambda, *horizon, *tcpFrac, *seed, *replay, *epoch, *aggGbs)
	if err != nil {
		fatal(err)
	}
	eng.Load(tr)

	// A monitoring policy polls forever, so an open-ended run would never
	// drain; bound it at the workload end plus a grace period.
	bound := simtime.Never
	if *until > 0 {
		bound = simtime.AtSeconds(until.Seconds())
	} else if cfg != nil && cfg.Monitoring != nil {
		var end simtime.Time
		for _, d := range tr {
			t := d.Start.Add(d.Duration)
			if t > end {
				end = t
			}
		}
		bound = end.Add(30 * simtime.Second)
		fmt.Fprintf(os.Stderr, "horse: monitoring enabled; bounding run at %v (override with -until)\n", bound)
	}

	// Ctrl-C cancels the run through the engine lifecycle: the simulation
	// stops promptly and reports the partial (but consistent) statistics
	// accumulated up to the interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	col, runErr := eng.Run(ctx, bound)
	wall := time.Since(start)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "horse: run interrupted (%v); reporting partial statistics\n", runErr)
	}

	fmt.Printf("topology: %d switches, %d hosts, %d links\n",
		len(topo.Switches()), len(topo.Hosts()), topo.NumLinks())
	fmt.Printf("workload: %d flows\n", len(tr))
	fmt.Printf("run:      %d events in %v (%.0f events/s)\n",
		col.EventsRun, wall.Round(time.Millisecond), float64(col.EventsRun)/wall.Seconds())
	fmt.Printf("flows:    %d completed, %d dropped, %d looped, %d packet-ins, %d flow-mods\n",
		col.FlowsCompleted, col.FlowsDropped, col.FlowsLooped, col.PacketIns, col.FlowMods)
	s := metrics.Summarize(col.FCTs())
	fmt.Printf("fct:      n=%d mean=%.4fs p50=%.4fs p90=%.4fs p99=%.4fs max=%.4fs\n",
		s.N, s.Mean, s.P50, s.P90, s.P99, s.Max)
	top := col.TopLinks(5)
	mean := col.MeanLinkUtilization()
	for _, d := range top {
		fmt.Printf("busy:     %s mean-util=%.3f\n", d, mean[d])
	}

	if *flowsOut != "" {
		if err := writeFile(*flowsOut, col.WriteFlowsCSV); err != nil {
			fatal(err)
		}
	}
	if *linksOut != "" {
		if err := writeFile(*linksOut, col.WriteLinkSeriesCSV); err != nil {
			fatal(err)
		}
	}
}

func buildTopo(kind string, leaves, spines, hosts, k, members int) (*netgraph.Topology, *ixp.Fabric, error) {
	switch kind {
	case "leafspine":
		return netgraph.LeafSpine(leaves, spines, hosts, netgraph.Gig, netgraph.TenGig), nil, nil
	case "fattree":
		return netgraph.FatTree(k, netgraph.Gig), nil, nil
	case "ring":
		return netgraph.Ring(hosts, netgraph.Gig, netgraph.TenGig), nil, nil
	case "linear":
		return netgraph.Linear(hosts, netgraph.Gig, netgraph.TenGig), nil, nil
	case "dumbbell":
		return netgraph.Dumbbell(hosts, hosts, netgraph.Gig, netgraph.TenGig), nil, nil
	case "ixp":
		fab, err := ixp.Build(ixp.LargeIXP(members))
		if err != nil {
			return nil, nil, err
		}
		return fab.Topo, fab, nil
	}
	return nil, nil, fmt.Errorf("unknown topology %q", kind)
}

func buildController(topo *netgraph.Topology, path string, validate bool) (flowsim.Controller, *policy.Config, error) {
	if path == "" {
		return controller.NewChain(&controller.ProactiveMAC{}), nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	cfg, err := policy.Parse(f)
	if err != nil {
		return nil, nil, err
	}
	if validate {
		for _, c := range cfg.Validate(topo) {
			fmt.Fprintf(os.Stderr, "policy validation: %s\n", c)
		}
	}
	chain, err := cfg.Compile(topo)
	if err != nil {
		return nil, nil, err
	}
	return chain, cfg, nil
}

func buildWorkload(topo *netgraph.Topology, fab *ixp.Fabric, tracePath string,
	lambda float64, horizon time.Duration, tcpFrac float64, seed int64,
	replay, epoch time.Duration, aggGbps float64) (traffic.Trace, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return traffic.ReadCSV(f)
	}
	if replay > 0 {
		if fab == nil {
			return nil, fmt.Errorf("-replay requires -topo ixp")
		}
		return fab.ReplayTrace(aggGbps*1e9, 0.2,
			simtime.FromSeconds(epoch.Seconds()),
			simtime.FromSeconds(replay.Seconds()), seed), nil
	}
	g := traffic.NewGenerator(seed)
	return g.PoissonArrivals(traffic.PoissonConfig{
		Hosts:       topo.Hosts(),
		Lambda:      lambda,
		Horizon:     simtime.FromSeconds(horizon.Seconds()),
		Sizes:       traffic.Pareto{XMin: 1e5, Alpha: 1.3},
		TCPFraction: tcpFrac,
		CBRRateBps:  1e7,
	}), nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horse:", err)
	os.Exit(1)
}
