// Command horsed is the simulation-as-a-service daemon: it manages many
// concurrent named simulation sessions behind the versioned horse-wire
// protocol (api/wire), with admission control over a shared worker
// budget and streaming results.
//
// Usage:
//
//	horsed -socket /run/horsed.sock
//	horsed -socket /tmp/horsed.sock -tcp 127.0.0.1:7117 \
//	       -max-sessions 4 -max-workers 16
//
// SIGTERM/SIGINT drains gracefully: running sessions are cancelled,
// their watchers receive partial-but-consistent results and Done events,
// then the daemon exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"horse/api/wire"
	"horse/internal/service"
	"horse/internal/simtime"
)

func main() {
	var (
		socket        = flag.String("socket", "", "unix socket path to listen on")
		tcp           = flag.String("tcp", "", "TCP address to listen on (e.g. 127.0.0.1:7117)")
		maxSessions   = flag.Int("max-sessions", 0, "max concurrently running sessions (0 = GOMAXPROCS)")
		maxWorkers    = flag.Int("max-workers", 0, "total shard-worker budget across running sessions (0 = GOMAXPROCS)")
		queueLimit    = flag.Int("queue", 0, "admission queue length (0 = default 64)")
		progressEvery = flag.Duration("progress-every", 100*time.Millisecond, "virtual-time period of progress pushes")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for sessions to finalize")
	)
	flag.Parse()

	if *socket == "" && *tcp == "" {
		fatal(fmt.Errorf("nothing to listen on: pass -socket and/or -tcp"))
	}

	mgr := service.New(service.Config{
		MaxSessions:   *maxSessions,
		MaxWorkers:    *maxWorkers,
		QueueLimit:    *queueLimit,
		ProgressEvery: simtime.FromSeconds(progressEvery.Seconds()),
	})
	srv := service.NewServer(mgr, "horsed/"+wire.V1)

	errc := make(chan error, 2)
	var listeners []string
	if *socket != "" {
		// A stale socket file from a killed daemon blocks the bind;
		// remove it (a live daemon holds the listener, so its bind
		// would have failed us first anyway).
		os.Remove(*socket)
		l, err := net.Listen("unix", *socket)
		if err != nil {
			fatal(err)
		}
		defer os.Remove(*socket)
		listeners = append(listeners, "unix:"+*socket)
		go func() { errc <- srv.Serve(l) }()
	}
	if *tcp != "" {
		l, err := net.Listen("tcp", *tcp)
		if err != nil {
			fatal(err)
		}
		listeners = append(listeners, "tcp:"+l.Addr().String())
		go func() { errc <- srv.Serve(l) }()
	}
	cfg := mgr.Config()
	fmt.Fprintf(os.Stderr, "horsed: listening on %v (max-sessions=%d max-workers=%d queue=%d)\n",
		listeners, cfg.MaxSessions, cfg.MaxWorkers, cfg.QueueLimit)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "horsed: %v, draining...\n", s)
	case err := <-errc:
		if err != nil {
			fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "horsed: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "horsed: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "horsed:", err)
	os.Exit(1)
}
