// Simulation as a service: the horse-wire protocol end to end. The
// program embeds a horsed-style server on a throwaway unix socket (pass
// -addr to talk to a real daemon instead), dials it with the wire
// client, and submits two sessions — a streamed flow-level leaf–spine
// run whose records arrive as server pushes, and a second session
// canceled mid-run to show the partial-but-consistent terminal summary.
// The spec is pure data: the daemon rebuilds topology, workload, and
// options from it through the same façade bridge a one-shot caller
// uses, so the streamed records are byte-identical to a local run.
//
//	go run ./examples/service-client
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"horse"
	"horse/api/wire"
	"horse/internal/service"
)

func main() {
	addr := flag.String("addr", "", "daemon address (unix:/path or tcp:host:port); empty = embed a server")
	flag.Parse()

	target := *addr
	if target == "" {
		stop, sock, err := embedServer()
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		target = "unix:" + sock
		fmt.Printf("embedded server on %s\n", target)
	}

	c, err := wire.DialAddr(target)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("handshake: %s via %s\n\n", c.Server(), c.Version())

	// One serializable spec: a 4×2 leaf–spine fabric, a seed-reproducible
	// Poisson workload under ECMP, 5 virtual seconds.
	spec := wire.SessionSpec{
		Topology: wire.TopoSpec{Kind: wire.TopoLeafSpine, Leaves: 4, Spines: 2, Hosts: 4},
		Workload: wire.WorkloadSpec{Poisson: &wire.PoissonSpec{
			Seed: 42, Lambda: 300, HorizonNs: int64(2 * horse.Second),
			Size:        wire.SizeSpec{Kind: wire.SizePareto, XMin: 1e5, Alpha: 1.3},
			TCPFraction: 0.8, CBRRateBps: 1e7,
		}},
		Options: wire.OptionsSpec{
			Fidelity:   wire.FidelityFlow,
			Controller: []wire.AppSpec{{Kind: wire.AppECMP}},
			Miss:       "controller",
		},
		UntilNs: int64(5 * horse.Second),
	}

	// Session 1: streamed. Records flow over the socket as the engine
	// finalizes them; the daemon retains nothing.
	st, stream, err := c.Submit(wire.SubmitParams{Name: "demo", Spec: spec, Stream: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (%q, %s fidelity, cost %d worker)\n", st.Session, st.Name, st.Fidelity, st.Workers)
	records := 0
	done, err := stream.Drain(
		func(p wire.ProgressEvent) {
			fmt.Printf("  t=%.1fs  %d events\n", horse.Time(p.NowNs).Seconds(), p.Events)
		},
		func(r wire.Record) { records++ },
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: state=%s records=%d completed=%d", done.State, records, done.Summary.Counters.FlowsCompleted)
	if fct := done.Summary.FCT; fct != nil {
		fmt.Printf(" fct_p99=%.1fms", fct.P99*1e3)
	}
	fmt.Println()

	// Session 2: canceled mid-run. A much heavier workload (so the cancel
	// lands while the engine is still busy); the terminal summary
	// reflects the stop instant — partial, but internally consistent.
	heavy := spec
	heavy.Workload = wire.WorkloadSpec{Poisson: &wire.PoissonSpec{
		Seed: 42, Lambda: 4000, HorizonNs: int64(30 * horse.Second),
		Size:        wire.SizeSpec{Kind: wire.SizePareto, XMin: 1e5, Alpha: 1.3},
		TCPFraction: 0.8, CBRRateBps: 1e7,
	}}
	heavy.UntilNs = int64(60 * horse.Second)
	st2, stream2, err := c.Submit(wire.SubmitParams{Name: "doomed", Spec: heavy, Stream: true})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		if _, err := c.Cancel(st2.Session); err != nil {
			log.Print(err)
		}
	}()
	done2, err := stream2.Drain(nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncanceled %s: state=%s started=%d completed=%d\n", st2.Session, done2.State,
		done2.Summary.Counters.FlowsStarted, done2.Summary.Counters.FlowsCompleted)

	if _, err := c.Retire(st.Session); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Retire(st2.Session); err != nil {
		log.Fatal(err)
	}
}

// embedServer runs an in-process service on a temp unix socket — the
// same Manager+Server pair cmd/horsed wraps.
func embedServer() (stop func(), sock string, err error) {
	dir, err := os.MkdirTemp("", "horse-svc")
	if err != nil {
		return nil, "", err
	}
	sock = filepath.Join(dir, "horsed.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	srv := service.NewServer(service.New(service.Config{}), "service-client-demo")
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Print(err)
		}
	}()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Print(err)
		}
		os.RemoveAll(dir)
	}, sock, nil
}
