// Many-core packet simulation of a fat-tree fabric: the same workload runs
// on the serial engine and on the sharded executor (one event loop per
// topology partition, conservatively synchronized on the cut's propagation
// delay), reporting events/sec, the speedup, and the determinism contract —
// Records() must be byte-identical at every shard count.
//
//	go run ./examples/manycore-fabric
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"horse"
)

func main() {
	const k = 4 // fat-tree arity: 20 switches, 16 hosts, 4 pods
	build := func(shards int) horse.Engine {
		topo := horse.FatTree(k, horse.Gig)
		eng, err := horse.New(topo,
			horse.WithFidelity(horse.Packet),
			horse.WithMiss(horse.MissDrop),
			horse.WithShards(shards),
		)
		if err != nil {
			log.Fatal(err)
		}
		horse.InstallMACRoutes(eng.Network())
		gen := horse.NewGenerator(101)
		eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
			Hosts: topo.Hosts(), Lambda: 40 * float64(len(topo.Hosts())),
			Horizon: 200 * horse.Millisecond,
			Sizes:   horse.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 2e7,
		}))
		return eng
	}

	fmt.Printf("k=%d fat-tree on %d cores (GOMAXPROCS)\n\n", k, runtime.GOMAXPROCS(0))
	fmt.Printf("%-8s %10s %10s %12s %9s %s\n", "shards", "events", "wall-ms", "events/ms", "speedup", "records")

	var baseline []string
	var baseWall time.Duration
	for _, shards := range []int{1, 2, 4, 8} {
		eng := build(shards)
		start := time.Now()
		col, err := eng.Run(context.Background(), horse.Time(2*horse.Second))
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(start)

		// The determinism contract: identical records at any shard count.
		var digest []string
		for _, r := range col.Flows() {
			digest = append(digest, fmt.Sprintf("%d|%v|%s|%v|%g", r.ID, r.End, r.Outcome, r.Completed, r.SentBits))
		}
		verdict := "identical"
		if baseline == nil {
			baseline = digest
			baseWall = wall
			verdict = "reference"
		} else if len(digest) != len(baseline) {
			verdict = "DIVERGED"
		} else {
			for i := range digest {
				if digest[i] != baseline[i] {
					verdict = "DIVERGED"
					break
				}
			}
		}
		ev := eng.(*horse.PacketSimulator).EventsDispatched()
		fmt.Printf("%-8d %10d %10.1f %12.1f %8.2fx %s\n",
			shards, ev, float64(wall.Microseconds())/1000,
			float64(ev)/(float64(wall.Microseconds())/1000),
			float64(baseWall)/float64(wall), verdict)
	}
	fmt.Println("\nShards>1 partitions the fabric (pods as natural cuts) and runs one")
	fmt.Println("event loop per shard; windows synchronize on the 50µs cut latency.")
	fmt.Println("On a single-core machine the speedup column stays ~1; the records")
	fmt.Println("column must say identical everywhere regardless.")
}
