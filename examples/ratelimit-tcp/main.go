// Rate limiting vs TCP: the paper's motivating example that "a rate
// limiting policy can undermine the quality of a TCP transmission". The
// same TCP transfer runs with no policer, a generous policer, and a tight
// policer; the tight policer degrades throughput beyond its nominal rate
// because policer loss caps TCP via the Mathis bound.
//
//	go run ./examples/ratelimit-tcp
package main

import (
	"context"
	"fmt"
	"log"

	"horse"
)

func main() {
	for _, rateMbps := range []float64{0, 500, 50} {
		fct, sent := run(rateMbps)
		label := "no policer"
		if rateMbps > 0 {
			label = fmt.Sprintf("policer %4.0f Mbps", rateMbps)
		}
		fmt.Printf("%-18s FCT=%7.3fs  mean-throughput=%6.1f Mbps\n",
			label, fct, sent/fct/1e6)
	}
}

func run(rateMbps float64) (fctSeconds, sentBits float64) {
	topo := horse.LeafSpine(2, 2, 2, horse.Gig, horse.TenGig)
	h0 := topo.MustLookup("h0")
	h3 := topo.MustLookup("h3")

	apps := []horse.App{&horse.ProactiveMAC{}}
	if rateMbps > 0 {
		sw, _ := topo.AttachedSwitch(h0)
		apps = append(apps, &horse.RateLimiter{Rules: []horse.RateLimitRule{{
			Match:   dstMatch(h3),
			RateBps: rateMbps * 1e6,
			At:      sw,
		}}})
	}

	eng, err := horse.New(topo,
		horse.WithController(horse.NewChain(apps...)),
		horse.WithMiss(horse.MissController),
	)
	if err != nil {
		log.Fatal(err)
	}

	// One backlogged 200 Mbit TCP transfer, starting after rule install.
	d := horse.Demand{
		Key:      flowKey(h0, h3),
		Src:      h0,
		Dst:      h3,
		Start:    horse.Time(10 * horse.Millisecond),
		SizeBits: 2e8,
		RateBps:  horse.Unlimited,
		TCP:      true,
	}
	eng.Load(horse.Trace{d})
	col, err := eng.Run(context.Background(), horse.Never)
	if err != nil {
		log.Fatal(err)
	}
	f := col.Flows()[0]
	if !f.Completed {
		panic("transfer did not complete: " + f.Outcome)
	}
	return f.FCT().Seconds(), f.SentBits
}

func flowKey(src, dst horse.NodeID) horse.FlowKey {
	// The addressing plan: host n has MAC n+1 and IP 10.x.y.z.
	return horse.FlowKey{
		EthSrc:  hostMAC(src),
		EthDst:  hostMAC(dst),
		EthType: 0x0800,
		IPSrc:   hostIP(src),
		IPDst:   hostIP(dst),
		Proto:   6, // TCP
		SrcPort: 40000,
		DstPort: 80,
	}
}

func hostMAC(id horse.NodeID) horse.MAC {
	var m horse.MAC
	v := uint64(id) + 1
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

func hostIP(id horse.NodeID) horse.IPv4 {
	v := 0x0a000000 | uint32(id)&0x00ffffff
	return horse.IPv4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

func dstMatch(dst horse.NodeID) horse.Match {
	return horse.Match{}.WithEthDst(hostMAC(dst))
}
