// IXP replay: the paper's headline evaluation scenario. Build an SDN model
// of a large IXP fabric, generate a gravity-model member traffic matrix
// with heavy-tailed member weights, modulate it over a simulated day, and
// replay it hour by hour while an ECMP fabric controller forwards.
//
//	go run ./examples/ixp-replay
package main

import (
	"context"
	"fmt"
	"log"

	"horse"
)

func main() {
	// A 200-member IXP: 10 edge switches, 4-core 100G spine.
	fabric, err := horse.BuildIXP(horse.LargeIXP(200))
	if err != nil {
		panic(err)
	}
	fmt.Printf("fabric: %d members on %d edges / %d cores\n",
		len(fabric.Members), len(fabric.Edges), len(fabric.Cores))

	eng, err := horse.New(fabric.Topo,
		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{}, &horse.Monitor{Every: 10 * horse.Minute})),
		horse.WithMiss(horse.MissController),
		horse.WithStatsEvery(10*horse.Minute),
		// A simulated day is a long run: report progress every 6 virtual
		// hours off the kernel's pre-advance path.
		horse.WithProgressEvery(horse.Duration(6*horse.Hour), func(p horse.Progress) {
			fmt.Printf("progress: t=%v, %d events dispatched\n", p.Now, p.Events)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 24 hours of diurnal gravity traffic, 200 Gbps aggregate at peak
	// density 0.2 (each member pair peers with probability 0.2).
	trace := fabric.ReplayTrace(200e9, 0.2, horse.Hour, 24*horse.Hour, 7)
	fmt.Printf("replaying %d epoch flows over a simulated day\n", len(trace))
	eng.Load(trace)

	col, err := eng.Run(context.Background(), horse.Time(25*horse.Hour))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("events=%d completed=%d\n", col.EventsRun, col.FlowsCompleted)

	// Diurnal shape: report mean fabric throughput per 6h quarter.
	series := col.LinkSeries()
	quarters := make([]float64, 4)
	counts := make([]float64, 4)
	for _, s := range series {
		q := int(s.At / horse.Time(6*horse.Hour))
		if q >= 0 && q < 4 {
			quarters[q] += s.RateBps
			counts[q]++
		}
	}
	for q := 0; q < 4; q++ {
		if counts[q] > 0 {
			fmt.Printf("hours %2d-%2d: mean sampled link rate %.2f Gbps\n",
				q*6, q*6+6, quarters[q]/counts[q]/1e9)
		}
	}
}
