// Quickstart: simulate a leaf-spine fabric under ECMP load balancing with
// a Poisson mix of TCP and CBR flows, and print flow-completion-time and
// link-utilization summaries.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"horse"
)

func main() {
	// A 4-leaf / 2-spine fabric with 8 hosts per leaf.
	topo := horse.LeafSpine(4, 2, 8, horse.Gig, horse.TenGig)

	// One constructor for every fidelity; swap horse.WithFidelity(
	// horse.Packet) or (horse.Hybrid) in and the program still runs.
	eng, err := horse.New(topo,
		horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
		horse.WithMiss(horse.MissController),
		horse.WithStatsEvery(100*horse.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 10 virtual seconds of Poisson arrivals: 80% TCP transfers with
	// heavy-tailed sizes, 20% 10 Mbps CBR flows.
	gen := horse.NewGenerator(42)
	trace := gen.PoissonArrivals(horse.PoissonConfig{
		Hosts:       topo.Hosts(),
		Lambda:      500,
		Horizon:     10 * horse.Second,
		Sizes:       horse.Pareto{XMin: 1e5, Alpha: 1.3},
		TCPFraction: 0.8,
		CBRRateBps:  1e7,
	})
	eng.Load(trace)

	col, err := eng.Run(context.Background(), horse.Never)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d flows through %d events\n", len(col.Flows()), col.EventsRun)
	fmt.Printf("completed=%d dropped=%d packet-ins=%d flow-mods=%d\n",
		col.FlowsCompleted, col.FlowsDropped, col.PacketIns, col.FlowMods)

	s := horse.Summarize(col.FCTs())
	fmt.Printf("FCT: mean=%.4fs p50=%.4fs p90=%.4fs p99=%.4fs\n", s.Mean, s.P50, s.P90, s.P99)

	mean := col.MeanLinkUtilization()
	for _, d := range col.TopLinks(3) {
		fmt.Printf("busiest: %s mean-utilization=%.3f\n", d, mean[d])
	}
}
