// Chaos on a leaf–spine fabric: a seed-reproducible random link
// failure/recovery process, a spine crash with table wipe, a controller
// outage, and a demand surge — all scripted on one scenario timeline and
// run under the ECMP load-balancing policy. The run reports the resilience
// metrics E8 sweeps: reconvergence latency, flows lost, rule churn, and
// FCT stretch against a failure-free baseline of the identical workload.
//
//	go run ./examples/chaos-fabric
package main

import (
	"context"
	"fmt"
	"log"

	"horse"
)

func main() {
	const window = horse.Time(10 * horse.Minute)
	run := func(disturb bool) (*horse.Collector, *horse.Scenario) {
		topo := horse.LeafSpine(4, 2, 2, horse.Gig, horse.TenGig)
		eng, err := horse.New(topo,
			horse.WithController(horse.NewChain(&horse.ECMPLoadBalancer{})),
			horse.WithMiss(horse.MissController),
		)
		if err != nil {
			log.Fatal(err)
		}
		gen := horse.NewGenerator(23)
		eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
			Hosts: topo.Hosts(), Lambda: 150, Horizon: 2 * horse.Second,
			Sizes: horse.Pareto{XMin: 1e5, Alpha: 1.5}, TCPFraction: 0.5, CBRRateBps: 1e7,
		}))

		// Both runs see the same demand surge (so FCT stretch compares
		// identical workloads); only the disturbed run gets the failures.
		// Apply validates each timeline against the topology and the run
		// window before anything schedules.
		surge := horse.NewScenario().Surge(horse.Time(1500*horse.Millisecond),
			gen.PoissonArrivals(horse.PoissonConfig{
				Hosts: topo.Hosts(), Lambda: 400, Horizon: 200 * horse.Millisecond,
				Sizes: horse.FixedSize(2e6), CBRRateBps: 2e7,
			}))
		if err := surge.Apply(eng, window); err != nil {
			log.Fatal(err)
		}

		// The failure timeline: random core-link outages, a spine crash
		// with table wipe, and a controller outage.
		tl := horse.RandomLinkFailures(topo, horse.FailureConfig{
			Seed: 7, MTBF: horse.Second, Recovery: 200 * horse.Millisecond,
			Horizon: horse.Time(2 * horse.Second), CoreOnly: true,
		})
		spine0 := topo.MustLookup("spine0")
		tl.SwitchOutage(horse.Time(500*horse.Millisecond), horse.Time(700*horse.Millisecond), spine0).
			ControllerOutage(horse.Time(1200*horse.Millisecond), horse.Time(1350*horse.Millisecond))
		if disturb {
			if err := tl.Apply(eng, window); err != nil {
				log.Fatal(err)
			}
		}
		col, err := eng.Run(context.Background(), window)
		if err != nil {
			log.Fatal(err)
		}
		return col, tl
	}

	baseline, _ := run(false)
	col, tl := run(true)
	out := horse.EvaluateScenario(tl, col, baseline)

	fmt.Printf("timeline:  %d scripted failures (first at %v)\n", out.Failures, firstAt(tl))
	fmt.Printf("reroutes:  %d (first reconvergence after %v)\n", out.Reroutes, out.RerouteLatency)
	fmt.Printf("flows:     %d completed, %d lost\n", out.FlowsCompleted, out.FlowsLost)
	fmt.Printf("control:   %d rule mutations (churn)\n", out.RuleChurn)
	fmt.Printf("stretch:   mean FCT %.2fx the failure-free baseline\n", out.FCTStretch)
}

func firstAt(tl *horse.Scenario) horse.Time {
	at, _ := tl.FirstFailure()
	return at
}
