// Policy composition: the Figure-1 scenario of the paper. An SDN fabric
// runs load balancing, blackholing, rate limiting, application-specific
// peering and source routing at once. The policy configuration is given in
// the paper's Figure-2 JSON style, validated for composition conflicts,
// compiled to controller apps, and simulated — including a deliberately
// conflicting configuration that validation flags.
//
//	go run ./examples/policy-composition
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"horse"
)

const goodPolicy = `{
  "forwarding": "ecmp",
  "blackholing": [{"dst": "h7"}],
  "rate_limiting": [{"to": "h6", "rate_mbps": 50, "at": "leaf0"}],
  "app_peering": [{"ingress": "leaf0", "egress": "spine1", "app": "http"}],
  "monitoring": {"poll_ms": 500}
}`

const conflictingPolicy = `{
  "forwarding": "ecmp",
  "blackholing": [{"dst": "h6"}],
  "rate_limiting": [{"to": "h6", "rate_mbps": 50, "at": "leaf0"}]
}`

func main() {
	topo := horse.LeafSpine(2, 2, 4, horse.Gig, horse.TenGig)

	// Validation catches the contradiction: rate-limiting traffic that a
	// blackhole drops can never take effect.
	bad, err := horse.ParsePolicy(strings.NewReader(conflictingPolicy))
	if err != nil {
		panic(err)
	}
	for _, c := range bad.Validate(topo) {
		fmt.Printf("validation: %s\n", c)
	}

	cfg, err := horse.ParsePolicy(strings.NewReader(goodPolicy))
	if err != nil {
		panic(err)
	}
	if conflicts := cfg.Validate(topo); len(conflicts) == 0 {
		fmt.Println("validation: good policy has no conflicts")
	}
	ctrl, err := cfg.Compile(topo)
	if err != nil {
		panic(err)
	}

	eng, err := horse.New(topo,
		horse.WithController(ctrl),
		horse.WithMiss(horse.MissController),
	)
	if err != nil {
		log.Fatal(err)
	}
	gen := horse.NewGenerator(3)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts:       topo.Hosts(),
		Lambda:      300,
		Horizon:     5 * horse.Second,
		Sizes:       horse.Pareto{XMin: 5e5, Alpha: 1.4},
		TCPFraction: 0.5,
		CBRRateBps:  2e7,
		DstPorts:    []uint16{80, 443, 9000},
	}))
	// The monitoring app polls forever, so bound the run.
	col, err := eng.Run(context.Background(), horse.Time(30*horse.Second))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flows=%d completed=%d blackholed(dropped)=%d\n",
		len(col.Flows()), col.FlowsCompleted, col.FlowsDropped)
	s := horse.Summarize(col.FCTs())
	fmt.Printf("FCT: mean=%.4fs p99=%.4fs\n", s.Mean, s.P99)
}
