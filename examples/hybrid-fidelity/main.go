// Hybrid fidelity: the mode the simulator is named for. One reactive
// scenario runs three times — pure flow-level, 50/50 hybrid, and pure
// packet-level — under the same reactive MAC controller. Foreground flows
// flagged for packet-level simulation see queues, slow start, and losses;
// background flows stay fluid; the coupler subtracts the background's
// fair-share rate from the link capacity the packet transmitters see.
// Watch accuracy (FCT drift vs the full-packet run) trade against events
// simulated.
//
//	go run ./examples/hybrid-fidelity
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"horse"
)

func main() {
	// The 100% run is the fidelity reference; the sweep reuses it for its
	// own 100% row (runs are deterministic) rather than paying for the
	// most expensive arm twice.
	ref, refEvents := run(1.0)
	fmt.Printf("%-12s %9s %9s %11s %11s\n", "packet-share", "completed", "events", "mean-FCT-s", "FCT-drift")
	for _, p := range []float64{0, 0.5, 1.0} {
		recs, events := ref, refEvents
		if p < 1 {
			recs, events = run(p)
		}
		var fctSum float64
		var drift float64
		var n int
		for id, fct := range recs {
			fctSum += fct
			if rf, ok := ref[id]; ok && rf > 0 {
				drift += math.Abs(fct-rf) / rf
				n++
			}
		}
		fmt.Printf("%11.0f%% %9d %9d %11.4f %10.1f%%\n",
			p*100, len(recs), events, fctSum/float64(len(recs)), drift/float64(n)*100)
	}
}

// run executes the scenario with fraction p of flows at packet level and
// returns completed-flow FCTs by demand index plus the kernel event count.
func run(p float64) (map[int64]float64, uint64) {
	topo := horse.Dumbbell(3, 3, horse.Gig, horse.LinkSpec{
		BandwidthBps: 2e8, Delay: horse.Millisecond,
	})
	eng, err := horse.New(topo,
		horse.WithFidelity(horse.Hybrid),
		horse.WithController(horse.NewChain(&horse.ReactiveMAC{})),
		horse.WithMiss(horse.MissController),
		horse.WithControlLatency(horse.Millisecond),
		horse.WithTCP(horse.TCPParams{RTT: 2200 * horse.Microsecond, MSS: 1500, InitialWindow: 10}),
		horse.WithPacketFraction(p),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Twelve staggered 2 Mbit transfers, half TCP, crossing the 200 Mbps
	// bottleneck.
	gen := horse.NewGenerator(7)
	eng.Load(gen.PoissonArrivals(horse.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 30, Horizon: 400 * horse.Millisecond,
		Sizes: horse.FixedSize(2e6), TCPFraction: 0.5, CBRRateBps: 2e7,
	}))
	if _, err := eng.Run(context.Background(), horse.Time(30*horse.Second)); err != nil {
		log.Fatal(err)
	}

	out := make(map[int64]float64)
	for _, r := range eng.(*horse.HybridSimulator).Records() {
		if r.Completed {
			out[r.ID] = r.FCT().Seconds()
		}
	}
	return out, eng.Kernel().Dispatched()
}
