// Link failure and controller reaction: a ring fabric carries a long
// transfer; the link on its path fails mid-flight. The data plane
// blackholes until the controller (reacting to PortStatus) recomputes
// routes; the flow reroutes the long way and completes. This demonstrates
// the control/data-plane interaction loop the simulator abstracts: network
// event → controller notification → new instructions → traffic shift.
//
// The outage is scripted with the scenario engine — the same Timeline
// drives the packet-level and hybrid engines unchanged (see
// examples/chaos-fabric for the generated-failure variant).
//
//	go run ./examples/link-failure
package main

import (
	"context"
	"fmt"
	"log"

	"horse"
)

func main() {
	topo := horse.Ring(6, horse.Gig, horse.TenGig)
	h0 := topo.MustLookup("h0")
	h1 := topo.MustLookup("h1")
	s0 := topo.MustLookup("s0")
	s1 := topo.MustLookup("s1")

	// The direct link dies at t=3s and recovers at t=8s; the Observe hook
	// narrates each applied flip as the run executes.
	direct := topo.LinkAt(s0, topo.PortToward(s0, s1)).ID
	tl := horse.NewScenario().
		LinkOutage(horse.Time(3*horse.Second), horse.Time(8*horse.Second), direct)

	eng, err := horse.New(topo,
		horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
		horse.WithMiss(horse.MissController),
		horse.WithStatsEvery(100*horse.Millisecond),
		horse.WithScenario(tl),
		horse.WithObserver(func(o horse.Observation) {
			fmt.Printf("observed: %s\n", o)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A 10-second 100 Mbps transfer h0→h1 over the direct s0-s1 link.
	d := horse.Demand{
		Key:      key(h0, h1),
		Src:      h0,
		Dst:      h1,
		Start:    0,
		SizeBits: 1e9,
		RateBps:  1e8,
	}
	eng.Load(horse.Trace{d})

	col, err := eng.Run(context.Background(), horse.Never)
	if err != nil {
		log.Fatal(err)
	}
	f := col.Flows()[0]
	out := horse.EvaluateScenario(tl, col, nil)
	fmt.Printf("outcome=%s FCT=%.3fs sent=%.0f bits path-changes=%d reroute-latency=%v\n",
		f.Outcome, f.FCT().Seconds(), f.SentBits, col.PathChanges, out.RerouteLatency)
	if f.Completed && out.Reroutes > 0 {
		fmt.Println("the controller rerouted the flow around the failure")
	}
}

func key(src, dst horse.NodeID) horse.FlowKey {
	var k horse.FlowKey
	sv, dv := uint64(src)+1, uint64(dst)+1
	for i := 5; i >= 0; i-- {
		k.EthSrc[i] = byte(sv)
		k.EthDst[i] = byte(dv)
		sv >>= 8
		dv >>= 8
	}
	k.EthType = 0x0800
	k.IPSrc = horse.IPv4{10, 0, 0, byte(src)}
	k.IPDst = horse.IPv4{10, 0, 0, byte(dst)}
	k.Proto = 17 // UDP
	k.SrcPort, k.DstPort = 40000, 80
	return k
}
