package horse_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"horse"
)

// streamVariant selects the bounded-memory paths under test at the façade
// level: output streaming (WithRecordSink), input streaming
// (WithTraceReader), or both, against the retained baseline.
type streamVariant struct {
	name   string
	sink   bool
	reader bool
}

var streamVariants = []streamVariant{
	{name: "retained"},
	{name: "sink", sink: true},
	{name: "reader", reader: true},
	{name: "sink+reader", sink: true, reader: true},
}

// streamCase is one cell of the equivalence matrix.
type streamCase struct {
	fidelity horse.Fidelity
	shards   int
	queue    horse.EventQueue
}

// streamMatrix is the battery's fidelity × shards × backend coverage.
// The Hybrid coupler shares one kernel and runs serial by design (New
// rejects WithShards on it), so its shard dimension collapses to the
// serial run.
func streamMatrix() []streamCase {
	var cases []streamCase
	for _, q := range []horse.EventQueue{horse.EventQueueHeap, horse.EventQueueWheel} {
		for _, shards := range []int{1, 4} {
			cases = append(cases,
				streamCase{horse.Flow, shards, q},
				streamCase{horse.Packet, shards, q})
		}
		cases = append(cases, streamCase{horse.Hybrid, 0, q})
	}
	return cases
}

func (c streamCase) String() string {
	return fmt.Sprintf("%v/shards=%d/%v", c.fidelity, c.shards, c.queue)
}

// runStream executes one scenario cell and returns the record sequence
// (from the sink when streaming, the collector otherwise) plus the
// counter snapshot.
func runStream(t *testing.T, c streamCase, v streamVariant,
	topo *horse.Topology, tr horse.Trace, tl *horse.Scenario,
	until horse.Time) ([]horse.FlowRecord, horse.Counters) {
	t.Helper()
	opts := []horse.Option{
		horse.WithFidelity(c.fidelity),
		horse.WithController(horse.NewChain(&horse.ProactiveMAC{})),
		horse.WithMiss(horse.MissController),
		horse.WithEventQueue(c.queue),
	}
	if c.shards > 0 {
		opts = append(opts, horse.WithShards(c.shards))
	}
	if c.fidelity == horse.Hybrid {
		opts = append(opts, horse.WithPacketFraction(0.5))
	}
	if tl != nil {
		opts = append(opts, horse.WithScenario(tl))
	}
	var streamed []horse.FlowRecord
	if v.sink {
		opts = append(opts, horse.WithRecordSink(func(r horse.FlowRecord) {
			streamed = append(streamed, r)
		}))
	}
	if v.reader {
		opts = append(opts, horse.WithTraceReader(horse.NewTraceReader(tr)))
	}
	eng, err := horse.New(topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !v.reader {
		eng.Load(tr)
	}
	col, err := eng.Run(context.Background(), until)
	if err != nil {
		t.Fatal(err)
	}
	if v.sink {
		if n := len(col.Flows()); n != 0 {
			t.Fatalf("%s/%s: sink mode retained %d records", c, v.name, n)
		}
		return streamed, col.Counters()
	}
	return col.Flows(), col.Counters()
}

// diffStream compares a variant against the retained baseline of the same
// cell: record sequences byte-identical, counters equal. EventsRun is
// excluded for reader variants — streamed ingestion dispatches one ingest
// event per demand on the Packet and Hybrid engines by design.
func diffStream(t *testing.T, label string, v streamVariant,
	wantR, gotR []horse.FlowRecord, wantC, gotC horse.Counters) {
	t.Helper()
	if !reflect.DeepEqual(wantR, gotR) {
		t.Errorf("%s: records diverged (%d retained vs %d %s)", label, len(wantR), len(gotR), v.name)
		for i := range wantR {
			if i < len(gotR) && wantR[i] != gotR[i] {
				t.Errorf("%s: first divergence at record %d:\nwant %+v\n got %+v",
					label, i, wantR[i], gotR[i])
				break
			}
		}
		return
	}
	if v.reader {
		wantC.EventsRun, gotC.EventsRun = 0, 0
	}
	if wantC != gotC {
		t.Errorf("%s: counters diverged:\nwant %+v\n got %+v", label, wantC, gotC)
	}
}

// TestStreamEquivalenceBattery is the cross-path equivalence contract of
// the bounded-memory PR: on the golden fat-tree workload, every streaming
// variant (record sink, trace reader, both) reproduces the retained run
// byte-for-byte at fidelity {Flow, Packet, Hybrid} × shards {1, 4} ×
// event queue {heap, wheel}. CI runs this battery under -race.
func TestStreamEquivalenceBattery(t *testing.T) {
	topo, tr := fatTreeWorkload()
	until := horse.Time(2 * horse.Second)
	for _, c := range streamMatrix() {
		t.Run(c.String(), func(t *testing.T) {
			want, wantC := runStream(t, c, streamVariants[0], topo, tr, nil, until)
			if len(want) == 0 {
				t.Fatal("retained baseline produced no records")
			}
			for _, v := range streamVariants[1:] {
				got, gotC := runStream(t, c, v, topo, tr, nil, until)
				diffStream(t, c.String()+"/"+v.name, v, want, got, wantC, gotC)
			}
		})
	}
}

// TestStreamEquivalenceFailures reruns the battery's variants against the
// scripted-failure scenario (mid-run link outage with recovery) at one
// representative cell per fidelity: reconvergence churn — loss, reroutes,
// punts — must not perturb streamed/retained parity.
func TestStreamEquivalenceFailures(t *testing.T) {
	topo, tr, tl := failureWorkload()
	until := horse.Time(4 * horse.Second)
	cases := []streamCase{
		{horse.Flow, 1, horse.EventQueueHeap},
		{horse.Packet, 4, horse.EventQueueWheel},
		{horse.Hybrid, 0, horse.EventQueueHeap},
	}
	for _, c := range cases {
		t.Run(c.String(), func(t *testing.T) {
			want, wantC := runStream(t, c, streamVariants[0], topo, tr, tl, until)
			if len(want) == 0 {
				t.Fatal("retained baseline produced no records")
			}
			for _, v := range streamVariants[1:] {
				got, gotC := runStream(t, c, v, topo, tr, tl, until)
				diffStream(t, c.String()+"/"+v.name, v, want, got, wantC, gotC)
			}
		})
	}
}
