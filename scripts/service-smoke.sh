#!/usr/bin/env bash
# End-to-end daemon smoke (the CI service-smoke job, runnable locally as
# `make service-smoke`): start horsed on a unix socket, submit a small
# fat-tree session through horsectl and stream its records, cancel a
# heavy second session mid-run, then SIGTERM the daemon and require a
# clean drain.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/horsed" ./cmd/horsed
go build -o "$workdir/horsectl" ./cmd/horsectl

sock="$workdir/horsed.sock"
"$workdir/horsed" -socket "$sock" -max-sessions 2 -max-workers 4 \
    2>"$workdir/horsed.log" &
daemon_pid=$!

for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.05
done
if ! [ -S "$sock" ]; then
    echo "service-smoke: horsed socket never appeared" >&2
    cat "$workdir/horsed.log" >&2
    exit 1
fi

ctl() { "$workdir/horsectl" -addr "unix:$sock" "$@"; }

# 1. A streamed fat-tree session: records must arrive over the wire.
cat >"$workdir/spec.json" <<'EOF'
{
  "topology": {"kind": "fattree", "k": 4},
  "workload": {"poisson": {"seed": 7, "lambda": 200, "horizon_ns": 1000000000,
    "size": {"kind": "pareto", "x_min": 100000, "alpha": 1.3},
    "tcp_fraction": 0.8, "cbr_rate_bps": 10000000}},
  "options": {"fidelity": "flow", "controller": [{"kind": "ecmp"}], "miss": "controller"},
  "until_ns": 3000000000
}
EOF
ctl submit -name smoke -watch -flows "$workdir/flows.csv" "$workdir/spec.json" \
    2>"$workdir/submit.log"
records=$(($(wc -l <"$workdir/flows.csv") - 1))
if [ "$records" -le 0 ]; then
    echo "service-smoke: no records streamed" >&2
    cat "$workdir/submit.log" >&2
    exit 1
fi
echo "service-smoke: streamed $records records"

# 2. The same session with streamed ingestion ("stream": true): the
# daemon feeds the engine through the bounded trace reader instead of
# materializing the Poisson trace, and must stream the identical record
# set over the wire.
sed 's/"workload": {"poisson"/"workload": {"stream": true, "poisson"/' \
    "$workdir/spec.json" >"$workdir/spec-stream.json"
ctl submit -name smoke-stream -watch -flows "$workdir/flows-stream.csv" \
    "$workdir/spec-stream.json" 2>"$workdir/submit-stream.log"
if ! cmp -s "$workdir/flows.csv" "$workdir/flows-stream.csv"; then
    echo "service-smoke: streamed-ingestion records differ from eager load" >&2
    cat "$workdir/submit-stream.log" >&2
    exit 1
fi
echo "service-smoke: streamed ingestion matched eager records"

# 3. A lossy-link session (default Bernoulli model, a mid-run
# Gilbert–Elliott degrade/restore window) submitted over the wire must
# stream records byte-identical to the same spec run in-process with
# `horsectl run` — the determinism contract across the service boundary,
# link models included.
ctl submit -name lossy -watch -flows "$workdir/flows-lossy.csv" \
    examples/specs/degraded-links.json 2>"$workdir/submit-lossy.log"
"$workdir/horsectl" run -flows "$workdir/flows-lossy-local.csv" \
    examples/specs/degraded-links.json 2>"$workdir/run-lossy.log"
if ! cmp -s "$workdir/flows-lossy.csv" "$workdir/flows-lossy-local.csv"; then
    echo "service-smoke: lossy-link wire records differ from in-process run" >&2
    cat "$workdir/submit-lossy.log" "$workdir/run-lossy.log" >&2
    exit 1
fi
lossy=$(($(wc -l <"$workdir/flows-lossy.csv") - 1))
if [ "$lossy" -le 0 ]; then
    echo "service-smoke: lossy-link session streamed no records" >&2
    cat "$workdir/submit-lossy.log" >&2
    exit 1
fi
echo "service-smoke: lossy-link wire run matched in-process ($lossy records)"

# 4. A heavy session canceled mid-run: the daemon must report the
# canceled state with a partial-but-consistent summary.
cat >"$workdir/heavy.json" <<'EOF'
{
  "topology": {"kind": "leafspine", "leaves": 4, "spines": 2, "hosts": 4},
  "workload": {"poisson": {"seed": 42, "lambda": 4000, "horizon_ns": 60000000000,
    "size": {"kind": "pareto", "x_min": 100000, "alpha": 1.3},
    "tcp_fraction": 0.8, "cbr_rate_bps": 10000000}},
  "options": {"fidelity": "flow", "controller": [{"kind": "ecmp"}], "miss": "controller"},
  "until_ns": 120000000000
}
EOF
sid=$(ctl submit -name heavy "$workdir/heavy.json")
sleep 0.3
ctl cancel "$sid" >/dev/null
state=""
for _ in $(seq 1 100); do
    state=$(ctl status "$sid" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p')
    [ "$state" = "canceled" ] && break
    sleep 0.05
done
if [ "$state" != "canceled" ]; then
    echo "service-smoke: session $sid state=$state, want canceled" >&2
    exit 1
fi
echo "service-smoke: canceled $sid mid-run"

# 5. Graceful shutdown: SIGTERM must drain and exit zero.
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
if [ "$rc" -ne 0 ]; then
    echo "service-smoke: horsed exited $rc on SIGTERM" >&2
    cat "$workdir/horsed.log" >&2
    exit 1
fi
if ! grep -q "drained" "$workdir/horsed.log"; then
    echo "service-smoke: no drain message in horsed log" >&2
    cat "$workdir/horsed.log" >&2
    exit 1
fi
echo "service-smoke: clean shutdown"
