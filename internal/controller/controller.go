// Package controller implements the control plane of Horse: the
// lightweight, modular "policy generator" of the paper. A Chain composes
// independent applications — forwarding, load balancing, blackholing, rate
// limiting, application-specific peering, source routing, monitoring —
// each of which translates its slice of the high-level policy into
// (abstracted) OpenFlow instructions.
//
// Pipeline convention shared by all apps:
//
//	table 0 — policy table: blackhole drops, rate-limit meters,
//	          app-peering and source-routing overrides; a default
//	          MatchAll → goto(1) entry is installed by forwarding apps.
//	table 1 — forwarding table: MAC-destination rules or ECMP groups.
//
// Apps that install overrides use table 0 at priorities above the default;
// apps that forward use table 1 — at most one forwarding app per Chain
// (two would fight over the same rules, and over the reconvergence flush).
// This is what lets "applications such as load balancing and blackholing
// coexist" (Figure 1) without rule cross-products.
package controller

import (
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/openflow"
)

// Table assignments (see package comment).
const (
	TablePolicy     openflow.TableID = 0
	TableForwarding openflow.TableID = 1
)

// Priorities within tables. Order matters: blackholing beats peering beats
// rate limiting beats the goto default.
const (
	PrioBlackhole = 400
	PrioSourceRt  = 300
	PrioPeering   = 200
	PrioRateLimit = 100
	PrioDefault   = 0

	PrioForwarding = 10
)

// App is one modular controller application.
type App interface {
	flowsim.Controller
	// Name identifies the app in logs and validation reports.
	Name() string
}

// Chain composes apps into a single flowsim.Controller. Start and Handle
// run the apps in order.
type Chain struct {
	Apps []App
}

// NewChain builds a controller from apps.
func NewChain(apps ...App) *Chain { return &Chain{Apps: apps} }

// Start implements flowsim.Controller.
func (c *Chain) Start(ctx *flowsim.Context) {
	for _, a := range c.Apps {
		a.Start(ctx)
	}
}

// Handle implements flowsim.Controller.
func (c *Chain) Handle(ctx *flowsim.Context, msg openflow.Message) {
	for _, a := range c.Apps {
		a.Handle(ctx, msg)
	}
}

// ForkableApp is the app-level analogue of flowsim.Forker: ForkApp
// returns an independent instance equivalent to a freshly constructed
// one. An app should implement it only when its reactions are
// component-local up to idempotent re-installs (see flowsim.Forker for
// the exact contract) — apps that accumulate cross-switch state callers
// read after a run (Monitor) must not.
type ForkableApp interface {
	App
	ForkApp() App
}

// Fork implements flowsim.Forker: a Chain forks iff every app does. The
// sharded packet engine uses it to run one controller instance per
// connected component; a nil return keeps the single-instance path.
func (c *Chain) Fork() flowsim.Controller {
	apps := make([]App, len(c.Apps))
	for i, a := range c.Apps {
		f, ok := a.(ForkableApp)
		if !ok {
			return nil
		}
		if apps[i] = f.ForkApp(); apps[i] == nil {
			return nil
		}
	}
	return &Chain{Apps: apps}
}

// InstallPolicyDefaults installs the table-0 MatchAll→goto(forwarding)
// entry on every switch. Forwarding apps call it from Start; it is
// idempotent (re-adding replaces the identical entry).
func InstallPolicyDefaults(ctx *flowsim.Context) {
	for _, sw := range ctx.Topology().Switches() {
		ctx.Send(&openflow.FlowMod{
			Switch: sw, Op: openflow.FlowAdd,
			Table: TablePolicy, Priority: PrioDefault,
			Match: header.MatchAll,
			Instr: openflow.Instructions{}.WithGoto(TableForwarding),
		})
	}
}

// portStatusCoalescer debounces an app's PortStatus reaction: one
// topology event produces a PortStatus from each live endpoint switch at
// the same instant, so Kick schedules the app's reaction once via
// After(0) — which fires after the remaining same-instant deliveries —
// instead of once per message. Forwarding apps react with defaults +
// flush + reinstall; policy apps re-run their idempotent installs (a
// restarted switch comes back with every table empty, so everything that
// programs switches must re-program on topology events).
//
// The forwarding reaction flushes the whole forwarding table, so a Chain
// must compose at most ONE forwarding (table-1-writing) app — the package
// convention anyway: stacked forwarding apps would overwrite each other's
// rules on install, and here the second app's flush would delete the
// first's reinstalls. Policy apps add-replace into table 0 and do not
// flush, so any number coexist.
type portStatusCoalescer struct {
	pending bool
}

// Kick schedules react for this instant if msg is a PortStatus and no
// reaction is already scheduled.
func (c *portStatusCoalescer) Kick(ctx *flowsim.Context, msg openflow.Message, react func()) {
	if _, ok := msg.(*openflow.PortStatus); !ok || c.pending {
		return
	}
	c.pending = true
	ctx.After(0, func() {
		c.pending = false
		react()
	})
}

// FlushForwarding deletes every forwarding-table rule on every switch —
// the reconvergence-safe first half of a topology-change reaction: flush,
// then recompute, so no stale rule pointing at a dead port (or at a
// destination that became unreachable) survives the event. Deletes and the
// reinstalls that follow share one control-latency instant, so the data
// plane never observes a half-flushed table.
func FlushForwarding(ctx *flowsim.Context) {
	for _, sw := range ctx.Topology().Switches() {
		ctx.Send(&openflow.FlowMod{
			Switch: sw, Op: openflow.FlowDelete,
			Table: TableForwarding, Match: header.MatchAll,
		})
	}
}
