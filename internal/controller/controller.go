// Package controller implements the control plane of Horse: the
// lightweight, modular "policy generator" of the paper. A Chain composes
// independent applications — forwarding, load balancing, blackholing, rate
// limiting, application-specific peering, source routing, monitoring —
// each of which translates its slice of the high-level policy into
// (abstracted) OpenFlow instructions.
//
// Pipeline convention shared by all apps:
//
//	table 0 — policy table: blackhole drops, rate-limit meters,
//	          app-peering and source-routing overrides; a default
//	          MatchAll → goto(1) entry is installed by forwarding apps.
//	table 1 — forwarding table: MAC-destination rules or ECMP groups.
//
// Apps that install overrides use table 0 at priorities above the default;
// apps that forward use table 1. This is what lets "applications such as
// load balancing and blackholing coexist" (Figure 1) without rule
// cross-products.
package controller

import (
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/openflow"
)

// Table assignments (see package comment).
const (
	TablePolicy     openflow.TableID = 0
	TableForwarding openflow.TableID = 1
)

// Priorities within tables. Order matters: blackholing beats peering beats
// rate limiting beats the goto default.
const (
	PrioBlackhole = 400
	PrioSourceRt  = 300
	PrioPeering   = 200
	PrioRateLimit = 100
	PrioDefault   = 0

	PrioForwarding = 10
)

// App is one modular controller application.
type App interface {
	flowsim.Controller
	// Name identifies the app in logs and validation reports.
	Name() string
}

// Chain composes apps into a single flowsim.Controller. Start and Handle
// run the apps in order.
type Chain struct {
	Apps []App
}

// NewChain builds a controller from apps.
func NewChain(apps ...App) *Chain { return &Chain{Apps: apps} }

// Start implements flowsim.Controller.
func (c *Chain) Start(ctx *flowsim.Context) {
	for _, a := range c.Apps {
		a.Start(ctx)
	}
}

// Handle implements flowsim.Controller.
func (c *Chain) Handle(ctx *flowsim.Context, msg openflow.Message) {
	for _, a := range c.Apps {
		a.Handle(ctx, msg)
	}
}

// InstallPolicyDefaults installs the table-0 MatchAll→goto(forwarding)
// entry on every switch. Forwarding apps call it from Start; it is
// idempotent (re-adding replaces the identical entry).
func InstallPolicyDefaults(ctx *flowsim.Context) {
	for _, sw := range ctx.Topology().Switches() {
		ctx.Send(&openflow.FlowMod{
			Switch: sw, Op: openflow.FlowAdd,
			Table: TablePolicy, Priority: PrioDefault,
			Match: header.MatchAll,
			Instr: openflow.Instructions{}.WithGoto(TableForwarding),
		})
	}
}
