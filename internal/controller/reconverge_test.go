package controller

import (
	"fmt"
	"sort"
	"testing"

	"horse/internal/addr"
	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
	"horse/internal/traffic"
)

// reconvergePolicies are the table rows: the two policies the E8
// resilience sweep contrasts, checked for the same contract — on
// PortStatus the controller flushes, recomputes, and leaves no stale entry
// matching the dead port.
var reconvergePolicies = []struct {
	name string
	mk   func() flowsim.Controller
}{
	{"forwarding", func() flowsim.Controller { return NewChain(&ProactiveMAC{}) }},
	{"loadbalance", func() flowsim.Controller { return NewChain(&ECMPLoadBalancer{}) }},
}

// assertNoStaleRules walks every installed rule and fails on any plain
// output action pointing at a port whose link is down. Group buckets may
// reference a dead port only when guarded by a matching watch port (the
// liveness check excludes them at selection time — that is the data-plane
// failover working as designed).
func assertNoStaleRules(t *testing.T, net *dataplane.Network) {
	t.Helper()
	topo := net.Topo
	sws := make([]netgraph.NodeID, 0, len(net.Switches))
	for sw := range net.Switches {
		sws = append(sws, sw)
	}
	sort.Slice(sws, func(i, j int) bool { return sws[i] < sws[j] })
	var checkActions func(sw netgraph.NodeID, where string, actions []openflow.Action, watch netgraph.PortNum)
	checkActions = func(sw netgraph.NodeID, where string, actions []openflow.Action, watch netgraph.PortNum) {
		for _, a := range actions {
			switch a.Type {
			case openflow.ActionOutput:
				switch a.Port {
				case openflow.PortController, openflow.PortFlood, openflow.PortDrop:
					continue
				}
				l := topo.LinkAt(sw, a.Port)
				if l == nil || !l.Up {
					if watch == a.Port {
						continue // dead bucket, but watch-port guarded
					}
					t.Errorf("switch %s: stale rule in %s outputs to dead port %d",
						topo.Node(sw).Name, where, a.Port)
				}
			case openflow.ActionGroup:
				g := net.Switches[sw].Groups.Get(a.Group)
				if g == nil {
					t.Errorf("switch %s: %s references missing group %d", topo.Node(sw).Name, where, a.Group)
					continue
				}
				for bi, b := range g.Buckets {
					checkActions(sw, fmt.Sprintf("%s/group%d/bucket%d", where, a.Group, bi), b.Actions, b.WatchPort)
				}
			}
		}
	}
	for _, sw := range sws {
		for ti, tab := range net.Switches[sw].Tables {
			for _, e := range tab.Entries() {
				checkActions(sw, fmt.Sprintf("table%d[%s]", ti, e.Match), e.Instr.Actions, netgraph.NoPort)
			}
		}
	}
}

// TestReconvergenceOnPortStatus is the table-driven contract: after a link
// failure both policies reroute the affected traffic over the surviving
// spine, churn rules doing it, and leave no stale entry matching the dead
// port.
func TestReconvergenceOnPortStatus(t *testing.T) {
	for _, pol := range reconvergePolicies {
		t.Run(pol.name, func(t *testing.T) {
			topo := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
			h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
			leaf0, spine0 := topo.MustLookup("leaf0"), topo.MustLookup("spine0")
			dead := topo.LinkAt(leaf0, topo.PortToward(leaf0, spine0))

			sim := flowsim.New(flowsim.Config{
				Topology: topo, Controller: pol.mk(), Miss: dataplane.MissController,
				ControlLatency: simtime.Millisecond,
			})
			sim.Load(traffic.Trace{cbr(h0, h2, 0, 2.5e8, 5e7)}) // 5s transfer
			sim.ScheduleLinkChange(simtime.Time(simtime.Second), dead.ID, false)
			col := mustRun(sim, simtime.Time(simtime.Minute))

			r := col.Flows()[0]
			if !r.Completed {
				t.Fatalf("flow outcome = %s; policy failed to reconverge", r.Outcome)
			}
			if col.FlowMods == 0 {
				t.Fatal("no rule churn recorded")
			}
			if !dead.Up {
				assertNoStaleRules(t, sim.Network())
			} else {
				t.Fatal("test link unexpectedly up")
			}
		})
	}
}

// TestPolicyAppsSurviveSwitchRestart: a switch crash wipes table-0 policy
// state too; the policy apps must re-program a restarted switch, so a
// blackhole still drops and a rate limiter still polices afterwards.
func TestPolicyAppsSurviveSwitchRestart(t *testing.T) {
	topo := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	leaf0 := topo.MustLookup("leaf0")
	bh := &Blackhole{Matches: []header.Match{header.Match{}.WithEthDst(addr.HostMAC(h2))}}

	sim := flowsim.New(flowsim.Config{
		Topology: topo, Controller: NewChain(&ProactiveMAC{}, bh), Miss: dataplane.MissController,
		ControlLatency: simtime.Millisecond,
	})
	// leaf0 (holding the blackhole override for traffic entering there)
	// crashes and restarts; a flow toward the blackholed host arriving
	// AFTER the restart must still drop.
	sim.ScheduleSwitchChange(simtime.Time(simtime.Second), leaf0, false)
	sim.ScheduleSwitchChange(simtime.Time(2*simtime.Second), leaf0, true)
	late := cbr(h0, h2, simtime.Time(3*simtime.Second), 1e6, 1e7)
	sim.Load(traffic.Trace{late})
	col := mustRun(sim, simtime.Time(simtime.Minute))

	r := col.Flows()[0]
	if r.Completed || r.Outcome != "dropped" {
		t.Fatalf("post-restart flow outcome = %s; the blackhole vanished with the table wipe", r.Outcome)
	}
}

// TestReconvergenceFlushesUnreachable is the flush half of the contract:
// when a leaf is partitioned (both uplinks dead) the rules toward its
// hosts must be deleted everywhere — not left blackholing into dead ports
// — so traffic toward them parks on a punt instead of silently dying.
func TestReconvergenceFlushesUnreachable(t *testing.T) {
	for _, pol := range reconvergePolicies {
		t.Run(pol.name, func(t *testing.T) {
			topo := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
			h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
			leaf0 := topo.MustLookup("leaf0")
			up0 := topo.LinkAt(leaf0, topo.PortToward(leaf0, topo.MustLookup("spine0")))
			up1 := topo.LinkAt(leaf0, topo.PortToward(leaf0, topo.MustLookup("spine1")))

			sim := flowsim.New(flowsim.Config{
				Topology: topo, Controller: pol.mk(), Miss: dataplane.MissController,
				ControlLatency: simtime.Millisecond,
			})
			// The reverse-direction flow starts after the partition, so it
			// must rely on the flushed (not stale) state at leaf1.
			sim.Load(traffic.Trace{cbr(h2, h0, simtime.Time(2*simtime.Second), 1e6, 1e7)})
			sim.ScheduleLinkChange(simtime.Time(simtime.Second), up0.ID, false)
			sim.ScheduleLinkChange(simtime.Time(simtime.Second), up1.ID, false)
			col := mustRun(sim, simtime.Time(5*simtime.Second))

			r := col.Flows()[0]
			if r.Completed || r.Outcome == "dropped" {
				t.Fatalf("flow outcome = %s; want a parked punt (waiting), not %s",
					r.Outcome, map[bool]string{true: "completion through a partition", false: "a blackhole drop"}[r.Completed])
			}
			if r.Punts == 0 {
				t.Error("flow never punted; a stale rule must have swallowed it")
			}
			assertNoStaleRules(t, sim.Network())
			// And explicitly: no switch still holds a forwarding rule whose
			// output leads into the partitioned leaf.
			for _, sw := range topo.Switches() {
				if sw == leaf0 {
					continue
				}
				for _, e := range sim.Network().Switches[sw].Tables[TableForwarding].Entries() {
					for _, a := range e.Instr.Actions {
						if a.Type != openflow.ActionOutput {
							continue
						}
						if l := topo.LinkAt(sw, a.Port); l != nil && (l.ID == up0.ID || l.ID == up1.ID) {
							t.Errorf("switch %s keeps rule [%s] into the partition", topo.Node(sw).Name, e.Match)
						}
					}
				}
			}
		})
	}
}
