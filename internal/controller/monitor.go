package controller

import (
	"sort"

	"horse/internal/flowsim"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
)

// PortObservation is one monitored port utilization sample as seen by the
// controller (from PortStatsReply messages, not ground truth).
type PortObservation struct {
	At       simtime.Time
	Switch   netgraph.NodeID
	Port     netgraph.PortNum
	RateBps  float64
	LinkBps  float64
	Utilized float64
}

// Monitor is the paper's monitoring block: it periodically polls port
// counters from every switch ("link bandwidth" measurements) and keeps the
// latest observations. An optional OnCongestion callback fires when a
// port's utilization crosses Threshold, which reactive policies (e.g.
// rebalancing) hook into.
type Monitor struct {
	// Every is the polling period (default 1 s).
	Every simtime.Duration
	// Threshold triggers OnCongestion (default 0.9).
	Threshold float64
	// OnCongestion, if set, is invoked for each newly congested port.
	OnCongestion func(ctx *flowsim.Context, obs PortObservation)

	latest map[portKey]PortObservation
	polls  uint64
}

type portKey struct {
	sw   netgraph.NodeID
	port netgraph.PortNum
}

// Name implements App.
func (*Monitor) Name() string { return "monitor" }

// Start implements flowsim.Controller.
func (m *Monitor) Start(ctx *flowsim.Context) {
	if m.Every == 0 {
		m.Every = simtime.Second
	}
	if m.Threshold == 0 {
		m.Threshold = 0.9
	}
	m.latest = make(map[portKey]PortObservation)
	m.schedule(ctx)
}

func (m *Monitor) schedule(ctx *flowsim.Context) {
	ctx.After(m.Every, func() {
		m.polls++
		for _, sw := range ctx.Topology().Switches() {
			ctx.Send(&openflow.PortStatsRequest{Switch: sw, Port: netgraph.NoPort})
		}
		m.schedule(ctx)
	})
}

// Handle implements flowsim.Controller.
func (m *Monitor) Handle(ctx *flowsim.Context, msg openflow.Message) {
	reply, ok := msg.(*openflow.PortStatsReply)
	if !ok {
		return
	}
	for _, ps := range reply.Stats {
		util := 0.0
		if ps.LinkBps > 0 {
			util = ps.TxRateBps / ps.LinkBps
		}
		obs := PortObservation{
			At: reply.At, Switch: reply.Switch, Port: ps.Port,
			RateBps: ps.TxRateBps, LinkBps: ps.LinkBps, Utilized: util,
		}
		k := portKey{reply.Switch, ps.Port}
		prev, had := m.latest[k]
		m.latest[k] = obs
		if m.OnCongestion != nil && util >= m.Threshold && (!had || prev.Utilized < m.Threshold) {
			m.OnCongestion(ctx, obs)
		}
	}
}

// Polls returns how many polling rounds have run.
func (m *Monitor) Polls() uint64 { return m.polls }

// Observations returns the latest observation per port, ordered by switch
// then port for stable output.
func (m *Monitor) Observations() []PortObservation {
	out := make([]PortObservation, 0, len(m.latest))
	for _, o := range m.latest {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Switch != out[j].Switch {
			return out[i].Switch < out[j].Switch
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// MaxUtilization returns the highest utilization the monitor has currently
// observed (0 when nothing polled yet).
func (m *Monitor) MaxUtilization() float64 {
	max := 0.0
	for _, o := range m.latest {
		if o.Utilized > max {
			max = o.Utilized
		}
	}
	return max
}
