package controller

import (
	"horse/internal/addr"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
)

// Blackhole drops traffic matching configured filters — the DDoS-mitigation
// style policy in Figure 1. Rules go to table 0 at the highest policy
// priority so they override everything else, at the configured switches
// (or every switch when At is empty).
type Blackhole struct {
	// Matches lists what to drop.
	Matches []header.Match
	// At restricts installation to these switches; empty means all.
	At []netgraph.NodeID

	resync portStatusCoalescer
}

// Name implements App.
func (*Blackhole) Name() string { return "blackhole" }

// Start implements flowsim.Controller.
func (b *Blackhole) Start(ctx *flowsim.Context) {
	switches := b.At
	if len(switches) == 0 {
		switches = ctx.Topology().Switches()
	}
	for _, sw := range switches {
		for _, m := range b.Matches {
			ctx.Send(&openflow.FlowMod{
				Switch: sw, Op: openflow.FlowAdd,
				Table: TablePolicy, Priority: PrioBlackhole,
				Match: m,
				Instr: openflow.Apply(openflow.Drop()),
			})
		}
	}
}

// Handle implements flowsim.Controller: topology events re-run the
// idempotent install, so a restarted (table-wiped) switch gets its drop
// rules back.
func (b *Blackhole) Handle(ctx *flowsim.Context, msg openflow.Message) {
	b.resync.Kick(ctx, msg, func() { b.Start(ctx) })
}

// RateLimitRule is one "rate limiting: e2→e4 : 500 Mbps" style policy.
type RateLimitRule struct {
	// Match selects the traffic (e.g. src/dst host addresses).
	Match header.Match
	// RateBps is the policer rate.
	RateBps float64
	// At is the switch enforcing the limit.
	At netgraph.NodeID
}

// RateLimiter installs meters and metering rules in table 0 (continuing to
// the forwarding table), reproducing the paper's example that "a rate
// limiting policy can undermine the quality of a TCP transmission".
type RateLimiter struct {
	Rules []RateLimitRule

	nextMeter map[netgraph.NodeID]openflow.MeterID
	resync    portStatusCoalescer
}

// Name implements App.
func (*RateLimiter) Name() string { return "rate-limiter" }

// Start implements flowsim.Controller.
func (r *RateLimiter) Start(ctx *flowsim.Context) {
	r.nextMeter = make(map[netgraph.NodeID]openflow.MeterID)
	for _, rule := range r.Rules {
		r.nextMeter[rule.At]++
		mid := r.nextMeter[rule.At]
		ctx.Send(&openflow.MeterMod{
			Switch: rule.At, Op: openflow.MeterAdd,
			MeterID: mid, RateBps: rule.RateBps,
		})
		ctx.Send(&openflow.FlowMod{
			Switch: rule.At, Op: openflow.FlowAdd,
			Table: TablePolicy, Priority: PrioRateLimit,
			Match: rule.Match,
			Instr: openflow.Instructions{Meter: mid}.WithGoto(TableForwarding),
		})
	}
}

// Handle implements flowsim.Controller: topology events re-run the
// install (meter IDs re-allocate deterministically in rule order, so the
// MeterAdds replace in place) and a restarted switch gets its policers
// back.
func (r *RateLimiter) Handle(ctx *flowsim.Context, msg openflow.Message) {
	r.resync.Kick(ctx, msg, func() { r.Start(ctx) })
}

// PeeringRule is one "application based peering: e1→e3 : http" policy:
// traffic of an application class entering the fabric is steered toward a
// specific egress switch instead of following default forwarding.
type PeeringRule struct {
	// Ingress is the switch where the override applies.
	Ingress netgraph.NodeID
	// Egress is the switch the application traffic must exit through.
	Egress netgraph.NodeID
	// AppMatch selects the application (e.g. dst port 80 for HTTP).
	AppMatch header.Match
}

// AppPeering implements application-specific peering: at the ingress
// switch, matching traffic is sent on the shortest path toward the
// configured egress switch (table 0 override, then normal forwarding
// resumes at the egress). The override is installed hop by hop along the
// ingress→egress path so intermediate switches keep the flow on course.
type AppPeering struct {
	Rules []PeeringRule
	Cost  netgraph.Cost

	resync portStatusCoalescer
}

// Name implements App.
func (*AppPeering) Name() string { return "app-peering" }

// Start implements flowsim.Controller.
func (a *AppPeering) Start(ctx *flowsim.Context) {
	cost := a.Cost
	if cost == nil {
		cost = netgraph.HopCost
	}
	topo := ctx.Topology()
	for _, rule := range a.Rules {
		path := topo.ShortestPath(rule.Ingress, rule.Egress, cost)
		if path == nil {
			continue
		}
		for i := 0; i+1 < len(path); i++ {
			out := topo.PortToward(path[i], path[i+1])
			if out == netgraph.NoPort {
				continue
			}
			ctx.Send(&openflow.FlowMod{
				Switch: path[i], Op: openflow.FlowAdd,
				Table: TablePolicy, Priority: PrioPeering,
				Match: rule.AppMatch,
				Instr: openflow.Apply(openflow.Output(out)),
			})
		}
	}
}

// Handle implements flowsim.Controller: topology events re-run the
// install, recomputing the steering path over the surviving links and
// re-programming restarted switches.
func (a *AppPeering) Handle(ctx *flowsim.Context, msg openflow.Message) {
	a.resync.Kick(ctx, msg, func() { a.Start(ctx) })
}

// SourceRoute pins one host pair to an explicit switch path — the "source
// routing" policy of Figure 1. The caller chooses the path; the app
// faithfully installs it even if it is inefficient, which is precisely the
// failure mode ("a chosen source routing path might be inefficient") Horse
// exists to expose.
type SourceRoute struct {
	Src, Dst netgraph.NodeID
	// Path is the switch sequence from the switch attached to Src to the
	// switch attached to Dst.
	Path []netgraph.NodeID
}

// SourceRouting installs explicit routes for configured pairs.
type SourceRouting struct {
	Routes []SourceRoute

	resync portStatusCoalescer
}

// Name implements App.
func (*SourceRouting) Name() string { return "source-routing" }

// Start implements flowsim.Controller.
func (s *SourceRouting) Start(ctx *flowsim.Context) {
	topo := ctx.Topology()
	for _, rt := range s.Routes {
		match := header.Match{}.
			WithEthSrc(addr.HostMAC(rt.Src)).
			WithEthDst(addr.HostMAC(rt.Dst))
		for i, sw := range rt.Path {
			var out netgraph.PortNum
			if i+1 < len(rt.Path) {
				out = topo.PortToward(sw, rt.Path[i+1])
			} else {
				// Last switch: deliver to the destination host.
				hostSw, hp := topo.AttachedSwitch(rt.Dst)
				if hostSw != sw {
					continue // path does not end at the host's switch
				}
				out = hp
			}
			if out == netgraph.NoPort {
				continue
			}
			ctx.Send(&openflow.FlowMod{
				Switch: sw, Op: openflow.FlowAdd,
				Table: TablePolicy, Priority: PrioSourceRt,
				Match: match,
				Instr: openflow.Apply(openflow.Output(out)),
			})
		}
	}
}

// Handle implements flowsim.Controller: topology events re-run the
// install so a restarted switch gets its pinned routes back (the path
// itself stays pinned — inefficiency by design).
func (s *SourceRouting) Handle(ctx *flowsim.Context, msg openflow.Message) {
	s.resync.Kick(ctx, msg, func() { s.Start(ctx) })
}
