package controller

import (
	"math"
	"testing"

	"horse/internal/addr"
	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

func cbr(src, dst netgraph.NodeID, start simtime.Time, sizeBits, rateBps float64) traffic.Demand {
	return traffic.Demand{
		Key: addr.FlowKeyBetween(src, dst, header.ProtoUDP, 40000, 80),
		Src: src, Dst: dst, Start: start,
		SizeBits: sizeBits, RateBps: rateBps,
	}
}

func httpFlow(src, dst netgraph.NodeID, sizeBits float64) traffic.Demand {
	d := cbr(src, dst, 0, sizeBits, 1e8)
	d.Key.Proto = header.ProtoTCP
	d.Key.DstPort = header.PortHTTP
	return d
}

func runSim(t *testing.T, topo *netgraph.Topology, ctrl flowsim.Controller, tr traffic.Trace) *stats.Collector {
	t.Helper()
	sim := flowsim.New(flowsim.Config{Topology: topo, Controller: ctrl, Miss: dataplane.MissController})
	sim.Load(tr)
	return mustRun(sim, simtime.Time(5*simtime.Minute))
}

func TestProactiveMACDelivers(t *testing.T) {
	topo := netgraph.LeafSpine(3, 2, 2, netgraph.Gig, netgraph.TenGig)
	h0, h5 := topo.MustLookup("h0"), topo.MustLookup("h5")
	col := runSim(t, topo, NewChain(&ProactiveMAC{}), traffic.Trace{
		cbr(h0, h5, simtime.Time(10*simtime.Millisecond), 1e6, 1e8),
	})
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	if f.Punts != 0 {
		t.Errorf("proactive forwarding should never punt, got %d", f.Punts)
	}
}

func TestReactiveMACDelivers(t *testing.T) {
	topo := netgraph.LeafSpine(3, 2, 2, netgraph.Gig, netgraph.TenGig)
	h0, h5 := topo.MustLookup("h0"), topo.MustLookup("h5")
	col := runSim(t, topo, NewChain(&ReactiveMAC{}), traffic.Trace{cbr(h0, h5, 0, 1e6, 1e8)})
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	if f.Punts == 0 {
		t.Error("reactive forwarding should punt the first packet")
	}
	// A second flow to the same destination arriving later reuses the
	// installed rules (no further punts).
	sim := flowsim.New(flowsim.Config{Topology: topo, Controller: NewChain(&ReactiveMAC{}), Miss: dataplane.MissController})
	first := cbr(h0, h5, 0, 1e6, 1e8)
	second := cbr(h0, h5, simtime.Time(simtime.Second), 1e6, 1e8)
	second.Key.SrcPort = 41000
	sim.Load(traffic.Trace{first, second})
	col = mustRun(sim, simtime.Time(simtime.Minute))
	if col.Flows()[1].Punts != 0 {
		t.Errorf("second flow punted %d times; rules should be cached", col.Flows()[1].Punts)
	}
}

func TestReactiveIdleTimeoutCausesRepunt(t *testing.T) {
	topo := netgraph.LeafSpine(2, 1, 2, netgraph.Gig, netgraph.TenGig)
	h0, h3 := topo.MustLookup("h0"), topo.MustLookup("h3")
	ctrl := NewChain(&ReactiveMAC{IdleTimeout: 100 * simtime.Millisecond})
	sim := flowsim.New(flowsim.Config{Topology: topo, Controller: ctrl, Miss: dataplane.MissController})
	first := cbr(h0, h3, 0, 1e6, 1e8)
	// Arrives long after the rules idled out.
	late := cbr(h0, h3, simtime.Time(10*simtime.Second), 1e6, 1e8)
	late.Key.SrcPort = 42000
	sim.Load(traffic.Trace{first, late})
	col := mustRun(sim, simtime.Time(simtime.Minute))
	if col.Flows()[1].Punts == 0 {
		t.Error("late flow should re-punt after idle eviction")
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	topo := netgraph.LeafSpine(2, 4, 4, netgraph.Gig, netgraph.TenGig)
	var tr traffic.Trace
	// Many flows from leaf0 hosts to leaf1 hosts.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			src := topo.MustLookup("h" + string(rune('0'+i)))
			dst := topo.MustLookup("h" + string(rune('0'+4+j)))
			d := cbr(src, dst, 0, 1e7, 1e7)
			d.Key.SrcPort = uint16(20000 + i*16 + j)
			tr = append(tr, d)
		}
	}
	sim := flowsim.New(flowsim.Config{
		Topology: topo, Controller: NewChain(&ECMPLoadBalancer{}),
		Miss: dataplane.MissController, StatsEvery: 100 * simtime.Millisecond,
	})
	sim.Load(tr)
	col := mustRun(sim, simtime.Time(simtime.Minute))
	for _, f := range col.Flows() {
		if !f.Completed {
			t.Fatalf("flow %d: %s", f.ID, f.Outcome)
		}
	}
	// Count distinct spine uplinks carrying traffic.
	busy := 0
	for d, u := range col.PeakLinkUtilization() {
		link := topo.Link(d.Link)
		aSw := topo.Node(link.A).Kind == netgraph.KindSwitch
		bSw := topo.Node(link.B).Kind == netgraph.KindSwitch
		if aSw && bSw && u > 1e-4 {
			busy++
		}
	}
	if busy < 3 {
		t.Errorf("only %d trunk directions carried traffic; ECMP not spreading", busy)
	}
}

func TestMisconfiguredLBConcentratesTraffic(t *testing.T) {
	mkTrace := func(topo *netgraph.Topology) traffic.Trace {
		var tr traffic.Trace
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				src := topo.MustLookup("h" + string(rune('0'+i)))
				dst := topo.MustLookup("h" + string(rune('0'+4+j)))
				d := cbr(src, dst, 0, 1e8, 1e8)
				d.Key.SrcPort = uint16(20000 + i*16 + j)
				tr = append(tr, d)
			}
		}
		return tr
	}
	peak := func(ctrl flowsim.Controller) float64 {
		topo := netgraph.LeafSpine(2, 4, 4, netgraph.Gig, netgraph.Gig)
		sim := flowsim.New(flowsim.Config{
			Topology: topo, Controller: ctrl,
			Miss: dataplane.MissController, StatsEvery: 100 * simtime.Millisecond,
		})
		sim.Load(mkTrace(topo))
		col := mustRun(sim, simtime.Time(simtime.Minute))
		max := 0.0
		for d, u := range col.PeakLinkUtilization() {
			link := topo.Link(d.Link)
			if topo.Node(link.A).Kind == netgraph.KindSwitch && topo.Node(link.B).Kind == netgraph.KindSwitch && u > max {
				max = u
			}
		}
		return max
	}
	good := peak(NewChain(&ECMPLoadBalancer{}))
	bad := peak(NewChain(&MisconfiguredLoadBalancer{}))
	if bad <= good {
		t.Errorf("misconfigured LB peak %.2f should exceed balanced %.2f", bad, good)
	}
	if bad < 0.95 {
		t.Errorf("misconfigured LB should saturate a core link, peak = %.2f", bad)
	}
}

func TestBlackholeDrops(t *testing.T) {
	topo := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
	h0, h3 := topo.MustLookup("h0"), topo.MustLookup("h3")
	bh := &Blackhole{Matches: []header.Match{
		header.Match{}.WithEthDst(addr.HostMAC(h3)),
	}}
	col := runSim(t, topo, NewChain(&ProactiveMAC{}, bh), traffic.Trace{
		cbr(h0, h3, simtime.Time(10*simtime.Millisecond), 1e6, 1e8),
	})
	f := col.Flows()[0]
	if f.Completed || f.Outcome != "dropped" {
		t.Errorf("outcome = %s, want dropped", f.Outcome)
	}
	// Unrelated traffic flows normally.
	h1, h2 := topo.MustLookup("h1"), topo.MustLookup("h2")
	col = runSim(t, topo, NewChain(&ProactiveMAC{}, bh), traffic.Trace{
		cbr(h1, h2, simtime.Time(10*simtime.Millisecond), 1e6, 1e8),
	})
	if !col.Flows()[0].Completed {
		t.Error("unrelated flow should complete")
	}
}

func TestRateLimiterSlowsTransfer(t *testing.T) {
	topo := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
	h0, h3 := topo.MustLookup("h0"), topo.MustLookup("h3")
	sw, _ := topo.AttachedSwitch(h0)
	rl := &RateLimiter{Rules: []RateLimitRule{{
		Match:   header.Match{}.WithEthDst(addr.HostMAC(h3)),
		RateBps: 1e7, // 10 Mbps
		At:      sw,
	}}}
	col := runSim(t, topo, NewChain(&ProactiveMAC{}, rl), traffic.Trace{
		cbr(h0, h3, simtime.Time(10*simtime.Millisecond), 1e7, 1e8),
	})
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	// 1e7 bits at 1e7 bps = 1s, vs 0.1s unmetered.
	if fct := f.FCT().Seconds(); fct < 0.95 || fct > 1.15 {
		t.Errorf("rate-limited FCT = %g, want ~1s", fct)
	}
}

func TestRateLimitUnderminesTCP(t *testing.T) {
	// The paper's example: a policer degrades TCP beyond the pure rate
	// cap, because loss caps throughput via the Mathis bound.
	topo := netgraph.LeafSpine(2, 2, 2, netgraph.Gig, netgraph.TenGig)
	h0, h3 := topo.MustLookup("h0"), topo.MustLookup("h3")
	sw, _ := topo.AttachedSwitch(h0)

	run := func(ctrl flowsim.Controller) float64 {
		d := httpFlow(h0, h3, 2e8)
		d.TCP = true
		d.RateBps = math.Inf(1)
		d.Start = simtime.Time(10 * simtime.Millisecond)
		col := runSim(t, topo, ctrl, traffic.Trace{d})
		f := col.Flows()[0]
		if !f.Completed {
			t.Fatalf("outcome = %s", f.Outcome)
		}
		return f.FCT().Seconds()
	}
	plain := run(NewChain(&ProactiveMAC{}))
	limited := run(NewChain(&ProactiveMAC{}, &RateLimiter{Rules: []RateLimitRule{{
		Match:   header.Match{}.WithEthDst(addr.HostMAC(h3)),
		RateBps: 5e7,
		At:      sw,
	}}}))
	if limited <= plain*1.5 {
		t.Errorf("rate-limited TCP FCT %.3fs should far exceed plain %.3fs", limited, plain)
	}
}

func TestAppPeeringSteersHTTP(t *testing.T) {
	// Ring of 5 switches: default forwarding h0→h2 is s0→s1→s2 (3 switch
	// hops); the peering policy steers HTTP via the s4/s3 side (4 hops).
	topo := netgraph.Ring(5, netgraph.Gig, netgraph.TenGig)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	s0, s3 := topo.MustLookup("s0"), topo.MustLookup("s3")
	peer := &AppPeering{Rules: []PeeringRule{{
		Ingress:  s0,
		Egress:   s3,
		AppMatch: header.Match{}.WithProto(header.ProtoTCP).WithDstPort(header.PortHTTP),
	}}}
	d := httpFlow(h0, h2, 1e6)
	d.Start = simtime.Time(10 * simtime.Millisecond)
	col := runSim(t, topo, NewChain(&ProactiveMAC{}, peer), traffic.Trace{d})
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	// Steered path: s0→s4→s3→s2 = 4 switch hops; unsteered is 3.
	if f.PathLen != 4 {
		t.Errorf("path length = %d, want 4 (via s4/s3)", f.PathLen)
	}
	// Non-HTTP traffic keeps the short path.
	d2 := cbr(h0, h2, simtime.Time(10*simtime.Millisecond), 1e6, 1e8)
	col = runSim(t, topo, NewChain(&ProactiveMAC{}, peer), traffic.Trace{d2})
	if got := col.Flows()[0].PathLen; got != 3 {
		t.Errorf("non-HTTP path length = %d, want 3", got)
	}
}

func TestSourceRoutingPinsPath(t *testing.T) {
	topo := netgraph.Ring(5, netgraph.Gig, netgraph.TenGig)
	h0, h1 := topo.MustLookup("h0"), topo.MustLookup("h1")
	// Pin the long way round: s0→s4→s3→s2→s1.
	longPath := []netgraph.NodeID{
		topo.MustLookup("s0"), topo.MustLookup("s4"), topo.MustLookup("s3"),
		topo.MustLookup("s2"), topo.MustLookup("s1"),
	}
	sr := &SourceRouting{Routes: []SourceRoute{{Src: h0, Dst: h1, Path: longPath}}}
	d := cbr(h0, h1, simtime.Time(10*simtime.Millisecond), 1e6, 1e8)
	col := runSim(t, topo, NewChain(&ProactiveMAC{}, sr), traffic.Trace{d})
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	if f.PathLen != 5 {
		t.Errorf("source-routed path length = %d, want 5 (inefficient by design)", f.PathLen)
	}
}

func TestMonitorObservesCongestion(t *testing.T) {
	topo := netgraph.Dumbbell(2, 2, netgraph.Gig, netgraph.LinkSpec{BandwidthBps: 1e8, Delay: simtime.Millisecond})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	var congested []PortObservation
	mon := &Monitor{
		Every:     200 * simtime.Millisecond,
		Threshold: 0.9,
		OnCongestion: func(_ *flowsim.Context, obs PortObservation) {
			congested = append(congested, obs)
		},
	}
	d := cbr(h0, r0, simtime.Time(10*simtime.Millisecond), 5e8, 5e8) // saturates the 1e8 bottleneck
	col := runSim(t, topo, NewChain(&ProactiveMAC{}, mon), traffic.Trace{d})
	if !col.Flows()[0].Completed {
		t.Fatalf("outcome = %s", col.Flows()[0].Outcome)
	}
	if mon.Polls() == 0 {
		t.Fatal("monitor never polled")
	}
	if len(congested) == 0 {
		t.Fatal("congestion never reported despite a saturated bottleneck")
	}
	if congested[0].Utilized < 0.9 {
		t.Errorf("congestion callback fired at %g utilization", congested[0].Utilized)
	}
	if len(mon.Observations()) == 0 {
		t.Error("no observations retained")
	}
}

func TestChainComposesApps(t *testing.T) {
	// Everything together on a leaf-spine: ECMP + blackhole + rate limit
	// + peering; sanity check they coexist.
	topo := netgraph.LeafSpine(2, 2, 3, netgraph.Gig, netgraph.TenGig)
	h0 := topo.MustLookup("h0")
	h3, h4, h5 := topo.MustLookup("h3"), topo.MustLookup("h4"), topo.MustLookup("h5")
	sw0, _ := topo.AttachedSwitch(h0)
	chain := NewChain(
		&ECMPLoadBalancer{},
		&Blackhole{Matches: []header.Match{header.Match{}.WithEthDst(addr.HostMAC(h5))}},
		&RateLimiter{Rules: []RateLimitRule{{
			Match: header.Match{}.WithEthDst(addr.HostMAC(h4)), RateBps: 1e7, At: sw0,
		}}},
		&Monitor{Every: simtime.Second},
	)
	start := simtime.Time(20 * simtime.Millisecond)
	tr := traffic.Trace{
		cbr(h0, h3, start, 1e6, 1e8), // normal
		cbr(h0, h4, start, 1e7, 1e8), // rate limited
		cbr(h0, h5, start, 1e6, 1e8), // blackholed
	}
	tr[1].Key.SrcPort = 41001
	tr[2].Key.SrcPort = 41002
	col := runSim(t, topo, chain, tr)
	// Records are finalize-ordered; flow IDs follow arrival (trace) order.
	byID := map[int64]stats.FlowRecord{}
	for _, f := range col.Flows() {
		byID[f.ID] = f
	}
	if f := byID[1]; !f.Completed {
		t.Errorf("normal flow: %s", f.Outcome)
	}
	if f := byID[2]; !f.Completed || f.FCT().Seconds() < 0.9 {
		t.Errorf("limited flow: %s in %v", f.Outcome, f.FCT())
	}
	if f := byID[3]; f.Completed || f.Outcome != "dropped" {
		t.Errorf("blackholed flow: %s", f.Outcome)
	}
}

func TestProactiveMACReactsToLinkFailure(t *testing.T) {
	topo := netgraph.Ring(4, netgraph.Gig, netgraph.TenGig)
	h0, h1 := topo.MustLookup("h0"), topo.MustLookup("h1")
	s0, s1 := topo.MustLookup("s0"), topo.MustLookup("s1")
	direct := topo.LinkAt(s0, topo.PortToward(s0, s1)).ID
	sim := flowsim.New(flowsim.Config{Topology: topo, Controller: NewChain(&ProactiveMAC{}), Miss: dataplane.MissController})
	// Long flow; the direct link dies mid-transfer; the controller must
	// reroute the long way and the flow still completes.
	sim.Load(traffic.Trace{cbr(h0, h1, 0, 5e8, 1e8)}) // 5s transfer
	sim.ScheduleLinkChange(simtime.Time(2*simtime.Second), direct, false)
	col := mustRun(sim, simtime.Time(simtime.Minute))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s; controller failed to reroute", f.Outcome)
	}
	if col.PathChanges == 0 {
		t.Error("no path change recorded despite reroute")
	}
}
