package controller

import (
	"horse/internal/addr"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
)

// ECMPLoadBalancer is the "load balancing: edge→core" policy: instead of a
// single shortest-path port per destination, every switch with multiple
// equal-cost next hops gets a SELECT group whose buckets spread flows by
// hash across those ports (watch ports give data-plane failover). One
// group is shared per next-hop-set, so fabric-scale deployments stay
// compact.
type ECMPLoadBalancer struct {
	Cost netgraph.Cost
	// Weights, if non-nil, overrides bucket weights per switch+port; used
	// by the monitoring app to rebalance. Keyed by switch then port.
	Weights map[netgraph.NodeID]map[netgraph.PortNum]uint32

	resync portStatusCoalescer
}

// Name implements App.
func (*ECMPLoadBalancer) Name() string { return "ecmp-load-balancer" }

// Start implements flowsim.Controller.
func (l *ECMPLoadBalancer) Start(ctx *flowsim.Context) {
	InstallPolicyDefaults(ctx)
	l.installAll(ctx)
}

func (l *ECMPLoadBalancer) cost() netgraph.Cost {
	if l.Cost != nil {
		return l.Cost
	}
	return netgraph.HopCost
}

func (l *ECMPLoadBalancer) installAll(ctx *flowsim.Context) {
	topo := ctx.Topology()
	// Group IDs: allocate one per (switch, port-set) signature.
	type portSet string
	nextGroup := make(map[netgraph.NodeID]openflow.GroupID)
	groupOf := make(map[netgraph.NodeID]map[portSet]openflow.GroupID)

	for _, host := range topo.Hosts() {
		next := topo.ECMPNextHops(host, l.cost())
		mac := addr.HostMAC(host)
		for _, sw := range topo.Switches() {
			nhs := next[sw]
			if len(nhs) == 0 {
				continue
			}
			ports := make([]netgraph.PortNum, 0, len(nhs))
			for _, nh := range nhs {
				if p := topo.PortToward(sw, nh); p != netgraph.NoPort {
					ports = append(ports, p)
				}
			}
			if len(ports) == 0 {
				continue
			}
			if len(ports) == 1 {
				// Single path: plain output rule.
				ctx.Send(&openflow.FlowMod{
					Switch: sw, Op: openflow.FlowAdd,
					Table: TableForwarding, Priority: PrioForwarding,
					Match: header.Match{}.WithEthDst(mac),
					Instr: openflow.Apply(openflow.Output(ports[0])),
				})
				continue
			}
			sig := portSet(portsKey(ports))
			if groupOf[sw] == nil {
				groupOf[sw] = make(map[portSet]openflow.GroupID)
			}
			gid, ok := groupOf[sw][sig]
			if !ok {
				nextGroup[sw]++
				gid = openflow.GroupID(nextGroup[sw])
				groupOf[sw][sig] = gid
				buckets := make([]*openflow.Bucket, len(ports))
				for i, p := range ports {
					buckets[i] = &openflow.Bucket{
						Weight:    l.weight(sw, p),
						WatchPort: p,
						Actions:   []openflow.Action{openflow.Output(p)},
					}
				}
				ctx.Send(&openflow.GroupMod{
					Switch: sw, Op: openflow.GroupAdd,
					GroupID: gid, Type: openflow.GroupSelect, Buckets: buckets,
				})
			}
			ctx.Send(&openflow.FlowMod{
				Switch: sw, Op: openflow.FlowAdd,
				Table: TableForwarding, Priority: PrioForwarding,
				Match: header.Match{}.WithEthDst(mac),
				Instr: openflow.Apply(openflow.GroupAction(gid)),
			})
		}
	}
}

func (l *ECMPLoadBalancer) weight(sw netgraph.NodeID, p netgraph.PortNum) uint32 {
	if l.Weights == nil {
		return 1
	}
	if m := l.Weights[sw]; m != nil && m[p] > 0 {
		return m[p]
	}
	return 1
}

func portsKey(ports []netgraph.PortNum) string {
	b := make([]byte, 0, len(ports)*4)
	for _, p := range ports {
		b = append(b, byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
	}
	return string(b)
}

// Handle implements flowsim.Controller: link state changes flush the
// forwarding tables and reinstall groups with recomputed path sets (watch
// ports already give instant data-plane failover; the flush guarantees no
// stale rule toward a now-unreachable destination survives).
func (l *ECMPLoadBalancer) Handle(ctx *flowsim.Context, msg openflow.Message) {
	l.resync.Kick(ctx, msg, func() {
		InstallPolicyDefaults(ctx)
		FlushForwarding(ctx)
		l.installAll(ctx)
	})
}

// MisconfiguredLoadBalancer deliberately skews ECMP: all buckets point at
// one uplink. It reproduces the paper's Figure-1 failure narrative — "a
// misconfigured load balancing policy can cause congestion in the core" —
// and exists so experiments can quantify exactly that.
type MisconfiguredLoadBalancer struct {
	ECMPLoadBalancer
}

// Name implements App.
func (*MisconfiguredLoadBalancer) Name() string { return "misconfigured-load-balancer" }

// Start implements flowsim.Controller.
func (m *MisconfiguredLoadBalancer) Start(ctx *flowsim.Context) {
	// Weight 1 on the lowest port, 0 on the rest would starve buckets; a
	// "subtle" misconfiguration uses weight skew 1000:1 instead, dumping
	// essentially all flows on one core uplink.
	topo := ctx.Topology()
	m.Weights = make(map[netgraph.NodeID]map[netgraph.PortNum]uint32)
	for _, sw := range topo.Switches() {
		weights := make(map[netgraph.PortNum]uint32)
		first := true
		for _, p := range topo.Node(sw).Ports() {
			if first {
				weights[p] = 1000
				first = false
			} else {
				weights[p] = 1
			}
		}
		m.Weights[sw] = weights
	}
	m.ECMPLoadBalancer.Start(ctx)
}
