package controller

import (
	"horse/internal/addr"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
)

// ProactiveMAC is the paper's "basic forwarding based on source and
// destination MAC" baseline: at startup it installs, on every switch, a
// MAC-destination rule toward every host along shortest paths, plus the
// table-0 default. It reacts to PortStatus by recomputing affected rules.
type ProactiveMAC struct {
	// Cost selects the path metric (hop count by default).
	Cost netgraph.Cost

	resync portStatusCoalescer
}

// Name implements App.
func (*ProactiveMAC) Name() string { return "proactive-mac" }

// ForkApp implements ForkableApp: rule installation derives purely from
// the topology, and the PortStatus resync re-installs identical rules, so
// per-component instances compose to exactly the serial behavior.
func (p *ProactiveMAC) ForkApp() App { return &ProactiveMAC{Cost: p.Cost} }

// Start implements flowsim.Controller.
func (p *ProactiveMAC) Start(ctx *flowsim.Context) {
	InstallPolicyDefaults(ctx)
	p.installAll(ctx)
}

func (p *ProactiveMAC) cost() netgraph.Cost {
	if p.Cost != nil {
		return p.Cost
	}
	return netgraph.HopCost
}

func (p *ProactiveMAC) installAll(ctx *flowsim.Context) {
	topo := ctx.Topology()
	for _, host := range topo.Hosts() {
		p.installHost(ctx, host)
	}
}

func (p *ProactiveMAC) installHost(ctx *flowsim.Context, host netgraph.NodeID) {
	topo := ctx.Topology()
	next := topo.ECMPNextHops(host, p.cost())
	mac := addr.HostMAC(host)
	for _, sw := range topo.Switches() {
		nh := next[sw]
		if len(nh) == 0 {
			continue
		}
		out := topo.PortToward(sw, nh[0])
		if out == netgraph.NoPort {
			continue
		}
		ctx.Send(&openflow.FlowMod{
			Switch: sw, Op: openflow.FlowAdd,
			Table: TableForwarding, Priority: PrioForwarding,
			Match: header.Match{}.WithEthDst(mac),
			Instr: openflow.Apply(openflow.Output(out)),
		})
	}
}

// Handle implements flowsim.Controller: topology changes flush the
// forwarding tables and trigger a full recomputation (simple and correct;
// fine at control-event rates). The flush guarantees reconvergence leaves
// no stale rule matching a dead port — including rules toward destinations
// the recompute can no longer reach.
func (p *ProactiveMAC) Handle(ctx *flowsim.Context, msg openflow.Message) {
	p.resync.Kick(ctx, msg, func() {
		InstallPolicyDefaults(ctx)
		FlushForwarding(ctx)
		p.installAll(ctx)
	})
}

// ReactiveMAC forwards like ProactiveMAC but installs rules on demand:
// switches punt unknown flows, and on a PacketIn the app installs
// MAC-destination rules with an idle timeout along the shortest path from
// the punting switch. This is the classic Ryu/POX l2 app shape and the
// high-PacketIn configuration of the E5 sweep.
type ReactiveMAC struct {
	// IdleTimeout evicts reactive rules (default 10 s).
	IdleTimeout simtime.Duration
	Cost        netgraph.Cost

	resync portStatusCoalescer
}

// Name implements App.
func (*ReactiveMAC) Name() string { return "reactive-mac" }

// ForkApp implements ForkableApp: reactive installs follow PacketIns,
// which are per-switch and therefore component-local, and the resync
// reaction re-installs only the idempotent table-0 defaults.
func (r *ReactiveMAC) ForkApp() App {
	return &ReactiveMAC{IdleTimeout: r.IdleTimeout, Cost: r.Cost}
}

// Start implements flowsim.Controller.
func (r *ReactiveMAC) Start(ctx *flowsim.Context) {
	InstallPolicyDefaults(ctx)
}

// Handle implements flowsim.Controller. Topology events re-install the
// table-0 defaults (a restarted switch comes back with every table empty,
// and without the goto-forwarding default it could never punt reactive
// misses up to table 1); the reactive table-1 rules themselves reinstall
// on the re-punts that follow.
func (r *ReactiveMAC) Handle(ctx *flowsim.Context, msg openflow.Message) {
	r.resync.Kick(ctx, msg, func() { InstallPolicyDefaults(ctx) })
	pin, ok := msg.(*openflow.PacketIn)
	if !ok {
		return
	}
	topo := ctx.Topology()
	dst := addr.HostOfMAC(pin.Key.EthDst)
	if dst < 0 || int(dst) >= topo.NumNodes() || topo.Node(dst).Kind != netgraph.KindHost {
		return
	}
	cost := r.Cost
	if cost == nil {
		cost = netgraph.HopCost
	}
	idle := r.IdleTimeout
	if idle == 0 {
		idle = 10 * simtime.Second
	}
	path := topo.ShortestPath(pin.Switch, dst, cost)
	if path == nil {
		return
	}
	for i := 0; i+1 < len(path); i++ {
		if topo.Node(path[i]).Kind != netgraph.KindSwitch {
			continue
		}
		out := topo.PortToward(path[i], path[i+1])
		if out == netgraph.NoPort {
			continue
		}
		ctx.Send(&openflow.FlowMod{
			Switch: path[i], Op: openflow.FlowAdd,
			Table: TableForwarding, Priority: PrioForwarding,
			Match:       header.Match{}.WithEthDst(pin.Key.EthDst),
			IdleTimeout: idle,
			Instr:       openflow.Apply(openflow.Output(out)),
		})
	}
	// Release the buffered first packet.
	ctx.Send(&openflow.PacketOut{Switch: pin.Switch, InPort: pin.InPort, Key: pin.Key})
}
