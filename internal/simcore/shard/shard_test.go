package shard

import (
	"sync"
	"testing"

	"horse/internal/simcore"
	"horse/internal/simtime"
)

type testEvent struct {
	at   simtime.Time
	fire func(*testEvent)
}

func (e *testEvent) Time() simtime.Time { return e.at }
func (e *testEvent) Fire()              { e.fire(e) }
func (e *testEvent) Release()           {}

// TestWindowsRespectLookahead: a two-shard ping-pong where each event
// schedules a reply on the other shard one lookahead later, delivered
// only at barriers. Every event must fire exactly once, cross events
// never fire inside the window that generated them, and the coordinator
// clock parks on the last dispatched instant.
func TestWindowsRespectLookahead(t *testing.T) {
	const la = 10
	k0 := simcore.New(simcore.Config{})
	k1 := simcore.New(simcore.Config{})
	kernels := []*simcore.Kernel{k0, k1}
	global := simcore.New(simcore.Config{})

	var mu sync.Mutex
	var fired []simtime.Time
	var outbox []*testEvent
	var targets []int

	var mkEvent func(shard int, at simtime.Time, hops int) *testEvent
	mkEvent = func(shard int, at simtime.Time, hops int) *testEvent {
		return &testEvent{at: at, fire: func(e *testEvent) {
			mu.Lock()
			fired = append(fired, e.at)
			mu.Unlock()
			if hops > 0 {
				// Cross to the other shard with exactly the lookahead.
				mu.Lock()
				outbox = append(outbox, mkEvent(1-shard, e.at+la, hops-1))
				targets = append(targets, 1-shard)
				mu.Unlock()
			}
		}}
	}
	k0.Schedule(mkEvent(0, 0, 6))
	k1.Schedule(mkEvent(1, 3, 4))

	exchange := func() {
		for i, ev := range outbox {
			kernels[targets[i]].Schedule(ev)
		}
		outbox = outbox[:0]
		targets = targets[:0]
	}
	x := New(Config{Lookahead: la, Parallel: 2}, global, kernels, exchange)
	x.Run(simtime.Never)

	want := 6 + 1 + 4 + 1
	if len(fired) != want {
		t.Fatalf("%d events fired, want %d", len(fired), want)
	}
	if x.Dispatched() != uint64(want) {
		t.Errorf("Dispatched = %d, want %d", x.Dispatched(), want)
	}
	if global.Now() != 60 {
		t.Errorf("coordinator parked at %v, want the last event time 60", global.Now())
	}
}

// TestGlobalEventsBoundWindows: a global event at t=25 must execute
// before any shard event at t >= 25 runs, even though the shard's queue
// holds events on both sides of it from the start.
func TestGlobalEventsBoundWindows(t *testing.T) {
	k0 := simcore.New(simcore.Config{})
	global := simcore.New(simcore.Config{})
	var order []string
	add := func(k *simcore.Kernel, at simtime.Time, label string) {
		k.Schedule(&testEvent{at: at, fire: func(e *testEvent) { order = append(order, label) }})
	}
	add(k0, 10, "s10")
	add(k0, 25, "s25")
	add(k0, 40, "s40")
	add(global, 25, "g25")
	x := New(Config{Lookahead: 5, Parallel: 1}, global, []*simcore.Kernel{k0}, nil)
	x.Run(simtime.Never)
	want := []string{"s10", "g25", "s25", "s40"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestRunBoundParks: stopping at a bound leaves later events queued and
// the coordinator clock at the bound.
func TestRunBoundParks(t *testing.T) {
	k0 := simcore.New(simcore.Config{})
	global := simcore.New(simcore.Config{})
	fired := 0
	k0.Schedule(&testEvent{at: 5, fire: func(*testEvent) { fired++ }})
	k0.Schedule(&testEvent{at: 50, fire: func(*testEvent) { fired++ }})
	x := New(Config{Lookahead: simtime.Forever, Parallel: 1}, global, []*simcore.Kernel{k0}, nil)
	x.Run(20)
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
	if global.Now() != 20 {
		t.Errorf("coordinator parked at %v, want the bound 20", global.Now())
	}
	if k0.Len() != 1 {
		t.Errorf("%d events left, want 1", k0.Len())
	}
}
