package simcore

import (
	"context"
	"math/rand"
	"testing"

	"horse/internal/simtime"
)

// testEvent is a minimal pooled event recording its dispatch.
type testEvent struct {
	at   simtime.Time
	id   int
	fire func(e *testEvent)
	pool *Pool[testEvent]
}

func (e *testEvent) Time() simtime.Time { return e.at }
func (e *testEvent) Fire()              { e.fire(e) }
func (e *testEvent) Release() {
	if e.pool != nil {
		p := e.pool
		*e = testEvent{}
		p.Put(e)
	}
}

func TestRunDispatchOrder(t *testing.T) {
	for _, calendar := range []bool{false, true} {
		k := New(Config{UseCalendarQueue: calendar})
		var got []int
		times := []simtime.Time{30, 10, 20, 10, 0}
		for i, at := range times {
			i := i
			k.Schedule(&testEvent{at: at, id: i, fire: func(e *testEvent) { got = append(got, e.id) }})
		}
		k.Run(simtime.Never)
		want := []int{4, 1, 3, 2, 0} // time order, FIFO ties
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("calendar=%v: dispatch order %v, want %v", calendar, got, want)
			}
		}
		if k.Dispatched() != uint64(len(times)) {
			t.Errorf("Dispatched = %d, want %d", k.Dispatched(), len(times))
		}
	}
}

func TestRunBound(t *testing.T) {
	k := New(Config{})
	var fired []simtime.Time
	for _, at := range []simtime.Time{5, 15, 25} {
		k.Schedule(&testEvent{at: at, fire: func(e *testEvent) { fired = append(fired, e.at) }})
	}
	k.Run(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 15 only", fired)
	}
	if k.Now() != 20 {
		t.Errorf("Now = %v, want clock parked at the bound", k.Now())
	}
	if k.Len() != 1 {
		t.Fatalf("Len = %d, want the out-of-bound event still queued", k.Len())
	}
	// Stepping: an event scheduled between runs, earlier than the staged
	// one, fires first; the staged event then fires at its own time.
	k.Schedule(&testEvent{at: 22, fire: func(e *testEvent) { fired = append(fired, e.at) }})
	k.Run(simtime.Never)
	if len(fired) != 4 || fired[2] != 22 || fired[3] != 25 {
		t.Fatalf("fired %v, want [5 15 22 25]", fired)
	}
}

// TestPreAdvanceHook verifies the flowsim contract: deferred work settles
// exactly when the clock would advance, and events the drain schedules at
// earlier times run before the stalled head.
func TestPreAdvanceHook(t *testing.T) {
	k := New(Config{})
	dirty := false
	var order []string
	k.AddPreAdvance(func() bool { return dirty }, func() {
		dirty = false
		order = append(order, "drain")
		k.Schedule(&testEvent{at: k.Now() + 1, fire: func(*testEvent) { order = append(order, "drained-event") }})
	})
	k.Schedule(&testEvent{at: 0, fire: func(*testEvent) {
		order = append(order, "e0")
		dirty = true
	}})
	k.Schedule(&testEvent{at: 100, fire: func(*testEvent) { order = append(order, "e100") }})
	k.Run(simtime.Never)
	want := []string{"e0", "drain", "drained-event", "e100"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestPreAdvanceDrainOnEmpty: a drain on an emptied queue may schedule the
// run's final events (flowsim's deferred solve scheduling completions).
func TestPreAdvanceDrainOnEmpty(t *testing.T) {
	k := New(Config{})
	dirty := false
	fired := 0
	k.AddPreAdvance(func() bool { return dirty }, func() {
		dirty = false
		k.Schedule(&testEvent{at: k.Now() + 10, fire: func(*testEvent) { fired++ }})
	})
	k.Schedule(&testEvent{at: 0, fire: func(*testEvent) { dirty = true }})
	k.Run(simtime.Never)
	if fired != 1 {
		t.Fatalf("drain-scheduled event fired %d times, want 1", fired)
	}
}

// TestPoolRecycles: envelopes cycle through the pool without disturbing
// dispatch, and steady-state reuse allocates nothing new.
func TestPoolRecycles(t *testing.T) {
	k := New(Config{})
	var pool Pool[testEvent]
	rng := rand.New(rand.NewSource(1))
	fired := 0
	var sched func(at simtime.Time)
	sched = func(at simtime.Time) {
		e := pool.Get()
		*e = testEvent{at: at, pool: &pool, fire: func(e *testEvent) {
			fired++
			if fired < 1000 {
				sched(e.at + simtime.Time(rng.Int63n(50)+1))
			}
		}}
		k.Schedule(e)
	}
	sched(0)
	k.Run(simtime.Never)
	if fired != 1000 {
		t.Fatalf("fired = %d, want 1000", fired)
	}
	// One event is in flight at a time, so the whole run rotates through
	// two envelopes: the firing one and the one it schedules.
	if len(pool.free) > 2 {
		t.Errorf("pool holds %d envelopes, want at most the 2-envelope rotation", len(pool.free))
	}
}

// TestMultipleHooks: hooks drain in registration order — the hybrid case
// of two engines sharing one kernel.
func TestMultipleHooks(t *testing.T) {
	k := New(Config{})
	var order []string
	d1, d2 := false, false
	k.AddPreAdvance(func() bool { return d1 }, func() { d1 = false; order = append(order, "h1") })
	k.AddPreAdvance(func() bool { return d2 }, func() { d2 = false; order = append(order, "h2") })
	k.Schedule(&testEvent{at: 0, fire: func(*testEvent) { d1, d2 = true, true }})
	k.Schedule(&testEvent{at: 10, fire: func(*testEvent) { order = append(order, "ev") }})
	k.Run(simtime.Never)
	if len(order) != 3 || order[0] != "h1" || order[1] != "h2" || order[2] != "ev" {
		t.Fatalf("order = %v, want [h1 h2 ev]", order)
	}
}

// TestRunContextCancellation: a cancelled context stops the dispatch loop
// promptly (within the poll granularity) and returns ctx.Err(); the queue
// and clock stay consistent for a later resume or settle.
func TestRunContextCancellation(t *testing.T) {
	k := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	dispatched := 0
	// A self-rescheduling event: without cancellation this runs forever.
	var reschedule func(e *testEvent)
	reschedule = func(e *testEvent) {
		dispatched++
		if dispatched == 10 {
			cancel()
		}
		k.Schedule(&testEvent{at: e.at + 1, fire: reschedule})
	}
	k.Schedule(&testEvent{at: 0, fire: reschedule})
	if err := k.RunContext(ctx, simtime.Never); err != context.Canceled {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if dispatched < 10 || dispatched > 10+2*ctxPollEvery {
		t.Errorf("dispatched %d events; cancellation not honored within the poll window", dispatched)
	}
	if k.Len() == 0 {
		t.Error("queue drained despite cancellation")
	}
	// The kernel is resumable after a cancel: a fresh context continues.
	before := dispatched
	k.Schedule(&testEvent{at: k.Now() + 1000, fire: func(e *testEvent) {}})
	stop := k.Now() + 500
	if err := k.RunContext(context.Background(), stop); err != nil {
		t.Fatalf("resume RunContext = %v", err)
	}
	if dispatched <= before {
		t.Error("resume dispatched nothing")
	}
}

// TestRunContextBackgroundMatchesRun: an uncancellable context takes the
// plain Run path and honors the bound identically.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	run := func(useCtx bool) []simtime.Time {
		k := New(Config{})
		var fired []simtime.Time
		for _, at := range []simtime.Time{5, 15, 25} {
			k.Schedule(&testEvent{at: at, fire: func(e *testEvent) { fired = append(fired, e.at) }})
		}
		if useCtx {
			if err := k.RunContext(context.Background(), 20); err != nil {
				t.Fatal(err)
			}
		} else {
			k.Run(20)
		}
		if k.Now() != 20 {
			t.Fatalf("clock parked at %v, want 20", k.Now())
		}
		return fired
	}
	a, b := run(false), run(true)
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("Run %v vs RunContext %v", a, b)
	}
}
