// Package simcore is the shared discrete-event simulation kernel under
// every Horse engine: the virtual clock, the pluggable event queue, the
// deterministic dispatch loop, and the pooled event envelopes. The
// flow-level engine (flowsim), the packet-level engine (packetsim), and
// the hybrid coupler (hybrid) all run on one Kernel, which is what lets
// several engines share a single virtual clock and interleave their events
// in strict time order — the foundation of hybrid-fidelity runs.
//
// The kernel makes three promises:
//
//   - Determinism: events fire in nondecreasing time order, breaking ties
//     by deterministic order key (eventq.Keyed) and then FIFO schedule
//     order, regardless of queue implementation. Order keys derive from
//     stable simulation entities, which is what lets the sharded executor
//     (simcore/shard) reproduce a serial run's dispatch order exactly.
//   - A Peek-free fast path: an unbounded dispatch loop only inspects the
//     queue head (Peek) when a pre-advance hook has deferred work pending;
//     otherwise it pops directly. Bounded runs pay one Peek per event to
//     honor the bound without disturbing tie order.
//   - Pre-advance hooks: an engine may defer work that must settle before
//     virtual time advances past the current instant (flowsim's batched
//     fair-share re-solve). The kernel drains pending hooks exactly when
//     the next event would move the clock, so all events at one instant
//     share a single settling pass.
package simcore

import (
	"context"

	"horse/internal/eventq"
	"horse/internal/simtime"
)

// Event is a schedulable kernel event. Fire executes it; Release returns
// it to its owner's pool after dispatch. Events typically carry generation
// stamps (compared against owner state in Fire) so that stale, logically
// cancelled events are cheap no-ops — the pattern that makes pooling safe:
// a recycled envelope can never be confused with its former identity,
// because the generation it carried is dead.
type Event interface {
	eventq.Event
	// Fire executes the event at its firing time.
	Fire()
	// Release recycles the event after Fire returns. Implementations that
	// do not pool may make it a no-op.
	Release()
}

// Config parameterizes a Kernel.
type Config struct {
	// Backend selects the event-queue implementation (heap by default).
	Backend eventq.Backend
	// UseCalendarQueue selects the calendar event queue instead of the
	// binary heap (the original E6 ablation switch).
	//
	// Deprecated: set Backend to eventq.BackendCalendar. A non-default
	// Backend wins when both are set.
	UseCalendarQueue bool
	// Queue, if non-nil, is used directly and overrides Backend and
	// UseCalendarQueue.
	Queue eventq.Queue
}

// hook is one pre-advance hook: pending reports whether deferred work
// exists; drain settles it (and may schedule new events at or after the
// current instant).
type hook struct {
	pending func() bool
	drain   func()
}

// Kernel is the simulation core: virtual clock + event queue + dispatch
// loop. Zero value is not usable; call New.
type Kernel struct {
	q          eventq.Queue
	qc         eventq.Canceler // non-nil when q supports true cancellation
	now        simtime.Time
	hooks      []hook
	dispatched uint64
	envPool    Pool[cancelEnv]
}

// New builds a kernel over the configured queue.
func New(cfg Config) *Kernel {
	q := cfg.Queue
	if q == nil {
		b := cfg.Backend
		if b == eventq.BackendHeap && cfg.UseCalendarQueue {
			b = eventq.BackendCalendar
		}
		q = eventq.New(b)
	}
	k := &Kernel{q: q}
	k.qc, _ = q.(eventq.Canceler)
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() simtime.Time { return k.now }

// Len returns the number of scheduled events.
func (k *Kernel) Len() int { return k.q.Len() }

// NextTime returns the firing time of the earliest queued event, or
// simtime.Never when the queue is empty. The sharded executor uses it to
// compute the conservative window bound across shard kernels.
func (k *Kernel) NextTime() simtime.Time {
	h := k.q.Peek()
	if h == nil {
		return simtime.Never
	}
	return h.Time()
}

// AdvanceTo moves the clock forward to t without dispatching anything (a
// no-op when t is not ahead of the clock). The sharded executor uses it to
// park the coordinator clock at barrier instants and at the run bound.
func (k *Kernel) AdvanceTo(t simtime.Time) {
	if t != simtime.Never && t > k.now {
		k.now = t
	}
}

// Dispatched returns how many events have fired — the work metric shared
// across all engines on this kernel (E7 reports it as events/sec).
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Schedule queues an event. Scheduling in the past is not checked; the
// clock never moves backwards, so such an event fires at the current
// instant (after everything already queued there).
func (k *Kernel) Schedule(ev Event) { k.q.Push(ev) }

// Extract drains the queue and returns, in dequeue order, every event for
// which match returns true; the rest are re-pushed in dequeue order, so
// their relative (time, key, FIFO) order is preserved exactly. The sharded
// executor's work stealing uses it at window barriers to move a migrated
// entity's queued events to the new owner's kernel.
//
// Extract must only be called when no live Timer handle points into this
// queue: popping invalidates eventq handles, so the caller cancels every
// pending cancelable event first (collecting re-arm state) and re-arms
// after the move. Events sharing an exact (time, key) pair always belong
// to one entity (keys derive from stable entities), so a whole-entity
// match can never split a FIFO tie group between keepers and movers.
func (k *Kernel) Extract(match func(Event) bool) []Event {
	var movers, keepers []Event
	for {
		ev := k.q.Pop()
		if ev == nil {
			break
		}
		e := ev.(Event)
		if match(e) {
			movers = append(movers, e)
		} else {
			keepers = append(keepers, e)
		}
	}
	for _, e := range keepers {
		k.q.Push(e)
	}
	return movers
}

// Timer is a handle on one cancelable scheduled event. The zero Timer is
// valid and cancels as a no-op; handles go stale once the event fires or
// is cancelled, so engines may keep a Timer per flow/switch and Cancel it
// unconditionally. Timers are value types and allocate nothing on the
// true-cancellation path (queue nodes and fallback envelopes are pooled).
type Timer struct {
	h    eventq.Handle
	env  *cancelEnv
	egen uint32
}

// ScheduleCancelable queues an event and returns a Timer that can remove
// it before it fires. On a Canceler-capable queue (every built-in
// backend) cancellation truly removes the event — on the wheel in O(1),
// on heap/calendar by marking the entry dead without ever touching the
// event again — so the engine can recycle the envelope immediately. On an
// externally supplied non-Canceler queue the event is wrapped in a pooled
// envelope that no-ops when cancelled, preserving exact scheduling
// semantics at the cost of a corpse dispatch.
func (k *Kernel) ScheduleCancelable(ev Event) Timer {
	if k.qc != nil {
		return Timer{h: k.qc.PushCancelable(ev)}
	}
	env := k.envPool.Get()
	env.inner = ev
	env.k = k
	env.dead = false
	k.q.Push(env)
	return Timer{env: env, egen: env.gen}
}

// Cancel removes a cancelable scheduled event. It returns true when the
// event was still pending (its envelope has been released); a zero or
// stale Timer — the event already fired or was already cancelled — is a
// safe no-op returning false.
func (k *Kernel) Cancel(t Timer) bool {
	if t.env != nil {
		if t.env.gen != t.egen || t.env.dead || t.env.inner == nil {
			return false
		}
		t.env.dead = true
		return true
	}
	if k.qc == nil {
		return false
	}
	ev, ok := k.qc.Cancel(t.h)
	if !ok {
		return false
	}
	ev.(Event).Release()
	return true
}

// cancelEnv wraps a cancelable event for queues without native
// cancellation: Fire/Release forward to the inner event unless the timer
// was cancelled, in which case the corpse fires as a no-op and releases
// the inner envelope only when it finally pops (the queue may still read
// its Time, so the envelope cannot be recycled earlier).
type cancelEnv struct {
	inner Event
	k     *Kernel
	gen   uint32 // bumped on recycle so stale Timers cancel as no-ops
	dead  bool
}

func (c *cancelEnv) Time() simtime.Time { return c.inner.Time() }

func (c *cancelEnv) OrderKey() uint64 {
	if kd, ok := c.inner.(eventq.Keyed); ok {
		return kd.OrderKey()
	}
	return eventq.DefaultOrderKey
}

func (c *cancelEnv) Fire() {
	if !c.dead {
		c.inner.Fire()
	}
}

func (c *cancelEnv) Release() {
	inner, k := c.inner, c.k
	c.inner, c.k, c.dead = nil, nil, false
	c.gen++
	inner.Release()
	k.envPool.Put(c)
}

// AddPreAdvance registers a pre-advance hook. Hooks run — in registration
// order — whenever the next event would advance the clock (or the queue is
// empty) while pending() reports deferred work. drain() may schedule new
// events, including at the current instant; the kernel re-examines the
// queue after every drain pass.
func (k *Kernel) AddPreAdvance(pending func() bool, drain func()) {
	k.hooks = append(k.hooks, hook{pending: pending, drain: drain})
}

func (k *Kernel) anyPending() bool {
	for i := range k.hooks {
		if k.hooks[i].pending() {
			return true
		}
	}
	return false
}

func (k *Kernel) drainHooks() {
	for i := range k.hooks {
		if k.hooks[i].pending() {
			k.hooks[i].drain()
		}
	}
}

// Run executes events until the queue drains or the next event lies beyond
// until (use simtime.Never for no bound). On the time bound the clock
// advances to until and the out-of-bound event stays queued, so Run may be
// called repeatedly with increasing bounds to step a simulation — the
// window loop of the sharded executor. Leaving the event in the queue (as
// opposed to popping and staging it) keeps its (time, key, seq) position
// intact, so stepping never perturbs tie order.
func (k *Kernel) Run(until simtime.Time) {
	for {
		ev := k.next(until)
		if ev == nil {
			return
		}
		if t := ev.Time(); t > k.now {
			k.now = t
		}
		k.dispatched++
		ev.Fire()
		ev.Release()
	}
}

// RunContext is Run with cooperative cancellation: the dispatch loop
// polls ctx.Done() every ctxPollEvery dispatches and returns ctx.Err()
// when the context is cancelled or past its deadline, leaving the queue
// (and the clock) exactly where the last dispatched event put them — the
// caller can settle partial results or resume with another Run. A context
// that can never be cancelled (context.Background) takes the plain Run
// fast path.
func (k *Kernel) RunContext(ctx context.Context, until simtime.Time) error {
	done := ctx.Done()
	if done == nil {
		k.Run(until)
		return nil
	}
	for {
		for i := 0; i < ctxPollEvery; i++ {
			ev := k.next(until)
			if ev == nil {
				return nil
			}
			if t := ev.Time(); t > k.now {
				k.now = t
			}
			k.dispatched++
			ev.Fire()
			ev.Release()
		}
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
}

// ctxPollEvery bounds how many events RunContext dispatches between
// cancellation polls: small enough to stop promptly (microseconds of real
// work), large enough to keep the channel poll off the per-event path.
const ctxPollEvery = 256

// next removes and returns the earliest runnable event, honoring
// pre-advance hooks: deferred work settles before the clock would advance
// (the drain may schedule events earlier than the stalled head, so the
// queue is re-examined after each pass). Returns nil when everything has
// drained or the head lies beyond the bound (the clock then parks at the
// bound). On the common unbounded path — no hook pending — this is a
// single Pop with no head inspection (the Peek-free fast path).
func (k *Kernel) next(until simtime.Time) Event {
	for {
		if k.anyPending() {
			head := k.q.Peek()
			if head == nil || head.Time() > k.now {
				k.drainHooks()
				if head == nil && k.q.Len() == 0 {
					return nil
				}
				continue
			}
		}
		if until != simtime.Never {
			head := k.q.Peek()
			if head == nil {
				return nil
			}
			if head.Time() > until {
				k.now = until
				return nil
			}
		}
		ev := k.q.Pop()
		if ev == nil {
			return nil
		}
		return ev.(Event)
	}
}

// Order classes shared by every engine on the kernel. An event's order
// key is OrderKey(class, entity): at one instant, lower classes fire
// first, and within a class the stable entity ID (link direction,
// datapath, flow index) breaks the tie. Both engines MUST use the same
// class for equivalent control-plane events — it is what keeps a hybrid
// run (where the flow engine owns the control plane) dispatch-identical
// to a standalone packet run, and what lets the sharded executor merge
// cross-shard events into exactly the serial order.
//
// Classes are ordered so that at one instant: scripted topology changes
// land first (the outage is in effect before that instant's traffic),
// then controller→switch applications, table expiries, switch→controller
// deliveries and controller timers, and finally the engines' data-plane
// events (per-engine subclasses from ClassData up).
const (
	ClassTopoChange uint64 = iota
	ClassToSwitch
	ClassExpiry
	ClassToController
	ClassTimer
	ClassData // first engine-specific data class; engines add offsets
)

// OrderKey packs an order class and a stable entity ID into an
// eventq.Keyed key.
func OrderKey(class uint64, entity uint32) uint64 {
	return class<<32 | uint64(entity)
}

// Pool recycles event envelopes so steady-state simulation allocates no
// event memory: Get returns a recycled (or new) zero-value-at-rest *T, Put
// returns one after the owner has cleared payload references. Pool is not
// goroutine-safe; each engine owns one.
type Pool[T any] struct {
	free []*T
}

// Get returns an envelope from the pool, allocating if empty.
func (p *Pool[T]) Get() *T {
	if n := len(p.free) - 1; n >= 0 {
		x := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		return x
	}
	return new(T)
}

// Put recycles an envelope. The caller must have dropped every reference
// and cleared the envelope's payload fields.
func (p *Pool[T]) Put(x *T) { p.free = append(p.free, x) }
