// Package simcore is the shared discrete-event simulation kernel under
// every Horse engine: the virtual clock, the pluggable event queue, the
// deterministic dispatch loop, and the pooled event envelopes. The
// flow-level engine (flowsim), the packet-level engine (packetsim), and
// the hybrid coupler (hybrid) all run on one Kernel, which is what lets
// several engines share a single virtual clock and interleave their events
// in strict time order — the foundation of hybrid-fidelity runs.
//
// The kernel makes three promises:
//
//   - Determinism: events fire in nondecreasing time order with FIFO
//     tie-breaking by schedule order, regardless of queue implementation.
//   - A Peek-free fast path: the dispatch loop only inspects the queue
//     head (Peek) when a pre-advance hook has deferred work pending;
//     otherwise it pops directly, so queues never pay for head inspection
//     on the common path.
//   - Pre-advance hooks: an engine may defer work that must settle before
//     virtual time advances past the current instant (flowsim's batched
//     fair-share re-solve). The kernel drains pending hooks exactly when
//     the next event would move the clock, so all events at one instant
//     share a single settling pass.
package simcore

import (
	"horse/internal/eventq"
	"horse/internal/simtime"
)

// Event is a schedulable kernel event. Fire executes it; Release returns
// it to its owner's pool after dispatch. Events typically carry generation
// stamps (compared against owner state in Fire) so that stale, logically
// cancelled events are cheap no-ops — the pattern that makes pooling safe:
// a recycled envelope can never be confused with its former identity,
// because the generation it carried is dead.
type Event interface {
	eventq.Event
	// Fire executes the event at its firing time.
	Fire()
	// Release recycles the event after Fire returns. Implementations that
	// do not pool may make it a no-op.
	Release()
}

// Config parameterizes a Kernel.
type Config struct {
	// UseCalendarQueue selects the calendar event queue instead of the
	// binary heap (the E6 ablation switch, now shared by every engine).
	UseCalendarQueue bool
	// Queue, if non-nil, is used directly and overrides UseCalendarQueue.
	Queue eventq.Queue
}

// hook is one pre-advance hook: pending reports whether deferred work
// exists; drain settles it (and may schedule new events at or after the
// current instant).
type hook struct {
	pending func() bool
	drain   func()
}

// Kernel is the simulation core: virtual clock + event queue + dispatch
// loop. Zero value is not usable; call New.
type Kernel struct {
	q          eventq.Queue
	now        simtime.Time
	hooks      []hook
	dispatched uint64
	// staged holds an event a previous Run popped but could not fire
	// because it lay beyond the time bound; the next Run considers it
	// against the queue head (it wins ties — it was scheduled earlier
	// than anything pushed since).
	staged Event
}

// New builds a kernel over the configured queue.
func New(cfg Config) *Kernel {
	q := cfg.Queue
	if q == nil {
		if cfg.UseCalendarQueue {
			q = eventq.NewCalendar()
		} else {
			q = eventq.NewHeap()
		}
	}
	return &Kernel{q: q}
}

// Now returns the current virtual time.
func (k *Kernel) Now() simtime.Time { return k.now }

// Len returns the number of scheduled events.
func (k *Kernel) Len() int {
	n := k.q.Len()
	if k.staged != nil {
		n++
	}
	return n
}

// Dispatched returns how many events have fired — the work metric shared
// across all engines on this kernel (E7 reports it as events/sec).
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// Schedule queues an event. Scheduling in the past is not checked; the
// clock never moves backwards, so such an event fires at the current
// instant (after everything already queued there).
func (k *Kernel) Schedule(ev Event) { k.q.Push(ev) }

// AddPreAdvance registers a pre-advance hook. Hooks run — in registration
// order — whenever the next event would advance the clock (or the queue is
// empty) while pending() reports deferred work. drain() may schedule new
// events, including at the current instant; the kernel re-examines the
// queue after every drain pass.
func (k *Kernel) AddPreAdvance(pending func() bool, drain func()) {
	k.hooks = append(k.hooks, hook{pending: pending, drain: drain})
}

func (k *Kernel) anyPending() bool {
	for i := range k.hooks {
		if k.hooks[i].pending() {
			return true
		}
	}
	return false
}

func (k *Kernel) drainHooks() {
	for i := range k.hooks {
		if k.hooks[i].pending() {
			k.hooks[i].drain()
		}
	}
}

// Run executes events until the queue drains or the next event lies beyond
// until (use simtime.Never for no bound). On the time bound the clock
// advances to until and the out-of-bound event is staged for the next Run,
// so Run may be called repeatedly with increasing bounds to step a
// simulation.
func (k *Kernel) Run(until simtime.Time) {
	for {
		ev := k.next()
		if ev == nil {
			return
		}
		if ev.Time() > until {
			k.staged = ev
			k.now = until
			return
		}
		if t := ev.Time(); t > k.now {
			k.now = t
		}
		k.dispatched++
		ev.Fire()
		ev.Release()
	}
}

// next removes and returns the earliest runnable event, honoring
// pre-advance hooks: deferred work settles before the clock would advance
// (the drain may schedule events earlier than the stalled head, so the
// queue is re-examined after each pass). Returns nil when everything has
// drained. On the common path — no hook pending, nothing staged — this is
// a single Pop with no head inspection (the Peek-free fast path).
func (k *Kernel) next() Event {
	for {
		if k.anyPending() {
			head := k.peekAny()
			if head == nil || head.Time() > k.now {
				k.drainHooks()
				if head == nil && k.Len() == 0 {
					return nil
				}
				continue
			}
		}
		return k.popAny()
	}
}

// peekAny previews the earliest event across the staged slot and the
// queue; the staged event wins ties (it was scheduled first).
func (k *Kernel) peekAny() Event {
	h := k.q.Peek()
	if k.staged == nil {
		if h == nil {
			return nil
		}
		return h.(Event)
	}
	if h == nil || k.staged.Time() <= h.Time() {
		return k.staged
	}
	return h.(Event)
}

// popAny removes the earliest event across the staged slot and the queue.
func (k *Kernel) popAny() Event {
	if k.staged != nil {
		if h := k.q.Peek(); h == nil || k.staged.Time() <= h.Time() {
			ev := k.staged
			k.staged = nil
			return ev
		}
		return k.q.Pop().(Event)
	}
	ev := k.q.Pop()
	if ev == nil {
		return nil
	}
	return ev.(Event)
}

// Pool recycles event envelopes so steady-state simulation allocates no
// event memory: Get returns a recycled (or new) zero-value-at-rest *T, Put
// returns one after the owner has cleared payload references. Pool is not
// goroutine-safe; each engine owns one.
type Pool[T any] struct {
	free []*T
}

// Get returns an envelope from the pool, allocating if empty.
func (p *Pool[T]) Get() *T {
	if n := len(p.free) - 1; n >= 0 {
		x := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		return x
	}
	return new(T)
}

// Put recycles an envelope. The caller must have dropped every reference
// and cleared the envelope's payload fields.
func (p *Pool[T]) Put(x *T) { p.free = append(p.free, x) }
