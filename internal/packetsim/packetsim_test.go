package packetsim

import (
	"math"
	"testing"

	"horse/internal/addr"
	"horse/internal/dataplane"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
	"horse/internal/traffic"
)

// installMACRoutes pre-installs shortest-path MAC forwarding for every host
// on every switch (the identical-state methodology of E3).
func installMACRoutes(net *dataplane.Network) {
	topo := net.Topo
	for _, host := range topo.Hosts() {
		next := topo.ECMPNextHops(host, netgraph.HopCost)
		for _, sw := range topo.Switches() {
			if len(next[sw]) == 0 {
				continue
			}
			out := topo.PortToward(sw, next[sw][0])
			if out == netgraph.NoPort {
				continue
			}
			net.Switches[sw].Apply(&openflow.FlowMod{
				Op: openflow.FlowAdd, Priority: 10,
				Match: header.Match{}.WithEthDst(addr.HostMAC(host)),
				Instr: openflow.Apply(openflow.Output(out)),
			}, 0)
		}
	}
}

func cbr(src, dst netgraph.NodeID, start simtime.Time, sizeBits, rateBps float64) traffic.Demand {
	return traffic.Demand{
		Key: addr.FlowKeyBetween(src, dst, header.ProtoUDP, 40000, 80),
		Src: src, Dst: dst, Start: start,
		SizeBits: sizeBits, RateBps: rateBps,
	}
}

func tcp(src, dst netgraph.NodeID, start simtime.Time, sizeBits float64) traffic.Demand {
	d := cbr(src, dst, start, sizeBits, math.Inf(1))
	d.Key.Proto = header.ProtoTCP
	d.TCP = true
	return d
}

func dumbbell(bottleneck float64) *netgraph.Topology {
	return netgraph.Dumbbell(2, 2, netgraph.Gig,
		netgraph.LinkSpec{BandwidthBps: bottleneck, Delay: simtime.Millisecond})
}

func TestCBRPacketFlowCompletes(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	// 1e7 bits at 1e8 bps ≈ 0.1s + per-packet delays.
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e7, 1e8)})
	col := sim.Run(simtime.Never)
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	fct := f.FCT().Seconds()
	if fct < 0.095 || fct > 0.13 {
		t.Errorf("FCT = %g, want ~0.1s", fct)
	}
	if sim.PacketsForwarded() == 0 {
		t.Error("no packets forwarded")
	}
}

func TestTCPPacketFlowCompletes(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{tcp(h0, r0, 0, 1e7)})
	col := sim.Run(simtime.Time(simtime.Minute))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	// Slow start from IW10 with ~2.1ms RTT needs a few RTTs for ~834
	// packets; it cannot beat the line-rate bound either.
	if f.FCT() < 10*simtime.Millisecond {
		t.Errorf("FCT = %v implausibly fast", f.FCT())
	}
	if f.FCT() > simtime.Time(5*simtime.Second).Sub(0) {
		t.Errorf("FCT = %v implausibly slow", f.FCT())
	}
}

func TestTCPRecoversFromCongestionLoss(t *testing.T) {
	// Two TCP flows into a 10 Mbps bottleneck with a tiny queue: drops
	// guaranteed; both must still complete via retransmission.
	topo := dumbbell(1e7)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop, QueuePackets: 10})
	installMACRoutes(sim.Network())
	h0, h1 := topo.MustLookup("h0"), topo.MustLookup("h1")
	r0, r1 := topo.MustLookup("r0"), topo.MustLookup("r1")
	d1, d2 := tcp(h0, r0, 0, 2e6), tcp(h1, r1, 0, 2e6)
	d2.Key.SrcPort = 41000
	sim.Load(traffic.Trace{d1, d2})
	col := sim.Run(simtime.Time(5 * simtime.Minute))
	drops := uint64(0)
	for _, op := range sim.ports {
		drops += op.dropped
	}
	for _, f := range col.Flows() {
		if !f.Completed {
			t.Errorf("flow %d: %s (drops seen: %d)", f.ID, f.Outcome, drops)
		}
	}
	if drops == 0 {
		t.Error("expected queue drops at the constricted bottleneck")
	}
	// Fair sharing: both flows finish within ~2.5x of each other.
	fa, fb := col.Flows()[0].FCT().Seconds(), col.Flows()[1].FCT().Seconds()
	if fa/fb > 2.5 || fb/fa > 2.5 {
		t.Errorf("unfair FCTs: %g vs %g", fa, fb)
	}
}

func TestUDPLossAtBottleneck(t *testing.T) {
	// A 100 Mbps CBR into a 10 Mbps bottleneck: ~90% of packets drop, the
	// flow still terminates (UDP does not retransmit).
	topo := dumbbell(1e7)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop, QueuePackets: 20})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e7, 1e8)})
	col := sim.Run(simtime.Time(simtime.Minute))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	var drops uint64
	for _, op := range sim.ports {
		drops += op.dropped
	}
	if drops == 0 {
		t.Error("overdriven bottleneck produced no drops")
	}
}

func TestMissDropBlackholes(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	// No routes installed: every packet dies at the first switch.
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e6, 1e8)})
	col := sim.Run(simtime.Time(simtime.Second))
	f := col.Flows()[0]
	if f.Completed && f.SizeBits > f.SentBits {
		t.Error("flow completed through a blackhole")
	}
}

func TestDeadlineCBR(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	d := cbr(h0, r0, 0, math.Inf(1), 1e7)
	d.Duration = simtime.Second
	sim.Load(traffic.Trace{d})
	col := sim.Run(simtime.Time(10 * simtime.Second))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	// Sent ~1e7 bits over the 1s lifetime.
	if f.SentBits < 0.9e7 || f.SentBits > 1.1e7 {
		t.Errorf("sent = %g, want ~1e7", f.SentBits)
	}
}

func TestPacketVsFlowLevelAgreement(t *testing.T) {
	// The E3 accuracy claim in miniature: a CBR flow's FCT at packet
	// granularity is within a few percent of the fluid calculation.
	topo := dumbbell(1e8)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	size, rate := 1e7, 5e7
	sim.Load(traffic.Trace{cbr(h0, r0, 0, size, rate)})
	col := sim.Run(simtime.Never)
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	fluid := size / rate
	got := f.FCT().Seconds()
	if relErr := math.Abs(got-fluid) / fluid; relErr > 0.05 {
		t.Errorf("packet FCT %g vs fluid %g: rel err %g", got, fluid, relErr)
	}
}

func TestStatsSampling(t *testing.T) {
	topo := dumbbell(1e8)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop, StatsEvery: 50 * simtime.Millisecond})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 5e7, 1e8)})
	col := sim.Run(simtime.Time(2 * simtime.Second))
	series := col.LinkSeries()
	if len(series) == 0 {
		t.Fatal("no samples")
	}
	sawBusy := false
	for _, smp := range series {
		if smp.UsedFrac > 0.5 {
			sawBusy = true
		}
		if smp.UsedFrac > 1.01 {
			t.Fatalf("utilization %g > 1", smp.UsedFrac)
		}
	}
	if !sawBusy {
		t.Error("busy bottleneck never observed")
	}
}
