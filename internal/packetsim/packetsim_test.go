package packetsim

import (
	"math"
	"testing"

	"horse/internal/addr"
	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simcore"
	"horse/internal/simtime"
	"horse/internal/traffic"
)

// installMACRoutes pre-installs shortest-path MAC forwarding for every host
// on every switch (the identical-state methodology of E3).
func installMACRoutes(net *dataplane.Network) {
	topo := net.Topo
	for _, host := range topo.Hosts() {
		next := topo.ECMPNextHops(host, netgraph.HopCost)
		for _, sw := range topo.Switches() {
			if len(next[sw]) == 0 {
				continue
			}
			out := topo.PortToward(sw, next[sw][0])
			if out == netgraph.NoPort {
				continue
			}
			net.Switches[sw].Apply(&openflow.FlowMod{
				Op: openflow.FlowAdd, Priority: 10,
				Match: header.Match{}.WithEthDst(addr.HostMAC(host)),
				Instr: openflow.Apply(openflow.Output(out)),
			}, 0)
		}
	}
}

func cbr(src, dst netgraph.NodeID, start simtime.Time, sizeBits, rateBps float64) traffic.Demand {
	return traffic.Demand{
		Key: addr.FlowKeyBetween(src, dst, header.ProtoUDP, 40000, 80),
		Src: src, Dst: dst, Start: start,
		SizeBits: sizeBits, RateBps: rateBps,
	}
}

func tcp(src, dst netgraph.NodeID, start simtime.Time, sizeBits float64) traffic.Demand {
	d := cbr(src, dst, start, sizeBits, math.Inf(1))
	d.Key.Proto = header.ProtoTCP
	d.TCP = true
	return d
}

func dumbbell(bottleneck float64) *netgraph.Topology {
	return netgraph.Dumbbell(2, 2, netgraph.Gig,
		netgraph.LinkSpec{BandwidthBps: bottleneck, Delay: simtime.Millisecond})
}

func TestCBRPacketFlowCompletes(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	// 1e7 bits at 1e8 bps ≈ 0.1s + per-packet delays.
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e7, 1e8)})
	col := mustRun(sim, simtime.Never)
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	fct := f.FCT().Seconds()
	if fct < 0.095 || fct > 0.13 {
		t.Errorf("FCT = %g, want ~0.1s", fct)
	}
	if sim.PacketsForwarded() == 0 {
		t.Error("no packets forwarded")
	}
}

func TestTCPPacketFlowCompletes(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{tcp(h0, r0, 0, 1e7)})
	col := mustRun(sim, simtime.Time(simtime.Minute))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	// Slow start from IW10 with ~2.1ms RTT needs a few RTTs for ~834
	// packets; it cannot beat the line-rate bound either.
	if f.FCT() < 10*simtime.Millisecond {
		t.Errorf("FCT = %v implausibly fast", f.FCT())
	}
	if f.FCT() > simtime.Time(5*simtime.Second).Sub(0) {
		t.Errorf("FCT = %v implausibly slow", f.FCT())
	}
}

func TestTCPRecoversFromCongestionLoss(t *testing.T) {
	// Two TCP flows into a 10 Mbps bottleneck with a tiny queue: drops
	// guaranteed; both must still complete via retransmission.
	topo := dumbbell(1e7)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop, QueuePackets: 10})
	installMACRoutes(sim.Network())
	h0, h1 := topo.MustLookup("h0"), topo.MustLookup("h1")
	r0, r1 := topo.MustLookup("r0"), topo.MustLookup("r1")
	d1, d2 := tcp(h0, r0, 0, 2e6), tcp(h1, r1, 0, 2e6)
	d2.Key.SrcPort = 41000
	sim.Load(traffic.Trace{d1, d2})
	col := mustRun(sim, simtime.Time(5*simtime.Minute))
	drops := uint64(0)
	for _, op := range sim.ports {
		if op != nil {
			drops += op.dropped
		}
	}
	for _, f := range col.Flows() {
		if !f.Completed {
			t.Errorf("flow %d: %s (drops seen: %d)", f.ID, f.Outcome, drops)
		}
	}
	if drops == 0 {
		t.Error("expected queue drops at the constricted bottleneck")
	}
	// Fair sharing: both flows finish within ~2.5x of each other.
	fa, fb := col.Flows()[0].FCT().Seconds(), col.Flows()[1].FCT().Seconds()
	if fa/fb > 2.5 || fb/fa > 2.5 {
		t.Errorf("unfair FCTs: %g vs %g", fa, fb)
	}
}

func TestUDPLossAtBottleneck(t *testing.T) {
	// A 100 Mbps CBR into a 10 Mbps bottleneck: ~90% of packets drop, the
	// flow still terminates (UDP does not retransmit).
	topo := dumbbell(1e7)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop, QueuePackets: 20})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e7, 1e8)})
	col := mustRun(sim, simtime.Time(simtime.Minute))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	var drops uint64
	for _, op := range sim.ports {
		if op != nil {
			drops += op.dropped
		}
	}
	if drops == 0 {
		t.Error("overdriven bottleneck produced no drops")
	}
}

func TestMissDropBlackholes(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	// No routes installed: every packet dies at the first switch.
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e6, 1e8)})
	col := mustRun(sim, simtime.Time(simtime.Second))
	f := col.Flows()[0]
	if f.Completed && f.SizeBits > f.SentBits {
		t.Error("flow completed through a blackhole")
	}
}

func TestDeadlineCBR(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	d := cbr(h0, r0, 0, math.Inf(1), 1e7)
	d.Duration = simtime.Second
	sim.Load(traffic.Trace{d})
	col := mustRun(sim, simtime.Time(10*simtime.Second))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	// Sent ~1e7 bits over the 1s lifetime.
	if f.SentBits < 0.9e7 || f.SentBits > 1.1e7 {
		t.Errorf("sent = %g, want ~1e7", f.SentBits)
	}
}

func TestPacketVsFlowLevelAgreement(t *testing.T) {
	// The E3 accuracy claim in miniature: a CBR flow's FCT at packet
	// granularity is within a few percent of the fluid calculation.
	topo := dumbbell(1e8)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	size, rate := 1e7, 5e7
	sim.Load(traffic.Trace{cbr(h0, r0, 0, size, rate)})
	col := mustRun(sim, simtime.Never)
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	fluid := size / rate
	got := f.FCT().Seconds()
	if relErr := math.Abs(got-fluid) / fluid; relErr > 0.05 {
		t.Errorf("packet FCT %g vs fluid %g: rel err %g", got, fluid, relErr)
	}
}

// TestRTOGenerationCancelsStaleTimer is the regression test for RTO
// cancellation: the final cumulative ACK zeroes the in-flight count and
// re-arms the timer, which removes the queued RTO event outright (true
// cancellation — before the Canceler rework the corpse stayed queued and
// fired as a gen-stamped no-op). The queue must therefore be empty at
// completion, and draining anything left must not retransmit or mutate
// sender state. Completion is purely message-driven (the sender learns it
// from the ACK stream, never from receiver state), which is what keeps
// the sender and receiver shards independent in sharded runs.
func TestRTOGenerationCancelsStaleTimer(t *testing.T) {
	topo := dumbbell(1e9)
	k := simcore.New(simcore.Config{})
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop, Kernel: k})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{tcp(h0, r0, 0, 1e6)})
	f := sim.flows[0]
	sim.Begin()
	// Step virtual time until the receiver completes and the final ACK
	// drains the sender, leaving later events (any stale RTO) queued.
	var bound simtime.Time
	for (f.recvDoneAt == simtime.Never || f.inFlight > 0) && bound < simtime.Time(simtime.Minute) {
		bound = bound.Add(simtime.Millisecond)
		k.Run(bound)
	}
	if f.recvDoneAt == simtime.Never || f.inFlight > 0 {
		t.Fatalf("flow did not complete while stepping (recvDoneAt=%v inFlight=%d)", f.recvDoneAt, f.inFlight)
	}
	if f.rto != (simcore.Timer{}) {
		t.Error("rto timer handle not cleared by the final ACK's re-arm")
	}
	if n := k.Len(); n != 0 {
		t.Errorf("%d events still queued at completion; cancellation left a corpse", n)
	}
	sent, nextSeq, gen := f.sentBits, f.nextSeq, f.rtoGen
	k.Run(simtime.Never) // fire everything that was still queued
	if f.sentBits != sent {
		t.Errorf("stale RTO retransmitted after completion: sentBits %g -> %g", sent, f.sentBits)
	}
	if f.nextSeq != nextSeq || f.rtoGen != gen {
		t.Errorf("stale timer mutated sender state: nextSeq %d->%d rtoGen %d->%d",
			nextSeq, f.nextSeq, gen, f.rtoGen)
	}
	sim.Finish()
}

// TestReactiveControllerCompletesFlow: the controller-attached packet
// engine end to end — a table miss punts (PacketIn + buffered packet),
// ReactiveMAC installs rules after the control latency, the buffered
// packet retries, and the transfer completes.
func TestReactiveControllerCompletesFlow(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissController,
		Controller:     controller.NewChain(&controller.ReactiveMAC{}),
		ControlLatency: simtime.Millisecond,
	})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{tcp(h0, r0, 0, 1e6)})
	col := mustRun(sim, simtime.Time(simtime.Minute))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("reactive flow outcome = %s (punts=%d)", f.Outcome, f.Punts)
	}
	if f.Punts == 0 {
		t.Error("no punts: rules were not installed reactively")
	}
	if col.PacketIns == 0 || col.FlowMods == 0 {
		t.Errorf("control plane idle: packetins=%d flowmods=%d", col.PacketIns, col.FlowMods)
	}
	// The punt + install round trip must cost at least the control
	// latency before the first byte moves.
	if f.FCT() < 2*simtime.Millisecond {
		t.Errorf("FCT %v too fast for a reactive start", f.FCT())
	}
}

// TestIdleTimeoutExpiresAndReinstalls: reactive rules with a short idle
// timeout expire (FlowRemoved), and a later flow punts anew.
func TestIdleTimeoutExpiresAndReinstalls(t *testing.T) {
	topo := dumbbell(1e9)
	removed := 0
	ctrl := &recordingController{
		inner: controller.NewChain(&controller.ReactiveMAC{IdleTimeout: 50 * simtime.Millisecond}),
		onMsg: func(msg openflow.Message) {
			if _, ok := msg.(*openflow.FlowRemoved); ok {
				removed++
			}
		},
	}
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissController,
		Controller: ctrl, ControlLatency: simtime.Millisecond,
	})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	// Two short transfers far enough apart that the idle timeout fires in
	// between.
	d1 := cbr(h0, r0, 0, 1e6, 1e8)
	d2 := cbr(h0, r0, simtime.Time(simtime.Second), 1e6, 1e8)
	d2.Key.SrcPort = 41000
	sim.Load(traffic.Trace{d1, d2})
	col := mustRun(sim, simtime.Time(10*simtime.Second))
	for _, f := range col.Flows() {
		if !f.Completed {
			t.Errorf("flow %d: %s", f.ID, f.Outcome)
		}
		if f.Punts == 0 {
			t.Errorf("flow %d rode cached rules; idle timeout never evicted", f.ID)
		}
	}
	if removed == 0 {
		t.Error("no FlowRemoved notifications reached the controller")
	}
}

// TestMeterPolicesPackets: a meter on the path drops packets beyond its
// rate (token bucket), throttling a CBR flow's delivery.
func TestMeterPolicesPackets(t *testing.T) {
	topo := dumbbell(1e9)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	// Meter at the ingress switch: 1 Mbps against a 100 Mbps CBR.
	sw, _ := topo.AttachedSwitch(h0)
	net := sim.Network()
	net.Switches[sw].Apply(&openflow.MeterMod{
		Switch: sw, Op: openflow.MeterAdd, MeterID: 1, RateBps: 1e6,
	}, 0)
	net.Switches[sw].Apply(&openflow.FlowMod{
		Op: openflow.FlowAdd, Priority: 100,
		Match: header.Match{}.WithEthDst(addr.HostMAC(r0)),
		Instr: openflow.Instructions{Meter: 1}.WithGoto(1),
	}, 0)
	// Forwarding lives in table 1 so the metered entry can goto it.
	for _, swID := range topo.Switches() {
		next := topo.ECMPNextHops(r0, netgraph.HopCost)
		if len(next[swID]) == 0 {
			continue
		}
		out := topo.PortToward(swID, next[swID][0])
		net.Switches[swID].Apply(&openflow.FlowMod{
			Op: openflow.FlowAdd, Table: 1, Priority: 10,
			Match: header.Match{}.WithEthDst(addr.HostMAC(r0)),
			Instr: openflow.Apply(openflow.Output(out)),
		}, 0)
	}
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e6, 1e8)})
	col := mustRun(sim, simtime.Time(10*simtime.Second))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	// 1e6 bits offered at 100 Mbps through a 1 Mbps meter: the token
	// bucket admits the initial burst, then the tail drops, so the
	// second switch sees only a fraction of the packets.
	if sim.PacketsForwarded() == 0 {
		t.Fatal("nothing forwarded")
	}
	admitted := float64(sim.counter) // switch hops ≈ admitted packets × hops
	if admitted >= f.SentBits/DataPacketBits*2 {
		t.Errorf("meter admitted everything: %g hops for %g packets",
			admitted, f.SentBits/DataPacketBits)
	}
}

// recordingController wraps a controller and observes every message.
type recordingController struct {
	inner flowsim.Controller
	onMsg func(openflow.Message)
}

func (r *recordingController) Start(ctx *flowsim.Context) { r.inner.Start(ctx) }
func (r *recordingController) Handle(ctx *flowsim.Context, msg openflow.Message) {
	if r.onMsg != nil {
		r.onMsg(msg)
	}
	r.inner.Handle(ctx, msg)
}

func TestStatsSampling(t *testing.T) {
	topo := dumbbell(1e8)
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop, StatsEvery: 50 * simtime.Millisecond})
	installMACRoutes(sim.Network())
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 5e7, 1e8)})
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	series := col.LinkSeries()
	if len(series) == 0 {
		t.Fatal("no samples")
	}
	sawBusy := false
	for _, smp := range series {
		if smp.UsedFrac > 0.5 {
			sawBusy = true
		}
		if smp.UsedFrac > 1.01 {
			t.Fatalf("utilization %g > 1", smp.UsedFrac)
		}
	}
	if !sawBusy {
		t.Error("busy bottleneck never observed")
	}
}
