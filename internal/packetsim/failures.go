// Failure semantics of the packet engine: link failures drop queued and
// in-flight packets and idle the transmitters, switch crashes wipe
// OpenFlow state and lose parked punts, and controller detach severs the
// control channel — the packet-granular half of the scenario engine's
// dynamic-network contract. The Notify* entry points carry only the
// data-plane consequences, so the hybrid coupler can propagate a change
// the flow engine already applied (topology flip, table wipe, PortStatus)
// without doubling it.
//
// In sharded runs every handler here executes on the coordinator between
// windows (scripted changes mutate ports, punt buffers, and epochs owned
// by many shards); the barrier publishes the writes before any shard
// resumes. ClassTopoChange makes the serial engine fire these first at an
// instant too, so both execution modes order failure against traffic
// identically.
package packetsim

import (
	"sort"

	"horse/internal/linkmodel"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simevent"
)

// handleLinkChange applies a scheduled link state change: topology flip,
// data-plane flush, and PortStatus punts from both endpoint switches. The
// scripted link state composes with switch liveness through linkDesired,
// so a link "recovering" under a crashed endpoint stays down until the
// switch restarts.
func (s *Simulator) handleLinkChange(id netgraph.LinkID, up bool) {
	s.fstate.SetLink(id, up)
	s.applyLinkState(id, s.fstate.LinkDesired(id), -1)
}

// handleLinkDegrade applies a scheduled link-model change: m installs a
// degradation model on both directions of the link (nil restores it).
// It is orthogonal to the operational state — FailureState still decides
// up/down, and the model only shapes traffic while the link is up — so
// no queue flush or PortStatus is involved. In sharded runs the handler
// executes on the coordinator between windows, like every scripted
// topology change.
func (s *Simulator) handleLinkDegrade(id netgraph.LinkID, m linkmodel.Model) {
	s.links.SetLink(id, m)
	s.observers.Notify(simevent.Observation{
		At: s.k.Now(), Kind: simevent.LinkDegrade, Link: id, Up: m == nil,
	})
}

// applyLinkState moves a link to the given operational state (no-op when
// already there): topology flip, data-plane flush, PortStatus.
func (s *Simulator) applyLinkState(id netgraph.LinkID, up bool, silent netgraph.NodeID) {
	l := s.topo.Link(id)
	if l.Up == up {
		return
	}
	s.topo.SetLinkUp(id, up)
	s.NotifyLinkChange(id, up)
	s.portStatus(l, up, silent)
	s.observers.Notify(simevent.Observation{
		At: s.k.Now(), Kind: simevent.LinkChange, Link: id, Up: up,
	})
}

// NotifyLinkChange applies the data-plane consequences of a link state
// change without touching the topology or the control plane — the entry
// point the hybrid coupler drives after the flow engine flipped the shared
// state. On failure, every packet queued on either direction is lost, the
// pending serialization is cancelled, and packets mid-propagation are
// invalidated via the link epoch. Recovery needs no action: the queues
// drained at failure time and transmitters restart with the next packet.
func (s *Simulator) NotifyLinkChange(id netgraph.LinkID, up bool) {
	if up {
		return
	}
	for _, dir := range []int32{int32(id) << 1, int32(id)<<1 | 1} {
		s.linkEpoch[dir]++
		if op := s.ports[dir]; op != nil {
			op.txGen++ // cancel the in-flight evTxDone
			for i, p := range op.queue {
				s.losePacket(p)
				op.queue[i] = nil
			}
			op.queue = op.queue[:0]
			op.busy = false
		}
	}
}

// handleSwitchChange applies a scheduled switch crash or restart.
func (s *Simulator) handleSwitchChange(sw netgraph.NodeID, up bool) {
	swState := s.net.Switches[sw]
	if swState == nil || !s.fstate.SetSwitch(sw, up) {
		return
	}
	silent := netgraph.NodeID(-1)
	if !up {
		swState.Reset()
		s.NotifySwitchChange(sw, false)
		silent = sw
	}
	for _, p := range s.topo.Node(sw).Ports() {
		l := s.topo.LinkAt(sw, p)
		if l == nil {
			continue
		}
		// LinkDesired keeps a restart from reviving a link still inside
		// its own scripted outage (and a crash from "double-failing" one).
		s.applyLinkState(l.ID, s.fstate.LinkDesired(l.ID), silent)
	}
	s.observers.Notify(simevent.Observation{
		At: s.k.Now(), Kind: simevent.SwitchChange, Switch: sw, Up: up,
	})
}

// NotifySwitchChange applies the packet-engine-local consequences of a
// switch crash the flow engine already executed against the shared state:
// parked punts are lost and the switch's meter buckets reset. Link-level
// flushes arrive separately through NotifyLinkChange.
func (s *Simulator) NotifySwitchChange(sw netgraph.NodeID, up bool) {
	if up {
		return
	}
	for _, bp := range s.punted[sw] {
		s.losePacket(bp.pkt)
	}
	s.punted[sw] = nil
	s.meters[sw] = nil
}

// handleCtrlChange applies a controller detach or reattach. Outages nest
// by counting (FailureState.SetController; only the reattach matching the
// first detach restores the channel). On reattach, links that changed
// while detached announce their CURRENT state first (from every live
// endpoint), so PortStatus-driven controllers reconverge on the truth
// before any re-announced PacketIns arrive.
func (s *Simulator) handleCtrlChange(attached bool) {
	if !s.fstate.SetController(attached) {
		return
	}
	if attached {
		s.fstate.ResyncPortStatus(s.net, s.sendToController)
		s.NotifyControllerChange(true)
	}
	s.observers.Notify(simevent.Observation{
		At: s.k.Now(), Kind: simevent.ControllerChange, Up: attached,
	})
}

// NotifyControllerChange re-announces every parked packet with a fresh
// PacketIn once the control channel returns (their originals may have been
// lost while detached) — modeling a switch re-punting buffered packets on
// reconnect. Switches announce in ID order for determinism.
func (s *Simulator) NotifyControllerChange(attached bool) {
	if !attached {
		return
	}
	var sws []netgraph.NodeID
	for sw, buf := range s.punted {
		if len(buf) > 0 {
			sws = append(sws, netgraph.NodeID(sw))
		}
	}
	sort.Slice(sws, func(i, j int) bool { return sws[i] < sws[j] })
	for _, sw := range sws {
		for _, bp := range s.punted[sw] {
			s.col.PacketIns++
			reason := openflow.ReasonAction
			if bp.miss {
				reason = openflow.ReasonNoMatch
			}
			s.sendToController(&openflow.PacketIn{
				Switch: sw, InPort: bp.in, Key: s.keyOf(bp.pkt), Reason: reason,
			})
		}
	}
}

// portStatus punts a link state change to the controller from both
// endpoint switches, except a crashed (silent) one, which cannot speak.
// While detached, sendToController pends the link for the reattach resync
// instead.
func (s *Simulator) portStatus(l *netgraph.Link, up bool, silent netgraph.NodeID) {
	for _, end := range []netgraph.NodeID{l.A, l.B} {
		if end != silent && s.net.Switches[end] != nil {
			s.sendToController(&openflow.PortStatus{Switch: end, Port: l.PortAt(end), Up: up})
		}
	}
}
