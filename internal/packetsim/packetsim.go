// Package packetsim is the packet-granularity reference simulator Horse is
// evaluated against. It runs the *same* topology and the *same* OpenFlow
// switch state as the flow-level engine, but models every packet: store-
// and-forward switching, drop-tail output queues, link serialization and
// propagation delays, and a window-based TCP sender (slow start + AIMD with
// retransmission). It exists to quantify the central trade-off the paper
// leans on (following fs-sdn): flow-level simulation gives up per-packet
// effects in exchange for orders of magnitude less work — E3 measures both
// sides of that bargain on identical scenarios.
package packetsim

import (
	"container/heap"
	"math"

	"horse/internal/dataplane"
	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// Packet sizes in bits.
const (
	DataPacketBits = 1500 * 8
	AckPacketBits  = 40 * 8
)

// Config parameterizes a packet-level run.
type Config struct {
	// Topology is required.
	Topology *netgraph.Topology
	// QueuePackets is the per-output-port drop-tail queue capacity
	// (default 100 packets, the classic router default).
	QueuePackets int
	// Miss is the switch table-miss behavior. The packet simulator has no
	// controller; install state via Network() before Run (the E3
	// methodology: identical pre-installed state on both simulators).
	Miss dataplane.MissBehavior
	// StatsEvery samples link utilization at this period (0 disables).
	StatsEvery simtime.Duration
	// RTOMin is the minimum retransmission timeout (default 200 ms).
	RTOMin simtime.Duration
}

// Simulator is a packet-level simulation run.
type Simulator struct {
	cfg  Config
	topo *netgraph.Topology
	net  *dataplane.Network
	now  simtime.Time
	q    evq

	flows   []*pktFlow
	ports   map[portID]*outPort
	col     *stats.Collector
	counter uint64 // packets forwarded, for reporting

	txBits map[portID]float64 // per link-direction transmitted bits
	lastTx map[portID]float64 // txBits at the previous stats sample
}

type portID struct {
	node netgraph.NodeID
	port netgraph.PortNum
}

// outPort is a link-direction transmitter with a drop-tail queue.
type outPort struct {
	link    *netgraph.Link
	from    netgraph.NodeID
	queue   []*packet
	busy    bool
	dropped uint64
}

type packet struct {
	flow    *pktFlow
	seq     int  // data sequence number (packet index)
	ack     bool // true for ACKs
	ackSeq  int  // cumulative ACK (next expected seq)
	bits    float64
	retrans bool
}

type flowPhase uint8

const (
	phaseRunning flowPhase = iota
	phaseDone
	phaseDropped
)

// pktFlow is sender+receiver state of one transfer.
type pktFlow struct {
	id      int64
	demand  traffic.Demand
	packets int // total data packets to send (finite flows)

	phase   flowPhase
	arrival simtime.Time

	// Sender state (TCP).
	tcp      bool
	cwnd     float64 // in packets
	ssthresh float64
	nextSeq  int // next new sequence to send
	sendBase int // lowest unacked seq
	dupAcks  int
	inFlight int
	rtoAt    simtime.Time
	rtoGen   uint64

	// Receiver state.
	recvNext int // next expected seq
	received map[int]bool

	// CBR state.
	cbrInterval simtime.Duration

	done     simtime.Time
	sentBits float64
	punts    int
}

// event kinds
type evKind uint8

const (
	evSend evKind = iota // sender may emit (CBR tick or window opened)
	evTxDone
	evArriveNode
	evRTO
	evStats
)

type event struct {
	at   simtime.Time
	kind evKind
	flow *pktFlow
	pkt  *packet
	port portID
	node netgraph.NodeID
	gen  uint64
	seq  uint64
}

type evq []*event

func (q evq) Len() int { return len(q) }
func (q evq) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q evq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *evq) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *evq) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// New builds a packet-level simulator.
func New(cfg Config) *Simulator {
	if cfg.Topology == nil {
		panic("packetsim: Config.Topology is required")
	}
	if cfg.QueuePackets == 0 {
		cfg.QueuePackets = 100
	}
	if cfg.RTOMin == 0 {
		cfg.RTOMin = 200 * simtime.Millisecond
	}
	return &Simulator{
		cfg:    cfg,
		topo:   cfg.Topology,
		net:    dataplane.NewNetwork(cfg.Topology, cfg.Miss),
		ports:  make(map[portID]*outPort),
		col:    stats.NewCollector(cfg.StatsEvery),
		txBits: make(map[portID]float64),
		lastTx: make(map[portID]float64),
	}
}

// Network exposes the switch state for pre-installing rules.
func (s *Simulator) Network() *dataplane.Network { return s.net }

// Collector returns the statistics collector.
func (s *Simulator) Collector() *stats.Collector { return s.col }

// PacketsForwarded returns how many packet hops were simulated — the work
// metric E3 reports next to wall-clock time.
func (s *Simulator) PacketsForwarded() uint64 { return s.counter }

var evSeq uint64

func (s *Simulator) push(e *event) {
	evSeq++
	e.seq = evSeq
	heap.Push(&s.q, e)
}

// Load schedules the demands.
func (s *Simulator) Load(tr traffic.Trace) {
	for _, d := range tr {
		f := &pktFlow{
			id:       int64(len(s.flows) + 1),
			demand:   d,
			arrival:  d.Start,
			tcp:      d.TCP,
			cwnd:     10,
			ssthresh: math.Inf(1),
			received: make(map[int]bool),
			rtoAt:    simtime.Never,
		}
		if math.IsInf(d.SizeBits, 1) {
			// Open-ended CBR flows run until their deadline.
			f.packets = math.MaxInt32
		} else {
			f.packets = int(math.Ceil(d.SizeBits / DataPacketBits))
			if f.packets == 0 {
				f.packets = 1
			}
		}
		if !f.tcp && d.RateBps > 0 && !math.IsInf(d.RateBps, 1) {
			f.cbrInterval = simtime.TransferTime(DataPacketBits, d.RateBps)
		}
		s.flows = append(s.flows, f)
		s.push(&event{at: d.Start, kind: evSend, flow: f})
	}
}

// Run executes until the queue drains or virtual time passes until.
func (s *Simulator) Run(until simtime.Time) *stats.Collector {
	if s.cfg.StatsEvery > 0 {
		s.push(&event{at: simtime.Time(s.cfg.StatsEvery), kind: evStats})
	}
	for s.q.Len() > 0 {
		e := heap.Pop(&s.q).(*event)
		if e.at > until {
			s.now = until
			break
		}
		if e.at > s.now {
			s.now = e.at
		}
		s.dispatch(e)
	}
	for _, f := range s.flows {
		s.record(f)
	}
	return s.col
}

func (s *Simulator) dispatch(e *event) {
	switch e.kind {
	case evSend:
		s.trySend(e.flow)
	case evTxDone:
		s.txDone(e.port)
	case evArriveNode:
		s.arrive(e.pkt, e.node, e.port.port)
	case evRTO:
		if e.flow.rtoGen == e.gen && e.flow.phase == phaseRunning {
			s.handleRTO(e.flow)
		}
	case evStats:
		s.sampleStats()
		s.push(&event{at: s.now.Add(s.cfg.StatsEvery), kind: evStats})
	}
}
