// Package packetsim is the packet-granularity simulator Horse is evaluated
// against — and, since the simcore rebase, a first-class engine on the
// shared simulation kernel. It runs the *same* topology and the *same*
// OpenFlow switch state as the flow-level engine, but models every packet:
// store-and-forward switching, drop-tail output queues, link serialization
// and propagation delays, and a window-based TCP sender (slow start + AIMD
// with retransmission). It exists to quantify the central trade-off the
// paper leans on (following fs-sdn): flow-level simulation gives up
// per-packet effects in exchange for orders of magnitude less work — E3
// measures both sides of that bargain on identical scenarios.
//
// The engine can also attach a control plane (the same flowsim.Controller
// interface the flow-level engine uses): a table miss becomes a
// latency-modeled PacketIn with the triggering packet buffered at the
// switch, FlowMods/MeterMods install into the shared dataplane state,
// and hard/idle timeouts expire — so reactive E1/E2-style scenarios run at
// packet granularity (E7). In hybrid runs the engine shares its kernel and
// network with a flow-level simulator and punts through a PuntSink
// instead of owning the controller.
//
// # Parallel execution
//
// With Config.Shards > 1 the engine partitions the topology
// (netgraph.PartitionK), runs one kernel loop per shard on a worker pool,
// and synchronizes conservatively on the cut's minimum propagation delay
// (simcore/shard). Every mutable entity — output port, switch state, punt
// buffer, flow sender, flow receiver — has exactly one owning shard, so
// windows run lock-free; cross-cut packet and control-message events ride
// per-shard outboxes and merge at window barriers in (time, order key,
// per-source FIFO) order. Because events carry deterministic order keys
// (simcore.OrderKey) in serial runs too, a K-shard run dispatches
// interacting events in exactly the serial order: Records() is
// byte-identical for any Shards value, including the Shards <= 1 serial
// path. Scripted topology changes execute single-threaded between windows
// (they mutate many shards' state); controllers run on shard 0 and see
// that shard's collector.
package packetsim

import (
	"context"
	"fmt"
	"io"
	"math"

	"horse/internal/dataplane"
	"horse/internal/eventq"
	"horse/internal/flowsim"
	"horse/internal/linkmodel"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simcore"
	"horse/internal/simevent"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// Packet sizes in bits.
const (
	DataPacketBits = 1500 * 8
	AckPacketBits  = 40 * 8
)

// Config parameterizes a packet-level run.
type Config struct {
	// Topology is required.
	Topology *netgraph.Topology
	// QueuePackets is the per-output-port drop-tail queue capacity
	// (default 100 packets, the classic router default). It also bounds
	// the per-switch punt buffer when a controller is attached.
	QueuePackets int
	// Miss is the switch table-miss behavior. With MissController and a
	// Controller attached, misses punt (PacketIn + buffered packet);
	// without a controller, punted packets count and drop (the E3
	// pre-installed-state baseline).
	Miss dataplane.MissBehavior
	// StatsEvery samples link utilization at this period (0 disables).
	// The sampler keeps virtual time alive, so bound Run when sampling is
	// enabled (an unbounded Run would tick forever after traffic drains —
	// the E3 methodology samples the idle tail on purpose).
	StatsEvery simtime.Duration
	// RTOMin is the minimum retransmission timeout (default 200 ms).
	RTOMin simtime.Duration
	// Links is the per-link-direction degradation registry: frames are
	// corrupted at the transmitter per the direction's model (counted as
	// PacketsCorrupted, separate from outage loss) and transmit rates
	// scale by the model's RateScale. Nil means every link is pristine;
	// hybrid runs pass the same Set to both engines. Degradation
	// composes with FailureState: a dead link loses packets outright
	// whatever its model says.
	Links *linkmodel.Set

	// Controller attaches a control plane (nil means none). The same
	// implementations that drive the flow-level engine work here.
	Controller flowsim.Controller
	// ControlLatency delays every switch↔controller message (default 1ms).
	ControlLatency simtime.Duration
	// UseCalendarQueue selects the calendar event queue (shared-kernel
	// ablation switch; ignored when Kernel is supplied).
	//
	// Deprecated: set EventQueue to eventq.BackendCalendar instead. A
	// non-default EventQueue wins when both are set.
	UseCalendarQueue bool
	// EventQueue selects the event-queue backend (heap, calendar, timing
	// wheel, or auto) for the engine's kernel and, in sharded runs, every
	// per-shard kernel. Ignored when Kernel is supplied.
	EventQueue eventq.Backend

	// Shards > 1 runs the engine on the sharded multi-core executor:
	// the topology is edge-cut partitioned into up to Shards parts, each
	// with its own event loop, synchronized on the cut's minimum
	// propagation delay. Records() is byte-identical to the serial engine
	// for any value. Ignored (serial execution) for shared-kernel /
	// hybrid runs, and when the cut admits no positive lookahead.
	Shards int
	// ShardWorkers bounds the worker pool driving shard windows (0 means
	// one worker per shard).
	ShardWorkers int
	// Balance selects the shard load-balancing mode: BalanceUniform
	// edge-cut partitions by switch count (the historical default),
	// BalanceWeighted partitions by demand-derived event-rate weights at
	// Begin, and BalanceSteal additionally migrates whole-entity ownership
	// from hot shards to idle ones at window barriers. Records() stays
	// byte-identical to the serial engine under every mode.
	Balance BalanceMode

	// Kernel attaches the engine to an externally owned simulation kernel
	// (hybrid runs). Nil means the engine creates and drives its own.
	Kernel *simcore.Kernel
	// Network attaches an externally owned data plane so engines share
	// switch state (hybrid runs). Nil means a private network.
	Network *dataplane.Network
	// PuntSink, when set, receives switch-originated control messages
	// instead of a locally attached Controller — the hybrid coupler
	// routes them into the flow-level engine's control plane, which owns
	// message application and echoes installs back via NotifyApplied.
	PuntSink func(msg openflow.Message)
}

// Simulator is a packet-level simulation run. In a sharded run one
// Simulator value exists per shard: clones share the immutable topology,
// the dataplane network, and the dense per-entity state arrays (each
// entry written only by its owning shard), while the kernel, event pool,
// collector, and outbox are per-clone. The coordinator (the value New
// returns) owns the global kernel for scripted topology changes and is
// the only clone whose Run/Finish the caller drives.
type Simulator struct {
	cfg       Config
	topo      *netgraph.Topology
	net       *dataplane.Network
	k         *simcore.Kernel
	ownKernel bool
	pool      simcore.Pool[event]

	flows []*pktFlow
	col   *stats.Collector // per-clone; merged into the coordinator at Finish

	counter uint64 // packets forwarded (per-clone; merged at Finish)

	// Dense per-link-direction state, indexed by dir (link<<1 | fromB).
	// Entries are written only by the direction's owning shard, except
	// linkEpoch, which scripted link failures bump between windows.
	ports     []*outPort
	txBits    []float64 // bits serialized onto the wire per direction
	rxBits    []float64 // bits observed arriving per direction
	lastTx    []float64 // txBits at the previous stats sample
	linkEpoch []uint64

	// dirAt maps (node, port) to the transmit direction index.
	dirAt [][]int32

	// extLoad is the external (flow-level) load per transmit direction in
	// a hybrid run; the transmitter sees only the residual capacity.
	// Hybrid runs are serial, so a plain map suffices.
	extLoad map[int32]float64

	// fstate composes overlapping scripted outages (links, switches, and
	// controller detach all nest by counting; the detach count gates the
	// control channel in standalone runs — in hybrid runs the flow
	// engine's control plane owns it) and records link changes missed
	// while detached for the reattach resync. Sharded runs mutate it only
	// between windows; in-window pendings buffer per clone.
	fstate        *dataplane.FailureState
	pendingStatus []openflow.Message

	// links is the degradation registry (never nil; empty when no model
	// is installed). Clones share it: each direction's corruption state
	// is advanced only inside its transmitter's txDone, which runs on
	// the direction's owning shard, and scripted degrade events execute
	// on the coordinator between windows.
	links *linkmodel.Set

	// Control plane state. Dense per-node state is written only by the
	// node's owning shard; the controller itself runs on shard 0.
	ctrl           flowsim.Controller
	ctx            *flowsim.Context
	punted         [][]*puntedPkt
	expiryAt       []simtime.Time  // Never = no check scheduled
	expiryTimer    []simcore.Timer // outstanding check; owner-shard writes only
	meters         []map[openflow.MeterID]*meterBucket
	statsReqAt     []simtime.Time // last PortStatsRequest per tx direction
	statsReqTxBits []float64      // tx bits at that request
	statsReqRxBits []float64      // rx bits at that request

	// Per-clone, per-flow accounting merged at Finish: PacketIns
	// triggered, and (UDP) packets resolved — delivered or dropped — with
	// the last resolution instant, which is what dates a CBR completion.
	puntsBy []int32
	udpRes  []int32
	udpLast []simtime.Time

	// liveBy counts this clone's packet births minus deaths per flow; the
	// cross-clone sum is the flow's packets still in flight anywhere.
	// finHints queues flow indices whose finalize condition may have
	// flipped, drained by the coordinator after each dispatch (serial) or
	// at window barriers (sharded) — the points where cross-clone reads
	// are safe.
	liveBy   []int32
	finHints []int32

	// Incremental-finalize state (coordinator-only). A flow whose sender
	// has quiesced, whose packets have all resolved, and whose record is
	// time-invariant is recorded immediately and its state evicted;
	// finNext/finPending reorder emissions into flow-ID order so the
	// record stream stays byte-identical to the all-at-Finish path.
	// simsAll caches allSims() for the per-dispatch drain.
	simsAll    []*Simulator
	finNext    int32
	finPending map[int32]stats.FlowRecord

	// Streaming ingestion (coordinator-only): reader, when set, pulls
	// demands in one at a time through chained evIngest events on the
	// coordinator kernel — which in sharded runs also bounds every
	// window, so no shard outruns an arrival that has not loaded yet.
	reader     traffic.Reader
	readerLast simtime.Time
	readerErr  error
	nextDemand traffic.Demand

	// Sharding. nshards <= 1 means the serial path: clones == {self}.
	// observers receive applied network-dynamics events (the public
	// Observe hook); in sharded runs the handlers — and therefore the
	// notifications — execute on the coordinator between windows.
	observers simevent.Observers

	// Progress reporting (coordinator-only state): serial runs ride a
	// kernel pre-advance hook, sharded runs report at window barriers.
	progressFn    simevent.ProgressFunc
	progressEvery simtime.Duration
	progressNext  simtime.Time

	nshards       int
	shardID       int32
	isCoordinator bool
	partOf        []int32 // node → owning shard
	clones        []*Simulator
	outbox        []outMsg
	pendingProtos []event // events scheduled before Begin (sharded runs)
	lookahead     simtime.Duration
	dispatched    uint64 // total events across kernels, set after a sharded Run

	// Controller sharding (nshards > 1). compOf labels every node with its
	// switch-graph connected component, ctrlHome maps component → owning
	// shard, and ctrlBy/ctrlCtx hold each component's controller instance
	// and its (scoped) context. The backing arrays are allocated before
	// clone construction so every clone shares them; elements mutate only
	// at single-threaded points (Begin). Single-component topologies, and
	// controllers that cannot Fork, collapse to one instance — placed on
	// the shard owning the plurality of switches instead of pinned to 0.
	compOf   []int32
	ncomp    int
	ctrlHome []int32
	ctrlBy   []flowsim.Controller
	ctrlCtx  []*flowsim.Context

	// Work stealing (coordinator-only, BalanceSteal). exec exposes
	// SetLookahead for post-migration horizon updates; lastDisp holds
	// per-shard dispatch counters at the previous barrier; stealScript,
	// when set (tests), overrides the steal policy with an explicit
	// schedule — any legal schedule yields byte-identical records.
	exec        *shardExec
	lastDisp    []uint64
	stealDelta  []uint64
	stealCool   int
	stealRound  int
	stealScript func(round int) []stealChoice

	begun    bool
	finished bool
}

// outPort is a link-direction transmitter with a drop-tail queue.
type outPort struct {
	link    *netgraph.Link
	from    netgraph.NodeID
	queue   []*packet
	busy    bool
	dropped uint64
	// txGen cancels the pending serialization-done event when a link
	// failure flushes the queue: evTxDone fires only when its stamp still
	// matches, so a transmitter restarted after recovery cannot be popped
	// early by a stale completion.
	txGen uint64
}

type packet struct {
	flow    *pktFlow
	seq     int  // data sequence number (packet index)
	ack     bool // true for ACKs
	ackSeq  int  // cumulative ACK (next expected seq)
	bits    float64
	retrans bool
}

// puntedPkt is a packet parked at a switch awaiting control-plane action.
type puntedPkt struct {
	pkt  *packet
	in   netgraph.PortNum
	miss bool // table miss (vs explicit output:controller)
}

// pktFlow is the state of one transfer, split by owner so a sharded run
// never writes a field from two shards: the sender side (source host's
// shard) and the receiver side (destination host's shard) communicate
// only through packets, and completion is assembled at Finish from the
// single-writer completion candidates — exactly the first of them a
// serial run would have hit.
type pktFlow struct {
	id      int64
	idx     int32 // dense index (id - 1)
	home    int32 // owning shard of the sender side
	demand  traffic.Demand
	packets int // total data packets to send (finite flows)

	arrival simtime.Time

	// Sender-owned state.
	started       bool // first send event fired (counts FlowsStarted once)
	srcDead       bool // source host has no attached switch
	senderStopped bool // deadline reached; no further emissions
	// deadlineDoneAt is the completion candidate the deadline path sets:
	// the first send tick at or after arrival+Duration (Never otherwise).
	deadlineDoneAt simtime.Time

	// Sender TCP state.
	tcp      bool
	cwnd     float64 // in packets
	ssthresh float64
	nextSeq  int // next new sequence to send
	sendBase int // lowest unacked seq
	dupAcks  int
	inFlight int
	rtoAt    simtime.Time
	rtoGen   uint64 // backstop: invalidates stale evRTO events
	// rto is the outstanding retransmission timer: every re-arm cancels
	// the previous event outright instead of leaving a corpse to fire as
	// a gen-stamped no-op. Written only by the sender shard.
	rto simcore.Timer

	// Receiver-owned state.
	recvNext int          // next expected seq (TCP cumulative ACK edge)
	received map[int]bool // TCP out-of-order buffer
	// recvDoneAt is the completion candidate the receiver sets when every
	// data packet has arrived (Never otherwise).
	recvDoneAt simtime.Time

	// Sender CBR state.
	cbrInterval simtime.Duration
	sentBits    float64

	// done marks a flow already recorded (and evicted) by the incremental
	// finalize path. Written only by the coordinator at drain points;
	// shard clones read it no earlier than the following window.
	done bool
}

// deadline returns the flow's absolute deadline, or Never.
func (f *pktFlow) deadline() simtime.Time {
	if f.demand.Duration <= 0 {
		return simtime.Never
	}
	return f.arrival.Add(f.demand.Duration)
}

// event kinds
type evKind uint8

const (
	evSend evKind = iota // sender may emit (CBR tick or window opened)
	evTxDone
	evArriveNode
	evRTO
	evStats
	evToSwitch
	evToController
	evExpiry
	evTimer
	evLinkChange
	evSwitchChange
	evCtrlChange
	evIngest // pull the next demand from the trace reader
	evLinkDegrade
)

// event is the pooled kernel envelope of this engine.
type event struct {
	at    simtime.Time
	kind  evKind
	sim   *Simulator
	flow  *pktFlow
	pkt   *packet
	dir   int32 // link direction (evTxDone: transmitter; evArriveNode: traveled)
	node  netgraph.NodeID
	gen   uint64
	msg   openflow.Message
	fn    func()
	link  netgraph.LinkID
	up    bool
	model linkmodel.Model
}

func (e *event) Time() simtime.Time { return e.at }

// OrderKey implements eventq.Keyed: the deterministic tie-break that makes
// dispatch order — and therefore Records() — independent of the shard
// count. Keys derive from stable entities (link direction, datapath, flow
// index), never from schedule history; events of one (kind, entity) pair
// are generated by a single shard, so FIFO order within a key is
// reproducible too.
func (e *event) OrderKey() uint64 {
	switch e.kind {
	case evLinkChange, evLinkDegrade:
		return simcore.OrderKey(simcore.ClassTopoChange, uint32(e.link))
	case evSwitchChange:
		return simcore.OrderKey(simcore.ClassTopoChange, uint32(e.node))
	case evCtrlChange:
		return simcore.OrderKey(simcore.ClassTopoChange, ^uint32(0))
	case evToSwitch:
		return simcore.OrderKey(simcore.ClassToSwitch, uint32(e.node))
	case evExpiry:
		return simcore.OrderKey(simcore.ClassExpiry, uint32(e.node))
	case evToController:
		return simcore.OrderKey(simcore.ClassToController, uint32(e.node))
	case evTimer:
		return simcore.OrderKey(simcore.ClassTimer, 0)
	case evArriveNode:
		return simcore.OrderKey(simcore.ClassData+0, uint32(e.dir))
	case evTxDone:
		return simcore.OrderKey(simcore.ClassData+1, uint32(e.dir))
	case evSend:
		return simcore.OrderKey(simcore.ClassData+2, uint32(e.flow.idx))
	case evIngest:
		// e.dir carries the flow index this ingest will assign, stamped
		// at schedule time: the ingest sorts exactly where the eager-
		// loaded evSend would have, and the evSend it schedules follows
		// it FIFO under the same key — so streamed ingestion preserves
		// the eager dispatch order event for event.
		return simcore.OrderKey(simcore.ClassData+2, uint32(e.dir))
	case evRTO:
		return simcore.OrderKey(simcore.ClassData+3, uint32(e.flow.idx))
	default: // evStats
		return simcore.OrderKey(simcore.ClassData+4, uint32(e.node))
	}
}

// Fire implements simcore.Event. After the dispatch, the serial engine
// (and, for global-kernel events, the sharded coordinator — which only
// fires between windows) drains queued finalize hints: end-of-dispatch is
// the earliest point where a flow's just-flipped completion state is
// fully written.
func (e *event) Fire() {
	s := e.sim
	s.dispatch(e)
	if s.nshards <= 1 || s.isCoordinator {
		s.drainFin()
	}
}

// Release implements simcore.Event: recycle the envelope. Generation
// stamps (pktFlow.rtoGen) checked in dispatch keep recycled envelopes from
// acting for their former flows.
func (e *event) Release() {
	s := e.sim
	*e = event{}
	s.pool.Put(e)
}

// New builds a packet-level simulator.
func New(cfg Config) *Simulator {
	if cfg.Topology == nil {
		panic("packetsim: Config.Topology is required")
	}
	if cfg.QueuePackets == 0 {
		cfg.QueuePackets = 100
	}
	if cfg.RTOMin == 0 {
		cfg.RTOMin = 200 * simtime.Millisecond
	}
	if cfg.ControlLatency == 0 {
		cfg.ControlLatency = simtime.Millisecond
	}
	k := cfg.Kernel
	ownKernel := k == nil
	if ownKernel {
		k = simcore.New(simcore.Config{Backend: cfg.EventQueue, UseCalendarQueue: cfg.UseCalendarQueue})
	}
	net := cfg.Network
	if net == nil {
		net = dataplane.NewNetwork(cfg.Topology, cfg.Miss)
	}
	topo := cfg.Topology
	nDirs := 2 * topo.NumLinks()
	nNodes := topo.NumNodes()
	s := &Simulator{
		cfg:       cfg,
		topo:      topo,
		net:       net,
		k:         k,
		ownKernel: ownKernel,
		col:       stats.NewCollector(cfg.StatsEvery),

		ports:     make([]*outPort, nDirs),
		txBits:    make([]float64, nDirs),
		rxBits:    make([]float64, nDirs),
		lastTx:    make([]float64, nDirs),
		linkEpoch: make([]uint64, nDirs),
		extLoad:   make(map[int32]float64),

		fstate: dataplane.NewFailureState(topo),
		links:  cfg.Links,
		ctrl:   cfg.Controller,

		punted:         make([][]*puntedPkt, nNodes),
		expiryAt:       make([]simtime.Time, nNodes),
		expiryTimer:    make([]simcore.Timer, nNodes),
		meters:         make([]map[openflow.MeterID]*meterBucket, nNodes),
		statsReqAt:     make([]simtime.Time, nDirs),
		statsReqTxBits: make([]float64, nDirs),
		statsReqRxBits: make([]float64, nDirs),

		nshards: 1,
	}
	for i := range s.expiryAt {
		s.expiryAt[i] = simtime.Never
	}
	if s.links == nil {
		s.links = linkmodel.NewSet(1, topo.NumLinks())
	}
	// (node, port) → transmit direction index.
	s.dirAt = make([][]int32, nNodes)
	for _, l := range topo.Links() {
		s.setDir(l.A, l.APort, int32(l.ID)<<1)
		s.setDir(l.B, l.BPort, int32(l.ID)<<1|1)
	}
	s.ctx = flowsim.NewContext(s)
	s.clones = []*Simulator{s}
	s.initShards()
	return s
}

func (s *Simulator) setDir(n netgraph.NodeID, p netgraph.PortNum, dir int32) {
	row := s.dirAt[n]
	for int(p) >= len(row) {
		row = append(row, -1)
	}
	row[p] = dir
	s.dirAt[n] = row
}

// dirFrom returns the transmit direction index of (node, port), or -1.
func (s *Simulator) dirFrom(n netgraph.NodeID, p netgraph.PortNum) int32 {
	row := s.dirAt[n]
	if int(p) >= len(row) {
		return -1
	}
	return row[p]
}

// dirLink returns the link a direction index belongs to.
func (s *Simulator) dirLink(d int32) *netgraph.Link { return s.topo.Link(netgraph.LinkID(d >> 1)) }

// dirFromNode returns the transmitting endpoint of a direction.
func dirFromNode(l *netgraph.Link, d int32) netgraph.NodeID {
	if d&1 == 0 {
		return l.A
	}
	return l.B
}

// Network exposes the switch state for pre-installing rules.
func (s *Simulator) Network() *dataplane.Network { return s.net }

// Collector returns the statistics collector.
func (s *Simulator) Collector() *stats.Collector { return s.col }

// Now implements flowsim.Engine.
func (s *Simulator) Now() simtime.Time { return s.k.Now() }

// Topology implements flowsim.Engine.
func (s *Simulator) Topology() *netgraph.Topology { return s.topo }

// Kernel returns the simulation kernel driving this engine (the
// coordinator kernel of a sharded run).
func (s *Simulator) Kernel() *simcore.Kernel { return s.k }

// PacketsForwarded returns how many packet hops were simulated — the work
// metric E3 reports next to wall-clock time. Valid after Finish.
func (s *Simulator) PacketsForwarded() uint64 { return s.counter }

// EventsDispatched returns the number of kernel events fired across every
// shard — the events/sec numerator of the E9 scaling sweep. Valid after
// Run returns.
func (s *Simulator) EventsDispatched() uint64 {
	if s.dispatched > 0 {
		return s.dispatched
	}
	return s.k.Dispatched()
}

// Load schedules the demands.
func (s *Simulator) Load(tr traffic.Trace) {
	for _, d := range tr {
		s.loadOne(d)
	}
}

// loadOne admits one demand: builds its flow, grows the per-clone
// accounting arrays when the run has already begun (streamed ingestion),
// and schedules the first send. Runs on the coordinator — pre-Run, or
// between windows via evIngest.
func (s *Simulator) loadOne(d traffic.Demand) {
	f := &pktFlow{
		id:       int64(len(s.flows) + 1),
		idx:      int32(len(s.flows)),
		demand:   d,
		arrival:  d.Start,
		tcp:      d.TCP,
		cwnd:     10,
		ssthresh: math.Inf(1),
		received: make(map[int]bool),
		rtoAt:    simtime.Never,

		deadlineDoneAt: simtime.Never,
		recvDoneAt:     simtime.Never,
	}
	if math.IsInf(d.SizeBits, 1) {
		// Open-ended CBR flows run until their deadline.
		f.packets = math.MaxInt32
	} else {
		f.packets = int(math.Ceil(d.SizeBits / DataPacketBits))
		if f.packets == 0 {
			f.packets = 1
		}
	}
	if !f.tcp && d.RateBps > 0 && !math.IsInf(d.RateBps, 1) {
		f.cbrInterval = simtime.TransferTime(DataPacketBits, d.RateBps)
	}
	if s.partOf != nil {
		f.home = s.partOf[d.Src]
	}
	s.flows = append(s.flows, f)
	if s.begun {
		for _, c := range s.allSims() {
			c.puntsBy = append(c.puntsBy, 0)
			c.udpRes = append(c.udpRes, 0)
			c.udpLast = append(c.udpLast, 0)
			c.liveBy = append(c.liveBy, 0)
		}
	}
	s.sched(event{at: d.Start, kind: evSend, flow: f})
}

// SetTraceReader streams the workload in from r instead of (or after) a
// Load: exactly one demand is buffered, pulled through chained evIngest
// events on the coordinator kernel as virtual time reaches each arrival.
// Ingestion preserves the eager dispatch order exactly (see the evIngest
// order key), and in sharded runs the pending ingest bounds every window,
// so records stay byte-identical to Load of the same sequence — for
// demands that start within the run's horizon. r must yield nondecreasing
// Start times. Install before Run; a reader error stops ingestion and is
// returned by Run (or TraceErr).
func (s *Simulator) SetTraceReader(r traffic.Reader) {
	if s.begun {
		panic("packetsim: SetTraceReader after Run")
	}
	s.reader = r
}

// TraceErr reports the first trace-reader failure, if any. Shared-kernel
// drivers (hybrid) check it after the run; standalone Run returns it.
func (s *Simulator) TraceErr() error { return s.readerErr }

// pullIngest pulls the next demand and schedules its ingest event at the
// demand's start instant, stamping the flow index it will assign.
func (s *Simulator) pullIngest() {
	d, err := s.reader.Next()
	if err != nil {
		if err != io.EOF {
			s.readerErr = err
		}
		return
	}
	if d.Start < s.readerLast {
		s.readerErr = fmt.Errorf("packetsim: trace reader went backwards (%v after %v): %w",
			d.Start, s.readerLast, traffic.ErrTraceOrder)
		return
	}
	s.readerLast = d.Start
	s.nextDemand = d
	s.sched(event{at: d.Start, kind: evIngest, dir: int32(len(s.flows))})
}

// ScheduleLinkChange schedules a link failure (up=false) or recovery. On
// failure, queued and in-flight packets on both directions are lost and
// counted, the transmitters idle until recovery, and both endpoint
// switches punt PortStatus to the attached controller.
func (s *Simulator) ScheduleLinkChange(at simtime.Time, link netgraph.LinkID, up bool) {
	s.sched(event{at: at, kind: evLinkChange, link: link, up: up})
}

// ScheduleSwitchChange schedules a switch crash (up=false) or restart: a
// crash takes the attached links down, wipes the switch's OpenFlow state
// and loses its punt-parked packets; a restart brings the links back up
// with the tables still empty.
func (s *Simulator) ScheduleSwitchChange(at simtime.Time, sw netgraph.NodeID, up bool) {
	s.sched(event{at: at, kind: evSwitchChange, node: sw, up: up})
}

// ScheduleControllerChange schedules a controller detach (attached=false)
// or reattach. While detached, messages in both directions are lost; on
// reattach, parked packets re-announce themselves with fresh PacketIns.
func (s *Simulator) ScheduleControllerChange(at simtime.Time, attached bool) {
	s.sched(event{at: at, kind: evCtrlChange, up: attached})
}

// ScheduleLinkDegrade schedules a link-model change on both directions of
// a link: m non-nil installs (or replaces) the degradation model, nil
// restores the link to pristine. Degradation composes with scripted
// outages — a degraded link that fails loses packets like any dead link,
// and keeps corrupting frames once it recovers.
func (s *Simulator) ScheduleLinkDegrade(at simtime.Time, link netgraph.LinkID, m linkmodel.Model) {
	s.sched(event{at: at, kind: evLinkDegrade, link: link, model: m})
}

// Run executes until the queue drains, virtual time passes until, or ctx
// is cancelled. It returns the collector — on cancellation a partial but
// consistent one (sharded runs stop at a window barrier, so every
// delivered event's effects are published), together with ctx.Err(). Run
// may be called once, and only on a simulator that owns its kernel;
// shared-kernel engines are driven via Begin / kernel.Run / Finish.
func (s *Simulator) Run(ctx context.Context, until simtime.Time) (*stats.Collector, error) {
	if !s.ownKernel {
		panic("packetsim: Run on a shared-kernel simulator; drive the shared kernel instead")
	}
	s.Begin()
	var err error
	if s.nshards > 1 {
		err = s.runSharded(ctx, until)
	} else {
		err = s.k.RunContext(ctx, until)
	}
	col := s.Finish()
	if err == nil {
		err = s.readerErr
	}
	return col, err
}

// RunUntil is Run without a lifecycle: no cancellation, no error.
//
// Deprecated: use Run with a context.
func (s *Simulator) RunUntil(until simtime.Time) *stats.Collector {
	col, _ := s.Run(context.Background(), until)
	return col
}

// Observe registers an observer of applied network dynamics (link and
// switch state flips, controller detach/reattach). Register before Run;
// observers run on the coordinator, between windows in sharded runs.
func (s *Simulator) Observe(fn simevent.Observer) { s.observers.Add(fn) }

// SetRecordSink streams every stats.FlowRecord to sink instead of
// accumulating it in the collector. Records emit in flow-ID (load) order:
// most flows finalize — and free their state — the moment their outcome
// freezes mid-run, and Finish emits whatever remains, so the stream is
// byte-identical to what Collector().Flows() would have held, for any
// shard count. Install before Run.
func (s *Simulator) SetRecordSink(sink func(stats.FlowRecord)) {
	s.col.SetFlowSink(sink)
}

// SetProgress arms progress reporting: fn receives a simevent.Progress at
// most once per `every` of virtual time — off the kernel pre-advance path
// in serial runs, at window barriers in sharded ones. Install before Run.
func (s *Simulator) SetProgress(every simtime.Duration, fn simevent.ProgressFunc) {
	if every <= 0 || fn == nil {
		return
	}
	if s.nshards > 1 {
		// Reported by exchange() at barriers, off the fields below.
		s.progressFn = fn
		s.progressEvery = every
		s.progressNext = simtime.Time(every)
		return
	}
	simevent.ArmProgress(s.k, every, fn)
}

// Begin starts the control plane (if attached) and arms stats sampling.
func (s *Simulator) Begin() {
	if s.begun || s.finished {
		panic("packetsim: Run called twice")
	}
	s.begun = true
	s.simsAll = s.allSims()
	for _, c := range s.simsAll {
		c.puntsBy = make([]int32, len(s.flows))
		c.udpRes = make([]int32, len(s.flows))
		c.udpLast = make([]simtime.Time, len(s.flows))
		c.liveBy = make([]int32, len(s.flows))
	}
	if s.nshards > 1 {
		// Demands are loaded: replace the uniform partition with the
		// event-rate-weighted one (when configured) before any pending
		// event is routed to an owner.
		s.rebalance()
		s.routePending()
	}
	if s.ctrl != nil {
		if s.nshards > 1 {
			// The controller is homed per connected component (scoped
			// per-component instances when it can Fork, one relocated
			// instance otherwise); Start hands out each home clone's
			// context, so After-closures captured by apps schedule
			// through that shard's own clock and routing.
			s.startControllerSharded()
		} else {
			s.ctrl.Start(s.ctx)
		}
	}
	if s.cfg.StatsEvery > 0 {
		for i := 0; i < s.nshards; i++ {
			s.sched(event{at: simtime.Time(s.cfg.StatsEvery), kind: evStats, node: netgraph.NodeID(i)})
		}
	}
	if s.reader != nil {
		s.pullIngest()
	}
}

// Finish merges the shards' collectors and accounting, records every
// flow not already emitted by the incremental finalize path, and returns
// the collector; calling it again is a no-op. Emission order is flow-ID
// order throughout: the incrementally finalized prefix already streamed
// in ID order, and this loop continues from finNext.
func (s *Simulator) Finish() *stats.Collector {
	if s.finished {
		return s.col
	}
	s.drainFin()
	s.finished = true
	s.mergeShards()
	sims := s.allSims()
	for idx := int(s.finNext); idx < len(s.flows); idx++ {
		if r, ok := s.finPending[int32(idx)]; ok {
			// Finalized early but held for ID order: emit as recorded.
			delete(s.finPending, int32(idx))
			s.col.AddFlow(r)
			continue
		}
		s.record(s.flows[idx], sims)
	}
	return s.col
}

func (s *Simulator) dispatch(e *event) {
	switch e.kind {
	case evSend:
		s.trySend(e.flow)
	case evTxDone:
		s.txDone(e.dir, e.gen)
	case evArriveNode:
		if e.gen != s.linkEpoch[e.dir] {
			// The link died under the packet mid-propagation.
			s.losePacket(e.pkt)
			return
		}
		s.rxBits[e.dir] += e.pkt.bits
		l := s.dirLink(e.dir)
		peer, peerPort := l.Peer(dirFromNode(l, e.dir))
		s.arrive(e.pkt, peer, peerPort)
	case evRTO:
		// armRTO cancels before re-arming, so at most one RTO event is in
		// flight per flow and the firing one is what f.rto points at.
		e.flow.rto = simcore.Timer{}
		if e.flow.rtoGen == e.gen && !e.flow.srcDead && !e.flow.senderStopped {
			s.handleRTO(e.flow)
		}
	case evStats:
		s.sampleStats()
		s.sched(event{at: s.k.Now().Add(s.cfg.StatsEvery), kind: evStats, node: e.node})
	case evToSwitch:
		s.handleToSwitch(e.msg)
	case evToController:
		if s.fstate.ControllerDetached() {
			// The channel broke while the message was in flight: it is
			// lost at delivery. A lost PortStatus still resyncs on
			// reattach (the link change it announced goes pending).
			s.notePending(e.msg)
			return
		}
		if s.nshards > 1 && len(s.ctrlBy) > 0 {
			comp := s.compOf[e.node]
			if c := s.ctrlBy[comp]; c != nil {
				c.Handle(s.ctrlCtx[comp], e.msg)
				return
			}
		}
		s.ctrl.Handle(s.ctx, e.msg)
	case evExpiry:
		s.handleExpiry(e.node)
	case evTimer:
		e.fn()
	case evLinkChange:
		s.handleLinkChange(e.link, e.up)
	case evSwitchChange:
		s.handleSwitchChange(e.node, e.up)
	case evCtrlChange:
		s.handleCtrlChange(e.up)
	case evIngest:
		s.loadOne(s.nextDemand)
		s.pullIngest()
	case evLinkDegrade:
		s.handleLinkDegrade(e.link, e.model)
	}
}
