// Package packetsim is the packet-granularity simulator Horse is evaluated
// against — and, since the simcore rebase, a first-class engine on the
// shared simulation kernel. It runs the *same* topology and the *same*
// OpenFlow switch state as the flow-level engine, but models every packet:
// store-and-forward switching, drop-tail output queues, link serialization
// and propagation delays, and a window-based TCP sender (slow start + AIMD
// with retransmission). It exists to quantify the central trade-off the
// paper leans on (following fs-sdn): flow-level simulation gives up
// per-packet effects in exchange for orders of magnitude less work — E3
// measures both sides of that bargain on identical scenarios.
//
// The engine can also attach a control plane (the same flowsim.Controller
// interface the flow-level engine uses): a table miss becomes a
// latency-modeled PacketIn with the triggering packet buffered at the
// switch, FlowMods/MeterMods install into the shared dataplane state,
// and hard/idle timeouts expire — so reactive E1/E2-style scenarios run at
// packet granularity (E7). In hybrid runs the engine shares its kernel and
// network with a flow-level simulator and punts through a PuntSink
// instead of owning the controller.
package packetsim

import (
	"math"

	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simcore"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// Packet sizes in bits.
const (
	DataPacketBits = 1500 * 8
	AckPacketBits  = 40 * 8
)

// Config parameterizes a packet-level run.
type Config struct {
	// Topology is required.
	Topology *netgraph.Topology
	// QueuePackets is the per-output-port drop-tail queue capacity
	// (default 100 packets, the classic router default). It also bounds
	// the per-switch punt buffer when a controller is attached.
	QueuePackets int
	// Miss is the switch table-miss behavior. With MissController and a
	// Controller attached, misses punt (PacketIn + buffered packet);
	// without a controller, punted packets count and drop (the E3
	// pre-installed-state baseline).
	Miss dataplane.MissBehavior
	// StatsEvery samples link utilization at this period (0 disables).
	// The sampler keeps virtual time alive, so bound Run when sampling is
	// enabled (an unbounded Run would tick forever after traffic drains —
	// the E3 methodology samples the idle tail on purpose).
	StatsEvery simtime.Duration
	// RTOMin is the minimum retransmission timeout (default 200 ms).
	RTOMin simtime.Duration

	// Controller attaches a control plane (nil means none). The same
	// implementations that drive the flow-level engine work here.
	Controller flowsim.Controller
	// ControlLatency delays every switch↔controller message (default 1ms).
	ControlLatency simtime.Duration
	// UseCalendarQueue selects the calendar event queue (shared-kernel
	// ablation switch; ignored when Kernel is supplied).
	UseCalendarQueue bool

	// Kernel attaches the engine to an externally owned simulation kernel
	// (hybrid runs). Nil means the engine creates and drives its own.
	Kernel *simcore.Kernel
	// Network attaches an externally owned data plane so engines share
	// switch state (hybrid runs). Nil means a private network.
	Network *dataplane.Network
	// PuntSink, when set, receives switch-originated control messages
	// instead of a locally attached Controller — the hybrid coupler
	// routes them into the flow-level engine's control plane, which owns
	// message application and echoes installs back via NotifyApplied.
	PuntSink func(msg openflow.Message)
}

// Simulator is a packet-level simulation run.
type Simulator struct {
	cfg       Config
	topo      *netgraph.Topology
	net       *dataplane.Network
	k         *simcore.Kernel
	ownKernel bool
	pool      simcore.Pool[event]

	flows   []*pktFlow
	ports   map[portID]*outPort
	col     *stats.Collector
	counter uint64 // packets forwarded, for reporting

	txBits map[portID]float64 // per link-direction transmitted bits
	lastTx map[portID]float64 // txBits at the previous stats sample

	// extLoad is the external (flow-level) load per transmit port in a
	// hybrid run; the transmitter sees only the residual capacity.
	extLoad map[portID]float64

	// linkEpoch invalidates in-flight propagation when a link dies: a
	// packet's arrival event carries the receiving port's epoch at
	// transmit time, and a mismatch at dispatch means the link failed
	// under it — the packet is lost and counted.
	linkEpoch map[portID]uint64

	// fstate composes overlapping scripted outages (links, switches, and
	// controller detach all nest by counting; the detach count gates the
	// control channel in standalone runs — in hybrid runs the flow
	// engine's control plane owns it) and records link changes missed
	// while detached for the reattach resync.
	fstate *dataplane.FailureState

	// Control plane state.
	ctrl           flowsim.Controller
	ctx            *flowsim.Context
	punted         map[netgraph.NodeID][]*puntedPkt
	expiryAt       map[netgraph.NodeID]simtime.Time
	meters         map[meterKey]*meterBucket
	statsReqAt     map[portID]simtime.Time // last PortStatsRequest per tx port
	statsReqTxBits map[portID]float64      // tx bits at that request
	statsReqRxBits map[portID]float64      // rx (peer tx) bits at that request

	begun    bool
	finished bool
}

type portID struct {
	node netgraph.NodeID
	port netgraph.PortNum
}

// outPort is a link-direction transmitter with a drop-tail queue.
type outPort struct {
	link    *netgraph.Link
	from    netgraph.NodeID
	queue   []*packet
	busy    bool
	dropped uint64
	// txGen cancels the pending serialization-done event when a link
	// failure flushes the queue: evTxDone fires only when its stamp still
	// matches, so a transmitter restarted after recovery cannot be popped
	// early by a stale completion.
	txGen uint64
}

type packet struct {
	flow    *pktFlow
	seq     int  // data sequence number (packet index)
	ack     bool // true for ACKs
	ackSeq  int  // cumulative ACK (next expected seq)
	bits    float64
	retrans bool
}

// puntedPkt is a packet parked at a switch awaiting control-plane action.
type puntedPkt struct {
	pkt  *packet
	in   netgraph.PortNum
	miss bool // table miss (vs explicit output:controller)
}

type flowPhase uint8

const (
	phaseRunning flowPhase = iota
	phaseDone
	phaseDropped
)

// pktFlow is sender+receiver state of one transfer.
type pktFlow struct {
	id      int64
	demand  traffic.Demand
	packets int // total data packets to send (finite flows)

	phase   flowPhase
	arrival simtime.Time
	started bool // first send event fired (counts FlowsStarted once)

	// Sender state (TCP).
	tcp      bool
	cwnd     float64 // in packets
	ssthresh float64
	nextSeq  int // next new sequence to send
	sendBase int // lowest unacked seq
	dupAcks  int
	inFlight int
	rtoAt    simtime.Time
	rtoGen   uint64

	// Receiver state.
	recvNext int // next expected seq
	received map[int]bool

	// CBR state.
	cbrInterval simtime.Duration

	done     simtime.Time
	sentBits float64
	punts    int
}

// event kinds
type evKind uint8

const (
	evSend evKind = iota // sender may emit (CBR tick or window opened)
	evTxDone
	evArriveNode
	evRTO
	evStats
	evToSwitch
	evToController
	evExpiry
	evTimer
	evLinkChange
	evSwitchChange
	evCtrlChange
)

// event is the pooled kernel envelope of this engine.
type event struct {
	at   simtime.Time
	kind evKind
	sim  *Simulator
	flow *pktFlow
	pkt  *packet
	port portID
	node netgraph.NodeID
	gen  uint64
	msg  openflow.Message
	fn   func()
	link netgraph.LinkID
	up   bool
}

func (e *event) Time() simtime.Time { return e.at }

// Fire implements simcore.Event.
func (e *event) Fire() { e.sim.dispatch(e) }

// Release implements simcore.Event: recycle the envelope. Generation
// stamps (pktFlow.rtoGen) checked in dispatch keep recycled envelopes from
// acting for their former flows.
func (e *event) Release() {
	s := e.sim
	*e = event{}
	s.pool.Put(e)
}

// sched schedules a pooled copy of proto on the kernel.
func (s *Simulator) sched(proto event) {
	e := s.pool.Get()
	*e = proto
	e.sim = s
	s.k.Schedule(e)
}

// New builds a packet-level simulator.
func New(cfg Config) *Simulator {
	if cfg.Topology == nil {
		panic("packetsim: Config.Topology is required")
	}
	if cfg.QueuePackets == 0 {
		cfg.QueuePackets = 100
	}
	if cfg.RTOMin == 0 {
		cfg.RTOMin = 200 * simtime.Millisecond
	}
	if cfg.ControlLatency == 0 {
		cfg.ControlLatency = simtime.Millisecond
	}
	k := cfg.Kernel
	ownKernel := k == nil
	if ownKernel {
		k = simcore.New(simcore.Config{UseCalendarQueue: cfg.UseCalendarQueue})
	}
	net := cfg.Network
	if net == nil {
		net = dataplane.NewNetwork(cfg.Topology, cfg.Miss)
	}
	s := &Simulator{
		cfg:       cfg,
		topo:      cfg.Topology,
		net:       net,
		k:         k,
		ownKernel: ownKernel,
		ports:     make(map[portID]*outPort),
		col:       stats.NewCollector(cfg.StatsEvery),
		txBits:    make(map[portID]float64),
		lastTx:    make(map[portID]float64),
		extLoad:   make(map[portID]float64),
		linkEpoch: make(map[portID]uint64),
		fstate:    dataplane.NewFailureState(cfg.Topology),
		ctrl:      cfg.Controller,
		punted:    make(map[netgraph.NodeID][]*puntedPkt),
		expiryAt:  make(map[netgraph.NodeID]simtime.Time),
		meters:    make(map[meterKey]*meterBucket),
	}
	s.ctx = flowsim.NewContext(s)
	return s
}

// Network exposes the switch state for pre-installing rules.
func (s *Simulator) Network() *dataplane.Network { return s.net }

// Collector returns the statistics collector.
func (s *Simulator) Collector() *stats.Collector { return s.col }

// Now implements flowsim.Engine.
func (s *Simulator) Now() simtime.Time { return s.k.Now() }

// Topology implements flowsim.Engine.
func (s *Simulator) Topology() *netgraph.Topology { return s.topo }

// Kernel returns the simulation kernel driving this engine.
func (s *Simulator) Kernel() *simcore.Kernel { return s.k }

// PacketsForwarded returns how many packet hops were simulated — the work
// metric E3 reports next to wall-clock time.
func (s *Simulator) PacketsForwarded() uint64 { return s.counter }

// Load schedules the demands.
func (s *Simulator) Load(tr traffic.Trace) {
	for _, d := range tr {
		f := &pktFlow{
			id:       int64(len(s.flows) + 1),
			demand:   d,
			arrival:  d.Start,
			tcp:      d.TCP,
			cwnd:     10,
			ssthresh: math.Inf(1),
			received: make(map[int]bool),
			rtoAt:    simtime.Never,
		}
		if math.IsInf(d.SizeBits, 1) {
			// Open-ended CBR flows run until their deadline.
			f.packets = math.MaxInt32
		} else {
			f.packets = int(math.Ceil(d.SizeBits / DataPacketBits))
			if f.packets == 0 {
				f.packets = 1
			}
		}
		if !f.tcp && d.RateBps > 0 && !math.IsInf(d.RateBps, 1) {
			f.cbrInterval = simtime.TransferTime(DataPacketBits, d.RateBps)
		}
		s.flows = append(s.flows, f)
		s.sched(event{at: d.Start, kind: evSend, flow: f})
	}
}

// ScheduleLinkChange schedules a link failure (up=false) or recovery. On
// failure, queued and in-flight packets on both directions are lost and
// counted, the transmitters idle until recovery, and both endpoint
// switches punt PortStatus to the attached controller.
func (s *Simulator) ScheduleLinkChange(at simtime.Time, link netgraph.LinkID, up bool) {
	s.sched(event{at: at, kind: evLinkChange, link: link, up: up})
}

// ScheduleSwitchChange schedules a switch crash (up=false) or restart: a
// crash takes the attached links down, wipes the switch's OpenFlow state
// and loses its punt-parked packets; a restart brings the links back up
// with the tables still empty.
func (s *Simulator) ScheduleSwitchChange(at simtime.Time, sw netgraph.NodeID, up bool) {
	s.sched(event{at: at, kind: evSwitchChange, node: sw, up: up})
}

// ScheduleControllerChange schedules a controller detach (attached=false)
// or reattach. While detached, messages in both directions are lost; on
// reattach, parked packets re-announce themselves with fresh PacketIns.
func (s *Simulator) ScheduleControllerChange(at simtime.Time, attached bool) {
	s.sched(event{at: at, kind: evCtrlChange, up: attached})
}

// Run executes until the queue drains or virtual time passes until. It may
// be called once, and only on a simulator that owns its kernel;
// shared-kernel engines are driven via Begin / kernel.Run / Finish.
func (s *Simulator) Run(until simtime.Time) *stats.Collector {
	if !s.ownKernel {
		panic("packetsim: Run on a shared-kernel simulator; drive the shared kernel instead")
	}
	s.Begin()
	s.k.Run(until)
	return s.Finish()
}

// Begin starts the control plane (if attached) and arms stats sampling.
func (s *Simulator) Begin() {
	if s.begun || s.finished {
		panic("packetsim: Run called twice")
	}
	s.begun = true
	if s.ctrl != nil {
		s.ctrl.Start(s.ctx)
	}
	if s.cfg.StatsEvery > 0 {
		s.sched(event{at: simtime.Time(s.cfg.StatsEvery), kind: evStats})
	}
}

// Finish records every flow and returns the collector; calling it again is
// a no-op.
func (s *Simulator) Finish() *stats.Collector {
	if s.finished {
		return s.col
	}
	s.finished = true
	for _, f := range s.flows {
		s.record(f)
	}
	return s.col
}

func (s *Simulator) dispatch(e *event) {
	switch e.kind {
	case evSend:
		s.trySend(e.flow)
	case evTxDone:
		s.txDone(e.port, e.gen)
	case evArriveNode:
		if e.gen != s.linkEpoch[e.port] {
			// The link died under the packet mid-propagation.
			s.losePacket(e.pkt)
			return
		}
		s.arrive(e.pkt, e.node, e.port.port)
	case evRTO:
		if e.flow.rtoGen == e.gen && e.flow.phase == phaseRunning {
			s.handleRTO(e.flow)
		}
	case evStats:
		s.sampleStats()
		s.sched(event{at: s.k.Now().Add(s.cfg.StatsEvery), kind: evStats})
	case evToSwitch:
		s.handleToSwitch(e.msg)
	case evToController:
		if s.fstate.ControllerDetached() {
			// The channel broke while the message was in flight: it is
			// lost at delivery. A lost PortStatus still resyncs on
			// reattach (the link change it announced goes pending).
			s.fstate.NotePendingStatus(e.msg)
			return
		}
		s.ctrl.Handle(s.ctx, e.msg)
	case evExpiry:
		s.handleExpiry(e.node)
	case evTimer:
		e.fn()
	case evLinkChange:
		s.handleLinkChange(e.link, e.up)
	case evSwitchChange:
		s.handleSwitchChange(e.node, e.up)
	case evCtrlChange:
		s.handleCtrlChange(e.up)
	}
}
