// Sharded execution of the packet engine: clone construction, event
// routing by owning shard, the window-barrier outbox exchange, and the
// deterministic merge at Finish. The ordering contract lives here:
//
//   - Every event kind has one owning shard derived from a stable entity
//     (flow sender → source host's shard, transmitter/arrival → the link
//     direction's endpoint shard, control plane → shard 0, scripted
//     topology changes → the coordinator kernel).
//   - A shard schedules its own events directly; events for other shards
//     append to a per-clone outbox and deliver at the next barrier,
//     merged across clones in (time, order key) order with per-source
//     FIFO preserved — which is provably the serial dispatch order,
//     because events of one (kind, entity) pair have a single source.
//   - The coordinator (between windows) pushes straight into the owning
//     clone's kernel; that is single-threaded by construction.
package packetsim

import (
	"context"
	"sort"

	"horse/internal/flowsim"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simcore"
	"horse/internal/simcore/shard"
	"horse/internal/simevent"
	"horse/internal/simtime"
	"horse/internal/stats"
)

// homeGlobal routes an event to the coordinator kernel (scripted topology
// changes, which mutate state owned by many shards).
const homeGlobal = int32(-1)

// shardExec aliases the executor type so Simulator fields declared in
// packetsim.go need no extra import.
type shardExec = shard.Executor

// outMsg is one cross-shard event awaiting barrier delivery.
type outMsg struct {
	target int32
	ev     *event
}

// initShards decides the effective shard count and builds the clones.
// Sharding needs an engine-owned kernel (hybrid runs share theirs and
// stay serial) and a positive conservative lookahead across the cut.
func (s *Simulator) initShards() {
	want := s.cfg.Shards
	if want <= 1 || !s.ownKernel || s.cfg.PuntSink != nil {
		return
	}
	parts := s.topo.PartitionK(want)
	n := 0
	for _, p := range parts {
		if int(p)+1 > n {
			n = int(p) + 1
		}
	}
	if n <= 1 {
		return
	}
	la := netgraph.CutLookahead(s.topo, parts)
	if s.ctrl != nil && s.cfg.ControlLatency < la {
		la = s.cfg.ControlLatency
	}
	if la <= 0 {
		return // a zero-delay cut admits no safe window: stay serial
	}
	s.nshards = n
	s.partOf = parts
	s.lookahead = la
	s.isCoordinator = true
	// Controller-sharding tables, allocated before clone construction so
	// every clone shares the backing arrays; Begin fills the elements in
	// place (single-threaded). Until then ctrlHome is all zeros, i.e. the
	// historical shard-0 pinning.
	s.compOf, s.ncomp = netgraph.Components(s.topo)
	s.ctrlHome = make([]int32, s.ncomp)
	s.ctrlBy = make([]flowsim.Controller, s.ncomp)
	s.ctrlCtx = make([]*flowsim.Context, s.ncomp)
	clones := make([]*Simulator, n)
	for i := range clones {
		c := new(Simulator)
		*c = *s // share topology, network, and the dense state arrays
		c.k = simcore.New(simcore.Config{Backend: s.cfg.EventQueue, UseCalendarQueue: s.cfg.UseCalendarQueue})
		c.pool = simcore.Pool[event]{}
		c.col = stats.NewCollector(s.cfg.StatsEvery)
		c.shardID = int32(i)
		c.isCoordinator = false
		c.outbox = nil
		c.pendingStatus = nil
		c.ctx = nil
		clones[i] = c
	}
	for _, c := range clones {
		c.clones = clones
		// Each clone's Context resolves Now() against its own clock; the
		// clone homing a controller instance hands its Context to it.
		c.ctx = flowsim.NewContext(c)
	}
	s.clones = clones
}

// allSims enumerates every Simulator holding per-clone accounting: the
// shard clones plus, in a sharded run, the coordinator (barrier-time
// losses and PacketIns land on its collector).
func (s *Simulator) allSims() []*Simulator {
	if !s.isCoordinator {
		return s.clones
	}
	return append([]*Simulator{s}, s.clones...)
}

// homeOf returns the owning shard of an event (homeGlobal for
// coordinator-executed topology changes).
func (s *Simulator) homeOf(proto *event) int32 {
	switch proto.kind {
	case evLinkChange, evSwitchChange, evCtrlChange, evIngest, evLinkDegrade:
		return homeGlobal
	case evToController:
		// The component's controller home (all zeros pre-Begin — the
		// historical shard-0 pinning).
		return s.ctrlHome[s.compOf[proto.node]]
	case evTimer:
		// Controller timers fire where they were armed: After stamps the
		// scheduling clone's shard, so a timer stays with its instance.
		return proto.dir
	case evSend, evRTO:
		return proto.flow.home
	case evTxDone:
		return s.partOf[dirFromNode(s.dirLink(proto.dir), proto.dir)]
	case evArriveNode:
		l := s.dirLink(proto.dir)
		peer, _ := l.Peer(dirFromNode(l, proto.dir))
		return s.partOf[peer]
	case evToSwitch, evExpiry:
		return s.partOf[proto.node]
	default: // evStats: node carries the shard index
		return int32(proto.node)
	}
}

// sched schedules a pooled copy of proto on the owning kernel: locally
// when this clone owns it, via the outbox when another shard does, and
// directly (single-threaded) when running as the coordinator between
// windows. Before Begin the coordinator parks protos in a pending list —
// clones exist but flow accounting is not sized yet, and routing them in
// Load order at Begin reproduces the serial schedule order exactly.
func (s *Simulator) sched(proto event) {
	if s.nshards <= 1 {
		e := s.pool.Get()
		*e = proto
		e.sim = s
		s.k.Schedule(e)
		return
	}
	if !s.begun && s.isCoordinator {
		s.pendingProtos = append(s.pendingProtos, proto)
		return
	}
	home := s.homeOf(&proto)
	switch {
	case home == homeGlobal && s.isCoordinator:
		e := s.pool.Get()
		*e = proto
		e.sim = s
		s.k.Schedule(e)
	case s.isCoordinator:
		c := s.clones[home]
		e := c.pool.Get()
		*e = proto
		e.sim = c
		c.k.Schedule(e)
	case home == s.shardID:
		e := s.pool.Get()
		*e = proto
		e.sim = s
		s.k.Schedule(e)
	default:
		e := s.pool.Get()
		*e = proto
		e.sim = nil // rewired to the owner at delivery
		s.outbox = append(s.outbox, outMsg{target: home, ev: e})
	}
}

// schedTimer schedules a pooled copy of proto as a cancelable timer on
// this clone's own kernel. Only valid for event kinds that are emitted on
// their owning shard (evRTO from the sender's dispatch, evExpiry from the
// switch owner's dispatch) — those never take the outbox hop, so the
// handle can be cancelled locally later.
func (s *Simulator) schedTimer(proto event) simcore.Timer {
	e := s.pool.Get()
	*e = proto
	e.sim = s
	return s.k.ScheduleCancelable(e)
}

// routePending delivers the events scheduled before Begin (Load and the
// scenario Schedule* calls) to their owning kernels, in schedule order.
func (s *Simulator) routePending() {
	pending := s.pendingProtos
	s.pendingProtos = nil
	for _, proto := range pending {
		s.sched(proto)
	}
}

// exchange is the barrier hook: it collects every clone's outbox, merges
// in (time, order key) order with per-source FIFO preserved (stable sort
// over clone-index concatenation), and delivers into the owning kernels.
// It also folds the clones' buffered pending-PortStatus notes into the
// shared failure state — a set keyed by link, so merge order is
// immaterial. Runs single-threaded between windows.
func (s *Simulator) exchange() {
	s.reportShardProgress()
	// The window just completed published every clone's flow-state writes
	// (runner barrier): safe point for the cross-clone finalize drain.
	s.drainFin()
	var msgs []outMsg
	for _, c := range s.clones {
		msgs = append(msgs, c.outbox...)
		for i := range c.outbox {
			c.outbox[i] = outMsg{}
		}
		c.outbox = c.outbox[:0]
		for _, m := range c.pendingStatus {
			s.fstate.NotePendingStatus(m)
		}
		c.pendingStatus = c.pendingStatus[:0]
	}
	if len(msgs) == 0 {
		s.stealBarrier()
		return
	}
	sort.SliceStable(msgs, func(i, j int) bool {
		a, b := msgs[i].ev, msgs[j].ev
		if a.at != b.at {
			return a.at < b.at
		}
		return a.OrderKey() < b.OrderKey()
	})
	for _, m := range msgs {
		if m.target == homeGlobal {
			m.ev.sim = s
			s.k.Schedule(m.ev)
			continue
		}
		c := s.clones[m.target]
		m.ev.sim = c
		c.k.Schedule(m.ev)
	}
	s.stealBarrier()
}

// stealBarrier runs after the outbox merge at every barrier when work
// stealing is enabled: it measures per-shard load and may migrate one
// switch group from the hottest shard to the coldest (see balance.go).
// exchange() calls it last so migrated events have already been merged
// into their (old) owner's queue and move as one ordered block.
func (s *Simulator) stealBarrier() {
	if s.cfg.Balance == BalanceSteal && s.isCoordinator && s.exec != nil {
		s.maybeSteal()
	}
}

// reportShardProgress emits a progress report at a window barrier when the
// reporting period has elapsed: virtual time is the farthest shard clock,
// the event count sums every kernel. Runs single-threaded (exchange).
func (s *Simulator) reportShardProgress() {
	if s.progressFn == nil {
		return
	}
	now := simtime.Time(0)
	events := s.k.Dispatched()
	for _, c := range s.clones {
		if t := c.k.Now(); t > now {
			now = t
		}
		events += c.k.Dispatched()
	}
	if now < s.progressNext {
		return
	}
	s.progressFn(simevent.Progress{Now: now, Events: events})
	s.progressNext = now.Add(s.progressEvery)
}

// runSharded drives the conservative window loop, stopping at the next
// barrier if ctx is cancelled (the error reports whether it was).
func (s *Simulator) runSharded(ctx context.Context, until simtime.Time) error {
	kernels := make([]*simcore.Kernel, len(s.clones))
	for i, c := range s.clones {
		kernels[i] = c.k
	}
	stopped := false
	var interrupt func() bool
	if done := ctx.Done(); done != nil {
		interrupt = func() bool {
			select {
			case <-done:
				stopped = true
				return true
			default:
				return false
			}
		}
	}
	x := shard.New(shard.Config{
		Lookahead: s.lookahead,
		Parallel:  s.cfg.ShardWorkers,
		Interrupt: interrupt,
	}, s.k, kernels, s.exchange)
	s.exec = x
	x.Run(until)
	s.dispatched = x.Dispatched()
	if stopped {
		return ctx.Err()
	}
	return nil
}

// mergeShards folds the clones' collectors, counters, and link-sample
// series into the coordinator, sorting samples by (instant, direction) —
// the order the serial sampler produces.
func (s *Simulator) mergeShards() {
	if s.nshards <= 1 {
		return
	}
	var samples []stats.LinkSample
	for _, c := range s.clones {
		s.counter += c.counter
		s.col.FlowsStarted += c.col.FlowsStarted
		s.col.PacketIns += c.col.PacketIns
		s.col.FlowMods += c.col.FlowMods
		s.col.PacketsLost += c.col.PacketsLost
		s.col.PacketsCorrupted += c.col.PacketsCorrupted
		s.col.PacketsSent += c.col.PacketsSent
		s.col.Retransmits += c.col.Retransmits
		samples = append(samples, c.col.LinkSeries()...)
		for _, m := range c.pendingStatus {
			s.fstate.NotePendingStatus(m)
		}
		c.pendingStatus = nil
	}
	samples = append(samples, s.col.LinkSeries()...)
	sort.SliceStable(samples, func(i, j int) bool {
		a, b := samples[i], samples[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Link != b.Link {
			return a.Link < b.Link
		}
		return a.Forward && !b.Forward
	})
	s.col.ReplaceLinkSeries(samples)
}

// notePending records the link behind a PortStatus a detached controller
// missed. Shard clones buffer (the shared failure state is read-only
// inside windows); the coordinator and the serial path write through.
func (s *Simulator) notePending(msg openflow.Message) {
	if s.nshards > 1 && !s.isCoordinator {
		s.pendingStatus = append(s.pendingStatus, msg)
		return
	}
	s.fstate.NotePendingStatus(msg)
}
