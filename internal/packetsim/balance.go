// Load balancing of the sharded packet engine: event-rate-weighted
// partitioning at Begin, per-component controller homing, and
// window-barrier work stealing. All three preserve the determinism
// contract — Records() is byte-identical to the serial engine — because
// ownership only ever changes at single-threaded points (Begin, window
// barriers), every event keeps its (time, order key) pair across a
// migration, and events sharing an exact (time, key) always belong to one
// entity, so a whole-entity move never splits a FIFO tie group.
package packetsim

import (
	"math"

	"horse/internal/flowsim"
	"horse/internal/netgraph"
	"horse/internal/simcore"
)

// BalanceMode selects how a sharded run places and re-places work.
type BalanceMode uint8

const (
	// BalanceUniform edge-cut partitions by switch count (the historical
	// default).
	BalanceUniform BalanceMode = iota
	// BalanceWeighted partitions by demand-derived event-rate weights at
	// Begin: each flow's estimated packet count loads its endpoint
	// switches, so parts even out expected event load, not switch count.
	BalanceWeighted
	// BalanceSteal is BalanceWeighted plus window-barrier work stealing:
	// when one shard's dispatch rate dominates, a whole switch group
	// (switch + attached hosts + their flows and timers) migrates to the
	// coldest shard between windows.
	BalanceSteal
)

// openEndedEstimate is the packet-count weight assumed for an open-ended
// flow with no duration (it runs to the horizon, which the partitioner
// does not know): large enough to dominate short transfers, finite so a
// single such flow cannot flatten every other weight.
const openEndedEstimate = 1 << 14

// flowPackets estimates how many data packets a flow will offer — the
// per-flow event-rate weight of BalanceWeighted.
func flowPackets(f *pktFlow) float64 {
	if f.packets != math.MaxInt32 { // finite transfer
		return float64(f.packets)
	}
	if f.demand.Duration > 0 && f.demand.RateBps > 0 {
		return f.demand.RateBps * f.demand.Duration.Seconds() / DataPacketBits
	}
	return openEndedEstimate
}

// demandWeights derives per-switch event-rate weights from the loaded
// demands: each flow's estimated packet count is charged to the switches
// attached to its source and destination hosts (where its send, transmit,
// arrival, and ACK events concentrate). Switches with no offered load keep
// the partitioner's implicit weight of 1.
func (s *Simulator) demandWeights() []float64 {
	w := make([]float64, s.topo.NumNodes())
	for _, f := range s.flows {
		if f == nil {
			continue
		}
		pk := flowPackets(f)
		if sw, _ := s.topo.AttachedSwitch(f.demand.Src); sw >= 0 {
			w[sw] += pk
		}
		if sw, _ := s.topo.AttachedSwitch(f.demand.Dst); sw >= 0 {
			w[sw] += pk
		}
	}
	return w
}

// rebalance replaces the uniform partition with the event-rate-weighted
// one. It runs at Begin — demands are loaded, no event has been routed —
// and mutates the shared partOf array in place so every clone sees the new
// ownership. If the weighted cut admits no positive lookahead the uniform
// partition stays (correctness over balance).
func (s *Simulator) rebalance() {
	if s.cfg.Balance == BalanceUniform {
		return
	}
	parts := s.topo.PartitionWeightedK(s.nshards, s.demandWeights())
	la := netgraph.CutLookahead(s.topo, parts)
	if s.ctrl != nil && s.cfg.ControlLatency < la {
		la = s.cfg.ControlLatency
	}
	if la <= 0 {
		return
	}
	copy(s.partOf, parts)
	s.lookahead = la
	for _, f := range s.flows {
		if f != nil {
			f.home = s.partOf[f.demand.Src]
		}
	}
}

// startControllerSharded homes the control plane on the final partition
// and starts it. Every connected component of the switch graph gets a home
// shard — the one owning the plurality of its switches (ties to the lowest
// shard) — and, when the controller can Fork, its own scoped instance
// whose out-of-component sends are dropped: the union of the instances'
// surviving messages equals the single serial instance's multiset. A
// controller that cannot Fork runs as one instance on the overall
// plurality shard — off shard 0, but shared by every component.
func (s *Simulator) startControllerSharded() {
	// Per-component plurality over the final partition.
	own := make([]int, s.ncomp*s.nshards)
	total := make([]int, s.nshards)
	for _, sw := range s.topo.Switches() {
		own[int(s.compOf[sw])*s.nshards+int(s.partOf[sw])]++
		total[s.partOf[sw]]++
	}
	plurality := func(counts []int) int32 {
		best := 0
		for i, c := range counts {
			if c > counts[best] {
				best = i
			}
		}
		return int32(best)
	}
	for c := 0; c < s.ncomp; c++ {
		s.ctrlHome[c] = plurality(own[c*s.nshards : (c+1)*s.nshards])
	}

	var insts []flowsim.Controller
	if s.ncomp > 1 {
		if f, ok := s.ctrl.(flowsim.Forker); ok {
			insts = make([]flowsim.Controller, s.ncomp)
			insts[0] = s.ctrl
			for c := 1; c < s.ncomp; c++ {
				if insts[c] = f.Fork(); insts[c] == nil {
					insts = nil
					break
				}
			}
		}
	}
	if insts == nil {
		// Single instance: one home for everything.
		h := plurality(total)
		hc := s.clones[h]
		for c := 0; c < s.ncomp; c++ {
			s.ctrlHome[c] = h
			s.ctrlBy[c] = s.ctrl
			s.ctrlCtx[c] = hc.ctx
		}
		s.ctrl.Start(hc.ctx)
		return
	}
	for c := 0; c < s.ncomp; c++ {
		comp := int32(c)
		s.ctrlBy[c] = insts[c]
		s.ctrlCtx[c] = flowsim.NewScopedContext(s.clones[s.ctrlHome[c]],
			func(dp netgraph.NodeID) bool { return s.compOf[dp] == comp })
	}
	for c := 0; c < s.ncomp; c++ {
		s.ctrlBy[c].Start(s.ctrlCtx[c])
	}
}

// Steal policy knobs. Conservative on purpose: a migration is cheap but
// not free (it drains the hot kernel once), and oscillation would churn
// partitions without moving the wall-clock needle.
const (
	// stealMinEvents is the minimum hot-shard window delta worth acting
	// on — below it the window is too small for imbalance to matter.
	stealMinEvents = 256
	// stealRatio is how many times the coldest shard's delta the hottest
	// must exceed before a steal triggers.
	stealRatio = 2
	// stealCooldown is how many barriers to wait after a migration before
	// measuring again (the moved entities need a window to show up in the
	// new owner's counters).
	stealCooldown = 8
)

// stealChoice is one scripted migration: move switch sw (and its group) to
// shard dest. Tests drive stealScript with fuzzed choices to pin down that
// ANY legal steal schedule yields byte-identical records.
type stealChoice struct {
	sw   netgraph.NodeID
	dest int32
}

// maybeSteal runs on the coordinator at a window barrier (single-threaded;
// the runner join published every clone's writes). It updates the
// per-shard load deltas and migrates at most one switch group from the
// hottest to the coldest shard when the imbalance clears the thresholds.
func (s *Simulator) maybeSteal() {
	s.stealRound++
	if s.lastDisp == nil {
		s.lastDisp = make([]uint64, s.nshards)
		s.stealDelta = make([]uint64, s.nshards)
	}
	for i, c := range s.clones {
		d := c.k.Dispatched()
		s.stealDelta[i] = d - s.lastDisp[i]
		s.lastDisp[i] = d
	}
	if s.stealScript != nil {
		for _, c := range s.stealScript(s.stealRound) {
			s.tryMigrate(c.sw, c.dest)
		}
		return
	}
	if s.stealCool > 0 {
		s.stealCool--
		return
	}
	hot, cold := 0, 0
	for i := 1; i < s.nshards; i++ {
		if s.stealDelta[i] > s.stealDelta[hot] {
			hot = i
		}
		if s.stealDelta[i] < s.stealDelta[cold] {
			cold = i
		}
	}
	if hot == cold || s.stealDelta[hot] < stealMinEvents ||
		s.stealDelta[hot] < stealRatio*s.stealDelta[cold] {
		return
	}
	sw := s.stealCandidate(int32(hot), int32(cold))
	if sw < 0 {
		return
	}
	if s.tryMigrate(sw, int32(cold)) {
		s.stealCool = stealCooldown
	}
}

// stealCandidate picks the switch to migrate from hot to cold: the
// lowest-ID hot-owned switch adjacent to a cold-owned one (keeps regions
// contiguous and the cut small), else the lowest-ID hot-owned switch. A
// hot shard down to its last switch yields nothing.
func (s *Simulator) stealCandidate(hot, cold int32) netgraph.NodeID {
	nHot := 0
	first := netgraph.NodeID(-1)
	for _, sw := range s.topo.Switches() {
		if s.partOf[sw] == hot {
			nHot++
			if first < 0 {
				first = sw
			}
		}
	}
	if nHot <= 1 {
		return -1
	}
	best := netgraph.NodeID(-1)
	for _, l := range s.topo.Links() {
		if s.topo.Node(l.A).Kind != netgraph.KindSwitch || s.topo.Node(l.B).Kind != netgraph.KindSwitch {
			continue
		}
		cand := netgraph.NodeID(-1)
		switch {
		case s.partOf[l.A] == hot && s.partOf[l.B] == cold:
			cand = l.A
		case s.partOf[l.B] == hot && s.partOf[l.A] == cold:
			cand = l.B
		}
		if cand >= 0 && (best < 0 || cand < best) {
			best = cand
		}
	}
	if best >= 0 {
		return best
	}
	return first
}

// tryMigrate moves ownership of sw — and its whole entity group: attached
// hosts, flows sourced at those hosts, and their timers — to shard dest.
// It runs only between windows and keeps the determinism contract:
//
//  1. The move is validated first: a cut that would admit no positive
//     lookahead is rejected (no safe window would exist).
//  2. Every pending cancelable timer living in the source kernel is
//     cancelled and its re-arm state collected. This must cover ALL of
//     the source shard's timers, not just the migrating group's, because
//     draining the kernel (step 4) invalidates eventq handles — a stale
//     handle would leave a corpse event that fires for its former owner.
//  3. Ownership flips in the shared partOf array and flow homes refresh.
//  4. The source kernel is drained once: events now homed elsewhere move
//     to the new owner in dequeue order — their (time, key) pairs are
//     untouched and per-entity FIFO is preserved — and the rest re-push
//     in dequeue order, preserving their relative order exactly.
//  5. Timers re-arm on their (possibly new) owner's kernel with the
//     original firing time and generation stamp.
//  6. The conservative lookahead is recomputed for the new cut and
//     installed on the executor for the next window.
//
// It reports whether the migration happened (scripted schedules probe
// illegal moves freely; they are rejected without side effects).
func (s *Simulator) tryMigrate(sw netgraph.NodeID, dest int32) bool {
	if sw < 0 || int(sw) >= len(s.partOf) || dest < 0 || int(dest) >= s.nshards {
		return false
	}
	if s.topo.Node(sw).Kind != netgraph.KindSwitch {
		return false
	}
	src := s.partOf[sw]
	if src == dest {
		return false
	}
	group := []netgraph.NodeID{sw}
	for _, n := range s.topo.Hosts() {
		if at, _ := s.topo.AttachedSwitch(n); at == sw {
			group = append(group, n)
		}
	}

	// 1. Validate the post-move cut before touching anything.
	for _, n := range group {
		s.partOf[n] = dest
	}
	la := netgraph.CutLookahead(s.topo, s.partOf)
	if s.ctrl != nil && s.cfg.ControlLatency < la {
		la = s.cfg.ControlLatency
	}
	for _, n := range group {
		s.partOf[n] = src
	}
	if la <= 0 {
		return false
	}

	// 2. Cancel every pending cancelable timer on the source kernel.
	hc := s.clones[src]
	var exps []netgraph.NodeID
	for dp := netgraph.NodeID(0); int(dp) < len(s.expiryTimer); dp++ {
		if s.partOf[dp] != src {
			continue
		}
		if hc.k.Cancel(s.expiryTimer[dp]) {
			exps = append(exps, dp)
		}
		s.expiryTimer[dp] = simcore.Timer{}
	}
	var rtos []*pktFlow
	for _, f := range s.flows {
		if f == nil || f.home != src {
			continue
		}
		if hc.k.Cancel(f.rto) {
			rtos = append(rtos, f)
		}
		f.rto = simcore.Timer{}
	}

	// 3. Flip ownership.
	for _, n := range group {
		s.partOf[n] = dest
	}
	for _, f := range s.flows {
		if f != nil {
			f.home = s.partOf[f.demand.Src]
		}
	}

	// 4. Drain the source kernel once, moving what now lives elsewhere.
	moved := hc.k.Extract(func(ev simcore.Event) bool {
		return s.homeOf(ev.(*event)) != src
	})
	for _, ev := range moved {
		e := ev.(*event)
		c := s.clones[s.homeOf(e)]
		e.sim = c
		c.k.Schedule(e)
	}

	// 5. Re-arm the timers on their owners, preserving (time, gen).
	for _, dp := range exps {
		oc := s.clones[s.partOf[dp]]
		e := oc.pool.Get()
		*e = event{at: s.expiryAt[dp], kind: evExpiry, node: dp, sim: oc}
		s.expiryTimer[dp] = oc.k.ScheduleCancelable(e)
	}
	for _, f := range rtos {
		oc := s.clones[f.home]
		e := oc.pool.Get()
		*e = event{at: f.rtoAt, kind: evRTO, flow: f, gen: f.rtoGen, sim: oc}
		f.rto = oc.k.ScheduleCancelable(e)
	}

	// 6. New cut, new horizon.
	s.lookahead = la
	s.exec.SetLookahead(la)
	return true
}

// ShardLoads returns the per-shard dispatched-event counts of a sharded
// run — the load-balance histogram the skew soak exports. Nil for serial
// runs; valid after Run.
func (s *Simulator) ShardLoads() []uint64 {
	if s.exec == nil {
		return nil
	}
	return s.exec.ShardDispatched()
}
