package packetsim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"horse/internal/addr"
	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/eventq"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// goldenFatTree is the golden E3-style scenario of the shard determinism
// contract: a k=4 fat-tree with a mixed CBR/TCP cross-pod workload.
func goldenFatTree() (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.FatTree(4, netgraph.Gig)
	hosts := topo.Hosts()
	n := len(hosts)
	var tr traffic.Trace
	for i := 0; i < 12; i++ {
		src := hosts[i%n]
		dst := hosts[(i+n/2)%n]
		d := cbr(src, dst, simtime.Time(i)*simtime.Time(7*simtime.Millisecond), 2e6, 5e7)
		d.Key.SrcPort = uint16(33000 + i)
		if i%3 == 1 {
			d.TCP = true
			d.RateBps = math.Inf(1)
			d.Key.Proto = header.ProtoTCP
		}
		tr = append(tr, d)
	}
	tr.Sort()
	return topo, tr
}

type shardRunResult struct {
	records []stats.FlowRecord
	samples []stats.LinkSample
	started uint64
	lost    uint64
	punts   uint64
	mods    uint64
	hops    uint64
}

func snapshot(s *Simulator, col *stats.Collector) shardRunResult {
	return shardRunResult{
		records: col.Flows(),
		samples: col.LinkSeries(),
		started: col.FlowsStarted,
		lost:    col.PacketsLost,
		punts:   col.PacketIns,
		mods:    col.FlowMods,
		hops:    s.PacketsForwarded(),
	}
}

// runGolden runs the golden fat-tree (pre-installed routes, no
// controller, stats sampling on) at the given shard count.
func runGolden(shards int) shardRunResult {
	return runGoldenQueue(shards, eventq.BackendHeap)
}

// runGoldenQueue is runGolden with an explicit event-queue backend.
func runGoldenQueue(shards int, q eventq.Backend) shardRunResult {
	topo, tr := goldenFatTree()
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissDrop, Shards: shards,
		StatsEvery: 20 * simtime.Millisecond,
		EventQueue: q,
	})
	installMACRoutes(sim.Network())
	sim.Load(tr)
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	return snapshot(sim, col)
}

// runFailures runs an E8-style disturbed scenario — a control plane
// plus scripted link failures and a switch crash/restart — at the given
// shard count. The E8 policies both matter here: ProactiveMAC's
// single-path forwarding loses packets and reconverges through the
// controller, while ECMPLoadBalancer's Start captures the context for
// After-timer work — in sharded runs those closures must run against
// shard 0's clock and routing, which this scenario exercises across
// every barrier.
func runFailures(shards int, mk func() controller.App) shardRunResult {
	topo, tr := goldenFatTree()
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissController, Shards: shards,
		Controller:     controller.NewChain(mk()),
		ControlLatency: simtime.Millisecond,
	})
	// Fail two core-facing links mid-run (with recovery) and crash one
	// aggregation switch across a window of the workload.
	links := topo.Links()
	var core []netgraph.LinkID
	for _, l := range links {
		if topo.Node(l.A).Kind == netgraph.KindSwitch && topo.Node(l.B).Kind == netgraph.KindSwitch {
			core = append(core, l.ID)
		}
	}
	sim.ScheduleLinkChange(simtime.Time(15*simtime.Millisecond), core[0], false)
	sim.ScheduleLinkChange(simtime.Time(60*simtime.Millisecond), core[0], true)
	sim.ScheduleLinkChange(simtime.Time(40*simtime.Millisecond), core[len(core)/2], false)
	sim.ScheduleLinkChange(simtime.Time(90*simtime.Millisecond), core[len(core)/2], true)
	agg := topo.MustLookup("agg1_0")
	sim.ScheduleSwitchChange(simtime.Time(30*simtime.Millisecond), agg, false)
	sim.ScheduleSwitchChange(simtime.Time(75*simtime.Millisecond), agg, true)
	sim.Load(tr)
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	return snapshot(sim, col)
}

func diffRuns(t *testing.T, name string, want, got shardRunResult, shards int) {
	t.Helper()
	if !reflect.DeepEqual(want.records, got.records) {
		for i := range want.records {
			if i < len(got.records) && want.records[i] != got.records[i] {
				t.Errorf("%s shards=%d: record %d differs:\n serial %+v\nsharded %+v",
					name, shards, i, want.records[i], got.records[i])
				return
			}
		}
		t.Errorf("%s shards=%d: %d records vs %d", name, shards, len(want.records), len(got.records))
		return
	}
	if !reflect.DeepEqual(want.samples, got.samples) {
		t.Errorf("%s shards=%d: link sample series diverged (%d vs %d samples)",
			name, shards, len(want.samples), len(got.samples))
	}
	if want.started != got.started || want.lost != got.lost || want.punts != got.punts ||
		want.mods != got.mods || want.hops != got.hops {
		t.Errorf("%s shards=%d: counters diverged: serial %+v sharded %+v", name, shards, want, got)
	}
}

// TestShardDeterminismGolden is the acceptance contract of the sharded
// executor: Records(), the sample series, and every counter are
// byte-identical to the serial engine for Shards ∈ {1, 2, 4, 8}, and
// repeat runs reproduce themselves.
func TestShardDeterminismGolden(t *testing.T) {
	serial := runGolden(0)
	if len(serial.records) == 0 {
		t.Fatal("golden scenario produced no records")
	}
	completed := 0
	for _, r := range serial.records {
		if r.Completed {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("golden scenario completed no flows")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		diffRuns(t, "golden", serial, runGolden(shards), shards)
	}
	// Repeatability at a fixed shard count.
	diffRuns(t, "golden-repeat", runGolden(4), runGolden(4), 4)
}

// TestShardDeterminismLateTraffic delays the golden workload so its first
// arrival coincides with ProactiveMAC's pre-installed FlowMods at
// ControlLatency: the same-instant install/data tie must resolve in the
// serial class order (ClassToSwitch before data) at every shard count.
// TestShardPreRunExchange covers the sharper pre-run-delivery hazard.
func TestShardDeterminismLateTraffic(t *testing.T) {
	run := func(shards int) shardRunResult {
		topo, tr := goldenFatTree()
		for i := range tr {
			tr[i].Start += simtime.Time(simtime.Millisecond)
		}
		sim := New(Config{
			Topology: topo, Miss: dataplane.MissController, Shards: shards,
			Controller:     controller.NewChain(&controller.ProactiveMAC{}),
			ControlLatency: simtime.Millisecond,
		})
		sim.Load(tr)
		col := mustRun(sim, simtime.Time(2*simtime.Second))
		return snapshot(sim, col)
	}
	serial := run(0)
	if serial.mods == 0 {
		t.Fatal("ProactiveMAC installed nothing")
	}
	for _, shards := range []int{2, 4, 8} {
		diffRuns(t, "late-traffic", serial, run(shards), shards)
	}
}

// remoteInstall is a minimal controller whose Start installs exactly one
// forwarding rule on one switch — none on shard 0's switches — so the
// pre-run cross-shard exchange is the only thing standing between the
// install and a table miss.
type remoteInstall struct {
	sw  netgraph.NodeID
	dst netgraph.NodeID
	out netgraph.PortNum
}

func (r *remoteInstall) Name() string { return "remote-install" }
func (r *remoteInstall) Start(ctx *flowsim.Context) {
	ctx.Send(&openflow.FlowMod{
		Switch: r.sw, Op: openflow.FlowAdd, Table: 0, Priority: 1,
		Match: header.Match{}.WithEthDst(addr.HostMAC(r.dst)),
		Instr: openflow.Apply(openflow.Output(r.out)),
	})
}
func (r *remoteInstall) Handle(*flowsim.Context, openflow.Message) {}

// TestShardPreRunExchange pins delivery of cross-shard events generated
// before the first window (controller Start hooks): the only install
// targets a remote shard's switch, clone 0's kernel holds nothing, and
// the flow's first packet reaches that switch inside the first window —
// if the parked FlowMod is delivered a barrier late, the packet misses an
// empty table and punts, which the serial engine never does.
func TestShardPreRunExchange(t *testing.T) {
	const (
		cutDelay    = 100 * simtime.Microsecond
		accessDelay = simtime.Microsecond
		ctrlLatency = 200 * simtime.Microsecond
	)
	build := func() (*netgraph.Topology, [2]netgraph.NodeID, [2][]netgraph.NodeID) {
		topo := netgraph.New()
		sw0, sw1 := topo.AddSwitch("sw0"), topo.AddSwitch("sw1")
		topo.Connect(sw0, sw1, netgraph.Gig.BandwidthBps, cutDelay)
		hosts := [2][]netgraph.NodeID{}
		for i, sw := range []netgraph.NodeID{sw0, sw1} {
			for j := 0; j < 2; j++ {
				h := topo.AddHost(fmt.Sprintf("h%d_%d", i, j))
				topo.Connect(sw, h, netgraph.Gig.BandwidthBps, accessDelay)
				hosts[i] = append(hosts[i], h)
			}
		}
		return topo, [2]netgraph.NodeID{sw0, sw1}, hosts
	}
	// Probe the deterministic partition to find a switch outside shard 0.
	topo, sws, _ := build()
	probe := New(Config{Topology: topo, Shards: 2})
	if probe.nshards != 2 {
		t.Fatalf("probe did not shard: nshards=%d", probe.nshards)
	}
	remote := 0
	if probe.partOf[sws[0]] == 0 {
		remote = 1
	}
	if probe.partOf[sws[remote]] == 0 {
		t.Fatalf("both switches landed on shard 0: partOf=%v", probe.partOf)
	}

	run := func(shards int) shardRunResult {
		topo, sws, hosts := build()
		src, dst := hosts[remote][0], hosts[remote][1]
		ctrl := &remoteInstall{
			sw: sws[remote], dst: dst,
			out: topo.PortToward(sws[remote], dst),
		}
		sim := New(Config{
			Topology: topo, Miss: dataplane.MissController, Shards: shards,
			Controller:     controller.NewChain(ctrl),
			ControlLatency: ctrlLatency,
		})
		tr := traffic.Trace{cbr(src, dst, simtime.Time(ctrlLatency+10*simtime.Microsecond), 24000, 1e8)}
		sim.Load(tr)
		col := mustRun(sim, simtime.Time(simtime.Second))
		return snapshot(sim, col)
	}
	serial := run(0)
	if len(serial.records) != 1 || !serial.records[0].Completed {
		t.Fatalf("serial run must complete the flow: %+v", serial.records)
	}
	diffRuns(t, "pre-run-exchange", serial, run(2), 2)
}

// TestShardDeterminismFailures replays the E8-style scripted-failure
// scenario (reconvergence, packet loss, switch crash) across shard
// counts, under both E8 policies.
func TestShardDeterminismFailures(t *testing.T) {
	policies := []struct {
		name string
		mk   func() controller.App
	}{
		{"forwarding", func() controller.App { return &controller.ProactiveMAC{} }},
		{"loadbalance", func() controller.App { return &controller.ECMPLoadBalancer{} }},
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			serial := runFailures(0, pol.mk)
			if pol.name == "forwarding" && serial.lost == 0 {
				t.Fatal("failure scenario lost no packets; the scripted outages missed the traffic")
			}
			if serial.mods == 0 {
				t.Fatal("control plane installed nothing")
			}
			for _, shards := range []int{1, 2, 4, 8} {
				diffRuns(t, "failures/"+pol.name, serial, runFailures(shards, pol.mk), shards)
			}
			diffRuns(t, "failures-repeat/"+pol.name, runFailures(4, pol.mk), runFailures(4, pol.mk), 4)
		})
	}
}

// TestShardDeterminismBackends crosses the executor contract with the
// event-queue backend: the golden scenario must reproduce the serial
// heap run byte-for-byte at Shards ∈ {1, 4} × backend ∈ {heap, wheel}.
// Each per-shard kernel owns a queue of the selected backend, and true
// timer cancellation (RTOs, expiry checks) must not perturb dispatch
// order at any shard count.
func TestShardDeterminismBackends(t *testing.T) {
	serial := runGolden(0)
	if len(serial.records) == 0 {
		t.Fatal("golden scenario produced no records")
	}
	for _, q := range []eventq.Backend{eventq.BackendHeap, eventq.BackendWheel} {
		for _, shards := range []int{1, 4} {
			diffRuns(t, "backend/"+q.String(), serial, runGoldenQueue(shards, q), shards)
		}
	}
}

// TestShardedActuallyShards guards against the silent-serial-fallback
// failure mode: on the fat-tree the partition must be real (multiple
// shards, a non-empty cut with positive lookahead).
func TestShardedActuallyShards(t *testing.T) {
	topo, _ := goldenFatTree()
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop, Shards: 4})
	if sim.nshards != 4 {
		t.Fatalf("effective shards = %d, want 4", sim.nshards)
	}
	if sim.lookahead <= 0 {
		t.Fatalf("lookahead = %v, want positive", sim.lookahead)
	}
	if cut := netgraph.CutSize(topo, sim.partOf); cut == 0 {
		t.Fatal("partition has an empty cut on a connected fat-tree")
	}
	counts := make(map[int32]int)
	for _, sw := range topo.Switches() {
		counts[sim.partOf[sw]]++
	}
	for p, n := range counts {
		if n == 0 {
			t.Errorf("part %d owns no switches", p)
		}
	}
}
