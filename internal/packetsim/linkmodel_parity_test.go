package packetsim

import (
	"testing"

	"horse/internal/dataplane"
	"horse/internal/eventq"
	"horse/internal/linkmodel"
	"horse/internal/simtime"
)

// runGoldenDegraded runs the golden fat-tree with a link-degradation
// model installed on every link, at the given shard count, backend, and
// balancing mode.
func runGoldenDegraded(m linkmodel.Model, seed uint64, shards int, q eventq.Backend, b BalanceMode) shardRunResult {
	topo, tr := goldenFatTree()
	links := linkmodel.NewSet(seed, topo.NumLinks())
	links.SetDefault(m)
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissDrop, Shards: shards,
		StatsEvery: 20 * simtime.Millisecond,
		EventQueue: q,
		Balance:    b,
		Links:      links,
	})
	installMACRoutes(sim.Network())
	sim.Load(tr)
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	return snapshot(sim, col)
}

// TestLinkModelShardParity pins the determinism contract with models
// enabled: corruption streams are owner-shard-driven and seed-keyed, so
// Records(), samples, and counters stay byte-identical to the serial
// heap reference at every shard count, backend, and balancing mode.
func TestLinkModelShardParity(t *testing.T) {
	models := []struct {
		name string
		m    linkmodel.Model
	}{
		{"bernoulli", linkmodel.BernoulliLoss{P: 0.03}},
		{"gilbert-elliott", linkmodel.GilbertElliott{
			PGoodBad: 0.05, PBadGood: 0.3, LossGood: 0.001, LossBad: 0.5,
		}},
		{"adaptive-rate", linkmodel.AdaptiveRate{
			Levels: 4, Floor: 0.25, Every: 10 * simtime.Millisecond,
		}},
	}
	for _, mc := range models {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			ref := runGoldenDegraded(mc.m, 7, 0, eventq.BackendHeap, BalanceUniform)
			for _, shards := range []int{2, 4} {
				diffRuns(t, mc.name+"-heap", ref,
					runGoldenDegraded(mc.m, 7, shards, eventq.BackendHeap, BalanceUniform), shards)
				diffRuns(t, mc.name+"-wheel", ref,
					runGoldenDegraded(mc.m, 7, shards, eventq.BackendWheel, BalanceUniform), shards)
			}
			diffRuns(t, mc.name+"-steal", ref,
				runGoldenDegraded(mc.m, 7, 4, eventq.BackendHeap, BalanceSteal), 4)
		})
	}
}

// TestLinkModelSeedSensitivity: changing the corruption seed must change
// the drop pattern (same everything else) — the seed is live, not inert.
func TestLinkModelSeedSensitivity(t *testing.T) {
	m := linkmodel.BernoulliLoss{P: 0.03}
	a := runGoldenDegraded(m, 7, 0, eventq.BackendHeap, BalanceUniform)
	b := runGoldenDegraded(m, 8, 0, eventq.BackendHeap, BalanceUniform)
	if a.lost == b.lost && len(a.records) == len(b.records) {
		same := true
		for i := range a.records {
			if a.records[i] != b.records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 7 and 8 produced identical degraded runs; the corruption seed is dead")
		}
	}
}

// FuzzLinkModelParity is the pinned invariant of the link-model streams:
// for ANY model parameters, corruption seed, shard count, queue backend,
// and balancing mode, a degraded run is byte-identical to the serial
// heap run of the same model and seed. Unlike the steal fuzzer the
// reference depends on the fuzzed model, so both runs execute per input.
func FuzzLinkModelParity(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint8(0), uint64(7), uint8(4), false, false)
	f.Add(uint8(1), uint8(5), uint8(30), uint64(1), uint8(2), true, false)
	f.Add(uint8(2), uint8(4), uint8(25), uint64(99), uint8(4), false, true)
	f.Add(uint8(1), uint8(100), uint8(100), uint64(7), uint8(8), true, true)
	f.Fuzz(func(t *testing.T, kind, p1, p2 uint8, seed uint64, shards uint8, wheel, steal bool) {
		var m linkmodel.Model
		switch kind % 3 {
		case 0:
			// p ∈ [0, 0.99]
			m = linkmodel.BernoulliLoss{P: float64(p1%100) / 101}
		case 1:
			m = linkmodel.GilbertElliott{
				PGoodBad: float64(p1%100)/101 + 0.001,
				PBadGood: float64(p2%100)/101 + 0.001,
				LossGood: 0.001,
				LossBad:  0.5,
			}
		case 2:
			m = linkmodel.AdaptiveRate{
				Levels: 2 + int(p1%6),
				Floor:  0.2 + float64(p2%8)/10,
				Every:  simtime.Duration(1+p2%20) * simtime.Millisecond,
			}
		}
		if err := linkmodel.Validate(m); err != nil {
			t.Skip(err)
		}
		if seed == 0 {
			seed = 1
		}
		k := 2 + int(shards%7)
		q := eventq.BackendHeap
		if wheel {
			q = eventq.BackendWheel
		}
		b := BalanceUniform
		if steal {
			b = BalanceSteal
		}
		ref := runGoldenDegraded(m, seed, 0, eventq.BackendHeap, BalanceUniform)
		diffRuns(t, "fuzz-linkmodel", ref, runGoldenDegraded(m, seed, k, q, b), k)
	})
}
