// Control-plane attachment of the packet engine: punts with buffered
// packets, latency-modeled message delivery, rule installation, timeout
// expiry, and stats replies — the packet-granular mirror of
// flowsim/control.go, speaking the same flowsim.Controller interface. In
// sharded runs the controller lives on shard 0; switch-originated
// messages cross to it (and its replies cross back) through the barrier
// outboxes, with the control latency as lookahead.
package packetsim

import (
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simcore"
	"horse/internal/simtime"
)

// controlActive reports whether switch-originated messages have somewhere
// to go: a local controller, or the hybrid coupler's punt sink.
func (s *Simulator) controlActive() bool {
	return s.ctrl != nil || s.cfg.PuntSink != nil
}

// SendToSwitch implements flowsim.Engine: the message applies at its
// datapath after the control latency. While the controller is detached the
// message is lost (the control channel is the thing that failed).
func (s *Simulator) SendToSwitch(msg openflow.Message) {
	if s.fstate.ControllerDetached() {
		return
	}
	s.sched(event{at: s.k.Now().Add(s.cfg.ControlLatency), kind: evToSwitch, msg: msg, node: msg.Datapath()})
}

// After implements flowsim.Engine: fn runs on the controller after d. The
// event carries the scheduling clone's shard (dir is unused by evTimer
// otherwise) so a sharded run fires the timer on the controller instance
// that armed it, whichever shard that instance is homed on.
func (s *Simulator) After(d simtime.Duration, fn func()) {
	s.sched(event{at: s.k.Now().Add(d), kind: evTimer, fn: fn, dir: s.shardID})
}

// sendToController delivers a switch-originated message: to the punt sink
// immediately (the hybrid's flow engine models the latency on its side),
// or to the local controller after the control latency. A detached
// controller never sees it; the dispatch side likewise drops (and pends,
// for PortStatus) messages caught in flight when the channel breaks.
func (s *Simulator) sendToController(msg openflow.Message) {
	if s.fstate.ControllerDetached() {
		s.notePending(msg)
		return
	}
	if s.cfg.PuntSink != nil {
		s.cfg.PuntSink(msg)
		return
	}
	if s.ctrl == nil {
		return
	}
	s.sched(event{at: s.k.Now().Add(s.cfg.ControlLatency), kind: evToController, msg: msg, node: msg.Datapath()})
}

// puntPacket parks a packet at a switch pending control-plane action and
// emits the PacketIn. The punt buffer is bounded by QueuePackets per
// switch; on overflow the packet is lost (the PacketIn still goes out,
// like a real switch punting an un-buffered truncated packet).
func (s *Simulator) puntPacket(p *packet, sw netgraph.NodeID, in netgraph.PortNum, miss bool) {
	s.col.PacketIns++
	if buf := s.punted[sw]; len(buf) < s.cfg.QueuePackets {
		s.punted[sw] = append(buf, &puntedPkt{pkt: p, in: in, miss: miss})
	} else {
		s.dropPacket(p)
	}
	reason := openflow.ReasonAction
	if miss {
		reason = openflow.ReasonNoMatch
	}
	s.sendToController(&openflow.PacketIn{
		Switch: sw, InPort: in, Key: s.keyOf(p), Reason: reason,
	})
}

// retryPunted re-runs every packet parked at a switch through the
// pipeline. Packets that still punt stay parked without a duplicate
// PacketIn; the rest forward or drop per the new rules.
func (s *Simulator) retryPunted(sw netgraph.NodeID) {
	buf := s.punted[sw]
	if len(buf) == 0 {
		return
	}
	keep := buf[:0]
	for _, bp := range buf {
		if !s.forward(bp.pkt, sw, bp.in, true) {
			keep = append(keep, bp)
		}
	}
	for i := len(keep); i < len(buf); i++ {
		buf[i] = nil
	}
	s.punted[sw] = keep
}

// handleToSwitch applies a controller message at its datapath — the
// standalone-engine path. In hybrid runs the flow engine owns application
// and echoes the result through NotifyApplied instead.
func (s *Simulator) handleToSwitch(msg openflow.Message) {
	dp := msg.Datapath()
	sw := s.net.Switches[dp]
	if sw == nil {
		return // message to a non-switch: controller bug, dropped
	}
	if s.fstate.SwitchIsDown(dp) {
		// A crashed switch cannot apply anything; the message is lost,
		// so the restart genuinely comes back with empty tables.
		return
	}
	switch m := msg.(type) {
	case *openflow.FlowMod, *openflow.GroupMod:
		if err := sw.Apply(msg, s.k.Now()); err != nil {
			return
		}
		s.col.FlowMods++
		s.scheduleExpiry(dp)
		s.retryPunted(dp)
	case *openflow.MeterMod:
		if err := sw.Apply(msg, s.k.Now()); err != nil {
			return
		}
		s.col.FlowMods++
		if mm := s.meters[dp]; mm != nil {
			delete(mm, m.MeterID) // reset the bucket
		}
		s.retryPunted(dp)
	case *openflow.PacketOut:
		s.handlePacketOut(m)
	case *openflow.PortStatsRequest:
		s.sendToController(s.portStats(dp, m.Port))
	case *openflow.FlowStatsRequest:
		s.sendToController(sw.FlowStats(m, s.k.Now()))
	case *openflow.BarrierRequest:
		s.sendToController(&openflow.BarrierReply{Switch: dp, Xid: m.Xid})
	}
}

// NotifyApplied reacts to a controller message another engine applied to
// the shared network (hybrid runs): buffered punts retry, meter buckets
// reset, PacketOuts release. Expiry stays with the applying engine.
func (s *Simulator) NotifyApplied(msg openflow.Message) {
	dp := msg.Datapath()
	if s.net.Switches[dp] == nil {
		return
	}
	switch m := msg.(type) {
	case *openflow.FlowMod, *openflow.GroupMod:
		s.retryPunted(dp)
	case *openflow.MeterMod:
		if mm := s.meters[dp]; mm != nil {
			delete(mm, m.MeterID)
		}
		s.retryPunted(dp)
	case *openflow.PacketOut:
		s.handlePacketOut(m)
	}
}

// handlePacketOut releases parked packets matching the key. An explicit
// Output action forwards them there; with no action list the packet
// re-enters the pipeline (OFPP_TABLE semantics, matching the flow engine's
// "retry resolution" reading), staying parked if it still punts.
func (s *Simulator) handlePacketOut(m *openflow.PacketOut) {
	buf := s.punted[m.Switch]
	if len(buf) == 0 {
		return
	}
	out := netgraph.NoPort
	for _, a := range m.Actions {
		if a.Type == openflow.ActionOutput && a.Port != openflow.PortController &&
			a.Port != openflow.PortFlood && a.Port != openflow.PortDrop {
			out = a.Port
		}
	}
	keep := buf[:0]
	for _, bp := range buf {
		switch {
		case s.keyOf(bp.pkt) != m.Key:
			keep = append(keep, bp)
		case out != netgraph.NoPort:
			s.enqueue(bp.pkt, s.dirFrom(m.Switch, out))
		default:
			if !s.forward(bp.pkt, m.Switch, bp.in, true) {
				keep = append(keep, bp)
			}
		}
	}
	for i := len(keep); i < len(buf); i++ {
		buf[i] = nil
	}
	s.punted[m.Switch] = keep
}

// scheduleExpiry arms a timeout check for a switch at its earliest entry
// expiry, avoiding duplicate events for the same instant.
func (s *Simulator) scheduleExpiry(dp netgraph.NodeID) {
	next := s.net.Switches[dp].NextExpiry()
	if next == simtime.Never {
		return
	}
	if cur := s.expiryAt[dp]; cur != simtime.Never && cur <= next && cur >= s.k.Now() {
		return // an earlier (or equal) check is already scheduled
	}
	// The outstanding check (if any) is later than next: replace it
	// instead of stacking a second event beside it.
	s.k.Cancel(s.expiryTimer[dp])
	s.expiryAt[dp] = next
	s.expiryTimer[dp] = s.schedTimer(event{at: next, kind: evExpiry, node: dp})
}

// handleExpiry evicts expired entries (idle timers see the per-packet
// LastUsed updates from forward), notifies the controller with
// FlowRemoved, and re-arms the timer. Traffic hitting an evicted rule
// simply misses and punts again — the packet-granular re-resolution.
func (s *Simulator) handleExpiry(dp netgraph.NodeID) {
	s.expiryAt[dp] = simtime.Never
	s.expiryTimer[dp] = simcore.Timer{}
	sw := s.net.Switches[dp]
	if sw == nil {
		return
	}
	for _, fr := range sw.ExpireEntries(s.k.Now()) {
		s.sendToController(fr)
	}
	s.scheduleExpiry(dp)
}

// portStats builds a PortStatsReply from the transmit and receive
// counters of the switch's own directions. Rates are averaged since the
// previous request for the same port (first request reports the average
// since the epoch) — the polling-delta a real controller computes anyway.
// Receive counters are the bits observed arriving on the switch's side of
// each link, so the reply reads only state this switch's shard owns.
func (s *Simulator) portStats(dp netgraph.NodeID, port netgraph.PortNum) *openflow.PortStatsReply {
	reply := &openflow.PortStatsReply{Switch: dp, At: s.k.Now()}
	for _, p := range s.topo.Node(dp).Ports() {
		if port != netgraph.NoPort && p != port {
			continue
		}
		l := s.topo.LinkAt(dp, p)
		if l == nil {
			continue
		}
		txDir := s.dirFrom(dp, p)
		rxDir := txDir ^ 1 // the opposite direction of the same link
		ps := openflow.PortStats{
			Port: p, LinkBps: l.BandwidthBps, Up: l.Up,
			TxBits: s.txBits[txDir], RxBits: s.rxBits[rxDir],
		}
		// Baselines are keyed by the replying port only, so polling one
		// switch never disturbs a neighbor's next delta.
		if last := s.statsReqAt[txDir]; s.k.Now() > last {
			window := s.k.Now().Sub(last).Seconds()
			ps.TxRateBps = (s.txBits[txDir] - s.statsReqTxBits[txDir]) / window
			ps.RxRateBps = (s.rxBits[rxDir] - s.statsReqRxBits[txDir]) / window
		}
		s.statsReqAt[txDir] = s.k.Now()
		s.statsReqTxBits[txDir] = s.txBits[txDir]
		s.statsReqRxBits[txDir] = s.rxBits[rxDir]
		reply.Stats = append(reply.Stats, ps)
	}
	return reply
}

// meterBucket is the token-bucket state enforcing one meter at packet
// granularity.
type meterBucket struct {
	tokens float64
	last   simtime.Time
}

// meterBurst is the bucket depth in seconds of line rate: enough to absorb
// ~50ms bursts, the common switch default order of magnitude.
const meterBurst = 0.05

// meterAdmit refills the token bucket for (sw, id) and admits the packet
// if tokens cover it; otherwise the meter drops the packet.
func (s *Simulator) meterAdmit(sw netgraph.NodeID, id openflow.MeterID, bits float64) bool {
	m := s.net.Switches[sw].Meters.Get(id)
	if m == nil || m.RateBps <= 0 {
		return true
	}
	burst := m.RateBps * meterBurst
	if burst < 2*DataPacketBits {
		burst = 2 * DataPacketBits
	}
	mm := s.meters[sw]
	if mm == nil {
		mm = make(map[openflow.MeterID]*meterBucket)
		s.meters[sw] = mm
	}
	b := mm[id]
	if b == nil {
		b = &meterBucket{tokens: burst, last: s.k.Now()}
		mm[id] = b
	}
	if now := s.k.Now(); now > b.last {
		b.tokens += m.RateBps * now.Sub(b.last).Seconds()
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens >= bits {
		b.tokens -= bits
		return true
	}
	return false
}
