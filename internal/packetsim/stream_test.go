package packetsim

import (
	"reflect"
	"testing"

	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/eventq"
	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// streamOpts selects the bounded-memory variants under test: feeding the
// workload through a traffic.Reader instead of Load, and/or draining
// records through SetRecordSink instead of the retained collector.
type streamOpts struct {
	reader bool
	sink   bool
}

// runGoldenStream runs the golden fat-tree scenario with the selected
// streaming variants and returns the same snapshot the retained helpers
// produce (records taken from the sink when one is installed).
func runGoldenStream(shards int, q eventq.Backend, opt streamOpts) shardRunResult {
	topo, tr := goldenFatTree()
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissDrop, Shards: shards,
		StatsEvery: 20 * simtime.Millisecond,
		EventQueue: q,
	})
	installMACRoutes(sim.Network())
	var streamed []stats.FlowRecord
	if opt.sink {
		sim.SetRecordSink(func(r stats.FlowRecord) { streamed = append(streamed, r) })
	}
	if opt.reader {
		sim.SetTraceReader(traffic.TraceReader(tr))
	} else {
		sim.Load(tr)
	}
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	res := snapshot(sim, col)
	if opt.sink {
		if n := len(col.Flows()); n != 0 {
			panic("sink mode retained records in the collector")
		}
		res.records = streamed
	}
	return res
}

// runFailuresStream is runFailures with the streaming variants applied.
func runFailuresStream(shards int, mk func() controller.App, opt streamOpts) shardRunResult {
	topo, tr := goldenFatTree()
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissController, Shards: shards,
		Controller:     controller.NewChain(mk()),
		ControlLatency: simtime.Millisecond,
	})
	links := topo.Links()
	var core []netgraph.LinkID
	for _, l := range links {
		if topo.Node(l.A).Kind == netgraph.KindSwitch && topo.Node(l.B).Kind == netgraph.KindSwitch {
			core = append(core, l.ID)
		}
	}
	sim.ScheduleLinkChange(simtime.Time(15*simtime.Millisecond), core[0], false)
	sim.ScheduleLinkChange(simtime.Time(60*simtime.Millisecond), core[0], true)
	sim.ScheduleLinkChange(simtime.Time(40*simtime.Millisecond), core[len(core)/2], false)
	sim.ScheduleLinkChange(simtime.Time(90*simtime.Millisecond), core[len(core)/2], true)
	agg := topo.MustLookup("agg1_0")
	sim.ScheduleSwitchChange(simtime.Time(30*simtime.Millisecond), agg, false)
	sim.ScheduleSwitchChange(simtime.Time(75*simtime.Millisecond), agg, true)
	var streamed []stats.FlowRecord
	if opt.sink {
		sim.SetRecordSink(func(r stats.FlowRecord) { streamed = append(streamed, r) })
	}
	if opt.reader {
		sim.SetTraceReader(traffic.TraceReader(tr))
	} else {
		sim.Load(tr)
	}
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	res := snapshot(sim, col)
	if opt.sink {
		res.records = streamed
	}
	return res
}

// TestStreamedMatchesRetained is the packetsim half of the bounded-memory
// equivalence contract: the incrementally-finalized sink sequence must be
// byte-identical to the retained Records() order at every shard count and
// event-queue backend, on both the golden scenario and the scripted
// failure scenario.
func TestStreamedMatchesRetained(t *testing.T) {
	backends := []struct {
		name string
		q    eventq.Backend
	}{
		{"heap", eventq.BackendHeap},
		{"wheel", eventq.BackendWheel},
	}
	for _, b := range backends {
		want := runGoldenQueue(0, b.q)
		if len(want.records) == 0 {
			t.Fatal("golden scenario produced no records")
		}
		for _, shards := range []int{1, 4} {
			got := runGoldenStream(shards, b.q, streamOpts{sink: true})
			diffRuns(t, "golden-streamed/"+b.name, want, got, shards)
		}
	}
	want := runFailures(0, func() controller.App { return &controller.ProactiveMAC{} })
	for _, shards := range []int{1, 4} {
		got := runFailuresStream(shards,
			func() controller.App { return &controller.ProactiveMAC{} },
			streamOpts{sink: true})
		diffRuns(t, "failures-streamed", want, got, shards)
	}
}

// TestStreamedEvictsFlows pins the memory contract behind the sink: once
// a record is emitted incrementally, the engine drops its flow state —
// after Finish every completed flow's slot is nil and nothing reached the
// retained collector.
func TestStreamedEvictsFlows(t *testing.T) {
	topo, tr := goldenFatTree()
	sim := New(Config{Topology: topo, Miss: dataplane.MissDrop})
	installMACRoutes(sim.Network())
	emitted := 0
	sim.SetRecordSink(func(stats.FlowRecord) { emitted++ })
	sim.Load(tr)
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	if emitted != len(tr) {
		t.Fatalf("sink saw %d records for %d demands", emitted, len(tr))
	}
	if n := len(col.Flows()); n != 0 {
		t.Fatalf("sink mode retained %d records in the collector", n)
	}
	evicted := 0
	for _, f := range sim.flows {
		if f == nil {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("no flow state was evicted before Finish")
	}
}

// TestReaderMatchesLoad pins windowed trace ingestion: feeding the golden
// workload through SetTraceReader must reproduce the eager Load run
// byte-for-byte — records, samples, and counters — at every shard count,
// with and without the record sink.
func TestReaderMatchesLoad(t *testing.T) {
	want := runGolden(0)
	for _, shards := range []int{0, 1, 4} {
		got := runGoldenStream(shards, eventq.BackendHeap, streamOpts{reader: true})
		diffRuns(t, "reader", want, got, shards)
		both := runGoldenStream(shards, eventq.BackendHeap, streamOpts{reader: true, sink: true})
		diffRuns(t, "reader+sink", want, both, shards)
	}
	wantF := runFailures(0, func() controller.App { return &controller.ProactiveMAC{} })
	for _, shards := range []int{0, 4} {
		got := runFailuresStream(shards,
			func() controller.App { return &controller.ProactiveMAC{} },
			streamOpts{reader: true, sink: true})
		diffRuns(t, "reader-failures", wantF, got, shards)
	}
	if !reflect.DeepEqual(want.records, runGoldenStream(0, eventq.BackendHeap, streamOpts{reader: true}).records) {
		t.Fatal("reader run is not repeatable")
	}
}
