package packetsim

import (
	"math"

	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/stats"
)

// trySend lets a flow emit as many packets as its window (TCP) or schedule
// (CBR) currently allows.
func (s *Simulator) trySend(f *pktFlow) {
	if f.phase != phaseRunning {
		return
	}
	if !f.started {
		f.started = true
		s.col.FlowsStarted++
	}
	if f.demand.Duration > 0 && s.k.Now() >= f.arrival.Add(f.demand.Duration) {
		// Deadline passed for an open-ended flow.
		s.complete(f)
		return
	}
	if f.tcp {
		for f.nextSeq < f.packets && float64(f.inFlight) < f.cwnd {
			s.emit(f, f.nextSeq, false)
			f.nextSeq++
			f.inFlight++
		}
		s.armRTO(f)
		return
	}
	// CBR: one packet now, next one an interval later.
	if f.nextSeq < f.packets {
		s.emit(f, f.nextSeq, false)
		f.nextSeq++
		if f.nextSeq < f.packets {
			interval := f.cbrInterval
			if interval <= 0 {
				interval = simtime.TransferTime(DataPacketBits, 1e9)
			}
			s.sched(event{at: s.k.Now().Add(interval), kind: evSend, flow: f})
		}
	}
}

// emit injects a packet at the flow's source host.
func (s *Simulator) emit(f *pktFlow, seq int, retrans bool) {
	p := &packet{flow: f, seq: seq, bits: DataPacketBits, retrans: retrans}
	f.sentBits += p.bits
	if sw, _ := s.topo.AttachedSwitch(f.demand.Src); sw < 0 {
		f.phase = phaseDropped
		return
	}
	// Host NIC → switch: enqueue on the host's side of the access link.
	s.enqueue(p, portID{node: f.demand.Src, port: s.hostPort(f.demand.Src)})
}

// hostPort returns the host's own port number on its access link.
func (s *Simulator) hostPort(host netgraph.NodeID) netgraph.PortNum {
	sw, swPort := s.topo.AttachedSwitch(host)
	if sw < 0 {
		return netgraph.NoPort
	}
	l := s.topo.LinkAt(sw, swPort)
	return l.PortAt(host)
}

// enqueue places a packet on an output port's drop-tail queue and starts
// the transmitter if idle.
func (s *Simulator) enqueue(p *packet, pid portID) {
	op := s.ports[pid]
	if op == nil {
		l := s.topo.LinkAt(pid.node, pid.port)
		if l == nil {
			s.dropPacket(p)
			return
		}
		op = &outPort{link: l, from: pid.node}
		s.ports[pid] = op
	}
	if !op.link.Up {
		// Offered to a dead link: lost until recovery (TCP senders RTO).
		s.losePacket(p)
		return
	}
	if len(op.queue) >= s.cfg.QueuePackets {
		op.dropped++
		s.dropPacket(p)
		return
	}
	op.queue = append(op.queue, p)
	if !op.busy {
		s.startTx(pid, op)
	}
}

// minResidualFrac floors the residual capacity a hybrid-coupled
// transmitter sees at 1% of line rate, so a flow-level background that
// saturates a link slows foreground packets sharply instead of freezing
// them (the allocator does not see packet flows, so they live on
// leftovers).
const minResidualFrac = 0.01

// txRate returns the transmit rate of a port: line rate minus any
// flow-level load the hybrid coupler reported for this link direction.
func (s *Simulator) txRate(pid portID, op *outPort) float64 {
	bw := op.link.BandwidthBps
	if len(s.extLoad) == 0 {
		return bw
	}
	if load, ok := s.extLoad[pid]; ok {
		bw -= load
		if min := op.link.BandwidthBps * minResidualFrac; bw < min {
			bw = min
		}
	}
	return bw
}

// SetExternalLoad informs the transmitter for one link direction that an
// external (flow-level) load occupies the link, so serialization sees only
// the residual capacity. The hybrid coupler calls it whenever fair-share
// rates shift by more than the configured epsilon; bps <= 0 clears the
// load. In-flight serializations keep their old finish time; the next
// packet sees the new rate.
func (s *Simulator) SetExternalLoad(link netgraph.LinkID, forward bool, bps float64) {
	l := s.topo.Link(link)
	from := l.B
	if forward {
		from = l.A
	}
	pid := portID{node: from, port: l.PortAt(from)}
	if bps <= 0 {
		delete(s.extLoad, pid)
		return
	}
	s.extLoad[pid] = bps
}

// startTx begins serializing the head-of-line packet.
func (s *Simulator) startTx(pid portID, op *outPort) {
	op.busy = true
	p := op.queue[0]
	ser := simtime.TransferTime(p.bits, s.txRate(pid, op))
	s.sched(event{at: s.k.Now().Add(ser), kind: evTxDone, port: pid, gen: op.txGen})
}

// txDone finishes serialization: the packet departs onto the wire and the
// next queued packet starts. A stale generation stamp means a link failure
// flushed this transmitter after the event was armed — the flush already
// accounted for the packet.
func (s *Simulator) txDone(pid portID, gen uint64) {
	op := s.ports[pid]
	if op == nil || op.txGen != gen || len(op.queue) == 0 {
		return
	}
	p := op.queue[0]
	copy(op.queue, op.queue[1:])
	op.queue = op.queue[:len(op.queue)-1]
	s.txBits[pid] += p.bits

	peer, peerPort := op.link.Peer(pid.node)
	if op.link.Up {
		rx := portID{node: peer, port: peerPort}
		s.sched(event{
			at:   s.k.Now().Add(op.link.Delay),
			kind: evArriveNode,
			pkt:  p,
			node: peer,
			port: rx,
			gen:  s.linkEpoch[rx],
		})
	} else {
		s.losePacket(p)
	}
	if len(op.queue) > 0 {
		s.startTx(pid, op)
	} else {
		op.busy = false
	}
}

// arrive processes a packet arriving at a node.
func (s *Simulator) arrive(p *packet, node netgraph.NodeID, in netgraph.PortNum) {
	n := s.topo.Node(node)
	if n.Kind == netgraph.KindHost {
		s.deliver(p, node)
		return
	}
	s.counter++
	s.forward(p, node, in, false)
}

// forward runs the switch pipeline for a packet and acts on the decision.
// buffered marks the re-processing of a punt-buffered packet after a rule
// install; such a packet that still punts stays parked silently (the
// controller already holds its PacketIn) — forward then returns false.
func (s *Simulator) forward(p *packet, node netgraph.NodeID, in netgraph.PortNum, buffered bool) bool {
	sw := s.net.Switches[node]
	if sw == nil {
		s.dropPacket(p)
		return true
	}
	key := s.keyOf(p)
	d := sw.Process(key, s.net.PortLiveFunc(node))
	if buffered && d.ToController && !d.Drop && s.controlActive() {
		// Still no verdict for a parked packet: stay parked with no
		// duplicate PacketIn — and no duplicate accounting, or every
		// unrelated FlowMod would inflate matched-entry counters and
		// keep idle timeouts alive for a packet that never forwarded.
		return false
	}
	// Per-packet entry accounting: counters feed FlowStats replies and
	// LastUsed drives idle timeouts — the packet-granular analogue of the
	// flow engine's settle-time updates.
	for _, e := range d.Entries {
		e.Packets++
		e.Bytes += uint64(p.bits / 8)
		e.LastUsed = s.k.Now()
	}
	// Token-bucket policing for any meters on the matched entries.
	for _, mid := range d.Meters {
		if !s.meterAdmit(node, mid, p.bits) {
			s.dropPacket(p)
			return true
		}
	}
	switch {
	case d.Drop:
		s.dropPacket(p)
	case d.ToController:
		if !s.controlActive() {
			// No control plane: punts count and drop (the E3 baseline).
			if !buffered {
				p.flow.punts++
			}
			s.dropPacket(p)
			return true
		}
		p.flow.punts++
		s.puntPacket(p, node, in, d.Miss)
	case d.Flood:
		s.dropPacket(p) // flooding unsupported at packet granularity
	case d.Out != netgraph.NoPort:
		s.enqueue(p, portID{node: node, port: d.Out})
	default:
		s.dropPacket(p)
	}
	return true
}

// keyOf returns the header key of a packet (reversed for ACKs).
func (s *Simulator) keyOf(p *packet) header.FlowKey {
	if p.ack {
		return p.flow.demand.Key.Reverse()
	}
	return p.flow.demand.Key
}

// deliver handles a packet reaching a host.
func (s *Simulator) deliver(p *packet, host netgraph.NodeID) {
	f := p.flow
	if p.ack {
		if host == f.demand.Src {
			s.handleAck(f, p.ackSeq)
		}
		return
	}
	if host != f.demand.Dst || f.phase != phaseRunning {
		return
	}
	// Receiver: cumulative ACK bookkeeping.
	f.received[p.seq] = true
	for f.received[f.recvNext] {
		delete(f.received, f.recvNext)
		f.recvNext++
	}
	if f.tcp {
		ack := &packet{flow: f, ack: true, ackSeq: f.recvNext, bits: AckPacketBits}
		s.enqueue(ack, portID{node: f.demand.Dst, port: s.hostPort(f.demand.Dst)})
	}
	if f.recvNext >= f.packets {
		s.complete(f)
		return
	}
	if !f.tcp && f.nextSeq >= f.packets && f.recvNext < f.packets {
		// CBR done sending but receiver has holes: packets were dropped;
		// a UDP flow just ends when the horizon does (no retransmission).
		// Completion for CBR is "all sent packets arrived or were lost".
		s.complete(f)
	}
}

// handleAck advances the TCP sender.
func (s *Simulator) handleAck(f *pktFlow, ackSeq int) {
	if f.phase != phaseRunning {
		return
	}
	if ackSeq > f.sendBase {
		acked := ackSeq - f.sendBase
		f.sendBase = ackSeq
		f.inFlight -= acked
		if f.inFlight < 0 {
			f.inFlight = 0
		}
		f.dupAcks = 0
		// Slow start or congestion avoidance.
		for i := 0; i < acked; i++ {
			if f.cwnd < f.ssthresh {
				f.cwnd++
			} else {
				f.cwnd += 1 / f.cwnd
			}
		}
		s.armRTO(f)
		s.trySend(f)
		return
	}
	// Duplicate ACK.
	f.dupAcks++
	if f.dupAcks == 3 {
		// Fast retransmit + multiplicative decrease.
		f.ssthresh = math.Max(f.cwnd/2, 2)
		f.cwnd = f.ssthresh
		f.dupAcks = 0
		s.emit(f, f.sendBase, true)
		s.armRTO(f)
	}
}

// armRTO (re)schedules the retransmission timer. Every arm bumps rtoGen,
// so all previously scheduled evRTO events are logically cancelled: the
// dispatch gate (see dispatch and handleRTO) fires only the event whose
// stamp matches the flow's current generation.
func (s *Simulator) armRTO(f *pktFlow) {
	if f.inFlight == 0 {
		f.rtoAt = simtime.Never
		f.rtoGen++
		return
	}
	rto := s.cfg.RTOMin
	f.rtoAt = s.k.Now().Add(rto)
	f.rtoGen++
	s.sched(event{at: f.rtoAt, kind: evRTO, flow: f, gen: f.rtoGen})
}

// handleRTO retransmits from sendBase with a collapsed window. Callers
// must have validated the event's generation stamp against f.rtoGen (the
// dispatch gate); completion bumps the generation, so a timer armed before
// the final ACK can never fire a retransmission afterwards.
func (s *Simulator) handleRTO(f *pktFlow) {
	if f.inFlight == 0 || f.sendBase >= f.packets {
		return
	}
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.inFlight = 1
	f.nextSeq = f.sendBase + 1
	s.emit(f, f.sendBase, true)
	s.armRTO(f)
}

// losePacket accounts for a packet lost to a link or switch failure: it
// counts toward the scenario loss metric and then drops like any other.
func (s *Simulator) losePacket(p *packet) {
	s.col.PacketsLost++
	s.dropPacket(p)
}

// dropPacket accounts for a lost packet. TCP recovers via dup-ACKs/RTO;
// CBR/UDP losses are simply gone.
func (s *Simulator) dropPacket(p *packet) {
	if p.ack {
		return // lost ACKs are recovered by later cumulative ACKs or RTO
	}
	f := p.flow
	if f.tcp {
		return // sender-side timers handle it
	}
	// For UDP, receiving side just never sees it; mark the hole as
	// received so completion (all packets accounted) can still happen.
	f.received[p.seq] = true
	for f.received[f.recvNext] {
		delete(f.received, f.recvNext)
		f.recvNext++
	}
	if f.recvNext >= f.packets && f.phase == phaseRunning {
		s.complete(f)
	}
}

// complete finalizes a flow.
func (s *Simulator) complete(f *pktFlow) {
	if f.phase != phaseRunning {
		return
	}
	f.phase = phaseDone
	f.done = s.k.Now()
	f.rtoGen++ // cancel timers
}

// record emits the flow's statistics record.
func (s *Simulator) record(f *pktFlow) {
	completed := f.phase == phaseDone
	end := f.done
	if !completed {
		end = s.k.Now()
	}
	size := f.demand.SizeBits
	if math.IsInf(size, 1) {
		size = f.sentBits
	}
	outcome := "completed"
	switch {
	case f.phase == phaseDropped:
		outcome = "dropped"
	case !completed:
		outcome = "running"
	}
	s.col.AddFlow(stats.FlowRecord{
		ID:        f.id,
		Arrival:   f.arrival,
		End:       end,
		SizeBits:  size,
		SentBits:  f.sentBits,
		Completed: completed,
		Outcome:   outcome,
		Punts:     f.punts,
	})
}

// sampleStats snapshots per-port throughput state. Utilization is
// approximated by the transmitted bits since the previous sample.
func (s *Simulator) sampleStats() {
	period := s.cfg.StatsEvery.Seconds()
	if period <= 0 {
		return
	}
	for pid, op := range s.ports {
		delta := s.txBits[pid] - s.lastTx[pid]
		rate := delta / period
		frac := 0.0
		if op.link.BandwidthBps > 0 {
			frac = rate / op.link.BandwidthBps
		}
		s.col.AddLinkSample(stats.LinkSample{
			At:      s.k.Now(),
			Link:    op.link.ID,
			Forward: op.link.A == pid.node,
			RateBps: rate, UsedFrac: frac,
		})
		s.lastTx[pid] = s.txBits[pid]
	}
}
