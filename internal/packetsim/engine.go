package packetsim

import (
	"math"

	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/simcore"
	"horse/internal/simtime"
	"horse/internal/stats"
)

// trySend lets a flow emit as many packets as its window (TCP) or schedule
// (CBR) currently allows. Runs on the flow's sender shard.
func (s *Simulator) trySend(f *pktFlow) {
	if f.srcDead || f.senderStopped {
		return
	}
	if !f.started {
		f.started = true
		s.col.FlowsStarted++
	}
	if f.demand.Duration > 0 && s.k.Now() >= f.deadline() {
		// Deadline passed for an open-ended flow: the sender stops and
		// dates the completion candidate (the receiver side needs no
		// notification — its own candidates can only be later).
		s.senderStop(f)
		return
	}
	if f.tcp {
		for f.nextSeq < f.packets && float64(f.inFlight) < f.cwnd {
			s.emit(f, f.nextSeq, false)
			f.nextSeq++
			f.inFlight++
		}
		s.armRTO(f)
		return
	}
	// CBR: one packet now, next one an interval later.
	if f.nextSeq < f.packets {
		s.emit(f, f.nextSeq, false)
		f.nextSeq++
		if f.nextSeq < f.packets {
			interval := f.cbrInterval
			if interval <= 0 {
				interval = simtime.TransferTime(DataPacketBits, 1e9)
			}
			s.sched(event{at: s.k.Now().Add(interval), kind: evSend, flow: f})
		}
	}
}

// senderStop ends the sending side at its deadline: the completion
// candidate is dated now, emissions cease, and pending RTO timers die.
func (s *Simulator) senderStop(f *pktFlow) {
	if f.senderStopped {
		return
	}
	f.senderStopped = true
	f.deadlineDoneAt = s.k.Now()
	f.rtoGen++ // backstop
	s.k.Cancel(f.rto)
	f.rto = simcore.Timer{}
	// The deadline candidate may be the last event this flow ever sees
	// (no packets in flight): queue a finalize check.
	s.noteFin(f)
}

// emit injects a packet at the flow's source host.
func (s *Simulator) emit(f *pktFlow, seq int, retrans bool) {
	p := &packet{flow: f, seq: seq, bits: DataPacketBits, retrans: retrans}
	f.sentBits += p.bits
	if sw, _ := s.topo.AttachedSwitch(f.demand.Src); sw < 0 {
		f.srcDead = true
		return
	}
	s.col.PacketsSent++
	if retrans {
		s.col.Retransmits++
	}
	// The packet is born: live until deliver consumes it or dropPacket
	// accounts its death (every loss path funnels through one of them).
	s.liveBy[f.idx]++
	// Host NIC → switch: enqueue on the host's side of the access link.
	s.enqueue(p, s.hostDir(f.demand.Src))
}

// hostDir returns the host's transmit direction on its access link.
func (s *Simulator) hostDir(host netgraph.NodeID) int32 {
	sw, swPort := s.topo.AttachedSwitch(host)
	if sw < 0 {
		return -1
	}
	l := s.topo.LinkAt(sw, swPort)
	return s.dirFrom(host, l.PortAt(host))
}

// enqueue places a packet on an output direction's drop-tail queue and
// starts the transmitter if idle. Runs on the transmitting node's shard.
func (s *Simulator) enqueue(p *packet, dir int32) {
	if dir < 0 {
		s.dropPacket(p)
		return
	}
	op := s.ports[dir]
	if op == nil {
		l := s.dirLink(dir)
		op = &outPort{link: l, from: dirFromNode(l, dir)}
		s.ports[dir] = op
	}
	if !op.link.Up {
		// Offered to a dead link: lost until recovery (TCP senders RTO).
		s.losePacket(p)
		return
	}
	if len(op.queue) >= s.cfg.QueuePackets {
		op.dropped++
		s.dropPacket(p)
		return
	}
	op.queue = append(op.queue, p)
	if !op.busy {
		s.startTx(dir, op)
	}
}

// minResidualFrac floors the residual capacity a hybrid-coupled
// transmitter sees at 1% of line rate, so a flow-level background that
// saturates a link slows foreground packets sharply instead of freezing
// them (the allocator does not see packet flows, so they live on
// leftovers).
const minResidualFrac = 0.01

// txRate returns the transmit rate of a direction: line rate scaled by
// the direction's link model (rate adaptation) minus any flow-level load
// the hybrid coupler reported for it. RateScale is pure, so evaluating
// it per transmission start perturbs nothing.
func (s *Simulator) txRate(dir int32, op *outPort) float64 {
	bw := op.link.BandwidthBps
	if !s.links.Empty() {
		bw *= s.links.RateScale(netgraph.LinkID(dir>>1), dir&1 == 0, s.k.Now())
	}
	if len(s.extLoad) == 0 {
		return bw
	}
	full := bw
	if load, ok := s.extLoad[dir]; ok {
		bw -= load
		if min := full * minResidualFrac; bw < min {
			bw = min
		}
	}
	return bw
}

// SetExternalLoad informs the transmitter for one link direction that an
// external (flow-level) load occupies the link, so serialization sees only
// the residual capacity. The hybrid coupler calls it whenever fair-share
// rates shift by more than the configured epsilon; bps <= 0 clears the
// load. In-flight serializations keep their old finish time; the next
// packet sees the new rate.
func (s *Simulator) SetExternalLoad(link netgraph.LinkID, forward bool, bps float64) {
	dir := int32(link) << 1
	if !forward {
		dir |= 1
	}
	if bps <= 0 {
		delete(s.extLoad, dir)
		return
	}
	s.extLoad[dir] = bps
}

// startTx begins serializing the head-of-line packet.
func (s *Simulator) startTx(dir int32, op *outPort) {
	op.busy = true
	p := op.queue[0]
	ser := simtime.TransferTime(p.bits, s.txRate(dir, op))
	s.sched(event{at: s.k.Now().Add(ser), kind: evTxDone, dir: dir, gen: op.txGen})
}

// txDone finishes serialization: the packet departs onto the wire and the
// next queued packet starts. A stale generation stamp means a link failure
// flushed this transmitter after the event was armed — the flush already
// accounted for the packet.
func (s *Simulator) txDone(dir int32, gen uint64) {
	op := s.ports[dir]
	if op == nil || op.txGen != gen || len(op.queue) == 0 {
		return
	}
	p := op.queue[0]
	copy(op.queue, op.queue[1:])
	op.queue[len(op.queue)-1] = nil
	op.queue = op.queue[:len(op.queue)-1]
	s.txBits[dir] += p.bits

	if op.link.Up {
		// Frame corruption consults the direction's link model exactly
		// once per transmitted frame, here on the direction's owning
		// shard — the single writer of its model state. A corrupted
		// frame is counted separately from outage loss and then dropped
		// like any other (TCP recovers it via dup-ACKs/RTO, UDP resolves
		// the packet where it died).
		if !s.links.Empty() && s.links.Corrupt(netgraph.LinkID(dir>>1), dir&1 == 0) {
			s.col.PacketsCorrupted++
			s.dropPacket(p)
			if len(op.queue) > 0 {
				s.startTx(dir, op)
			} else {
				op.busy = false
			}
			return
		}
		// The arrival event carries the direction's epoch at transmit
		// time; a link failure between now and delivery bumps it and the
		// packet is lost mid-propagation. Epochs mutate only between
		// windows, so this cross-shard read is safe in sharded runs.
		s.sched(event{
			at:   s.k.Now().Add(op.link.Delay),
			kind: evArriveNode,
			pkt:  p,
			dir:  dir,
			gen:  s.linkEpoch[dir],
		})
	} else {
		s.losePacket(p)
	}
	if len(op.queue) > 0 {
		s.startTx(dir, op)
	} else {
		op.busy = false
	}
}

// arrive processes a packet arriving at a node. Runs on the node's shard.
func (s *Simulator) arrive(p *packet, node netgraph.NodeID, in netgraph.PortNum) {
	n := s.topo.Node(node)
	if n.Kind == netgraph.KindHost {
		s.deliver(p, node)
		return
	}
	s.counter++
	s.forward(p, node, in, false)
}

// forward runs the switch pipeline for a packet and acts on the decision.
// buffered marks the re-processing of a punt-buffered packet after a rule
// install; such a packet that still punts stays parked silently (the
// controller already holds its PacketIn) — forward then returns false.
func (s *Simulator) forward(p *packet, node netgraph.NodeID, in netgraph.PortNum, buffered bool) bool {
	sw := s.net.Switches[node]
	if sw == nil {
		s.dropPacket(p)
		return true
	}
	key := s.keyOf(p)
	d := sw.Process(key, s.net.PortLiveFunc(node))
	if buffered && d.ToController && !d.Drop && s.controlActive() {
		// Still no verdict for a parked packet: stay parked with no
		// duplicate PacketIn — and no duplicate accounting, or every
		// unrelated FlowMod would inflate matched-entry counters and
		// keep idle timeouts alive for a packet that never forwarded.
		return false
	}
	// Per-packet entry accounting: counters feed FlowStats replies and
	// LastUsed drives idle timeouts — the packet-granular analogue of the
	// flow engine's settle-time updates.
	for _, e := range d.Entries {
		e.Packets++
		e.Bytes += uint64(p.bits / 8)
		e.LastUsed = s.k.Now()
	}
	// Token-bucket policing for any meters on the matched entries.
	for _, mid := range d.Meters {
		if !s.meterAdmit(node, mid, p.bits) {
			s.dropPacket(p)
			return true
		}
	}
	switch {
	case d.Drop:
		s.dropPacket(p)
	case d.ToController:
		if !s.controlActive() {
			// No control plane: punts count and drop (the E3 baseline).
			if !buffered {
				s.puntsBy[p.flow.idx]++
			}
			s.dropPacket(p)
			return true
		}
		s.puntsBy[p.flow.idx]++
		s.puntPacket(p, node, in, d.Miss)
	case d.Flood:
		s.dropPacket(p) // flooding unsupported at packet granularity
	case d.Out != netgraph.NoPort:
		s.enqueue(p, s.dirFrom(node, d.Out))
	default:
		s.dropPacket(p)
	}
	return true
}

// keyOf returns the header key of a packet (reversed for ACKs).
func (s *Simulator) keyOf(p *packet) header.FlowKey {
	if p.ack {
		return p.flow.demand.Key.Reverse()
	}
	return p.flow.demand.Key
}

// deliver handles a packet reaching a host. Runs on the host's shard —
// for data packets, the flow's receiver side, whose state nothing else
// writes.
func (s *Simulator) deliver(p *packet, host netgraph.NodeID) {
	f := p.flow
	// The packet ends its life here on every path below (any ACK it
	// spawns is a new birth); its flow may now be finalizable.
	s.liveBy[f.idx]--
	s.noteFin(f)
	if p.ack {
		if host == f.demand.Src {
			s.handleAck(f, p.ackSeq)
		}
		return
	}
	if host != f.demand.Dst {
		return
	}
	if f.tcp {
		if f.recvDoneAt != simtime.Never {
			// Duplicate after full receive (a retransmission crossed the
			// final ACK): re-ACK so the sender quiesces. Real TCP does
			// exactly this; the sender learns completion only from the
			// ACK stream — no out-of-band state crosses the shards.
			ack := &packet{flow: f, ack: true, ackSeq: f.recvNext, bits: AckPacketBits}
			s.liveBy[f.idx]++
			s.enqueue(ack, s.hostDir(f.demand.Dst))
			return
		}
		// Receiver: cumulative ACK bookkeeping.
		f.received[p.seq] = true
		for f.received[f.recvNext] {
			delete(f.received, f.recvNext)
			f.recvNext++
		}
		ack := &packet{flow: f, ack: true, ackSeq: f.recvNext, bits: AckPacketBits}
		s.liveBy[f.idx]++
		s.enqueue(ack, s.hostDir(f.demand.Dst))
		if f.recvNext >= f.packets {
			f.recvDoneAt = s.k.Now()
		}
		return
	}
	// UDP/CBR: each data packet resolves exactly once (delivered here or
	// dropped wherever it died); completion is "every packet resolved",
	// dated by the last resolution — assembled at Finish from the
	// per-shard counters.
	s.resolveUDP(f)
}

// resolveUDP accounts one UDP data packet reaching its end of life on
// this shard (delivery at the receiver or a drop anywhere en route).
func (s *Simulator) resolveUDP(f *pktFlow) {
	s.udpRes[f.idx]++
	s.udpLast[f.idx] = s.k.Now()
}

// handleAck advances the TCP sender. Runs on the sender shard.
func (s *Simulator) handleAck(f *pktFlow, ackSeq int) {
	if f.srcDead || f.senderStopped {
		return
	}
	if ackSeq > f.sendBase {
		acked := ackSeq - f.sendBase
		f.sendBase = ackSeq
		f.inFlight -= acked
		if f.inFlight < 0 {
			f.inFlight = 0
		}
		f.dupAcks = 0
		// Slow start or congestion avoidance.
		for i := 0; i < acked; i++ {
			if f.cwnd < f.ssthresh {
				f.cwnd++
			} else {
				f.cwnd += 1 / f.cwnd
			}
		}
		s.armRTO(f)
		s.trySend(f)
		return
	}
	if f.sendBase >= f.packets {
		return // post-completion duplicate; the transfer is fully acked
	}
	// Duplicate ACK.
	f.dupAcks++
	if f.dupAcks == 3 {
		// Fast retransmit + multiplicative decrease.
		f.ssthresh = math.Max(f.cwnd/2, 2)
		f.cwnd = f.ssthresh
		f.dupAcks = 0
		s.emit(f, f.sendBase, true)
		s.armRTO(f)
	}
}

// armRTO (re)schedules the retransmission timer. Every arm removes the
// previous event from the queue outright (true cancellation); the rtoGen
// stamp and dispatch gate stay as a defensive backstop.
func (s *Simulator) armRTO(f *pktFlow) {
	s.k.Cancel(f.rto)
	f.rto = simcore.Timer{}
	if f.inFlight == 0 {
		f.rtoAt = simtime.Never
		f.rtoGen++
		return
	}
	rto := s.cfg.RTOMin
	f.rtoAt = s.k.Now().Add(rto)
	f.rtoGen++
	f.rto = s.schedTimer(event{at: f.rtoAt, kind: evRTO, flow: f, gen: f.rtoGen})
}

// handleRTO retransmits from sendBase with a collapsed window. Callers
// must have validated the event's generation stamp against f.rtoGen (the
// dispatch gate); the final cumulative ACK zeroes inFlight, so a timer
// armed before it can never fire a retransmission afterwards.
func (s *Simulator) handleRTO(f *pktFlow) {
	if f.inFlight == 0 || f.sendBase >= f.packets {
		return
	}
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.inFlight = 1
	f.nextSeq = f.sendBase + 1
	s.emit(f, f.sendBase, true)
	s.armRTO(f)
}

// losePacket accounts for a packet lost to a link or switch failure: it
// counts toward the scenario loss metric and then drops like any other.
func (s *Simulator) losePacket(p *packet) {
	s.col.PacketsLost++
	s.dropPacket(p)
}

// dropPacket accounts for a lost packet. TCP recovers via dup-ACKs/RTO;
// CBR/UDP losses resolve the packet where it died.
func (s *Simulator) dropPacket(p *packet) {
	s.liveBy[p.flow.idx]--
	s.noteFin(p.flow)
	if p.ack {
		return // lost ACKs are recovered by later cumulative ACKs or RTO
	}
	if p.flow.tcp {
		return // sender-side timers handle it
	}
	s.resolveUDP(p.flow)
}

// record emits the flow's statistics record at Finish.
func (s *Simulator) record(f *pktFlow, sims []*Simulator) {
	r, _ := s.assemble(f, sims)
	s.col.AddFlow(r)
}

// assemble builds the flow's statistics record, assembling completion
// from the single-writer candidates: the earliest of the deadline stop
// (sender), the full receive (receiver), and — for UDP — the last packet
// resolution once every packet is accounted for. That earliest candidate
// is exactly the completion a serial run's first-finisher logic hits.
// final reports whether the record is time-invariant — a completed,
// live-source flow assembles identically whenever it is read, so the
// incremental finalize path may emit and evict it mid-run; srcDead and
// still-running outcomes date their records s.k.Now() and must wait for
// Finish.
func (s *Simulator) assemble(f *pktFlow, sims []*Simulator) (stats.FlowRecord, bool) {
	punts := 0
	var resolved int64
	resolvedLast := simtime.Time(0)
	for _, c := range sims {
		punts += int(c.puntsBy[f.idx])
		resolved += int64(c.udpRes[f.idx])
		if c.udpLast[f.idx] > resolvedLast {
			resolvedLast = c.udpLast[f.idx]
		}
	}
	end := simtime.Never
	if f.deadlineDoneAt < end {
		end = f.deadlineDoneAt
	}
	if f.recvDoneAt < end {
		end = f.recvDoneAt
	}
	if !f.tcp && resolved >= int64(f.packets) && resolvedLast < end {
		end = resolvedLast
	}
	completed := end != simtime.Never
	if !completed {
		end = s.k.Now()
	}
	size := f.demand.SizeBits
	if math.IsInf(size, 1) {
		size = f.sentBits
	}
	outcome := "completed"
	switch {
	case f.srcDead:
		outcome = "dropped"
		completed = false
		end = s.k.Now()
	case !completed:
		outcome = "running"
	}
	return stats.FlowRecord{
		ID:        f.id,
		Arrival:   f.arrival,
		End:       end,
		SizeBits:  size,
		SentBits:  f.sentBits,
		Completed: completed,
		Outcome:   outcome,
		Punts:     punts,
	}, outcome == "completed"
}

// senderQuiesced reports that the flow can never emit another packet: its
// source is dead, its deadline stopped it, or the transfer is fully acked
// (TCP) / fully emitted (CBR). Every field is sender-owned; the
// coordinator reads them at drain points, after the owning window.
func senderQuiesced(f *pktFlow) bool {
	if f.srcDead || f.senderStopped {
		return true
	}
	if f.tcp {
		return f.sendBase >= f.packets
	}
	return f.nextSeq >= f.packets
}

// noteFin queues a finalize check for f at this clone's next drain point
// (end of the current dispatch in serial runs, the window barrier in
// sharded ones). Duplicates are fine: tryFinalize is idempotent.
func (s *Simulator) noteFin(f *pktFlow) {
	if f.done {
		return
	}
	s.finHints = append(s.finHints, f.idx)
}

// drainFin runs the queued finalize checks of every clone. Called on the
// coordinator (or the serial engine) only, at single-threaded points
// where all clone writes are published: after each dispatch serially,
// at window barriers (exchange) sharded.
func (s *Simulator) drainFin() {
	if s.finished || s.simsAll == nil {
		return
	}
	for _, c := range s.simsAll {
		if len(c.finHints) == 0 {
			continue
		}
		for _, idx := range c.finHints {
			s.tryFinalize(idx)
		}
		c.finHints = c.finHints[:0]
	}
}

// tryFinalize records flow idx the moment its record can no longer
// change — sender quiesced, zero packets live on any clone, and a
// completed outcome — and evicts its state. Incomplete flows (srcDead,
// still running at the horizon) date their records at Finish instead.
func (s *Simulator) tryFinalize(idx int32) {
	f := s.flows[idx]
	if f == nil || f.done || !senderQuiesced(f) {
		return
	}
	live := int32(0)
	for _, c := range s.simsAll {
		live += c.liveBy[idx]
	}
	if live != 0 {
		return
	}
	r, final := s.assemble(f, s.simsAll)
	if !final {
		return
	}
	f.done = true
	f.received = nil
	s.flows[idx] = nil
	s.emitFinal(idx, r)
}

// emitFinal emits r once every lower-indexed flow has emitted, parking
// it otherwise, so AddFlow order is exactly flow-ID order — the same
// sequence the all-at-Finish path produces.
func (s *Simulator) emitFinal(idx int32, r stats.FlowRecord) {
	if idx != s.finNext {
		if s.finPending == nil {
			s.finPending = make(map[int32]stats.FlowRecord)
		}
		s.finPending[idx] = r
		return
	}
	s.col.AddFlow(r)
	s.finNext++
	for {
		r2, ok := s.finPending[s.finNext]
		if !ok {
			return
		}
		delete(s.finPending, s.finNext)
		s.col.AddFlow(r2)
		s.finNext++
	}
}

// sampleStats snapshots per-direction throughput state for the directions
// this shard owns. Utilization is approximated by the transmitted bits
// since the previous sample.
func (s *Simulator) sampleStats() {
	period := s.cfg.StatsEvery.Seconds()
	if period <= 0 {
		return
	}
	for dir := int32(0); int(dir) < len(s.ports); dir++ {
		// Ownership comes from the direction index alone: peeking at
		// s.ports first would race with another shard's lazy outPort
		// store on a direction it owns.
		if s.nshards > 1 && s.partOf[dirFromNode(s.dirLink(dir), dir)] != s.shardID {
			continue
		}
		op := s.ports[dir]
		if op == nil {
			continue
		}
		delta := s.txBits[dir] - s.lastTx[dir]
		rate := delta / period
		frac := 0.0
		if op.link.BandwidthBps > 0 {
			frac = rate / op.link.BandwidthBps
		}
		s.col.AddLinkSample(stats.LinkSample{
			At:      s.k.Now(),
			Link:    op.link.ID,
			Forward: op.link.A == op.from,
			RateBps: rate, UsedFrac: frac,
		})
		s.lastTx[dir] = s.txBits[dir]
	}
}
