package packetsim

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/eventq"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/traffic"
)

// skewedStar is the partition-hostile scenario of the balancing contract:
// a star of three k=4 fat-trees where nearly all traffic lives inside
// tree 0. A uniform edge-cut partition is even by switch count but puts
// the whole hot tree's event load behind few shards; weighted
// partitioning and stealing exist to fix exactly this.
func skewedStar() (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.StarOfFatTrees(3, 4, netgraph.Gig)
	hosts := topo.Hosts() // tree t owns hosts[16t : 16t+16]
	var tr traffic.Trace
	for i := 0; i < 20; i++ {
		src := hosts[i%16]
		dst := hosts[(i+8)%16]
		d := cbr(src, dst, simtime.Time(i)*simtime.Time(5*simtime.Millisecond), 2e6, 5e7)
		d.Key.SrcPort = uint16(34000 + i)
		if i%4 == 1 {
			d.TCP = true
			d.RateBps = math.Inf(1)
			d.Key.Proto = header.ProtoTCP
		}
		tr = append(tr, d)
	}
	// Light cross-tree background so the hub cut carries traffic too.
	for i := 0; i < 4; i++ {
		d := cbr(hosts[16+i], hosts[32+i],
			simtime.Time(i)*simtime.Time(11*simtime.Millisecond), 1e6, 2e7)
		d.Key.SrcPort = uint16(35000 + i)
		tr = append(tr, d)
	}
	tr.Sort()
	return topo, tr
}

// runSkewed runs the skewed star (pre-installed routes, no controller) at
// the given shard count, balance mode, and queue backend.
func runSkewed(shards int, mode BalanceMode, q eventq.Backend) shardRunResult {
	topo, tr := skewedStar()
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissDrop, Shards: shards,
		Balance: mode, EventQueue: q,
		StatsEvery: 20 * simtime.Millisecond,
	})
	installMACRoutes(sim.Network())
	sim.Load(tr)
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	return snapshot(sim, col)
}

// TestBalanceDeterminismMatrix extends the shard determinism contract to
// the balancing paths: on the skewed star, balanced and stealing runs at
// shards ∈ {1, 4} × backend ∈ {heap, wheel} must reproduce the serial
// heap reference byte-for-byte.
func TestBalanceDeterminismMatrix(t *testing.T) {
	serial := runSkewed(0, BalanceUniform, eventq.BackendHeap)
	if len(serial.records) == 0 {
		t.Fatal("skewed scenario produced no records")
	}
	completed := 0
	for _, r := range serial.records {
		if r.Completed {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("skewed scenario completed no flows")
	}
	for _, mode := range []BalanceMode{BalanceWeighted, BalanceSteal} {
		for _, q := range []eventq.Backend{eventq.BackendHeap, eventq.BackendWheel} {
			for _, shards := range []int{1, 4} {
				name := fmt.Sprintf("balance=%d/%s", mode, q)
				diffRuns(t, name, serial, runSkewed(shards, mode, q), shards)
			}
		}
	}
	// Repeatability of the stealing arm at a fixed shard count.
	diffRuns(t, "steal-repeat",
		runSkewed(4, BalanceSteal, eventq.BackendHeap),
		runSkewed(4, BalanceSteal, eventq.BackendHeap), 4)
}

// TestWeightedActuallyRebalances guards the silent-no-op failure mode: on
// the skewed star the weighted partition must differ from the uniform one
// and shift hot-tree switches off a single shard, while keeping a
// positive lookahead.
func TestWeightedActuallyRebalances(t *testing.T) {
	topo, tr := skewedStar()
	mk := func(mode BalanceMode) *Simulator {
		sim := New(Config{Topology: topo, Miss: dataplane.MissDrop, Shards: 4, Balance: mode})
		installMACRoutes(sim.Network())
		sim.Load(tr)
		mustRun(sim, simtime.Time(100*simtime.Millisecond))
		return sim
	}
	uni, bal := mk(BalanceUniform), mk(BalanceWeighted)
	if uni.nshards != 4 || bal.nshards != 4 {
		t.Fatalf("effective shards: uniform=%d weighted=%d, want 4", uni.nshards, bal.nshards)
	}
	if bal.lookahead <= 0 {
		t.Fatalf("weighted lookahead = %v, want positive", bal.lookahead)
	}
	moved := 0
	for _, sw := range topo.Switches() {
		if uni.partOf[sw] != bal.partOf[sw] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("weighted partition identical to uniform on a skewed workload")
	}
	// The hot tree's 20 switches must not sit on one shard after weighting.
	hot := map[int32]bool{}
	for _, sw := range topo.Switches() {
		if name := topo.Node(sw).Name; len(name) > 3 && name[:3] == "t0_" {
			hot[bal.partOf[sw]] = true
		}
	}
	if len(hot) < 2 {
		t.Fatalf("hot tree still owned by %d shard(s) after weighting", len(hot))
	}
}

// TestScriptedStealMigrates pins the migration machinery itself: a
// scripted schedule forces whole-group moves at fixed barriers, ownership
// actually changes, and the records stay byte-identical to serial.
func TestScriptedStealMigrates(t *testing.T) {
	serial := runSkewed(0, BalanceUniform, eventq.BackendHeap)
	topo, tr := skewedStar()
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissDrop, Shards: 4,
		Balance:    BalanceSteal,
		StatsEvery: 20 * simtime.Millisecond,
	})
	installMACRoutes(sim.Network())
	sim.Load(tr)
	victim := topo.MustLookup("t0_edge0_0")
	var owners []int32 // victim's owner observed at each scripted barrier
	sim.stealScript = func(round int) []stealChoice {
		if round%16 != 3 {
			return nil
		}
		owners = append(owners, sim.partOf[victim])
		// Rotate the victim's ownership every 16 barriers.
		return []stealChoice{{sw: victim, dest: (sim.partOf[victim] + 1) % 4}}
	}
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	diffRuns(t, "scripted-steal", serial, snapshot(sim, col), 4)
	if sim.stealRound < 16 {
		t.Fatalf("only %d barriers ran; the script never fired", sim.stealRound)
	}
	migrated := false
	for i := 1; i < len(owners); i++ {
		migrated = migrated || owners[i] != owners[i-1]
	}
	if !migrated {
		t.Fatalf("no scripted migration took effect; owners seen: %v", owners)
	}
	for _, n := range topo.Hosts() {
		if at, _ := topo.AttachedSwitch(n); at == victim && sim.partOf[n] != sim.partOf[victim] {
			t.Fatalf("host %d split from its switch: %d vs %d", n, sim.partOf[n], sim.partOf[victim])
		}
	}
}

// TestSkewSoak is the nightly soak arm: the skewed star under weighted
// partitioning plus stealing at 4 shards, byte-compared against serial,
// with the per-shard dispatch histogram exported when HORSE_SOAK_DIR is
// set (the nightly job runs this -count=3 and uploads the histograms as
// artifacts, so shard-load drift across runs is visible in CI).
func TestSkewSoak(t *testing.T) {
	serial := runSkewed(0, BalanceUniform, eventq.BackendHeap)
	topo, tr := skewedStar()
	sim := New(Config{
		Topology: topo, Miss: dataplane.MissDrop, Shards: 4,
		Balance:    BalanceSteal,
		StatsEvery: 20 * simtime.Millisecond,
	})
	installMACRoutes(sim.Network())
	sim.Load(tr)
	col := mustRun(sim, simtime.Time(2*simtime.Second))
	diffRuns(t, "skew-soak", serial, snapshot(sim, col), 4)

	loads := sim.ShardLoads()
	if len(loads) != 4 {
		t.Fatalf("ShardLoads returned %d shards, want 4", len(loads))
	}
	var total uint64
	for _, n := range loads {
		total += n
	}
	if total == 0 {
		t.Fatal("sharded run dispatched no events")
	}
	dir := os.Getenv("HORSE_SOAK_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.CreateTemp(dir, "shard-loads-*.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(map[string]any{
		"scenario": "skewed-star", "shards": 4, "balance": "steal",
		"steal_rounds": sim.stealRound, "dispatched": loads,
	}); err != nil {
		t.Fatal(err)
	}
	t.Logf("shard dispatch histogram %v written to %s", loads, f.Name())
}

// twoIslands is a deliberately disconnected fabric: two three-switch
// chains with two hosts per switch and no path between islands.
func twoIslands() *netgraph.Topology {
	topo := netgraph.New()
	for isl := 0; isl < 2; isl++ {
		var prev netgraph.NodeID = -1
		for j := 0; j < 3; j++ {
			sw := topo.AddSwitch(fmt.Sprintf("i%d_sw%d", isl, j))
			if prev >= 0 {
				topo.Connect(prev, sw, netgraph.Gig.BandwidthBps, 100*simtime.Microsecond)
			}
			prev = sw
			for h := 0; h < 2; h++ {
				host := topo.AddHost(fmt.Sprintf("i%d_h%d_%d", isl, j, h))
				topo.Connect(sw, host, netgraph.Gig.BandwidthBps, simtime.Microsecond)
			}
		}
	}
	return topo
}

// islandTraffic crosses hosts within each island (islands are mutually
// unreachable by construction).
func islandTraffic(topo *netgraph.Topology) traffic.Trace {
	hosts := topo.Hosts() // island 0 owns the first 6
	var tr traffic.Trace
	for i := 0; i < 8; i++ {
		base := (i % 2) * 6
		src := hosts[base+i%6]
		dst := hosts[base+(i+3)%6]
		d := cbr(src, dst, simtime.Time(i)*simtime.Time(3*simtime.Millisecond), 4e5, 2e7)
		d.Key.SrcPort = uint16(36000 + i)
		tr = append(tr, d)
	}
	tr.Sort()
	return tr
}

// TestControllerShardingComponents runs a reactive control plane over the
// disconnected fabric: with a forkable controller each island gets its
// own instance homed by partition plurality, and the records must stay
// byte-identical to the serial single-instance run. The non-forkable
// variant (a Chain containing Monitor) must fall back to one instance —
// off shard 0 is allowed — and match serial too.
func TestControllerShardingComponents(t *testing.T) {
	run := func(shards int, mk func() *controller.Chain) (shardRunResult, *Simulator) {
		topo := topoIslands()
		sim := New(Config{
			Topology: topo, Miss: dataplane.MissController, Shards: shards,
			Controller:     mk(),
			ControlLatency: 50 * simtime.Microsecond,
			Balance:        BalanceWeighted,
		})
		sim.Load(islandTraffic(topo))
		col := mustRun(sim, simtime.Time(simtime.Second))
		return snapshot(sim, col), sim
	}
	cases := []struct {
		name     string
		forkable bool
		mk       func() *controller.Chain
	}{
		{"forkable-reactive", true, func() *controller.Chain {
			return controller.NewChain(&controller.ReactiveMAC{})
		}},
		{"forkable-proactive", true, func() *controller.Chain {
			return controller.NewChain(&controller.ProactiveMAC{})
		}},
		{"nonforkable-monitor", false, func() *controller.Chain {
			return controller.NewChain(&controller.ReactiveMAC{},
				&controller.Monitor{Every: 100 * simtime.Millisecond})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, _ := run(0, tc.mk)
			if serial.mods == 0 {
				t.Fatal("control plane installed nothing")
			}
			for _, shards := range []int{2, 4} {
				got, sim := run(shards, tc.mk)
				diffRuns(t, tc.name, serial, got, shards)
				if sim.nshards <= 1 {
					t.Fatalf("shards=%d fell back to serial", shards)
				}
				if sim.ncomp != 2 {
					t.Fatalf("ncomp = %d, want 2", sim.ncomp)
				}
				if tc.forkable {
					if sim.ctrlBy[0] == sim.ctrlBy[1] {
						t.Error("forkable controller shares one instance across components")
					}
				} else if sim.ctrlBy[0] != sim.ctrlBy[1] {
					t.Error("non-forkable controller was forked")
				}
			}
		})
	}
}

// topoIslands exists so the closure above rebuilds a fresh topology per
// run (Simulators mutate link state in place).
func topoIslands() *netgraph.Topology { return twoIslands() }

// Serial reference for the fuzzed steal schedules, computed once.
var (
	stealFuzzOnce sync.Once
	stealFuzzRef  shardRunResult
)

// FuzzStealSchedule is the pinned invariant of window-barrier stealing:
// ANY legal steal schedule — arbitrary victims, arbitrary destinations,
// arbitrary barriers, including moves the validator rejects — yields
// records byte-identical to the serial reference. The fuzzer drives
// stealScript directly, bypassing the policy thresholds.
func FuzzStealSchedule(f *testing.F) {
	f.Add([]byte{})                          // no steals
	f.Add([]byte{3, 0, 1})                   // one early move
	f.Add([]byte{0, 0, 1, 0, 0, 2, 0, 0, 3}) // same victim, every round
	f.Add([]byte{1, 5, 0, 2, 9, 3, 7, 200, 250, 9, 9, 9})
	f.Add([]byte{4, 1, 2, 4, 1, 2, 4, 2, 1, 12, 30, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		stealFuzzOnce.Do(func() { stealFuzzRef = runGolden(0) })
		topo, tr := goldenFatTree()
		sim := New(Config{
			Topology: topo, Miss: dataplane.MissDrop, Shards: 4,
			Balance:    BalanceSteal,
			StatsEvery: 20 * simtime.Millisecond,
		})
		installMACRoutes(sim.Network())
		sim.Load(tr)
		switches := topo.Switches()
		type choiceAt struct {
			round int
			c     stealChoice
		}
		var sched []choiceAt
		for i := 0; i+2 < len(data); i += 3 {
			sched = append(sched, choiceAt{
				round: int(data[i] % 16),
				c: stealChoice{
					sw:   switches[int(data[i+1])%len(switches)],
					dest: int32(data[i+2] % 5), // %5: includes an out-of-range shard
				},
			})
		}
		sim.stealScript = func(round int) []stealChoice {
			var out []stealChoice
			for _, s := range sched {
				if s.round == round%16 {
					out = append(out, s.c)
				}
			}
			return out
		}
		col := mustRun(sim, simtime.Time(2*simtime.Second))
		diffRuns(t, "fuzz-steal", stealFuzzRef, snapshot(sim, col), 4)
	})
}
