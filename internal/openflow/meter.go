package openflow

import "fmt"

// Meter is a rate limiter. In the flow-level model a meter acts as a
// virtual bottleneck of RateBps shared by all flows currently passing
// through it: the bandwidth allocator treats it exactly like a link of that
// capacity, which reproduces policing behaviour (aggregate through the
// meter never exceeds the configured rate; excess demand is "dropped",
// which TCP-modeled flows additionally interpret as loss).
type Meter struct {
	ID      MeterID
	RateBps float64

	// Counters.
	Flows        uint64  // flows that ever passed the meter
	ThrottledBps float64 // current aggregate demand beyond the rate (updated by the allocator)
	DroppedBits  float64 // cumulative bits policed away
}

// MeterTable holds a switch's meters.
type MeterTable struct {
	meters map[MeterID]*Meter
}

// NewMeterTable returns an empty meter table.
func NewMeterTable() *MeterTable { return &MeterTable{meters: make(map[MeterID]*Meter)} }

// Add installs or replaces a meter. Meter ID 0 is reserved.
func (t *MeterTable) Add(m *Meter) error {
	if m.ID == 0 {
		return fmt.Errorf("openflow: meter id 0 is reserved")
	}
	if m.RateBps <= 0 {
		return fmt.Errorf("openflow: meter %d has non-positive rate %g", m.ID, m.RateBps)
	}
	t.meters[m.ID] = m
	return nil
}

// Get returns the meter with the given ID, or nil.
func (t *MeterTable) Get(id MeterID) *Meter { return t.meters[id] }

// Delete removes a meter, reporting whether it existed.
func (t *MeterTable) Delete(id MeterID) bool {
	if _, ok := t.meters[id]; !ok {
		return false
	}
	delete(t.meters, id)
	return true
}

// Len returns the number of installed meters.
func (t *MeterTable) Len() int { return len(t.meters) }
