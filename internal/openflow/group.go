package openflow

import (
	"fmt"

	"horse/internal/netgraph"
)

// GroupType discriminates group semantics, mirroring OpenFlow 1.3.
type GroupType uint8

// Group types.
const (
	// GroupAll executes every bucket (multicast). For flow-level
	// simulation this replicates the flow onto each bucket's output.
	GroupAll GroupType = iota
	// GroupSelect executes one bucket chosen by flow hash, weighted by
	// bucket weight — the load-balancing primitive.
	GroupSelect
	// GroupFastFailover executes the first bucket whose watch port is
	// live.
	GroupFastFailover
)

func (g GroupType) String() string {
	switch g {
	case GroupAll:
		return "all"
	case GroupSelect:
		return "select"
	case GroupFastFailover:
		return "ff"
	}
	return fmt.Sprintf("grouptype(%d)", uint8(g))
}

// Bucket is one action set within a group.
type Bucket struct {
	// Weight biases selection in GroupSelect groups; zero means 1.
	Weight uint32
	// WatchPort gates the bucket in GroupFastFailover groups: the bucket
	// is live iff the port's link is up. NoPort means always live.
	WatchPort netgraph.PortNum
	Actions   []Action

	// Counters.
	Packets uint64
	Bytes   uint64
}

func (b *Bucket) weight() uint64 {
	if b.Weight == 0 {
		return 1
	}
	return uint64(b.Weight)
}

// Group is a group-table entry.
type Group struct {
	ID      GroupID
	Type    GroupType
	Buckets []*Bucket

	// Counters.
	Packets uint64
	Bytes   uint64
}

// mix64 is a splitmix64-style finalizer. Flow-key hashes concentrate their
// entropy unevenly across bits (FNV parity is a linear function of the
// input), so bucket selection mixes before reducing modulo the weight sum.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SelectBucket picks the bucket for a flow with the given hash, consulting
// live to skip dead buckets (live may be nil, meaning all live). It returns
// nil when no live bucket exists. Selection is deterministic in the hash:
// weighted rendezvous over the bucket index, so bucket sets that differ only
// in dead buckets map flows consistently.
func (g *Group) SelectBucket(hash uint64, live func(*Bucket) bool) *Bucket {
	hash = mix64(hash)
	switch g.Type {
	case GroupSelect:
		var total uint64
		for _, b := range g.Buckets {
			if live == nil || live(b) {
				total += b.weight()
			}
		}
		if total == 0 {
			return nil
		}
		target := hash % total
		var acc uint64
		for _, b := range g.Buckets {
			if live != nil && !live(b) {
				continue
			}
			acc += b.weight()
			if target < acc {
				return b
			}
		}
		return nil
	case GroupFastFailover:
		for _, b := range g.Buckets {
			if live == nil || live(b) {
				return b
			}
		}
		return nil
	default: // GroupAll has no single selection
		return nil
	}
}

// GroupTable holds a switch's groups.
type GroupTable struct {
	groups map[GroupID]*Group
}

// NewGroupTable returns an empty group table.
func NewGroupTable() *GroupTable { return &GroupTable{groups: make(map[GroupID]*Group)} }

// Add installs or replaces a group. Group ID 0 is reserved.
func (t *GroupTable) Add(g *Group) error {
	if g.ID == 0 {
		return fmt.Errorf("openflow: group id 0 is reserved")
	}
	t.groups[g.ID] = g
	return nil
}

// Get returns the group with the given ID, or nil.
func (t *GroupTable) Get(id GroupID) *Group { return t.groups[id] }

// Delete removes a group, reporting whether it existed.
func (t *GroupTable) Delete(id GroupID) bool {
	if _, ok := t.groups[id]; !ok {
		return false
	}
	delete(t.groups, id)
	return true
}

// Len returns the number of installed groups.
func (t *GroupTable) Len() int { return len(t.groups) }
