package openflow

import (
	"testing"
	"testing/quick"

	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/simtime"
)

func key(dstPort uint16) header.FlowKey {
	return header.FlowKey{
		EthSrc:  header.MACFromUint64(1),
		EthDst:  header.MACFromUint64(2),
		EthType: header.EthTypeIPv4,
		IPSrc:   header.IPv4FromUint32(0x0a000001),
		IPDst:   header.IPv4FromUint32(0x0a000002),
		Proto:   header.ProtoTCP,
		SrcPort: 40000,
		DstPort: dstPort,
	}
}

func TestTableMissOnEmpty(t *testing.T) {
	tb := NewFlowTable()
	if e := tb.Lookup(key(80)); e != nil {
		t.Fatalf("empty table matched: %v", e)
	}
	if tb.Lookups != 1 || tb.Matched != 0 {
		t.Errorf("counters = %d/%d, want 1/0", tb.Lookups, tb.Matched)
	}
}

func TestPriorityOrder(t *testing.T) {
	tb := NewFlowTable()
	low := &FlowEntry{Priority: 10, Match: header.MatchAll, Instr: Apply(Output(1))}
	high := &FlowEntry{Priority: 100, Match: header.Match{}.WithDstPort(80), Instr: Apply(Output(2))}
	tb.Add(low, 0)
	tb.Add(high, 0)
	if got := tb.Lookup(key(80)); got != high {
		t.Errorf("high-priority specific rule should win, got %v", got)
	}
	if got := tb.Lookup(key(443)); got != low {
		t.Errorf("fallback should win for non-80, got %v", got)
	}
}

func TestTieBreakInsertionOrder(t *testing.T) {
	tb := NewFlowTable()
	a := &FlowEntry{Priority: 5, Match: header.Match{}.WithProto(header.ProtoTCP)}
	b := &FlowEntry{Priority: 5, Match: header.Match{}.WithDstPort(80)}
	tb.Add(a, 0)
	tb.Add(b, 0)
	if got := tb.Lookup(key(80)); got != a {
		t.Error("equal priority must resolve to first-installed")
	}
}

func TestAddReplacesIdentical(t *testing.T) {
	tb := NewFlowTable()
	m := header.Match{}.WithDstPort(80)
	tb.Add(&FlowEntry{Priority: 7, Match: m, Instr: Apply(Output(1))}, 0)
	tb.Add(&FlowEntry{Priority: 7, Match: m, Instr: Apply(Output(9))}, 5)
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", tb.Len())
	}
	e := tb.Lookup(key(80))
	if e.Instr.Actions[0].Port != 9 {
		t.Error("replacement did not take effect")
	}
}

func TestDeleteNonStrict(t *testing.T) {
	tb := NewFlowTable()
	tb.Add(&FlowEntry{Priority: 1, Match: header.Match{}.WithDstPort(80)}, 0)
	tb.Add(&FlowEntry{Priority: 2, Match: header.Match{}.WithDstPort(80).WithProto(header.ProtoTCP)}, 0)
	tb.Add(&FlowEntry{Priority: 3, Match: header.Match{}.WithDstPort(443)}, 0)
	removed := tb.Delete(header.Match{}.WithDstPort(80), 0)
	if len(removed) != 2 {
		t.Fatalf("removed %d, want 2 (all port-80 rules)", len(removed))
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
	// Wildcard delete clears everything.
	removed = tb.Delete(header.MatchAll, 0)
	if len(removed) != 1 || tb.Len() != 0 {
		t.Error("wildcard delete should clear the table")
	}
}

func TestDeleteByCookie(t *testing.T) {
	tb := NewFlowTable()
	tb.Add(&FlowEntry{Priority: 1, Match: header.Match{}.WithDstPort(80), Cookie: 7}, 0)
	tb.Add(&FlowEntry{Priority: 1, Match: header.Match{}.WithDstPort(443), Cookie: 8}, 0)
	removed := tb.Delete(header.MatchAll, 7)
	if len(removed) != 1 || removed[0].Cookie != 7 {
		t.Errorf("cookie-scoped delete removed %v", removed)
	}
}

func TestDeleteStrict(t *testing.T) {
	tb := NewFlowTable()
	m := header.Match{}.WithDstPort(80)
	tb.Add(&FlowEntry{Priority: 1, Match: m}, 0)
	tb.Add(&FlowEntry{Priority: 2, Match: m}, 0)
	if e := tb.DeleteStrict(m, 2); e == nil || e.Priority != 2 {
		t.Error("strict delete missed")
	}
	if tb.Len() != 1 {
		t.Error("strict delete removed too much")
	}
	if tb.DeleteStrict(m, 99) != nil {
		t.Error("strict delete matched a ghost")
	}
}

func TestTimeouts(t *testing.T) {
	tb := NewFlowTable()
	e := &FlowEntry{Priority: 1, Match: header.MatchAll, IdleTimeout: 10 * simtime.Second}
	tb.Add(e, 0)
	if e.Expired(5 * 1e9) {
		t.Error("expired too early")
	}
	if !e.Expired(simtime.Time(10 * simtime.Second)) {
		t.Error("not expired at idle timeout")
	}
	e.LastUsed = simtime.Time(8 * simtime.Second)
	if e.Expired(simtime.Time(15 * simtime.Second)) {
		t.Error("idle timer should reset on use")
	}
	hard := &FlowEntry{Priority: 2, Match: header.Match{}.WithDstPort(1), HardTimeout: 20 * simtime.Second}
	tb.Add(hard, 0)
	hard.LastUsed = simtime.Time(19 * simtime.Second)
	if !hard.Expired(simtime.Time(20 * simtime.Second)) {
		t.Error("hard timeout must fire regardless of use")
	}
	removed := tb.Expire(simtime.Time(30 * simtime.Second))
	if len(removed) != 2 {
		t.Errorf("Expire removed %d, want 2", len(removed))
	}
}

func TestExpiresAtAndNextExpiry(t *testing.T) {
	tb := NewFlowTable()
	if tb.NextExpiry() != simtime.Never {
		t.Error("empty table must never expire")
	}
	e := &FlowEntry{Priority: 1, Match: header.MatchAll}
	tb.Add(e, 0)
	if e.ExpiresAt() != simtime.Never {
		t.Error("no-timeout entry must never expire")
	}
	e2 := &FlowEntry{Priority: 2, Match: header.Match{}.WithDstPort(5), IdleTimeout: simtime.Second, HardTimeout: 3 * simtime.Second}
	tb.Add(e2, simtime.Time(10*simtime.Second))
	want := simtime.Time(11 * simtime.Second) // idle fires first
	if got := e2.ExpiresAt(); got != want {
		t.Errorf("ExpiresAt = %v, want %v", got, want)
	}
	if got := tb.NextExpiry(); got != want {
		t.Errorf("NextExpiry = %v, want %v", got, want)
	}
}

func TestGroupSelectWeighted(t *testing.T) {
	g := &Group{ID: 1, Type: GroupSelect, Buckets: []*Bucket{
		{Weight: 3, Actions: []Action{Output(1)}},
		{Weight: 1, Actions: []Action{Output(2)}},
	}}
	counts := map[netgraph.PortNum]int{}
	for h := uint64(0); h < 4000; h++ {
		b := g.SelectBucket(h, nil)
		if b == nil {
			t.Fatal("nil bucket with live buckets present")
		}
		counts[b.Actions[0].Port]++
	}
	// Weight 3:1 should give roughly 3000:1000 (mixing makes it
	// statistical, not exact).
	if counts[1] < 2700 || counts[1] > 3300 || counts[1]+counts[2] != 4000 {
		t.Errorf("weighted selection = %v, want ~3000/1000", counts)
	}
}

func TestGroupSelectLiveness(t *testing.T) {
	g := &Group{ID: 1, Type: GroupSelect, Buckets: []*Bucket{
		{WatchPort: 1, Actions: []Action{Output(1)}},
		{WatchPort: 2, Actions: []Action{Output(2)}},
	}}
	deadPort1 := func(b *Bucket) bool { return b.WatchPort != 1 }
	for h := uint64(0); h < 100; h++ {
		b := g.SelectBucket(h, deadPort1)
		if b == nil || b.Actions[0].Port != 2 {
			t.Fatal("selection did not avoid dead bucket")
		}
	}
	allDead := func(*Bucket) bool { return false }
	if g.SelectBucket(0, allDead) != nil {
		t.Error("all-dead group should select nil")
	}
}

func TestGroupFastFailover(t *testing.T) {
	g := &Group{ID: 2, Type: GroupFastFailover, Buckets: []*Bucket{
		{WatchPort: 1, Actions: []Action{Output(1)}},
		{WatchPort: 2, Actions: []Action{Output(2)}},
	}}
	if b := g.SelectBucket(0, nil); b.Actions[0].Port != 1 {
		t.Error("FF should pick first live bucket")
	}
	dead1 := func(b *Bucket) bool { return b.WatchPort != 1 }
	if b := g.SelectBucket(0, dead1); b.Actions[0].Port != 2 {
		t.Error("FF should fail over to second bucket")
	}
}

func TestGroupSelectDeterministic(t *testing.T) {
	g := &Group{ID: 1, Type: GroupSelect, Buckets: []*Bucket{
		{Actions: []Action{Output(1)}},
		{Actions: []Action{Output(2)}},
		{Actions: []Action{Output(3)}},
	}}
	for h := uint64(0); h < 50; h++ {
		a := g.SelectBucket(h, nil)
		b := g.SelectBucket(h, nil)
		if a != b {
			t.Fatal("selection not deterministic")
		}
	}
}

func TestGroupTable(t *testing.T) {
	gt := NewGroupTable()
	if err := gt.Add(&Group{ID: 0}); err == nil {
		t.Error("group 0 must be rejected")
	}
	if err := gt.Add(&Group{ID: 5, Type: GroupSelect}); err != nil {
		t.Fatal(err)
	}
	if gt.Get(5) == nil || gt.Len() != 1 {
		t.Error("group not stored")
	}
	if !gt.Delete(5) || gt.Delete(5) {
		t.Error("delete semantics wrong")
	}
}

func TestMeterTable(t *testing.T) {
	mt := NewMeterTable()
	if err := mt.Add(&Meter{ID: 0, RateBps: 100}); err == nil {
		t.Error("meter 0 must be rejected")
	}
	if err := mt.Add(&Meter{ID: 1, RateBps: -5}); err == nil {
		t.Error("negative rate must be rejected")
	}
	if err := mt.Add(&Meter{ID: 1, RateBps: 5e8}); err != nil {
		t.Fatal(err)
	}
	if m := mt.Get(1); m == nil || m.RateBps != 5e8 {
		t.Error("meter not stored")
	}
	if !mt.Delete(1) || mt.Delete(1) {
		t.Error("delete semantics wrong")
	}
}

func TestActionStrings(t *testing.T) {
	cases := map[string]Action{
		"output:3":          Output(3),
		"output:controller": ToController(),
		"output:flood":      Flood(),
		"drop":              Drop(),
		"group:7":           GroupAction(7),
		"set_vlan:100":      SetVLAN(100),
		"pop_vlan":          PopVLAN(),
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestInstructionBuilders(t *testing.T) {
	in := Apply(Output(1)).WithMeter(3).WithGoto(2)
	if in.Meter != 3 || !in.HasGoto || in.GotoTable != 2 || len(in.Actions) != 1 {
		t.Errorf("builder chain produced %+v", in)
	}
}

// Property: Lookup always returns the max-priority matching entry.
func TestLookupMaxPriorityProperty(t *testing.T) {
	prop := func(ports [8]uint16, prios [8]uint8) bool {
		tb := NewFlowTable()
		for i := range ports {
			tb.Add(&FlowEntry{
				Priority: int(prios[i]),
				Match:    header.Match{}.WithDstPort(ports[i] % 4), // force overlaps
				Cookie:   uint64(i + 1),
			}, 0)
		}
		k := key(1)
		got := tb.Lookup(k)
		// Reference: brute-force scan.
		var best *FlowEntry
		for _, e := range tb.Entries() {
			if !e.Match.Matches(k) {
				continue
			}
			if best == nil || e.Priority > best.Priority {
				best = e
			}
		}
		if best == nil {
			return got == nil
		}
		return got != nil && got.Priority == best.Priority && got.Match.Matches(k)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup100Rules(b *testing.B) {
	tb := NewFlowTable()
	for i := 0; i < 100; i++ {
		tb.Add(&FlowEntry{Priority: i, Match: header.Match{}.WithDstPort(uint16(i))}, 0)
	}
	k := key(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(k)
	}
}
