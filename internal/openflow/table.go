package openflow

import (
	"fmt"
	"sort"

	"horse/internal/header"
	"horse/internal/simtime"
)

// FlowEntry is one rule in a flow table. Counters are maintained by the
// data plane as flows traverse the entry.
type FlowEntry struct {
	Priority int
	Match    header.Match
	Instr    Instructions

	// IdleTimeout evicts the entry after that long without a matching
	// flow; HardTimeout evicts unconditionally after install. Zero means
	// no timeout.
	IdleTimeout simtime.Duration
	HardTimeout simtime.Duration

	// Cookie is an opaque controller-chosen tag, useful for bulk deletes.
	Cookie uint64

	// Counters.
	Packets   uint64
	Bytes     uint64
	FlowCount uint64 // number of distinct data flows that matched

	Installed simtime.Time
	LastUsed  simtime.Time

	seq uint64 // insertion order, for deterministic tie-break
}

// ExpiresAt returns the earliest instant at which the entry must be
// re-examined for expiry, or simtime.Never if it has no timeouts.
func (e *FlowEntry) ExpiresAt() simtime.Time {
	t := simtime.Never
	if e.HardTimeout > 0 {
		t = e.Installed.Add(e.HardTimeout)
	}
	if e.IdleTimeout > 0 {
		idle := e.LastUsed.Add(e.IdleTimeout)
		if idle < t {
			t = idle
		}
	}
	return t
}

// Expired reports whether the entry should be evicted at time now.
func (e *FlowEntry) Expired(now simtime.Time) bool {
	if e.HardTimeout > 0 && now >= e.Installed.Add(e.HardTimeout) {
		return true
	}
	if e.IdleTimeout > 0 && now >= e.LastUsed.Add(e.IdleTimeout) {
		return true
	}
	return false
}

func (e *FlowEntry) String() string {
	return fmt.Sprintf("prio=%d match=[%s] actions=%v", e.Priority, e.Match, e.Instr.Actions)
}

// FlowTable is a single OpenFlow table: a priority-ordered rule list with
// wildcard matching. Lookup is linear over entries in (priority desc,
// insertion asc) order — the reference semantics; the simulator's flow-level
// abstraction keeps tables small enough that this is not the bottleneck,
// and correctness under arbitrary wildcards is what matters.
type FlowTable struct {
	entries []*FlowEntry
	nextSeq uint64

	// Lookup acceleration: the dominant rule shape at scale is an exact
	// match on EthDst (MAC forwarding), so entries constraining EthDst
	// exactly are bucketed by address; everything else stays in rest.
	// Both byDst buckets and rest preserve (priority desc, seq asc)
	// order, and Lookup merges the two streams.
	byDst map[header.MAC][]*FlowEntry
	rest  []*FlowEntry

	// Table counters.
	Lookups uint64
	Matched uint64
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable { return &FlowTable{byDst: make(map[header.MAC][]*FlowEntry)} }

func entryLess(a, b *FlowEntry) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

func insertSorted(list []*FlowEntry, e *FlowEntry) []*FlowEntry {
	pos := len(list)
	for pos > 0 && entryLess(e, list[pos-1]) {
		pos--
	}
	list = append(list, nil)
	copy(list[pos+1:], list[pos:])
	list[pos] = e
	return list
}

func (t *FlowTable) indexAdd(e *FlowEntry) {
	if e.Match.Has(header.FieldEthDst) {
		t.byDst[e.Match.EthDst] = insertSorted(t.byDst[e.Match.EthDst], e)
	} else {
		t.rest = insertSorted(t.rest, e)
	}
}

// rebuildIndex reconstructs the acceleration structures from entries; used
// after bulk mutations (Delete, Expire).
func (t *FlowTable) rebuildIndex() {
	t.byDst = make(map[header.MAC][]*FlowEntry)
	t.rest = nil
	for _, e := range t.entries {
		t.indexAdd(e)
	}
}

func (t *FlowTable) indexRemove(e *FlowEntry) {
	remove := func(list []*FlowEntry) []*FlowEntry {
		for i, x := range list {
			if x == e {
				return append(list[:i], list[i+1:]...)
			}
		}
		return list
	}
	if e.Match.Has(header.FieldEthDst) {
		t.byDst[e.Match.EthDst] = remove(t.byDst[e.Match.EthDst])
	} else {
		t.rest = remove(t.rest)
	}
}

// Len returns the number of installed entries.
func (t *FlowTable) Len() int { return len(t.entries) }

// Entries returns the entries in match order. The slice is shared; treat it
// as read-only.
func (t *FlowTable) Entries() []*FlowEntry { return t.entries }

// Add installs an entry. Per OpenFlow semantics, an existing entry with the
// same priority and identical match is replaced (its counters reset).
func (t *FlowTable) Add(e *FlowEntry, now simtime.Time) {
	e.Installed = now
	e.LastUsed = now
	for i, old := range t.entries {
		if old.Priority == e.Priority && old.Match == e.Match {
			e.seq = old.seq
			t.entries[i] = e
			t.indexRemove(old)
			t.indexAdd(e)
			return
		}
	}
	t.nextSeq++
	e.seq = t.nextSeq
	t.entries = append(t.entries, e)
	sort.SliceStable(t.entries, func(i, j int) bool { return entryLess(t.entries[i], t.entries[j]) })
	t.indexAdd(e)
}

// Lookup returns the highest-priority entry matching the key, or nil for a
// table miss. It updates table counters but not entry counters — the data
// plane owns those because a "packet count" at flow granularity depends on
// flow volume.
func (t *FlowTable) Lookup(key header.FlowKey) *FlowEntry {
	t.Lookups++
	// Merge the per-destination bucket with the rest list in priority
	// order, returning the first match encountered.
	bucket := t.byDst[key.EthDst]
	rest := t.rest
	for len(bucket) > 0 || len(rest) > 0 {
		var e *FlowEntry
		switch {
		case len(bucket) == 0:
			e, rest = rest[0], rest[1:]
		case len(rest) == 0:
			e, bucket = bucket[0], bucket[1:]
		case entryLess(bucket[0], rest[0]):
			e, bucket = bucket[0], bucket[1:]
		default:
			e, rest = rest[0], rest[1:]
		}
		if e.Match.Matches(key) {
			t.Matched++
			return e
		}
	}
	return nil
}

// Delete removes entries per OpenFlow non-strict semantics: every entry
// whose match is subsumed by m (and whose cookie matches cookieMask
// semantics — here, cookie==0 matches all) is removed. It returns the
// removed entries.
func (t *FlowTable) Delete(m header.Match, cookie uint64) []*FlowEntry {
	var kept, removed []*FlowEntry
	for _, e := range t.entries {
		if m.Subsumes(e.Match) && (cookie == 0 || e.Cookie == cookie) {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	if removed != nil {
		t.rebuildIndex()
	}
	return removed
}

// DeleteStrict removes the single entry with exactly this match and
// priority, returning it (or nil).
func (t *FlowTable) DeleteStrict(m header.Match, priority int) *FlowEntry {
	for i, e := range t.entries {
		if e.Priority == priority && e.Match == m {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			t.indexRemove(e)
			return e
		}
	}
	return nil
}

// Expire removes and returns all entries expired at time now.
func (t *FlowTable) Expire(now simtime.Time) []*FlowEntry {
	var kept, removed []*FlowEntry
	for _, e := range t.entries {
		if e.Expired(now) {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	t.entries = kept
	if removed != nil {
		t.rebuildIndex()
	}
	return removed
}

// NextExpiry returns the earliest ExpiresAt over all entries, or
// simtime.Never for a table with no timeouts.
func (t *FlowTable) NextExpiry() simtime.Time {
	min := simtime.Never
	for _, e := range t.entries {
		if x := e.ExpiresAt(); x < min {
			min = x
		}
	}
	return min
}
