package openflow

import (
	"fmt"

	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/simtime"
)

// Message is any control message exchanged between a switch and the
// controller. There is no wire encoding: the paper explicitly drops real
// OpenFlow connections to keep per-switch state small, so messages are
// plain values carried by simulator events with a modeled latency.
type Message interface {
	// Datapath returns the switch the message concerns.
	Datapath() netgraph.NodeID
}

// FlowModOp discriminates FlowMod operations.
type FlowModOp uint8

// FlowMod operations.
const (
	FlowAdd FlowModOp = iota
	FlowDelete
	FlowDeleteStrict
)

func (op FlowModOp) String() string {
	switch op {
	case FlowAdd:
		return "add"
	case FlowDelete:
		return "delete"
	case FlowDeleteStrict:
		return "delete_strict"
	}
	return fmt.Sprintf("flowmodop(%d)", uint8(op))
}

// FlowMod installs or removes flow entries on a switch.
type FlowMod struct {
	Switch   netgraph.NodeID
	Op       FlowModOp
	Table    TableID
	Priority int
	Match    header.Match
	Instr    Instructions

	IdleTimeout simtime.Duration
	HardTimeout simtime.Duration
	Cookie      uint64
}

// Datapath implements Message.
func (m *FlowMod) Datapath() netgraph.NodeID { return m.Switch }

// GroupModOp discriminates GroupMod operations.
type GroupModOp uint8

// GroupMod operations.
const (
	GroupAdd GroupModOp = iota
	GroupModify
	GroupDelete
)

// GroupMod installs, replaces or removes a group.
type GroupMod struct {
	Switch  netgraph.NodeID
	Op      GroupModOp
	GroupID GroupID
	Type    GroupType
	Buckets []*Bucket
}

// Datapath implements Message.
func (m *GroupMod) Datapath() netgraph.NodeID { return m.Switch }

// MeterModOp discriminates MeterMod operations.
type MeterModOp uint8

// MeterMod operations.
const (
	MeterAdd MeterModOp = iota
	MeterModify
	MeterDelete
)

// MeterMod installs, replaces or removes a meter.
type MeterMod struct {
	Switch  netgraph.NodeID
	Op      MeterModOp
	MeterID MeterID
	RateBps float64
}

// Datapath implements Message.
func (m *MeterMod) Datapath() netgraph.NodeID { return m.Switch }

// PacketInReason mirrors the OpenFlow reason field.
type PacketInReason uint8

// PacketIn reasons.
const (
	ReasonNoMatch PacketInReason = iota // table miss
	ReasonAction                        // explicit output:controller
)

// PacketIn notifies the controller of a flow the data plane could not (or
// was told not to) handle. At flow granularity one PacketIn stands for the
// first packet of a data flow.
type PacketIn struct {
	Switch netgraph.NodeID
	InPort netgraph.PortNum
	Key    header.FlowKey
	Reason PacketInReason
	Table  TableID
}

// Datapath implements Message.
func (m *PacketIn) Datapath() netgraph.NodeID { return m.Switch }

// PacketOut injects a flow's first packet back into the data plane with an
// explicit action list (typically Output to a chosen port, or Flood).
type PacketOut struct {
	Switch  netgraph.NodeID
	InPort  netgraph.PortNum
	Key     header.FlowKey
	Actions []Action
}

// Datapath implements Message.
func (m *PacketOut) Datapath() netgraph.NodeID { return m.Switch }

// PortStatus notifies the controller of a link state change.
type PortStatus struct {
	Switch netgraph.NodeID
	Port   netgraph.PortNum
	Up     bool
}

// Datapath implements Message.
func (m *PortStatus) Datapath() netgraph.NodeID { return m.Switch }

// FlowRemoved notifies the controller that a flow entry expired or was
// evicted (sent only for entries installed with notification requested; the
// simulator sends it for all timeout evictions, which is what the
// monitoring module wants anyway).
type FlowRemoved struct {
	Switch   netgraph.NodeID
	Table    TableID
	Match    header.Match
	Priority int
	Cookie   uint64
	Packets  uint64
	Bytes    uint64
	Idle     bool // true if idle timeout, false if hard
}

// Datapath implements Message.
func (m *FlowRemoved) Datapath() netgraph.NodeID { return m.Switch }

// PortStatsRequest asks for counters of one port (or all, with NoPort).
type PortStatsRequest struct {
	Switch netgraph.NodeID
	Port   netgraph.PortNum // netgraph.NoPort = all ports
}

// Datapath implements Message.
func (m *PortStatsRequest) Datapath() netgraph.NodeID { return m.Switch }

// PortStats is one port's counters at a given instant. TxBits/RxBits are
// cumulative; TxRateBps/RxRateBps are the instantaneous offered rates, the
// "link bandwidth" measurement primitive the paper calls out.
type PortStats struct {
	Port      netgraph.PortNum
	TxBits    float64
	RxBits    float64
	TxRateBps float64
	RxRateBps float64
	LinkBps   float64 // capacity, so utilization = TxRateBps/LinkBps
	Up        bool
}

// PortStatsReply carries the counters back to the controller.
type PortStatsReply struct {
	Switch netgraph.NodeID
	At     simtime.Time
	Stats  []PortStats
}

// Datapath implements Message.
func (m *PortStatsReply) Datapath() netgraph.NodeID { return m.Switch }

// FlowStatsRequest asks for the counters of flow entries matching a filter.
type FlowStatsRequest struct {
	Switch netgraph.NodeID
	Table  TableID
	Match  header.Match // filter; zero Match selects everything
}

// Datapath implements Message.
func (m *FlowStatsRequest) Datapath() netgraph.NodeID { return m.Switch }

// FlowStats is the counter snapshot of one entry.
type FlowStats struct {
	Table    TableID
	Priority int
	Match    header.Match
	Cookie   uint64
	Packets  uint64
	Bytes    uint64
	Duration simtime.Duration
}

// FlowStatsReply carries entry counters back to the controller.
type FlowStatsReply struct {
	Switch netgraph.NodeID
	At     simtime.Time
	Stats  []FlowStats
}

// Datapath implements Message.
func (m *FlowStatsReply) Datapath() netgraph.NodeID { return m.Switch }

// BarrierRequest/BarrierReply give controllers an ordering fence.
type BarrierRequest struct {
	Switch netgraph.NodeID
	Xid    uint64
}

// Datapath implements Message.
func (m *BarrierRequest) Datapath() netgraph.NodeID { return m.Switch }

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply struct {
	Switch netgraph.NodeID
	Xid    uint64
}

// Datapath implements Message.
func (m *BarrierReply) Datapath() netgraph.NodeID { return m.Switch }
