// Package openflow implements the abstracted OpenFlow mechanics of Horse:
// flow tables with priorities and wildcards, group tables for multipath,
// meter tables for rate limiting, per-entry/table/port counters, and the
// control messages exchanged with the controller. Following the paper, there
// are no real OpenFlow connections — messages are plain values delivered
// in-simulator — but the forwarding semantics (match priority, group bucket
// selection, meter bands, timeouts) follow the OpenFlow 1.3 model closely
// enough that real policies translate directly.
package openflow

import (
	"fmt"

	"horse/internal/netgraph"
)

// TableID identifies a flow table within a switch pipeline.
type TableID uint8

// GroupID identifies a group-table entry. 0 is reserved (no group).
type GroupID uint32

// MeterID identifies a meter-table entry. 0 is reserved (no meter).
type MeterID uint32

// Reserved output "ports" (values high enough not to clash with real ports).
const (
	// PortController sends the flow to the controller as a PacketIn.
	PortController netgraph.PortNum = 0xfffffffd
	// PortFlood outputs on all up ports except the ingress.
	PortFlood netgraph.PortNum = 0xfffffffb
	// PortDrop explicitly discards the flow. An empty action list also
	// drops, but an explicit action makes blackholing policies legible.
	PortDrop netgraph.PortNum = 0xfffffffe
)

// ActionType discriminates Action variants.
type ActionType uint8

// Action types.
const (
	ActionOutput  ActionType = iota // output to Port
	ActionGroup                     // indirect through group Group
	ActionSetVLAN                   // rewrite the VLAN tag to VLAN
	ActionPopVLAN                   // strip the VLAN tag
)

// Action is one element of an apply-actions list.
type Action struct {
	Type  ActionType
	Port  netgraph.PortNum // ActionOutput
	Group GroupID          // ActionGroup
	VLAN  uint16           // ActionSetVLAN
}

// Output returns an output action to the given port.
func Output(p netgraph.PortNum) Action { return Action{Type: ActionOutput, Port: p} }

// ToController returns an output action that punts to the controller.
func ToController() Action { return Output(PortController) }

// Drop returns an explicit drop action.
func Drop() Action { return Output(PortDrop) }

// Flood returns an output action flooding all ports except the ingress.
func Flood() Action { return Output(PortFlood) }

// GroupAction returns an action indirecting through a group.
func GroupAction(g GroupID) Action { return Action{Type: ActionGroup, Group: g} }

// SetVLAN returns a VLAN rewrite action.
func SetVLAN(v uint16) Action { return Action{Type: ActionSetVLAN, VLAN: v} }

// PopVLAN returns a VLAN strip action.
func PopVLAN() Action { return Action{Type: ActionPopVLAN} }

func (a Action) String() string {
	switch a.Type {
	case ActionOutput:
		switch a.Port {
		case PortController:
			return "output:controller"
		case PortFlood:
			return "output:flood"
		case PortDrop:
			return "drop"
		}
		return fmt.Sprintf("output:%d", a.Port)
	case ActionGroup:
		return fmt.Sprintf("group:%d", a.Group)
	case ActionSetVLAN:
		return fmt.Sprintf("set_vlan:%d", a.VLAN)
	case ActionPopVLAN:
		return "pop_vlan"
	}
	return fmt.Sprintf("action(%d)", a.Type)
}

// Instructions is the instruction set attached to a flow entry: an optional
// meter, an apply-actions list, and an optional goto-table.
type Instructions struct {
	// Meter, if nonzero, subjects matching traffic to the meter first.
	Meter MeterID
	// Actions are applied in order.
	Actions []Action
	// GotoTable, if set, continues pipeline processing at that table.
	GotoTable TableID
	HasGoto   bool
}

// Apply returns instructions with just an action list.
func Apply(actions ...Action) Instructions { return Instructions{Actions: actions} }

// WithMeter returns a copy of the instructions that meters traffic first.
func (in Instructions) WithMeter(m MeterID) Instructions { in.Meter = m; return in }

// WithGoto returns a copy of the instructions that continues at table t.
func (in Instructions) WithGoto(t TableID) Instructions {
	in.GotoTable, in.HasGoto = t, true
	return in
}
