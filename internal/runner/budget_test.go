package runner

import (
	"sync"
	"testing"
)

func TestBudgetAcquireRelease(t *testing.T) {
	b := NewBudget(4)
	if b.Cap() != 4 || b.Used() != 0 {
		t.Fatalf("fresh budget cap=%d used=%d", b.Cap(), b.Used())
	}
	if !b.TryAcquire(3) {
		t.Fatal("3 of 4 should fit")
	}
	if b.TryAcquire(2) {
		t.Fatal("2 more over a 4-cap with 3 used must not fit")
	}
	if !b.TryAcquire(1) {
		t.Fatal("the last unit should fit")
	}
	if b.Used() != 4 {
		t.Fatalf("used = %d, want 4", b.Used())
	}
	b.Release(3)
	if !b.TryAcquire(2) {
		t.Fatal("2 should fit after releasing 3")
	}
}

func TestBudgetPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("NewBudget(0)", func() { NewBudget(0) })
	b := NewBudget(2)
	expectPanic("TryAcquire(0)", func() { b.TryAcquire(0) })
	expectPanic("Release(0)", func() { b.Release(0) })
	expectPanic("over-release", func() { b.Release(1) })
}

func TestBudgetConcurrent(t *testing.T) {
	const cap, loops = 8, 200
	b := NewBudget(cap)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := 0
			for i := 0; i < loops; i++ {
				if b.TryAcquire(2) {
					held += 2
				}
				if held > 0 {
					b.Release(2)
					held -= 2
				}
			}
			if held > 0 {
				b.Release(held)
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 {
		t.Fatalf("leaked %d units", b.Used())
	}
}
