package runner

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// shuffledSleepCells returns cells whose completion order is scrambled by
// random sleeps; each returns its own index.
func shuffledSleepCells(n int, seed int64) []Cell[int] {
	rng := rand.New(rand.NewSource(seed))
	cells := make([]Cell[int], n)
	for i := range cells {
		d := time.Duration(rng.Intn(3)) * time.Millisecond
		idx := i
		cells[i] = Cell[int]{
			ID:  fmt.Sprintf("cell-%d", i),
			Run: func() int { time.Sleep(d); return idx },
		}
	}
	return cells
}

// TestOrderDeterminism: results land at their cell's position no matter
// when the cell finishes.
func TestOrderDeterminism(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got := Run(shuffledSleepCells(32, int64(workers)), workers)
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestSingleWorkerEquivalence: one worker and many workers produce
// identical result slices.
func TestSingleWorkerEquivalence(t *testing.T) {
	seq := Run(shuffledSleepCells(24, 7), 1)
	par := Run(shuffledSleepCells(24, 7), 8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sequential %v != parallel %v", seq, par)
	}
}

// TestPanicPropagation: a panicking cell surfaces as *CellPanic naming
// the cell, after the pool drains.
func TestPanicPropagation(t *testing.T) {
	cells := []Cell[int]{
		{ID: "ok-0", Run: func() int { return 0 }},
		{ID: "boom", Run: func() int { panic("kaboom") }},
		{ID: "ok-2", Run: func() int { return 2 }},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic propagated")
		}
		cp, ok := r.(*CellPanic)
		if !ok {
			t.Fatalf("recovered %T, want *CellPanic", r)
		}
		if cp.ID != "boom" || cp.Value != "kaboom" {
			t.Errorf("CellPanic = %q/%v", cp.ID, cp.Value)
		}
		if len(cp.Stack) == 0 {
			t.Error("CellPanic carries no stack")
		}
	}()
	Run(cells, 2)
}

// TestPanicStopsScheduling: after a panic no NEW cells are claimed
// (in-flight ones finish). With one worker the panic in cell 0 must
// prevent every later cell from running.
func TestPanicStopsScheduling(t *testing.T) {
	var ran atomic.Int32
	cells := []Cell[int]{
		{ID: "boom", Run: func() int { panic("x") }},
	}
	for i := 0; i < 8; i++ {
		cells = append(cells, Cell[int]{ID: fmt.Sprintf("late-%d", i), Run: func() int {
			ran.Add(1)
			return 0
		}})
	}
	func() {
		defer func() { recover() }()
		Run(cells, 1)
	}()
	if got := ran.Load(); got != 0 {
		t.Errorf("%d cells ran after the panic with 1 worker", got)
	}
}

// TestWorkerBound: at most `workers` cells execute concurrently.
func TestWorkerBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	cells := make([]Cell[int], 24)
	for i := range cells {
		cells[i] = Cell[int]{ID: fmt.Sprintf("c%d", i), Run: func() int {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return 0
		}}
	}
	Run(cells, workers)
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent cells, bound is %d", p, workers)
	}
}

func TestEmptyAndDefaults(t *testing.T) {
	if got := Run[int](nil, 4); got != nil {
		t.Errorf("empty cell list returned %v", got)
	}
	// workers <= 0 falls back to GOMAXPROCS; workers > n is clamped.
	got := Run([]Cell[int]{{ID: "only", Run: func() int { return 42 }}}, 0)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("defaulted run = %v", got)
	}
	clamped := Run([]Cell[string]{{ID: "a", Run: func() string { return "a" }}}, 99)
	if len(clamped) != 1 || clamped[0] != "a" {
		t.Errorf("clamped run = %v", clamped)
	}
}
