package runner

import (
	"fmt"
	"sync"
)

// Budget is a shared capacity account for long-lived consumers of the
// worker pool — the admission-control backing of the service daemon,
// where every running session holds as many units as the shard workers
// it fans across. Unlike Run, which owns its workers for the duration of
// one batch, a Budget tracks units across independent acquire/release
// lifetimes, so a session manager can decide deterministically whether
// the next queued session fits before it starts.
//
// Budget is safe for concurrent use. Acquisition is non-blocking by
// design (TryAcquire): callers that need queueing implement their own
// order on top, which keeps admission policy — FIFO, priorities,
// rejection — out of the accounting.
type Budget struct {
	mu   sync.Mutex
	cap  int
	used int
}

// NewBudget returns a budget of n units. n <= 0 panics: a zero-capacity
// budget could never admit anything, which is always a configuration
// bug.
func NewBudget(n int) *Budget {
	if n <= 0 {
		panic(fmt.Sprintf("runner: non-positive budget capacity %d", n))
	}
	return &Budget{cap: n}
}

// TryAcquire takes n units if they are available and reports whether it
// did. n <= 0 panics.
func (b *Budget) TryAcquire(n int) bool {
	if n <= 0 {
		panic(fmt.Sprintf("runner: non-positive acquire %d", n))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n > b.cap {
		return false
	}
	b.used += n
	return true
}

// Release returns n previously acquired units. Releasing more than is
// in use panics — it means an accounting bug, and silently clamping
// would hide a double release.
func (b *Budget) Release(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("runner: non-positive release %d", n))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.used {
		panic(fmt.Sprintf("runner: release %d with %d in use", n, b.used))
	}
	b.used -= n
}

// Used returns the units currently held.
func (b *Budget) Used() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Cap returns the budget capacity.
func (b *Budget) Cap() int { return b.cap }
