// Package runner fans independent experiment cells across a bounded
// worker pool with deterministic result ordering.
//
// A Cell is one self-contained unit of work — in Horse, typically one
// simulation run: a grid point of the E2 scalability sweep, a member
// count of the E4 IXP replay, a config row of E5, an ablation arm of E6.
// Cells carry stable string IDs so logs, panics, and result tables can
// name the work regardless of which worker executed it or when it
// finished. Results always come back in cell order, so a table built
// from them is byte-identical whether the pool ran with one worker or
// many.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Cell is one independent unit of work with a stable identifier.
type Cell[T any] struct {
	ID  string
	Run func() T
}

// CellPanic wraps a panic raised inside a cell with the cell's ID and
// stack, so a crash in a fanned-out simulation names its grid point.
type CellPanic struct {
	ID    string
	Value any
	Stack []byte
}

func (p *CellPanic) Error() string {
	return fmt.Sprintf("runner: cell %q panicked: %v", p.ID, p.Value)
}

// Run executes every cell on at most workers goroutines and returns the
// results in cell order, regardless of completion order. workers <= 0
// means runtime.GOMAXPROCS(0). Cells are claimed in order, so with one
// worker execution is strictly sequential.
//
// If a cell panics, the pool stops claiming new cells, waits for
// in-flight cells to finish, and re-panics in the caller with a
// *CellPanic carrying the first offending cell's ID, panic value, and
// stack. Cells never claimed are skipped; their results are zero values.
func Run[T any](cells []Cell[T], workers int) []T {
	n := len(cells)
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)

	var (
		next      atomic.Int64
		failed    atomic.Bool
		panicOnce sync.Once
		cellPanic *CellPanic
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								cellPanic = &CellPanic{ID: cells[i].ID, Value: r, Stack: debug.Stack()}
							})
							failed.Store(true)
						}
					}()
					results[i] = cells[i].Run()
				}()
			}
		}()
	}
	wg.Wait()
	if cellPanic != nil {
		panic(cellPanic)
	}
	return results
}
