package dataplane

import (
	"testing"

	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
)

func testKey(srcHost, dstHost uint64, dstPort uint16) header.FlowKey {
	return header.FlowKey{
		EthSrc:  header.MACFromUint64(srcHost),
		EthDst:  header.MACFromUint64(dstHost),
		EthType: header.EthTypeIPv4,
		IPSrc:   header.IPv4FromUint32(uint32(0x0a000000 + srcHost)),
		IPDst:   header.IPv4FromUint32(uint32(0x0a000000 + dstHost)),
		Proto:   header.ProtoTCP,
		SrcPort: 30000,
		DstPort: dstPort,
	}
}

func TestApplyFlowMod(t *testing.T) {
	s := NewSwitch(0, MissDrop)
	err := s.Apply(&openflow.FlowMod{
		Op: openflow.FlowAdd, Table: 0, Priority: 10,
		Match: header.Match{}.WithDstPort(80),
		Instr: openflow.Apply(openflow.Output(3)),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tables[0].Len() != 1 {
		t.Fatal("entry not installed")
	}
	if err := s.Apply(&openflow.FlowMod{Table: 99}, 0); err == nil {
		t.Error("bad table accepted")
	}
	// Delete.
	if err := s.Apply(&openflow.FlowMod{Op: openflow.FlowDelete, Table: 0, Match: header.MatchAll}, 0); err != nil {
		t.Fatal(err)
	}
	if s.Tables[0].Len() != 0 {
		t.Error("delete did not clear the table")
	}
}

func TestApplyGroupAndMeterMods(t *testing.T) {
	s := NewSwitch(0, MissDrop)
	if err := s.Apply(&openflow.GroupMod{Op: openflow.GroupAdd, GroupID: 1, Type: openflow.GroupSelect,
		Buckets: []*openflow.Bucket{{Actions: []openflow.Action{openflow.Output(1)}}}}, 0); err != nil {
		t.Fatal(err)
	}
	if s.Groups.Get(1) == nil {
		t.Error("group missing")
	}
	if err := s.Apply(&openflow.MeterMod{Op: openflow.MeterAdd, MeterID: 2, RateBps: 1e8}, 0); err != nil {
		t.Fatal(err)
	}
	if s.Meters.Get(2) == nil {
		t.Error("meter missing")
	}
	s.Apply(&openflow.GroupMod{Op: openflow.GroupDelete, GroupID: 1}, 0)
	s.Apply(&openflow.MeterMod{Op: openflow.MeterDelete, MeterID: 2}, 0)
	if s.Groups.Get(1) != nil || s.Meters.Get(2) != nil {
		t.Error("deletes did not work")
	}
}

func TestProcessMissBehaviors(t *testing.T) {
	drop := NewSwitch(0, MissDrop)
	d := drop.Process(testKey(1, 2, 80), nil)
	if !d.Drop || !d.Miss {
		t.Errorf("MissDrop: %+v", d)
	}
	punt := NewSwitch(0, MissController)
	d = punt.Process(testKey(1, 2, 80), nil)
	if !d.ToController || d.Drop {
		t.Errorf("MissController: %+v", d)
	}
	if punt.PacketIns != 1 {
		t.Errorf("PacketIns = %d", punt.PacketIns)
	}
}

func TestProcessOutput(t *testing.T) {
	s := NewSwitch(0, MissDrop)
	s.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Apply(openflow.Output(7))}, 0)
	d := s.Process(testKey(1, 2, 80), nil)
	if d.Out != 7 || d.Drop || d.ToController {
		t.Errorf("decision = %+v", d)
	}
	if len(d.Entries) != 1 {
		t.Error("matched entry not recorded")
	}
}

func TestProcessGotoTablePipeline(t *testing.T) {
	s := NewSwitch(0, MissDrop)
	// Table 0: meter + goto table 1. Table 1: output.
	s.Apply(&openflow.MeterMod{Op: openflow.MeterAdd, MeterID: 5, RateBps: 1e8}, 0)
	s.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Table: 0, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Instructions{Meter: 5}.WithGoto(1)}, 0)
	s.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Table: 1, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Apply(openflow.Output(2))}, 0)
	d := s.Process(testKey(1, 2, 80), nil)
	if d.Out != 2 {
		t.Errorf("pipeline output = %d, want 2", d.Out)
	}
	if len(d.Meters) != 1 || d.Meters[0] != 5 {
		t.Errorf("meters = %v", d.Meters)
	}
	if len(d.Entries) != 2 {
		t.Errorf("entries = %d, want 2", len(d.Entries))
	}
}

func TestProcessGotoMissInLaterTable(t *testing.T) {
	s := NewSwitch(0, MissController)
	s.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Table: 0, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Instructions{}.WithGoto(1)}, 0)
	d := s.Process(testKey(1, 2, 80), nil)
	// Miss in table 1 after matching in table 0 with no output decision:
	// the switch miss behavior applies, so a reactive switch punts.
	if !d.ToController || d.Drop {
		t.Errorf("later-table miss on a reactive switch should punt: %+v", d)
	}
	// On a drop-miss switch the same pipeline drops.
	s2 := NewSwitch(0, MissDrop)
	s2.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Table: 0, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Instructions{}.WithGoto(1)}, 0)
	if d := s2.Process(testKey(1, 2, 80), nil); !d.Drop {
		t.Errorf("later-table miss on a drop switch should drop: %+v", d)
	}
}

func TestProcessVLANRewrite(t *testing.T) {
	s := NewSwitch(0, MissDrop)
	s.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Table: 0, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Instructions{Actions: []openflow.Action{openflow.SetVLAN(42)}}.WithGoto(1)}, 0)
	s.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Table: 1, Priority: 1,
		Match: header.Match{}.WithVLAN(42),
		Instr: openflow.Apply(openflow.Output(9))}, 0)
	d := s.Process(testKey(1, 2, 80), nil)
	if d.Out != 9 {
		t.Errorf("VLAN-rewritten pipeline failed: %+v", d)
	}
	if d.Key.VLAN != 42 {
		t.Errorf("exit key VLAN = %d", d.Key.VLAN)
	}
	// Pop restores to 0.
	s2 := NewSwitch(0, MissDrop)
	s2.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Apply(openflow.PopVLAN(), openflow.Output(1))}, 0)
	k := testKey(1, 2, 80)
	k.VLAN = 7
	d = s2.Process(k, nil)
	if d.Key.VLAN != 0 {
		t.Error("pop_vlan did not clear the tag")
	}
}

func TestProcessGroupSelect(t *testing.T) {
	s := NewSwitch(0, MissDrop)
	s.Apply(&openflow.GroupMod{Op: openflow.GroupAdd, GroupID: 1, Type: openflow.GroupSelect,
		Buckets: []*openflow.Bucket{
			{WatchPort: 1, Actions: []openflow.Action{openflow.Output(1)}},
			{WatchPort: 2, Actions: []openflow.Action{openflow.Output(2)}},
		}}, 0)
	s.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Apply(openflow.GroupAction(1))}, 0)
	seen := map[netgraph.PortNum]bool{}
	for i := uint64(0); i < 64; i++ {
		d := s.Process(testKey(i, i+1, uint16(i)), nil)
		if d.Out != 1 && d.Out != 2 {
			t.Fatalf("group output = %d", d.Out)
		}
		seen[d.Out] = true
	}
	if len(seen) != 2 {
		t.Error("hash never spread across buckets")
	}
	// Same flow key always picks the same bucket.
	k := testKey(1, 2, 80)
	first := s.Process(k, nil).Out
	for i := 0; i < 10; i++ {
		if s.Process(k, nil).Out != first {
			t.Fatal("group selection unstable")
		}
	}
	// Liveness: kill port of the chosen bucket.
	liveOnly2 := func(p netgraph.PortNum) bool { return p == 2 }
	if d := s.Process(k, liveOnly2); d.Out != 2 {
		t.Errorf("dead bucket not avoided: %+v", d)
	}
	// Unknown group drops.
	s.Apply(&openflow.GroupMod{Op: openflow.GroupDelete, GroupID: 1}, 0)
	if d := s.Process(k, nil); !d.Drop {
		t.Error("missing group should drop")
	}
}

func buildNet(t *testing.T) (*Network, *netgraph.Topology) {
	t.Helper()
	topo := netgraph.Linear(3, netgraph.Gig, netgraph.TenGig)
	return NewNetwork(topo, MissController), topo
}

// installPath programs MAC-based forwarding from h0 to h2 on a 3-switch
// linear topology.
func installPath(n *Network, topo *netgraph.Topology, dstMAC header.MAC) {
	h2 := topo.MustLookup("h2")
	for i := 0; i < 3; i++ {
		sw := topo.MustLookup("s" + string(rune('0'+i)))
		var out netgraph.PortNum
		if i == 2 {
			_, hp := topo.AttachedSwitch(h2)
			out = hp
		} else {
			out = topo.PortToward(sw, topo.MustLookup("s"+string(rune('0'+i+1))))
		}
		n.Switches[sw].Apply(&openflow.FlowMod{
			Op: openflow.FlowAdd, Priority: 10,
			Match: header.Match{}.WithEthDst(dstMAC),
			Instr: openflow.Apply(openflow.Output(out)),
		}, 0)
	}
}

func TestWalkDelivered(t *testing.T) {
	n, topo := buildNet(t)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	key := testKey(10, 20, 80)
	installPath(n, topo, key.EthDst)
	res := n.Walk(key, h0, h2)
	if res.Terminal != Delivered {
		t.Fatalf("terminal = %v at %d", res.Terminal, res.At)
	}
	if len(res.Hops) != 3 {
		t.Errorf("hops = %d, want 3", len(res.Hops))
	}
	if len(res.Entries) != 3 {
		t.Errorf("entries = %d, want 3", len(res.Entries))
	}
	// Every hop's link must be valid and up.
	for _, h := range res.Hops {
		if h.Link == nil || !h.Link.Up {
			t.Error("hop without live link")
		}
	}
}

func TestWalkPunted(t *testing.T) {
	n, topo := buildNet(t)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	res := n.Walk(testKey(10, 20, 80), h0, h2)
	if res.Terminal != Punted {
		t.Fatalf("terminal = %v, want punted on empty reactive tables", res.Terminal)
	}
	if len(res.PacketIns) != 1 {
		t.Errorf("packet-ins = %v", res.PacketIns)
	}
}

func TestWalkDropped(t *testing.T) {
	n, topo := buildNet(t)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	key := testKey(10, 20, 80)
	// Blackhole at s1.
	s1 := topo.MustLookup("s1")
	installPath(n, topo, key.EthDst)
	n.Switches[s1].Apply(&openflow.FlowMod{
		Op: openflow.FlowAdd, Priority: 100,
		Match: header.Match{}.WithEthDst(key.EthDst),
		Instr: openflow.Apply(openflow.Drop()),
	}, 0)
	res := n.Walk(key, h0, h2)
	if res.Terminal != Dropped || res.At != s1 {
		t.Errorf("terminal = %v at %d, want dropped at s1", res.Terminal, res.At)
	}
}

func TestWalkLoop(t *testing.T) {
	n, topo := buildNet(t)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	s0, s1 := topo.MustLookup("s0"), topo.MustLookup("s1")
	key := testKey(10, 20, 80)
	// s0 -> s1 -> s0 forever.
	n.Switches[s0].Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Apply(openflow.Output(topo.PortToward(s0, s1)))}, 0)
	n.Switches[s1].Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Apply(openflow.Output(topo.PortToward(s1, s0)))}, 0)
	res := n.Walk(key, h0, h2)
	if res.Terminal != Looped {
		t.Errorf("terminal = %v, want looped", res.Terminal)
	}
}

func TestWalkStuckOnDownLink(t *testing.T) {
	n, topo := buildNet(t)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	key := testKey(10, 20, 80)
	installPath(n, topo, key.EthDst)
	// Kill the s1-s2 link; s1 still forwards into it.
	s1, s2 := topo.MustLookup("s1"), topo.MustLookup("s2")
	topo.SetLinkUp(topo.LinkAt(s1, topo.PortToward(s1, s2)).ID, false)
	res := n.Walk(key, h0, h2)
	if res.Terminal != Stuck || res.At != s1 {
		t.Errorf("terminal = %v at %v, want stuck at s1", res.Terminal, res.At)
	}
}

func TestWalkMisdelivery(t *testing.T) {
	n, topo := buildNet(t)
	h0 := topo.MustLookup("h0")
	h1 := topo.MustLookup("h1")
	h2 := topo.MustLookup("h2")
	key := testKey(10, 20, 80)
	// s0 forwards to s1; s1 delivers to its local host h1 although the
	// flow is destined to h2: a misconfigured policy.
	s0, s1 := topo.MustLookup("s0"), topo.MustLookup("s1")
	n.Switches[s0].Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Apply(openflow.Output(topo.PortToward(s0, s1)))}, 0)
	_, h1port := topo.AttachedSwitch(h1)
	n.Switches[s1].Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Apply(openflow.Output(h1port))}, 0)
	res := n.Walk(key, h0, h2)
	if res.Terminal != Dropped || res.At != h1 {
		t.Errorf("terminal = %v at %v, want dropped at the wrong host", res.Terminal, res.At)
	}
	_ = h0
}

func TestWalkFlood(t *testing.T) {
	n, topo := buildNet(t)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	s0 := topo.MustLookup("s0")
	n.Switches[s0].Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Priority: 1, Match: header.MatchAll,
		Instr: openflow.Apply(openflow.Flood())}, 0)
	res := n.Walk(testKey(10, 20, 80), h0, h2)
	if res.Terminal != Flooded {
		t.Fatalf("terminal = %v, want flooded", res.Terminal)
	}
	if !res.FloodReaches {
		t.Error("flood should reach h2 in a connected topology")
	}
	// With the fabric partitioned the flood cannot reach.
	s1, s2 := topo.MustLookup("s1"), topo.MustLookup("s2")
	topo.SetLinkUp(topo.LinkAt(s1, topo.PortToward(s1, s2)).ID, false)
	res = n.Walk(testKey(10, 20, 80), h0, h2)
	if res.FloodReaches {
		t.Error("flood crossed a down link")
	}
}

func TestWalkMeterCollection(t *testing.T) {
	n, topo := buildNet(t)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	key := testKey(10, 20, 80)
	installPath(n, topo, key.EthDst)
	s1 := topo.MustLookup("s1")
	n.Switches[s1].Apply(&openflow.MeterMod{Op: openflow.MeterAdd, MeterID: 3, RateBps: 5e8}, 0)
	// Re-install s1's rule with a meter.
	next := topo.MustLookup("s2")
	n.Switches[s1].Apply(&openflow.FlowMod{
		Op: openflow.FlowAdd, Priority: 10,
		Match: header.Match{}.WithEthDst(key.EthDst),
		Instr: openflow.Apply(openflow.Output(topo.PortToward(s1, next))).WithMeter(3),
	}, 0)
	res := n.Walk(key, h0, h2)
	if res.Terminal != Delivered {
		t.Fatalf("terminal = %v", res.Terminal)
	}
	if len(res.Meters) != 1 || res.Meters[0] != (MeterRef{Switch: s1, Meter: 3}) {
		t.Errorf("meters = %v", res.Meters)
	}
}

func TestWalkIsolatedHost(t *testing.T) {
	n, topo := buildNet(t)
	lone := topo.AddHost("lone")
	h2 := topo.MustLookup("h2")
	res := n.Walk(testKey(9, 20, 80), lone, h2)
	if res.Terminal != Stuck {
		t.Errorf("terminal = %v, want stuck for isolated host", res.Terminal)
	}
}

func TestEntryCountersWiring(t *testing.T) {
	// Entries returned by Walk alias the installed entries, so byte
	// accounting by the engine lands on the real counters.
	n, topo := buildNet(t)
	h0, h2 := topo.MustLookup("h0"), topo.MustLookup("h2")
	key := testKey(10, 20, 80)
	installPath(n, topo, key.EthDst)
	res := n.Walk(key, h0, h2)
	res.Entries[0].Bytes += 100
	s0 := topo.MustLookup("s0")
	if got := n.Switches[s0].Tables[0].Entries()[0].Bytes; got != 100 {
		t.Errorf("counter aliasing broken: %d", got)
	}
}

func TestApplyTimeoutPlumbed(t *testing.T) {
	s := NewSwitch(0, MissDrop)
	s.Apply(&openflow.FlowMod{Op: openflow.FlowAdd, Priority: 1, Match: header.MatchAll,
		IdleTimeout: 5 * simtime.Second, Instr: openflow.Apply(openflow.Output(1))}, simtime.Time(simtime.Second))
	e := s.Tables[0].Entries()[0]
	if e.IdleTimeout != 5*simtime.Second || e.Installed != simtime.Time(simtime.Second) {
		t.Error("timeout/install time not plumbed")
	}
}
