package dataplane

import (
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
)

// Terminal says how a path walk ended.
type Terminal uint8

// Walk outcomes.
const (
	// Delivered: the flow reached its destination host over unicast
	// forwarding; Hops describes the full path.
	Delivered Terminal = iota
	// Punted: a switch sent the flow to the controller and has no
	// unicast output for it; the flow waits for control-plane action.
	Punted
	// Dropped: a switch discarded the flow (blackholed, ACL, table-miss
	// drop, or a dead group).
	Dropped
	// Flooded: forwarding relies on flooding; the first packet reaches
	// the destination (if FloodReaches) but there is no sustained path.
	Flooded
	// Looped: the walk revisited a (switch, key) state — a forwarding
	// loop; the paper's "packets do not flow as expected" failure class.
	Looped
	// Stuck: the egress port has no link or the link is down.
	Stuck
)

func (t Terminal) String() string {
	switch t {
	case Delivered:
		return "delivered"
	case Punted:
		return "punted"
	case Dropped:
		return "dropped"
	case Flooded:
		return "flooded"
	case Looped:
		return "looped"
	case Stuck:
		return "stuck"
	}
	return "unknown"
}

// Hop is one switch traversal on a resolved path.
type Hop struct {
	Switch  netgraph.NodeID
	InPort  netgraph.PortNum
	OutPort netgraph.PortNum
	// Link is the egress link (switch→next node).
	Link *netgraph.Link
}

// MeterRef names a meter on a specific switch.
type MeterRef struct {
	Switch netgraph.NodeID
	Meter  openflow.MeterID
}

// PathResult is the resolution of a flow through the network.
type PathResult struct {
	Terminal Terminal
	// Hops is the switch path (valid for Delivered; best-effort prefix
	// otherwise).
	Hops []Hop
	// At is the switch where a non-Delivered terminal occurred.
	At netgraph.NodeID
	// Entries is every flow entry matched along the way, for byte
	// accounting.
	Entries []*openflow.FlowEntry
	// Meters is every meter passed, for policing.
	Meters []MeterRef
	// PacketIns lists switches that punted the flow while processing it.
	PacketIns []netgraph.NodeID
	// FloodReaches reports whether flooding would deliver the first
	// packet to the destination (valid when Terminal == Flooded).
	FloodReaches bool
	// ExitKey is the flow key on delivery (after any rewrites).
	ExitKey header.FlowKey
}

// Network is the collection of switch states over a topology, plus the walk
// logic. It is the "Topology + network state" building block.
type Network struct {
	Topo     *netgraph.Topology
	Switches map[netgraph.NodeID]*Switch
}

// NewNetwork creates a Network with a switch (of the given miss behavior)
// for every switch node in the topology.
func NewNetwork(topo *netgraph.Topology, miss MissBehavior) *Network {
	n := &Network{Topo: topo, Switches: make(map[netgraph.NodeID]*Switch)}
	for _, id := range topo.Switches() {
		n.Switches[id] = NewSwitch(id, miss)
	}
	return n
}

// PortLiveFunc returns the liveness oracle for a switch: a port is live if
// its link exists and is up.
func (n *Network) PortLiveFunc(sw netgraph.NodeID) PortLive {
	return func(p netgraph.PortNum) bool {
		l := n.Topo.LinkAt(sw, p)
		return l != nil && l.Up
	}
}

// Walk resolves the path of a flow with the given key from a source host to
// a destination host. dst may be -1 when unknown (delivery is then detected
// by reaching any host matching the key's EthDst — Horse identifies hosts
// by MAC, so normally dst is known).
func (n *Network) Walk(key header.FlowKey, src, dst netgraph.NodeID) PathResult {
	res := PathResult{ExitKey: key}
	sw, inPort := n.Topo.AttachedSwitch(src)
	if sw < 0 {
		res.Terminal = Stuck
		res.At = src
		return res
	}
	if l := n.Topo.LinkAt(sw, inPort); l == nil || !l.Up {
		res.Terminal = Stuck
		res.At = src
		return res
	}

	type visit struct {
		node netgraph.NodeID
		key  header.FlowKey
	}
	seen := make(map[visit]bool)
	cur, curIn, curKey := sw, inPort, key

	maxHops := 4*n.Topo.NumNodes() + 8
	for hop := 0; hop < maxHops; hop++ {
		v := visit{cur, curKey}
		if seen[v] {
			res.Terminal = Looped
			res.At = cur
			return res
		}
		seen[v] = true

		s := n.Switches[cur]
		if s == nil {
			res.Terminal = Stuck
			res.At = cur
			return res
		}
		d := s.Process(curKey, n.PortLiveFunc(cur))
		res.Entries = append(res.Entries, d.Entries...)
		for _, m := range d.Meters {
			res.Meters = append(res.Meters, MeterRef{Switch: cur, Meter: m})
		}
		if d.ToController {
			res.PacketIns = append(res.PacketIns, cur)
		}
		switch {
		case d.Drop:
			res.Terminal = Dropped
			res.At = cur
			return res
		case d.Flood:
			res.Terminal = Flooded
			res.At = cur
			res.FloodReaches = n.floodReaches(cur, curIn, dst)
			return res
		case d.Out != netgraph.NoPort:
			link := n.Topo.LinkAt(cur, d.Out)
			if link == nil || !link.Up {
				res.Terminal = Stuck
				res.At = cur
				return res
			}
			next, nextPort := link.Peer(cur)
			res.Hops = append(res.Hops, Hop{Switch: cur, InPort: curIn, OutPort: d.Out, Link: link})
			if n.Topo.Node(next).Kind == netgraph.KindHost {
				if next == dst || dst < 0 {
					res.Terminal = Delivered
					res.ExitKey = d.Key
					return res
				}
				// Delivered to the wrong host: the policy misdirected the
				// flow; classify as dropped there.
				res.Terminal = Dropped
				res.At = next
				return res
			}
			cur, curIn, curKey = next, nextPort, d.Key
		case d.ToController:
			res.Terminal = Punted
			res.At = cur
			return res
		default:
			res.Terminal = Dropped
			res.At = cur
			return res
		}
	}
	res.Terminal = Looped
	res.At = cur
	return res
}

// floodReaches reports whether flooding from sw (excluding inPort) would
// reach dst, assuming every switch floods unknown traffic. It approximates
// the L2 broadcast behavior used during learning.
func (n *Network) floodReaches(sw netgraph.NodeID, inPort netgraph.PortNum, dst netgraph.NodeID) bool {
	if dst < 0 {
		return false
	}
	visited := map[netgraph.NodeID]bool{sw: true}
	stack := []netgraph.NodeID{sw}
	first := true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := n.Topo.Node(v)
		for _, p := range node.Ports() {
			if first && v == sw && p == inPort {
				continue
			}
			l := n.Topo.LinkAt(v, p)
			if l == nil || !l.Up {
				continue
			}
			peer, _ := l.Peer(v)
			if peer == dst {
				return true
			}
			if n.Topo.Node(peer).Kind == netgraph.KindSwitch && !visited[peer] {
				visited[peer] = true
				stack = append(stack, peer)
			}
		}
		first = false
	}
	return false
}
