// Package dataplane executes the forwarding pipeline of Horse switches. A
// Switch owns its OpenFlow state (flow tables, groups, meters); the package
// also provides the path walk that resolves where a data flow travels
// through the topology, which switches punt it to the controller, which
// meters police it, and which flow entries account for it.
package dataplane

import (
	"fmt"

	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
)

// MissBehavior is what a switch does with a flow that misses every table
// entry. OpenFlow 1.3 models this with an explicit table-miss entry; Horse
// makes the common configurations first-class.
type MissBehavior uint8

// Miss behaviors.
const (
	// MissDrop silently discards unmatched flows (the protocol default).
	MissDrop MissBehavior = iota
	// MissController punts unmatched flows to the controller (reactive
	// forwarding).
	MissController
)

// NumTables is the pipeline depth of every Horse switch. Multiple tables
// let policies compose without rule cross-products (e.g. table 0 for ACL /
// blackholing, table 1 for forwarding).
const NumTables = 4

// Switch is the data-plane state of one forwarding element.
type Switch struct {
	Node   netgraph.NodeID
	Tables [NumTables]*openflow.FlowTable
	Groups *openflow.GroupTable
	Meters *openflow.MeterTable
	Miss   MissBehavior

	// PacketIns counts punts to the controller.
	PacketIns uint64
}

// NewSwitch returns an initialized switch for the given topology node.
func NewSwitch(node netgraph.NodeID, miss MissBehavior) *Switch {
	s := &Switch{Node: node, Groups: openflow.NewGroupTable(), Meters: openflow.NewMeterTable(), Miss: miss}
	for i := range s.Tables {
		s.Tables[i] = openflow.NewFlowTable()
	}
	return s
}

// Reset wipes every piece of OpenFlow state — flow tables, groups, meters
// — modeling a switch crash: a restarted switch comes back with empty
// tables and must be re-programmed by the controller.
func (s *Switch) Reset() {
	for i := range s.Tables {
		s.Tables[i] = openflow.NewFlowTable()
	}
	s.Groups = openflow.NewGroupTable()
	s.Meters = openflow.NewMeterTable()
}

// Apply executes a FlowMod/GroupMod/MeterMod against the switch state at
// time now. It returns an error for malformed messages (unknown table,
// reserved IDs); the simulator surfaces these as controller bugs.
func (s *Switch) Apply(msg openflow.Message, now simtime.Time) error {
	switch m := msg.(type) {
	case *openflow.FlowMod:
		if int(m.Table) >= NumTables {
			return fmt.Errorf("dataplane: switch %d has no table %d", s.Node, m.Table)
		}
		t := s.Tables[m.Table]
		switch m.Op {
		case openflow.FlowAdd:
			t.Add(&openflow.FlowEntry{
				Priority:    m.Priority,
				Match:       m.Match,
				Instr:       m.Instr,
				IdleTimeout: m.IdleTimeout,
				HardTimeout: m.HardTimeout,
				Cookie:      m.Cookie,
			}, now)
		case openflow.FlowDelete:
			t.Delete(m.Match, m.Cookie)
		case openflow.FlowDeleteStrict:
			t.DeleteStrict(m.Match, m.Priority)
		}
		return nil
	case *openflow.GroupMod:
		switch m.Op {
		case openflow.GroupAdd, openflow.GroupModify:
			return s.Groups.Add(&openflow.Group{ID: m.GroupID, Type: m.Type, Buckets: m.Buckets})
		case openflow.GroupDelete:
			s.Groups.Delete(m.GroupID)
		}
		return nil
	case *openflow.MeterMod:
		switch m.Op {
		case openflow.MeterAdd, openflow.MeterModify:
			return s.Meters.Add(&openflow.Meter{ID: m.MeterID, RateBps: m.RateBps})
		case openflow.MeterDelete:
			s.Meters.Delete(m.MeterID)
		}
		return nil
	}
	return fmt.Errorf("dataplane: switch %d cannot apply %T", s.Node, msg)
}

// FlowStats builds the reply to a flow-stats request by filtering the
// switch's table entries with the request match (a zero match on table 0
// selects every entry of every table). Both the flow-level and the
// packet-level engine answer stats requests through this one builder, so
// counter semantics cannot drift between fidelities.
func (s *Switch) FlowStats(req *openflow.FlowStatsRequest, now simtime.Time) *openflow.FlowStatsReply {
	reply := &openflow.FlowStatsReply{Switch: req.Switch, At: now}
	tables := []openflow.TableID{req.Table}
	if req.Table == 0 && req.Match == (header.Match{}) {
		tables = tables[:0]
		for i := 0; i < NumTables; i++ {
			tables = append(tables, openflow.TableID(i))
		}
	}
	for _, tid := range tables {
		for _, e := range s.Tables[tid].Entries() {
			if req.Match != (header.Match{}) && !req.Match.Subsumes(e.Match) {
				continue
			}
			reply.Stats = append(reply.Stats, openflow.FlowStats{
				Table:    tid,
				Priority: e.Priority,
				Match:    e.Match,
				Cookie:   e.Cookie,
				Packets:  e.Packets,
				Bytes:    e.Bytes,
				Duration: now.Sub(e.Installed),
			})
		}
	}
	return reply
}

// NextExpiry returns the earliest pending flow-entry timeout across the
// switch's tables, or simtime.Never when nothing can expire.
func (s *Switch) NextExpiry() simtime.Time {
	next := simtime.Never
	for _, t := range s.Tables {
		if x := t.NextExpiry(); x < next {
			next = x
		}
	}
	return next
}

// ExpireEntries evicts every entry whose hard or idle timeout has passed
// at now and returns the FlowRemoved notifications describing them. Both
// engines expire through this one helper, so timeout semantics and
// notification contents cannot drift between fidelities.
func (s *Switch) ExpireEntries(now simtime.Time) []*openflow.FlowRemoved {
	var removed []*openflow.FlowRemoved
	for tid, t := range s.Tables {
		for _, e := range t.Expire(now) {
			idle := e.IdleTimeout > 0 && now >= e.LastUsed.Add(e.IdleTimeout)
			removed = append(removed, &openflow.FlowRemoved{
				Switch: s.Node, Table: openflow.TableID(tid),
				Match: e.Match, Priority: e.Priority, Cookie: e.Cookie,
				Packets: e.Packets, Bytes: e.Bytes, Idle: idle,
			})
		}
	}
	return removed
}

// Decision is the outcome of running one flow through one switch pipeline.
type Decision struct {
	// Out is the chosen unicast output port (NoPort if none).
	Out netgraph.PortNum
	// ToController indicates a punt (table miss under MissController, or
	// an explicit output:controller action).
	ToController bool
	// Drop indicates the flow is discarded here.
	Drop bool
	// Flood indicates the flow's first packet is flooded.
	Flood bool
	// Miss indicates no entry matched in the first table (distinguishes
	// reactive punts from explicit ones).
	Miss bool
	// Meters lists meters the flow passes through, in order.
	Meters []openflow.MeterID
	// Entries lists every flow entry the flow matched, pipeline order.
	Entries []*openflow.FlowEntry
	// Key is the (possibly rewritten) flow key leaving the switch.
	Key header.FlowKey
}

// PortLive reports whether a port currently has an up link; used for group
// liveness.
type PortLive func(netgraph.PortNum) bool

// Process runs key through the switch pipeline starting at table 0.
func (s *Switch) Process(key header.FlowKey, live PortLive) Decision {
	d := Decision{Out: netgraph.NoPort, Key: key}
	table := openflow.TableID(0)
	for {
		e := s.Tables[table].Lookup(d.Key)
		if e == nil {
			// Table miss. If an earlier table already produced an output
			// decision, it stands; otherwise the switch-level miss
			// behavior applies (per-table miss entries collapse to one
			// policy in Horse).
			if d.Out == netgraph.NoPort && !d.Flood && !d.ToController {
				d.Miss = true
				if s.Miss == MissController {
					d.ToController = true
					s.PacketIns++
				} else {
					d.Drop = true
				}
			}
			return d
		}
		d.Entries = append(d.Entries, e)
		if e.Instr.Meter != 0 {
			d.Meters = append(d.Meters, e.Instr.Meter)
		}
		s.applyActions(e.Instr.Actions, &d, live)
		if d.Drop {
			return d
		}
		if e.Instr.HasGoto && e.Instr.GotoTable > table && int(e.Instr.GotoTable) < NumTables {
			table = e.Instr.GotoTable
			continue
		}
		return d
	}
}

func (s *Switch) applyActions(actions []openflow.Action, d *Decision, live PortLive) {
	for _, a := range actions {
		switch a.Type {
		case openflow.ActionOutput:
			switch a.Port {
			case openflow.PortController:
				d.ToController = true
				s.PacketIns++
			case openflow.PortFlood:
				d.Flood = true
			case openflow.PortDrop:
				d.Drop = true
				d.Out = netgraph.NoPort
				return
			default:
				d.Out = a.Port
			}
		case openflow.ActionGroup:
			g := s.Groups.Get(a.Group)
			if g == nil {
				d.Drop = true
				return
			}
			var liveBucket func(*openflow.Bucket) bool
			if live != nil {
				liveBucket = func(b *openflow.Bucket) bool {
					if b.WatchPort == netgraph.NoPort {
						return true
					}
					return live(b.WatchPort)
				}
			}
			b := g.SelectBucket(d.Key.SymmetricHash(), liveBucket)
			if b == nil {
				d.Drop = true
				return
			}
			s.applyActions(b.Actions, d, live)
			if d.Drop {
				return
			}
		case openflow.ActionSetVLAN:
			d.Key.VLAN = a.VLAN
		case openflow.ActionPopVLAN:
			d.Key.VLAN = 0
		}
	}
}
