package dataplane

import (
	"testing"

	"horse/internal/netgraph"
	"horse/internal/simtime"
)

// TestFailureStateComposition covers the composition rules: link vs
// switch liveness, and nesting of same-entity outages by counting.
func TestFailureStateComposition(t *testing.T) {
	topo := netgraph.New()
	a, b := topo.AddSwitch("a"), topo.AddSwitch("b")
	l := topo.Connect(a, b, 1e9, 50*simtime.Microsecond)
	f := NewFailureState(topo)

	if !f.LinkDesired(l) {
		t.Fatal("pristine link should be desired up")
	}
	// Link vs switch: a restart cannot revive a failed link; a link
	// recovery cannot revive a link under a crashed switch.
	f.SetLink(l, false)
	if !f.SetSwitch(a, false) {
		t.Fatal("first crash must apply")
	}
	if f.SetSwitch(a, true) != true || f.LinkDesired(l) {
		t.Error("restart revived a link still inside its own outage")
	}
	f.SetSwitch(a, false)
	f.SetLink(l, true)
	if f.LinkDesired(l) {
		t.Error("link recovery revived a link under a crashed switch")
	}
	f.SetSwitch(a, true)
	if !f.LinkDesired(l) {
		t.Error("link should be up after every failure cleared")
	}

	// Same-entity nesting: the inner recovery must not end the outer
	// outage.
	f.SetLink(l, false)
	f.SetLink(l, false)
	f.SetLink(l, true)
	if f.LinkDesired(l) {
		t.Error("inner link recovery ended the outer outage")
	}
	f.SetLink(l, true)
	if !f.LinkDesired(l) {
		t.Error("outer recovery should end the outage")
	}
	f.SetLink(l, true) // recovery with nothing failed: ignored
	f.SetLink(l, false)
	if f.LinkDesired(l) {
		t.Error("underflowed recovery swallowed a later failure")
	}
	f.SetLink(l, true)

	// Nested switch crashes: only the first crash and the matching (last)
	// restart report a flip.
	if !f.SetSwitch(b, false) || f.SetSwitch(b, false) {
		t.Error("only the first crash of a nest flips the switch")
	}
	if f.SetSwitch(b, true) {
		t.Error("inner restart must not flip a doubly-crashed switch")
	}
	if !f.SwitchIsDown(b) {
		t.Error("switch revived by inner restart")
	}
	if !f.SetSwitch(b, true) || f.SwitchIsDown(b) {
		t.Error("outer restart should flip the switch back up")
	}
	if f.SetSwitch(b, true) {
		t.Error("restart of an up switch must be a no-op")
	}
}
