package dataplane

import (
	"sort"

	"horse/internal/netgraph"
	"horse/internal/openflow"
)

// FailureState is the scripted-failure bookkeeping shared by the
// simulation engines: which links have failed by script, which switches
// are crashed, and which link changes a detached controller missed. It
// exists in one place so the engines cannot drift on the composition
// rule — a link is operationally up only when no failure of it is in
// effect AND neither endpoint switch is down, so a switch restart cannot
// revive a link still inside its own scripted outage (and a link
// "recovery" under a crashed switch waits for the restart). Failures
// nest by counting: two overlapping outages of the same entity end at
// the LAST recovery, not the first.
type FailureState struct {
	topo       *netgraph.Topology
	linkFailed map[netgraph.LinkID]int
	switchDown map[netgraph.NodeID]int
	pending    map[netgraph.LinkID]bool
	ctrlDetach int
}

// NewFailureState returns empty bookkeeping over the topology.
func NewFailureState(topo *netgraph.Topology) *FailureState {
	return &FailureState{
		topo:       topo,
		linkFailed: make(map[netgraph.LinkID]int),
		switchDown: make(map[netgraph.NodeID]int),
		pending:    make(map[netgraph.LinkID]bool),
	}
}

// SetLink records a scripted link failure (up=false) or recovery. A
// recovery with no failure in effect is ignored.
func (f *FailureState) SetLink(id netgraph.LinkID, up bool) {
	if up {
		if f.linkFailed[id] > 0 {
			f.linkFailed[id]--
		}
	} else {
		f.linkFailed[id]++
	}
}

// SetSwitch records a crash (up=false) or restart. It returns true only
// when the switch's operational state actually flips — the first crash of
// a nest, or the restart matching it; the caller treats everything else
// as a no-op.
func (f *FailureState) SetSwitch(sw netgraph.NodeID, up bool) bool {
	if up {
		if f.switchDown[sw] == 0 {
			return false
		}
		f.switchDown[sw]--
		return f.switchDown[sw] == 0
	}
	f.switchDown[sw]++
	return f.switchDown[sw] == 1
}

// SwitchIsDown reports whether a switch is crashed.
func (f *FailureState) SwitchIsDown(sw netgraph.NodeID) bool { return f.switchDown[sw] > 0 }

// SetController records a controller detach (attached=false) or reattach.
// Outages nest by counting like link and switch failures; it returns true
// only when the channel's state actually flips — the first detach of a
// nest, or the reattach matching it.
func (f *FailureState) SetController(attached bool) bool {
	if attached {
		if f.ctrlDetach == 0 {
			return false
		}
		f.ctrlDetach--
		return f.ctrlDetach == 0
	}
	f.ctrlDetach++
	return f.ctrlDetach == 1
}

// ControllerDetached reports whether a controller outage is in effect.
func (f *FailureState) ControllerDetached() bool { return f.ctrlDetach > 0 }

// LinkDesired is the operational state a link should be in given every
// scripted failure currently in effect.
func (f *FailureState) LinkDesired(id netgraph.LinkID) bool {
	l := f.topo.Link(id)
	return f.linkFailed[id] == 0 && f.switchDown[l.A] == 0 && f.switchDown[l.B] == 0
}

// NotePendingStatus records the link behind a PortStatus the detached
// controller will never see — whether it was never sent or was caught in
// flight by the detach — so the reattach resync announces its current
// state. Other message kinds are simply lost.
func (f *FailureState) NotePendingStatus(msg openflow.Message) {
	if ps, ok := msg.(*openflow.PortStatus); ok {
		if l := f.topo.LinkAt(ps.Switch, ps.Port); l != nil {
			f.pending[l.ID] = true
		}
	}
}

// DrainPending visits every missed link in ID order (the deterministic
// resync order) and clears the set.
func (f *FailureState) DrainPending(visit func(l *netgraph.Link)) {
	ids := make([]netgraph.LinkID, 0, len(f.pending))
	for id := range f.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		visit(f.topo.Link(id))
	}
	clear(f.pending)
}

// ResyncPortStatus announces the CURRENT state of every link a detached
// controller missed — from each live endpoint switch, in link-ID order —
// and clears the pending set. Both engines reattach through this one
// helper so the resync rule cannot drift between fidelities.
func (f *FailureState) ResyncPortStatus(net *Network, send func(msg openflow.Message)) {
	f.DrainPending(func(l *netgraph.Link) {
		for _, end := range []netgraph.NodeID{l.A, l.B} {
			if net.Switches[end] != nil && !f.SwitchIsDown(end) {
				send(&openflow.PortStatus{Switch: end, Port: l.PortAt(end), Up: l.Up})
			}
		}
	})
}
