package dataplane

import (
	"horse/internal/addr"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
)

// InstallMACRoutes pre-installs shortest-path MAC forwarding for every
// host directly on the network's switches — the E3 "identical
// pre-installed state" methodology, shared by the experiment harness,
// the benchmarks, and the examples so the baseline state cannot drift
// between them.
func InstallMACRoutes(n *Network) {
	topo := n.Topo
	for _, host := range topo.Hosts() {
		next := topo.ECMPNextHops(host, netgraph.HopCost)
		for _, sw := range topo.Switches() {
			if len(next[sw]) == 0 {
				continue
			}
			out := topo.PortToward(sw, next[sw][0])
			if out == netgraph.NoPort {
				continue
			}
			n.Switches[sw].Apply(&openflow.FlowMod{
				Op: openflow.FlowAdd, Priority: 10,
				Match: header.Match{}.WithEthDst(addr.HostMAC(host)),
				Instr: openflow.Apply(openflow.Output(out)),
			}, 0)
		}
	}
}
