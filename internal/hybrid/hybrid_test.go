package hybrid

import (
	"math"
	"testing"

	"horse/internal/addr"
	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/packetsim"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/tcpmodel"
	"horse/internal/traffic"
)

// installMACRoutes pre-installs shortest-path MAC forwarding on every
// switch (the identical-state methodology of E3).
func installMACRoutes(net *dataplane.Network) {
	topo := net.Topo
	for _, host := range topo.Hosts() {
		next := topo.ECMPNextHops(host, netgraph.HopCost)
		for _, sw := range topo.Switches() {
			if len(next[sw]) == 0 {
				continue
			}
			out := topo.PortToward(sw, next[sw][0])
			if out == netgraph.NoPort {
				continue
			}
			net.Switches[sw].Apply(&openflow.FlowMod{
				Op: openflow.FlowAdd, Priority: 10,
				Match: header.Match{}.WithEthDst(addr.HostMAC(host)),
				Instr: openflow.Apply(openflow.Output(out)),
			}, 0)
		}
	}
}

func cbr(src, dst netgraph.NodeID, start simtime.Time, sizeBits, rateBps float64, sport uint16) traffic.Demand {
	return traffic.Demand{
		Key: addr.FlowKeyBetween(src, dst, header.ProtoUDP, sport, 80),
		Src: src, Dst: dst, Start: start,
		SizeBits: sizeBits, RateBps: rateBps,
	}
}

// fatTreeCBRScenario is the golden E3-style scenario: a k=4 fat-tree with
// pre-installed MAC routes and one CBR flow per pod-pair, sized so link
// shares are uncontended and the fluid FCT is exact.
func fatTreeCBRScenario() (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.FatTree(4, netgraph.Gig)
	hosts := topo.Hosts()
	var tr traffic.Trace
	n := len(hosts)
	for i := 0; i < 6; i++ {
		src := hosts[i%n]
		dst := hosts[(i+n/2)%n]
		tr = append(tr, cbr(src, dst,
			simtime.Time(i)*simtime.Time(10*simtime.Millisecond),
			2e6, 5e7, uint16(30000+i)))
	}
	tr.Sort()
	return topo, tr
}

// TestGoldenFlowPacketParity is the flow/packet parity contract through
// the shared kernel: on identical pre-installed fat-tree state, both
// engines report the same completion set, and per-flow FCTs agree within
// tolerance (CBR without contention is near-fluid on both sides).
func TestGoldenFlowPacketParity(t *testing.T) {
	// Flow-level run.
	topoF, trF := fatTreeCBRScenario()
	simF := flowsim.New(flowsim.Config{
		Topology: topoF, Controller: flowsim.NopController{}, Miss: dataplane.MissDrop,
	})
	installMACRoutes(simF.Network())
	simF.Load(trF)
	colF := mustRun(simF, simtime.Time(simtime.Minute))

	// Packet-level run on identical state.
	topoP, trP := fatTreeCBRScenario()
	simP := packetsim.New(packetsim.Config{Topology: topoP, Miss: dataplane.MissDrop})
	installMACRoutes(simP.Network())
	simP.Load(trP)
	colP := mustRun(simP, simtime.Time(simtime.Minute))

	flowsF, flowsP := colF.Flows(), colP.Flows()
	if len(flowsF) != len(trF) || len(flowsP) != len(trP) {
		t.Fatalf("record counts: flow=%d packet=%d, want %d", len(flowsF), len(flowsP), len(trF))
	}
	// Same completion set. Both engines number flows in arrival order and
	// the trace is start-sorted, so IDs align.
	byID := func(rs []stats.FlowRecord) map[int64]stats.FlowRecord {
		m := make(map[int64]stats.FlowRecord)
		for _, r := range rs {
			m[r.ID] = r
		}
		return m
	}
	mF, mP := byID(flowsF), byID(flowsP)
	for id, rf := range mF {
		rp, ok := mP[id]
		if !ok {
			t.Fatalf("flow %d missing from packet run", id)
		}
		if rf.Completed != rp.Completed {
			t.Errorf("flow %d: completed flow=%v packet=%v", id, rf.Completed, rp.Completed)
			continue
		}
		if !rf.Completed {
			continue
		}
		fctF, fctP := rf.FCT().Seconds(), rp.FCT().Seconds()
		if fctP <= 0 {
			t.Errorf("flow %d: packet FCT %g", id, fctP)
			continue
		}
		if rel := math.Abs(fctF-fctP) / fctP; rel > 0.05 {
			t.Errorf("flow %d: FCT flow=%gs packet=%gs rel-err %g > 5%%", id, fctF, fctP, rel)
		}
	}
}

// reactiveScenario: a dumbbell with a reactive MAC controller and a small
// mixed workload — every flow must punt before it can move.
func reactiveScenario() (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.Dumbbell(3, 3, netgraph.Gig,
		netgraph.LinkSpec{BandwidthBps: 2e8, Delay: simtime.Millisecond})
	var tr traffic.Trace
	for i := 0; i < 3; i++ {
		src := topo.MustLookup([]string{"h0", "h1", "h2"}[i])
		dst := topo.MustLookup([]string{"r0", "r1", "r2"}[i])
		d := cbr(src, dst, simtime.Time(i)*simtime.Time(20*simtime.Millisecond), 2e6, 5e7, uint16(32000+i))
		if i == 1 {
			d.TCP = true
			d.RateBps = math.Inf(1)
			d.Key.Proto = header.ProtoTCP
		}
		tr = append(tr, d)
	}
	tr.Sort()
	return topo, tr
}

// TestHybridFullPacketMatchesStandalone is the acceptance contract: at
// 100% packet fidelity a reactive (controller-driven) hybrid run produces
// the identical completion set — same flows, same outcomes, same FCTs —
// as the standalone controller-attached packet engine.
func TestHybridFullPacketMatchesStandalone(t *testing.T) {
	topoS, trS := reactiveScenario()
	standalone := packetsim.New(packetsim.Config{
		Topology: topoS, Miss: dataplane.MissController,
		Controller:     controller.NewChain(&controller.ReactiveMAC{}),
		ControlLatency: simtime.Millisecond,
	})
	standalone.Load(trS)
	colS := mustRun(standalone, simtime.Time(simtime.Minute))

	topoH, trH := reactiveScenario()
	hyb := New(Config{
		Topology: topoH, Miss: dataplane.MissController,
		Controller:     controller.NewChain(&controller.ReactiveMAC{}),
		ControlLatency: simtime.Millisecond,
		PacketLevel:    Fraction(1.0),
	})
	hyb.Load(trH)
	mustRun(hyb, simtime.Time(simtime.Minute))
	recs := hyb.Records()

	flowsS := colS.Flows()
	if len(recs) != len(flowsS) {
		t.Fatalf("hybrid %d records vs standalone %d", len(recs), len(flowsS))
	}
	for i, rs := range flowsS {
		rh := recs[i]
		if rh.ID != rs.ID {
			t.Fatalf("record %d: id %d vs %d", i, rh.ID, rs.ID)
		}
		if rh.Completed != rs.Completed || rh.Outcome != rs.Outcome {
			t.Errorf("flow %d: hybrid (%v,%s) vs standalone (%v,%s)",
				rs.ID, rh.Completed, rh.Outcome, rs.Completed, rs.Outcome)
		}
		if rh.End != rs.End || rh.SentBits != rs.SentBits {
			t.Errorf("flow %d: hybrid end=%v sent=%g vs standalone end=%v sent=%g",
				rs.ID, rh.End, rh.SentBits, rs.End, rs.SentBits)
		}
	}
}

// TestHybridSplitRunsBothEngines: a 50% split simulates part of the trace
// per engine under one controller, and every flow completes.
func TestHybridSplitRunsBothEngines(t *testing.T) {
	topo, tr := reactiveScenario()
	hyb := New(Config{
		Topology: topo, Miss: dataplane.MissController,
		Controller:     controller.NewChain(&controller.ReactiveMAC{}),
		ControlLatency: simtime.Millisecond,
		TCP:            tcpmodel.Params{RTT: 2200 * simtime.Microsecond, MSS: 1500, InitialWindow: 10},
		PacketLevel:    Fraction(0.5),
	})
	hyb.Load(tr)
	col := mustRun(hyb, simtime.Time(simtime.Minute))
	if len(hyb.pktIdx) == 0 || len(hyb.flowIdx) == 0 {
		t.Fatalf("split degenerate: pkt=%d flow=%d", len(hyb.pktIdx), len(hyb.flowIdx))
	}
	recs := hyb.Records()
	if len(recs) != len(tr) {
		t.Fatalf("%d records for %d demands", len(recs), len(tr))
	}
	seen := map[int64]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Errorf("duplicate record for flow %d", r.ID)
		}
		seen[r.ID] = true
		if !r.Completed {
			t.Errorf("flow %d: %s", r.ID, r.Outcome)
		}
	}
	if hyb.PacketsForwarded() == 0 {
		t.Error("packet engine idle")
	}
	if col.EventsRun == 0 || col.PacketIns == 0 {
		t.Errorf("merged counters empty: events=%d packetins=%d", col.EventsRun, col.PacketIns)
	}
}

// TestHybridCouplingThrottlesPackets: flow-level background load on the
// shared bottleneck must slow a packet-level foreground transfer — the
// one-way capacity coupling. The same foreground without background
// finishes measurably faster.
func TestHybridCouplingThrottlesPackets(t *testing.T) {
	run := func(withBackground bool) simtime.Duration {
		topo := netgraph.Dumbbell(2, 2, netgraph.Gig,
			netgraph.LinkSpec{BandwidthBps: 1e8, Delay: simtime.Millisecond})
		h0, h1 := topo.MustLookup("h0"), topo.MustLookup("h1")
		r0, r1 := topo.MustLookup("r0"), topo.MustLookup("r1")
		var tr traffic.Trace
		// Demand 0: packet-level foreground, a backlogged 4e6-bit TCP
		// transfer across the shared 100 Mbps bottleneck (TCP so every
		// bit must actually traverse the residual capacity).
		fg := cbr(h0, r0, 0, 4e6, math.Inf(1), 30000)
		fg.TCP = true
		fg.Key.Proto = header.ProtoTCP
		tr = append(tr, fg)
		if withBackground {
			// Demand 1: flow-level background claiming ~80% of the
			// bottleneck for the whole window.
			bg := cbr(h1, r1, 0, math.Inf(1), 8e7, 30001)
			bg.Duration = 2 * simtime.Second
			tr = append(tr, bg)
		}
		hyb := New(Config{
			Topology: topo, Miss: dataplane.MissDrop,
			PacketLevel: func(i int, d traffic.Demand) bool { return i == 0 },
		})
		// Pre-install routes in the shared network so both fidelities
		// forward from t=0 (the E3 identical-state methodology).
		installMACRoutes(hyb.Network())
		hyb.Load(tr)
		mustRun(hyb, simtime.Time(10*simtime.Second))
		for _, r := range hyb.Records() {
			if r.ID == 1 {
				if !r.Completed {
					t.Fatalf("foreground did not complete (background=%v)", withBackground)
				}
				return r.FCT()
			}
		}
		t.Fatalf("foreground record missing")
		return 0
	}
	alone := run(false)
	squeezed := run(true)
	// The background claims 80% of the bottleneck, so the squeezed run
	// must be clearly slower. (TCP loss recovery — RTO-floor bound —
	// dominates both runs, so the ratio lands well under the raw 5×
	// bandwidth ratio; the simulation is deterministic, so a 1.5×
	// threshold is stable.)
	if float64(squeezed) < 1.5*float64(alone) {
		t.Errorf("coupling missing: FCT alone %v vs with background %v", alone, squeezed)
	}
}
