package hybrid

import (
	"context"
	"reflect"
	"testing"

	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/eventq"
	"horse/internal/simevent"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/tcpmodel"
	"horse/internal/traffic"
)

// hybridOpts selects the bounded-memory variants: streamed record sink
// and/or trace-reader ingestion, plus the event-queue backend.
type hybridOpts struct {
	sink   bool
	reader bool
	queue  eventq.Backend
}

// runSplit runs the reactive dumbbell scenario at 50% packet fidelity
// with the selected variants and returns the load-order records plus the
// merged counter snapshot.
func runSplit(t *testing.T, opt hybridOpts) ([]stats.FlowRecord, stats.Counters) {
	t.Helper()
	topo, tr := reactiveScenario()
	hyb := New(Config{
		Topology: topo, Miss: dataplane.MissController,
		Controller:     controller.NewChain(&controller.ReactiveMAC{}),
		ControlLatency: simtime.Millisecond,
		TCP:            tcpmodel.Params{RTT: 2200 * simtime.Microsecond, MSS: 1500, InitialWindow: 10},
		PacketLevel:    Fraction(0.5),
		EventQueue:     opt.queue,
	})
	var streamed []stats.FlowRecord
	if opt.sink {
		hyb.SetRecordSink(func(r stats.FlowRecord) { streamed = append(streamed, r) })
	}
	if opt.reader {
		hyb.SetTraceReader(traffic.TraceReader(tr))
	} else {
		hyb.Load(tr)
	}
	col := mustRun(hyb, simtime.Time(simtime.Minute))
	if opt.sink {
		if n := len(col.Flows()); n != 0 {
			t.Fatalf("sink mode retained %d merged records", n)
		}
		if n := len(hyb.FlowCollector().Flows()) + len(hyb.PacketCollector().Flows()); n != 0 {
			t.Fatalf("sink mode retained %d sub-engine records", n)
		}
		return streamed, col.Counters()
	}
	return hyb.Records(), col.Counters()
}

// diffCounters compares merged counter snapshots modulo EventsRun, which
// legitimately differs under reader ingestion (each streamed demand costs
// one ingest dispatch on the shared kernel).
func diffCounters(t *testing.T, name string, want, got stats.Counters) {
	t.Helper()
	want.EventsRun, got.EventsRun = 0, 0
	if want != got {
		t.Errorf("%s: counters diverged:\nwant %+v\n got %+v", name, want, got)
	}
}

// TestHybridStreamedMatchesRetained is the hybrid half of the
// bounded-memory equivalence contract: the incrementally renumbered sink
// stream must be byte-identical to the retained Records() order — and the
// trace-reader ingestion path must reproduce the eager Load run — on both
// event-queue backends, in every combination.
func TestHybridStreamedMatchesRetained(t *testing.T) {
	for _, q := range []eventq.Backend{eventq.BackendHeap, eventq.BackendWheel} {
		name := map[eventq.Backend]string{eventq.BackendHeap: "heap", eventq.BackendWheel: "wheel"}[q]
		want, wantC := runSplit(t, hybridOpts{queue: q})
		if len(want) == 0 {
			t.Fatal("retained run produced no records")
		}
		for _, opt := range []hybridOpts{
			{sink: true, queue: q},
			{reader: true, queue: q},
			{sink: true, reader: true, queue: q},
		} {
			got, gotC := runSplit(t, opt)
			label := name
			if opt.sink {
				label += "+sink"
			}
			if opt.reader {
				label += "+reader"
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s: records diverged (%d vs %d)", label, len(want), len(got))
				for i := range want {
					if i < len(got) && want[i] != got[i] {
						t.Errorf("%s: record %d:\nwant %+v\n got %+v", label, i, want[i], got[i])
						break
					}
				}
			}
			diffCounters(t, label, wantC, gotC)
		}
	}
}

// TestHybridCancelPartialRecords is the regression for Records() after a
// canceled Run: the partial bookkeeping must yield a consistent
// load-order record set — never a panic on IDs the maps don't cover —
// and the streamed path must flush its reorder buffer the same way.
func TestHybridCancelPartialRecords(t *testing.T) {
	run := func(sink bool) ([]stats.FlowRecord, error) {
		topo, tr := reactiveScenario()
		hyb := New(Config{
			Topology: topo, Miss: dataplane.MissController,
			Controller:     controller.NewChain(&controller.ReactiveMAC{}),
			ControlLatency: simtime.Millisecond,
			TCP:            tcpmodel.Params{RTT: 2200 * simtime.Microsecond, MSS: 1500, InitialWindow: 10},
			PacketLevel:    Fraction(0.5),
		})
		var streamed []stats.FlowRecord
		if sink {
			hyb.SetRecordSink(func(r stats.FlowRecord) { streamed = append(streamed, r) })
		}
		hyb.SetTraceReader(traffic.TraceReader(tr))
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		hyb.SetProgress(5*simtime.Millisecond, func(simevent.Progress) {
			if n++; n == 2 {
				cancel()
			}
		})
		_, err := hyb.Run(ctx, simtime.Time(simtime.Minute))
		if sink {
			return streamed, err
		}
		return hyb.Records(), err
	}
	retained, err := run(false)
	if err != context.Canceled {
		t.Fatalf("retained run: err = %v, want context.Canceled", err)
	}
	streamed, err := run(true)
	if err != context.Canceled {
		t.Fatalf("streamed run: err = %v, want context.Canceled", err)
	}
	if !reflect.DeepEqual(retained, streamed) {
		t.Errorf("canceled runs diverged: retained %d records, streamed %d", len(retained), len(streamed))
	}
	for i := 1; i < len(retained); i++ {
		if retained[i].ID <= retained[i-1].ID {
			t.Errorf("records out of load order at %d: %d after %d", i, retained[i].ID, retained[i-1].ID)
		}
	}
}
