// Package hybrid couples the flow-level and packet-level engines under one
// simulation kernel — the hybrid-fidelity mode the simulator is named for.
// Flagged foreground demands are simulated packet by packet while the
// background stays flow-level, all under a single virtual clock and a
// single OpenFlow control plane:
//
//   - Both engines share one simcore.Kernel, so their events interleave in
//     strict time order, and one dataplane.Network, so a FlowMod installs
//     once and both fidelities forward through it.
//   - The controller attaches to the flow engine; packet-engine punts are
//     routed into the same control plane (PuntSink), and applied messages
//     echo back to the packet engine (OnApply → NotifyApplied) so parked
//     packets retry the pipeline when rules install.
//   - Coupling is one-way by construction: whenever the fair-share
//     allocator shifts a link direction's aggregate flow-level rate by
//     more than RateEpsilon (OnRateShift), that rate is subtracted from
//     the capacity the packet engine's transmitter sees on the link
//     (SetExternalLoad), so background load squeezes foreground packets
//     exactly where they share links.
//
// E7 sweeps the fraction of packet-level flows to chart the fidelity/cost
// frontier this buys.
package hybrid

import (
	"context"
	"fmt"
	"io"
	"sort"

	"horse/internal/dataplane"
	"horse/internal/eventq"
	"horse/internal/fairshare"
	"horse/internal/flowsim"
	"horse/internal/linkmodel"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/packetsim"
	"horse/internal/simcore"
	"horse/internal/simevent"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/tcpmodel"
	"horse/internal/traffic"
)

// Config parameterizes a hybrid run. Field semantics match the underlying
// engines' configs.
type Config struct {
	// Topology is required.
	Topology *netgraph.Topology
	// Controller is the one control plane both fidelities report to (nil
	// means none).
	Controller flowsim.Controller
	// Miss is the table-miss behavior of every switch.
	Miss dataplane.MissBehavior
	// ControlLatency delays every switch↔controller message (default 1ms).
	ControlLatency simtime.Duration
	// TCP parameterizes the flow engine's TCP model.
	TCP tcpmodel.Params
	// StatsEvery samples flow-level link utilization at this period.
	StatsEvery simtime.Duration
	// UseCalendarQueue selects the shared kernel's calendar queue.
	//
	// Deprecated: set EventQueue to eventq.BackendCalendar instead. A
	// non-default EventQueue wins when both are set.
	UseCalendarQueue bool
	// EventQueue selects the shared kernel's event-queue backend.
	EventQueue eventq.Backend
	// RateEpsilon is the fair-share significance threshold; it also gates
	// how often the packet engine's residual capacities recompute.
	RateEpsilon float64
	// QueuePackets is the packet engine's per-port queue capacity.
	QueuePackets int
	// RTOMin is the packet engine's minimum retransmission timeout.
	RTOMin simtime.Duration
	// Links is the per-link-direction degradation registry. A hybrid run
	// hands ONE Set to both engines (nil means New builds a pristine one):
	// the flow engine folds loss into its TCP demand caps and rate scaling
	// into fair-share capacities, while the packet engine corrupts frames
	// and scales transmitters off the same state, so both fidelities see
	// one channel.
	Links *linkmodel.Set

	// PacketLevel flags the demands to simulate at packet granularity
	// (called per Load with the demand's load order i). Nil means none —
	// a pure flow-level run on the hybrid plumbing. See Fraction.
	PacketLevel func(i int, d traffic.Demand) bool
}

// Fraction returns a PacketLevel selector flagging ~p of the load-order
// demand stream, spread evenly (Bresenham): p=0 flags none, p=1 all.
func Fraction(p float64) func(i int, d traffic.Demand) bool {
	return func(i int, _ traffic.Demand) bool {
		return int(float64(i+1)*p) > int(float64(i)*p)
	}
}

// Simulator runs both engines on one kernel. Create with New, feed with
// Load, execute with Run.
type Simulator struct {
	cfg  Config
	k    *simcore.Kernel
	net  *dataplane.Network
	flow *flowsim.Simulator
	pkt  *packetsim.Simulator

	// Per-engine load-order bookkeeping: the trace index of the i-th
	// demand handed to each engine, plus its start time (to undo the
	// arrival sort when mapping flow-engine IDs back to trace indices).
	flowIdx    []int
	flowStarts []simtime.Time
	pktIdx     []int
	loaded     int

	// sink, when set, streams the merged (load-order) records instead of
	// accumulating them in the merged collector; merged caches the
	// collector built at the end of Run so repeated Collector() calls
	// cannot re-stream.
	sink   func(stats.FlowRecord)
	merged *stats.Collector

	// Streaming delivery state (sink != nil, armed by startStream): each
	// sub-engine record renumbers to its trace ID as it finalizes and
	// emits through streamCol's flow sink in load order, reordered by the
	// streamNext/streamPending buffer. flowRank maps flow-engine IDs to
	// trace indices, precomputed before the run (eager loads only — reader
	// ingestion arrives already in arrival order, so flowIdx is the map).
	streaming     bool
	flowRank      []int
	streamCol     *stats.Collector
	streamNext    int
	streamPending map[int]stats.FlowRecord

	// Trace-reader ingestion: one demand buffered, pulled as virtual time
	// reaches each start (see SetTraceReader).
	reader     traffic.Reader
	readerLast simtime.Time
	readerErr  error
	begun      bool
}

// New builds a hybrid simulator over the configured topology.
func New(cfg Config) *Simulator {
	if cfg.Topology == nil {
		panic("hybrid: Config.Topology is required")
	}
	k := simcore.New(simcore.Config{Backend: cfg.EventQueue, UseCalendarQueue: cfg.UseCalendarQueue})
	net := dataplane.NewNetwork(cfg.Topology, cfg.Miss)
	links := cfg.Links
	if links == nil {
		links = linkmodel.NewSet(1, len(cfg.Topology.Links()))
	}
	s := &Simulator{cfg: cfg, k: k, net: net}
	s.pkt = packetsim.New(packetsim.Config{
		Topology:     cfg.Topology,
		Kernel:       k,
		Network:      net,
		Miss:         cfg.Miss,
		QueuePackets: cfg.QueuePackets,
		RTOMin:       cfg.RTOMin,
		Links:        links,
		PuntSink: func(msg openflow.Message) {
			// Packet-engine punts enter the shared control plane with the
			// same modeled latency as flow-level ones.
			s.flow.SendToController(msg)
		},
	})
	s.flow = flowsim.New(flowsim.Config{
		Topology:         cfg.Topology,
		Kernel:           k,
		Network:          net,
		Controller:       cfg.Controller,
		Miss:             cfg.Miss,
		ControlLatency:   cfg.ControlLatency,
		TCP:              cfg.TCP,
		StatsEvery:       cfg.StatsEvery,
		UseCalendarQueue: cfg.UseCalendarQueue,
		RateEpsilon:      cfg.RateEpsilon,
		Links:            links,
		OnApply:          s.pkt.NotifyApplied,
		OnRateShift:      s.applyRateShift,
		// Topology dynamics apply once, at the flow engine (which owns
		// the shared state flips, table wipes, and PortStatus punts);
		// these hooks propagate the data-plane consequences to the packet
		// engine at the same virtual instant.
		OnLinkChange:       s.pkt.NotifyLinkChange,
		OnSwitchChange:     s.pkt.NotifySwitchChange,
		OnControllerChange: s.pkt.NotifyControllerChange,
	})
	return s
}

// ScheduleLinkChange schedules a link failure (up=false) or recovery,
// applied to both engines under the shared clock: the flow engine flips
// the shared topology and control plane, and the packet engine flushes its
// dead-link queues at the same instant.
func (s *Simulator) ScheduleLinkChange(at simtime.Time, link netgraph.LinkID, up bool) {
	s.flow.ScheduleLinkChange(at, link, up)
}

// ScheduleLinkDegrade schedules a link-model change across both engines:
// the flow engine applies it (capacity re-scale, TCP loss caps) to the
// shared Set, which the packet engine reads per frame — one channel,
// both fidelities. Passing nil m restores the pristine link.
func (s *Simulator) ScheduleLinkDegrade(at simtime.Time, link netgraph.LinkID, m linkmodel.Model) {
	s.flow.ScheduleLinkDegrade(at, link, m)
}

// ScheduleSwitchChange schedules a switch crash or restart across both
// engines (table wipe on the shared network, packet flushes, PortStatus).
func (s *Simulator) ScheduleSwitchChange(at simtime.Time, sw netgraph.NodeID, up bool) {
	s.flow.ScheduleSwitchChange(at, sw, up)
}

// ScheduleControllerChange schedules a controller detach or reattach. The
// controller attaches to the flow engine, whose gate also covers packet
// punts (they route through the same control plane via the punt sink); on
// reattach, both engines' parked work re-announces.
func (s *Simulator) ScheduleControllerChange(at simtime.Time, attached bool) {
	s.flow.ScheduleControllerChange(at, attached)
}

// applyRateShift recomputes the residual capacity the packet engine sees
// on every link direction whose flow-level aggregate moved significantly.
func (s *Simulator) applyRateShift(resources []fairshare.ResourceID) {
	for _, r := range resources {
		link, fwd, ok := flowsim.ResourceLinkDir(r)
		if !ok {
			continue
		}
		s.pkt.SetExternalLoad(link, fwd, s.flow.LinkRateBps(link, fwd))
	}
}

// Kernel returns the shared simulation kernel.
func (s *Simulator) Kernel() *simcore.Kernel { return s.k }

// Now returns the current virtual time of the shared kernel.
func (s *Simulator) Now() simtime.Time { return s.k.Now() }

// Observe registers an observer of applied network dynamics. Topology and
// control-plane changes apply once, at the flow engine (which owns the
// shared state flips), so observers register there.
func (s *Simulator) Observe(fn simevent.Observer) { s.flow.Observe(fn) }

// SetRecordSink streams every merged stats.FlowRecord to sink in load
// (trace) order — the same records, in the same order,
// Collector().Flows() would have held. Records are renumbered and
// delivered incrementally as flows finalize: both sub-engines run with
// their own sinks installed and evict per-flow state as they go, so a
// multi-million-flow hybrid run holds no retained record set on either
// side of the merge. Delivery is gated through a reorder buffer keyed by
// trace index (a record emits once every lower trace index has emitted),
// which in practice stays near-empty because completion order tracks
// start order. Install before Run.
func (s *Simulator) SetRecordSink(sink func(stats.FlowRecord)) { s.sink = sink }

// SetProgress arms progress reporting off the shared kernel's pre-advance
// path: fn receives a simevent.Progress at most once per `every` of
// virtual time. Install before Run.
func (s *Simulator) SetProgress(every simtime.Duration, fn simevent.ProgressFunc) {
	simevent.ArmProgress(s.k, every, fn)
}

// Topology returns the simulated topology (shared by both engines).
func (s *Simulator) Topology() *netgraph.Topology { return s.cfg.Topology }

// Network exposes the shared data-plane state.
func (s *Simulator) Network() *dataplane.Network { return s.net }

// FlowCollector returns the flow engine's collector (control-plane
// counters, link-utilization series).
func (s *Simulator) FlowCollector() *stats.Collector { return s.flow.Collector() }

// PacketCollector returns the packet engine's collector.
func (s *Simulator) PacketCollector() *stats.Collector { return s.pkt.Collector() }

// PacketsForwarded reports the packet engine's forwarded-hop count.
func (s *Simulator) PacketsForwarded() uint64 { return s.pkt.PacketsForwarded() }

// Split reports how many loaded demands went to each engine.
func (s *Simulator) Split() (packetFlows, flowFlows int) {
	return len(s.pktIdx), len(s.flowIdx)
}

// Load splits the trace across the engines per cfg.PacketLevel. Call any
// number of times before Run; the selector index is cumulative.
func (s *Simulator) Load(tr traffic.Trace) {
	for _, d := range tr {
		s.loadDemand(d)
	}
}

// loadDemand routes one demand to its engine and records the load-order
// bookkeeping — the shared step of eager Load and streamed ingestion.
func (s *Simulator) loadDemand(d traffic.Demand) {
	if s.cfg.PacketLevel != nil && s.cfg.PacketLevel(s.loaded, d) {
		s.pkt.Load(traffic.Trace{d})
		s.pktIdx = append(s.pktIdx, s.loaded)
	} else {
		s.flow.InjectAt(d)
		s.flowIdx = append(s.flowIdx, s.loaded)
		s.flowStarts = append(s.flowStarts, d.Start)
	}
	s.loaded++
}

// SetTraceReader streams the workload in from r instead of (or after)
// eager Load calls: demands are pulled one at a time as virtual time
// reaches them and split across the engines exactly as Load would, so
// arbitrarily long traces ingest with one demand buffered. r must yield
// nondecreasing Start times; a reader error stops ingestion and is
// returned by Run (or TraceErr). The ingest event carries the flow
// engine's arrival order key, and each engine's first per-flow event
// follows it under the sub-engine FIFO/key contracts, so a streamed run
// reproduces the eager run's records byte for byte. Install before Run.
func (s *Simulator) SetTraceReader(r traffic.Reader) {
	if s.begun {
		panic("hybrid: SetTraceReader after Run")
	}
	s.reader = r
}

// TraceErr reports the first trace-reader failure, if any (also folded
// into Run's error).
func (s *Simulator) TraceErr() error { return s.readerErr }

// pullNext buffers the reader's next demand as an ingest event at its
// start time — one outstanding demand, the bounded-lookahead invariant.
func (s *Simulator) pullNext() {
	d, err := s.reader.Next()
	if err != nil {
		if err != io.EOF {
			s.readerErr = err
		}
		return
	}
	if d.Start < s.readerLast {
		s.readerErr = fmt.Errorf("hybrid: trace reader went backwards (%v after %v): %w",
			d.Start, s.readerLast, traffic.ErrTraceOrder)
		return
	}
	s.readerLast = d.Start
	s.k.Schedule(&ingestEvent{s: s, at: d.Start, d: d})
}

// ingestEvent loads one streamed demand at its start instant and pulls
// the next. Its order key is the flow engine's arrival key: a flow-level
// demand's arrival follows it FIFO under the same key, and a
// packet-level demand's first send sorts later at the same instant by
// class — both exactly where the eager-loaded run dispatches them.
type ingestEvent struct {
	s  *Simulator
	at simtime.Time
	d  traffic.Demand
}

func (e *ingestEvent) Time() simtime.Time { return e.at }
func (e *ingestEvent) OrderKey() uint64   { return simcore.OrderKey(simcore.ClassData+0, 0) }
func (e *ingestEvent) Release()           {}
func (e *ingestEvent) Fire() {
	e.s.loadDemand(e.d)
	e.s.pullNext()
}

// Run executes both engines until the shared queue drains, virtual time
// passes until, or ctx is cancelled, and returns the merged collector
// (see Collector) — on cancellation a partial but consistent one,
// together with ctx.Err(). Run may be called once.
func (s *Simulator) Run(ctx context.Context, until simtime.Time) (*stats.Collector, error) {
	s.begun = true
	s.startStream()
	s.flow.Begin()
	s.pkt.Begin()
	if s.reader != nil {
		s.pullNext()
	}
	err := s.k.RunContext(ctx, until)
	s.flow.Finish()
	s.pkt.Finish()
	s.finishStream()
	if err == nil {
		err = s.readerErr
	}
	s.merged = s.buildCollector()
	return s.merged, err
}

// startStream arms incremental streamed delivery when a record sink is
// installed: both sub-engines get sinks that renumber each record to its
// trace ID and hand it to the reorder buffer, and (for eager loads) the
// flow engine's arrival-rank → trace-index map is precomputed — the same
// map the retained Records() derives by stable-sorting after the fact.
func (s *Simulator) startStream() {
	if s.sink == nil {
		return
	}
	s.streaming = true
	s.streamCol = stats.NewCollector(0)
	s.streamCol.SetFlowSink(s.sink)
	s.streamPending = make(map[int]stats.FlowRecord)
	if s.reader == nil {
		order := make([]int, len(s.flowIdx))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return s.flowStarts[order[a]] < s.flowStarts[order[b]]
		})
		s.flowRank = make([]int, len(order))
		for i, o := range order {
			s.flowRank[i] = s.flowIdx[o]
		}
	}
	s.flow.SetRecordSink(func(r stats.FlowRecord) {
		if idx, ok := s.flowTraceIndex(r.ID); ok {
			s.streamEmit(idx, r)
		}
	})
	s.pkt.SetRecordSink(func(r stats.FlowRecord) {
		if r.ID >= 1 && int(r.ID) <= len(s.pktIdx) {
			s.streamEmit(s.pktIdx[r.ID-1], r)
		}
	})
}

// flowTraceIndex maps a flow-engine record ID to its trace index. Reader
// ingestion delivers demands in nondecreasing start order, so the flow
// engine's arrival order equals ingestion order and flowIdx itself is
// the map; eager loads use the precomputed rank map. IDs outside either
// map (possible only on partial, canceled runs) report !ok.
func (s *Simulator) flowTraceIndex(id int64) (int, bool) {
	if s.reader != nil {
		if id < 1 || int(id) > len(s.flowIdx) {
			return 0, false
		}
		return s.flowIdx[id-1], true
	}
	if id < 1 || int(id) > len(s.flowRank) {
		return 0, false
	}
	return s.flowRank[id-1], true
}

// streamEmit delivers one renumbered record in load order: records ahead
// of the next expected trace index park in the reorder buffer and drain
// the moment the gap closes.
func (s *Simulator) streamEmit(idx int, r stats.FlowRecord) {
	r.ID = int64(idx + 1)
	if idx != s.streamNext {
		s.streamPending[idx] = r
		return
	}
	s.streamCol.AddFlow(r)
	s.streamCol.CountOutcome(r)
	s.streamNext++
	for {
		r2, ok := s.streamPending[s.streamNext]
		if !ok {
			return
		}
		delete(s.streamPending, s.streamNext)
		s.streamCol.AddFlow(r2)
		s.streamCol.CountOutcome(r2)
		s.streamNext++
	}
}

// finishStream flushes records still parked behind a trace index that
// never produced one — a demand past the time bound, or a canceled run —
// in ascending trace order, which keeps the overall stream identical to
// the retained Records() sequence (it skips the same holes).
func (s *Simulator) finishStream() {
	if !s.streaming || len(s.streamPending) == 0 {
		return
	}
	keys := make([]int, 0, len(s.streamPending))
	for k := range s.streamPending {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		r := s.streamPending[k]
		delete(s.streamPending, k)
		s.streamCol.AddFlow(r)
		s.streamCol.CountOutcome(r)
	}
}

// RunUntil is Run without a lifecycle: no cancellation, no error.
//
// Deprecated: use Run with a context.
func (s *Simulator) RunUntil(until simtime.Time) *stats.Collector {
	col, _ := s.Run(context.Background(), until)
	return col
}

// Records returns one record per demand that produced one, ordered and
// re-numbered by load order (ID = trace index + 1) regardless of which
// engine simulated it — the comparable unit for fidelity sweeps. The
// load-order map derives from whatever bookkeeping exists at call time,
// so after a canceled Run it covers the partial trace: records whose IDs
// fall outside the maps are skipped, never a panic. With a record sink
// installed the sub-engines retain nothing and Records reports empty —
// the records went to the sink.
func (s *Simulator) Records() []stats.FlowRecord {
	out := make([]stats.FlowRecord, 0, len(s.flowIdx)+len(s.pktIdx))
	// The flow engine numbers flows in arrival order: stable-sort the
	// flow-level subset by start time to recover trace indices.
	order := make([]int, len(s.flowIdx))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return s.flowStarts[order[a]] < s.flowStarts[order[b]] })
	for _, r := range s.flow.Collector().Flows() {
		if r.ID < 1 || int(r.ID) > len(order) {
			continue
		}
		r.ID = int64(s.flowIdx[order[r.ID-1]] + 1)
		out = append(out, r)
	}
	// The packet engine numbers flows in load order directly.
	for _, r := range s.pkt.Collector().Flows() {
		if r.ID < 1 || int(r.ID) > len(s.pktIdx) {
			continue
		}
		r.ID = int64(s.pktIdx[r.ID-1] + 1)
		out = append(out, r)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Collector merges both engines' output: the flow engine's link series and
// control counters, every Records entry, and the kernel's dispatch count
// as EventsRun (the hybrid's total work metric). After Run it returns the
// collector Run built; before, it assembles a fresh snapshot.
func (s *Simulator) Collector() *stats.Collector {
	if s.merged != nil {
		return s.merged
	}
	// Mid-run snapshots cannot duplicate records in the stream: with a
	// sink installed the records flow through streamEmit as flows
	// finalize, and buildCollector only folds the accumulated tallies.
	return s.buildCollector()
}

// buildCollector assembles the merged collector. With a record sink the
// records were already streamed incrementally (streamEmit), so only the
// outcome tallies fold in; otherwise the retained Records() accumulate.
func (s *Simulator) buildCollector() *stats.Collector {
	fc, pc := s.flow.Collector(), s.pkt.Collector()
	col := stats.NewCollector(s.cfg.StatsEvery)
	for _, smp := range fc.LinkSeries() {
		col.AddLinkSample(smp)
	}
	if s.streaming {
		col.FlowsCompleted = s.streamCol.FlowsCompleted
		col.FlowsDropped = s.streamCol.FlowsDropped
		col.FlowsLooped = s.streamCol.FlowsLooped
	} else {
		for _, r := range s.Records() {
			col.AddFlow(r)
			col.CountOutcome(r)
		}
	}
	col.FlowsStarted = fc.FlowsStarted + pc.FlowsStarted
	col.PacketIns = fc.PacketIns + pc.PacketIns
	col.FlowMods = fc.FlowMods
	col.RateChanges = fc.RateChanges
	col.PathChanges = fc.PathChanges
	col.PacketsLost = fc.PacketsLost + pc.PacketsLost
	col.PacketsCorrupted = fc.PacketsCorrupted + pc.PacketsCorrupted
	col.PacketsSent = fc.PacketsSent + pc.PacketsSent
	col.Retransmits = fc.Retransmits + pc.Retransmits
	for _, at := range fc.RerouteTimes() {
		col.AddReroute(at)
	}
	col.EventsRun = s.k.Dispatched()
	return col
}
