// Package hybrid couples the flow-level and packet-level engines under one
// simulation kernel — the hybrid-fidelity mode the simulator is named for.
// Flagged foreground demands are simulated packet by packet while the
// background stays flow-level, all under a single virtual clock and a
// single OpenFlow control plane:
//
//   - Both engines share one simcore.Kernel, so their events interleave in
//     strict time order, and one dataplane.Network, so a FlowMod installs
//     once and both fidelities forward through it.
//   - The controller attaches to the flow engine; packet-engine punts are
//     routed into the same control plane (PuntSink), and applied messages
//     echo back to the packet engine (OnApply → NotifyApplied) so parked
//     packets retry the pipeline when rules install.
//   - Coupling is one-way by construction: whenever the fair-share
//     allocator shifts a link direction's aggregate flow-level rate by
//     more than RateEpsilon (OnRateShift), that rate is subtracted from
//     the capacity the packet engine's transmitter sees on the link
//     (SetExternalLoad), so background load squeezes foreground packets
//     exactly where they share links.
//
// E7 sweeps the fraction of packet-level flows to chart the fidelity/cost
// frontier this buys.
package hybrid

import (
	"context"
	"sort"

	"horse/internal/dataplane"
	"horse/internal/eventq"
	"horse/internal/fairshare"
	"horse/internal/flowsim"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/packetsim"
	"horse/internal/simcore"
	"horse/internal/simevent"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/tcpmodel"
	"horse/internal/traffic"
)

// Config parameterizes a hybrid run. Field semantics match the underlying
// engines' configs.
type Config struct {
	// Topology is required.
	Topology *netgraph.Topology
	// Controller is the one control plane both fidelities report to (nil
	// means none).
	Controller flowsim.Controller
	// Miss is the table-miss behavior of every switch.
	Miss dataplane.MissBehavior
	// ControlLatency delays every switch↔controller message (default 1ms).
	ControlLatency simtime.Duration
	// TCP parameterizes the flow engine's TCP model.
	TCP tcpmodel.Params
	// StatsEvery samples flow-level link utilization at this period.
	StatsEvery simtime.Duration
	// UseCalendarQueue selects the shared kernel's calendar queue.
	//
	// Deprecated: set EventQueue to eventq.BackendCalendar instead. A
	// non-default EventQueue wins when both are set.
	UseCalendarQueue bool
	// EventQueue selects the shared kernel's event-queue backend.
	EventQueue eventq.Backend
	// RateEpsilon is the fair-share significance threshold; it also gates
	// how often the packet engine's residual capacities recompute.
	RateEpsilon float64
	// QueuePackets is the packet engine's per-port queue capacity.
	QueuePackets int
	// RTOMin is the packet engine's minimum retransmission timeout.
	RTOMin simtime.Duration

	// PacketLevel flags the demands to simulate at packet granularity
	// (called per Load with the demand's load order i). Nil means none —
	// a pure flow-level run on the hybrid plumbing. See Fraction.
	PacketLevel func(i int, d traffic.Demand) bool
}

// Fraction returns a PacketLevel selector flagging ~p of the load-order
// demand stream, spread evenly (Bresenham): p=0 flags none, p=1 all.
func Fraction(p float64) func(i int, d traffic.Demand) bool {
	return func(i int, _ traffic.Demand) bool {
		return int(float64(i+1)*p) > int(float64(i)*p)
	}
}

// Simulator runs both engines on one kernel. Create with New, feed with
// Load, execute with Run.
type Simulator struct {
	cfg  Config
	k    *simcore.Kernel
	net  *dataplane.Network
	flow *flowsim.Simulator
	pkt  *packetsim.Simulator

	// Per-engine load-order bookkeeping: the trace index of the i-th
	// demand handed to each engine, plus its start time (to undo the
	// arrival sort when mapping flow-engine IDs back to trace indices).
	flowIdx    []int
	flowStarts []simtime.Time
	pktIdx     []int
	loaded     int

	// sink, when set, streams the merged (load-order) records instead of
	// accumulating them in the merged collector; merged caches the
	// collector built at the end of Run so repeated Collector() calls
	// cannot re-stream.
	sink   func(stats.FlowRecord)
	merged *stats.Collector
}

// New builds a hybrid simulator over the configured topology.
func New(cfg Config) *Simulator {
	if cfg.Topology == nil {
		panic("hybrid: Config.Topology is required")
	}
	k := simcore.New(simcore.Config{Backend: cfg.EventQueue, UseCalendarQueue: cfg.UseCalendarQueue})
	net := dataplane.NewNetwork(cfg.Topology, cfg.Miss)
	s := &Simulator{cfg: cfg, k: k, net: net}
	s.pkt = packetsim.New(packetsim.Config{
		Topology:     cfg.Topology,
		Kernel:       k,
		Network:      net,
		Miss:         cfg.Miss,
		QueuePackets: cfg.QueuePackets,
		RTOMin:       cfg.RTOMin,
		PuntSink: func(msg openflow.Message) {
			// Packet-engine punts enter the shared control plane with the
			// same modeled latency as flow-level ones.
			s.flow.SendToController(msg)
		},
	})
	s.flow = flowsim.New(flowsim.Config{
		Topology:         cfg.Topology,
		Kernel:           k,
		Network:          net,
		Controller:       cfg.Controller,
		Miss:             cfg.Miss,
		ControlLatency:   cfg.ControlLatency,
		TCP:              cfg.TCP,
		StatsEvery:       cfg.StatsEvery,
		UseCalendarQueue: cfg.UseCalendarQueue,
		RateEpsilon:      cfg.RateEpsilon,
		OnApply:          s.pkt.NotifyApplied,
		OnRateShift:      s.applyRateShift,
		// Topology dynamics apply once, at the flow engine (which owns
		// the shared state flips, table wipes, and PortStatus punts);
		// these hooks propagate the data-plane consequences to the packet
		// engine at the same virtual instant.
		OnLinkChange:       s.pkt.NotifyLinkChange,
		OnSwitchChange:     s.pkt.NotifySwitchChange,
		OnControllerChange: s.pkt.NotifyControllerChange,
	})
	return s
}

// ScheduleLinkChange schedules a link failure (up=false) or recovery,
// applied to both engines under the shared clock: the flow engine flips
// the shared topology and control plane, and the packet engine flushes its
// dead-link queues at the same instant.
func (s *Simulator) ScheduleLinkChange(at simtime.Time, link netgraph.LinkID, up bool) {
	s.flow.ScheduleLinkChange(at, link, up)
}

// ScheduleSwitchChange schedules a switch crash or restart across both
// engines (table wipe on the shared network, packet flushes, PortStatus).
func (s *Simulator) ScheduleSwitchChange(at simtime.Time, sw netgraph.NodeID, up bool) {
	s.flow.ScheduleSwitchChange(at, sw, up)
}

// ScheduleControllerChange schedules a controller detach or reattach. The
// controller attaches to the flow engine, whose gate also covers packet
// punts (they route through the same control plane via the punt sink); on
// reattach, both engines' parked work re-announces.
func (s *Simulator) ScheduleControllerChange(at simtime.Time, attached bool) {
	s.flow.ScheduleControllerChange(at, attached)
}

// applyRateShift recomputes the residual capacity the packet engine sees
// on every link direction whose flow-level aggregate moved significantly.
func (s *Simulator) applyRateShift(resources []fairshare.ResourceID) {
	for _, r := range resources {
		link, fwd, ok := flowsim.ResourceLinkDir(r)
		if !ok {
			continue
		}
		s.pkt.SetExternalLoad(link, fwd, s.flow.LinkRateBps(link, fwd))
	}
}

// Kernel returns the shared simulation kernel.
func (s *Simulator) Kernel() *simcore.Kernel { return s.k }

// Now returns the current virtual time of the shared kernel.
func (s *Simulator) Now() simtime.Time { return s.k.Now() }

// Observe registers an observer of applied network dynamics. Topology and
// control-plane changes apply once, at the flow engine (which owns the
// shared state flips), so observers register there.
func (s *Simulator) Observe(fn simevent.Observer) { s.flow.Observe(fn) }

// SetRecordSink streams every merged stats.FlowRecord to sink at the end
// of the run, in load (trace) order — the same records, in the same
// order, Collector().Flows() would have held. The per-engine collectors
// still buffer their own records internally (the hybrid must re-number
// and merge across engines), so unlike the flow engine's sink this bounds
// only the merged copy. Install before Run.
func (s *Simulator) SetRecordSink(sink func(stats.FlowRecord)) { s.sink = sink }

// SetProgress arms progress reporting off the shared kernel's pre-advance
// path: fn receives a simevent.Progress at most once per `every` of
// virtual time. Install before Run.
func (s *Simulator) SetProgress(every simtime.Duration, fn simevent.ProgressFunc) {
	simevent.ArmProgress(s.k, every, fn)
}

// Topology returns the simulated topology (shared by both engines).
func (s *Simulator) Topology() *netgraph.Topology { return s.cfg.Topology }

// Network exposes the shared data-plane state.
func (s *Simulator) Network() *dataplane.Network { return s.net }

// FlowCollector returns the flow engine's collector (control-plane
// counters, link-utilization series).
func (s *Simulator) FlowCollector() *stats.Collector { return s.flow.Collector() }

// PacketCollector returns the packet engine's collector.
func (s *Simulator) PacketCollector() *stats.Collector { return s.pkt.Collector() }

// PacketsForwarded reports the packet engine's forwarded-hop count.
func (s *Simulator) PacketsForwarded() uint64 { return s.pkt.PacketsForwarded() }

// Split reports how many loaded demands went to each engine.
func (s *Simulator) Split() (packetFlows, flowFlows int) {
	return len(s.pktIdx), len(s.flowIdx)
}

// Load splits the trace across the engines per cfg.PacketLevel. Call any
// number of times before Run; the selector index is cumulative.
func (s *Simulator) Load(tr traffic.Trace) {
	for _, d := range tr {
		if s.cfg.PacketLevel != nil && s.cfg.PacketLevel(s.loaded, d) {
			s.pkt.Load(traffic.Trace{d})
			s.pktIdx = append(s.pktIdx, s.loaded)
		} else {
			s.flow.InjectAt(d)
			s.flowIdx = append(s.flowIdx, s.loaded)
			s.flowStarts = append(s.flowStarts, d.Start)
		}
		s.loaded++
	}
}

// Run executes both engines until the shared queue drains, virtual time
// passes until, or ctx is cancelled, and returns the merged collector
// (see Collector) — on cancellation a partial but consistent one,
// together with ctx.Err(). Run may be called once.
func (s *Simulator) Run(ctx context.Context, until simtime.Time) (*stats.Collector, error) {
	s.flow.Begin()
	s.pkt.Begin()
	err := s.k.RunContext(ctx, until)
	s.flow.Finish()
	s.pkt.Finish()
	s.merged = s.buildCollector(true)
	return s.merged, err
}

// RunUntil is Run without a lifecycle: no cancellation, no error.
//
// Deprecated: use Run with a context.
func (s *Simulator) RunUntil(until simtime.Time) *stats.Collector {
	col, _ := s.Run(context.Background(), until)
	return col
}

// Records returns one record per demand that produced one, ordered and
// re-numbered by load order (ID = trace index + 1) regardless of which
// engine simulated it — the comparable unit for fidelity sweeps.
func (s *Simulator) Records() []stats.FlowRecord {
	out := make([]stats.FlowRecord, 0, len(s.flowIdx)+len(s.pktIdx))
	// The flow engine numbers flows in arrival order: stable-sort the
	// flow-level subset by start time to recover trace indices.
	order := make([]int, len(s.flowIdx))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return s.flowStarts[order[a]] < s.flowStarts[order[b]] })
	for _, r := range s.flow.Collector().Flows() {
		if r.ID < 1 || int(r.ID) > len(order) {
			continue
		}
		r.ID = int64(s.flowIdx[order[r.ID-1]] + 1)
		out = append(out, r)
	}
	// The packet engine numbers flows in load order directly.
	for _, r := range s.pkt.Collector().Flows() {
		if r.ID < 1 || int(r.ID) > len(s.pktIdx) {
			continue
		}
		r.ID = int64(s.pktIdx[r.ID-1] + 1)
		out = append(out, r)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Collector merges both engines' output: the flow engine's link series and
// control counters, every Records entry, and the kernel's dispatch count
// as EventsRun (the hybrid's total work metric). After Run it returns the
// collector Run built; before, it assembles a fresh snapshot.
func (s *Simulator) Collector() *stats.Collector {
	if s.merged != nil {
		return s.merged
	}
	// Mid-run snapshots never stream: only the one collector Run builds
	// at the end delivers to the record sink, so a Collector() call from
	// a progress or observer hook cannot duplicate records in the stream.
	return s.buildCollector(false)
}

// buildCollector assembles the merged collector. stream=true routes the
// records through the installed sink (the end-of-Run delivery); false
// accumulates them in the snapshot.
func (s *Simulator) buildCollector(stream bool) *stats.Collector {
	fc, pc := s.flow.Collector(), s.pkt.Collector()
	col := stats.NewCollector(s.cfg.StatsEvery)
	if stream && s.sink != nil {
		col.SetFlowSink(s.sink)
	}
	for _, smp := range fc.LinkSeries() {
		col.AddLinkSample(smp)
	}
	for _, r := range s.Records() {
		col.AddFlow(r)
		switch {
		case r.Completed:
			col.FlowsCompleted++
		case r.Outcome == "dropped":
			col.FlowsDropped++
		case r.Outcome == "looped":
			col.FlowsLooped++
		}
	}
	col.FlowsStarted = fc.FlowsStarted + pc.FlowsStarted
	col.PacketIns = fc.PacketIns + pc.PacketIns
	col.FlowMods = fc.FlowMods
	col.RateChanges = fc.RateChanges
	col.PathChanges = fc.PathChanges
	col.PacketsLost = fc.PacketsLost + pc.PacketsLost
	for _, at := range fc.RerouteTimes() {
		col.AddReroute(at)
	}
	col.EventsRun = s.k.Dispatched()
	return col
}
