package netgraph

import (
	"container/heap"
	"math"
	"sort"
)

// Path is a sequence of node IDs from source to destination inclusive.
type Path []NodeID

// Equal reports whether two paths visit the same nodes in the same order.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Cost functions assign a traversal cost to a link. Paths are computed over
// up links only regardless of the cost function.
type Cost func(*Link) float64

// HopCost counts every link as 1 — shortest paths by hop count.
func HopCost(*Link) float64 { return 1 }

// DelayCost uses propagation delay in seconds as the link cost.
func DelayCost(l *Link) float64 { return l.Delay.Seconds() }

// InverseCapacityCost prefers fat links, like classic OSPF reference-cost.
func InverseCapacityCost(l *Link) float64 {
	if l.BandwidthBps <= 0 {
		return math.Inf(1)
	}
	return 1e9 / l.BandwidthBps
}

type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns a minimum-cost path from src to dst over up links,
// or nil if dst is unreachable. Ties are broken toward lower node IDs so
// results are deterministic.
func (t *Topology) ShortestPath(src, dst NodeID, cost Cost) Path {
	dist, prev := t.dijkstra(src, cost, nil)
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	var path Path
	for at := dst; ; at = prev[at] {
		path = append(path, at)
		if at == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// dijkstra runs Dijkstra from src. banned, if non-nil, marks links that must
// not be traversed (used by Yen's algorithm).
func (t *Topology) dijkstra(src NodeID, cost Cost, banned map[LinkID]bool) (dist []float64, prev []NodeID) {
	n := len(t.nodes)
	dist = make([]float64, n)
	prev = make([]NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		node := t.nodes[it.node]
		// Iterate ports in sorted order for determinism.
		for _, p := range node.Ports() {
			lid := node.ports[p]
			l := t.links[lid]
			if !l.Up || (banned != nil && banned[lid]) {
				continue
			}
			c := cost(l)
			if math.IsInf(c, 1) {
				continue
			}
			peer, _ := l.Peer(it.node)
			nd := it.dist + c
			if nd < dist[peer] || (nd == dist[peer] && prev[peer] > it.node) {
				dist[peer] = nd
				prev[peer] = it.node
				heap.Push(q, pqItem{node: peer, dist: nd})
			}
		}
	}
	return dist, prev
}

// PathCost sums the cost of the links along a path; it returns +Inf if any
// consecutive pair is not adjacent via an up link.
func (t *Topology) PathCost(p Path, cost Cost) float64 {
	total := 0.0
	for i := 0; i+1 < len(p); i++ {
		port := t.PortToward(p[i], p[i+1])
		if port == NoPort {
			return math.Inf(1)
		}
		total += cost(t.LinkAt(p[i], port))
	}
	return total
}

// ECMPNextHops returns, for every node, the set of neighbor nodes that lie
// on some minimum-cost path toward dst. The result is indexed by node ID;
// unreachable nodes have a nil entry. This is the substrate for hash-based
// load-balancing groups.
func (t *Topology) ECMPNextHops(dst NodeID, cost Cost) [][]NodeID {
	// Run Dijkstra from dst; for node v, neighbor u is a valid next hop
	// iff dist[u] + cost(v-u) == dist[v].
	dist, _ := t.dijkstra(dst, cost, nil)
	out := make([][]NodeID, len(t.nodes))
	const eps = 1e-12
	for v := range t.nodes {
		if math.IsInf(dist[v], 1) || NodeID(v) == dst {
			continue
		}
		node := t.nodes[v]
		var hops []NodeID
		seen := make(map[NodeID]bool)
		for _, p := range node.Ports() {
			l := t.links[node.ports[p]]
			if !l.Up {
				continue
			}
			u, _ := l.Peer(NodeID(v))
			if seen[u] {
				continue
			}
			if dist[u]+cost(l) <= dist[v]+eps {
				hops = append(hops, u)
				seen[u] = true
			}
		}
		sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
		out[v] = hops
	}
	return out
}

// KShortestPaths returns up to k loop-free paths from src to dst in
// nondecreasing cost order (Yen's algorithm). It returns fewer than k when
// the graph does not contain that many distinct paths.
func (t *Topology) KShortestPaths(src, dst NodeID, k int, cost Cost) []Path {
	if k <= 0 {
		return nil
	}
	first := t.ShortestPath(src, dst, cost)
	if first == nil {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		prevPath := paths[len(paths)-1]
		for i := 0; i+1 < len(prevPath); i++ {
			spurNode := prevPath[i]
			rootPath := prevPath[:i+1]
			banned := make(map[LinkID]bool)
			// Ban the next edge of every accepted path sharing this root.
			for _, p := range paths {
				if len(p) > i+1 && Path(p[:i+1]).Equal(rootPath) {
					port := t.PortToward(p[i], p[i+1])
					if port != NoPort {
						banned[t.LinkAt(p[i], port).ID] = true
					}
				}
			}
			// Ban revisiting root nodes by banning all their links
			// (except the spur node itself).
			for _, rn := range rootPath[:len(rootPath)-1] {
				for _, lid := range t.nodes[rn].ports {
					banned[lid] = true
				}
			}
			spurDist, spurPrev := t.dijkstra(spurNode, cost, banned)
			if math.IsInf(spurDist[dst], 1) {
				continue
			}
			var spurPath Path
			for at := dst; ; at = spurPrev[at] {
				spurPath = append(spurPath, at)
				if at == spurNode {
					break
				}
			}
			for a, b := 0, len(spurPath)-1; a < b; a, b = a+1, b-1 {
				spurPath[a], spurPath[b] = spurPath[b], spurPath[a]
			}
			total := make(Path, 0, i+len(spurPath))
			total = append(total, rootPath[:len(rootPath)-1]...)
			total = append(total, spurPath...)
			dup := false
			for _, c := range candidates {
				if c.Equal(total) {
					dup = true
					break
				}
			}
			for _, p := range paths {
				if p.Equal(total) {
					dup = true
					break
				}
			}
			if !dup {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool {
			ci, cj := t.PathCost(candidates[i], cost), t.PathCost(candidates[j], cost)
			if ci != cj {
				return ci < cj
			}
			return lessPath(candidates[i], candidates[j])
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func lessPath(a, b Path) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Reachable reports whether dst can be reached from src over up links.
func (t *Topology) Reachable(src, dst NodeID) bool {
	if src == dst {
		return true
	}
	visited := make([]bool, len(t.nodes))
	stack := []NodeID{src}
	visited[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range t.Neighbors(v) {
			if u == dst {
				return true
			}
			if !visited[u] {
				visited[u] = true
				stack = append(stack, u)
			}
		}
	}
	return false
}

// Diameter returns the maximum finite hop-count shortest-path length
// between any pair of nodes (0 for empty/singleton graphs).
func (t *Topology) Diameter() int {
	max := 0
	for _, src := range t.Nodes() {
		dist, _ := t.dijkstra(src, HopCost, nil)
		for _, d := range dist {
			if !math.IsInf(d, 1) && int(d) > max {
				max = int(d)
			}
		}
	}
	return max
}
