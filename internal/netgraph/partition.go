package netgraph

import (
	"sort"

	"horse/internal/simtime"
)

// PartitionK splits the topology's switches into k balanced parts with few
// cut edges, and assigns every host to its attached switch's part (so
// host links never cross a cut). The result maps NodeID → part index in
// [0, k). The algorithm is deterministic for a given topology:
//
//  1. Seed selection: the first switch by ID seeds part 0; each further
//     part is seeded by the unassigned switch farthest (in hops) from all
//     previous seeds — the classic k-center spread, which lands one seed
//     per pod on fat-tree-like fabrics.
//  2. Balanced BFS growth: parts claim nodes from their BFS frontiers in
//     round-robin part order (lowest node ID first within a frontier),
//     capped at ceil(S/k) switches per part, so pods and switch groups
//     grow as contiguous regions and the cut falls on the few links
//     between regions.
//
// Disconnected leftovers are assigned round-robin to the smallest parts.
// k <= 1, or k >= the switch count, degenerate to the obvious answers.
func (t *Topology) PartitionK(k int) []int32 {
	return t.PartitionWeightedK(k, nil)
}

// PartitionWeightedK is PartitionK with a per-node load weight: parts are
// balanced by total switch weight instead of switch count, so an
// event-rate-skewed workload (weights derived from offered traffic) yields
// parts with even expected event load rather than even switch counts. The
// weights slice is indexed by NodeID; only switch entries are read, and a
// non-positive weight counts as 1 (a switch is never free to own). A nil
// weights slice reproduces PartitionK exactly. Seeding, contiguous BFS
// growth, and all tie-breaks are identical to PartitionK, so the result is
// deterministic for a given (topology, weights) pair.
func (t *Topology) PartitionWeightedK(k int, weights []float64) []int32 {
	parts := make([]int32, len(t.nodes))
	switches := t.Switches()
	if k > len(switches) {
		k = len(switches)
	}
	if k <= 1 {
		for i := range parts {
			parts[i] = 0
		}
		return parts
	}
	wOf := func(n NodeID) float64 {
		if int(n) < len(weights) && weights[n] > 0 {
			return weights[n]
		}
		return 1
	}
	totalW := 0.0
	for _, n := range switches {
		totalW += wOf(n)
	}
	const unassigned = int32(-1)
	for i := range parts {
		parts[i] = unassigned
	}

	// Switch-switch adjacency (hosts follow their switch at the end).
	adj := make([][]NodeID, len(t.nodes))
	for _, l := range t.links {
		if t.nodes[l.A].Kind == KindSwitch && t.nodes[l.B].Kind == KindSwitch {
			adj[l.A] = append(adj[l.A], l.B)
			adj[l.B] = append(adj[l.B], l.A)
		}
	}
	for _, n := range switches {
		sort.Slice(adj[n], func(i, j int) bool { return adj[n][i] < adj[n][j] })
	}

	// Seed spread: farthest-first traversal over hop distance.
	seeds := []NodeID{switches[0]}
	dist := make([]int, len(t.nodes)) // min hop distance to any seed
	for i := range dist {
		dist[i] = int(^uint(0) >> 1)
	}
	bfsFrom := func(src NodeID) {
		if dist[src] == 0 {
			return
		}
		dist[src] = 0
		queue := []NodeID{src}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, m := range adj[n] {
				if dist[m] > dist[n]+1 {
					dist[m] = dist[n] + 1
					queue = append(queue, m)
				}
			}
		}
	}
	bfsFrom(seeds[0])
	for len(seeds) < k {
		far := NodeID(-1)
		for _, n := range switches {
			if far < 0 || dist[n] > dist[far] {
				far = n
			}
		}
		seeds = append(seeds, far)
		bfsFrom(far)
	}

	// Balanced round-robin BFS growth from the seeds. The cap is the ideal
	// per-part share of the total weight; a part stops claiming once it
	// reaches the cap (a single claim may overshoot it — whole switches
	// are never split).
	capPer := totalW / float64(k)
	size := make([]float64, k)
	frontiers := make([][]NodeID, k)
	claim := func(n NodeID, p int) {
		parts[n] = int32(p)
		size[p] += wOf(n)
		frontiers[p] = append(frontiers[p], adj[n]...)
	}
	for p, s := range seeds {
		claim(s, p)
	}
	for {
		progressed := false
		for p := 0; p < k; p++ {
			if size[p] >= capPer {
				continue
			}
			// Pop the lowest-ID unassigned frontier node of part p.
			best := NodeID(-1)
			for _, n := range frontiers[p] {
				if parts[n] == unassigned && (best < 0 || n < best) {
					best = n
				}
			}
			if best < 0 {
				continue
			}
			claim(best, p)
			progressed = true
		}
		if !progressed {
			break
		}
	}

	// Leftovers (disconnected or capped out): smallest part first, ties by
	// part index.
	for _, n := range switches {
		if parts[n] != unassigned {
			continue
		}
		p := 0
		for q := 1; q < k; q++ {
			if size[q] < size[p] {
				p = q
			}
		}
		claim(n, p)
	}

	// Hosts follow their attached switch; isolated hosts land in part 0.
	for _, n := range t.nodes {
		if n.Kind != KindHost {
			continue
		}
		sw, _ := t.AttachedSwitch(n.ID)
		if sw >= 0 {
			parts[n.ID] = parts[sw]
		} else {
			parts[n.ID] = 0
		}
	}
	return parts
}

// CutLookahead returns the minimum propagation delay over the links whose
// endpoints lie in different parts — the conservative synchronization
// horizon of a sharded run: an event crossing the cut cannot take effect
// sooner than this after it was sent. It returns simtime.Forever when no
// link crosses the cut (fully independent parts never need to
// synchronize), and 0 if any cut link has a non-positive delay (no safe
// window exists; callers should fall back to serial execution).
func CutLookahead(t *Topology, parts []int32) simtime.Duration {
	min := simtime.Forever
	for _, l := range t.links {
		if parts[l.A] == parts[l.B] {
			continue
		}
		if l.Delay <= 0 {
			return 0
		}
		if l.Delay < min {
			min = l.Delay
		}
	}
	return min
}

// Components labels every node with the index of its connected component
// over switch-switch links: switches are grouped by BFS in ascending-ID
// order (so component indices are deterministic: the lowest switch ID in
// a component orders it), and hosts follow their attached switch.
// Isolated hosts land in component 0. The second result is the component
// count (at least 1 when any node exists, 0 for an empty topology).
func Components(t *Topology) ([]int32, int) {
	comp := make([]int32, len(t.nodes))
	for i := range comp {
		comp[i] = -1
	}
	adj := make([][]NodeID, len(t.nodes))
	for _, l := range t.links {
		if t.nodes[l.A].Kind == KindSwitch && t.nodes[l.B].Kind == KindSwitch {
			adj[l.A] = append(adj[l.A], l.B)
			adj[l.B] = append(adj[l.B], l.A)
		}
	}
	n := 0
	for _, s := range t.Switches() {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = int32(n)
		queue := []NodeID{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if comp[v] < 0 {
					comp[v] = int32(n)
					queue = append(queue, v)
				}
			}
		}
		n++
	}
	for _, nd := range t.nodes {
		if nd.Kind != KindHost {
			continue
		}
		if sw, _ := t.AttachedSwitch(nd.ID); sw >= 0 {
			comp[nd.ID] = comp[sw]
		} else {
			comp[nd.ID] = 0
			if n == 0 {
				n = 1
			}
		}
	}
	if n == 0 && len(t.nodes) > 0 {
		n = 1
	}
	return comp, n
}

// CutSize returns how many links cross between different parts — the
// edge-cut quality metric of a partition.
func CutSize(t *Topology, parts []int32) int {
	n := 0
	for _, l := range t.links {
		if parts[l.A] != parts[l.B] {
			n++
		}
	}
	return n
}
