package netgraph

import (
	"reflect"
	"testing"

	"horse/internal/simtime"
)

func TestPartitionKFatTree(t *testing.T) {
	topo := FatTree(4, Gig)
	parts := topo.PartitionK(4)
	if len(parts) != topo.NumNodes() {
		t.Fatalf("parts length %d, want %d", len(parts), topo.NumNodes())
	}
	counts := make(map[int32]int)
	for _, sw := range topo.Switches() {
		p := parts[sw]
		if p < 0 || p >= 4 {
			t.Fatalf("switch %d in part %d", sw, p)
		}
		counts[p]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d parts populated", len(counts))
	}
	// Balance: 20 switches over 4 parts, cap ceil(20/4)=5.
	for p, n := range counts {
		if n > 5 {
			t.Errorf("part %d oversized: %d switches", p, n)
		}
	}
	// Hosts follow their attached switch: host links never cross the cut.
	for _, h := range topo.Hosts() {
		sw, _ := topo.AttachedSwitch(h)
		if parts[h] != parts[sw] {
			t.Errorf("host %d in part %d, its switch %d in part %d", h, parts[h], sw, parts[sw])
		}
	}
	if la := CutLookahead(topo, parts); la != 50*simtime.Microsecond {
		t.Errorf("lookahead %v, want the uniform 50µs link delay", la)
	}
	if cut := CutSize(topo, parts); cut == 0 || cut >= topo.NumLinks() {
		t.Errorf("cut size %d of %d links", cut, topo.NumLinks())
	}
	// Deterministic for a given topology.
	if again := FatTree(4, Gig).PartitionK(4); !reflect.DeepEqual(parts, again) {
		t.Error("partition is not deterministic")
	}
}

func TestPartitionKDegenerate(t *testing.T) {
	topo := LeafSpine(2, 2, 2, Gig, TenGig)
	for _, k := range []int{0, 1} {
		parts := topo.PartitionK(k)
		for n, p := range parts {
			if p != 0 {
				t.Fatalf("k=%d: node %d in part %d", k, n, p)
			}
		}
	}
	// More parts than switches clamps to the switch count.
	parts := topo.PartitionK(64)
	maxPart := int32(0)
	for _, sw := range topo.Switches() {
		if parts[sw] > maxPart {
			maxPart = parts[sw]
		}
	}
	if int(maxPart)+1 > len(topo.Switches()) {
		t.Fatalf("clamp failed: %d parts for %d switches", maxPart+1, len(topo.Switches()))
	}
}

func TestCutLookaheadDisjointAndZeroDelay(t *testing.T) {
	// Two islands: no cut links at all → Forever (shards never sync).
	topo := New()
	a, b := topo.AddSwitch("a"), topo.AddSwitch("b")
	ha, hb := topo.AddHost("ha"), topo.AddHost("hb")
	topo.Connect(a, ha, 1e9, simtime.Microsecond)
	topo.Connect(b, hb, 1e9, simtime.Microsecond)
	parts := topo.PartitionK(2)
	if parts[a] == parts[b] {
		t.Fatal("islands landed in one part")
	}
	if la := CutLookahead(topo, parts); la != simtime.Forever {
		t.Errorf("disjoint lookahead %v, want Forever", la)
	}
	// A zero-delay cut link collapses the lookahead to 0 (no safe window).
	topo.Connect(a, b, 1e9, 0)
	if la := CutLookahead(topo, parts); la != 0 {
		t.Errorf("zero-delay cut lookahead %v, want 0", la)
	}
}
