package netgraph

import (
	"testing"

	"horse/internal/simtime"
)

func TestAddAndLookup(t *testing.T) {
	topo := New()
	s := topo.AddSwitch("s1")
	h := topo.AddHost("h1")
	if topo.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", topo.NumNodes())
	}
	if id, ok := topo.Lookup("s1"); !ok || id != s {
		t.Error("Lookup s1 failed")
	}
	if topo.Node(s).Kind != KindSwitch || topo.Node(h).Kind != KindHost {
		t.Error("node kinds wrong")
	}
	if _, ok := topo.Lookup("nope"); ok {
		t.Error("Lookup found a ghost")
	}
	if len(topo.Switches()) != 1 || len(topo.Hosts()) != 1 {
		t.Error("kind filters wrong")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	topo := New()
	topo.AddSwitch("x")
	topo.AddSwitch("x")
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self loop did not panic")
		}
	}()
	topo := New()
	s := topo.AddSwitch("s")
	topo.Connect(s, s, 1e9, 0)
}

func TestConnectPorts(t *testing.T) {
	topo := New()
	a := topo.AddSwitch("a")
	b := topo.AddSwitch("b")
	lid := topo.Connect(a, b, 1e9, simtime.Millisecond)
	l := topo.Link(lid)
	if l.APort != 1 || l.BPort != 1 {
		t.Errorf("ports = %d,%d, want 1,1", l.APort, l.BPort)
	}
	if peer, pport := l.Peer(a); peer != b || pport != 1 {
		t.Error("Peer(a) wrong")
	}
	if l.PortAt(b) != 1 {
		t.Error("PortAt(b) wrong")
	}
	if got := topo.PortToward(a, b); got != 1 {
		t.Errorf("PortToward = %d, want 1", got)
	}
	if topo.LinkAt(a, 1) != l {
		t.Error("LinkAt wrong")
	}
	if topo.LinkAt(a, 99) != nil {
		t.Error("LinkAt ghost port should be nil")
	}
	// Second link on a gets the next port.
	c := topo.AddSwitch("c")
	topo.Connect(a, c, 1e9, 0)
	if topo.PortToward(a, c) != 2 {
		t.Error("second port not 2")
	}
	if got := topo.Node(a).Ports(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Ports = %v", got)
	}
}

func TestNeighborsAndLinkDown(t *testing.T) {
	topo := New()
	a := topo.AddSwitch("a")
	b := topo.AddSwitch("b")
	c := topo.AddSwitch("c")
	lab := topo.Connect(a, b, 1e9, 0)
	topo.Connect(a, c, 1e9, 0)
	if n := topo.Neighbors(a); len(n) != 2 {
		t.Fatalf("Neighbors = %v", n)
	}
	topo.SetLinkUp(lab, false)
	if n := topo.Neighbors(a); len(n) != 1 || n[0] != c {
		t.Errorf("after link down Neighbors = %v", n)
	}
	if topo.PortToward(a, b) != NoPort {
		t.Error("PortToward over a down link should be NoPort")
	}
	if topo.Reachable(a, b) {
		t.Error("b should be unreachable with the only link down")
	}
	topo.SetLinkUp(lab, true)
	if !topo.Reachable(a, b) {
		t.Error("b should be reachable again")
	}
}

func TestShortestPathLinear(t *testing.T) {
	topo := Linear(5, Gig, TenGig)
	s0, s4 := topo.MustLookup("s0"), topo.MustLookup("s4")
	p := topo.ShortestPath(s0, s4, HopCost)
	if len(p) != 5 {
		t.Fatalf("path length %d, want 5: %v", len(p), p)
	}
	if p[0] != s0 || p[len(p)-1] != s4 {
		t.Error("endpoints wrong")
	}
	if got := topo.PathCost(p, HopCost); got != 4 {
		t.Errorf("cost = %g, want 4", got)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	topo := New()
	a := topo.AddSwitch("a")
	b := topo.AddSwitch("b")
	if topo.ShortestPath(a, b, HopCost) != nil {
		t.Error("found a path in a disconnected graph")
	}
	if p := topo.ShortestPath(a, a, HopCost); len(p) != 1 || p[0] != a {
		t.Errorf("self path = %v", p)
	}
}

func TestShortestPathAvoidsDownLink(t *testing.T) {
	topo := Ring(4, Gig, TenGig)
	s0, s1 := topo.MustLookup("s0"), topo.MustLookup("s1")
	direct := topo.ShortestPath(s0, s1, HopCost)
	if len(direct) != 2 {
		t.Fatalf("direct path = %v", direct)
	}
	port := topo.PortToward(s0, s1)
	topo.SetLinkUp(topo.LinkAt(s0, port).ID, false)
	around := topo.ShortestPath(s0, s1, HopCost)
	if len(around) != 4 {
		t.Fatalf("detour path = %v, want 4 nodes (the long way)", around)
	}
}

func TestDelayCostPrefersFastPath(t *testing.T) {
	topo := New()
	a := topo.AddSwitch("a")
	b := topo.AddSwitch("b")
	c := topo.AddSwitch("c")
	topo.Connect(a, b, 1e9, 10*simtime.Millisecond) // slow direct
	topo.Connect(a, c, 1e9, simtime.Millisecond)
	topo.Connect(c, b, 1e9, simtime.Millisecond) // fast detour
	p := topo.ShortestPath(a, b, DelayCost)
	if len(p) != 3 {
		t.Errorf("delay-based path = %v, want via c", p)
	}
	p = topo.ShortestPath(a, b, HopCost)
	if len(p) != 2 {
		t.Errorf("hop-based path = %v, want direct", p)
	}
}

func TestECMPNextHopsLeafSpine(t *testing.T) {
	topo := LeafSpine(4, 3, 2, Gig, TenGig)
	h0 := topo.MustLookup("h0")
	h7 := topo.MustLookup("h7") // on the last leaf
	hops := topo.ECMPNextHops(h7, HopCost)
	leaf0 := topo.MustLookup("leaf0")
	// leaf0 should have all 3 spines as equal-cost next hops toward h7.
	got := hops[leaf0]
	if len(got) != 3 {
		t.Fatalf("leaf0 next hops = %v, want 3 spines", got)
	}
	for _, nh := range got {
		if topo.Node(nh).Kind != KindSwitch {
			t.Error("next hop is not a switch")
		}
	}
	// A host's next hop is its leaf.
	if nh := hops[h0]; len(nh) != 1 {
		t.Errorf("host next hops = %v, want exactly its leaf", nh)
	}
	// dst itself has no entry.
	if hops[h7] != nil {
		t.Error("destination should have no next hops")
	}
}

func TestKShortestPathsRing(t *testing.T) {
	topo := Ring(5, Gig, TenGig)
	s0, s2 := topo.MustLookup("s0"), topo.MustLookup("s2")
	paths := topo.KShortestPaths(s0, s2, 3, HopCost)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want exactly 2 in a ring: %v", len(paths), paths)
	}
	if len(paths[0]) != 3 || len(paths[1]) != 4 {
		t.Errorf("path lengths = %d,%d, want 3,4", len(paths[0]), len(paths[1]))
	}
	// Costs must be nondecreasing.
	if topo.PathCost(paths[0], HopCost) > topo.PathCost(paths[1], HopCost) {
		t.Error("paths not sorted by cost")
	}
}

func TestKShortestPathsFatTree(t *testing.T) {
	topo := FatTree(4, Gig)
	h0, hLast := topo.MustLookup("h0"), topo.MustLookup("h15")
	paths := topo.KShortestPaths(h0, hLast, 4, HopCost)
	if len(paths) != 4 {
		t.Fatalf("fat-tree k=4 has 4 shortest inter-pod paths, got %d", len(paths))
	}
	for _, p := range paths {
		if len(p) != 7 { // h-edge-agg-core-agg-edge-h
			t.Errorf("inter-pod path length = %d, want 7: %v", len(p), p)
		}
		// Loop-free check.
		seen := map[NodeID]bool{}
		for _, n := range p {
			if seen[n] {
				t.Errorf("path has a loop: %v", p)
			}
			seen[n] = true
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	k := 4
	topo := FatTree(k, Gig)
	wantSwitches := (k/2)*(k/2) + k*k // core + pods(agg+edge)
	wantHosts := k * k * k / 4
	if got := len(topo.Switches()); got != wantSwitches {
		t.Errorf("switches = %d, want %d", got, wantSwitches)
	}
	if got := len(topo.Hosts()); got != wantHosts {
		t.Errorf("hosts = %d, want %d", got, wantHosts)
	}
	if d := topo.Diameter(); d != 6 {
		t.Errorf("fat-tree diameter = %d, want 6", d)
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	topo := RandomConnected(30, 0.05, 42, Gig, TenGig)
	nodes := topo.Nodes()
	src := nodes[0]
	for _, n := range nodes[1:] {
		if !topo.Reachable(src, n) {
			t.Fatalf("node %d unreachable", n)
		}
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(20, 0.1, 7, Gig, TenGig)
	b := RandomConnected(20, 0.1, 7, Gig, TenGig)
	if a.NumLinks() != b.NumLinks() {
		t.Errorf("same seed produced different link counts: %d vs %d", a.NumLinks(), b.NumLinks())
	}
}

func TestDumbbell(t *testing.T) {
	topo := Dumbbell(3, 2, Gig, LinkSpec{BandwidthBps: 1e8, Delay: simtime.Millisecond})
	sl, sr := topo.MustLookup("sL"), topo.MustLookup("sR")
	if topo.PortToward(sl, sr) == NoPort {
		t.Fatal("no bottleneck link")
	}
	if len(topo.Hosts()) != 5 {
		t.Errorf("hosts = %d, want 5", len(topo.Hosts()))
	}
	h0 := topo.MustLookup("h0")
	r0 := topo.MustLookup("r0")
	p := topo.ShortestPath(h0, r0, HopCost)
	if len(p) != 4 {
		t.Errorf("path = %v, want h0-sL-sR-r0", p)
	}
}

func TestAttachedSwitch(t *testing.T) {
	topo := Star(3, Gig)
	s0 := topo.MustLookup("s0")
	h1 := topo.MustLookup("h1")
	sw, port := topo.AttachedSwitch(h1)
	if sw != s0 || port == NoPort {
		t.Errorf("AttachedSwitch = %d,%d", sw, port)
	}
	if got := topo.HostOfPort(s0, port); got != h1 {
		t.Errorf("HostOfPort = %d, want %d", got, h1)
	}
	// Isolated host.
	lone := topo.AddHost("lone")
	if sw, _ := topo.AttachedSwitch(lone); sw != -1 {
		t.Error("isolated host should report -1")
	}
}

func TestHostOfPortSwitchSide(t *testing.T) {
	topo := Linear(2, Gig, TenGig)
	s0, s1 := topo.MustLookup("s0"), topo.MustLookup("s1")
	p := topo.PortToward(s0, s1)
	if topo.HostOfPort(s0, p) != -1 {
		t.Error("switch-facing port reported a host")
	}
}

func TestLeafSpineShape(t *testing.T) {
	topo := LeafSpine(4, 2, 3, Gig, TenGig)
	if got := len(topo.Switches()); got != 6 {
		t.Errorf("switches = %d, want 6", got)
	}
	if got := len(topo.Hosts()); got != 12 {
		t.Errorf("hosts = %d, want 12", got)
	}
	// Any host-to-host path across leaves is 4 hops of nodes = 5 nodes.
	h0, h11 := topo.MustLookup("h0"), topo.MustLookup("h11")
	if p := topo.ShortestPath(h0, h11, HopCost); len(p) != 5 {
		t.Errorf("cross-leaf path = %v", p)
	}
	if d := topo.Diameter(); d != 4 {
		t.Errorf("leaf-spine diameter = %d, want 4", d)
	}
}

func BenchmarkShortestPathFatTree8(b *testing.B) {
	topo := FatTree(8, Gig)
	hosts := topo.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i*7+13)%len(hosts)]
		if src == dst {
			continue
		}
		topo.ShortestPath(src, dst, HopCost)
	}
}

func BenchmarkECMPNextHops(b *testing.B) {
	topo := LeafSpine(16, 8, 10, Gig, TenGig)
	hosts := topo.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.ECMPNextHops(hosts[i%len(hosts)], HopCost)
	}
}
