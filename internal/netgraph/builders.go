package netgraph

import (
	"fmt"
	"math/rand"

	"horse/internal/simtime"
)

// LinkSpec bundles the capacity and delay applied to the links a builder
// creates.
type LinkSpec struct {
	BandwidthBps float64
	Delay        simtime.Duration
}

// Common link specs used by builders and tests.
var (
	// Gig is a 1 Gbps link with 50 µs delay (datacenter-ish cable run).
	Gig = LinkSpec{BandwidthBps: 1e9, Delay: 50 * simtime.Microsecond}
	// TenGig is a 10 Gbps link with 50 µs delay.
	TenGig = LinkSpec{BandwidthBps: 1e10, Delay: 50 * simtime.Microsecond}
	// HundredGig is a 100 Gbps link with 50 µs delay (IXP core class).
	HundredGig = LinkSpec{BandwidthBps: 1e11, Delay: 50 * simtime.Microsecond}
)

// Linear builds a chain of n switches, each with one attached host:
//
//	h0   h1   h2
//	|    |    |
//	s0 - s1 - s2
//
// Host links use hostLink; switch-switch links use trunk.
func Linear(n int, hostLink, trunk LinkSpec) *Topology {
	t := New()
	var prev NodeID = -1
	for i := 0; i < n; i++ {
		sw := t.AddSwitch(fmt.Sprintf("s%d", i))
		h := t.AddHost(fmt.Sprintf("h%d", i))
		t.Connect(sw, h, hostLink.BandwidthBps, hostLink.Delay)
		if prev >= 0 {
			t.Connect(prev, sw, trunk.BandwidthBps, trunk.Delay)
		}
		prev = sw
	}
	return t
}

// Star builds one switch with n hosts attached.
func Star(n int, hostLink LinkSpec) *Topology {
	t := New()
	sw := t.AddSwitch("s0")
	for i := 0; i < n; i++ {
		h := t.AddHost(fmt.Sprintf("h%d", i))
		t.Connect(sw, h, hostLink.BandwidthBps, hostLink.Delay)
	}
	return t
}

// LeafSpine builds a 2-tier Clos fabric with the given number of leaf and
// spine switches and hostsPerLeaf hosts per leaf. Every leaf connects to
// every spine with trunk links. Leaves are named leaf0..; spines spine0..;
// hosts h0.. in leaf order.
func LeafSpine(leaves, spines, hostsPerLeaf int, hostLink, trunk LinkSpec) *Topology {
	t := New()
	spineIDs := make([]NodeID, spines)
	for i := 0; i < spines; i++ {
		spineIDs[i] = t.AddSwitch(fmt.Sprintf("spine%d", i))
	}
	hostIdx := 0
	for i := 0; i < leaves; i++ {
		leaf := t.AddSwitch(fmt.Sprintf("leaf%d", i))
		for _, sp := range spineIDs {
			t.Connect(leaf, sp, trunk.BandwidthBps, trunk.Delay)
		}
		for j := 0; j < hostsPerLeaf; j++ {
			h := t.AddHost(fmt.Sprintf("h%d", hostIdx))
			hostIdx++
			t.Connect(leaf, h, hostLink.BandwidthBps, hostLink.Delay)
		}
	}
	return t
}

// FatTree builds a k-ary fat-tree (k even): (k/2)^2 core switches, k pods
// each with k/2 aggregation and k/2 edge switches, and (k/2) hosts per edge
// switch. All links use the same spec, the classic rearrangeably
// non-blocking configuration.
func FatTree(k int, link LinkSpec) *Topology {
	if k < 2 || k%2 != 0 {
		panic("netgraph: fat-tree arity must be even and >= 2")
	}
	t := New()
	half := k / 2
	core := make([]NodeID, half*half)
	for i := range core {
		core[i] = t.AddSwitch(fmt.Sprintf("core%d", i))
	}
	hostIdx := 0
	for p := 0; p < k; p++ {
		aggs := make([]NodeID, half)
		for a := 0; a < half; a++ {
			aggs[a] = t.AddSwitch(fmt.Sprintf("agg%d_%d", p, a))
			// agg a in each pod connects to core group a.
			for c := 0; c < half; c++ {
				t.Connect(aggs[a], core[a*half+c], link.BandwidthBps, link.Delay)
			}
		}
		for e := 0; e < half; e++ {
			edge := t.AddSwitch(fmt.Sprintf("edge%d_%d", p, e))
			for _, agg := range aggs {
				t.Connect(edge, agg, link.BandwidthBps, link.Delay)
			}
			for h := 0; h < half; h++ {
				host := t.AddHost(fmt.Sprintf("h%d", hostIdx))
				hostIdx++
				t.Connect(edge, host, link.BandwidthBps, link.Delay)
			}
		}
	}
	return t
}

// StarOfFatTrees builds n k-ary fat-trees joined by a central hub switch:
// every core switch of every tree connects to the hub with the same link
// spec. Node names carry a per-tree prefix ("t0_core0", "t1_h3", ...);
// the hub is "hub". The fabric is deliberately partition-hostile: a
// uniform edge-cut split puts one tree per part and looks balanced by
// switch count, but a workload concentrated on one tree makes that tree's
// shard the wall-clock bottleneck — the scenario weighted partitioning
// and window-barrier work stealing exist to fix.
func StarOfFatTrees(n, k int, link LinkSpec) *Topology {
	if n < 1 {
		panic("netgraph: star-of-fat-trees needs at least 1 tree")
	}
	if k < 2 || k%2 != 0 {
		panic("netgraph: fat-tree arity must be even and >= 2")
	}
	t := New()
	hub := t.AddSwitch("hub")
	half := k / 2
	hostIdx := 0
	for tree := 0; tree < n; tree++ {
		pfx := fmt.Sprintf("t%d_", tree)
		core := make([]NodeID, half*half)
		for i := range core {
			core[i] = t.AddSwitch(fmt.Sprintf("%score%d", pfx, i))
			t.Connect(core[i], hub, link.BandwidthBps, link.Delay)
		}
		for p := 0; p < k; p++ {
			aggs := make([]NodeID, half)
			for a := 0; a < half; a++ {
				aggs[a] = t.AddSwitch(fmt.Sprintf("%sagg%d_%d", pfx, p, a))
				for c := 0; c < half; c++ {
					t.Connect(aggs[a], core[a*half+c], link.BandwidthBps, link.Delay)
				}
			}
			for e := 0; e < half; e++ {
				edge := t.AddSwitch(fmt.Sprintf("%sedge%d_%d", pfx, p, e))
				for _, agg := range aggs {
					t.Connect(edge, agg, link.BandwidthBps, link.Delay)
				}
				for h := 0; h < half; h++ {
					host := t.AddHost(fmt.Sprintf("h%d", hostIdx))
					hostIdx++
					t.Connect(edge, host, link.BandwidthBps, link.Delay)
				}
			}
		}
	}
	return t
}

// Ring builds n switches in a cycle, one host per switch. Rings exercise
// path diversity (two disjoint paths between any pair).
func Ring(n int, hostLink, trunk LinkSpec) *Topology {
	if n < 3 {
		panic("netgraph: ring needs at least 3 switches")
	}
	t := New()
	sw := make([]NodeID, n)
	for i := 0; i < n; i++ {
		sw[i] = t.AddSwitch(fmt.Sprintf("s%d", i))
		h := t.AddHost(fmt.Sprintf("h%d", i))
		t.Connect(sw[i], h, hostLink.BandwidthBps, hostLink.Delay)
	}
	for i := 0; i < n; i++ {
		t.Connect(sw[i], sw[(i+1)%n], trunk.BandwidthBps, trunk.Delay)
	}
	return t
}

// RandomConnected builds a random connected graph of n switches using a
// random spanning tree plus extra random edges at probability p, with one
// host per switch. The generator is deterministic for a given seed.
func RandomConnected(n int, p float64, seed int64, hostLink, trunk LinkSpec) *Topology {
	t := New()
	rng := rand.New(rand.NewSource(seed))
	sw := make([]NodeID, n)
	for i := 0; i < n; i++ {
		sw[i] = t.AddSwitch(fmt.Sprintf("s%d", i))
		h := t.AddHost(fmt.Sprintf("h%d", i))
		t.Connect(sw[i], h, hostLink.BandwidthBps, hostLink.Delay)
	}
	// Random spanning tree: connect node i to a random earlier node.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		t.Connect(sw[i], sw[j], trunk.BandwidthBps, trunk.Delay)
	}
	// Extra edges.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p && t.PortToward(sw[i], sw[j]) == NoPort {
				t.Connect(sw[i], sw[j], trunk.BandwidthBps, trunk.Delay)
			}
		}
	}
	return t
}

// Dumbbell builds the classic congestion scenario: nLeft senders and nRight
// receivers on opposite sides of a single bottleneck link.
//
//	h0..hL -> sL == bottleneck == sR -> r0..rR
func Dumbbell(nLeft, nRight int, edge LinkSpec, bottleneck LinkSpec) *Topology {
	t := New()
	sl := t.AddSwitch("sL")
	sr := t.AddSwitch("sR")
	t.Connect(sl, sr, bottleneck.BandwidthBps, bottleneck.Delay)
	for i := 0; i < nLeft; i++ {
		h := t.AddHost(fmt.Sprintf("h%d", i))
		t.Connect(sl, h, edge.BandwidthBps, edge.Delay)
	}
	for i := 0; i < nRight; i++ {
		h := t.AddHost(fmt.Sprintf("r%d", i))
		t.Connect(sr, h, edge.BandwidthBps, edge.Delay)
	}
	return t
}
