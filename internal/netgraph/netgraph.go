// Package netgraph models the Topology building block of the Horse data
// plane: a graph of switches and hosts joined by capacity- and
// latency-annotated links. It also provides the path computations
// (shortest path, equal-cost multipath, k-shortest paths) that controller
// applications use to translate policies into forwarding state.
package netgraph

import (
	"fmt"
	"sort"

	"horse/internal/simtime"
)

// NodeID identifies a node within a Topology. IDs are dense and assigned in
// creation order.
type NodeID int32

// LinkID identifies a link within a Topology.
type LinkID int32

// PortNum is a node-local port number. Port numbers start at 1 to match
// OpenFlow conventions (0 is reserved/invalid).
type PortNum uint32

// NoPort is the invalid port number.
const NoPort PortNum = 0

// NodeKind distinguishes forwarding elements from traffic endpoints.
type NodeKind uint8

// Node kinds.
const (
	KindSwitch NodeKind = iota
	KindHost
)

func (k NodeKind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindHost:
		return "host"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is a switch or host in the topology.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind

	// ports maps port number to the link attached there.
	ports map[PortNum]LinkID
	// nextPort is the next port number to assign.
	nextPort PortNum
}

// Ports returns the attached port numbers in ascending order.
func (n *Node) Ports() []PortNum {
	out := make([]PortNum, 0, len(n.ports))
	for p := range n.ports {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Link is a bidirectional link between two node ports. Capacity applies
// independently to each direction (full duplex), matching real Ethernet.
type Link struct {
	ID LinkID

	A, B         NodeID
	APort, BPort PortNum

	// BandwidthBps is the capacity of each direction in bits/second.
	BandwidthBps float64
	// Delay is the one-way propagation delay.
	Delay simtime.Duration
	// Up is the administrative/operational state.
	Up bool
}

// Peer returns the far end of the link as seen from node n, and the port on
// that far end. It panics if n is not an endpoint.
func (l *Link) Peer(n NodeID) (NodeID, PortNum) {
	switch n {
	case l.A:
		return l.B, l.BPort
	case l.B:
		return l.A, l.APort
	}
	panic(fmt.Sprintf("netgraph: node %d is not on link %d", n, l.ID))
}

// PortAt returns the port of the link on node n.
func (l *Link) PortAt(n NodeID) PortNum {
	switch n {
	case l.A:
		return l.APort
	case l.B:
		return l.BPort
	}
	panic(fmt.Sprintf("netgraph: node %d is not on link %d", n, l.ID))
}

// Topology is a mutable network graph. It is not safe for concurrent
// mutation; the simulator is single-threaded by design (event ordering is
// the source of truth).
type Topology struct {
	nodes  []*Node
	links  []*Link
	byName map[string]NodeID
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{byName: make(map[string]NodeID)}
}

// AddSwitch adds a switch with the given (unique) name.
func (t *Topology) AddSwitch(name string) NodeID { return t.addNode(name, KindSwitch) }

// AddHost adds a host with the given (unique) name.
func (t *Topology) AddHost(name string) NodeID { return t.addNode(name, KindHost) }

func (t *Topology) addNode(name string, kind NodeKind) NodeID {
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("netgraph: duplicate node name %q", name))
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, &Node{
		ID: id, Name: name, Kind: kind,
		ports: make(map[PortNum]LinkID), nextPort: 1,
	})
	t.byName[name] = id
	return id
}

// Connect joins two nodes with a link of the given capacity and delay,
// allocating the next free port on each side. It returns the new link's ID.
func (t *Topology) Connect(a, b NodeID, bandwidthBps float64, delay simtime.Duration) LinkID {
	if a == b {
		panic("netgraph: self-loop links are not allowed")
	}
	na, nb := t.node(a), t.node(b)
	id := LinkID(len(t.links))
	l := &Link{
		ID: id, A: a, B: b,
		APort: na.nextPort, BPort: nb.nextPort,
		BandwidthBps: bandwidthBps, Delay: delay, Up: true,
	}
	na.ports[na.nextPort] = id
	nb.ports[nb.nextPort] = id
	na.nextPort++
	nb.nextPort++
	t.links = append(t.links, l)
	return id
}

func (t *Topology) node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(t.nodes) {
		panic(fmt.Sprintf("netgraph: no node %d", id))
	}
	return t.nodes[id]
}

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) *Node { return t.node(id) }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) *Link {
	if int(id) < 0 || int(id) >= len(t.links) {
		panic(fmt.Sprintf("netgraph: no link %d", id))
	}
	return t.links[id]
}

// Lookup returns the node named name.
func (t *Topology) Lookup(name string) (NodeID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// MustLookup is Lookup that panics on a missing name; for tests and builders.
func (t *Topology) MustLookup(name string) NodeID {
	id, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("netgraph: no node named %q", name))
	}
	return id
}

// NumNodes returns the number of nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks returns the number of links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Nodes returns all node IDs in creation order.
func (t *Topology) Nodes() []NodeID {
	out := make([]NodeID, len(t.nodes))
	for i := range t.nodes {
		out[i] = NodeID(i)
	}
	return out
}

// Links returns all links in creation order. The returned slice must not be
// modified.
func (t *Topology) Links() []*Link { return t.links }

// Switches returns the IDs of all switch nodes.
func (t *Topology) Switches() []NodeID { return t.byKind(KindSwitch) }

// Hosts returns the IDs of all host nodes.
func (t *Topology) Hosts() []NodeID { return t.byKind(KindHost) }

func (t *Topology) byKind(k NodeKind) []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Kind == k {
			out = append(out, n.ID)
		}
	}
	return out
}

// LinkAt returns the link attached to the given port of a node, or nil.
func (t *Topology) LinkAt(n NodeID, p PortNum) *Link {
	id, ok := t.node(n).ports[p]
	if !ok {
		return nil
	}
	return t.links[id]
}

// PortToward returns the local port on `from` whose link leads directly to
// `to`, or NoPort if the nodes are not adjacent via an up link. When
// multiple parallel links exist the lowest-numbered up port wins.
func (t *Topology) PortToward(from, to NodeID) PortNum {
	n := t.node(from)
	best := NoPort
	for p, lid := range n.ports {
		l := t.links[lid]
		if !l.Up {
			continue
		}
		peer, _ := l.Peer(from)
		if peer == to && (best == NoPort || p < best) {
			best = p
		}
	}
	return best
}

// Neighbors returns the IDs of nodes adjacent to n over up links, sorted.
func (t *Topology) Neighbors(n NodeID) []NodeID {
	seen := make(map[NodeID]bool)
	var out []NodeID
	for _, lid := range t.node(n).ports {
		l := t.links[lid]
		if !l.Up {
			continue
		}
		peer, _ := l.Peer(n)
		if !seen[peer] {
			seen[peer] = true
			out = append(out, peer)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetLinkUp changes a link's operational state. The caller (the simulator)
// is responsible for scheduling the corresponding PortStatus notification.
func (t *Topology) SetLinkUp(id LinkID, up bool) { t.Link(id).Up = up }

// HostOfPort returns the host attached behind a switch port, or -1 if the
// port leads to another switch (or nothing).
func (t *Topology) HostOfPort(sw NodeID, p PortNum) NodeID {
	l := t.LinkAt(sw, p)
	if l == nil {
		return -1
	}
	peer, _ := l.Peer(sw)
	if t.node(peer).Kind == KindHost {
		return peer
	}
	return -1
}

// AttachedSwitch returns the switch a host connects to and the switch-side
// port, or (-1, NoPort) if the host is isolated. Hosts are single-homed in
// Horse; with multiple links the lowest link ID wins.
func (t *Topology) AttachedSwitch(host NodeID) (NodeID, PortNum) {
	h := t.node(host)
	bestLink := LinkID(-1)
	for _, lid := range h.ports {
		if bestLink == -1 || lid < bestLink {
			bestLink = lid
		}
	}
	if bestLink == -1 {
		return -1, NoPort
	}
	l := t.links[bestLink]
	peer, peerPort := l.Peer(host)
	return peer, peerPort
}
