package flowsim

import (
	"reflect"
	"testing"

	"horse/internal/dataplane"
	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// streamWorkload is the leaf-spine Poisson workload the determinism tests
// use, at a size small enough for the equivalence matrix.
func streamWorkload() (*netgraph.Topology, traffic.PoissonConfig) {
	topo := netgraph.LeafSpine(3, 2, 3, netgraph.Gig, netgraph.TenGig)
	return topo, traffic.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 100, Horizon: simtime.Second,
		Sizes: traffic.FixedSize(1e6), TCPFraction: 0.3, CBRRateBps: 1e7,
	}
}

// TestReaderMatchesLoad is the flowsim half of the bounded-memory
// equivalence contract: streaming the workload in through SetTraceReader
// — from a pre-parsed trace or straight from the Poisson generator — must
// reproduce the eager Load run byte-for-byte, and the record-sink
// sequence must equal the retained Records() order.
func TestReaderMatchesLoad(t *testing.T) {
	topo, cfg := streamWorkload()
	tr := traffic.NewGenerator(1).PoissonArrivals(cfg)

	run := func(mk func(*Simulator)) ([]stats.FlowRecord, uint64) {
		sim := New(Config{Topology: topo, Controller: proactiveMAC{}, Miss: dataplane.MissController})
		mk(sim)
		col := mustRun(sim, simtime.Never)
		return col.Flows(), col.EventsRun
	}

	want, wantEvents := run(func(s *Simulator) { s.Load(tr) })
	if len(want) != len(tr) {
		t.Fatalf("eager run recorded %d of %d flows", len(want), len(tr))
	}

	got, gotEvents := run(func(s *Simulator) { s.SetTraceReader(traffic.TraceReader(tr)) })
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("trace reader diverged from Load: %d vs %d records", len(want), len(got))
	}
	if wantEvents != gotEvents {
		t.Fatalf("trace reader dispatched %d events, Load %d", gotEvents, wantEvents)
	}

	// The generator-backed reader shares the rng draw sequence with
	// PoissonArrivals, so it must produce the identical workload without
	// ever materializing the trace.
	got, _ = run(func(s *Simulator) { s.SetTraceReader(traffic.NewPoissonReader(1, cfg)) })
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("poisson reader diverged from Load: %d vs %d records", len(want), len(got))
	}

	// Reader + sink: the streamed record sequence matches retained order
	// and nothing stays behind in the collector.
	var streamed []stats.FlowRecord
	sim := New(Config{Topology: topo, Controller: proactiveMAC{}, Miss: dataplane.MissController})
	sim.SetRecordSink(func(r stats.FlowRecord) { streamed = append(streamed, r) })
	sim.SetTraceReader(traffic.NewPoissonReader(1, cfg))
	col := mustRun(sim, simtime.Never)
	if n := len(col.Flows()); n != 0 {
		t.Fatalf("sink mode retained %d records", n)
	}
	if !reflect.DeepEqual(want, streamed) {
		t.Fatalf("streamed sink sequence diverged: %d vs %d records", len(want), len(streamed))
	}
}
