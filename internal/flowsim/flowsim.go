// Package flowsim is the Horse simulation engine: a discrete-event,
// flow-level simulator of SDN traffic dynamics. It ties together the
// paper's building blocks —
//
//	data plane:    Events (eventq) + Topology (netgraph/dataplane) +
//	               Traffic statistics & network state (stats, fairshare)
//	control plane: Policy generator + Instructions + Monitoring
//	               (the Controller interface, implemented in package
//	               controller and compiled from policies in package policy)
//
// Data flows enter as events (from a traffic matrix or a generator); each
// flow is routed through the switches' OpenFlow state; the max–min
// allocator determines every flow's rate; statistics update after every
// event and are exported to the control plane via stats messages; and the
// controller reacts by sending (latency-modeled, connectionless) OpenFlow
// instructions back.
package flowsim

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"horse/internal/dataplane"
	"horse/internal/eventq"
	"horse/internal/fairshare"
	"horse/internal/header"
	"horse/internal/linkmodel"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simcore"
	"horse/internal/simevent"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/tcpmodel"
	"horse/internal/traffic"
)

// FlowID identifies a data flow within a simulation run.
type FlowID int64

// FlowState is the lifecycle state of a data flow.
type FlowState uint8

// Flow states.
const (
	// StateWaiting: not yet transmitting — punted to the controller,
	// flooding, or stalled on a broken path; the first packet is buffered.
	StateWaiting FlowState = iota
	// StateActive: transmitting at the allocated rate.
	StateActive
	// StateDone: finished (any outcome).
	StateDone
)

// Flow is the runtime state of one data flow.
type Flow struct {
	ID  FlowID
	Key header.FlowKey
	Src netgraph.NodeID
	Dst netgraph.NodeID

	// SizeBits is the remaining transfer volume (+Inf for open-ended).
	SizeBits float64
	// AppRateBps is the application's offered rate (+Inf for backlogged).
	AppRateBps float64
	// Deadline ends open-ended flows (simtime.Never if none).
	Deadline simtime.Time
	// TCP selects the TCP demand model.
	TCP bool

	Arrival simtime.Time

	state      FlowState
	remaining  float64
	sent       float64
	rate       float64
	lastSettle simtime.Time
	gen        uint64 // backstop: invalidates stale completion/ramp events

	// Outstanding timer handles: cancelling removes the event from the
	// queue outright (no dead corpse waiting to fire as a gen-stamped
	// no-op). The gen stamp stays as a defensive second line.
	completion simcore.Timer
	ramp       simcore.Timer

	// Path state.
	hops        []dataplane.Hop
	prevHops    []dataplane.Hop
	lastPathLen int
	entries     []*openflow.FlowEntry
	meterRefs   []dataplane.MeterRef
	resources   []fairshare.ResourceID
	waitingAt   netgraph.NodeID
	puntedAt    map[netgraph.NodeID]bool

	// TCP state: flow-level AIMD over the offered demand.
	txStart   simtime.Time // when transmission (re)started
	demandCap float64      // congestion-window cap in bits/second
	caMode    bool         // true after the first loss episode (additive increase)
	ramping   bool
	// pathLoss is the end-to-end frame-loss probability along the current
	// path from installed link models; it caps TCP demand via MathisCap.
	pathLoss float64

	punts       int
	pathChanges int
}

// State returns the flow's lifecycle state.
func (f *Flow) State() FlowState { return f.state }

// Rate returns the current allocated rate in bits/second.
func (f *Flow) Rate() float64 { return f.rate }

// Sent returns the bits transferred so far (settled; current to the last
// event that touched the flow).
func (f *Flow) Sent() float64 { return f.sent }

// Path returns the switch hops of the current path (nil while waiting).
func (f *Flow) Path() []dataplane.Hop { return f.hops }

// Controller is the control-plane logic attached to a simulation: the
// paper's lightweight modular "policy generator". Start runs before any
// traffic; Handle receives every switch-to-controller message after the
// control-latency delay.
type Controller interface {
	Start(ctx *Context)
	Handle(ctx *Context, msg openflow.Message)
}

// Forker is an optional Controller capability used by the sharded packet
// engine to partition control-plane state per connected component: Fork
// returns an independent instance equivalent to a freshly constructed one
// (no shared mutable state with the receiver), or nil when this
// controller cannot fork. A controller should declare Fork only when its
// reactions are component-local up to idempotent re-installs: each forked
// instance runs under a scoped Context that silently drops sends to
// switches outside its component, and the union of the instances'
// surviving messages must equal the multiset a single serial instance
// would have produced.
type Forker interface {
	Controller
	Fork() Controller
}

// NopController is a Controller that does nothing (pure proactive
// pre-installed state or drop-everything runs).
type NopController struct{}

// Start implements Controller.
func (NopController) Start(*Context) {}

// Handle implements Controller.
func (NopController) Handle(*Context, openflow.Message) {}

// Config parameterizes a Simulator.
type Config struct {
	// Topology is required.
	Topology *netgraph.Topology
	// Controller is the control plane (nil means NopController).
	Controller Controller
	// Miss is the table-miss behavior of every switch.
	Miss dataplane.MissBehavior
	// ControlLatency delays every switch↔controller message (default 1ms).
	ControlLatency simtime.Duration
	// TCP parameterizes the TCP model.
	TCP tcpmodel.Params
	// StatsEvery samples link utilization at this period (0 disables).
	StatsEvery simtime.Duration
	// FullRecompute disables incremental fair-share solving (E6 ablation).
	FullRecompute bool
	// UseCalendarQueue selects the calendar event queue (E6 ablation).
	//
	// Deprecated: set EventQueue to eventq.BackendCalendar instead. A
	// non-default EventQueue wins when both are set.
	UseCalendarQueue bool
	// EventQueue selects the kernel's event-queue backend (heap, calendar,
	// timing wheel, or auto). Ignored when Kernel is set.
	EventQueue eventq.Backend
	// RateEpsilon is the relative rate-change threshold below which rate
	// changes do not reschedule events (default 1%).
	RateEpsilon float64
	// Links is the per-link-direction degradation registry (nil means
	// every link is pristine). Installed models shape the fluid view two
	// ways: LossRate caps TCP demand through tcpmodel.MathisCap, and
	// RateScale scales the direction's fair-share capacity (re-applied
	// every Model.StepEvery for time-varying models). A hybrid run passes
	// the same Set to both engines so they see one channel; it composes
	// with FailureState — a dead link has capacity 0 whatever its model
	// says.
	Links *linkmodel.Set

	// Shards > 1 fans the settle scan of the rate-shift drain — the
	// per-flow transferred-bits computation after every fair-share
	// re-solve — across a worker pool of that size. The solve itself and
	// the apply pass stay serial (they mutate shared allocator, ledger,
	// and switch-entry state), so results are bit-identical to the
	// serial path for any value; the win shows on drains touching
	// thousands of flows (shared-fabric churn, E6-style workloads).
	Shards int

	// Kernel attaches the simulator to an externally owned simulation
	// kernel so several engines share one virtual clock (hybrid runs).
	// Nil means the simulator creates and drives its own kernel, and Run
	// works as usual; with an external kernel the owner calls Begin,
	// drives the kernel, then calls Finish.
	Kernel *simcore.Kernel
	// Network attaches an externally owned data plane so several engines
	// share switch state (hybrid runs). Nil means a private network.
	Network *dataplane.Network
	// OnApply, when set, observes every controller→switch message after
	// it has been applied to the network — the hook a co-resident packet
	// engine uses to retry punted packets once rules install.
	OnApply func(openflow.Message)
	// OnRateShift, when set, is called after a fair-share drain with the
	// deduplicated resource IDs whose aggregate allocation shifted by
	// more than RateEpsilon. The hybrid coupler uses it to re-derive the
	// residual link capacity the packet engine sees.
	OnRateShift func(resources []fairshare.ResourceID)
	// OnLinkChange, when set, observes every applied link state change —
	// the hook the hybrid coupler uses to flush the packet engine's
	// dead-link queues under the shared clock.
	OnLinkChange func(link netgraph.LinkID, up bool)
	// OnLinkDegrade, when set, observes every applied link-model change
	// (m is nil for a restore) — for co-resident engines that keep their
	// own view of the degradation registry. Hybrid runs don't need it:
	// both engines read one shared Set.
	OnLinkDegrade func(link netgraph.LinkID, m linkmodel.Model)
	// OnSwitchChange, when set, observes every applied switch
	// crash/restart, after its link changes (which fire OnLinkChange).
	OnSwitchChange func(sw netgraph.NodeID, up bool)
	// OnControllerChange, when set, observes controller detach/reattach —
	// the hook a co-resident packet engine uses to re-announce parked
	// packets once the control channel returns.
	OnControllerChange func(attached bool)
}

type evKind uint8

const (
	evArrival evKind = iota
	evComplete
	evRamp
	evToSwitch
	evToController
	evLinkChange
	evStatsTick
	evTimer
	evExpiry
	evResolveBatch
	evSwitchChange
	evCtrlChange
	evLinkDegrade
)

type event struct {
	at   simtime.Time
	kind evKind
	sim  *Simulator

	flow   *Flow
	gen    uint64
	demand traffic.Demand
	msg    openflow.Message
	sw     netgraph.NodeID
	link   netgraph.LinkID
	up     bool
	// chain marks a reader-pulled arrival: firing it pulls the next
	// demand from the trace reader (exactly one chained arrival is
	// outstanding at a time).
	chain bool
	fn    func()
	model linkmodel.Model
}

func (e *event) Time() simtime.Time { return e.at }

// OrderKey implements eventq.Keyed with the kernel-wide class scheme
// (simcore.OrderKey). Control-plane kinds use the same classes and
// entities as the packet engine's, which pins the cross-engine dispatch
// order of hybrid runs: a FlowMod delivery scheduled by this engine
// sorts against the packet engine's same-instant data events exactly
// where a standalone packet run would sort its own delivery.
func (e *event) OrderKey() uint64 {
	switch e.kind {
	case evLinkChange, evLinkDegrade:
		return simcore.OrderKey(simcore.ClassTopoChange, uint32(e.link))
	case evSwitchChange:
		return simcore.OrderKey(simcore.ClassTopoChange, uint32(e.sw))
	case evCtrlChange:
		return simcore.OrderKey(simcore.ClassTopoChange, ^uint32(0))
	case evToSwitch:
		return simcore.OrderKey(simcore.ClassToSwitch, uint32(e.msg.Datapath()))
	case evExpiry:
		return simcore.OrderKey(simcore.ClassExpiry, uint32(e.sw))
	case evToController:
		return simcore.OrderKey(simcore.ClassToController, uint32(e.msg.Datapath()))
	case evTimer:
		return simcore.OrderKey(simcore.ClassTimer, 0)
	case evArrival:
		return simcore.OrderKey(simcore.ClassData+0, 0)
	case evComplete:
		return simcore.OrderKey(simcore.ClassData+1, uint32(e.flow.ID))
	case evRamp:
		return simcore.OrderKey(simcore.ClassData+2, uint32(e.flow.ID))
	case evResolveBatch:
		return simcore.OrderKey(simcore.ClassData+3, 0)
	default: // evStatsTick
		return simcore.OrderKey(simcore.ClassData+4, 0)
	}
}

// Fire implements simcore.Event: execute on dispatch.
func (e *event) Fire() {
	s := e.sim
	s.col.EventsRun++
	s.dispatch(e)
}

// Release implements simcore.Event: recycle the envelope. Stale-event
// safety comes from the generation stamps (Flow.gen) checked in dispatch,
// so a recycled envelope can never act for its former flow.
func (e *event) Release() {
	s := e.sim
	*e = event{}
	s.pool.Put(e)
}

// sched schedules a pooled copy of proto on the kernel.
func (s *Simulator) sched(proto event) {
	e := s.pool.Get()
	*e = proto
	e.sim = s
	s.k.Schedule(e)
}

// schedTimer schedules a pooled copy of proto as a cancelable timer.
func (s *Simulator) schedTimer(proto event) simcore.Timer {
	e := s.pool.Get()
	*e = proto
	e.sim = s
	return s.k.ScheduleCancelable(e)
}

// resLedger tracks cumulative bits and the current aggregate rate of one
// resource (link direction), backing port counters and stats replies.
type resLedger struct {
	bits float64
	rate float64
	last simtime.Time
}

func (l *resLedger) settle(now simtime.Time) {
	if now > l.last {
		l.bits += l.rate * now.Sub(l.last).Seconds()
		l.last = now
	}
}

// Simulator is a Horse simulation run. Create with New, feed with Load /
// InjectAt / ScheduleLinkChange, execute with Run.
type Simulator struct {
	cfg       Config
	topo      *netgraph.Topology
	net       *dataplane.Network
	k         *simcore.Kernel
	ownKernel bool
	pool      simcore.Pool[event]

	alloc  *fairshare.Allocator
	flows  map[FlowID]*Flow
	nextID FlowID

	// waiting flows parked at a switch; flowsAt indexes active flows by
	// traversed switch for re-resolution on state changes.
	waiting map[netgraph.NodeID]map[FlowID]*Flow
	flowsAt map[netgraph.NodeID]map[FlowID]*Flow

	ledgers map[fairshare.ResourceID]*resLedger
	col     *stats.Collector
	ctrl    Controller
	ctx     *Context

	// batched re-resolution
	dirtyFlows   map[FlowID]*Flow
	batchPending bool

	// per-switch scheduled expiry instants, to avoid duplicate events;
	// expiryTimer holds the outstanding check so a reschedule cancels it
	// instead of stacking a second event beside it.
	expiryAt    map[netgraph.NodeID]simtime.Time
	expiryTimer map[netgraph.NodeID]simcore.Timer

	// allocDirty defers fair-share re-solving: events at the same virtual
	// instant (an epoch's worth of arrivals, say) trigger one solve when
	// time advances, not one per event. The kernel drains it through the
	// registered pre-advance hook.
	allocDirty bool

	// links is the degradation-model registry (never nil after New); a
	// hybrid run shares it with the packet engine. modelGen invalidates
	// outstanding rate-step timers when a link's model changes.
	links    *linkmodel.Set
	modelGen map[netgraph.LinkID]uint64

	// fstate composes overlapping scripted outages (links, switches, and
	// controller detach all nest by counting) and records the link
	// changes a detached controller missed, so reattach can
	// resynchronize its topology view with current-state PortStatus.
	fstate *dataplane.FailureState

	// shiftPending accumulates resources whose membership changed outside
	// a solve (flow activate/deactivate) so OnRateShift still reports
	// them; shiftScratch is the reusable dedup buffer.
	shiftPending []fairshare.ResourceID
	shiftScratch []fairshare.ResourceID

	// observers receive applied network-dynamics events (the public
	// Observe hook); recordSink, when set, streams finished-flow records
	// and lets finalized flows be evicted (bounded-memory runs).
	observers  simevent.Observers
	recordSink func(stats.FlowRecord)

	// reader, when set, streams demands in one at a time (bounded-memory
	// ingestion): exactly one chained arrival event is outstanding, and
	// firing it pulls the next demand. readerLast enforces the
	// nondecreasing-Start contract; readerErr holds the first reader
	// failure (ingestion stops; Run surfaces it).
	reader     traffic.Reader
	readerLast simtime.Time
	readerErr  error

	begun    bool
	finished bool
}

// New builds a simulator over the configured topology.
func New(cfg Config) *Simulator {
	if cfg.Topology == nil {
		panic("flowsim: Config.Topology is required")
	}
	if cfg.Controller == nil {
		cfg.Controller = NopController{}
	}
	if cfg.ControlLatency == 0 {
		cfg.ControlLatency = simtime.Millisecond
	}
	if cfg.TCP.RTT == 0 {
		cfg.TCP = tcpmodel.DefaultParams()
	}
	if cfg.RateEpsilon == 0 {
		cfg.RateEpsilon = 0.01
	}
	k := cfg.Kernel
	ownKernel := k == nil
	if ownKernel {
		k = simcore.New(simcore.Config{Backend: cfg.EventQueue, UseCalendarQueue: cfg.UseCalendarQueue})
	}
	net := cfg.Network
	if net == nil {
		net = dataplane.NewNetwork(cfg.Topology, cfg.Miss)
	}
	s := &Simulator{
		cfg:         cfg,
		topo:        cfg.Topology,
		net:         net,
		k:           k,
		ownKernel:   ownKernel,
		alloc:       fairshare.New(),
		flows:       make(map[FlowID]*Flow),
		waiting:     make(map[netgraph.NodeID]map[FlowID]*Flow),
		flowsAt:     make(map[netgraph.NodeID]map[FlowID]*Flow),
		ledgers:     make(map[fairshare.ResourceID]*resLedger),
		col:         stats.NewCollector(cfg.StatsEvery),
		ctrl:        cfg.Controller,
		dirtyFlows:  make(map[FlowID]*Flow),
		expiryAt:    make(map[netgraph.NodeID]simtime.Time),
		expiryTimer: make(map[netgraph.NodeID]simcore.Timer),
		fstate:      dataplane.NewFailureState(cfg.Topology),
		links:       cfg.Links,
		modelGen:    make(map[netgraph.LinkID]uint64),
	}
	if s.links == nil {
		s.links = linkmodel.NewSet(1, len(cfg.Topology.Links()))
	}
	s.alloc.Epsilon = cfg.RateEpsilon
	s.ctx = NewContext(s)
	// The kernel settles deferred fair-share work exactly when virtual
	// time would advance, so all events at one instant share a solve.
	s.k.AddPreAdvance(func() bool { return s.allocDirty }, s.drainAlloc)
	// Declare every link direction to the allocator and ledger. A model
	// installed before the run scales the initial capacity too.
	for _, l := range s.topo.Links() {
		for _, fwd := range []bool{true, false} {
			r := linkResource(l.ID, fwd)
			s.alloc.SetCapacity(r, l.BandwidthBps*s.links.RateScale(l.ID, fwd, 0))
			s.ledgers[r] = &resLedger{}
		}
		s.armRateStep(l.ID)
	}
	return s
}

// Network exposes the data-plane state (switch tables), mainly for tests
// and the packet-level comparator.
func (s *Simulator) Network() *dataplane.Network { return s.net }

// Collector returns the statistics collector.
func (s *Simulator) Collector() *stats.Collector { return s.col }

// Now returns the current virtual time.
func (s *Simulator) Now() simtime.Time { return s.k.Now() }

// Topology returns the simulated topology.
func (s *Simulator) Topology() *netgraph.Topology { return s.topo }

// Kernel returns the simulation kernel driving this simulator.
func (s *Simulator) Kernel() *simcore.Kernel { return s.k }

// Flow returns a flow by ID (nil if unknown).
func (s *Simulator) Flow(id FlowID) *Flow { return s.flows[id] }

// Allocator exposes the bandwidth allocator (read-mostly; used by stats
// sampling and tests).
func (s *Simulator) Allocator() *fairshare.Allocator { return s.alloc }

// meterResourceBase tags meter resources; anything below it is a link
// direction encoded as link<<1|forward.
const meterResourceBase = fairshare.ResourceID(1) << 40

func linkResource(l netgraph.LinkID, forward bool) fairshare.ResourceID {
	r := fairshare.ResourceID(l) << 1
	if forward {
		r |= 1
	}
	return r
}

func meterResource(sw netgraph.NodeID, m openflow.MeterID) fairshare.ResourceID {
	return meterResourceBase | fairshare.ResourceID(sw)<<24 | fairshare.ResourceID(m)
}

// ResourceLinkDir decodes a fair-share resource ID back to the link
// direction it stands for; ok is false for non-link (meter) resources.
// The hybrid coupler uses it to turn OnRateShift notifications into
// per-link residual capacities.
func ResourceLinkDir(r fairshare.ResourceID) (link netgraph.LinkID, forward bool, ok bool) {
	if r >= meterResourceBase {
		return 0, false, false
	}
	return netgraph.LinkID(r >> 1), r&1 == 1, true
}

// LinkRateBps returns the aggregate flow-level rate currently allocated on
// one link direction.
func (s *Simulator) LinkRateBps(l netgraph.LinkID, forward bool) float64 {
	return s.alloc.ResourceUsage(linkResource(l, forward))
}

// Load schedules every demand in the trace.
func (s *Simulator) Load(tr traffic.Trace) {
	for _, d := range tr {
		s.InjectAt(d)
	}
}

// InjectAt schedules one demand at its start time.
func (s *Simulator) InjectAt(d traffic.Demand) {
	s.sched(event{at: d.Start, kind: evArrival, demand: d})
}

// SetTraceReader streams the workload in from r instead of (or in
// addition to) Load: demands are pulled one at a time as virtual time
// reaches them, so arbitrarily long traces ingest with one demand
// buffered. r must yield nondecreasing Start times. Because every
// arrival — eager or streamed — carries the same order key and arrivals
// dispatch FIFO among themselves, a streamed run's records are
// byte-identical to Load of the same sequence. Install before Run; a
// reader error stops ingestion and is returned by Run (or TraceErr).
func (s *Simulator) SetTraceReader(r traffic.Reader) {
	if s.begun {
		panic("flowsim: SetTraceReader after Run")
	}
	s.reader = r
}

// TraceErr reports the first trace-reader failure, if any. Shared-kernel
// drivers (hybrid) check it after the run; standalone Run returns it.
func (s *Simulator) TraceErr() error { return s.readerErr }

// pullArrival pulls the next demand from the trace reader and schedules
// it as the single outstanding chained arrival.
func (s *Simulator) pullArrival() {
	d, err := s.reader.Next()
	if err != nil {
		if err != io.EOF {
			s.readerErr = err
		}
		return
	}
	if d.Start < s.readerLast {
		s.readerErr = fmt.Errorf("flowsim: trace reader went backwards (%v after %v): %w",
			d.Start, s.readerLast, traffic.ErrTraceOrder)
		return
	}
	s.readerLast = d.Start
	s.sched(event{at: d.Start, kind: evArrival, demand: d, chain: true})
}

// ScheduleLinkChange schedules a link failure (up=false) or recovery.
func (s *Simulator) ScheduleLinkChange(at simtime.Time, link netgraph.LinkID, up bool) {
	s.sched(event{at: at, kind: evLinkChange, link: link, up: up})
}

// ScheduleSwitchChange schedules a switch crash (up=false) or restart. A
// crash takes every attached link down and wipes the switch's OpenFlow
// state; a restart brings the links back with the tables still empty, so
// the controller must re-program it.
func (s *Simulator) ScheduleSwitchChange(at simtime.Time, sw netgraph.NodeID, up bool) {
	s.sched(event{at: at, kind: evSwitchChange, sw: sw, up: up})
}

// ScheduleLinkDegrade schedules a link-model change: m installs a
// degradation model on both directions of the link at `at` (nil restores
// the pristine link). Orthogonal to ScheduleLinkChange — FailureState
// still decides up/down, and the model shapes traffic only while the
// link is up.
func (s *Simulator) ScheduleLinkDegrade(at simtime.Time, link netgraph.LinkID, m linkmodel.Model) {
	s.sched(event{at: at, kind: evLinkDegrade, link: link, model: m})
}

// ScheduleControllerChange schedules a controller detach (attached=false)
// or reattach. While detached, messages in both directions are lost; on
// reattach, waiting flows re-announce themselves with fresh PacketIns
// (modeling switches re-punting after the control channel returns).
func (s *Simulator) ScheduleControllerChange(at simtime.Time, attached bool) {
	s.sched(event{at: at, kind: evCtrlChange, up: attached})
}

// Run executes the simulation until the event queue drains, virtual time
// exceeds `until` (use simtime.Never for no bound), or ctx is cancelled.
// It returns the statistics collector — on cancellation a partial but
// consistent one (every unfinished flow settled to the stop instant and
// recorded), together with ctx.Err(). Run may be called once, and only on
// a simulator that owns its kernel; shared-kernel simulators are driven
// by their owner via Begin / kernel.Run / Finish.
func (s *Simulator) Run(ctx context.Context, until simtime.Time) (*stats.Collector, error) {
	if !s.ownKernel {
		panic("flowsim: Run on a shared-kernel simulator; drive the shared kernel instead")
	}
	s.Begin()
	err := s.k.RunContext(ctx, until)
	col := s.Finish()
	if err == nil {
		err = s.readerErr
	}
	return col, err
}

// RunUntil is Run without a lifecycle: no cancellation, no error.
//
// Deprecated: use Run with a context.
func (s *Simulator) RunUntil(until simtime.Time) *stats.Collector {
	col, _ := s.Run(context.Background(), until)
	return col
}

// Observe registers an observer of applied network dynamics (link and
// switch state flips, controller detach/reattach). Register before Run;
// observers run synchronously at the instant a change takes effect.
func (s *Simulator) Observe(fn simevent.Observer) { s.observers.Add(fn) }

// SetRecordSink streams every stats.FlowRecord to sink the moment the
// flow finalizes, in exactly the order the collector would have
// accumulated them, and evicts finalized flow state — so a multi-million-
// flow run completes with O(1) record memory (Collector().Flows() stays
// empty). Install before Run.
func (s *Simulator) SetRecordSink(sink func(stats.FlowRecord)) {
	s.recordSink = sink
	s.col.SetFlowSink(sink)
}

// SetProgress arms progress reporting: fn receives a simevent.Progress at
// most once per `every` of virtual time, driven off the kernel's
// pre-advance path so everything at the reported instant has settled.
// Install before Run.
func (s *Simulator) SetProgress(every simtime.Duration, fn simevent.ProgressFunc) {
	simevent.ArmProgress(s.k, every, fn)
}

// Begin starts the control plane and arms statistics sampling. It is the
// first half of Run, exposed for shared-kernel (hybrid) drivers.
func (s *Simulator) Begin() {
	if s.begun || s.finished {
		panic("flowsim: Run called twice")
	}
	s.begun = true
	s.ctrl.Start(s.ctx)
	if s.cfg.StatsEvery > 0 {
		s.sched(event{at: simtime.Time(s.cfg.StatsEvery), kind: evStatsTick})
	}
	if s.reader != nil {
		s.pullArrival()
	}
}

// Finish settles and records every unfinished flow and returns the
// collector. It is the second half of Run, exposed for shared-kernel
// (hybrid) drivers; calling it again is a no-op.
func (s *Simulator) Finish() *stats.Collector {
	if !s.finished {
		s.finish()
	}
	return s.col
}

func (s *Simulator) dispatch(e *event) {
	switch e.kind {
	case evArrival:
		s.handleArrival(e.demand)
		if e.chain {
			s.pullArrival()
		}
	case evComplete:
		if e.flow.gen == e.gen && e.flow.state != StateDone {
			e.flow.completion = simcore.Timer{}
			s.handleComplete(e.flow)
		}
	case evRamp:
		// At most one ramp is in flight per flow (the ramping guard), so
		// the firing event is the one f.ramp points at.
		e.flow.ramp = simcore.Timer{}
		if e.flow.state == StateActive {
			s.handleRamp(e.flow)
		} else {
			e.flow.ramping = false
		}
	case evToSwitch:
		s.handleToSwitch(e.msg)
	case evToController:
		if s.fstate.ControllerDetached() {
			// The channel broke while the message was in flight: it is
			// lost at delivery. A lost PortStatus still resyncs on
			// reattach (the link change it announced goes pending).
			s.fstate.NotePendingStatus(e.msg)
			return
		}
		s.ctrl.Handle(s.ctx, e.msg)
	case evLinkChange:
		s.handleLinkChange(e.link, e.up)
	case evStatsTick:
		s.handleStatsTick()
	case evTimer:
		e.fn()
	case evExpiry:
		s.handleExpiry(e.sw)
	case evResolveBatch:
		s.handleResolveBatch()
	case evSwitchChange:
		s.handleSwitchChange(e.sw, e.up)
	case evCtrlChange:
		s.handleCtrlChange(e.up)
	case evLinkDegrade:
		s.handleLinkDegrade(e.link, e.model)
	}
}

// finish settles and records every unfinished flow, in flow-ID order so
// the record sequence (and any record sink) is deterministic.
func (s *Simulator) finish() {
	s.drainAlloc()
	s.finished = true
	ids := make([]FlowID, 0, len(s.flows))
	for id, f := range s.flows {
		if f.state != StateDone {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := s.flows[id]
		s.settleFlow(f)
		outcome := "running"
		if f.state == StateWaiting {
			outcome = "waiting"
		}
		s.finalize(f, false, outcome)
	}
}

// checkInvariants is used by tests: it verifies internal consistency
// between the allocator, the flow set, and the ledgers.
func (s *Simulator) checkInvariants() error {
	for id, f := range s.flows {
		if f.state == StateActive {
			if s.alloc.Rate(fairshare.FlowID(id)) < 0 {
				return fmt.Errorf("flow %d has negative allocator rate", id)
			}
			if !math.IsInf(f.remaining, 1) && f.remaining < -1 {
				return fmt.Errorf("flow %d oversent: remaining=%g", id, f.remaining)
			}
		}
	}
	return nil
}
