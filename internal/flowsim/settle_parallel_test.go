package flowsim_test

import (
	"context"
	"reflect"
	"testing"

	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// TestParallelSettleBitIdentical: the fanned-out settle scan must be
// bit-identical to the serial drain on a high-churn shared fabric where
// every re-solve touches far more flows than the fan-out threshold.
func TestParallelSettleBitIdentical(t *testing.T) {
	run := func(shards int) []stats.FlowRecord {
		topo := netgraph.LeafSpine(6, 3, 6, netgraph.Gig, netgraph.TenGig)
		g := traffic.NewGenerator(77)
		tr := g.PoissonArrivals(traffic.PoissonConfig{
			Hosts: topo.Hosts(), Lambda: 2000, Horizon: simtime.Second,
			Sizes: traffic.Pareto{XMin: 1e5, Alpha: 1.5}, TCPFraction: 0.5, CBRRateBps: 1e7,
		})
		sim := flowsim.New(flowsim.Config{
			Topology: topo, Controller: controller.NewChain(&controller.ECMPLoadBalancer{}),
			Miss: dataplane.MissController, Shards: shards,
		})
		sim.Load(tr)
		col, err := sim.Run(context.Background(), simtime.Time(10*simtime.Minute))
		if err != nil {
			t.Fatal(err)
		}
		return col.Flows()
	}
	serial := run(0)
	for _, shards := range []int{2, 4} {
		if got := run(shards); !reflect.DeepEqual(serial, got) {
			t.Errorf("Shards=%d records diverge from serial", shards)
		}
	}
}
