package flowsim

import (
	"math"
	"testing"

	"horse/internal/addr"
	"horse/internal/dataplane"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
	"horse/internal/traffic"
)

// proactiveMAC is a minimal proactive controller: on Start it installs
// MAC-destination shortest-path forwarding for every host on every switch.
type proactiveMAC struct{}

func (proactiveMAC) Start(ctx *Context) {
	topo := ctx.Topology()
	for _, host := range topo.Hosts() {
		hops := topo.ECMPNextHops(host, netgraph.HopCost)
		for _, sw := range topo.Switches() {
			nh := hops[sw]
			if len(nh) == 0 {
				continue
			}
			ctx.Send(&openflow.FlowMod{
				Switch: sw, Op: openflow.FlowAdd, Priority: 10,
				Match: header.Match{}.WithEthDst(addr.HostMAC(host)),
				Instr: openflow.Apply(openflow.Output(topo.PortToward(sw, nh[0]))),
			})
		}
	}
}

func (proactiveMAC) Handle(*Context, openflow.Message) {}

// reactivePath installs per-destination rules when a PacketIn arrives.
type reactivePath struct{}

func (reactivePath) Start(*Context) {}

func (reactivePath) Handle(ctx *Context, msg openflow.Message) {
	pin, ok := msg.(*openflow.PacketIn)
	if !ok {
		return
	}
	topo := ctx.Topology()
	dst := addr.HostOfMAC(pin.Key.EthDst)
	if dst < 0 {
		return
	}
	path := topo.ShortestPath(pin.Switch, dst, netgraph.HopCost)
	if path == nil {
		return
	}
	for i := 0; i+1 < len(path); i++ {
		ctx.Send(&openflow.FlowMod{
			Switch: path[i], Op: openflow.FlowAdd, Priority: 10,
			Match: header.Match{}.WithEthDst(pin.Key.EthDst),
			Instr: openflow.Apply(openflow.Output(topo.PortToward(path[i], path[i+1]))),
		})
	}
}

func cbr(src, dst netgraph.NodeID, start simtime.Time, sizeBits, rateBps float64) traffic.Demand {
	return traffic.Demand{
		Key: addr.FlowKeyBetween(src, dst, header.ProtoUDP, 40000, 80),
		Src: src, Dst: dst, Start: start,
		SizeBits: sizeBits, RateBps: rateBps,
	}
}

func tcp(src, dst netgraph.NodeID, start simtime.Time, sizeBits float64) traffic.Demand {
	d := cbr(src, dst, start, sizeBits, math.Inf(1))
	d.Key.Proto = header.ProtoTCP
	d.TCP = true
	return d
}

func dumbbellSim(t *testing.T, ctrl Controller, bottleneckBps float64) (*Simulator, *netgraph.Topology) {
	t.Helper()
	topo := netgraph.Dumbbell(2, 2, netgraph.Gig,
		netgraph.LinkSpec{BandwidthBps: bottleneckBps, Delay: simtime.Millisecond})
	sim := New(Config{Topology: topo, Controller: ctrl, Miss: dataplane.MissController})
	return sim, topo
}

func TestCBRFlowCompletes(t *testing.T) {
	sim, topo := dumbbellSim(t, proactiveMAC{}, 1e9)
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	// 1e8 bits at up to 1e8 bps: should take ~1s after the rules land.
	sim.Load(traffic.Trace{cbr(h0, r0, simtime.Time(10*simtime.Millisecond), 1e8, 1e8)})
	col := mustRun(sim, simtime.Never)
	flows := col.Flows()
	if len(flows) != 1 {
		t.Fatalf("records = %d", len(flows))
	}
	f := flows[0]
	if !f.Completed {
		t.Fatalf("flow outcome = %s", f.Outcome)
	}
	fct := f.FCT().Seconds()
	if fct < 0.99 || fct > 1.05 {
		t.Errorf("FCT = %gs, want ~1s", fct)
	}
	if math.Abs(f.SentBits-1e8) > 1 {
		t.Errorf("sent = %g, want 1e8", f.SentBits)
	}
	if err := sim.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTwoCBRShareBottleneck(t *testing.T) {
	sim, topo := dumbbellSim(t, proactiveMAC{}, 1e8) // 100 Mbps bottleneck
	h0, h1 := topo.MustLookup("h0"), topo.MustLookup("h1")
	r0, r1 := topo.MustLookup("r0"), topo.MustLookup("r1")
	// Two 1e8-bit flows each demanding 1e8 bps: they share 1e8 bps, so
	// each gets 5e7 and takes ~2s.
	sim.Load(traffic.Trace{
		cbr(h0, r0, 0, 1e8, 1e8),
		cbr(h1, r1, 0, 1e8, 1e8),
	})
	col := mustRun(sim, simtime.Never)
	for _, f := range col.Flows() {
		if !f.Completed {
			t.Fatalf("flow %d outcome = %s", f.ID, f.Outcome)
		}
		if fct := f.FCT().Seconds(); fct < 1.9 || fct > 2.2 {
			t.Errorf("flow %d FCT = %g, want ~2s (fair share)", f.ID, fct)
		}
	}
}

func TestEarlyFlowSpeedsUpAfterDeparture(t *testing.T) {
	sim, topo := dumbbellSim(t, proactiveMAC{}, 1e8)
	h0, h1 := topo.MustLookup("h0"), topo.MustLookup("h1")
	r0, r1 := topo.MustLookup("r0"), topo.MustLookup("r1")
	// Short flow departs at ~1s; long flow then doubles its rate:
	// long: 0-1s at 5e7 (5e7 sent), then 1e8 until 1.5e8 total => ~2s.
	sim.Load(traffic.Trace{
		cbr(h0, r0, 0, 1.5e8, 1e8),
		cbr(h1, r1, 0, 0.5e8, 1e8),
	})
	col := mustRun(sim, simtime.Never)
	var long, short *float64
	for _, f := range col.Flows() {
		fct := f.FCT().Seconds()
		v := fct
		if f.SizeBits > 1e8 {
			long = &v
		} else {
			short = &v
		}
	}
	if long == nil || short == nil {
		t.Fatal("missing flows")
	}
	if *short < 0.95 || *short > 1.1 {
		t.Errorf("short FCT = %g, want ~1s", *short)
	}
	if *long < 1.95 || *long > 2.1 {
		t.Errorf("long FCT = %g, want ~2s", *long)
	}
}

func TestReactiveControllerInstallsPath(t *testing.T) {
	sim, topo := dumbbellSim(t, reactivePath{}, 1e9)
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e6, 1e8)})
	col := mustRun(sim, simtime.Never)
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	if f.Punts == 0 {
		t.Error("reactive flow should have punted at least once")
	}
	if col.PacketIns == 0 || col.FlowMods == 0 {
		t.Error("control-plane counters not updated")
	}
	// Control latency delays the start: FCT must exceed pure transfer.
	if f.FCT() < 2*simtime.Millisecond {
		t.Errorf("FCT = %v, reactive setup latency missing", f.FCT())
	}
}

func TestDropMissBlackholes(t *testing.T) {
	topo := netgraph.Dumbbell(1, 1, netgraph.Gig, netgraph.TenGig)
	sim := New(Config{Topology: topo, Controller: NopController{}, Miss: dataplane.MissDrop})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e6, 1e8)})
	col := mustRun(sim, simtime.Never)
	f := col.Flows()[0]
	if f.Completed || f.Outcome != "dropped" {
		t.Errorf("outcome = %s, want dropped", f.Outcome)
	}
	if col.FlowsDropped != 1 {
		t.Errorf("FlowsDropped = %d", col.FlowsDropped)
	}
}

func TestTCPSlowStartDelaysCompletion(t *testing.T) {
	sim, topo := dumbbellSim(t, proactiveMAC{}, 1e9)
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{tcp(h0, r0, 0, 1e7)}) // 10 Mbit transfer
	col := mustRun(sim, simtime.Never)
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	// At pure line rate 1 Gbps the transfer would take 10ms; slow start
	// (IW10, RTT 10ms => ~11.7Mbps initial) forces several RTTs.
	if f.FCT() < 30*simtime.Millisecond {
		t.Errorf("FCT = %v, too fast for slow start", f.FCT())
	}
	if f.FCT() > simtime.Time(2*simtime.Second).Sub(0) {
		t.Errorf("FCT = %v, suspiciously slow", f.FCT())
	}
}

func TestDeadlineCBRFlow(t *testing.T) {
	sim, topo := dumbbellSim(t, proactiveMAC{}, 1e9)
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	d := cbr(h0, r0, 0, math.Inf(1), 1e8)
	d.Duration = 2 * simtime.Second
	sim.Load(traffic.Trace{d})
	col := mustRun(sim, simtime.Never)
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	if fct := f.FCT().Seconds(); math.Abs(fct-2) > 0.01 {
		t.Errorf("deadline FCT = %g, want 2s", fct)
	}
	// ~2e8 bits at 1e8 bps for 2s (minus brief setup).
	if f.SentBits < 1.9e8 || f.SentBits > 2.05e8 {
		t.Errorf("sent = %g, want ~2e8", f.SentBits)
	}
}

func TestMeterPolicesCBR(t *testing.T) {
	sim, topo := dumbbellSim(t, proactiveMAC{}, 1e9)
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sl := topo.MustLookup("sL")
	// Pre-install meter and a metered high-priority rule on sL.
	sw := sim.Network().Switches[sl]
	sw.Apply(&openflow.MeterMod{Op: openflow.MeterAdd, MeterID: 1, RateBps: 5e7}, 0)
	sim.Allocator().SetCapacity(meterResource(sl, 1), 5e7)
	sr := topo.MustLookup("sR")
	sw.Apply(&openflow.FlowMod{
		Op: openflow.FlowAdd, Priority: 100,
		Match: header.Match{}.WithEthDst(addr.HostMAC(r0)),
		Instr: openflow.Apply(openflow.Output(topo.PortToward(sl, sr))).WithMeter(1),
	}, 0)
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e8, 1e8)}) // wants 1e8, metered to 5e7
	col := mustRun(sim, simtime.Never)
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	if fct := f.FCT().Seconds(); fct < 1.9 || fct > 2.2 {
		t.Errorf("metered FCT = %g, want ~2s (policed to half rate)", fct)
	}
}

func TestLinkFailureStallsThenRecovers(t *testing.T) {
	sim, topo := dumbbellSim(t, proactiveMAC{}, 1e9)
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sl, sr := topo.MustLookup("sL"), topo.MustLookup("sR")
	bottleneck := topo.LinkAt(sl, topo.PortToward(sl, sr)).ID
	// Flow needs 1s at 1e8. Fail the core link from t=0.5s to t=1.5s: the
	// flow stalls for 1s and completes around t=2s.
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e8, 1e8)})
	sim.ScheduleLinkChange(simtime.Time(500*simtime.Millisecond), bottleneck, false)
	sim.ScheduleLinkChange(simtime.Time(1500*simtime.Millisecond), bottleneck, true)
	col := mustRun(sim, simtime.Never)
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	if fct := f.FCT().Seconds(); fct < 1.95 || fct > 2.15 {
		t.Errorf("FCT with outage = %g, want ~2s", fct)
	}
}

func TestStatsTickSampling(t *testing.T) {
	topo := netgraph.Dumbbell(1, 1, netgraph.Gig, netgraph.TenGig)
	sim := New(Config{
		Topology: topo, Controller: proactiveMAC{}, Miss: dataplane.MissController,
		StatsEvery: 100 * simtime.Millisecond,
	})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e9, 1e9)}) // 1s at 1 Gbps
	col := mustRun(sim, simtime.Time(1200*simtime.Millisecond))
	series := col.LinkSeries()
	if len(series) == 0 {
		t.Fatal("no samples")
	}
	// The host link (1 Gbps) should be fully utilized mid-transfer.
	var sawBusy bool
	for _, s := range series {
		if s.UsedFrac > 0.9 {
			sawBusy = true
		}
		if s.UsedFrac < 0 || s.UsedFrac > 1.000001 {
			t.Fatalf("utilization out of range: %g", s.UsedFrac)
		}
	}
	if !sawBusy {
		t.Error("never observed a busy link")
	}
}

func TestRunBoundCutsOff(t *testing.T) {
	sim, topo := dumbbellSim(t, proactiveMAC{}, 1e9)
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e9, 1e8)}) // would take 10s
	col := mustRun(sim, simtime.Time(simtime.Second))
	f := col.Flows()[0]
	if f.Completed {
		t.Error("flow should not have completed in 1s")
	}
	if f.Outcome != "running" {
		t.Errorf("outcome = %s, want running", f.Outcome)
	}
	// It transferred roughly 1s of traffic.
	if f.SentBits < 0.9e8 || f.SentBits > 1.1e8 {
		t.Errorf("sent = %g, want ~1e8", f.SentBits)
	}
}

func TestIdleTimeoutEvictsAndNotifies(t *testing.T) {
	// Controller installs a rule with a 50ms idle timeout; after the flow
	// finishes the entry expires and the controller receives FlowRemoved.
	removed := make(chan struct{}, 1)
	ctrl := &funcController{
		start: func(ctx *Context) {
			topo := ctx.Topology()
			for _, host := range topo.Hosts() {
				hops := topo.ECMPNextHops(host, netgraph.HopCost)
				for _, sw := range topo.Switches() {
					if len(hops[sw]) == 0 {
						continue
					}
					ctx.Send(&openflow.FlowMod{
						Switch: sw, Op: openflow.FlowAdd, Priority: 10,
						Match:       header.Match{}.WithEthDst(addr.HostMAC(host)),
						IdleTimeout: 50 * simtime.Millisecond,
						Instr:       openflow.Apply(openflow.Output(topo.PortToward(sw, hops[sw][0]))),
					})
				}
			}
		},
		handle: func(ctx *Context, msg openflow.Message) {
			if _, ok := msg.(*openflow.FlowRemoved); ok {
				select {
				case removed <- struct{}{}:
				default:
				}
			}
		},
	}
	topo := netgraph.Dumbbell(1, 1, netgraph.Gig, netgraph.TenGig)
	sim := New(Config{Topology: topo, Controller: ctrl, Miss: dataplane.MissDrop})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, simtime.Time(5*simtime.Millisecond), 1e6, 1e8)})
	mustRun(sim, simtime.Time(simtime.Second))
	select {
	case <-removed:
	default:
		t.Error("FlowRemoved never arrived")
	}
	// Tables must be empty again.
	for _, sw := range sim.Network().Switches {
		for _, tb := range sw.Tables {
			if tb.Len() != 0 {
				t.Errorf("switch %d still has %d entries", sw.Node, tb.Len())
			}
		}
	}
}

// funcController adapts closures to the Controller interface.
type funcController struct {
	start  func(*Context)
	handle func(*Context, openflow.Message)
}

func (c *funcController) Start(ctx *Context) {
	if c.start != nil {
		c.start(ctx)
	}
}

func (c *funcController) Handle(ctx *Context, msg openflow.Message) {
	if c.handle != nil {
		c.handle(ctx, msg)
	}
}

func TestPortStatsRequestReply(t *testing.T) {
	var reply *openflow.PortStatsReply
	ctrl := &funcController{
		start: func(ctx *Context) {
			proactiveMAC{}.Start(ctx)
			ctx.After(500*simtime.Millisecond, func() {
				topo := ctx.Topology()
				ctx.Send(&openflow.PortStatsRequest{Switch: topo.MustLookup("sL"), Port: netgraph.NoPort})
			})
		},
		handle: func(ctx *Context, msg openflow.Message) {
			if r, ok := msg.(*openflow.PortStatsReply); ok {
				reply = r
			}
		},
	}
	topo := netgraph.Dumbbell(1, 1, netgraph.Gig, netgraph.TenGig)
	sim := New(Config{Topology: topo, Controller: ctrl, Miss: dataplane.MissController})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{cbr(h0, r0, 0, 1e9, 1e9)})
	mustRun(sim, simtime.Time(2*simtime.Second))
	if reply == nil {
		t.Fatal("no PortStatsReply")
	}
	if len(reply.Stats) == 0 {
		t.Fatal("empty stats")
	}
	var sawTraffic bool
	for _, ps := range reply.Stats {
		if ps.TxRateBps > 0 || ps.TxBits > 0 {
			sawTraffic = true
		}
		if !ps.Up || ps.LinkBps <= 0 {
			t.Error("port metadata missing")
		}
	}
	if !sawTraffic {
		t.Error("port stats show no traffic during an active transfer")
	}
}

func TestManyFlowsDeterministic(t *testing.T) {
	run := func() (uint64, float64) {
		topo := netgraph.LeafSpine(4, 2, 4, netgraph.Gig, netgraph.TenGig)
		sim := New(Config{Topology: topo, Controller: proactiveMAC{}, Miss: dataplane.MissController})
		g := traffic.NewGenerator(42)
		tr := g.PoissonArrivals(traffic.PoissonConfig{
			Hosts: topo.Hosts(), Lambda: 200, Horizon: 2 * simtime.Second,
			Sizes: traffic.Pareto{XMin: 1e5, Alpha: 1.4}, TCPFraction: 0.5, CBRRateBps: 1e7,
		})
		sim.Load(tr)
		col := mustRun(sim, simtime.Never)
		var totalSent float64
		for _, f := range col.Flows() {
			totalSent += f.SentBits
		}
		return col.EventsRun, totalSent
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Errorf("nondeterministic: events %d vs %d, sent %g vs %g", e1, e2, s1, s2)
	}
	if e1 == 0 || s1 == 0 {
		t.Error("suspiciously empty run")
	}
}

func TestAllFlowsAccounted(t *testing.T) {
	topo := netgraph.LeafSpine(3, 2, 3, netgraph.Gig, netgraph.TenGig)
	sim := New(Config{Topology: topo, Controller: proactiveMAC{}, Miss: dataplane.MissController})
	g := traffic.NewGenerator(1)
	tr := g.PoissonArrivals(traffic.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 100, Horizon: simtime.Second,
		Sizes: traffic.FixedSize(1e6), TCPFraction: 0.3, CBRRateBps: 1e7,
	})
	sim.Load(tr)
	col := mustRun(sim, simtime.Never)
	if got := len(col.Flows()); got != len(tr) {
		t.Errorf("records = %d, trace = %d", got, len(tr))
	}
	if col.FlowsStarted != uint64(len(tr)) {
		t.Errorf("FlowsStarted = %d", col.FlowsStarted)
	}
	for _, f := range col.Flows() {
		if !f.Completed {
			t.Errorf("flow %d: outcome %s", f.ID, f.Outcome)
		}
	}
}
