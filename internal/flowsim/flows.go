package flowsim

import (
	"fmt"
	"math"
	"sort"

	"horse/internal/dataplane"
	"horse/internal/fairshare"
	"horse/internal/linkmodel"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/runner"
	"horse/internal/simcore"
	"horse/internal/simevent"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// approximate wire MTU for converting flow bytes to "packets" in OpenFlow
// counters.
const packetBits = 1500 * 8

// handleArrival creates the Flow and resolves its first path.
func (s *Simulator) handleArrival(d traffic.Demand) {
	s.nextID++
	f := &Flow{
		ID:         s.nextID,
		Key:        d.Key,
		Src:        d.Src,
		Dst:        d.Dst,
		SizeBits:   d.SizeBits,
		AppRateBps: d.RateBps,
		TCP:        d.TCP,
		Arrival:    s.k.Now(),
		remaining:  d.SizeBits,
		lastSettle: s.k.Now(),
		Deadline:   simtime.Never,
		waitingAt:  -1,
		puntedAt:   make(map[netgraph.NodeID]bool),
	}
	if d.Duration > 0 {
		f.Deadline = s.k.Now().Add(d.Duration)
	}
	if f.AppRateBps <= 0 {
		f.AppRateBps = math.Inf(1)
	}
	s.flows[f.ID] = f
	s.col.FlowsStarted++
	s.resolve(f)
}

// resolve walks the flow through the data plane and transitions its state
// according to the outcome.
func (s *Simulator) resolve(f *Flow) {
	res := s.net.Walk(f.Key, f.Src, f.Dst)

	// Emit PacketIns for punting switches the flow has not yet punted at
	// (a flow's buffered first packet produces one PacketIn per switch).
	for _, sw := range res.PacketIns {
		if !f.puntedAt[sw] {
			f.puntedAt[sw] = true
			f.punts++
			s.col.PacketIns++
			s.sendToController(&openflow.PacketIn{
				Switch: sw,
				InPort: inPortAt(s, f, sw),
				Key:    f.Key,
				Reason: openflow.ReasonNoMatch,
			})
		}
	}

	switch res.Terminal {
	case dataplane.Delivered:
		s.activate(f, res)
	case dataplane.Punted, dataplane.Flooded, dataplane.Stuck:
		s.park(f, res.At)
	case dataplane.Dropped:
		s.settleFlow(f)
		s.deactivate(f)
		s.finalize(f, false, "dropped")
		s.col.FlowsDropped++
	case dataplane.Looped:
		s.settleFlow(f)
		s.deactivate(f)
		s.finalize(f, false, "looped")
		s.col.FlowsLooped++
	}
}

// inPortAt returns the port on sw where the flow enters (best effort: the
// ingress port if sw is the first switch, otherwise NoPort — sufficient
// for the controller apps, which key on the flow, not the port).
func inPortAt(s *Simulator, f *Flow, sw netgraph.NodeID) netgraph.PortNum {
	at, port := s.topo.AttachedSwitch(f.Src)
	if at == sw {
		return port
	}
	return netgraph.NoPort
}

// park transitions a flow to the waiting state at a switch.
func (s *Simulator) park(f *Flow, at netgraph.NodeID) {
	s.settleFlow(f)
	s.deactivate(f)
	if f.state == StateDone {
		return
	}
	f.state = StateWaiting
	f.waitingAt = at
	if s.waiting[at] == nil {
		s.waiting[at] = make(map[FlowID]*Flow)
	}
	s.waiting[at][f.ID] = f
	// Open-ended flows still end at their deadline even while waiting.
	s.k.Cancel(f.completion)
	f.completion = simcore.Timer{}
	f.gen++
	if f.Deadline != simtime.Never {
		f.completion = s.schedTimer(event{at: f.Deadline, kind: evComplete, flow: f, gen: f.gen})
	}
}

// unpark removes a flow from the waiting index.
func (s *Simulator) unpark(f *Flow) {
	if f.waitingAt >= 0 {
		delete(s.waiting[f.waitingAt], f.ID)
		f.waitingAt = -1
	}
}

// activate installs the flow on the allocator with its resolved path.
func (s *Simulator) activate(f *Flow, res dataplane.PathResult) {
	s.settleFlow(f)
	// Tear down previous registration (path may have changed).
	wasActive := f.state == StateActive
	oldPath := f.hops
	s.deactivate(f)
	s.unpark(f)

	f.state = StateActive
	f.hops = res.Hops
	f.entries = res.Entries
	f.meterRefs = res.Meters
	f.Key = res.ExitKey
	f.lastPathLen = len(res.Hops)

	// Path changes are counted against the last transmitting path, which
	// survives park/reactivate cycles (outage reroutes count too).
	if f.prevHops != nil && !samePath(f.prevHops, res.Hops) {
		f.pathChanges++
		s.col.PathChanges++
		s.col.AddReroute(s.k.Now())
	}
	f.prevHops = res.Hops
	if !wasActive {
		f.txStart = s.k.Now()
	}
	_ = oldPath
	// The flow found a path; if its rules are later evicted it punts as a
	// fresh episode, so clear the PacketIn dedup set.
	if len(f.puntedAt) > 0 {
		f.puntedAt = make(map[netgraph.NodeID]bool)
	}

	// Resources: every link direction along the path plus every meter.
	f.resources = f.resources[:0]
	for _, h := range f.hops {
		fwd := h.Link.A == h.Switch
		f.resources = append(f.resources, linkResource(h.Link.ID, fwd))
	}
	// The first hop's ingress link (host → first switch) also carries the
	// flow.
	if hostLink := s.hostLink(f.Src); hostLink != nil {
		fwd := hostLink.A == f.Src
		f.resources = append(f.resources, linkResource(hostLink.ID, fwd))
	}
	for _, mr := range f.meterRefs {
		r := meterResource(mr.Switch, mr.Meter)
		if m := s.meter(mr); m != nil {
			s.alloc.SetCapacity(r, m.RateBps)
			m.Flows++
		}
		f.resources = append(f.resources, r)
	}
	s.refreshPathLoss(f)

	// Register flow-entry usage.
	for _, e := range f.entries {
		e.FlowCount++
		e.LastUsed = s.k.Now()
	}
	// Index by traversed switch for re-resolution.
	for _, h := range f.hops {
		if s.flowsAt[h.Switch] == nil {
			s.flowsAt[h.Switch] = make(map[FlowID]*Flow)
		}
		s.flowsAt[h.Switch][f.ID] = f
	}

	s.alloc.AddFlow(fairshare.FlowID(f.ID), s.currentDemand(f), f.resources)
	s.markRateShift(f.resources)
	s.recomputeAndApply()

	if f.TCP {
		s.scheduleRamp(f)
	}
	s.scheduleCompletion(f)
}

// hostLink returns the (single) link attaching a host.
func (s *Simulator) hostLink(host netgraph.NodeID) *netgraph.Link {
	sw, port := s.topo.AttachedSwitch(host)
	if sw < 0 {
		return nil
	}
	return s.topo.LinkAt(sw, port)
}

func samePath(a, b []dataplane.Hop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Switch != b[i].Switch || a[i].OutPort != b[i].OutPort {
			return false
		}
	}
	return true
}

// deactivate removes an active flow from the allocator and indexes without
// finalizing it. Caller must settle first.
func (s *Simulator) deactivate(f *Flow) {
	if f.state != StateActive {
		return
	}
	// Ledger: the flow's rate leaves its resources.
	s.adjustLedgers(f, -f.rate)
	f.rate = 0
	s.alloc.RemoveFlow(fairshare.FlowID(f.ID))
	s.markRateShift(f.resources)
	for _, h := range f.hops {
		delete(s.flowsAt[h.Switch], f.ID)
	}
	f.hops = nil
	f.entries = nil
	f.meterRefs = nil
	s.recomputeAndApply()
}

// currentDemand is the flow's offered load right now. TCP flows offer
// their congestion-window cap, further bounded by the Mathis throughput
// model when the path crosses lossy (degraded) links; CBR flows offer
// the application rate.
func (s *Simulator) currentDemand(f *Flow) float64 {
	if !f.TCP {
		return f.AppRateBps
	}
	if f.demandCap <= 0 {
		f.demandCap = s.cfg.TCP.InitialRate()
	}
	d := math.Min(f.AppRateBps, f.demandCap)
	if f.pathLoss > 0 {
		d = math.Min(d, s.cfg.TCP.MathisCap(f.pathLoss))
	}
	return d
}

// refreshPathLoss recomputes the flow's end-to-end frame-loss
// probability from the link models along its current path (hops plus the
// host ingress link): 1 - ∏(1 - loss_i), the survival product a frame
// faces in the packet engine.
func (s *Simulator) refreshPathLoss(f *Flow) {
	if s.links.Empty() {
		f.pathLoss = 0
		return
	}
	deliver := 1.0
	for _, h := range f.hops {
		fwd := h.Link.A == h.Switch
		deliver *= 1 - s.links.LossRate(h.Link.ID, fwd)
	}
	if hostLink := s.hostLink(f.Src); hostLink != nil {
		fwd := hostLink.A == f.Src
		deliver *= 1 - s.links.LossRate(hostLink.ID, fwd)
	}
	f.pathLoss = 1 - deliver
}

// settleFlow brings a flow's byte accounting up to now at its current rate.
func (s *Simulator) settleFlow(f *Flow) {
	if f.state == StateActive && s.k.Now() > f.lastSettle {
		bits := f.rate * s.k.Now().Sub(f.lastSettle).Seconds()
		if bits > 0 {
			f.sent += bits
			if !math.IsInf(f.remaining, 1) {
				f.remaining -= bits
				if f.remaining < 0 {
					f.remaining = 0
				}
			}
			for _, e := range f.entries {
				e.Bytes += uint64(bits / 8)
				e.Packets += uint64(bits/packetBits) + 1
				e.LastUsed = s.k.Now()
			}
		}
	}
	f.lastSettle = s.k.Now()
}

// adjustLedgers settles each of the flow's resources and adds delta to the
// resource's aggregate rate.
func (s *Simulator) adjustLedgers(f *Flow, delta float64) {
	if delta == 0 {
		return
	}
	for _, r := range f.resources {
		l := s.ledgers[r]
		if l == nil {
			l = &resLedger{last: s.k.Now()}
			s.ledgers[r] = l
		}
		l.settle(s.k.Now())
		l.rate += delta
		if l.rate < 0 {
			l.rate = 0
		}
	}
}

// recomputeAndApply marks the allocation state dirty. The actual solve is
// deferred to drainAlloc, which runs once per virtual instant: all events
// at the same timestamp (e.g. one replay epoch's arrivals) share a single
// re-solve. Rates are correct whenever virtual time advances, which is the
// only point at which they accrue transferred bits.
func (s *Simulator) recomputeAndApply() {
	s.allocDirty = true
}

// markRateShift records resources whose flow membership changed so the
// next drain reports them through OnRateShift even when no surviving
// flow's rate moved (e.g. the last flow on a link departed).
func (s *Simulator) markRateShift(resources []fairshare.ResourceID) {
	if s.cfg.OnRateShift == nil {
		return
	}
	s.shiftPending = append(s.shiftPending, resources...)
}

// drainAlloc re-solves the allocator and applies rate changes to flows:
// settling, ledger updates, and completion-event rescheduling.
func (s *Simulator) drainAlloc() {
	if !s.allocDirty {
		return
	}
	s.allocDirty = false
	var changed []fairshare.Changed
	switch {
	case s.cfg.FullRecompute && s.cfg.Shards > 1:
		// Sharing-graph components solve independently; fan them across
		// the same worker count the settle pool uses. Identical output to
		// RecomputeAll (the allocator stitches changes back into
		// component order), so determinism is unaffected.
		changed = s.alloc.RecomputeAllParallel(s.cfg.Shards)
	case s.cfg.FullRecompute:
		changed = s.alloc.RecomputeAll()
	default:
		changed = s.alloc.Recompute()
	}
	if len(changed) == 0 && len(s.shiftPending) == 0 {
		return
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i].ID < changed[j].ID })
	shifted := s.shiftScratch[:0]
	shifted = append(shifted, s.shiftPending...)
	s.shiftPending = s.shiftPending[:0]
	settled := s.parallelSettle(changed)
	for i, c := range changed {
		f := s.flows[FlowID(c.ID)]
		if f == nil || f.state != StateActive {
			continue
		}
		if settled != nil {
			s.applySettle(f, settled[i])
		} else {
			s.settleFlow(f)
		}
		s.adjustLedgers(f, c.NewRate-f.rate)
		f.rate = c.NewRate
		s.col.RateChanges++
		s.scheduleCompletion(f)
		// A rate change may open growth room for a TCP flow.
		s.scheduleRamp(f)
		if s.cfg.OnRateShift != nil {
			shifted = append(shifted, f.resources...)
		}
	}
	if s.cfg.OnRateShift != nil && len(shifted) > 0 {
		sort.Slice(shifted, func(i, j int) bool { return shifted[i] < shifted[j] })
		dedup := shifted[:1]
		for _, r := range shifted[1:] {
			if r != dedup[len(dedup)-1] {
				dedup = append(dedup, r)
			}
		}
		s.shiftScratch = shifted
		s.cfg.OnRateShift(dedup)
	}
}

// parallelSettleMin is the drain size below which fanning the settle scan
// out costs more than the arithmetic it parallelizes.
const parallelSettleMin = 256

// parallelSettle computes, for every changed flow, the bits it transferred
// since its last settle — the pure, per-flow half of the drain — on a
// worker pool of Config.Shards workers. Returns nil (caller settles
// serially) when the pool is not configured or the drain is small. The
// computation per flow is the exact expression settleFlow evaluates, so
// the fanned-out drain is bit-identical to the serial one; the mutating
// half (flow totals, shared switch entries, ledgers) stays with the
// caller's serial apply pass.
func (s *Simulator) parallelSettle(changed []fairshare.Changed) []float64 {
	if s.cfg.Shards <= 1 || len(changed) < parallelSettleMin {
		return nil
	}
	out := make([]float64, len(changed))
	now := s.k.Now()
	workers := s.cfg.Shards
	chunk := (len(changed) + workers - 1) / workers
	var cells []runner.Cell[struct{}]
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= len(changed) {
			break
		}
		if hi > len(changed) {
			hi = len(changed)
		}
		cells = append(cells, runner.Cell[struct{}]{
			ID: fmt.Sprintf("settle%d", w),
			Run: func() struct{} {
				for i := lo; i < hi; i++ {
					f := s.flows[FlowID(changed[i].ID)]
					if f == nil || f.state != StateActive || now <= f.lastSettle {
						continue
					}
					out[i] = f.rate * now.Sub(f.lastSettle).Seconds()
				}
				return struct{}{}
			},
		})
	}
	runner.Run(cells, workers)
	return out
}

// applySettle is settleFlow with the transferred bits precomputed by
// parallelSettle.
func (s *Simulator) applySettle(f *Flow, bits float64) {
	if f.state == StateActive && s.k.Now() > f.lastSettle && bits > 0 {
		f.sent += bits
		if !math.IsInf(f.remaining, 1) {
			f.remaining -= bits
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		for _, e := range f.entries {
			e.Bytes += uint64(bits / 8)
			e.Packets += uint64(bits/packetBits) + 1
			e.LastUsed = s.k.Now()
		}
	}
	f.lastSettle = s.k.Now()
}

// scheduleCompletion (re)schedules the flow's completion event based on its
// remaining volume, current rate, and deadline.
func (s *Simulator) scheduleCompletion(f *Flow) {
	s.k.Cancel(f.completion)
	f.completion = simcore.Timer{}
	f.gen++
	at := simtime.Never
	if !math.IsInf(f.remaining, 1) && f.rate > 0 {
		at = s.k.Now().Add(simtime.TransferTime(f.remaining, f.rate))
		// TransferTime truncates to nanoseconds; a sub-ns residue must
		// still complete strictly in the future or the completion event
		// would respawn at the same instant forever.
		if at <= s.k.Now() {
			at = s.k.Now() + 1
		}
	}
	if f.Deadline < at {
		at = f.Deadline
	}
	if at == simtime.Never {
		return
	}
	f.completion = s.schedTimer(event{at: at, kind: evComplete, flow: f, gen: f.gen})
}

// handleComplete ends a flow: either its volume is transferred or its
// deadline arrived.
func (s *Simulator) handleComplete(f *Flow) {
	s.settleFlow(f)
	volumeDone := !math.IsInf(f.remaining, 1) && f.remaining <= 0.5 // half-bit slack
	deadlineHit := f.Deadline != simtime.Never && s.k.Now() >= f.Deadline
	if !volumeDone && !deadlineHit {
		// Spurious wakeup (rate changed between scheduling and firing);
		// reschedule.
		s.scheduleCompletion(f)
		return
	}
	s.deactivate(f)
	s.unpark(f)
	outcome := "completed"
	completed := true
	if !volumeDone && deadlineHit && f.state == StateWaiting {
		outcome = "expired-waiting"
		completed = false
	}
	s.finalize(f, completed, outcome)
	s.col.FlowsCompleted++
}

// finalize records the flow and marks it done.
func (s *Simulator) finalize(f *Flow, completed bool, outcome string) {
	if f.state == StateDone {
		return
	}
	f.state = StateDone
	f.gen++ // backstop: kill anything the cancels below missed
	s.k.Cancel(f.completion)
	f.completion = simcore.Timer{}
	s.k.Cancel(f.ramp)
	f.ramp = simcore.Timer{}
	s.unpark(f)
	size := f.SizeBits
	if math.IsInf(size, 1) {
		size = f.sent
	}
	s.col.AddFlow(stats.FlowRecord{
		ID:        int64(f.ID),
		Arrival:   f.Arrival,
		End:       s.k.Now(),
		SizeBits:  size,
		SentBits:  f.sent,
		Completed: completed,
		Outcome:   outcome,
		PathLen:   f.lastPathLen,
		Punts:     f.punts,
	})
	if s.recordSink != nil {
		// Streaming mode: the record has left the building and nothing
		// re-resolves a Done flow (markDirty and the batch runner both
		// skip them; in-flight events hold the pointer and die on the gen
		// stamp), so the flow state can be reclaimed — the piece that
		// keeps multi-million-flow runs at bounded memory.
		delete(s.flows, f.ID)
		delete(s.dirtyFlows, f.ID)
	}
}

// scheduleRamp arms the next TCP window re-evaluation one RTT out, when
// there is anything to adapt to: room to grow (the current cap binds and
// is below the application rate) or a policer on the path (which demands
// continuous probing, exactly like real TCP through a policer).
func (s *Simulator) scheduleRamp(f *Flow) {
	if f.ramping || f.state != StateActive || !f.TCP {
		return
	}
	demand := s.currentDemand(f)
	growthRoom := demand < f.AppRateBps && f.rate >= demand*0.95
	if !growthRoom && len(f.meterRefs) == 0 {
		return
	}
	// No point growing past what the path could ever carry.
	if f.demandCap >= 2*s.pathCapacity(f) && len(f.meterRefs) == 0 {
		return
	}
	f.ramping = true
	f.ramp = s.schedTimer(event{at: s.k.Now().Add(s.cfg.TCP.RTT), kind: evRamp, flow: f})
}

// pathCapacity returns the minimum link capacity along the flow's path.
func (s *Simulator) pathCapacity(f *Flow) float64 {
	min := math.Inf(1)
	for _, h := range f.hops {
		if h.Link.BandwidthBps < min {
			min = h.Link.BandwidthBps
		}
	}
	return min
}

// handleRamp evolves a TCP flow's congestion-window cap: flow-level AIMD.
// While a policer on the path is overdriven the cap halves (multiplicative
// decrease — the policer is dropping); otherwise, if the current cap binds,
// it grows — doubling in slow start, one MSS/RTT after the first loss.
func (s *Simulator) handleRamp(f *Flow) {
	f.ramping = false
	s.drainAlloc()
	s.settleFlow(f)
	if f.demandCap <= 0 {
		f.demandCap = s.cfg.TCP.InitialRate()
	}

	overdriven := false
	for _, mr := range f.meterRefs {
		r := meterResource(mr.Switch, mr.Meter)
		m := s.meter(mr)
		if m == nil {
			continue
		}
		if excess := s.alloc.DemandSum(r) - m.RateBps; excess > m.RateBps*0.001 {
			overdriven = true
			m.ThrottledBps = excess
		} else {
			m.ThrottledBps = 0
		}
	}

	initial := s.cfg.TCP.InitialRate()
	switch {
	case overdriven:
		// The policer is dropping: back off from the achieved rate.
		f.demandCap = math.Max(f.rate/2, initial)
		f.caMode = true
	case f.rate >= s.currentDemand(f)*0.95:
		// Demand-limited: grow.
		if f.caMode {
			f.demandCap += float64(s.cfg.TCP.MSS*8) / s.cfg.TCP.RTT.Seconds()
		} else {
			f.demandCap *= 2
		}
	}
	s.alloc.SetDemand(fairshare.FlowID(f.ID), s.currentDemand(f))
	s.recomputeAndApply()
	if f.state == StateActive {
		s.scheduleRamp(f)
	}
}

// meter dereferences a meter ref against the owning switch.
func (s *Simulator) meter(mr dataplane.MeterRef) *openflow.Meter {
	sw := s.net.Switches[mr.Switch]
	if sw == nil {
		return nil
	}
	return sw.Meters.Get(mr.Meter)
}

// markDirty queues a flow for batched re-resolution at the current instant.
func (s *Simulator) markDirty(f *Flow) {
	if f.state == StateDone {
		return
	}
	s.dirtyFlows[f.ID] = f
	if !s.batchPending {
		s.batchPending = true
		s.sched(event{at: s.k.Now(), kind: evResolveBatch})
	}
}

// markSwitchDirty queues every flow parked at or traversing a switch.
func (s *Simulator) markSwitchDirty(sw netgraph.NodeID) {
	for _, f := range s.waiting[sw] {
		s.markDirty(f)
	}
	for _, f := range s.flowsAt[sw] {
		s.markDirty(f)
	}
}

// handleResolveBatch re-resolves all dirty flows in ID order.
func (s *Simulator) handleResolveBatch() {
	s.batchPending = false
	if len(s.dirtyFlows) == 0 {
		return
	}
	ids := make([]FlowID, 0, len(s.dirtyFlows))
	for id := range s.dirtyFlows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	batch := s.dirtyFlows
	s.dirtyFlows = make(map[FlowID]*Flow)
	for _, id := range ids {
		f := batch[id]
		if f.state == StateDone {
			continue
		}
		s.resolve(f)
	}
}

// handleLinkChange applies a scheduled link state change. The scripted
// link state composes with switch liveness through linkDesired, so a link
// "recovering" under a crashed endpoint stays down until the switch
// restarts.
func (s *Simulator) handleLinkChange(id netgraph.LinkID, up bool) {
	s.fstate.SetLink(id, up)
	s.applyLinkChange(id, s.fstate.LinkDesired(id), -1)
}

// applyLinkChange flips a link's state (no-op when already there),
// updates capacities, notifies the controller, and re-resolves affected
// flows (modeling data-plane liveness for groups and blackholing for
// plain port rules). silent names a crashed switch that cannot emit
// PortStatus (pass -1 normally).
func (s *Simulator) applyLinkChange(id netgraph.LinkID, up bool, silent netgraph.NodeID) {
	l := s.topo.Link(id)
	if l.Up == up {
		return
	}
	s.topo.SetLinkUp(id, up)
	s.reapplyLinkCapacity(l)
	s.recomputeAndApply()

	for _, end := range []netgraph.NodeID{l.A, l.B} {
		if s.net.Switches[end] != nil {
			if end != silent {
				// A crashed (silent) switch cannot announce its own
				// ports. While detached, sendToController pends the
				// link for the reattach resync instead.
				s.sendToController(&openflow.PortStatus{Switch: end, Port: l.PortAt(end), Up: up})
			}
			s.markSwitchDirty(end)
		}
	}
	// Flows crossing the link must re-resolve (their entries may now pick
	// live group buckets, or blackhole).
	for _, f := range s.flows {
		if f.state != StateActive {
			continue
		}
		for _, h := range f.hops {
			if h.Link.ID == id {
				s.markDirty(f)
				break
			}
		}
	}
	// A recovered link can also unblock waiting flows anywhere (e.g.
	// flood reachability); cheap conservative choice: retry all waiting.
	if up {
		for _, m := range s.waiting {
			for _, f := range m {
				s.markDirty(f)
			}
		}
	}
	if s.cfg.OnLinkChange != nil {
		s.cfg.OnLinkChange(id, up)
	}
	s.observers.Notify(simevent.Observation{
		At: s.k.Now(), Kind: simevent.LinkChange, Link: id, Up: up,
	})
}

// reapplyLinkCapacity pushes a link's current effective capacity — zero
// while down, otherwise bandwidth scaled by the installed model's
// RateScale at now — into the allocator, per direction.
func (s *Simulator) reapplyLinkCapacity(l *netgraph.Link) {
	for _, fwd := range []bool{true, false} {
		c := 0.0
		if l.Up {
			c = l.BandwidthBps * s.links.RateScale(l.ID, fwd, s.k.Now())
		}
		s.alloc.SetCapacity(linkResource(l.ID, fwd), c)
	}
}

// handleLinkDegrade applies a scheduled link-model change: m installs a
// degradation model on both directions of the link (nil restores it).
// The effective capacity re-applies immediately, crossing flows refresh
// their Mathis loss caps, and time-varying models arm a rate-step timer.
// Orthogonal to operational state: a link inside a scripted outage keeps
// capacity 0 until it recovers, at which point the model's scale applies.
func (s *Simulator) handleLinkDegrade(id netgraph.LinkID, m linkmodel.Model) {
	s.links.SetLink(id, m)
	s.modelGen[id]++
	s.reapplyLinkCapacity(s.topo.Link(id))
	for _, f := range s.flows {
		if f.state != StateActive {
			continue
		}
		crosses := false
		for _, r := range f.resources {
			if link, _, ok := ResourceLinkDir(r); ok && link == id {
				crosses = true
				break
			}
		}
		if !crosses {
			continue
		}
		s.refreshPathLoss(f)
		s.alloc.SetDemand(fairshare.FlowID(f.ID), s.currentDemand(f))
	}
	s.recomputeAndApply()
	s.armRateStep(id)
	if s.cfg.OnLinkDegrade != nil {
		s.cfg.OnLinkDegrade(id, m)
	}
	s.observers.Notify(simevent.Observation{
		At: s.k.Now(), Kind: simevent.LinkDegrade, Link: id, Up: m == nil,
	})
}

// armRateStep schedules the next fair-share capacity re-application for
// a link carrying a time-varying model (AdaptiveRate), aligned to the
// model's coherence-window boundaries. The timer invalidates itself
// through modelGen when the link's model changes, and — like the stats
// tick — only reschedules while other work remains, so a lone stepping
// timer cannot keep an open-ended run alive.
func (s *Simulator) armRateStep(id netgraph.LinkID) {
	every := s.links.StepEvery(id, true)
	if b := s.links.StepEvery(id, false); b > every {
		every = b
	}
	if every <= 0 {
		return
	}
	gen := s.modelGen[id]
	at := simtime.Time((uint64(s.k.Now())/uint64(every) + 1) * uint64(every))
	s.sched(event{at: at, kind: evTimer, fn: func() {
		if s.modelGen[id] != gen {
			return
		}
		s.reapplyLinkCapacity(s.topo.Link(id))
		s.recomputeAndApply()
		if s.k.Len() > 0 {
			s.armRateStep(id)
		}
	}})
}

// handleSwitchChange applies a switch crash or restart: a crash wipes the
// switch's OpenFlow state and takes every attached link down (neighbors
// announce PortStatus; the dead switch cannot); a restart brings the links
// back up — with the tables still empty — and both ends announce.
func (s *Simulator) handleSwitchChange(sw netgraph.NodeID, up bool) {
	swState := s.net.Switches[sw]
	if swState == nil || !s.fstate.SetSwitch(sw, up) {
		return
	}
	silent := netgraph.NodeID(-1)
	if !up {
		swState.Reset()
		// The crash voids whatever the controller did (or was doing) for
		// flows punted at this switch — a FlowMod in flight dies with the
		// tables — so clear the PacketIn dedup: a post-restart punt must
		// announce itself afresh.
		for _, m := range s.waiting {
			for _, f := range m {
				delete(f.puntedAt, sw)
			}
		}
		s.markSwitchDirty(sw)
		silent = sw
	}
	for _, p := range s.topo.Node(sw).Ports() {
		l := s.topo.LinkAt(sw, p)
		if l == nil {
			continue
		}
		// LinkDesired keeps a restart from reviving a link still inside
		// its own scripted outage (and a crash from "double-failing" one).
		s.applyLinkChange(l.ID, s.fstate.LinkDesired(l.ID), silent)
	}
	if s.cfg.OnSwitchChange != nil {
		s.cfg.OnSwitchChange(sw, up)
	}
	s.observers.Notify(simevent.Observation{
		At: s.k.Now(), Kind: simevent.SwitchChange, Switch: sw, Up: up,
	})
}

// handleCtrlChange applies a controller detach or reattach. Outages nest
// by counting (FailureState.SetController), like link and switch
// failures: only the reattach matching the first detach restores the
// channel.
func (s *Simulator) handleCtrlChange(attached bool) {
	if !s.fstate.SetController(attached) {
		return // no state flip (nested, or nothing to reattach)
	}
	if attached {
		// Resync first: links that changed while detached announce their
		// CURRENT state, so PortStatus-driven controllers reconverge on
		// the truth before any re-punted PacketIns arrive.
		s.fstate.ResyncPortStatus(s.net, s.sendToController)
		// Waiting flows re-announce: their original PacketIns may have
		// been lost while detached, so clear the dedup sets and
		// re-resolve (a still-missing rule re-punts with a fresh
		// PacketIn, like a switch re-punting on reconnect).
		for _, m := range s.waiting {
			for _, f := range m {
				clear(f.puntedAt)
				s.markDirty(f)
			}
		}
	}
	if s.cfg.OnControllerChange != nil {
		s.cfg.OnControllerChange(attached)
	}
	s.observers.Notify(simevent.Observation{
		At: s.k.Now(), Kind: simevent.ControllerChange, Up: attached,
	})
}

// handleStatsTick samples link utilization and reschedules itself.
func (s *Simulator) handleStatsTick() {
	s.drainAlloc()
	for _, l := range s.topo.Links() {
		for _, fwd := range []bool{true, false} {
			r := linkResource(l.ID, fwd)
			rate := s.alloc.ResourceUsage(r)
			frac := 0.0
			if l.Up && l.BandwidthBps > 0 {
				frac = rate / l.BandwidthBps
			}
			s.col.AddLinkSample(stats.LinkSample{
				At: s.k.Now(), Link: l.ID, Forward: fwd, RateBps: rate, UsedFrac: frac,
			})
		}
	}
	// Reschedule only while the simulation still has work: a lone stats
	// tick must not keep an open-ended Run alive forever.
	if s.k.Len() > 0 {
		s.sched(event{at: s.k.Now().Add(s.cfg.StatsEvery), kind: evStatsTick})
	}
}
