package flowsim

import (
	"math"
	"testing"
	"time"

	"horse/internal/addr"
	"horse/internal/dataplane"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/traffic"
)

// mkWorkload builds a deterministic mixed workload on a leaf-spine fabric.
func mkWorkload(seed int64) (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.LeafSpine(4, 2, 4, netgraph.Gig, netgraph.TenGig)
	g := traffic.NewGenerator(seed)
	tr := g.PoissonArrivals(traffic.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 300, Horizon: 2 * simtime.Second,
		Sizes: traffic.Pareto{XMin: 2e5, Alpha: 1.4}, TCPFraction: 0.5, CBRRateBps: 2e7,
	})
	return topo, tr
}

func runVariant(t *testing.T, full, calendar bool) *stats.Collector {
	t.Helper()
	topo, tr := mkWorkload(123)
	sim := New(Config{
		Topology: topo, Controller: proactiveMAC{}, Miss: dataplane.MissController,
		FullRecompute: full, UseCalendarQueue: calendar,
	})
	sim.Load(tr)
	return mustRun(sim, simtime.Time(simtime.Minute))
}

// TestRecomputeStrategiesAgree verifies the central E6 correctness claim:
// full and incremental fair-share solving produce identical simulations.
func TestRecomputeStrategiesAgree(t *testing.T) {
	a := runVariant(t, false, false)
	b := runVariant(t, true, false)
	compareRuns(t, a, b, "incremental", "full-recompute")
}

// TestQueueImplementationsAgree verifies heap and calendar queues produce
// identical simulations.
func TestQueueImplementationsAgree(t *testing.T) {
	a := runVariant(t, false, false)
	b := runVariant(t, false, true)
	compareRuns(t, a, b, "heap", "calendar")
}

func compareRuns(t *testing.T, a, b *stats.Collector, an, bn string) {
	t.Helper()
	fa, fb := a.Flows(), b.Flows()
	if len(fa) != len(fb) {
		t.Fatalf("%s has %d records, %s has %d", an, len(fa), bn, len(fb))
	}
	byID := make(map[int64]stats.FlowRecord, len(fb))
	for _, f := range fb {
		byID[f.ID] = f
	}
	for _, f := range fa {
		g, ok := byID[f.ID]
		if !ok {
			t.Fatalf("flow %d missing from %s", f.ID, bn)
		}
		if f.Outcome != g.Outcome {
			t.Fatalf("flow %d outcome %q vs %q", f.ID, f.Outcome, g.Outcome)
		}
		if math.Abs(f.SentBits-g.SentBits) > 1+f.SentBits*1e-9 {
			t.Fatalf("flow %d sent %g vs %g", f.ID, f.SentBits, g.SentBits)
		}
		if d := f.FCT() - g.FCT(); d > simtime.Microsecond || d < -simtime.Microsecond {
			t.Fatalf("flow %d FCT %v vs %v", f.ID, f.FCT(), g.FCT())
		}
	}
}

// TestThroughputConservation: total bits delivered can never exceed what
// the flows' access links could carry in the elapsed time, and completed
// flows transfer exactly their size.
func TestThroughputConservation(t *testing.T) {
	topo, tr := mkWorkload(9)
	sim := New(Config{Topology: topo, Controller: proactiveMAC{}, Miss: dataplane.MissController})
	sim.Load(tr)
	col := mustRun(sim, simtime.Time(simtime.Minute))
	var horizon simtime.Time
	for _, f := range col.Flows() {
		if f.End > horizon {
			horizon = f.End
		}
		if f.Completed && !math.IsInf(f.SizeBits, 1) {
			if math.Abs(f.SentBits-f.SizeBits) > 1 {
				t.Errorf("flow %d completed with %g of %g bits", f.ID, f.SentBits, f.SizeBits)
			}
		}
		if f.SentBits < 0 {
			t.Errorf("flow %d negative sent", f.ID)
		}
	}
	var total float64
	for _, f := range col.Flows() {
		total += f.SentBits
	}
	// 16 hosts × 1 Gbps is the absolute ingress ceiling.
	ceiling := 16 * 1e9 * horizon.Seconds()
	if total > ceiling {
		t.Errorf("delivered %g bits > physical ceiling %g", total, ceiling)
	}
	if total == 0 {
		t.Error("nothing delivered")
	}
}

// TestAIMDUnderPolicerSteadyState: a backlogged TCP flow through a policer
// settles into the AIMD sawtooth below the policed rate — the quantified
// version of the paper's "undermines the quality of a TCP transmission".
func TestAIMDUnderPolicerSteadyState(t *testing.T) {
	topo := netgraph.Dumbbell(1, 1, netgraph.Gig, netgraph.TenGig)
	sim := New(Config{Topology: topo, Controller: proactiveMAC{}, Miss: dataplane.MissController})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sl, sr := topo.MustLookup("sL"), topo.MustLookup("sR")
	const policed = 2e8 // 200 Mbps
	sw := sim.Network().Switches[sl]
	sw.Apply(&openflow.MeterMod{Op: openflow.MeterAdd, MeterID: 1, RateBps: policed}, 0)
	sim.Allocator().SetCapacity(meterResource(sl, 1), policed)
	sw.Apply(&openflow.FlowMod{
		Op: openflow.FlowAdd, Priority: 100,
		Match: header.Match{}.WithEthDst(addr.HostMAC(r0)),
		Instr: openflow.Apply(openflow.Output(topo.PortToward(sl, sr))).WithMeter(1),
	}, 0)
	d := traffic.Demand{
		Key: addr.FlowKeyBetween(h0, r0, header.ProtoTCP, 40000, 80),
		Src: h0, Dst: r0,
		Start:    simtime.Time(10 * simtime.Millisecond),
		SizeBits: 5e8, RateBps: math.Inf(1), TCP: true,
	}
	sim.Load(traffic.Trace{d})
	col := mustRun(sim, simtime.Time(simtime.Minute))
	f := col.Flows()[0]
	if !f.Completed {
		t.Fatalf("outcome = %s", f.Outcome)
	}
	mean := f.SentBits / f.FCT().Seconds()
	// AIMD through a policer achieves meaningfully less than the policed
	// rate but not catastrophically less: between 30% and 100% of it.
	if mean > policed*1.01 {
		t.Errorf("mean throughput %g exceeds the policer %g", mean, policed)
	}
	if mean < policed*0.3 {
		t.Errorf("mean throughput %g collapsed below 30%% of the policer", mean)
	}
	if mean > policed*0.97 {
		t.Errorf("mean throughput %g shows no AIMD penalty at all", mean)
	}
}

// TestWaitingFlowExpiresAtDeadline: a punted flow with a deadline and no
// controller help ends as expired-waiting, not completed.
func TestWaitingFlowExpiresAtDeadline(t *testing.T) {
	topo := netgraph.Dumbbell(1, 1, netgraph.Gig, netgraph.TenGig)
	sim := New(Config{Topology: topo, Controller: NopController{}, Miss: dataplane.MissController})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	d := traffic.Demand{
		Key: addr.FlowKeyBetween(h0, r0, header.ProtoUDP, 40000, 80),
		Src: h0, Dst: r0,
		SizeBits: math.Inf(1), RateBps: 1e7, Duration: simtime.Second,
	}
	sim.Load(traffic.Trace{d})
	col := mustRun(sim, simtime.Time(simtime.Minute))
	f := col.Flows()[0]
	if f.Completed || f.Outcome != "expired-waiting" {
		t.Errorf("outcome = %q, want expired-waiting", f.Outcome)
	}
	if f.SentBits != 0 {
		t.Errorf("waiting flow sent %g bits", f.SentBits)
	}
}

// TestRunNeverTerminatesWithStats: an open-ended Run must still terminate
// once traffic drains even with periodic sampling enabled.
func TestRunNeverTerminatesWithStats(t *testing.T) {
	topo := netgraph.Dumbbell(1, 1, netgraph.Gig, netgraph.TenGig)
	sim := New(Config{
		Topology: topo, Controller: proactiveMAC{}, Miss: dataplane.MissController,
		StatsEvery: 10 * simtime.Millisecond,
	})
	h0, r0 := topo.MustLookup("h0"), topo.MustLookup("r0")
	sim.Load(traffic.Trace{{
		Key: addr.FlowKeyBetween(h0, r0, header.ProtoUDP, 40000, 80),
		Src: h0, Dst: r0, SizeBits: 1e7, RateBps: 1e8,
	}})
	done := make(chan struct{})
	go func() {
		mustRun(sim, simtime.Never)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run(Never) did not terminate after traffic drained")
	}
}
