package flowsim

import (
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
	"horse/internal/stats"
)

// Engine is the simulator-side surface behind a Context. Both the
// flow-level engine and the packet-level engine implement it, so one
// Controller implementation drives either fidelity (and, through the
// hybrid coupler, both at once).
type Engine interface {
	// Now returns the current virtual time.
	Now() simtime.Time
	// Topology returns the simulated topology.
	Topology() *netgraph.Topology
	// Collector returns the engine's statistics collector.
	Collector() *stats.Collector
	// SendToSwitch delivers a controller→switch message to its datapath
	// after the engine's control latency.
	SendToSwitch(msg openflow.Message)
	// After schedules fn on the controller after d.
	After(d simtime.Duration, fn func())
}

// Context is the API a Controller uses to interact with the simulation. It
// deliberately exposes no data-plane internals beyond what a real
// controller could learn: the topology (assumed discovered), virtual time,
// message sending, and timers.
type Context struct {
	eng   Engine
	scope func(netgraph.NodeID) bool // nil = every switch is in scope
}

// NewContext wraps an engine for controller use. Engines call it
// internally; it is exported for engines living outside this package (the
// packet-level simulator).
func NewContext(eng Engine) *Context { return &Context{eng: eng} }

// NewScopedContext wraps an engine for one forked controller instance of a
// sharded run (see Forker): Send silently drops any message whose datapath
// is outside inScope, so component-blind loops (install defaults on every
// switch) fan out across instances without duplication — each instance's
// surviving sends cover exactly its own component.
func NewScopedContext(eng Engine, inScope func(netgraph.NodeID) bool) *Context {
	return &Context{eng: eng, scope: inScope}
}

// Now returns the current virtual time.
func (c *Context) Now() simtime.Time { return c.eng.Now() }

// Topology returns the network topology. Controllers treat it as
// discovered state (LLDP equivalent); link Up flags reflect what
// PortStatus messages have announced.
func (c *Context) Topology() *netgraph.Topology { return c.eng.Topology() }

// Send delivers a control message to its datapath after the configured
// control latency. A scoped context (NewScopedContext) drops messages to
// switches outside its component.
func (c *Context) Send(msg openflow.Message) {
	if c.scope != nil && !c.scope(msg.Datapath()) {
		return
	}
	c.eng.SendToSwitch(msg)
}

// After schedules fn to run on the controller after d.
func (c *Context) After(d simtime.Duration, fn func()) { c.eng.After(d, fn) }

// Collector exposes simulation statistics (read-only use) so monitoring
// apps can export what they observe alongside ground truth.
func (c *Context) Collector() *stats.Collector { return c.eng.Collector() }

// SendToSwitch implements Engine: the message applies at its datapath
// after the control latency. While the controller is detached the message
// is lost (the control channel is the thing that failed); messages
// already emitted before the break are in the network and still arrive.
func (s *Simulator) SendToSwitch(msg openflow.Message) {
	if s.fstate.ControllerDetached() {
		return
	}
	s.sched(event{
		at:   s.k.Now().Add(s.cfg.ControlLatency),
		kind: evToSwitch,
		msg:  msg,
	})
}

// After implements Engine: fn runs on the controller after d.
func (s *Simulator) After(d simtime.Duration, fn func()) {
	s.sched(event{at: s.k.Now().Add(d), kind: evTimer, fn: fn})
}

// SendToController delivers a switch-originated message to the controller
// after the control latency. It is exported so a co-resident packet
// engine (hybrid runs) can punt into the same control plane.
func (s *Simulator) SendToController(msg openflow.Message) { s.sendToController(msg) }

// sendToController delivers a switch-originated message after the control
// latency; a detached controller never sees it. The dispatch side drops
// (and pends, for PortStatus) messages caught in flight when the channel
// breaks — see evToController in dispatch.
func (s *Simulator) sendToController(msg openflow.Message) {
	if s.fstate.ControllerDetached() {
		s.fstate.NotePendingStatus(msg)
		return
	}
	s.sched(event{
		at:   s.k.Now().Add(s.cfg.ControlLatency),
		kind: evToController,
		msg:  msg,
	})
}

// handleToSwitch applies a controller message at its datapath.
func (s *Simulator) handleToSwitch(msg openflow.Message) {
	dp := msg.Datapath()
	sw := s.net.Switches[dp]
	if sw == nil {
		return // message to a non-switch: controller bug, dropped
	}
	if s.fstate.SwitchIsDown(dp) {
		// A crashed switch cannot apply anything; the message is lost,
		// so the restart genuinely comes back with empty tables.
		return
	}
	switch m := msg.(type) {
	case *openflow.FlowMod, *openflow.GroupMod:
		if err := sw.Apply(msg, s.k.Now()); err != nil {
			return
		}
		s.col.FlowMods++
		s.scheduleExpiry(dp)
		s.markSwitchDirty(dp)
		s.notifyApply(msg)
	case *openflow.MeterMod:
		if err := sw.Apply(msg, s.k.Now()); err != nil {
			return
		}
		s.col.FlowMods++
		// Update allocator capacity for the meter resource.
		r := meterResource(dp, m.MeterID)
		switch m.Op {
		case openflow.MeterAdd, openflow.MeterModify:
			s.alloc.SetCapacity(r, m.RateBps)
		case openflow.MeterDelete:
			// Flows re-resolve and drop the resource; in the interim the
			// meter no longer polices.
			s.alloc.SetCapacity(r, 1e18)
		}
		s.recomputeAndApply()
		s.markSwitchDirty(dp)
		s.notifyApply(msg)
	case *openflow.PacketOut:
		// The buffered first packet is released; the waiting flow retries
		// resolution (rules installed alongside typically complete it).
		for _, f := range s.waiting[dp] {
			if f.Key == m.Key {
				s.markDirty(f)
			}
		}
		s.notifyApply(msg)
	case *openflow.PortStatsRequest:
		s.sendToController(s.portStats(dp, m.Port))
	case *openflow.FlowStatsRequest:
		s.sendToController(sw.FlowStats(m, s.k.Now()))
	case *openflow.BarrierRequest:
		s.sendToController(&openflow.BarrierReply{Switch: dp, Xid: m.Xid})
	}
}

// notifyApply reports an applied controller message to the co-resident
// engine hook (hybrid runs).
func (s *Simulator) notifyApply(msg openflow.Message) {
	if s.cfg.OnApply != nil {
		s.cfg.OnApply(msg)
	}
}

// portStats builds a PortStatsReply from the resource ledgers.
func (s *Simulator) portStats(dp netgraph.NodeID, port netgraph.PortNum) *openflow.PortStatsReply {
	s.drainAlloc()
	reply := &openflow.PortStatsReply{Switch: dp, At: s.k.Now()}
	node := s.topo.Node(dp)
	ports := node.Ports()
	for _, p := range ports {
		if port != netgraph.NoPort && p != port {
			continue
		}
		l := s.topo.LinkAt(dp, p)
		if l == nil {
			continue
		}
		// Tx direction: from dp outward.
		txRes := linkResource(l.ID, l.A == dp)
		rxRes := linkResource(l.ID, l.B == dp)
		txL, rxL := s.ledgers[txRes], s.ledgers[rxRes]
		ps := openflow.PortStats{Port: p, LinkBps: l.BandwidthBps, Up: l.Up}
		if txL != nil {
			txL.settle(s.k.Now())
			ps.TxBits, ps.TxRateBps = txL.bits, txL.rate
		}
		if rxL != nil {
			rxL.settle(s.k.Now())
			ps.RxBits, ps.RxRateBps = rxL.bits, rxL.rate
		}
		reply.Stats = append(reply.Stats, ps)
	}
	return reply
}

// scheduleExpiry arms a timeout check for a switch at its earliest entry
// expiry, avoiding duplicate events for the same instant.
func (s *Simulator) scheduleExpiry(dp netgraph.NodeID) {
	next := s.net.Switches[dp].NextExpiry()
	if next == simtime.Never {
		return
	}
	if cur, ok := s.expiryAt[dp]; ok && cur <= next && cur >= s.k.Now() {
		return // an earlier (or equal) check is already scheduled
	}
	// The outstanding check (if any) is later than next: replace it
	// instead of stacking a second event beside it.
	if t, ok := s.expiryTimer[dp]; ok {
		s.k.Cancel(t)
	}
	s.expiryAt[dp] = next
	s.expiryTimer[dp] = s.schedTimer(event{at: next, kind: evExpiry, sw: dp})
}

// handleExpiry evicts expired entries on a switch, notifies the controller
// with FlowRemoved, re-resolves affected flows, and re-arms the timer.
func (s *Simulator) handleExpiry(dp netgraph.NodeID) {
	delete(s.expiryAt, dp)
	delete(s.expiryTimer, dp)
	sw := s.net.Switches[dp]
	if sw == nil {
		return
	}
	// Idle timers must see current usage: at flow granularity an entry's
	// LastUsed only advances when a flow settles, so settle every active
	// flow traversing this switch before judging expiry. (A real switch
	// updates the timestamp per packet; this is the flow-level analogue.)
	s.drainAlloc()
	for _, f := range s.flowsAt[dp] {
		if f.state == StateActive && f.rate > 0 {
			s.settleFlow(f)
		}
	}
	removed := sw.ExpireEntries(s.k.Now())
	for _, fr := range removed {
		s.sendToController(fr)
	}
	if len(removed) > 0 {
		s.markSwitchDirty(dp)
	}
	s.scheduleExpiry(dp)
}
