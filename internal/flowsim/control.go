package flowsim

import (
	"horse/internal/dataplane"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/openflow"
	"horse/internal/simtime"
	"horse/internal/stats"
)

// Context is the API a Controller uses to interact with the simulation. It
// deliberately exposes no data-plane internals beyond what a real
// controller could learn: the topology (assumed discovered), virtual time,
// message sending, and timers.
type Context struct {
	sim *Simulator
}

// Now returns the current virtual time.
func (c *Context) Now() simtime.Time { return c.sim.now }

// Topology returns the network topology. Controllers treat it as
// discovered state (LLDP equivalent); link Up flags reflect what
// PortStatus messages have announced.
func (c *Context) Topology() *netgraph.Topology { return c.sim.topo }

// Send delivers a control message to its datapath after the configured
// control latency.
func (c *Context) Send(msg openflow.Message) {
	c.sim.q.Push(&event{
		at:   c.sim.now.Add(c.sim.cfg.ControlLatency),
		kind: evToSwitch,
		msg:  msg,
	})
}

// After schedules fn to run on the controller after d.
func (c *Context) After(d simtime.Duration, fn func()) {
	c.sim.q.Push(&event{at: c.sim.now.Add(d), kind: evTimer, fn: fn})
}

// Collector exposes simulation statistics (read-only use) so monitoring
// apps can export what they observe alongside ground truth.
func (c *Context) Collector() *stats.Collector { return c.sim.col }

// sendToController delivers a switch-originated message after the control
// latency.
func (s *Simulator) sendToController(msg openflow.Message) {
	s.q.Push(&event{
		at:   s.now.Add(s.cfg.ControlLatency),
		kind: evToController,
		msg:  msg,
	})
}

// handleToSwitch applies a controller message at its datapath.
func (s *Simulator) handleToSwitch(msg openflow.Message) {
	dp := msg.Datapath()
	sw := s.net.Switches[dp]
	if sw == nil {
		return // message to a non-switch: controller bug, dropped
	}
	switch m := msg.(type) {
	case *openflow.FlowMod, *openflow.GroupMod:
		if err := sw.Apply(msg, s.now); err != nil {
			return
		}
		s.col.FlowMods++
		s.scheduleExpiry(dp)
		s.markSwitchDirty(dp)
	case *openflow.MeterMod:
		if err := sw.Apply(msg, s.now); err != nil {
			return
		}
		s.col.FlowMods++
		// Update allocator capacity for the meter resource.
		r := meterResource(dp, m.MeterID)
		switch m.Op {
		case openflow.MeterAdd, openflow.MeterModify:
			s.alloc.SetCapacity(r, m.RateBps)
		case openflow.MeterDelete:
			// Flows re-resolve and drop the resource; in the interim the
			// meter no longer polices.
			s.alloc.SetCapacity(r, 1e18)
		}
		s.recomputeAndApply()
		s.markSwitchDirty(dp)
	case *openflow.PacketOut:
		// The buffered first packet is released; the waiting flow retries
		// resolution (rules installed alongside typically complete it).
		for _, f := range s.waiting[dp] {
			if f.Key == m.Key {
				s.markDirty(f)
			}
		}
	case *openflow.PortStatsRequest:
		s.sendToController(s.portStats(dp, m.Port))
	case *openflow.FlowStatsRequest:
		s.sendToController(s.flowStats(sw, m))
	case *openflow.BarrierRequest:
		s.sendToController(&openflow.BarrierReply{Switch: dp, Xid: m.Xid})
	}
}

// portStats builds a PortStatsReply from the resource ledgers.
func (s *Simulator) portStats(dp netgraph.NodeID, port netgraph.PortNum) *openflow.PortStatsReply {
	s.drainAlloc()
	reply := &openflow.PortStatsReply{Switch: dp, At: s.now}
	node := s.topo.Node(dp)
	ports := node.Ports()
	for _, p := range ports {
		if port != netgraph.NoPort && p != port {
			continue
		}
		l := s.topo.LinkAt(dp, p)
		if l == nil {
			continue
		}
		// Tx direction: from dp outward.
		txRes := linkResource(l.ID, l.A == dp)
		rxRes := linkResource(l.ID, l.B == dp)
		txL, rxL := s.ledgers[txRes], s.ledgers[rxRes]
		ps := openflow.PortStats{Port: p, LinkBps: l.BandwidthBps, Up: l.Up}
		if txL != nil {
			txL.settle(s.now)
			ps.TxBits, ps.TxRateBps = txL.bits, txL.rate
		}
		if rxL != nil {
			rxL.settle(s.now)
			ps.RxBits, ps.RxRateBps = rxL.bits, rxL.rate
		}
		reply.Stats = append(reply.Stats, ps)
	}
	return reply
}

// flowStats builds a FlowStatsReply by filtering the switch's table
// entries with the request match (zero match selects all).
func (s *Simulator) flowStats(sw *dataplane.Switch, req *openflow.FlowStatsRequest) *openflow.FlowStatsReply {
	reply := &openflow.FlowStatsReply{Switch: req.Switch, At: s.now}
	tables := []openflow.TableID{req.Table}
	if req.Table == 0 && req.Match == (header.Match{}) {
		tables = nil
		for i := 0; i < dataplane.NumTables; i++ {
			tables = append(tables, openflow.TableID(i))
		}
	}
	for _, tid := range tables {
		for _, e := range sw.Tables[tid].Entries() {
			if req.Match != (header.Match{}) && !req.Match.Subsumes(e.Match) {
				continue
			}
			reply.Stats = append(reply.Stats, openflow.FlowStats{
				Table:    tid,
				Priority: e.Priority,
				Match:    e.Match,
				Cookie:   e.Cookie,
				Packets:  e.Packets,
				Bytes:    e.Bytes,
				Duration: s.now.Sub(e.Installed),
			})
		}
	}
	return reply
}

// scheduleExpiry arms a timeout check for a switch at its earliest entry
// expiry, avoiding duplicate events for the same instant.
func (s *Simulator) scheduleExpiry(dp netgraph.NodeID) {
	sw := s.net.Switches[dp]
	next := simtime.Never
	for _, t := range sw.Tables {
		if x := t.NextExpiry(); x < next {
			next = x
		}
	}
	if next == simtime.Never {
		return
	}
	if cur, ok := s.expiryAt[dp]; ok && cur <= next && cur >= s.now {
		return // an earlier (or equal) check is already scheduled
	}
	s.expiryAt[dp] = next
	s.q.Push(&event{at: next, kind: evExpiry, sw: dp})
}

// handleExpiry evicts expired entries on a switch, notifies the controller
// with FlowRemoved, re-resolves affected flows, and re-arms the timer.
func (s *Simulator) handleExpiry(dp netgraph.NodeID) {
	delete(s.expiryAt, dp)
	sw := s.net.Switches[dp]
	if sw == nil {
		return
	}
	// Idle timers must see current usage: at flow granularity an entry's
	// LastUsed only advances when a flow settles, so settle every active
	// flow traversing this switch before judging expiry. (A real switch
	// updates the timestamp per packet; this is the flow-level analogue.)
	s.drainAlloc()
	for _, f := range s.flowsAt[dp] {
		if f.state == StateActive && f.rate > 0 {
			s.settleFlow(f)
		}
	}
	removedAny := false
	for tid, t := range sw.Tables {
		for _, e := range t.Expire(s.now) {
			removedAny = true
			idle := e.IdleTimeout > 0 && s.now >= e.LastUsed.Add(e.IdleTimeout)
			s.sendToController(&openflow.FlowRemoved{
				Switch: dp, Table: openflow.TableID(tid),
				Match: e.Match, Priority: e.Priority, Cookie: e.Cookie,
				Packets: e.Packets, Bytes: e.Bytes, Idle: idle,
			})
		}
	}
	if removedAny {
		s.markSwitchDirty(dp)
	}
	s.scheduleExpiry(dp)
}
