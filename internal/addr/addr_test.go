package addr

import (
	"testing"
	"testing/quick"

	"horse/internal/header"
	"horse/internal/netgraph"
)

func TestMACRoundTrip(t *testing.T) {
	for _, id := range []netgraph.NodeID{0, 1, 42, 1 << 20} {
		if got := HostOfMAC(HostMAC(id)); got != id {
			t.Errorf("HostOfMAC(HostMAC(%d)) = %d", id, got)
		}
	}
	if HostOfMAC(header.MAC{}) != -1 {
		t.Error("zero MAC should be outside the plan")
	}
}

func TestIPRoundTrip(t *testing.T) {
	for _, id := range []netgraph.NodeID{0, 7, 65535, 1 << 23} {
		if got := HostOfIP(HostIP(id)); got != id {
			t.Errorf("HostOfIP(HostIP(%d)) = %d", id, got)
		}
	}
	outside, _ := header.ParseIPv4("192.168.0.1")
	if HostOfIP(outside) != -1 {
		t.Error("non-10/8 address should be outside the plan")
	}
}

func TestFlowKeyBetween(t *testing.T) {
	k := FlowKeyBetween(3, 9, header.ProtoTCP, 1234, 80)
	if k.EthSrc != HostMAC(3) || k.EthDst != HostMAC(9) {
		t.Error("MACs wrong")
	}
	if k.IPSrc != HostIP(3) || k.IPDst != HostIP(9) {
		t.Error("IPs wrong")
	}
	if k.EthType != header.EthTypeIPv4 || k.Proto != header.ProtoTCP || k.DstPort != 80 {
		t.Error("L3/L4 fields wrong")
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(raw uint32) bool {
		id := netgraph.NodeID(raw & 0x007fffff)
		return HostOfMAC(HostMAC(id)) == id && HostOfIP(HostIP(id)) == id
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
