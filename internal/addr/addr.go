// Package addr defines the deterministic addressing plan Horse uses for
// synthetic hosts: host n (by topology node ID) owns MAC n+1 and IPv4
// 10.n₂.n₁.n₀. Every layer — traffic generation, controller applications,
// statistics — derives addresses from the same plan, so a MAC seen in a
// PacketIn can be mapped back to its host without a discovery protocol.
package addr

import (
	"horse/internal/header"
	"horse/internal/netgraph"
)

// HostMAC returns the MAC address of a host node.
func HostMAC(id netgraph.NodeID) header.MAC {
	return header.MACFromUint64(uint64(id) + 1)
}

// HostIP returns the IPv4 address of a host node (10.0.0.0/8 plan).
func HostIP(id netgraph.NodeID) header.IPv4 {
	return header.IPv4FromUint32(0x0a000000 | uint32(id)&0x00ffffff)
}

// HostOfMAC inverts HostMAC, returning -1 for addresses outside the plan.
func HostOfMAC(m header.MAC) netgraph.NodeID {
	v := m.Uint64()
	if v == 0 || v > 1<<31 {
		return -1
	}
	return netgraph.NodeID(v - 1)
}

// HostOfIP inverts HostIP, returning -1 for addresses outside 10.0.0.0/8.
func HostOfIP(ip header.IPv4) netgraph.NodeID {
	v := ip.Uint32()
	if v>>24 != 0x0a {
		return -1
	}
	return netgraph.NodeID(v & 0x00ffffff)
}

// FlowKeyBetween builds the canonical 5-tuple-complete flow key for traffic
// from host src to host dst on the given protocol and ports.
func FlowKeyBetween(src, dst netgraph.NodeID, proto uint8, srcPort, dstPort uint16) header.FlowKey {
	return header.FlowKey{
		EthSrc:  HostMAC(src),
		EthDst:  HostMAC(dst),
		EthType: header.EthTypeIPv4,
		IPSrc:   HostIP(src),
		IPDst:   HostIP(dst),
		Proto:   proto,
		SrcPort: srcPort,
		DstPort: dstPort,
	}
}
