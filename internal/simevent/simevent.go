// Package simevent defines the observation surface shared by every Horse
// engine: the typed occurrences a running simulation reports to Observe
// hooks (applied topology and control-plane dynamics) and the progress
// reports a run lifecycle emits. It is a leaf package — engines, the
// scenario compiler, and the public façade all reference these types, so
// they live below all of them.
package simevent

import (
	"fmt"

	"horse/internal/netgraph"
	"horse/internal/simcore"
	"horse/internal/simtime"
)

// Kind discriminates observations.
type Kind uint8

// Observation kinds.
const (
	// LinkChange reports an applied link state flip (Up tells which way).
	LinkChange Kind = iota
	// SwitchChange reports an applied switch crash or restart.
	SwitchChange
	// ControllerChange reports the control channel detaching (Up=false)
	// or reattaching (Up=true).
	ControllerChange
	// LinkDegrade reports an applied link-model change: a degrade
	// installs a model (Up=false), a restore clears it (Up=true).
	LinkDegrade
)

func (k Kind) String() string {
	switch k {
	case LinkChange:
		return "link-change"
	case SwitchChange:
		return "switch-change"
	case ControllerChange:
		return "controller-change"
	case LinkDegrade:
		return "link-degrade"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Observation is one applied network-dynamics occurrence, delivered to
// every registered Observer at the virtual instant it took effect. Only
// real state flips are reported: a scripted "recovery" swallowed by a
// nested outage never observes.
type Observation struct {
	At   simtime.Time
	Kind Kind
	// Link is the subject of LinkChange observations.
	Link netgraph.LinkID
	// Switch is the subject of SwitchChange observations.
	Switch netgraph.NodeID
	// Up is the new state: link/switch up, or controller attached.
	Up bool
}

func (o Observation) String() string {
	switch o.Kind {
	case LinkChange:
		return fmt.Sprintf("%v link %d up=%v", o.At, o.Link, o.Up)
	case LinkDegrade:
		return fmt.Sprintf("%v link %d restored=%v", o.At, o.Link, o.Up)
	case SwitchChange:
		return fmt.Sprintf("%v switch %d up=%v", o.At, o.Switch, o.Up)
	default:
		return fmt.Sprintf("%v controller attached=%v", o.At, o.Up)
	}
}

// Observer receives observations. Observers run synchronously on the
// simulation goroutine (the coordinator, in sharded runs): they may read
// engine state but must not mutate it or block.
type Observer func(Observation)

// Observers is an ordered multiplexer of observers. The zero value is
// empty and ready to use.
type Observers struct {
	fns []Observer
}

// Add registers an observer (nil is ignored). Registration order is
// notification order.
func (o *Observers) Add(fn Observer) {
	if fn != nil {
		o.fns = append(o.fns, fn)
	}
}

// Notify delivers obs to every registered observer.
func (o *Observers) Notify(obs Observation) {
	for _, fn := range o.fns {
		fn(obs)
	}
}

// Empty reports whether no observer is registered.
func (o *Observers) Empty() bool { return len(o.fns) == 0 }

// Progress is one progress report of a running engine, emitted from the
// kernel's pre-advance path (so all work at the reported instant has
// settled) or, in sharded runs, at window barriers.
type Progress struct {
	// Now is the virtual time reached.
	Now simtime.Time
	// Events is the number of kernel events dispatched so far, across
	// every kernel the engine drives.
	Events uint64
}

// ProgressFunc receives progress reports. Like Observers, it runs on the
// simulation goroutine and must not mutate engine state or block.
type ProgressFunc func(Progress)

// ArmProgress registers a progress reporter on a kernel's pre-advance
// path: fn receives a Progress at most once per `every` of virtual time
// (the first report after the first period), with Events read from the
// kernel's dispatch counter. It is the one serial-path implementation
// behind every engine's SetProgress; no-op when every or fn is unset.
// Arm before the run.
func ArmProgress(k *simcore.Kernel, every simtime.Duration, fn ProgressFunc) {
	if every <= 0 || fn == nil {
		return
	}
	next := simtime.Time(every)
	k.AddPreAdvance(
		func() bool { return k.Now() >= next },
		func() {
			fn(Progress{Now: k.Now(), Events: k.Dispatched()})
			next = k.Now().Add(every)
		},
	)
}
