package fairshare

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff < 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleFlowDemandLimited(t *testing.T) {
	a := New()
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, 3e8, []ResourceID{1})
	a.RecomputeAll()
	if !almost(a.Rate(1), 3e8) {
		t.Errorf("rate = %g, want demand 3e8", a.Rate(1))
	}
}

func TestSingleFlowCapacityLimited(t *testing.T) {
	a := New()
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, Unlimited, []ResourceID{1})
	a.RecomputeAll()
	if !almost(a.Rate(1), 1e9) {
		t.Errorf("rate = %g, want capacity 1e9", a.Rate(1))
	}
}

func TestEqualSharing(t *testing.T) {
	a := New()
	a.SetCapacity(1, 9e8)
	for i := FlowID(1); i <= 3; i++ {
		a.AddFlow(i, Unlimited, []ResourceID{1})
	}
	a.RecomputeAll()
	for i := FlowID(1); i <= 3; i++ {
		if !almost(a.Rate(i), 3e8) {
			t.Errorf("flow %d rate = %g, want 3e8", i, a.Rate(i))
		}
	}
}

func TestMaxMinClassic(t *testing.T) {
	// Classic example: flows A,B on link1 (cap 1); B,C on link2 (cap 2).
	// Max-min: A=0.5, B=0.5, C=1.5.
	a := New()
	a.SetCapacity(1, 1)
	a.SetCapacity(2, 2)
	a.AddFlow(1, Unlimited, []ResourceID{1})    // A
	a.AddFlow(2, Unlimited, []ResourceID{1, 2}) // B
	a.AddFlow(3, Unlimited, []ResourceID{2})    // C
	a.RecomputeAll()
	if !almost(a.Rate(1), 0.5) || !almost(a.Rate(2), 0.5) || !almost(a.Rate(3), 1.5) {
		t.Errorf("rates = %g,%g,%g want 0.5,0.5,1.5", a.Rate(1), a.Rate(2), a.Rate(3))
	}
}

func TestDemandFreesShare(t *testing.T) {
	// One small demand flow leaves headroom for the greedy one.
	a := New()
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, 1e8, []ResourceID{1})
	a.AddFlow(2, Unlimited, []ResourceID{1})
	a.RecomputeAll()
	if !almost(a.Rate(1), 1e8) {
		t.Errorf("small flow rate = %g, want its demand", a.Rate(1))
	}
	if !almost(a.Rate(2), 9e8) {
		t.Errorf("greedy flow rate = %g, want the rest (9e8)", a.Rate(2))
	}
}

func TestZeroCapacityStarves(t *testing.T) {
	a := New()
	a.SetCapacity(1, 0)
	a.AddFlow(1, Unlimited, []ResourceID{1})
	a.AddFlow(2, 100, []ResourceID{1})
	a.RecomputeAll()
	if a.Rate(1) != 0 || a.Rate(2) != 0 {
		t.Errorf("rates = %g,%g, want 0,0 on a dead link", a.Rate(1), a.Rate(2))
	}
}

func TestZeroDemandFlow(t *testing.T) {
	a := New()
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, 0, []ResourceID{1})
	a.AddFlow(2, Unlimited, []ResourceID{1})
	a.RecomputeAll()
	if a.Rate(1) != 0 {
		t.Errorf("zero-demand flow got rate %g", a.Rate(1))
	}
	if !almost(a.Rate(2), 1e9) {
		t.Errorf("other flow rate = %g, want full capacity", a.Rate(2))
	}
}

func TestFlowWithNoResources(t *testing.T) {
	a := New()
	a.AddFlow(1, 5e8, nil)
	a.RecomputeAll()
	if !almost(a.Rate(1), 5e8) {
		t.Errorf("resource-free flow rate = %g, want demand", a.Rate(1))
	}
}

func TestRemoveFlowRedistributes(t *testing.T) {
	a := New()
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, Unlimited, []ResourceID{1})
	a.AddFlow(2, Unlimited, []ResourceID{1})
	a.RecomputeAll()
	if !almost(a.Rate(1), 5e8) {
		t.Fatalf("initial share = %g", a.Rate(1))
	}
	a.RemoveFlow(2)
	changed := a.Recompute()
	if !almost(a.Rate(1), 1e9) {
		t.Errorf("after removal rate = %g, want 1e9", a.Rate(1))
	}
	if len(changed) != 1 || changed[0].ID != 1 {
		t.Errorf("changed = %v, want flow 1 only", changed)
	}
}

func TestMeterAsExtraResource(t *testing.T) {
	// A meter is just another resource on the flow's path: a 5e8 meter on
	// a 1e9 link caps the flow at 5e8.
	a := New()
	a.SetCapacity(1, 1e9)   // link
	a.SetCapacity(100, 5e8) // meter
	a.AddFlow(1, Unlimited, []ResourceID{1, 100})
	a.AddFlow(2, Unlimited, []ResourceID{1})
	a.RecomputeAll()
	if !almost(a.Rate(1), 5e8) {
		t.Errorf("metered flow = %g, want 5e8", a.Rate(1))
	}
	if !almost(a.Rate(2), 5e8) {
		t.Errorf("unmetered flow = %g, want leftover 5e8", a.Rate(2))
	}
}

func TestSetDemandTriggersDirty(t *testing.T) {
	a := New()
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, 1e8, []ResourceID{1})
	a.RecomputeAll()
	a.SetDemand(1, 2e8)
	changed := a.Recompute()
	if len(changed) != 1 || !almost(a.Rate(1), 2e8) {
		t.Errorf("demand change not applied: rate=%g changed=%v", a.Rate(1), changed)
	}
	// No-op demand change must not dirty anything.
	a.SetDemand(1, 2e8)
	if got := a.Recompute(); got != nil {
		t.Errorf("no-op SetDemand caused recompute: %v", got)
	}
}

func TestEpsilonSuppression(t *testing.T) {
	a := New()
	a.Epsilon = 0.05
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, Unlimited, []ResourceID{1})
	a.RecomputeAll()
	// Adding a tiny-demand flow changes flow 1's rate by < epsilon.
	a.AddFlow(2, 1e6, []ResourceID{1}) // 0.1% of capacity
	changed := a.Recompute()
	for _, c := range changed {
		if c.ID == 1 {
			t.Errorf("sub-epsilon change reported: %+v", c)
		}
	}
	// But the rate itself is still updated.
	if !almost(a.Rate(1), 1e9-1e6) {
		t.Errorf("rate = %g, want 9.99e8", a.Rate(1))
	}
}

func TestIncrementalMatchesFull(t *testing.T) {
	// Build a random sharing structure, mutate it step by step, and check
	// Recompute (incremental) tracks RecomputeAll (reference) exactly.
	rng := rand.New(rand.NewSource(11))
	inc := New()
	ref := New()
	inc.Epsilon, ref.Epsilon = 0, 0
	const nRes = 20
	for r := ResourceID(0); r < nRes; r++ {
		cap := float64(rng.Intn(10)+1) * 1e8
		inc.SetCapacity(r, cap)
		ref.SetCapacity(r, cap)
	}
	nextID := FlowID(0)
	live := map[FlowID][]ResourceID{}
	for step := 0; step < 300; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			k := rng.Intn(3) + 1
			var rs []ResourceID
			seen := map[ResourceID]bool{}
			for len(rs) < k {
				r := ResourceID(rng.Intn(nRes))
				if !seen[r] {
					seen[r] = true
					rs = append(rs, r)
				}
			}
			demand := Unlimited
			if rng.Float64() < 0.3 {
				demand = float64(rng.Intn(5)+1) * 1e7
			}
			inc.AddFlow(nextID, demand, rs)
			ref.AddFlow(nextID, demand, rs)
			live[nextID] = rs
			nextID++
		} else {
			var victim FlowID = -1
			for id := range live {
				victim = id
				break
			}
			inc.RemoveFlow(victim)
			ref.RemoveFlow(victim)
			delete(live, victim)
		}
		inc.Recompute()
		ref.RecomputeAll()
		for id := range live {
			if !almost(inc.Rate(id), ref.Rate(id)) {
				t.Fatalf("step %d: flow %d incremental=%g full=%g", step, id, inc.Rate(id), ref.Rate(id))
			}
		}
	}
	if inc.ComponentSolves == 0 {
		t.Error("incremental path never exercised")
	}
}

// Property: allocations never exceed capacity on any resource and never
// exceed demand on any flow.
func TestFeasibilityProperty(t *testing.T) {
	prop := func(caps [5]uint32, routes [12]uint8, demands [12]uint32) bool {
		a := New()
		for r := ResourceID(0); r < 5; r++ {
			a.SetCapacity(r, float64(caps[r]%1000)+1)
		}
		for i := 0; i < 12; i++ {
			r1 := ResourceID(routes[i] % 5)
			r2 := ResourceID((routes[i] / 5) % 5)
			rs := []ResourceID{r1}
			if r2 != r1 {
				rs = append(rs, r2)
			}
			d := float64(demands[i]%2000) + 1
			a.AddFlow(FlowID(i), d, rs)
		}
		a.RecomputeAll()
		for r := ResourceID(0); r < 5; r++ {
			if a.ResourceUsage(r) > a.Capacity(r)*(1+1e-6)+1e-6 {
				return false
			}
		}
		for i := 0; i < 12; i++ {
			if a.Rate(FlowID(i)) > a.Demand(FlowID(i))*(1+1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (max-min defining property, weak form): no flow can be starved
// while another flow on the same bottleneck holds more than its share: for
// any two unlimited flows sharing identical resource sets, rates are equal.
func TestSymmetryProperty(t *testing.T) {
	prop := func(caps [4]uint32, route uint8) bool {
		a := New()
		for r := ResourceID(0); r < 4; r++ {
			a.SetCapacity(r, float64(caps[r]%1000)+1)
		}
		rs := []ResourceID{ResourceID(route % 4), ResourceID((route / 4) % 4)}
		if rs[0] == rs[1] {
			rs = rs[:1]
		}
		a.AddFlow(1, Unlimited, rs)
		a.AddFlow(2, Unlimited, rs)
		a.RecomputeAll()
		return almost(a.Rate(1), a.Rate(2))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: work conservation — every unlimited flow is bottlenecked by at
// least one saturated resource.
func TestWorkConservationProperty(t *testing.T) {
	prop := func(caps [4]uint32, routes [6]uint8) bool {
		a := New()
		for r := ResourceID(0); r < 4; r++ {
			a.SetCapacity(r, float64(caps[r]%1000)+1)
		}
		for i := 0; i < 6; i++ {
			a.AddFlow(FlowID(i), Unlimited, []ResourceID{ResourceID(routes[i] % 4)})
		}
		a.RecomputeAll()
		for i := 0; i < 6; i++ {
			r := ResourceID(routes[i] % 4)
			if !almost(a.ResourceUsage(r), a.Capacity(r)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddFlowReplacesExisting(t *testing.T) {
	a := New()
	a.SetCapacity(1, 1e9)
	a.SetCapacity(2, 1e9)
	a.AddFlow(1, Unlimited, []ResourceID{1})
	a.AddFlow(1, Unlimited, []ResourceID{2}) // re-add on a different route
	a.RecomputeAll()
	if a.NumFlows() != 1 {
		t.Fatalf("NumFlows = %d, want 1", a.NumFlows())
	}
	if got := a.ResourceUsage(1); got != 0 {
		t.Errorf("old route still carries %g", got)
	}
	if !almost(a.ResourceUsage(2), 1e9) {
		t.Errorf("new route carries %g", a.ResourceUsage(2))
	}
}

func TestCapacityChangePropagates(t *testing.T) {
	a := New()
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, Unlimited, []ResourceID{1})
	a.RecomputeAll()
	a.SetCapacity(1, 2e9)
	a.Recompute()
	if !almost(a.Rate(1), 2e9) {
		t.Errorf("rate = %g after capacity increase, want 2e9", a.Rate(1))
	}
}

func BenchmarkFairshareFull1000Flows(b *testing.B) {
	a := setupBench(1000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RecomputeAll()
	}
}

func BenchmarkFairshareIncremental1000Flows(b *testing.B) {
	a := setupBench(1000, 100)
	a.RecomputeAll()
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := FlowID(i + 1000000)
		a.AddFlow(id, Unlimited, []ResourceID{ResourceID(rng.Intn(100))})
		a.Recompute()
		a.RemoveFlow(id)
		a.Recompute()
	}
}

// BenchmarkFairshareIslands exercises the incremental path where it should
// shine: 64 disjoint 16-flow islands, churn confined to one island per
// event, so each Recompute touches ~1/64 of the flows.
func BenchmarkFairshareIslands(b *testing.B) {
	const islands, flowsPer = 64, 16
	a := New()
	for i := 0; i < islands; i++ {
		a.SetCapacity(ResourceID(i), 1e9)
		for j := 0; j < flowsPer; j++ {
			a.AddFlow(FlowID(i*flowsPer+j), Unlimited, []ResourceID{ResourceID(i)})
		}
	}
	a.RecomputeAll()
	rng := rand.New(rand.NewSource(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		island := ResourceID(rng.Intn(islands))
		id := FlowID(1000000 + i)
		a.AddFlow(id, Unlimited, []ResourceID{island})
		a.Recompute()
		a.RemoveFlow(id)
		a.Recompute()
	}
}

// BenchmarkFairshareChurn measures the mutation API itself (add/remove
// without solving): slot reuse must keep it allocation-light.
func BenchmarkFairshareChurn(b *testing.B) {
	a := setupBench(1000, 100)
	a.RecomputeAll()
	rng := rand.New(rand.NewSource(9))
	route := make([]ResourceID, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range route {
			route[j] = ResourceID(rng.Intn(100))
		}
		id := FlowID(2000000 + i)
		a.AddFlow(id, Unlimited, route)
		a.RemoveFlow(id)
	}
}

func setupBench(flows, resources int) *Allocator {
	a := New()
	rng := rand.New(rand.NewSource(17))
	for r := 0; r < resources; r++ {
		a.SetCapacity(ResourceID(r), 1e9)
	}
	for f := 0; f < flows; f++ {
		rs := []ResourceID{
			ResourceID(rng.Intn(resources)),
			ResourceID(rng.Intn(resources)),
			ResourceID(rng.Intn(resources)),
		}
		a.AddFlow(FlowID(f), Unlimited, rs)
	}
	return a
}
