package fairshare

// The flat-array Allocator is property-tested here against an independent
// map-based max–min solver: the naive progressive-filling textbook
// algorithm over map[FlowID]/map[ResourceID] state, written for obvious
// correctness rather than speed. Any divergence on a randomized sharing
// graph is a solver bug, not a tolerance artifact.

import (
	"math"
	"math/rand"
	"testing"
)

// refFlow and refNet are the reference solver's state: plain maps, no
// index compaction, no incremental machinery.
type refFlow struct {
	demand float64
	routes []ResourceID
}

type refNet struct {
	caps  map[ResourceID]float64
	flows map[FlowID]*refFlow
}

func newRefNet() *refNet {
	return &refNet{caps: map[ResourceID]float64{}, flows: map[FlowID]*refFlow{}}
}

// solve runs textbook progressive filling: repeatedly find the bottleneck
// resource (minimum fair share among unfrozen flows), freeze its flows at
// that share, and recurse until every flow is frozen by a resource or by
// its demand.
func (n *refNet) solve() map[FlowID]float64 {
	rate := map[FlowID]float64{}
	frozen := map[FlowID]bool{}
	remaining := map[ResourceID]float64{}
	for r, c := range n.caps {
		remaining[r] = c
	}
	for {
		// Fair share each resource could still grant its unfrozen flows.
		best := math.Inf(1)
		haveRes := false
		for r := range n.caps {
			active := 0
			for id, f := range n.flows {
				if !frozen[id] && f.demand > 0 && contains(f.routes, r) {
					active++
				}
			}
			if active == 0 {
				continue
			}
			haveRes = true
			if s := remaining[r] / float64(active); s < best {
				best = s
			}
		}
		// Demand-limited flows below the bottleneck share freeze first.
		minDemand := math.Inf(1)
		for id, f := range n.flows {
			if !frozen[id] && f.demand > 0 && len(f.routes) > 0 && f.demand < minDemand {
				minDemand = f.demand
			}
		}
		if !haveRes {
			break
		}
		if minDemand < best {
			// Freeze every flow at exactly its demand ≤ minDemand... but
			// progressive filling freezes the single smallest demand tier,
			// then re-evaluates. Charge the frozen flow to its resources.
			for id, f := range n.flows {
				if frozen[id] || f.demand > minDemand || f.demand <= 0 || len(f.routes) == 0 {
					continue
				}
				frozen[id] = true
				rate[id] = f.demand
				for _, r := range f.routes {
					remaining[r] -= f.demand
				}
			}
			continue
		}
		// Freeze the flows of every resource at the bottleneck share.
		for r := range n.caps {
			active := 0
			for id, f := range n.flows {
				if !frozen[id] && f.demand > 0 && contains(f.routes, r) {
					active++
				}
			}
			if active == 0 {
				continue
			}
			if share := remaining[r] / float64(active); share <= best*(1+1e-12)+1e-15 {
				for id, f := range n.flows {
					if !frozen[id] && f.demand > 0 && contains(f.routes, r) {
						frozen[id] = true
						rate[id] = math.Min(best, f.demand)
						for _, r2 := range f.routes {
							remaining[r2] -= rate[id]
						}
					}
				}
			}
		}
	}
	for id, f := range n.flows {
		if !frozen[id] {
			rate[id] = 0
			if len(f.routes) == 0 {
				rate[id] = f.demand
			}
		}
	}
	return rate
}

func contains(rs []ResourceID, r ResourceID) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// refClose uses a looser tolerance than almost(): the reference freezes
// whole resources at once and accumulates float error differently.
func refClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff < 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestFlatMatchesReference drives both solvers through randomized sharing
// graphs — random capacities, routes, demand mixes, arrivals, departures,
// capacity changes — and demands identical rates after every step, for
// both RecomputeAll and incremental Recompute.
func TestFlatMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nRes := rng.Intn(12) + 3
		full := New()
		inc := New()
		full.Epsilon, inc.Epsilon = 0, 0
		ref := newRefNet()
		for r := ResourceID(0); r < ResourceID(nRes); r++ {
			c := float64(rng.Intn(1000)+1) * 1e6
			full.SetCapacity(r, c)
			inc.SetCapacity(r, c)
			ref.caps[r] = c
		}
		nextID := FlowID(0)
		for step := 0; step < 120; step++ {
			switch op := rng.Float64(); {
			case op < 0.55 || len(ref.flows) == 0:
				k := rng.Intn(min(4, nRes)) + 1
				var rs []ResourceID
				for len(rs) < k {
					r := ResourceID(rng.Intn(nRes))
					if !contains(rs, r) {
						rs = append(rs, r)
					}
				}
				demand := Unlimited
				if rng.Float64() < 0.4 {
					demand = float64(rng.Intn(500)+1) * 1e6
				}
				full.AddFlow(nextID, demand, rs)
				inc.AddFlow(nextID, demand, rs)
				ref.flows[nextID] = &refFlow{demand: demand, routes: rs}
				nextID++
			case op < 0.8:
				victim := pickFlow(rng, ref)
				full.RemoveFlow(victim)
				inc.RemoveFlow(victim)
				delete(ref.flows, victim)
			default:
				r := ResourceID(rng.Intn(nRes))
				c := float64(rng.Intn(1000)+1) * 1e6
				full.SetCapacity(r, c)
				inc.SetCapacity(r, c)
				ref.caps[r] = c
			}
			full.RecomputeAll()
			inc.Recompute()
			want := ref.solve()
			for id := range ref.flows {
				if !refClose(full.Rate(id), want[id]) {
					t.Fatalf("seed %d step %d: flat full solver flow %d = %g, reference = %g",
						seed, step, id, full.Rate(id), want[id])
				}
				if !refClose(inc.Rate(id), want[id]) {
					t.Fatalf("seed %d step %d: flat incremental solver flow %d = %g, reference = %g",
						seed, step, id, inc.Rate(id), want[id])
				}
			}
		}
	}
}

// pickFlow selects a deterministic victim given the rng: the k-th smallest
// live ID, so the test does not depend on map iteration order.
func pickFlow(rng *rand.Rand, ref *refNet) FlowID {
	min, max := FlowID(math.MaxInt64), FlowID(-1)
	for id := range ref.flows {
		if id < min {
			min = id
		}
		if id > max {
			max = id
		}
	}
	target := min + FlowID(rng.Int63n(int64(max-min+1)))
	// Walk up from target to the nearest live ID.
	for id := target; ; id++ {
		if _, ok := ref.flows[id]; ok {
			return id
		}
		if id > max {
			return min
		}
	}
}

// TestFlatSlotReuse verifies that heavy add/remove churn (exercising the
// free list and swap-removal) never corrupts adjacency: after churn, a
// final solve must match the reference.
func TestFlatSlotReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := New()
	a.Epsilon = 0
	ref := newRefNet()
	const nRes = 8
	for r := ResourceID(0); r < nRes; r++ {
		a.SetCapacity(r, 1e9)
		ref.caps[r] = 1e9
	}
	live := map[FlowID]bool{}
	for i := 0; i < 2000; i++ {
		id := FlowID(rng.Intn(200)) // small ID space forces constant reuse
		if live[id] {
			a.RemoveFlow(id)
			delete(ref.flows, id)
			delete(live, id)
		} else {
			rs := []ResourceID{ResourceID(rng.Intn(nRes)), ResourceID(rng.Intn(nRes))}
			a.AddFlow(id, Unlimited, rs)
			dedup := rs[:1]
			if rs[1] != rs[0] {
				dedup = rs
			}
			ref.flows[id] = &refFlow{demand: Unlimited, routes: dedup}
			live[id] = true
		}
	}
	a.RecomputeAll()
	want := ref.solve()
	for id := range ref.flows {
		if !refClose(a.Rate(id), want[id]) {
			t.Fatalf("flow %d = %g, reference = %g", id, a.Rate(id), want[id])
		}
	}
}

// TestDuplicateRouteEntries: duplicate resources in a route are collapsed,
// so a flow listed twice on a link gets one share, not two.
func TestDuplicateRouteEntries(t *testing.T) {
	a := New()
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, Unlimited, []ResourceID{1, 1})
	a.AddFlow(2, Unlimited, []ResourceID{1})
	a.RecomputeAll()
	if !almost(a.Rate(1), 5e8) || !almost(a.Rate(2), 5e8) {
		t.Errorf("rates = %g, %g; want equal 5e8 shares", a.Rate(1), a.Rate(2))
	}
	a.RemoveFlow(1)
	a.Recompute()
	if !almost(a.Rate(2), 1e9) {
		t.Errorf("after duplicate-route flow removal rate = %g, want 1e9", a.Rate(2))
	}
}
