package fairshare

import (
	"math/rand"
	"testing"
)

// buildRandomTwins constructs two identical allocators with a multi-
// component sharing graph: nComp disjoint resource groups, flows routed
// only within their group.
func buildRandomTwins(rng *rand.Rand, nComp, resPer, flowsPer int) (a, b *Allocator) {
	a, b = New(), New()
	a.Epsilon, b.Epsilon = 0, 0
	for c := 0; c < nComp; c++ {
		base := ResourceID(c * resPer)
		for r := 0; r < resPer; r++ {
			cap := float64(rng.Intn(10)+1) * 1e8
			a.SetCapacity(base+ResourceID(r), cap)
			b.SetCapacity(base+ResourceID(r), cap)
		}
		for f := 0; f < flowsPer; f++ {
			id := FlowID(c*flowsPer + f)
			k := rng.Intn(min(3, resPer)) + 1
			var rs []ResourceID
			for len(rs) < k {
				r := base + ResourceID(rng.Intn(resPer))
				dup := false
				for _, have := range rs {
					dup = dup || have == r
				}
				if !dup {
					rs = append(rs, r)
				}
			}
			demand := Unlimited
			if rng.Float64() < 0.3 {
				demand = float64(rng.Intn(5)+1) * 1e7
			}
			a.AddFlow(id, demand, rs)
			b.AddFlow(id, demand, rs)
		}
	}
	return a, b
}

// TestParallelMatchesSerial: RecomputeAllParallel must return exactly the
// serial change list — same flows, same order, same rates — and leave
// every flow at the serial rate, for varying worker counts and component
// shapes, across repeated mutate/recompute rounds.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, nComp := range []int{1, 2, 7} {
			par, ser := buildRandomTwins(rng, nComp, 6, 20)
			for round := 0; round < 10; round++ {
				cp := par.RecomputeAllParallel(workers)
				cs := ser.RecomputeAll()
				if len(cp) != len(cs) {
					t.Fatalf("workers=%d comps=%d round=%d: %d changes parallel, %d serial",
						workers, nComp, round, len(cp), len(cs))
				}
				for i := range cs {
					if cp[i].ID != cs[i].ID || !almost(cp[i].NewRate, cs[i].NewRate) {
						t.Fatalf("workers=%d comps=%d round=%d change %d: parallel %+v serial %+v",
							workers, nComp, round, i, cp[i], cs[i])
					}
				}
				for f := 0; f < nComp*20; f++ {
					if !almost(par.Rate(FlowID(f)), ser.Rate(FlowID(f))) {
						t.Fatalf("flow %d: parallel=%g serial=%g",
							f, par.Rate(FlowID(f)), ser.Rate(FlowID(f)))
					}
				}
				if par.FlowsVisited != ser.FlowsVisited || par.FullSolves != ser.FullSolves {
					t.Fatalf("stats diverge: parallel (%d, %d) serial (%d, %d)",
						par.FlowsVisited, par.FullSolves, ser.FlowsVisited, ser.FullSolves)
				}
				// Mutate both twins identically before the next round.
				for i := 0; i < 8; i++ {
					id := FlowID(rng.Intn(nComp * 20))
					switch rng.Intn(3) {
					case 0:
						par.RemoveFlow(id)
						ser.RemoveFlow(id)
					case 1:
						d := float64(rng.Intn(9)+1) * 1e7
						par.SetDemand(id, d)
						ser.SetDemand(id, d)
					case 2:
						r := ResourceID(rng.Intn(nComp * 6))
						cap := float64(rng.Intn(10)+1) * 1e8
						par.SetCapacity(r, cap)
						ser.SetCapacity(r, cap)
					}
				}
			}
		}
	}
}

// TestParallelNoComponents: an allocator with no routed flows must not
// panic or spin.
func TestParallelNoComponents(t *testing.T) {
	a := New()
	a.SetCapacity(1, 1e9)
	a.AddFlow(1, 5e8, nil) // routeless flow: rate = demand, no component
	if got := a.RecomputeAllParallel(4); len(got) != 0 {
		t.Fatalf("expected no changes, got %v", got)
	}
	if a.Rate(1) != 5e8 {
		t.Fatalf("routeless flow rate = %g", a.Rate(1))
	}
}
