// Package fairshare computes the rate of every data flow in the network.
// This is the traffic-dynamics heart of the flow-level abstraction: instead
// of simulating packets, Horse assigns each flow the rate it would converge
// to under max–min fairness across every capacity-constrained resource it
// traverses — full-duplex link directions and OpenFlow meters alike.
//
// The solver is the classic progressive-filling (water-filling) algorithm:
// raise all unfrozen flows' rates together until a resource saturates or a
// flow reaches its demand, freeze, repeat. Max–min allocations decompose
// exactly over connected components of the flow/resource sharing graph, so
// the Allocator also supports incremental recomputation: when flows arrive
// or depart, only the components touched by a dirty resource are re-solved.
// Both modes produce identical allocations (property-tested); the E6
// ablation benchmarks their cost.
//
// Internally the sharing state is flat: flows and resources live in dense
// slots addressed by small integers, adjacency is slice-of-int32 in both
// directions, and every solve runs on reusable scratch buffers with
// epoch-stamped visited marks. Maps exist only at the API boundary to
// translate caller IDs into slot indices — the solve hot path does zero
// map iteration and, once the scratch is warm, near-zero allocation.
// RecomputeAll additionally splits the graph into connected components
// with a union-find over resource slots and solves each independently.
package fairshare

import (
	"cmp"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// ResourceID identifies a capacity-constrained resource. The caller assigns
// IDs (the simulator uses link-direction and meter encodings).
type ResourceID int64

// FlowID identifies a flow to the allocator. The caller assigns IDs.
type FlowID int64

// Unlimited is the demand of a flow that will take all the bandwidth it can
// get (a backlogged TCP transfer).
var Unlimited = math.Inf(1)

// edgeRef locates one flow↔resource adjacency from the resource side: the
// flow's slot and the position of this resource in the flow's route, so a
// departing flow can unlink itself from every resource in O(degree).
type edgeRef struct {
	flow int32
	edge int32
}

// flowSlot is a flow's dense record. Removed slots go on a free list and
// keep their route slices for reuse.
type flowSlot struct {
	id     FlowID
	demand float64
	rate   float64
	res    []int32 // dense resource indices crossed by this flow
	resPos []int32 // position of this flow in res[k].flows, parallel to res
	live   bool
}

// resSlot is a resource's dense record. Resources are never deleted (the
// simulator's link and meter set is fixed per topology), so slots only grow.
type resSlot struct {
	id       ResourceID
	capacity float64
	flows    []edgeRef
	dirty    bool
}

// Allocator maintains the flow/resource sharing state and produces max–min
// fair rates. The zero value is not usable; call New.
type Allocator struct {
	flowIdx map[FlowID]int32
	resIdx  map[ResourceID]int32
	flows   []flowSlot
	res     []resSlot

	freeFlows []int32
	dirtyRes  []int32 // dense indices with res[k].dirty set
	numFlows  int

	// Epsilon is the relative rate-change threshold below which a flow is
	// not reported as changed by Recompute. It damps event cascades from
	// infinitesimal re-allocations. Zero means report every change.
	Epsilon float64

	// Stats.
	FullSolves      uint64
	ComponentSolves uint64
	FlowsVisited    uint64

	scratch solveScratch
}

// solveScratch holds every buffer the solver needs, reused across solves.
// Visited/frozen state is epoch-stamped so nothing is cleared between
// solves; per-resource working values are rewritten when a resource is
// first touched in a solve.
type solveScratch struct {
	epoch    uint32
	flowSeen []uint32 // BFS visit marks, indexed by flow slot
	resSeen  []uint32 // BFS visit marks, indexed by resource slot

	solveEpoch uint32
	frozen     []uint32  // freeze marks, indexed by flow slot
	allocVal   []float64 // rate assigned this solve, indexed by flow slot
	resMark    []uint32  // touched-this-solve marks, indexed by resource slot
	remaining  []float64 // residual capacity, indexed by resource slot
	active     []int32   // unfrozen flows crossing, indexed by resource slot

	comp  []int32 // flow slots being solved
	queue []int32 // BFS frontier of resource slots

	// RecomputeAll component split.
	ufParent  []int32
	compCount []int32
	compPos   []int32
	compFlows []int32
	compRoots []int32

	worker  solveWorker   // the serial solve path's working set
	workers []solveWorker // pooled working sets for RecomputeAllParallel
}

// solveWorker is the per-solve working set that cannot be shared when
// components are solved concurrently. Every other scratch buffer is
// indexed by flow or resource slot and components are slot-disjoint, so
// those can be shared; these are one-per-in-flight-solve.
type solveWorker struct {
	order     []int32 // demand-sorted unfrozen flows
	activeRes []int32 // resource slots still binding
	changed   []Changed
	marks     []compMark // per-component spans of changed (parallel merge)
	visited   uint64

	// Progressive-filling state shared between solve and freezeFlow.
	level       float64
	activeCount int
}

// compMark records where a component's changes begin inside a worker's
// changed slice, so RecomputeAllParallel can stitch per-worker results
// back into ascending-component order (the serial order).
type compMark struct {
	seq   int32 // component sequence number, ascending root order
	start int32 // offset into the worker's changed slice
}

// beginPass opens one freeze/touch epoch for a recompute pass. A single
// epoch serves every component solved in the pass — serially or
// concurrently — because the epoch-stamped slots of distinct components
// are disjoint.
func (s *solveScratch) beginPass() {
	s.solveEpoch++
	if s.solveEpoch == 0 { // uint32 wrap: stale marks could alias, so reset
		clear(s.frozen)
		clear(s.resMark)
		s.solveEpoch = 1
	}
}

// New returns an empty allocator with a 1% change-report epsilon.
func New() *Allocator {
	return &Allocator{
		flowIdx: make(map[FlowID]int32),
		resIdx:  make(map[ResourceID]int32),
		Epsilon: 0.01,
	}
}

// resSlotFor returns the dense index for r, allocating a slot on first use.
func (a *Allocator) resSlotFor(r ResourceID) int32 {
	if k, ok := a.resIdx[r]; ok {
		return k
	}
	k := int32(len(a.res))
	a.res = append(a.res, resSlot{id: r})
	a.resIdx[r] = k
	return k
}

func (a *Allocator) markDirty(k int32) {
	if !a.res[k].dirty {
		a.res[k].dirty = true
		a.dirtyRes = append(a.dirtyRes, k)
	}
}

// SetCapacity declares or updates a resource's capacity in bits/second and
// marks it dirty. A capacity of zero (a down link) starves its flows.
func (a *Allocator) SetCapacity(r ResourceID, bps float64) {
	k := a.resSlotFor(r)
	if a.res[k].capacity != bps {
		a.res[k].capacity = bps
		a.markDirty(k)
	}
}

// Capacity returns a resource's capacity (0 if unknown).
func (a *Allocator) Capacity(r ResourceID) float64 {
	if k, ok := a.resIdx[r]; ok {
		return a.res[k].capacity
	}
	return 0
}

// AddFlow registers a flow with the given demand (bits/second, or
// Unlimited) crossing the given resources. Resources not yet declared get
// zero capacity until SetCapacity is called. Adding an existing ID replaces
// the flow. Duplicate resources in the route are collapsed.
func (a *Allocator) AddFlow(id FlowID, demand float64, resources []ResourceID) {
	if _, ok := a.flowIdx[id]; ok {
		a.RemoveFlow(id)
	}
	var fi int32
	if n := len(a.freeFlows); n > 0 {
		fi = a.freeFlows[n-1]
		a.freeFlows = a.freeFlows[:n-1]
	} else {
		fi = int32(len(a.flows))
		a.flows = append(a.flows, flowSlot{})
	}
	f := &a.flows[fi]
	f.id = id
	f.demand = demand
	f.rate = 0
	f.live = true
	f.res = f.res[:0]
	f.resPos = f.resPos[:0]
	a.flowIdx[id] = fi
	for _, r := range resources {
		k := a.resSlotFor(r)
		if slices.Contains(f.res, k) {
			continue
		}
		e := int32(len(f.res))
		rs := &a.res[k]
		f.res = append(f.res, k)
		f.resPos = append(f.resPos, int32(len(rs.flows)))
		rs.flows = append(rs.flows, edgeRef{flow: fi, edge: e})
		a.markDirty(k)
	}
	a.numFlows++
	if len(f.res) == 0 {
		// A flow crossing nothing is bottlenecked only by demand.
		f.rate = demand
	}
}

// RemoveFlow deregisters a flow, marking its resources dirty.
func (a *Allocator) RemoveFlow(id FlowID) {
	fi, ok := a.flowIdx[id]
	if !ok {
		return
	}
	f := &a.flows[fi]
	for e, k := range f.res {
		rs := &a.res[k]
		p := f.resPos[e]
		last := int32(len(rs.flows) - 1)
		moved := rs.flows[last]
		rs.flows[p] = moved
		rs.flows = rs.flows[:last]
		if p != last {
			a.flows[moved.flow].resPos[moved.edge] = p
		}
		a.markDirty(k)
	}
	f.live = false
	f.res = f.res[:0]
	f.resPos = f.resPos[:0]
	delete(a.flowIdx, id)
	a.freeFlows = append(a.freeFlows, fi)
	a.numFlows--
}

// SetDemand updates a flow's demand and marks its resources dirty.
func (a *Allocator) SetDemand(id FlowID, demand float64) {
	fi, ok := a.flowIdx[id]
	if !ok {
		return
	}
	f := &a.flows[fi]
	if f.demand == demand {
		return
	}
	f.demand = demand
	if len(f.res) == 0 {
		f.rate = demand
		return
	}
	for _, k := range f.res {
		a.markDirty(k)
	}
}

// Rate returns the most recently computed rate for a flow (0 if unknown).
func (a *Allocator) Rate(id FlowID) float64 {
	if fi, ok := a.flowIdx[id]; ok {
		return a.flows[fi].rate
	}
	return 0
}

// Demand returns a flow's demand (0 if unknown).
func (a *Allocator) Demand(id FlowID) float64 {
	if fi, ok := a.flowIdx[id]; ok {
		return a.flows[fi].demand
	}
	return 0
}

// NumFlows returns the number of registered flows.
func (a *Allocator) NumFlows() int { return a.numFlows }

// DemandSum returns the sum of offered demands over a resource (+Inf if
// any flow is backlogged).
func (a *Allocator) DemandSum(r ResourceID) float64 {
	k, ok := a.resIdx[r]
	if !ok {
		return 0
	}
	var sum float64
	for _, er := range a.res[k].flows {
		sum += a.flows[er.flow].demand
	}
	return sum
}

// ResourceUsage returns the sum of allocated rates over a resource.
func (a *Allocator) ResourceUsage(r ResourceID) float64 {
	k, ok := a.resIdx[r]
	if !ok {
		return 0
	}
	var sum float64
	for _, er := range a.res[k].flows {
		sum += a.flows[er.flow].rate
	}
	return sum
}

// Changed describes a flow whose allocated rate moved in a recompute.
type Changed struct {
	ID      FlowID
	OldRate float64
	NewRate float64
}

// clearDirty resets the dirty marks without solving.
func (a *Allocator) clearDirty() {
	for _, k := range a.dirtyRes {
		a.res[k].dirty = false
	}
	a.dirtyRes = a.dirtyRes[:0]
}

// ensureScratch sizes every per-slot scratch buffer to the current slot
// counts. Growth zero-fills, which is exactly what the epoch marks need.
func (s *solveScratch) ensureScratch(nFlows, nRes int) {
	s.flowSeen = growZero(s.flowSeen, nFlows)
	s.frozen = growZero(s.frozen, nFlows)
	s.allocVal = growFloat(s.allocVal, nFlows)
	s.resSeen = growZero(s.resSeen, nRes)
	s.resMark = growZero(s.resMark, nRes)
	s.remaining = growFloat(s.remaining, nRes)
	s.active = growInt32(s.active, nRes)
}

func growZero(b []uint32, n int) []uint32 {
	if len(b) < n {
		b = append(b, make([]uint32, n-len(b))...)
	}
	return b
}

func growFloat(b []float64, n int) []float64 {
	if len(b) < n {
		b = append(b, make([]float64, n-len(b))...)
	}
	return b
}

func growInt32(b []int32, n int) []int32 {
	if len(b) < n {
		b = append(b, make([]int32, n-len(b))...)
	}
	return b
}

// RecomputeAll re-solves the entire network from scratch and returns flows
// whose rate changed beyond Epsilon. The sharing graph is split into
// connected components with a union-find over resource slots and each
// component is solved independently — identical rates, smaller sorts. The
// returned slice is reused by the next recompute; consume it before then.
func (a *Allocator) RecomputeAll() []Changed {
	a.FullSolves++
	a.clearDirty()
	s := &a.scratch
	s.ensureScratch(len(a.flows), len(a.res))
	cnt, pos, grouped := a.groupComponents()

	// Solve each component. pos[r] points one past the component's end.
	s.beginPass()
	w := &s.worker
	w.changed = w.changed[:0]
	w.visited = 0
	for r, c := range cnt {
		if c == 0 {
			continue
		}
		a.solve(grouped[pos[r]-c:pos[r]], w)
	}
	a.FlowsVisited += w.visited
	return w.changed
}

// RecomputeAllParallel is RecomputeAll with the independent component
// solves fanned across up to workers goroutines. Rates, stats, and the
// returned change list are identical to RecomputeAll: components are
// claimed dynamically, but each worker records per-component spans of its
// change list and the spans are stitched back together in ascending
// component order afterwards. workers <= 1 falls back to the serial path.
func (a *Allocator) RecomputeAllParallel(workers int) []Changed {
	if workers <= 1 {
		return a.RecomputeAll()
	}
	a.FullSolves++
	a.clearDirty()
	s := &a.scratch
	s.ensureScratch(len(a.flows), len(a.res))
	cnt, pos, grouped := a.groupComponents()

	roots := s.compRoots[:0]
	for r, c := range cnt {
		if c > 0 {
			roots = append(roots, int32(r))
		}
	}
	s.compRoots = roots
	ncomp := len(roots)
	s.beginPass()
	if ncomp <= 1 {
		w := &s.worker
		w.changed = w.changed[:0]
		w.visited = 0
		if ncomp == 1 {
			r := roots[0]
			a.solve(grouped[pos[r]-cnt[r]:pos[r]], w)
		}
		a.FlowsVisited += w.visited
		return w.changed
	}
	if workers > ncomp {
		workers = ncomp
	}
	if len(s.workers) < workers {
		s.workers = append(s.workers, make([]solveWorker, workers-len(s.workers))...)
	}
	ws := s.workers[:workers]

	var next atomic.Int32
	var wg sync.WaitGroup
	for g := range ws {
		w := &ws[g]
		w.changed = w.changed[:0]
		w.marks = w.marks[:0]
		w.visited = 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := next.Add(1) - 1
				if int(seq) >= ncomp {
					return
				}
				r := roots[seq]
				w.marks = append(w.marks, compMark{seq: seq, start: int32(len(w.changed))})
				a.solve(grouped[pos[r]-cnt[r]:pos[r]], w)
			}
		}()
	}
	wg.Wait()

	// Stitch per-component change spans into ascending component order.
	// Each worker's marks already ascend, so a cursor per worker suffices.
	out := s.worker.changed[:0]
	cursor := make([]int, len(ws))
	for seq := int32(0); seq < int32(ncomp); seq++ {
		for g := range ws {
			w := &ws[g]
			if cursor[g] >= len(w.marks) || w.marks[cursor[g]].seq != seq {
				continue
			}
			start := w.marks[cursor[g]].start
			end := int32(len(w.changed))
			if cursor[g]+1 < len(w.marks) {
				end = w.marks[cursor[g]+1].start
			}
			out = append(out, w.changed[start:end]...)
			cursor[g]++
			break
		}
	}
	for g := range ws {
		a.FlowsVisited += ws[g].visited
	}
	s.worker.changed = out
	return out
}

// groupComponents splits live routed flows into sharing-graph components
// with a union-find over resource slots and buckets them with a counting
// sort. Component r's flow slots are grouped[pos[r]-cnt[r]:pos[r]]
// (pos[r] is left one past the component's end).
func (a *Allocator) groupComponents() (cnt, pos, grouped []int32) {
	s := &a.scratch

	// Union resources along every live flow's route.
	parent := growInt32(s.ufParent, len(a.res))[:len(a.res)]
	s.ufParent = parent
	for i := range parent {
		parent[i] = int32(i)
	}
	for fi := range a.flows {
		f := &a.flows[fi]
		if !f.live || len(f.res) < 2 {
			continue
		}
		r0 := ufFind(parent, f.res[0])
		for _, k := range f.res[1:] {
			r := ufFind(parent, k)
			if r != r0 {
				parent[r] = r0
			}
		}
	}

	// Bucket live routed flows by component root (counting sort, no maps).
	cnt = growInt32(s.compCount, len(a.res))[:len(a.res)]
	s.compCount = cnt
	for i := range cnt {
		cnt[i] = 0
	}
	total := 0
	for fi := range a.flows {
		f := &a.flows[fi]
		if !f.live || len(f.res) == 0 {
			continue
		}
		cnt[ufFind(parent, f.res[0])]++
		total++
	}
	pos = growInt32(s.compPos, len(a.res))[:len(a.res)]
	s.compPos = pos
	sum := int32(0)
	for i, c := range cnt {
		pos[i] = sum
		sum += c
	}
	grouped = growInt32(s.compFlows, total)[:total]
	s.compFlows = grouped
	for fi := range a.flows {
		f := &a.flows[fi]
		if !f.live || len(f.res) == 0 {
			continue
		}
		r := ufFind(parent, f.res[0])
		grouped[pos[r]] = int32(fi)
		pos[r]++
	}
	return cnt, pos, grouped
}

// ufFind returns the root of x with path halving.
func ufFind(parent []int32, x int32) int32 {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

// Recompute re-solves only the connected components touched by dirty
// resources and returns flows whose rate changed beyond Epsilon. Max–min
// fairness decomposes exactly over components, so the result equals a full
// re-solve. The returned slice is reused by the next recompute; consume it
// before then.
func (a *Allocator) Recompute() []Changed {
	if len(a.dirtyRes) == 0 {
		return nil
	}
	a.ComponentSolves++
	s := &a.scratch
	s.ensureScratch(len(a.flows), len(a.res))
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: stale marks could alias, so reset
		clear(s.flowSeen)
		clear(s.resSeen)
		s.epoch = 1
	}

	// Collect the affected flows: BFS over the bipartite sharing graph
	// seeded at dirty resources (dense adjacency, epoch-marked visits).
	queue := s.queue[:0]
	comp := s.comp[:0]
	for _, k := range a.dirtyRes {
		a.res[k].dirty = false
		if s.resSeen[k] != s.epoch {
			s.resSeen[k] = s.epoch
			queue = append(queue, k)
		}
	}
	a.dirtyRes = a.dirtyRes[:0]
	for len(queue) > 0 {
		k := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, er := range a.res[k].flows {
			if s.flowSeen[er.flow] == s.epoch {
				continue
			}
			s.flowSeen[er.flow] = s.epoch
			comp = append(comp, er.flow)
			for _, k2 := range a.flows[er.flow].res {
				if s.resSeen[k2] != s.epoch {
					s.resSeen[k2] = s.epoch
					queue = append(queue, k2)
				}
			}
		}
	}
	s.queue, s.comp = queue, comp
	s.beginPass()
	w := &s.worker
	w.changed = w.changed[:0]
	w.visited = 0
	a.solve(comp, w)
	a.FlowsVisited += w.visited
	return w.changed
}

// solve runs progressive filling over the given flow slots (assumed to be
// a union of whole components) inside an open pass (beginPass) and appends
// the changed flows to w.changed. Concurrent solves of slot-disjoint
// components with distinct workers are safe: the scratch buffers solve
// touches are all flow- or resource-indexed.
//
// The implementation exploits two structural facts to stay near
// O((F+R)·log F + iterations·R): all unfrozen flows share the same
// cumulative fill level, so demand-limited flows freeze in sorted demand
// order (no per-iteration scan over flows); and saturated resources are
// swap-removed from the active scan list.
func (a *Allocator) solve(comp []int32, w *solveWorker) {
	w.visited += uint64(len(comp))
	s := &a.scratch
	ep := s.solveEpoch

	order := w.order[:0]
	activeRes := w.activeRes[:0]
	for _, fi := range comp {
		f := &a.flows[fi]
		for _, k := range f.res {
			if s.resMark[k] != ep {
				s.resMark[k] = ep
				s.remaining[k] = a.res[k].capacity
				s.active[k] = 0
				activeRes = append(activeRes, k)
			}
		}
		if f.demand <= 0 {
			s.frozen[fi] = ep
			s.allocVal[fi] = 0
			continue
		}
		for _, k := range f.res {
			s.active[k]++
		}
		order = append(order, fi)
	}

	// Flows sorted by demand: since every unfrozen flow holds the same
	// fill level L, they hit their demands in this order.
	slices.SortFunc(order, func(x, y int32) int {
		return cmp.Compare(a.flows[x].demand, a.flows[y].demand)
	})
	nextDemand := 0 // index into order of the next demand-freeze candidate
	w.activeCount = len(order)

	const tiny = 1e-9
	w.level = 0 // common fill level of unfrozen flows

	for w.activeCount > 0 {
		// Advance past already-frozen heads of the demand order.
		for nextDemand < len(order) && s.frozen[order[nextDemand]] == ep {
			nextDemand++
		}
		// Minimum increment to a constraint.
		delta := math.Inf(1)
		if nextDemand < len(order) {
			if d := a.flows[order[nextDemand]].demand - w.level; d < delta {
				delta = d
			}
		}
		for x := 0; x < len(activeRes); {
			k := activeRes[x]
			if s.active[k] == 0 {
				activeRes[x] = activeRes[len(activeRes)-1]
				activeRes = activeRes[:len(activeRes)-1]
				continue
			}
			if inc := s.remaining[k] / float64(s.active[k]); inc < delta {
				delta = inc
			}
			x++
		}
		if math.IsInf(delta, 1) {
			break // no binding constraint (unlimited flows on uncapacitated paths)
		}
		if delta < 0 {
			delta = 0
		}
		// Apply the increment. Unfrozen allocations are implicit: every
		// unfrozen flow sits exactly at the fill level, materialized only
		// when the flow freezes (or at loop exit).
		w.level += delta
		for _, k := range activeRes {
			s.remaining[k] -= delta * float64(s.active[k])
		}
		// Freeze demand-satisfied flows (heads of the sorted order).
		progressed := false
		for nextDemand < len(order) {
			fi := order[nextDemand]
			if s.frozen[fi] == ep {
				nextDemand++
				continue
			}
			if w.level >= a.flows[fi].demand-tiny {
				a.freezeFlow(fi, w)
				nextDemand++
				progressed = true
				continue
			}
			break
		}
		// Freeze flows on exhausted resources (via reverse adjacency, so
		// the cost is proportional to the frozen flows' degree, not F).
		for _, k := range activeRes {
			if s.remaining[k] > tiny {
				continue
			}
			for _, er := range a.res[k].flows {
				if s.frozen[er.flow] != ep {
					a.freezeFlow(er.flow, w)
					progressed = true
				}
			}
		}
		if delta == 0 && !progressed {
			break // guard against livelock on degenerate inputs
		}
	}

	// Materialize never-frozen flows at the final fill level.
	for _, fi := range order {
		if s.frozen[fi] != ep {
			s.allocVal[fi] = math.Min(w.level, a.flows[fi].demand)
		}
	}
	w.order, w.activeRes = order, activeRes

	// Publish and diff.
	for _, fi := range comp {
		f := &a.flows[fi]
		newRate := s.allocVal[fi]
		old := f.rate
		f.rate = newRate
		if a.significant(old, newRate) {
			w.changed = append(w.changed, Changed{ID: f.id, OldRate: old, NewRate: newRate})
		}
	}
}

// freezeFlow pins a flow at the current fill level (capped by demand) and
// retires it from every resource it crosses.
func (a *Allocator) freezeFlow(fi int32, w *solveWorker) {
	s := &a.scratch
	f := &a.flows[fi]
	s.frozen[fi] = s.solveEpoch
	s.allocVal[fi] = math.Min(w.level, f.demand)
	w.activeCount--
	for _, k := range f.res {
		s.active[k]--
	}
}

func (a *Allocator) significant(old, new float64) bool {
	if old == new {
		return false
	}
	if a.Epsilon <= 0 {
		return true
	}
	base := math.Max(math.Abs(old), math.Abs(new))
	if base == 0 {
		return false
	}
	return math.Abs(new-old)/base > a.Epsilon
}
