// Package fairshare computes the rate of every data flow in the network.
// This is the traffic-dynamics heart of the flow-level abstraction: instead
// of simulating packets, Horse assigns each flow the rate it would converge
// to under max–min fairness across every capacity-constrained resource it
// traverses — full-duplex link directions and OpenFlow meters alike.
//
// The solver is the classic progressive-filling (water-filling) algorithm:
// raise all unfrozen flows' rates together until a resource saturates or a
// flow reaches its demand, freeze, repeat. Max–min allocations decompose
// exactly over connected components of the flow/resource sharing graph, so
// the Allocator also supports incremental recomputation: when flows arrive
// or depart, only the components touched by a dirty resource are re-solved.
// Both modes produce identical allocations (property-tested); the E6
// ablation benchmarks their cost.
package fairshare

import (
	"math"
	"sort"
)

// ResourceID identifies a capacity-constrained resource. The caller assigns
// IDs (the simulator uses link-direction and meter encodings).
type ResourceID int64

// FlowID identifies a flow to the allocator. The caller assigns IDs.
type FlowID int64

// Unlimited is the demand of a flow that will take all the bandwidth it can
// get (a backlogged TCP transfer).
var Unlimited = math.Inf(1)

type resource struct {
	capacity float64
	flows    map[FlowID]struct{}
}

type flow struct {
	demand    float64
	resources []ResourceID
	rate      float64
}

// Allocator maintains the flow/resource sharing state and produces max–min
// fair rates. The zero value is not usable; call New.
type Allocator struct {
	resources map[ResourceID]*resource
	flows     map[FlowID]*flow
	dirty     map[ResourceID]struct{}

	// Epsilon is the relative rate-change threshold below which a flow is
	// not reported as changed by Recompute. It damps event cascades from
	// infinitesimal re-allocations. Zero means report every change.
	Epsilon float64

	// Stats.
	FullSolves      uint64
	ComponentSolves uint64
	FlowsVisited    uint64
}

// New returns an empty allocator with a 1% change-report epsilon.
func New() *Allocator {
	return &Allocator{
		resources: make(map[ResourceID]*resource),
		flows:     make(map[FlowID]*flow),
		dirty:     make(map[ResourceID]struct{}),
		Epsilon:   0.01,
	}
}

// SetCapacity declares or updates a resource's capacity in bits/second and
// marks it dirty. A capacity of zero (a down link) starves its flows.
func (a *Allocator) SetCapacity(r ResourceID, bps float64) {
	res := a.resources[r]
	if res == nil {
		res = &resource{flows: make(map[FlowID]struct{})}
		a.resources[r] = res
	}
	if res.capacity != bps {
		res.capacity = bps
		a.dirty[r] = struct{}{}
	}
}

// Capacity returns a resource's capacity (0 if unknown).
func (a *Allocator) Capacity(r ResourceID) float64 {
	if res := a.resources[r]; res != nil {
		return res.capacity
	}
	return 0
}

// AddFlow registers a flow with the given demand (bits/second, or
// Unlimited) crossing the given resources. Resources not yet declared get
// zero capacity until SetCapacity is called. Adding an existing ID replaces
// the flow.
func (a *Allocator) AddFlow(id FlowID, demand float64, resources []ResourceID) {
	if _, exists := a.flows[id]; exists {
		a.RemoveFlow(id)
	}
	f := &flow{demand: demand, resources: append([]ResourceID(nil), resources...)}
	a.flows[id] = f
	for _, r := range f.resources {
		res := a.resources[r]
		if res == nil {
			res = &resource{flows: make(map[FlowID]struct{})}
			a.resources[r] = res
		}
		res.flows[id] = struct{}{}
		a.dirty[r] = struct{}{}
	}
	if len(f.resources) == 0 {
		// A flow crossing nothing is bottlenecked only by demand.
		f.rate = demand
	}
}

// RemoveFlow deregisters a flow, marking its resources dirty.
func (a *Allocator) RemoveFlow(id FlowID) {
	f := a.flows[id]
	if f == nil {
		return
	}
	for _, r := range f.resources {
		if res := a.resources[r]; res != nil {
			delete(res.flows, id)
			a.dirty[r] = struct{}{}
		}
	}
	delete(a.flows, id)
}

// SetDemand updates a flow's demand and marks its resources dirty.
func (a *Allocator) SetDemand(id FlowID, demand float64) {
	f := a.flows[id]
	if f == nil || f.demand == demand {
		return
	}
	f.demand = demand
	if len(f.resources) == 0 {
		f.rate = demand
		return
	}
	for _, r := range f.resources {
		a.dirty[r] = struct{}{}
	}
}

// Rate returns the most recently computed rate for a flow (0 if unknown).
func (a *Allocator) Rate(id FlowID) float64 {
	if f := a.flows[id]; f != nil {
		return f.rate
	}
	return 0
}

// Demand returns a flow's demand (0 if unknown).
func (a *Allocator) Demand(id FlowID) float64 {
	if f := a.flows[id]; f != nil {
		return f.demand
	}
	return 0
}

// NumFlows returns the number of registered flows.
func (a *Allocator) NumFlows() int { return len(a.flows) }

// DemandSum returns the sum of offered demands over a resource (+Inf if
// any flow is backlogged).
func (a *Allocator) DemandSum(r ResourceID) float64 {
	res := a.resources[r]
	if res == nil {
		return 0
	}
	var sum float64
	for id := range res.flows {
		sum += a.flows[id].demand
	}
	return sum
}

// ResourceUsage returns the sum of allocated rates over a resource.
func (a *Allocator) ResourceUsage(r ResourceID) float64 {
	res := a.resources[r]
	if res == nil {
		return 0
	}
	var sum float64
	for id := range res.flows {
		sum += a.flows[id].rate
	}
	return sum
}

// Changed describes a flow whose allocated rate moved in a recompute.
type Changed struct {
	ID      FlowID
	OldRate float64
	NewRate float64
}

// RecomputeAll re-solves the entire network from scratch and returns flows
// whose rate changed beyond Epsilon. This is the simple O(F·R) baseline the
// E6 ablation compares against.
func (a *Allocator) RecomputeAll() []Changed {
	a.FullSolves++
	ids := make([]FlowID, 0, len(a.flows))
	for id := range a.flows {
		ids = append(ids, id)
	}
	changed := a.solve(ids)
	a.dirty = make(map[ResourceID]struct{})
	return changed
}

// Recompute re-solves only the connected components touched by dirty
// resources and returns flows whose rate changed beyond Epsilon. Max–min
// fairness decomposes exactly over components, so the result equals a full
// re-solve.
func (a *Allocator) Recompute() []Changed {
	if len(a.dirty) == 0 {
		return nil
	}
	a.ComponentSolves++
	// Collect the affected flows: BFS over the bipartite sharing graph
	// seeded at dirty resources.
	seenFlows := make(map[FlowID]struct{})
	seenRes := make(map[ResourceID]struct{})
	var frontier []ResourceID
	for r := range a.dirty {
		frontier = append(frontier, r)
		seenRes[r] = struct{}{}
	}
	var component []FlowID
	for len(frontier) > 0 {
		r := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		res := a.resources[r]
		if res == nil {
			continue
		}
		for id := range res.flows {
			if _, ok := seenFlows[id]; ok {
				continue
			}
			seenFlows[id] = struct{}{}
			component = append(component, id)
			for _, r2 := range a.flows[id].resources {
				if _, ok := seenRes[r2]; !ok {
					seenRes[r2] = struct{}{}
					frontier = append(frontier, r2)
				}
			}
		}
	}
	changed := a.solve(component)
	a.dirty = make(map[ResourceID]struct{})
	return changed
}

// solve runs progressive filling over the given flows (assumed to be a
// union of whole components) and returns the changed flows.
//
// The implementation exploits two structural facts to stay near
// O((F+R)·log F + iterations·R): all unfrozen flows share the same
// cumulative fill level, so demand-limited flows freeze in sorted demand
// order (no per-iteration scan over flows); and saturated resources are
// swap-removed from the active scan list.
func (a *Allocator) solve(ids []FlowID) []Changed {
	a.FlowsVisited += uint64(len(ids))

	// Compact working arrays.
	type workRes struct {
		remaining float64
		active    int
	}
	flows := make([]*flow, 0, len(ids))
	liveIDs := make([]FlowID, 0, len(ids))
	for _, id := range ids {
		if f := a.flows[id]; f != nil {
			flows = append(flows, f)
			liveIDs = append(liveIDs, id)
		}
	}
	n := len(flows)
	alloc := make([]float64, n)
	frozen := make([]bool, n)

	resIdx := make(map[ResourceID]int)
	var work []workRes
	var resFlows [][]int32
	flowRes := make([][]int32, n)
	for i, f := range flows {
		if f.demand <= 0 {
			frozen[i] = true
			continue
		}
		idxs := make([]int32, 0, len(f.resources))
		for _, r := range f.resources {
			k, ok := resIdx[r]
			if !ok {
				k = len(work)
				resIdx[r] = k
				work = append(work, workRes{remaining: a.resources[r].capacity})
				resFlows = append(resFlows, nil)
			}
			work[k].active++
			resFlows[k] = append(resFlows[k], int32(i))
			idxs = append(idxs, int32(k))
		}
		flowRes[i] = idxs
	}

	// Flows sorted by demand: since every unfrozen flow holds the same
	// fill level L, they hit their demands in this order.
	order := make([]int, 0, n)
	for i := range flows {
		if !frozen[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(x, y int) bool { return flows[order[x]].demand < flows[order[y]].demand })
	nextDemand := 0 // index into order of the next demand-freeze candidate
	activeCount := len(order)

	// Active resource index list for cheap min scans.
	activeRes := make([]int, 0, len(work))
	for k := range work {
		if work[k].active > 0 {
			activeRes = append(activeRes, k)
		}
	}

	const tiny = 1e-9
	level := 0.0 // common fill level of unfrozen flows

	freeze := func(i int) {
		frozen[i] = true
		alloc[i] = math.Min(level, flows[i].demand)
		activeCount--
		for _, k := range flowRes[i] {
			work[k].active--
		}
	}

	for activeCount > 0 {
		// Advance past already-frozen heads of the demand order.
		for nextDemand < len(order) && frozen[order[nextDemand]] {
			nextDemand++
		}
		// Minimum increment to a constraint.
		delta := math.Inf(1)
		if nextDemand < len(order) {
			if d := flows[order[nextDemand]].demand - level; d < delta {
				delta = d
			}
		}
		for x := 0; x < len(activeRes); {
			k := activeRes[x]
			if work[k].active == 0 {
				activeRes[x] = activeRes[len(activeRes)-1]
				activeRes = activeRes[:len(activeRes)-1]
				continue
			}
			if inc := work[k].remaining / float64(work[k].active); inc < delta {
				delta = inc
			}
			x++
		}
		if math.IsInf(delta, 1) {
			break // no binding constraint (unlimited flows on uncapacitated paths)
		}
		if delta < 0 {
			delta = 0
		}
		// Apply the increment. Unfrozen allocations are implicit: every
		// unfrozen flow sits exactly at the fill level, materialized only
		// when the flow freezes (or at loop exit).
		level += delta
		for _, k := range activeRes {
			work[k].remaining -= delta * float64(work[k].active)
		}
		// Freeze demand-satisfied flows (heads of the sorted order).
		progressed := false
		for nextDemand < len(order) {
			i := order[nextDemand]
			if frozen[i] {
				nextDemand++
				continue
			}
			if level >= flows[i].demand-tiny {
				freeze(i)
				nextDemand++
				progressed = true
				continue
			}
			break
		}
		// Freeze flows on exhausted resources (via reverse adjacency, so
		// the cost is proportional to the frozen flows' degree, not F).
		for _, k := range activeRes {
			if work[k].remaining > tiny {
				continue
			}
			for _, fi := range resFlows[k] {
				if !frozen[fi] {
					freeze(int(fi))
					progressed = true
				}
			}
		}
		if delta == 0 && !progressed {
			break // guard against livelock on degenerate inputs
		}
	}

	// Materialize never-frozen flows at the final fill level.
	for _, i := range order {
		if !frozen[i] {
			alloc[i] = math.Min(level, flows[i].demand)
		}
	}

	// Publish and diff.
	var changed []Changed
	for i, f := range flows {
		newRate := alloc[i]
		old := f.rate
		f.rate = newRate
		if a.significant(old, newRate) {
			changed = append(changed, Changed{ID: liveIDs[i], OldRate: old, NewRate: newRate})
		}
	}
	return changed
}

func (a *Allocator) significant(old, new float64) bool {
	if old == new {
		return false
	}
	if a.Epsilon <= 0 {
		return true
	}
	base := math.Max(math.Abs(old), math.Abs(new))
	if base == 0 {
		return false
	}
	return math.Abs(new-old)/base > a.Epsilon
}
