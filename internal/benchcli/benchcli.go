// Package benchcli is the shared driver behind cmd/horsebench and the
// `horse experiments` subcommand: one flag set, one experiment-selection
// switch, one report-writing path, so the two binaries cannot drift.
package benchcli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"horse/internal/experiments"
	"horse/internal/simtime"
)

// Full-suite grid constants, in one place.
var (
	fullLeafCounts   = []int{4, 8, 16, 32}
	fullLambdas      = []float64{200, 1000, 5000}
	fullMemberCounts = []int{100, 200, 400}
	fullReplayHours  = 24
	fullE7Fractions  = []float64{0, 0.25, 0.5, 0.75, 1}
	fullE8MTBFs      = []simtime.Duration{500 * simtime.Millisecond, 2 * simtime.Second}
	fullE8Recoveries = []simtime.Duration{100 * simtime.Millisecond, 400 * simtime.Millisecond}
	fullE9Arities    = []int{4, 8}
	fullE9Shards     = []int{1, 2, 4, 8}
	fullE10Shards    = []int{1, 4}
)

// Quick-grid constants for -quick -only runs. These must match the grids
// experiments.QuickWith hands the same spec, or a -compare against a
// quick-suite baseline fails on row count — a loud, self-detecting drift.
var (
	quickE9Arities = []int{4}
	quickE9Shards  = []int{1, 4}
)

// Main parses args, runs the selected experiments, prints the tables to
// stdout, and optionally writes a horse-bench/v1 JSON report. name
// prefixes error messages. The returned code is the process exit code.
func Main(name string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run the reduced suite")
	only := fs.String("only", "", "run a single experiment (E1..E10)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for independent experiment cells")
	jsonOut := fs.String("json", "", "write a horse-bench/v1 JSON report to this path (\"-\" = stdout)")
	compare := fs.String("compare", "", "gate this run against a baseline horse-bench/v1 report; regressions exit 1")
	compareTol := fs.Float64("compare-tol", DefaultCompareTol, "relative tolerance for -compare timing columns")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "%s: %v\n", name, err)
		return 1
	}

	opts := experiments.Options{Parallel: *parallel}
	pick, ok := map[string]func() []*experiments.Table{
		"": func() []*experiments.Table {
			if *quick {
				return experiments.QuickWith(opts)
			}
			return experiments.AllWith(opts)
		},
		"E1": func() []*experiments.Table { return []*experiments.Table{experiments.E1With(opts)} },
		"E2": func() []*experiments.Table {
			return []*experiments.Table{experiments.E2With(opts, fullLeafCounts, fullLambdas)}
		},
		"E3": func() []*experiments.Table { return []*experiments.Table{experiments.E3With(opts)} },
		"E4": func() []*experiments.Table {
			return []*experiments.Table{experiments.E4With(opts, fullMemberCounts, fullReplayHours)}
		},
		"E5": func() []*experiments.Table { return []*experiments.Table{experiments.E5With(opts)} },
		"E6": func() []*experiments.Table { return []*experiments.Table{experiments.E6With(opts)} },
		"E7": func() []*experiments.Table {
			return []*experiments.Table{experiments.E7With(opts, fullE7Fractions)}
		},
		"E8": func() []*experiments.Table {
			return []*experiments.Table{experiments.E8With(opts, fullE8MTBFs, fullE8Recoveries)}
		},
		"E9": func() []*experiments.Table {
			if *quick {
				return []*experiments.Table{experiments.E9With(opts, quickE9Arities, quickE9Shards)}
			}
			return []*experiments.Table{experiments.E9With(opts, fullE9Arities, fullE9Shards)}
		},
		"E10": func() []*experiments.Table {
			if *quick {
				return []*experiments.Table{experiments.E10QuickWith(opts, fullE10Shards)}
			}
			return []*experiments.Table{experiments.E10With(opts, fullE10Shards)}
		},
	}[strings.ToUpper(*only)]
	if !ok {
		return fail(fmt.Errorf("unknown experiment %q", *only))
	}

	// Open a temp file next to the report target after flag validation but
	// before the (potentially minutes-long) run: a bad path fails fast, and
	// neither a bad -only, a mid-run panic, nor an interrupt ever truncates
	// an existing report — the rename happens only on success.
	var jsonFile *os.File
	if *jsonOut != "" && *jsonOut != "-" {
		f, err := os.CreateTemp(filepath.Dir(*jsonOut), filepath.Base(*jsonOut)+".tmp-")
		if err != nil {
			return fail(err)
		}
		defer os.Remove(f.Name()) // no-op after the success rename
		jsonFile = f
	}

	// Wall-time columns are measured per cell while sibling cells may be
	// competing for the same cores; flag it so nobody reads contended
	// timings as the scalability result. Stderr, so tables stay
	// byte-identical across -parallel values.
	if *parallel != 1 && runtime.GOMAXPROCS(0) > 1 {
		fmt.Fprintf(stderr, "%s: note: wall-time columns measured with %d parallel workers; use -parallel 1 for uncontended timings\n", name, *parallel)
	}

	// Load the comparison baseline before the run: a bad path fails fast.
	var baseline *experiments.Report
	if *compare != "" {
		var err error
		if baseline, err = LoadReport(*compare); err != nil {
			return fail(err)
		}
		// A single-experiment run gates just that table: restrict the
		// baseline to it so the other tables don't read as lost coverage,
		// and drop the suite wall — one experiment is not the whole suite.
		if *only != "" {
			id := strings.ToUpper(*only)
			kept := baseline.Tables[:0]
			for _, t := range baseline.Tables {
				if t.ID == id {
					kept = append(kept, t)
				}
			}
			if len(kept) == 0 {
				return fail(fmt.Errorf("baseline %s has no %s table to gate against", *compare, id))
			}
			baseline.Tables = kept
			baseline.WallMS = 0
		}
	}

	start := time.Now()
	tables := pick()
	wall := time.Since(start)

	if *jsonOut != "-" {
		for _, t := range tables {
			t.Fprint(func(format string, a ...interface{}) { fmt.Fprintf(stdout, format, a...) })
		}
	}
	rep := experiments.NewReport(tables, *parallel, wall)
	if *jsonOut != "" {
		if jsonFile == nil {
			if err := rep.WriteJSON(stdout); err != nil {
				return fail(err)
			}
		} else {
			if err := rep.WriteJSON(jsonFile); err != nil {
				jsonFile.Close()
				return fail(err)
			}
			if err := jsonFile.Close(); err != nil {
				return fail(err)
			}
			if err := os.Rename(jsonFile.Name(), *jsonOut); err != nil {
				return fail(err)
			}
		}
	}
	if baseline != nil {
		if baseline.Parallel != rep.Parallel {
			fmt.Fprintf(stderr, "%s: note: baseline ran -parallel %d, this run %d; timing columns not gated (deterministic columns still are)\n",
				name, baseline.Parallel, rep.Parallel)
		}
		if why := FingerprintMismatch(baseline, rep); why != "" {
			fmt.Fprintf(stderr, "%s: warning: host fingerprint mismatch — %s; timing columns not gated (deterministic columns still are)\n",
				name, why)
		}
		if bad := Compare(baseline, rep, *compareTol); len(bad) > 0 {
			fmt.Fprintf(stderr, "%s: benchmark regression vs %s:\n", name, *compare)
			for _, v := range bad {
				fmt.Fprintf(stderr, "  %s\n", v)
			}
			return 1
		}
		fmt.Fprintf(stderr, "%s: no benchmark regression vs %s (tolerance %.0f%%)\n",
			name, *compare, *compareTol*100)
	}
	return 0
}
