package benchcli

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"horse/internal/experiments"
)

func sampleReport() *experiments.Report {
	return experiments.NewReport([]*experiments.Table{
		{
			ID:      "E2",
			Columns: []string{"leaves", "events", "wall-ms", "events/ms"},
			Rows: [][]string{
				{"4", "100000", "250.0", "400.00"},
				{"8", "200000", "500.0", "400.00"},
			},
		},
		{
			ID:      "E9",
			Columns: []string{"fat-tree-k", "shards", "events", "wall-ms", "events/ms", "shard-speedup", "parity"},
			Rows: [][]string{
				{"4", "1", "50000", "100.0", "500.00", "1.00", "identical"},
				{"4", "2", "50000", "60.0", "833.33", "1.67", "identical"},
			},
		},
	}, 1, 900*time.Millisecond)
}

// slowedBy returns the sample report with every timing column degraded by
// the factor (wall times up, throughput down) — the synthetic slowdown of
// the acceptance criterion.
func slowedBy(factor float64) *experiments.Report {
	r := sampleReport()
	for _, t := range r.Tables {
		wi := columnIndex(t.Columns, "wall-ms")
		ei := columnIndex(t.Columns, "events/ms")
		for _, row := range t.Rows {
			w, _ := cellFloat(row, wi)
			e, _ := cellFloat(row, ei)
			row[wi] = strconv.FormatFloat(w*factor, 'f', 1, 64)
			row[ei] = strconv.FormatFloat(e/factor, 'f', 2, 64)
		}
	}
	r.WallMS *= factor
	return r
}

func TestCompareIdenticalPasses(t *testing.T) {
	if bad := Compare(sampleReport(), sampleReport(), DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("identical reports flagged: %v", bad)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	if bad := Compare(sampleReport(), slowedBy(1.10), DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("10%% slowdown flagged at 20%% tolerance: %v", bad)
	}
}

func TestCompareSyntheticSlowdownFails(t *testing.T) {
	bad := Compare(sampleReport(), slowedBy(1.25), DefaultCompareTol)
	if len(bad) == 0 {
		t.Fatal("25% slowdown passed the ±20% gate")
	}
	for _, v := range bad {
		t.Log(v)
	}
}

// TestCompareParallelMismatchSkipsTiming: timing columns measured under a
// different worker count than the baseline are contention, not regression
// — only the deterministic columns stay gated.
func TestCompareParallelMismatchSkipsTiming(t *testing.T) {
	slow := slowedBy(1.25)
	slow.Parallel = 8
	if bad := Compare(sampleReport(), slow, DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("timing gated across differing -parallel: %v", bad)
	}
	drift := sampleReport()
	drift.Parallel = 8
	drift.Tables[0].Rows[0][1] = "999"
	if bad := Compare(sampleReport(), drift, DefaultCompareTol); len(bad) == 0 {
		t.Fatal("event-count drift passed under a -parallel mismatch")
	}
}

// TestCompareFingerprintMismatchSkipsTiming: a report measured on
// different hardware than the baseline is not timing-comparable — only
// the deterministic columns stay gated.
func TestCompareFingerprintMismatchSkipsTiming(t *testing.T) {
	slow := slowedBy(1.25)
	slow.Host = &experiments.Host{CPUModel: "Imaginary-X1", Cores: 128, GOARCH: "arm64"}
	if why := FingerprintMismatch(sampleReport(), slow); why == "" {
		t.Fatal("fingerprint mismatch not detected")
	}
	if bad := Compare(sampleReport(), slow, DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("timing gated across differing hosts: %v", bad)
	}
	drift := sampleReport()
	drift.Host = &experiments.Host{CPUModel: "Imaginary-X1", Cores: 128, GOARCH: "arm64"}
	drift.Tables[0].Rows[0][1] = "999"
	if bad := Compare(sampleReport(), drift, DefaultCompareTol); len(bad) == 0 {
		t.Fatal("event-count drift passed under a host mismatch")
	}
}

// TestCompareLegacyBaselineSkipsTiming: a baseline generated before
// fingerprinting carries no host stanza; it cannot vouch for timing.
func TestCompareLegacyBaselineSkipsTiming(t *testing.T) {
	old := sampleReport()
	old.Host = nil
	if why := FingerprintMismatch(old, sampleReport()); !strings.Contains(why, "no host fingerprint") {
		t.Fatalf("legacy baseline reason = %q", why)
	}
	if bad := Compare(old, slowedBy(1.25), DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("timing gated against an unfingerprinted baseline: %v", bad)
	}
}

func TestFingerprintStamped(t *testing.T) {
	rep := sampleReport()
	if rep.Host == nil {
		t.Fatal("NewReport did not stamp a host fingerprint")
	}
	if rep.Host.Cores <= 0 || rep.Host.GOARCH == "" || rep.Host.CPUModel == "" {
		t.Fatalf("incomplete fingerprint: %+v", rep.Host)
	}
	if FingerprintMismatch(rep, sampleReport()) != "" {
		t.Fatal("same-host fingerprints mismatch")
	}
}

func TestCompareSpeedupPasses(t *testing.T) {
	if bad := Compare(sampleReport(), slowedBy(0.5), DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("2x speedup flagged as regression: %v", bad)
	}
}

// TestCompareSpeedupScalingGate: the "speedup" column is the sharded
// scaling floor — a multi-shard arm whose speedup over the serial arm
// collapses fails the gate even when absolute walls stay in tolerance.
func TestCompareSpeedupScalingGate(t *testing.T) {
	within := sampleReport()
	within.Tables[1].Rows[1][5] = "1.55" // -7% on a 20% tolerance
	if bad := Compare(sampleReport(), within, DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("in-tolerance speedup dip flagged: %v", bad)
	}
	collapsed := sampleReport()
	collapsed.Tables[1].Rows[1][5] = "1.00" // 4-shard arm scaling no better than serial
	bad := Compare(sampleReport(), collapsed, DefaultCompareTol)
	if len(bad) != 1 || !strings.Contains(bad[0], "speedup") {
		t.Fatalf("speedup collapse not flagged exactly once: %v", bad)
	}
	// Timing comparability rules apply: a -parallel mismatch ungates it.
	collapsed.Parallel = 8
	if bad := Compare(sampleReport(), collapsed, DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("speedup gated across differing -parallel: %v", bad)
	}
}

func TestCompareEventDriftFails(t *testing.T) {
	cur := sampleReport()
	cur.Tables[0].Rows[1][1] = "200001" // one extra event
	bad := Compare(sampleReport(), cur, DefaultCompareTol)
	if len(bad) != 1 || !strings.Contains(bad[0], "events") {
		t.Fatalf("event drift not flagged exactly once: %v", bad)
	}
}

func TestCompareParityDivergenceFails(t *testing.T) {
	cur := sampleReport()
	cur.Tables[1].Rows[1][6] = "DIVERGED"
	bad := Compare(sampleReport(), cur, DefaultCompareTol)
	if len(bad) != 1 || !strings.Contains(bad[0], "DIVERGED") {
		t.Fatalf("parity divergence not flagged exactly once: %v", bad)
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	// A row whose baseline wall sits under the noise floor never flags,
	// however bad its timing ratio looks.
	old := sampleReport()
	cur := sampleReport()
	old.Tables[0].Rows[0][2] = "1.0"  // baseline wall-ms below the 20ms floor
	cur.Tables[0].Rows[0][2] = "19.0" // 19x slower — still sub-floor
	cur.Tables[0].Rows[0][3] = "1.00" // throughput collapsed — same row, skipped
	if bad := Compare(old, cur, DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("sub-floor row flagged: %v", bad)
	}
}

func TestCompareRowCountMismatchFails(t *testing.T) {
	cur := sampleReport()
	cur.Tables[0].Rows = cur.Tables[0].Rows[:1]
	if bad := Compare(sampleReport(), cur, DefaultCompareTol); len(bad) == 0 {
		t.Fatal("missing row passed the gate")
	}
}

func TestCompareMissingTableFails(t *testing.T) {
	cur := sampleReport()
	cur.Tables = cur.Tables[:1] // E9 vanished from the new report
	bad := Compare(sampleReport(), cur, DefaultCompareTol)
	if len(bad) != 1 || !strings.Contains(bad[0], "E9") {
		t.Fatalf("missing table not flagged exactly once: %v", bad)
	}
}

func TestCompareNewTablePasses(t *testing.T) {
	cur := sampleReport()
	cur.Tables = append(cur.Tables, &experiments.Table{
		ID: "E10", Columns: []string{"x", "wall-ms"}, Rows: [][]string{{"a", "9999.0"}},
	})
	if bad := Compare(sampleReport(), cur, DefaultCompareTol); len(bad) != 0 {
		t.Fatalf("new table without baseline flagged: %v", bad)
	}
}
