package benchcli

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"horse/internal/experiments"
)

// Thresholds of the benchmark-regression gate.
const (
	// DefaultCompareTol is the relative tolerance on timing columns.
	DefaultCompareTol = 0.20
	// compareWallFloorMS ignores timing comparisons on rows whose
	// baseline wall time is below this — sub-noise cells measure the
	// scheduler, not the simulator.
	compareWallFloorMS = 20.0
	// compareReportFloorMS is the same floor for the report-level wall.
	compareReportFloorMS = 100.0
)

// LoadReport reads a horse-bench/v1 JSON report.
func LoadReport(path string) (*experiments.Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r experiments.Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != experiments.ReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, experiments.ReportSchema)
	}
	return &r, nil
}

// Compare gates a new report against a baseline and returns the
// violations (empty means the gate passes). The rules:
//
//   - "events" columns must match exactly: simulation runs are
//     deterministic, so any drift means engine behavior changed — a
//     deliberate change regenerates the baseline (make bench-baseline).
//   - "wall-ms" may not regress beyond the relative tolerance, and
//     "events/ms" (throughput) and "speedup" (the sharded-scaling gate:
//     serial wall over this arm's wall) may not fall beyond it, on rows
//     whose baseline wall clears the noise floor. Improvements never
//     fail.
//   - any "parity" cell reading DIVERGED fails outright — those columns
//     carry the engines' own determinism contracts.
//   - tables/rows present in the baseline must still exist; new tables
//     (a new experiment) pass without a baseline.
//   - timing columns are compared only when both reports ran with the
//     same worker count AND carry matching host fingerprints: a contended
//     default-parallel run gated against a -parallel 1 baseline measures
//     the scheduler, and a fast runner gated against a slow dev box's
//     baseline trivially passes (see FingerprintMismatch).
func Compare(old, cur *experiments.Report, tol float64) []string {
	var bad []string
	fail := func(format string, a ...interface{}) { bad = append(bad, fmt.Sprintf(format, a...)) }
	timing := old.Parallel == cur.Parallel && FingerprintMismatch(old, cur) == ""

	oldTables := make(map[string]*experiments.Table, len(old.Tables))
	for _, t := range old.Tables {
		oldTables[t.ID] = t
	}
	for _, nt := range cur.Tables {
		// Self-contained determinism contracts first.
		if pi := columnIndex(nt.Columns, "parity"); pi >= 0 {
			for _, row := range nt.Rows {
				if pi < len(row) && row[pi] == "DIVERGED" {
					fail("%s %s: parity DIVERGED", nt.ID, rowName(row))
				}
			}
		}
		ot := oldTables[nt.ID]
		if ot == nil {
			continue // new experiment: no baseline yet
		}
		if len(nt.Rows) != len(ot.Rows) {
			fail("%s: %d rows vs baseline %d", nt.ID, len(nt.Rows), len(ot.Rows))
			continue
		}
		wallIdx := columnIndex(ot.Columns, "wall-ms")
		for ci, col := range ot.Columns {
			nci := columnIndex(nt.Columns, col)
			if nci < 0 {
				fail("%s: column %q missing", nt.ID, col)
				continue
			}
			kind := columnKind(col)
			if kind == colOther {
				continue
			}
			for ri := range ot.Rows {
				ov, oerr := cellFloat(ot.Rows[ri], ci)
				nv, nerr := cellFloat(nt.Rows[ri], nci)
				if oerr != nil || nerr != nil {
					continue
				}
				switch kind {
				case colEvents:
					if ov != nv {
						fail("%s %s: %s %v vs baseline %v (deterministic column; regenerate the baseline if the change is intended)",
							nt.ID, rowName(nt.Rows[ri]), col, nv, ov)
					}
				case colWall:
					if !timing || ov < compareWallFloorMS {
						continue
					}
					if nv > ov*(1+tol) {
						fail("%s %s: %s %.1f vs baseline %.1f (+%.0f%% > %.0f%%)",
							nt.ID, rowName(nt.Rows[ri]), col, nv, ov, (nv/ov-1)*100, tol*100)
					}
				case colThroughput, colSpeedup:
					// Speedup is the scaling gate: the ratio of the cell's
					// serial wall to this arm's wall may not fall below the
					// committed floor. Same lower-bound rule as throughput —
					// ratios of same-cell timings, so the same wall floor and
					// comparability guards apply.
					if !timing {
						continue
					}
					if ow, err := cellFloat(ot.Rows[ri], wallIdx); wallIdx >= 0 && (err != nil || ow < compareWallFloorMS) {
						continue
					}
					if nv < ov*(1-tol) {
						fail("%s %s: %s %.1f vs baseline %.1f (-%.0f%% > %.0f%%)",
							nt.ID, rowName(nt.Rows[ri]), col, nv, ov, (1-nv/ov)*100, tol*100)
					}
				}
			}
		}
	}
	curTables := make(map[string]bool, len(cur.Tables))
	for _, t := range cur.Tables {
		curTables[t.ID] = true
	}
	for _, t := range old.Tables {
		if !curTables[t.ID] {
			fail("%s: table missing from the new report (baseline coverage lost)", t.ID)
		}
	}
	if timing && old.WallMS >= compareReportFloorMS && cur.WallMS > old.WallMS*(1+tol) {
		fail("suite wall %.0fms vs baseline %.0fms (+%.0f%% > %.0f%%)",
			cur.WallMS, old.WallMS, (cur.WallMS/old.WallMS-1)*100, tol*100)
	}
	return bad
}

// FingerprintMismatch explains why two reports' timing columns are not
// comparable across hardware — a non-empty human-readable reason when the
// host fingerprints differ (or the baseline predates fingerprinting) —
// or "" when they match. Callers print it as a warning; Compare uses it
// to skip timing columns (deterministic columns still gate).
func FingerprintMismatch(old, cur *experiments.Report) string {
	switch {
	case old.Host == nil:
		return "baseline has no host fingerprint (regenerate it with `make bench-baseline`)"
	case cur.Host == nil:
		return "current report has no host fingerprint"
	case *old.Host != *cur.Host:
		return fmt.Sprintf("baseline measured on %s/%d-core/%s, this run on %s/%d-core/%s",
			old.Host.CPUModel, old.Host.Cores, old.Host.GOARCH,
			cur.Host.CPUModel, cur.Host.Cores, cur.Host.GOARCH)
	}
	return ""
}

type colKind int

const (
	colOther colKind = iota
	colEvents
	colWall
	colThroughput
	colSpeedup
)

func columnKind(name string) colKind {
	switch {
	case name == "events" || name == "pkt-hops" || name == "flows":
		return colEvents
	case strings.HasSuffix(name, "wall-ms"):
		return colWall
	case strings.Contains(name, "events/ms") || strings.Contains(name, "events/sec"):
		return colThroughput
	// Exactly the sharded-scaling ratio (serial wall / arm wall, same
	// cell, same fidelity). E3's cross-fidelity "speedup" column divides
	// by sub-millisecond flow-engine walls and is noise-dominated — it
	// stays ungated on purpose.
	case name == "shard-speedup":
		return colSpeedup
	}
	return colOther
}

func columnIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

func rowName(row []string) string {
	if len(row) == 0 {
		return "?"
	}
	return row[0]
}

func cellFloat(row []string, i int) (float64, error) {
	if i < 0 || i >= len(row) {
		return 0, fmt.Errorf("no cell %d", i)
	}
	return strconv.ParseFloat(row[i], 64)
}
