package linkmodel

import (
	"math"
	"testing"

	"horse/internal/netgraph"
	"horse/internal/simtime"
)

// TestStateDeterminism pins the seed-reproducibility contract: the same
// (seed, dir) replays the identical draw stream, different dirs diverge,
// and a copied State replays exactly from the copy point (the property
// shard migration relies on).
func TestStateDeterminism(t *testing.T) {
	a := NewState(7, 4)
	b := NewState(7, 4)
	for i := 0; i < 1000; i++ {
		if va, vb := a.NextFloat(), b.NextFloat(); va != vb {
			t.Fatalf("draw %d diverged: %g vs %g", i, va, vb)
		}
	}
	c := NewState(7, 5)
	same := 0
	d := NewState(7, 4)
	for i := 0; i < 100; i++ {
		if c.NextFloat() == d.NextFloat() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct dirs produced %d/100 equal draws", same)
	}
	mid := a // copy mid-stream
	for i := 0; i < 100; i++ {
		if va, vb := a.NextFloat(), mid.NextFloat(); va != vb {
			t.Fatalf("copied state diverged at draw %d", i)
		}
	}
}

// TestBernoulliShape checks the empirical corruption rate against P at a
// fixed seed.
func TestBernoulliShape(t *testing.T) {
	m := BernoulliLoss{P: 0.03}
	st := NewState(11, 0)
	const n = 200000
	lost := 0
	for i := 0; i < n; i++ {
		if m.Corrupt(&st) {
			lost++
		}
	}
	got := float64(lost) / n
	if math.Abs(got-0.03) > 0.003 {
		t.Fatalf("empirical loss %g, want 0.03 ± 0.003", got)
	}
	if m.LossRate() != 0.03 {
		t.Fatalf("LossRate=%g, want 0.03", m.LossRate())
	}
}

// TestGilbertElliottShape pins the burst model's statistical shape at a
// fixed seed: empirical loss rate within tolerance of the stationary
// closed form πB·LossBad + (1−πB)·LossGood, and mean loss-burst length
// within tolerance of 1/PBadGood (the geometric sojourn mean, exact for
// LossBad=1, LossGood=0).
func TestGilbertElliottShape(t *testing.T) {
	m := GilbertElliott{PGoodBad: 0.002, PBadGood: 0.2, LossGood: 0, LossBad: 1}
	wantRate := m.PGoodBad / (m.PGoodBad + m.PBadGood) // ≈ 0.0099
	if got := m.LossRate(); math.Abs(got-wantRate) > 1e-12 {
		t.Fatalf("LossRate=%g, want %g", got, wantRate)
	}
	st := NewState(23, 2)
	const n = 500000
	lost, bursts, run := 0, 0, 0
	var burstSum int
	for i := 0; i < n; i++ {
		if m.Corrupt(&st) {
			lost++
			run++
		} else if run > 0 {
			bursts++
			burstSum += run
			run = 0
		}
	}
	if run > 0 {
		bursts++
		burstSum += run
	}
	gotRate := float64(lost) / n
	if math.Abs(gotRate-wantRate)/wantRate > 0.15 {
		t.Fatalf("empirical loss %g, want %g ± 15%%", gotRate, wantRate)
	}
	wantBurst := 1 / m.PBadGood // 5 frames
	gotBurst := float64(burstSum) / float64(bursts)
	if math.Abs(gotBurst-wantBurst)/wantBurst > 0.15 {
		t.Fatalf("mean burst length %g, want %g ± 15%%", gotBurst, wantBurst)
	}
	// The burst structure must be real: far fewer bursts than lost
	// frames (a Bernoulli channel at the same rate has burst length ~1).
	if gotBurst < 2 {
		t.Fatalf("mean burst length %g: no burst structure", gotBurst)
	}
}

// TestAdaptiveRateShape checks the block-fading scale: bounded by
// [Floor, 1], constant within a coherence window, pure under repeated
// evaluation, and actually stepping across windows.
func TestAdaptiveRateShape(t *testing.T) {
	m := AdaptiveRate{Levels: 4, Floor: 0.25, Every: 10 * simtime.Millisecond}
	st := NewState(31, 6)
	levels := map[float64]bool{}
	for w := 0; w < 200; w++ {
		at := simtime.Time(w) * simtime.Time(m.Every)
		s1 := m.RateScale(&st, at)
		s2 := m.RateScale(&st, at.Add(m.Every/2))
		if s1 != s2 {
			t.Fatalf("window %d: scale changed inside a coherence window (%g vs %g)", w, s1, s2)
		}
		if s1 < m.Floor || s1 > 1 {
			t.Fatalf("window %d: scale %g outside [%g, 1]", w, s1, m.Floor)
		}
		levels[s1] = true
	}
	if len(levels) != m.Levels {
		t.Fatalf("saw %d distinct levels over 200 windows, want %d", len(levels), m.Levels)
	}
	// Purity: evaluating must not perturb the corruption stream.
	before := st
	_ = m.RateScale(&st, simtime.Time(simtime.Second))
	if st != before {
		t.Fatal("RateScale mutated the state")
	}
}

// TestSetLifecycle covers install/degrade/restore bookkeeping and the
// reseed-on-reinstall contract.
func TestSetLifecycle(t *testing.T) {
	s := NewSet(5, 3)
	if !s.Empty() {
		t.Fatal("fresh set not empty")
	}
	if s.Links() != 3 {
		t.Fatalf("Links()=%d, want 3", s.Links())
	}
	m := BernoulliLoss{P: 0.5}
	s.SetLink(1, m)
	if s.Empty() {
		t.Fatal("set empty after SetLink")
	}
	if s.Model(1, true) != Model(m) || s.Model(1, false) != Model(m) {
		t.Fatal("SetLink did not cover both directions")
	}
	if s.Model(0, true) != nil {
		t.Fatal("SetLink leaked onto another link")
	}
	if got := s.LossRate(1, true); got != 0.5 {
		t.Fatalf("LossRate=%g, want 0.5", got)
	}
	// Record a prefix of the corruption stream, restore, degrade again:
	// the stream must replay from the start (reseeded).
	var first [32]bool
	for i := range first {
		first[i] = s.Corrupt(1, true)
	}
	s.Restore(1)
	if !s.Empty() {
		t.Fatal("set not empty after Restore")
	}
	if s.Corrupt(1, true) {
		t.Fatal("restored link corrupted a frame")
	}
	s.Degrade(1, m)
	for i := range first {
		if got := s.Corrupt(1, true); got != first[i] {
			t.Fatalf("reinstalled stream diverged at frame %d", i)
		}
	}
	// A nil set (engine without models) is empty and harmless.
	var nilSet *Set
	if !nilSet.Empty() {
		t.Fatal("nil set not empty")
	}
}

// TestSetDefault installs on every link.
func TestSetDefault(t *testing.T) {
	s := NewSet(1, 4)
	s.SetDefault(GilbertElliott{PGoodBad: 0.01, PBadGood: 0.5, LossBad: 1})
	for l := 0; l < 4; l++ {
		for _, fwd := range []bool{true, false} {
			if s.Model(netgraph.LinkID(l), fwd) == nil {
				t.Fatalf("link %d fwd=%v has no model", l, fwd)
			}
		}
	}
	s.SetDefault(nil)
	if !s.Empty() {
		t.Fatal("SetDefault(nil) did not clear")
	}
}

// TestValidate covers the parameter guards.
func TestValidate(t *testing.T) {
	ok := []Model{
		BernoulliLoss{P: 0},
		BernoulliLoss{P: 0.999},
		GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 1},
		AdaptiveRate{Levels: 2, Floor: 0.5, Every: simtime.Millisecond},
	}
	for _, m := range ok {
		if err := Validate(m); err != nil {
			t.Fatalf("Validate(%v): unexpected error %v", m, err)
		}
	}
	bad := []Model{
		nil,
		BernoulliLoss{P: 1},
		BernoulliLoss{P: -0.1},
		GilbertElliott{},
		GilbertElliott{PGoodBad: 1.5, PBadGood: 0.5},
		GilbertElliott{PGoodBad: 0.01, PBadGood: 0, LossBad: 1},
		AdaptiveRate{Levels: 1, Floor: 0.5, Every: simtime.Millisecond},
		AdaptiveRate{Levels: 4, Floor: 0, Every: simtime.Millisecond},
		AdaptiveRate{Levels: 4, Floor: 0.5},
	}
	for _, m := range bad {
		if err := Validate(m); err == nil {
			t.Fatalf("Validate(%#v): expected error", m)
		}
	}
}
