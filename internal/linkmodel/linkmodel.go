// Package linkmodel models link degradation: per-link-direction frame
// corruption and rate adaptation, deterministic and seed-reproducible.
// It is the "degraded but alive" half of the dynamic-network story —
// dataplane.FailureState decides whether a link is up at all, and a
// Model decides how well an up link carries traffic. The two compose:
// a dead link stays dead whatever its model says, and a degraded link
// keeps corrupting frames right up to the instant a scripted outage
// kills it.
//
// Every engine consults one Set, a per-link-direction registry of
// (Model, State) pairs. The packet engine asks Corrupt per transmitted
// frame and scales transmitter rates by RateScale; the flow engine folds
// LossRate into the TCP throughput model (tcpmodel.MathisCap) and
// applies RateScale as a time-varying fair-share capacity; a hybrid run
// hands the same Set to both engines so they see one channel. State is
// keyed by link direction and advanced only by the direction's owning
// handler, so sharded runs stay byte-identical to serial ones: the
// per-direction draw sequence is a pure function of the seed and the
// frames that direction carried.
package linkmodel

import (
	"fmt"

	"horse/internal/netgraph"
	"horse/internal/simtime"
)

// Model is one link-degradation model. Implementations must be
// deterministic: every random decision draws from the passed State, and
// RateScale must be a pure function of (State seed, at) — it may be
// evaluated any number of times at any instant without perturbing the
// corruption stream.
type Model interface {
	// Name identifies the model ("bernoulli", "gilbert-elliott", ...).
	Name() string
	// LossRate is the long-run average frame-loss probability — the
	// fluid view the flow engine feeds to the TCP throughput model.
	LossRate() float64
	// Corrupt advances the per-direction state by one transmitted frame
	// and reports whether that frame was corrupted. Only the packet
	// engine calls it, once per frame, on the direction's owning shard.
	Corrupt(st *State) bool
	// RateScale returns the capacity multiplier in (0, 1] in effect at
	// the given instant. Pure in (st.Seed(), at): it must not mutate st.
	RateScale(st *State, at simtime.Time) float64
	// StepEvery is the period at which RateScale can change (0 for
	// models with a constant scale). The flow engine re-applies the
	// fair-share capacity once per period; the packet engine evaluates
	// RateScale lazily per transmission, so it needs no stepping.
	StepEvery() simtime.Duration
}

// State is the mutable per-link-direction model state: the corruption
// RNG stream and the burst-model channel state. It belongs to exactly
// one link direction and, in sharded runs, is written only by that
// direction's owning shard — it migrates with the direction's entity
// group under work stealing because the Set's backing array is shared
// by every clone.
type State struct {
	seed uint64 // immutable per-direction identity
	rng  uint64 // frame-level draw stream position
	bad  bool   // Gilbert–Elliott channel state
}

// Seed returns the immutable per-direction seed RateScale derives from.
func (st *State) Seed() uint64 { return st.seed }

// NextFloat draws the next frame-level variate in [0, 1) and advances
// the stream.
func (st *State) NextFloat() float64 {
	st.rng = splitmix64(st.rng)
	return float64(st.rng>>11) / (1 << 53)
}

// splitmix64 is the SplitMix64 mixing function — a tiny, allocation-free
// generator whose every output is a pure function of its input, so state
// copies and replays stay exact.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash2 mixes a seed with a stream discriminator.
func hash2(seed, k uint64) uint64 { return splitmix64(seed ^ splitmix64(k)) }

// NewState seeds the state of one link direction from a set-level seed.
func NewState(seed uint64, dir int) State {
	s := hash2(seed, uint64(dir)+0x51ed)
	return State{seed: s, rng: s}
}

// BernoulliLoss corrupts each frame independently with probability P —
// the memoryless random-corruption model (LinkGuardian's "random loss"
// arm).
type BernoulliLoss struct {
	// P is the per-frame corruption probability in [0, 1).
	P float64
}

// Name implements Model.
func (m BernoulliLoss) Name() string { return "bernoulli" }

// LossRate implements Model.
func (m BernoulliLoss) LossRate() float64 { return m.P }

// Corrupt implements Model.
func (m BernoulliLoss) Corrupt(st *State) bool { return st.NextFloat() < m.P }

// RateScale implements Model: Bernoulli loss leaves capacity untouched.
func (BernoulliLoss) RateScale(*State, simtime.Time) float64 { return 1 }

// StepEvery implements Model.
func (BernoulliLoss) StepEvery() simtime.Duration { return 0 }

// GilbertElliott is the two-state burst-loss channel: a Markov chain
// alternating between a good and a bad state with per-frame transition
// probabilities, corrupting frames at LossGood / LossBad in each. With
// LossBad=1 and LossGood=0 the mean loss-burst length is 1/PBadGood
// frames and the stationary loss rate is PGoodBad/(PGoodBad+PBadGood) —
// the closed forms the statistical-shape tests pin.
type GilbertElliott struct {
	// PGoodBad is the per-frame good→bad transition probability.
	PGoodBad float64
	// PBadGood is the per-frame bad→good transition probability.
	PBadGood float64
	// LossGood is the corruption probability while good (usually 0).
	LossGood float64
	// LossBad is the corruption probability while bad (usually 1).
	LossBad float64
}

// Name implements Model.
func (m GilbertElliott) Name() string { return "gilbert-elliott" }

// LossRate implements Model: the stationary corruption probability.
func (m GilbertElliott) LossRate() float64 {
	denom := m.PGoodBad + m.PBadGood
	if denom <= 0 {
		return m.LossGood
	}
	piBad := m.PGoodBad / denom
	return (1-piBad)*m.LossGood + piBad*m.LossBad
}

// Corrupt implements Model: one per-frame chain step (transition, then
// emit in the new state).
func (m GilbertElliott) Corrupt(st *State) bool {
	if st.bad {
		if st.NextFloat() < m.PBadGood {
			st.bad = false
		}
	} else {
		if st.NextFloat() < m.PGoodBad {
			st.bad = true
		}
	}
	p := m.LossGood
	if st.bad {
		p = m.LossBad
	}
	return st.NextFloat() < p
}

// RateScale implements Model: burst loss leaves capacity untouched.
func (GilbertElliott) RateScale(*State, simtime.Time) float64 { return 1 }

// StepEvery implements Model.
func (GilbertElliott) StepEvery() simtime.Duration { return 0 }

// AdaptiveRate models an SNR-driven rate-adaptive (wireless-style) link
// under block fading: time divides into coherence windows of length
// Every, each window draws a channel quality that picks one of Levels
// discrete rate steps, and the transmit rate scales between Floor (worst
// step) and 1.0 (best step). The draw is a pure hash of (direction seed,
// window index), so every engine — and every shard — computes the same
// scale for the same instant without sharing mutable state, and the flow
// engine's fair-share allocator sees the step sequence as a time-varying
// capacity (the utility max-min framing).
type AdaptiveRate struct {
	// Levels is the number of discrete rate steps (>= 2).
	Levels int
	// Floor is the scale of the lowest step, in (0, 1].
	Floor float64
	// Every is the coherence window (how often the rate can step).
	Every simtime.Duration
}

// Name implements Model.
func (m AdaptiveRate) Name() string { return "adaptive-rate" }

// LossRate implements Model: rate adaptation trades rate, not frames.
func (AdaptiveRate) LossRate() float64 { return 0 }

// Corrupt implements Model.
func (AdaptiveRate) Corrupt(*State) bool { return false }

// RateScale implements Model: the scale of the coherence window covering
// `at`.
func (m AdaptiveRate) RateScale(st *State, at simtime.Time) float64 {
	levels := m.Levels
	if levels < 2 {
		levels = 2
	}
	every := m.Every
	if every <= 0 {
		every = simtime.Second
	}
	win := uint64(at) / uint64(every)
	level := hash2(st.Seed(), win) % uint64(levels)
	floor := m.Floor
	if floor <= 0 || floor > 1 {
		floor = 0.25
	}
	return floor + (1-floor)*float64(level)/float64(levels-1)
}

// StepEvery implements Model.
func (m AdaptiveRate) StepEvery() simtime.Duration {
	if m.Every <= 0 {
		return simtime.Second
	}
	return m.Every
}

// Set is the per-link-direction model registry one engine run consults
// (a hybrid run shares one Set between both engines). Directions index
// as link*2 for A→B and link*2+1 for B→A. The zero Set is not usable;
// build with NewSet. Engines mutate it only at simulation instants
// (scripted degrade/restore events execute single-threaded), and shard
// clones share the backing arrays, so model state moves with entity
// groups for free.
type Set struct {
	seed   uint64
	models []Model
	states []State
	active int
}

// NewSet builds an empty registry for a topology with the given link
// count, seeded for reproducible corruption streams.
func NewSet(seed uint64, links int) *Set {
	if seed == 0 {
		seed = 1
	}
	s := &Set{
		seed:   seed,
		models: make([]Model, 2*links),
		states: make([]State, 2*links),
	}
	for d := range s.states {
		s.states[d] = NewState(seed, d)
	}
	return s
}

// dirIndex maps a (link, forward) pair to its direction slot.
func dirIndex(l netgraph.LinkID, forward bool) int {
	d := int(l) * 2
	if !forward {
		d++
	}
	return d
}

// SetDefault installs m on every link direction (nil clears all).
func (s *Set) SetDefault(m Model) {
	for l := 0; l*2 < len(s.models); l++ {
		s.SetLink(netgraph.LinkID(l), m)
	}
}

// SetLink installs m on both directions of one link (nil clears it),
// reseeding the directions' states so a reinstalled model replays the
// same stream a fresh run would see.
func (s *Set) SetLink(l netgraph.LinkID, m Model) {
	for _, fwd := range []bool{true, false} {
		d := dirIndex(l, fwd)
		if s.models[d] != nil {
			s.active--
		}
		if m != nil {
			s.active++
		}
		s.models[d] = m
		s.states[d] = NewState(s.seed, d)
	}
}

// Model returns the model on one direction (nil when pristine).
func (s *Set) Model(l netgraph.LinkID, forward bool) Model {
	return s.models[dirIndex(l, forward)]
}

// Empty reports whether no direction has a model — the engines' fast
// path: an empty Set costs one branch per frame.
func (s *Set) Empty() bool { return s == nil || s.active == 0 }

// Corrupt advances one direction's state by one transmitted frame and
// reports whether the frame was corrupted. Call only from the
// direction's owning handler (the packet engine's transmitter
// completion).
func (s *Set) Corrupt(l netgraph.LinkID, forward bool) bool {
	d := dirIndex(l, forward)
	m := s.models[d]
	if m == nil {
		return false
	}
	return m.Corrupt(&s.states[d])
}

// RateScale returns the capacity multiplier on one direction at the
// given instant (1 when pristine). Pure: safe to evaluate repeatedly.
func (s *Set) RateScale(l netgraph.LinkID, forward bool, at simtime.Time) float64 {
	if s.Empty() {
		return 1
	}
	d := dirIndex(l, forward)
	m := s.models[d]
	if m == nil {
		return 1
	}
	return m.RateScale(&s.states[d], at)
}

// LossRate returns one direction's long-run frame-loss probability.
func (s *Set) LossRate(l netgraph.LinkID, forward bool) float64 {
	if s.Empty() {
		return 0
	}
	m := s.models[dirIndex(l, forward)]
	if m == nil {
		return 0
	}
	return m.LossRate()
}

// StepEvery returns the rate re-evaluation period of one direction's
// model (0 when pristine or constant-rate).
func (s *Set) StepEvery(l netgraph.LinkID, forward bool) simtime.Duration {
	m := s.models[dirIndex(l, forward)]
	if m == nil {
		return 0
	}
	return m.StepEvery()
}

// Degrade installs m on both directions of l at runtime — the handler
// behind scenario LinkDegrade events. Passing nil restores the link.
func (s *Set) Degrade(l netgraph.LinkID, m Model) { s.SetLink(l, m) }

// Restore clears both directions of l — the handler behind scenario
// LinkRestore events.
func (s *Set) Restore(l netgraph.LinkID) { s.SetLink(l, nil) }

// Links returns the number of links the Set covers.
func (s *Set) Links() int { return len(s.models) / 2 }

// Validate reports whether m's parameters are usable, with a reason.
func Validate(m Model) error {
	switch v := m.(type) {
	case nil:
		return fmt.Errorf("linkmodel: nil model")
	case BernoulliLoss:
		if v.P < 0 || v.P >= 1 {
			return fmt.Errorf("linkmodel: BernoulliLoss.P=%g outside [0, 1)", v.P)
		}
	case GilbertElliott:
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"PGoodBad", v.PGoodBad}, {"PBadGood", v.PBadGood},
			{"LossGood", v.LossGood}, {"LossBad", v.LossBad},
		} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("linkmodel: GilbertElliott.%s=%g outside [0, 1]", p.name, p.v)
			}
		}
		if v.PGoodBad+v.PBadGood <= 0 {
			return fmt.Errorf("linkmodel: GilbertElliott needs PGoodBad+PBadGood > 0")
		}
		if v.LossBad >= 1 && v.PBadGood <= 0 {
			return fmt.Errorf("linkmodel: GilbertElliott with LossBad=1 needs PBadGood > 0")
		}
	case AdaptiveRate:
		if v.Levels < 2 {
			return fmt.Errorf("linkmodel: AdaptiveRate.Levels=%d, need >= 2", v.Levels)
		}
		if v.Floor <= 0 || v.Floor > 1 {
			return fmt.Errorf("linkmodel: AdaptiveRate.Floor=%g outside (0, 1]", v.Floor)
		}
		if v.Every <= 0 {
			return fmt.Errorf("linkmodel: AdaptiveRate.Every=%v, need > 0", v.Every)
		}
	}
	return nil
}
