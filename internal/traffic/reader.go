package traffic

import (
	"container/heap"
	"encoding/csv"
	"errors"
	"fmt"
	"io"

	"horse/internal/simtime"
)

// Reader streams a demand trace one flow at a time, in nondecreasing
// Start order, so engines can ingest workloads of any length without
// materializing them. Next returns io.EOF after the last demand; any
// other error ends the stream (engines surface it from Run). A Reader is
// single-consumer and not safe for concurrent use.
type Reader interface {
	Next() (Demand, error)
}

// ErrTraceOrder reports a demand that cannot be emitted in nondecreasing
// Start order — for the windowed CSV reader, a row displaced further than
// the lookahead window can repair.
var ErrTraceOrder = errors.New("trace out of start-time order")

// DefaultTraceWindow is the lookahead window NewCSVReader uses when the
// caller passes window <= 0: large enough to absorb the local jitter of
// logged traces, small enough to keep ingestion memory bounded.
const DefaultTraceWindow = 1024

// TraceReader adapts an in-memory trace to the streaming interface. The
// trace must already be sorted (Trace.Sort); the slice is not copied.
func TraceReader(tr Trace) Reader { return &sliceReader{tr: tr} }

type sliceReader struct {
	tr Trace
	i  int
}

func (r *sliceReader) Next() (Demand, error) {
	if r.i >= len(r.tr) {
		return Demand{}, io.EOF
	}
	d := r.tr[r.i]
	r.i++
	return d, nil
}

// heapItem pairs a parsed demand with its input sequence number.
type heapItem struct {
	d   Demand
	seq int
}

// demandHeap is a min-heap on (Start, arrival sequence): the sequence
// tiebreak keeps equal-Start rows in input order, so an already-sorted
// input streams through byte-identically to ReadCSV.
type demandHeap []heapItem

func (h demandHeap) Len() int { return len(h) }
func (h demandHeap) Less(i, j int) bool {
	if h[i].d.Start != h[j].d.Start {
		return h[i].d.Start < h[j].d.Start
	}
	return h[i].seq < h[j].seq
}
func (h demandHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *demandHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *demandHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// windowReader re-sorts a nearly-sorted source through a bounded
// lookahead heap and enforces the Reader ordering contract.
type windowReader struct {
	pull    func() (Demand, error)
	window  int
	h       demandHeap
	seq     int
	last    simtime.Time
	started bool
	err     error
	done    bool // source exhausted; drain the heap
}

func newWindowReader(pull func() (Demand, error), window int) *windowReader {
	if window <= 0 {
		window = DefaultTraceWindow
	}
	return &windowReader{pull: pull, window: window}
}

func (r *windowReader) Next() (Demand, error) {
	if r.err != nil {
		return Demand{}, r.err
	}
	for !r.done && len(r.h) < r.window {
		d, err := r.pull()
		if err == io.EOF {
			r.done = true
			break
		}
		if err != nil {
			r.err = err
			return Demand{}, err
		}
		heap.Push(&r.h, heapItem{d, r.seq})
		r.seq++
	}
	if len(r.h) == 0 {
		r.err = io.EOF
		return Demand{}, io.EOF
	}
	min := heap.Pop(&r.h).(heapItem)
	if r.started && min.d.Start < r.last {
		r.err = fmt.Errorf("traffic: row %d starts at %v, after later rows already emitted (lookahead window %d): %w",
			min.seq+1, min.d.Start, r.window, ErrTraceOrder)
		return Demand{}, r.err
	}
	r.started = true
	r.last = min.d.Start
	return min.d, nil
}

// NewCSVReader streams a trace written by WriteCSV, holding at most
// window parsed rows (DefaultTraceWindow when window <= 0) in a lookahead
// buffer that re-sorts rows displaced by less than the window. Inputs in
// nondecreasing Start order stream through in exactly ReadCSV's row
// order; a row out of order by more than the window fails with
// ErrTraceOrder. The header is validated eagerly.
func NewCSVReader(r io.Reader, window int) (Reader, error) {
	cr := csv.NewReader(r)
	hdr, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("traffic: empty trace file")
	}
	if err != nil {
		return nil, fmt.Errorf("traffic: reading trace: %w", err)
	}
	if len(hdr) != len(traceHeader) || hdr[0] != traceHeader[0] {
		return nil, fmt.Errorf("traffic: unrecognized trace header %v", hdr)
	}
	line := 1 // header consumed
	pull := func() (Demand, error) {
		row, err := cr.Read()
		if err == io.EOF {
			return Demand{}, io.EOF
		}
		if err != nil {
			return Demand{}, fmt.Errorf("traffic: reading trace: %w", err)
		}
		line++
		d, err := parseTraceRow(row, line)
		if err != nil {
			return Demand{}, err
		}
		return d, nil
	}
	return newWindowReader(pull, window), nil
}

// NewPoissonReader generates the same arrival stream as
// Generator.PoissonArrivals — identical seed and config give the
// byte-identical demand sequence — without materializing the trace. An
// invalid config (as in PoissonArrivals) yields an empty stream.
func NewPoissonReader(seed int64, cfg PoissonConfig) Reader {
	return &poissonReader{
		g:   NewGenerator(seed),
		cfg: cfg,
		ok:  len(cfg.Hosts) >= 2 && cfg.Lambda > 0 && cfg.Horizon > 0,
	}
}

type poissonReader struct {
	g   *Generator
	cfg PoissonConfig
	t   simtime.Time
	ok  bool
}

func (p *poissonReader) Next() (Demand, error) {
	if !p.ok {
		return Demand{}, io.EOF
	}
	d, ok := p.g.nextPoisson(p.cfg, &p.t)
	if !ok {
		p.ok = false
		return Demand{}, io.EOF
	}
	return d, nil
}

// MergeReaders interleaves already-sorted streams into one sorted stream,
// breaking Start ties by reader position. Any source error (other than
// io.EOF) ends the merged stream with that error.
func MergeReaders(rs ...Reader) Reader {
	m := &mergeReader{rs: rs, heads: make([]Demand, len(rs)), live: make([]bool, len(rs))}
	for i := range rs {
		m.advance(i)
	}
	return m
}

type mergeReader struct {
	rs    []Reader
	heads []Demand
	live  []bool
	err   error
}

func (m *mergeReader) advance(i int) {
	d, err := m.rs[i].Next()
	switch {
	case err == io.EOF:
		m.live[i] = false
	case err != nil:
		m.live[i] = false
		if m.err == nil {
			m.err = err
		}
	default:
		m.heads[i] = d
		m.live[i] = true
	}
}

func (m *mergeReader) Next() (Demand, error) {
	if m.err != nil {
		return Demand{}, m.err
	}
	best := -1
	for i, ok := range m.live {
		if ok && (best < 0 || m.heads[i].Start < m.heads[best].Start) {
			best = i
		}
	}
	if best < 0 {
		return Demand{}, io.EOF
	}
	d := m.heads[best]
	m.advance(best)
	if m.err != nil {
		return Demand{}, m.err
	}
	return d, nil
}
