package traffic

import (
	"bytes"
	"math"
	"testing"

	"horse/internal/header"
	"horse/internal/simtime"
)

// FuzzTraceRoundTrip fuzzes the CSV trace codec with the canonicalization
// property: any input ReadCSV accepts must survive a write→read→write
// round trip with the two writes byte-identical (WriteCSV output is a
// fixpoint of the codec), and the re-read trace must preserve the demand
// fields. Run the smoke pass with `make fuzz-smoke`; the seed corpus under
// testdata/fuzz is checked in.
func FuzzTraceRoundTrip(f *testing.F) {
	// Seeds: a generated trace with the interesting shapes (inf size, inf
	// rate, TCP, sub-second starts), a handcrafted minimal trace, and two
	// malformed inputs that must be rejected gracefully.
	seed := Trace{
		{
			Key: header.FlowKey{EthType: header.EthTypeIPv4, Proto: header.ProtoUDP, SrcPort: 40000, DstPort: 80},
			Src: 3, Dst: 7, Start: simtime.Time(1500 * simtime.Microsecond),
			SizeBits: 1e6, RateBps: 5e7,
		},
		{
			Key: header.FlowKey{EthType: header.EthTypeIPv4, Proto: header.ProtoTCP, SrcPort: 40001, DstPort: 443},
			Src: 1, Dst: 2, Start: 0,
			SizeBits: math.Inf(1), RateBps: math.Inf(1),
			Duration: 2 * simtime.Second, TCP: true,
		},
	}
	var buf bytes.Buffer
	if err := seed.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("start_s,src,dst,proto,src_port,dst_port,size_bits,rate_bps,duration_s,tcp\n0,0,1,17,1000,80,inf,inf,1.5,true\n"))
	f.Add([]byte("start_s,src,dst,proto,src_port,dst_port,size_bits,rate_bps,duration_s,tcp\n0,0,1,17,1000,80,1e6,notafloat,0,false\n"))
	f.Add([]byte("not,a,trace\n1,2,3\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it doesn't panic
		}
		var out1 bytes.Buffer
		if err := tr.WriteCSV(&out1); err != nil {
			t.Fatalf("WriteCSV failed on accepted trace: %v", err)
		}
		tr2, err := ReadCSV(bytes.NewReader(out1.Bytes()))
		if err != nil {
			t.Fatalf("re-read of written trace failed: %v\n%s", err, out1.String())
		}
		if len(tr2) != len(tr) {
			t.Fatalf("round trip changed length: %d -> %d", len(tr), len(tr2))
		}
		for i := range tr {
			a, b := tr[i], tr2[i]
			if a.Src != b.Src || a.Dst != b.Dst || a.Start != b.Start ||
				a.Duration != b.Duration || a.TCP != b.TCP || a.Key != b.Key {
				t.Fatalf("demand %d changed: %+v -> %+v", i, a, b)
			}
			if !floatEq(a.SizeBits, b.SizeBits) || !floatEq(a.RateBps, b.RateBps) {
				t.Fatalf("demand %d floats changed: size %g->%g rate %g->%g",
					i, a.SizeBits, b.SizeBits, a.RateBps, b.RateBps)
			}
		}
		var out2 bytes.Buffer
		if err := tr2.WriteCSV(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("WriteCSV is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s",
				out1.String(), out2.String())
		}
	})
}

// floatEq treats NaN as equal to itself (a NaN field must round-trip to
// NaN, which Go's == cannot express).
func floatEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}
