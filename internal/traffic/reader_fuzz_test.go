package traffic

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"sort"
	"testing"
)

// FuzzStreamVsReadCSV fuzzes the windowed streaming reader against the
// all-up-front ReadCSV with the equivalence property: on any input
// ReadCSV accepts, the streamed sequence must equal the stable
// sort-by-Start of the parsed trace — and when the input is already in
// nondecreasing order (the Reader contract), it must equal ReadCSV's row
// order exactly. The only error the stream may add on an accepted input
// is ErrTraceOrder, and only when the input genuinely is out of order.
// Run the smoke pass with `make fuzz-smoke`; the seed corpus under
// testdata/fuzz is checked in.
func FuzzStreamVsReadCSV(f *testing.F) {
	hdr := "start_s,src,dst,proto,src_port,dst_port,size_bits,rate_bps,duration_s,tcp\n"
	f.Add([]byte(hdr+"0,0,1,17,1000,80,1e6,1e6,0,false\n0.5,1,0,6,1001,443,inf,inf,2,true\n"), uint16(2))
	f.Add([]byte(hdr+"0.5,1,0,6,1001,443,inf,inf,2,true\n0,0,1,17,1000,80,1e6,1e6,0,false\n"), uint16(1))
	f.Add([]byte(hdr+"3,2,3,17,1,2,1,1,0,false\n1,3,2,17,2,1,1,1,0,false\n2,2,3,6,3,4,9,9,1,true\n"), uint16(4))
	f.Add([]byte("not,a,trace\n1,2,3\n"), uint16(3))
	f.Add([]byte(hdr+"0,0,1,17,1000,80,1e6,notafloat,0,false\n"), uint16(8))

	f.Fuzz(func(t *testing.T, data []byte, window uint16) {
		w := int(window%64) + 1
		base, baseErr := ReadCSV(bytes.NewReader(data))

		r, err := NewCSVReader(bytes.NewReader(data), w)
		if err != nil {
			// Header-level rejection: ReadCSV must reject too (the
			// acceptance sets are identical).
			if baseErr == nil {
				t.Fatalf("NewCSVReader rejected (%v) what ReadCSV accepted", err)
			}
			return
		}
		var got Trace
		var streamErr error
		for {
			d, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				streamErr = err
				break
			}
			got = append(got, d)
		}

		if baseErr != nil {
			// ReadCSV rejected the input; the stream may emit a valid
			// prefix first but must not end cleanly.
			if streamErr == nil {
				t.Fatalf("stream accepted input ReadCSV rejected: %v", baseErr)
			}
			return
		}
		sorted := isNondecreasing(base)
		if streamErr != nil {
			if !errors.Is(streamErr, ErrTraceOrder) {
				t.Fatalf("stream error %v on input ReadCSV accepted", streamErr)
			}
			if sorted {
				t.Fatal("ErrTraceOrder on a nondecreasing input")
			}
			return
		}
		want := append(Trace(nil), base...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Start < want[j].Start })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("streamed sequence differs from stable-sorted ReadCSV (window %d, %d rows)", w, len(base))
		}
		if sorted && !reflect.DeepEqual(got, base) {
			t.Fatal("sorted input: streamed sequence differs from ReadCSV row order")
		}
	})
}

func isNondecreasing(tr Trace) bool {
	for i := 1; i < len(tr); i++ {
		if tr[i].Start < tr[i-1].Start {
			return false
		}
	}
	return true
}
