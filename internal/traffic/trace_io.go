package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/simtime"
)

// traceHeader is the CSV column set, stable across versions.
var traceHeader = []string{
	"start_s", "src", "dst", "proto", "src_port", "dst_port",
	"size_bits", "rate_bps", "duration_s", "tcp",
}

// WriteCSV serializes the trace. Infinite sizes/rates are written as "inf".
func (tr Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return err
	}
	ff := func(v float64) string {
		if math.IsInf(v, 1) {
			return "inf"
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for _, d := range tr {
		rec := []string{
			strconv.FormatFloat(d.Start.Seconds(), 'g', -1, 64),
			strconv.Itoa(int(d.Src)),
			strconv.Itoa(int(d.Dst)),
			strconv.Itoa(int(d.Key.Proto)),
			strconv.Itoa(int(d.Key.SrcPort)),
			strconv.Itoa(int(d.Key.DstPort)),
			ff(d.SizeBits),
			ff(d.RateBps),
			strconv.FormatFloat(d.Duration.Seconds(), 'g', -1, 64),
			strconv.FormatBool(d.TCP),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. Flow keys are rebuilt from
// the addressing plan.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traffic: reading trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("traffic: empty trace file")
	}
	if len(rows[0]) != len(traceHeader) || rows[0][0] != traceHeader[0] {
		return nil, fmt.Errorf("traffic: unrecognized trace header %v", rows[0])
	}
	var tr Trace
	for ln, row := range rows[1:] {
		d, err := parseTraceRow(row, ln+2)
		if err != nil {
			return nil, err
		}
		tr = append(tr, d)
	}
	return tr, nil
}

// parseTraceRow decodes one data row (line is the 1-based file line, for
// errors). Shared by ReadCSV and the windowed NewCSVReader so both accept
// exactly the same inputs.
func parseTraceRow(row []string, line int) (Demand, error) {
	fail := func(err error) (Demand, error) {
		return Demand{}, fmt.Errorf("traffic: trace line %d: %w", line, err)
	}
	pf := func(s string) (float64, error) {
		if s == "inf" {
			return math.Inf(1), nil
		}
		return strconv.ParseFloat(s, 64)
	}
	start, err := strconv.ParseFloat(row[0], 64)
	if err != nil {
		return fail(err)
	}
	src, err := strconv.Atoi(row[1])
	if err != nil {
		return fail(err)
	}
	dst, err := strconv.Atoi(row[2])
	if err != nil {
		return fail(err)
	}
	proto, err := strconv.Atoi(row[3])
	if err != nil {
		return fail(err)
	}
	sport, err := strconv.Atoi(row[4])
	if err != nil {
		return fail(err)
	}
	dport, err := strconv.Atoi(row[5])
	if err != nil {
		return fail(err)
	}
	size, err := pf(row[6])
	if err != nil {
		return fail(err)
	}
	rate, err := pf(row[7])
	if err != nil {
		return fail(err)
	}
	durS, err := strconv.ParseFloat(row[8], 64)
	if err != nil {
		return fail(err)
	}
	tcp, err := strconv.ParseBool(row[9])
	if err != nil {
		return fail(err)
	}
	d := Demand{
		Src: netgraph.NodeID(src), Dst: netgraph.NodeID(dst),
		Start:    simtime.AtSeconds(start),
		SizeBits: size, RateBps: rate,
		Duration: simtime.FromSeconds(durS),
		TCP:      tcp,
	}
	d.Key = keyFor(d, uint8(proto), uint16(sport), uint16(dport))
	return d, nil
}

func keyFor(d Demand, proto uint8, sport, dport uint16) header.FlowKey {
	k := header.FlowKey{
		EthType: header.EthTypeIPv4,
		Proto:   proto,
		SrcPort: sport,
		DstPort: dport,
	}
	k.EthSrc = header.MACFromUint64(uint64(d.Src) + 1)
	k.EthDst = header.MACFromUint64(uint64(d.Dst) + 1)
	k.IPSrc = header.IPv4FromUint32(0x0a000000 | uint32(d.Src)&0x00ffffff)
	k.IPDst = header.IPv4FromUint32(0x0a000000 | uint32(d.Dst)&0x00ffffff)
	return k
}
