package traffic

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"horse/internal/netgraph"
	"horse/internal/simtime"
)

func hostIDs(n int) []netgraph.NodeID {
	out := make([]netgraph.NodeID, n)
	for i := range out {
		out[i] = netgraph.NodeID(i + 100)
	}
	return out
}

func TestParetoSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Pareto{XMin: 1000, Alpha: 1.5}
	var below, n float64
	for i := 0; i < 20000; i++ {
		x := p.Sample(rng)
		if x < p.XMin {
			t.Fatalf("sample %g below XMin", x)
		}
		// CDF check at 2*XMin: P(X <= 2x_m) = 1 - 2^-alpha.
		if x <= 2*p.XMin {
			below++
		}
		n++
	}
	want := 1 - math.Pow(2, -p.Alpha)
	if got := below / n; math.Abs(got-want) > 0.02 {
		t.Errorf("CDF(2*xmin) = %g, want ~%g", got, want)
	}
}

func TestLogNormalSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := LogNormal{Mu: 10, Sigma: 1}
	var sumLog float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := l.Sample(rng)
		if x <= 0 {
			t.Fatal("non-positive sample")
		}
		sumLog += math.Log(x)
	}
	if got := sumLog / n; math.Abs(got-10) > 0.05 {
		t.Errorf("mean of ln(X) = %g, want ~10", got)
	}
}

func TestFixedSize(t *testing.T) {
	if FixedSize(42).Sample(nil) != 42 {
		t.Error("FixedSize broken")
	}
}

func TestPoissonArrivals(t *testing.T) {
	g := NewGenerator(7)
	tr := g.PoissonArrivals(PoissonConfig{
		Hosts:       hostIDs(10),
		Lambda:      100,
		Horizon:     10 * simtime.Second,
		Sizes:       FixedSize(1e6),
		TCPFraction: 0.5,
		CBRRateBps:  1e6,
	})
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	// Expect ~1000 flows; Poisson stddev ~32.
	if len(tr) < 800 || len(tr) > 1200 {
		t.Errorf("flow count = %d, want ~1000", len(tr))
	}
	if !sort.SliceIsSorted(tr, func(i, j int) bool { return tr[i].Start < tr[j].Start }) {
		t.Error("trace not sorted")
	}
	var tcp, cbr int
	for _, d := range tr {
		if d.Src == d.Dst {
			t.Fatal("self flow")
		}
		if d.Start > simtime.Time(10*simtime.Second) {
			t.Fatal("arrival beyond horizon")
		}
		if d.TCP {
			tcp++
			if !math.IsInf(d.RateBps, 1) {
				t.Fatal("TCP flow should be backlogged")
			}
		} else {
			cbr++
			if d.RateBps != 1e6 {
				t.Fatal("CBR rate wrong")
			}
		}
	}
	if tcp == 0 || cbr == 0 {
		t.Errorf("mix = %d tcp / %d cbr, want both", tcp, cbr)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	mk := func() Trace {
		return NewGenerator(99).PoissonArrivals(PoissonConfig{
			Hosts: hostIDs(4), Lambda: 50, Horizon: simtime.Second, Sizes: FixedSize(1e6),
		})
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("demand %d differs", i)
		}
	}
}

func TestPoissonDegenerateInputs(t *testing.T) {
	g := NewGenerator(1)
	if g.PoissonArrivals(PoissonConfig{Hosts: hostIDs(1), Lambda: 1, Horizon: simtime.Second, Sizes: FixedSize(1)}) != nil {
		t.Error("single host should produce no flows")
	}
	if g.PoissonArrivals(PoissonConfig{Hosts: hostIDs(2), Lambda: 0, Horizon: simtime.Second, Sizes: FixedSize(1)}) != nil {
		t.Error("zero lambda should produce no flows")
	}
}

func TestGravityMatrix(t *testing.T) {
	hosts := hostIDs(4)
	w := []float64{4, 2, 1, 1}
	m := Gravity(hosts, w, 8e9)
	if math.Abs(m.Total()-8e9) > 1 {
		t.Errorf("total = %g, want 8e9", m.Total())
	}
	for i := range hosts {
		if m.Rates[i][i] != 0 {
			t.Error("diagonal must be zero")
		}
	}
	// Proportionality: r(0→1)/r(2→3) = (4·2)/(1·1) = 8.
	if got := m.Rates[0][1] / m.Rates[2][3]; math.Abs(got-8) > 1e-9 {
		t.Errorf("gravity ratio = %g, want 8", got)
	}
	// Symmetric weights give a symmetric matrix.
	if m.Rates[2][3] != m.Rates[3][2] {
		t.Error("equal-weight pair should be symmetric")
	}
}

func TestGravityPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths must panic")
		}
	}()
	Gravity(hostIDs(3), []float64{1, 2}, 1e9)
}

func TestParetoWeights(t *testing.T) {
	w := ParetoWeights(100, 1.2, 5)
	if len(w) != 100 {
		t.Fatal("wrong length")
	}
	for _, v := range w {
		if v < 1 {
			t.Fatal("weight below xmin")
		}
	}
	w2 := ParetoWeights(100, 1.2, 5)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestDiurnal(t *testing.T) {
	d := Diurnal{Base: 1, Amplitude: 0.5, Period: 24 * simtime.Hour}
	if got := d.At(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("At(0) = %g", got)
	}
	peak := d.At(simtime.Time(6 * simtime.Hour))
	if math.Abs(peak-1.5) > 1e-9 {
		t.Errorf("peak = %g, want 1.5", peak)
	}
	trough := d.At(simtime.Time(18 * simtime.Hour))
	if math.Abs(trough-0.5) > 1e-9 {
		t.Errorf("trough = %g, want 0.5", trough)
	}
	// Clamps at zero.
	deep := Diurnal{Base: 0.1, Amplitude: 1, Period: 24 * simtime.Hour}
	if deep.At(simtime.Time(18*simtime.Hour)) != 0 {
		t.Error("negative multiplier not clamped")
	}
	if Flat.At(simtime.Time(3*simtime.Hour)) != 1 {
		t.Error("Flat should be identity")
	}
}

func TestReplay(t *testing.T) {
	hosts := hostIDs(3)
	m := Gravity(hosts, []float64{1, 1, 1}, 6e9)
	g := NewGenerator(3)
	tr := g.Replay(m, ReplayConfig{
		Epoch:   simtime.Second,
		Horizon: 3 * simtime.Second,
		Mod:     Flat,
	})
	// 3 epochs × 6 nonzero entries.
	if len(tr) != 18 {
		t.Fatalf("replay flows = %d, want 18", len(tr))
	}
	for _, d := range tr {
		if !math.IsInf(d.SizeBits, 1) || d.Duration != simtime.Second {
			t.Fatal("replay flows must be epoch CBR")
		}
		if d.RateBps <= 0 {
			t.Fatal("zero-rate flow emitted")
		}
	}
	// Diurnal modulation changes epoch rates over time.
	tr = NewGenerator(3).Replay(m, ReplayConfig{
		Epoch:   simtime.Hour,
		Horizon: 24 * simtime.Hour,
		Mod:     Diurnal{Base: 1, Amplitude: 0.5, Period: 24 * simtime.Hour},
	})
	byEpoch := map[simtime.Time]float64{}
	for _, d := range tr {
		byEpoch[d.Start] += d.RateBps
	}
	if len(byEpoch) != 24 {
		t.Fatalf("epochs = %d", len(byEpoch))
	}
	if byEpoch[simtime.Time(6*simtime.Hour)] <= byEpoch[simtime.Time(18*simtime.Hour)] {
		t.Error("diurnal peak not higher than trough")
	}
}

func TestReplayMinRate(t *testing.T) {
	hosts := hostIDs(2)
	m := NewMatrix(hosts)
	m.Rates[0][1] = 100 // below floor
	m.Rates[1][0] = 1e9 // above
	tr := NewGenerator(1).Replay(m, ReplayConfig{Epoch: simtime.Second, Horizon: simtime.Second, Mod: Flat, MinRateBps: 1000})
	if len(tr) != 1 || tr[0].RateBps != 1e9 {
		t.Errorf("MinRateBps filter broken: %v", tr)
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	g := NewGenerator(11)
	orig := g.PoissonArrivals(PoissonConfig{
		Hosts: hostIDs(5), Lambda: 20, Horizon: simtime.Second,
		Sizes: Pareto{XMin: 1e5, Alpha: 1.3}, TCPFraction: 0.7, CBRRateBps: 5e6,
	})
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost flows: %d vs %d", len(got), len(orig))
	}
	for i := range got {
		a, b := got[i], orig[i]
		if a.Src != b.Src || a.Dst != b.Dst || a.TCP != b.TCP || a.Key != b.Key {
			t.Fatalf("flow %d identity mismatch:\n got %+v\nwant %+v", i, a, b)
		}
		if math.Abs(a.SizeBits-b.SizeBits) > 1 && !(math.IsInf(a.SizeBits, 1) && math.IsInf(b.SizeBits, 1)) {
			t.Fatalf("flow %d size mismatch", i)
		}
		if a.Start.Sub(b.Start) > simtime.Microsecond || b.Start.Sub(a.Start) > simtime.Microsecond {
			t.Fatalf("flow %d start mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("bogus,header\n")); err == nil {
		t.Error("bad header accepted")
	}
	bad := "start_s,src,dst,proto,src_port,dst_port,size_bits,rate_bps,duration_s,tcp\nnot_a_number,1,2,6,1,2,3,4,5,true\n"
	if _, err := ReadCSV(bytes.NewBufferString(bad)); err == nil {
		t.Error("bad number accepted")
	}
}

func TestTotalBits(t *testing.T) {
	tr := Trace{
		{SizeBits: 100},
		{SizeBits: math.Inf(1)},
		{SizeBits: 200},
	}
	if tr.TotalBits() != 300 {
		t.Errorf("TotalBits = %g", tr.TotalBits())
	}
}
