package traffic

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"horse/internal/simtime"
)

// drain pulls a reader to exhaustion, returning the demands and the
// terminal error (io.EOF on clean end).
func drain(r Reader) (Trace, error) {
	var tr Trace
	for {
		d, err := r.Next()
		if err != nil {
			return tr, err
		}
		tr = append(tr, d)
	}
}

func sampleTrace(n int) Trace {
	g := NewGenerator(7)
	return g.PoissonArrivals(PoissonConfig{
		Hosts:       hostIDs(8),
		Lambda:      5000,
		Horizon:     simtime.FromSeconds(float64(n) / 5000 * 2),
		Sizes:       Pareto{XMin: 1e4, Alpha: 1.3},
		TCPFraction: 0.5,
		CBRRateBps:  1e6,
		DstPorts:    []uint16{80, 443},
	})
}

func TestTraceReader(t *testing.T) {
	tr := sampleTrace(50)
	got, err := drain(TraceReader(tr))
	if err != io.EOF {
		t.Fatalf("terminal error = %v, want io.EOF", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("TraceReader sequence differs from the trace")
	}
	// A drained reader stays at EOF.
	if _, err := TraceReader(nil).Next(); err != io.EOF {
		t.Fatalf("empty TraceReader: %v, want io.EOF", err)
	}
}

func TestCSVReaderMatchesReadCSV(t *testing.T) {
	tr := sampleTrace(200)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	base, err := ReadCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 2, 7, 0} {
		r, err := NewCSVReader(bytes.NewReader(data), window)
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		got, terr := drain(r)
		if terr != io.EOF {
			t.Fatalf("window %d: terminal error %v", window, terr)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("window %d: streamed sequence differs from ReadCSV", window)
		}
	}
}

func TestCSVReaderReordersWithinWindow(t *testing.T) {
	tr := sampleTrace(100)
	// Shuffle rows locally: each row moves at most 3 positions.
	shuffled := append(Trace(nil), tr...)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i+3 < len(shuffled); i += 4 {
		j := i + rng.Intn(4)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	var buf bytes.Buffer
	if err := shuffled.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	base, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewCSVReader(bytes.NewReader(buf.Bytes()), 8)
	if err != nil {
		t.Fatal(err)
	}
	got, terr := drain(r)
	if terr != io.EOF {
		t.Fatalf("terminal error %v", terr)
	}
	want := append(Trace(nil), base...)
	want.Sort()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("windowed reader did not stable-sort a locally shuffled trace")
	}
}

func TestCSVReaderRejectsBeyondWindow(t *testing.T) {
	tr := sampleTrace(100)
	// Move the earliest row to the end: displaced far beyond any small
	// window.
	moved := append(append(Trace(nil), tr[1:]...), tr[0])
	var buf bytes.Buffer
	if err := moved.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewCSVReader(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	_, terr := drain(r)
	if !errors.Is(terr, ErrTraceOrder) {
		t.Fatalf("terminal error %v, want ErrTraceOrder", terr)
	}
	// The error is sticky.
	if _, err := r.Next(); !errors.Is(err, ErrTraceOrder) {
		t.Fatalf("after error: %v, want sticky ErrTraceOrder", err)
	}
}

func TestCSVReaderHeaderErrors(t *testing.T) {
	if _, err := NewCSVReader(strings.NewReader(""), 0); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := NewCSVReader(strings.NewReader("not,a,trace\n"), 0); err == nil {
		t.Error("bad header: want error")
	}
}

func TestCSVReaderBadRow(t *testing.T) {
	data := strings.Join(traceHeader, ",") + "\n0,0,1,17,1000,80,1e6,notafloat,0,false\n"
	r, err := NewCSVReader(strings.NewReader(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, terr := drain(r); terr == io.EOF || terr == nil {
		t.Fatal("bad row: want parse error, got clean end")
	}
}

func TestPoissonReaderMatchesPoissonArrivals(t *testing.T) {
	cfgs := []PoissonConfig{
		{Hosts: hostIDs(4), Lambda: 1000, Horizon: simtime.FromSeconds(0.1),
			Sizes: FixedSize(1e5), TCPFraction: 1},
		{Hosts: hostIDs(16), Lambda: 300, Horizon: simtime.FromSeconds(0.5),
			Sizes: Pareto{XMin: 1e4, Alpha: 1.5}, TCPFraction: 0.3,
			CBRRateBps: 2e6, DstPorts: []uint16{80, 443, 8080}},
	}
	for ci, cfg := range cfgs {
		for seed := int64(1); seed <= 3; seed++ {
			want := NewGenerator(seed).PoissonArrivals(cfg)
			got, terr := drain(NewPoissonReader(seed, cfg))
			if terr != io.EOF {
				t.Fatalf("cfg %d seed %d: terminal error %v", ci, seed, terr)
			}
			if len(got) == 0 {
				t.Fatalf("cfg %d seed %d: empty stream", ci, seed)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cfg %d seed %d: streamed arrivals differ from PoissonArrivals", ci, seed)
			}
		}
	}
	// Invalid config: empty stream, like PoissonArrivals' nil trace.
	if _, err := NewPoissonReader(1, PoissonConfig{}).Next(); err != io.EOF {
		t.Fatalf("invalid config: %v, want io.EOF", err)
	}
}

func TestMergeReaders(t *testing.T) {
	a := sampleTrace(40)
	var b Trace
	for i, d := range sampleTrace(40) {
		d.Start = d.Start.Add(simtime.Duration(i%3) * 100)
		b = append(b, d)
	}
	b.Sort()
	got, terr := drain(MergeReaders(TraceReader(a), TraceReader(b)))
	if terr != io.EOF {
		t.Fatalf("terminal error %v", terr)
	}
	if len(got) != len(a)+len(b) {
		t.Fatalf("merged %d demands, want %d", len(got), len(a)+len(b))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatalf("merged stream decreases at %d", i)
		}
	}
	// Ties break toward the earlier reader: merging a trace with itself
	// keeps pairs adjacent in reader order.
	dup, terr := drain(MergeReaders(TraceReader(a), TraceReader(a)))
	if terr != io.EOF {
		t.Fatal(terr)
	}
	for i := 0; i < len(a); i++ {
		if !reflect.DeepEqual(dup[2*i], a[i]) || !reflect.DeepEqual(dup[2*i+1], a[i]) {
			t.Fatalf("self-merge not pairwise at %d", i)
		}
	}
	if _, err := MergeReaders().Next(); err != io.EOF {
		t.Fatalf("empty merge: %v, want io.EOF", err)
	}
}
