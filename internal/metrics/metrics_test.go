package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should yield 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Errorf("StdDev = %g", StdDev(xs))
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("single element StdDev should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	// Interpolation between points.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interp P50 = %g", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated (Percentile copies).
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("input mutated")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, -2, 7, 0}
	if Min(xs) != -2 || Max(xs) != 7 {
		t.Error("min/max wrong")
	}
	if Median([]float64{1, 3, 2}) != 2 {
		t.Error("median wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Errorf("RelErr = %g", RelErr(110, 100))
	}
	if RelErr(5, 0) != 5 {
		t.Error("zero reference should score |got|")
	}
	if RelErr(-90, -100) != 0.1 {
		t.Error("negative values mishandled")
	}
}

func TestRMSEAndMeanRelErr(t *testing.T) {
	got := []float64{1, 2, 3}
	want := []float64{1, 2, 5}
	if r := RMSE(got, want); math.Abs(r-2/math.Sqrt(3)) > 1e-12 {
		t.Errorf("RMSE = %g", r)
	}
	if RMSE(nil, nil) != 0 {
		t.Error("empty RMSE")
	}
	if m := MeanRelErr(got, want); math.Abs(m-(0+0+0.4)/3) > 1e-12 {
		t.Errorf("MeanRelErr = %g", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestW1Distance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := W1Distance(a, a); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	// Shifting a distribution by c gives distance c.
	b := make([]float64, len(a))
	for i := range a {
		b[i] = a[i] + 10
	}
	if d := W1Distance(a, b); math.Abs(d-10) > 1e-9 {
		t.Errorf("shift distance = %g, want 10", d)
	}
	// Symmetry.
	if W1Distance(a, b) != W1Distance(b, a) {
		t.Error("not symmetric")
	}
	if W1Distance(nil, a) != 0 {
		t.Error("empty input should be 0")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 || s.Mean != 5.5 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 5.5 {
		t.Errorf("P50 = %g", s.P50)
	}
	if s.P99 <= s.P90 || s.P90 <= s.P50 {
		t.Error("percentiles not ordered")
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	prop := func(p1, p2 uint8) bool {
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: W1 distance satisfies the triangle inequality on small samples.
func TestW1TriangleProperty(t *testing.T) {
	prop := func(a, b, c [6]int8) bool {
		fa := make([]float64, 6)
		fb := make([]float64, 6)
		fc := make([]float64, 6)
		for i := 0; i < 6; i++ {
			fa[i], fb[i], fc[i] = float64(a[i]), float64(b[i]), float64(c[i])
		}
		ab := W1Distance(fa, fb)
		bc := W1Distance(fb, fc)
		ac := W1Distance(fa, fc)
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFCTStretch(t *testing.T) {
	if got := FCTStretch([]float64{2, 4}, []float64{1, 2}); got != 2 {
		t.Errorf("stretch = %g, want 2", got)
	}
	if got := FCTStretch(nil, nil); got != 1 {
		t.Errorf("no data: stretch = %g, want 1", got)
	}
	if got := FCTStretch([]float64{5}, nil); got != 1 {
		t.Errorf("no baseline: stretch = %g, want 1", got)
	}
	// Baseline completed flows but the scenario completed none: the worst
	// outcome must not report a flattering 1.
	if got := FCTStretch(nil, []float64{1, 2}); !math.IsInf(got, 1) {
		t.Errorf("total loss: stretch = %g, want +Inf", got)
	}
	// All-zero samples are data (instant transfers), not absence: they
	// must compare as ratios, not trip the sentinels.
	if got := FCTStretch([]float64{0, 0}, []float64{1}); got != 0 {
		t.Errorf("instant scenario completions: stretch = %g, want 0", got)
	}
	if got := FCTStretch([]float64{1}, []float64{0}); got != 1 {
		t.Errorf("degenerate all-zero baseline: stretch = %g, want 1", got)
	}
}
