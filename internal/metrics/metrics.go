// Package metrics provides the summary statistics and error measures used
// by the experiment harness: means, percentiles, relative errors, RMSE, and
// a distribution distance for accuracy scoring of the flow-level simulator
// against the packet-level baseline.
package metrics

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics. Input need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// RelErr returns |got-want| / |want|, or |got| when want is zero (so a
// spurious nonzero against a zero reference still scores as error).
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// RMSE returns the root-mean-square error between two equally long series.
// It panics on length mismatch — a harness bug, not a data condition.
func RMSE(got, want []float64) float64 {
	if len(got) != len(want) {
		panic("metrics: RMSE length mismatch")
	}
	if len(got) == 0 {
		return 0
	}
	var s float64
	for i := range got {
		d := got[i] - want[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(got)))
}

// MeanRelErr returns the mean of element-wise relative errors.
func MeanRelErr(got, want []float64) float64 {
	if len(got) != len(want) {
		panic("metrics: MeanRelErr length mismatch")
	}
	if len(got) == 0 {
		return 0
	}
	var s float64
	for i := range got {
		s += RelErr(got[i], want[i])
	}
	return s / float64(len(got))
}

// FCTStretch is the ratio of mean flow completion times between a
// disturbed (scenario) run and its failure-free baseline: 1 means failures
// cost nothing, 2 means completions took twice as long on average. With no
// baseline samples there is nothing to compare (1); baseline samples
// against an empty scenario is the worst possible outcome — every
// comparable flow was lost — and reports +Inf, never a flattering 1.
// Sentinels key on sample counts, not means, so all-zero FCT samples
// (instant transfers) still compare as ratios.
func FCTStretch(scenario, baseline []float64) float64 {
	if len(baseline) == 0 {
		return 1
	}
	if len(scenario) == 0 {
		return math.Inf(1)
	}
	b := Mean(baseline)
	if b == 0 {
		return 1 // degenerate baseline of instant completions
	}
	return Mean(scenario) / b
}

// W1Distance returns the first Wasserstein (earth mover's) distance between
// two empirical distributions, the accuracy score used for FCT comparisons:
// it is the average horizontal gap between the two CDFs.
func W1Distance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	// Evaluate both quantile functions on a common grid.
	const grid = 512
	var sum float64
	for i := 0; i < grid; i++ {
		q := (float64(i) + 0.5) / grid
		sum += math.Abs(quantile(as, q) - quantile(bs, q))
	}
	return sum / grid
}

func quantile(sorted []float64, q float64) float64 {
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
	P50, P90     float64
	P99          float64
}

// Summarize computes a Summary of the sample.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Mean: Mean(xs), StdDev: StdDev(xs),
		Min: Min(xs), Max: Max(xs),
		P50: Percentile(xs, 50), P90: Percentile(xs, 90), P99: Percentile(xs, 99),
	}
}
