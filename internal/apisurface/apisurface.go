// Package apisurface renders the exported API surface of a Go package as
// a deterministic, diffable text listing — the backing of the checked-in
// api/horse.txt golden file and the test that gates accidental breaking
// changes to the public façade. It works on syntax alone (go/parser +
// go/printer, no type checking), which is exactly right for a façade
// package made of aliases, thin constructors, and option functions: every
// exported declaration's shape is in the source.
package apisurface

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Header is the first line of a rendered surface, parameterized by the
// package name parsed from the sources.
func Header(pkg string) string {
	return fmt.Sprintf("# API surface of package %s. Regenerate with `make api`.", pkg)
}

// Surface parses the (single) Go package in dir — test files excluded —
// and renders one line per exported declaration: constants, variables,
// type declarations (aliases included), functions, and methods on
// exported receivers. Lines are sorted, so the output is independent of
// declaration order and file layout; any change to an exported name or
// signature changes the text.
func Surface(dir string) (string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return "", err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return "", fmt.Errorf("apisurface: multiple packages in %s: %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return "", fmt.Errorf("apisurface: no Go files in %s", dir)
	}

	var lines []string
	for _, f := range files {
		for _, decl := range f.Decls {
			lines = append(lines, renderDecl(fset, decl)...)
		}
	}
	sort.Strings(lines)
	return Header(pkgName) + "\n" + strings.Join(lines, "\n") + "\n", nil
}

// renderDecl renders the exported parts of one top-level declaration.
func renderDecl(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		fn := *d
		fn.Doc, fn.Body = nil, nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				s := *sp
				s.Doc, s.Comment = nil, nil
				out = append(out, "type "+render(fset, &s))
			case *ast.ValueSpec:
				if line, ok := renderValueSpec(fset, d.Tok, sp); ok {
					out = append(out, line)
				}
			}
		}
		return out
	}
	return nil
}

// renderValueSpec renders a const/var spec when it declares at least one
// exported name (unexported names in the same spec are kept — they are
// part of the declaration's shape and rare in a façade).
func renderValueSpec(fset *token.FileSet, tok token.Token, sp *ast.ValueSpec) (string, bool) {
	exported := false
	for _, n := range sp.Names {
		if n.IsExported() {
			exported = true
		}
	}
	if !exported {
		return "", false
	}
	s := *sp
	s.Doc, s.Comment = nil, nil
	return tok.String() + " " + render(fset, &s), true
}

// exportedReceiver reports whether a function is package-level or a
// method on an exported named type.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// render pretty-prints a node on one line (the printer emits no trailing
// newline for expressions; multi-line literals collapse via field lists
// staying as-written, which is fine — the text only needs determinism).
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
