package apisurface

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSurfaceRendersExportedDeclsOnly(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `package demo

// Exported is documented.
type Exported = int

type hidden struct{}

const (
	Visible   = 1
	invisible = 2
)

var NewThing = newThing

func newThing() int { return 0 }

// Do does.
func Do(x int, ys ...string) (int, error) { return x, nil }

func (h hidden) Method() {}

type Box struct{ N int }

func (b *Box) Get() int { return b.N }
`)
	write(t, dir, "a_test.go", `package demo

func TestOnly() {}
`)
	got, err := Surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"type Exported = int",
		"const Visible = 1",
		"var NewThing = newThing",
		"func Do(x int, ys ...string) (int, error)",
		"func (b *Box) Get() int",
		"type Box struct{ N int }",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("surface missing %q:\n%s", want, got)
		}
	}
	for _, reject := range []string{"hidden", "invisible", "newThing()", "TestOnly"} {
		for _, line := range strings.Split(got, "\n") {
			if strings.HasPrefix(line, "func "+reject) || strings.Contains(line, " "+reject+" =") ||
				strings.Contains(line, "type "+reject) || strings.Contains(line, "(h hidden)") {
				t.Errorf("surface leaked unexported decl in %q", line)
			}
		}
	}
}

func TestSurfaceIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "b.go", "package demo\n\nfunc B() {}\n\nfunc A() {}\n")
	write(t, dir, "a.go", "package demo\n\nfunc C() {}\n")
	s1, err := Surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("same input, different surfaces")
	}
	lines := strings.Split(strings.TrimSpace(s1), "\n")
	if len(lines) != 4 || lines[1] != "func A()" || lines[2] != "func B()" || lines[3] != "func C()" {
		t.Fatalf("lines not sorted/complete: %q", lines)
	}
}

func TestSurfaceOnRealFacade(t *testing.T) {
	got, err := Surface("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"func New(topo *Topology, opts ...Option) (Engine, error)",
		"type Engine = scenario.Engine",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("façade surface missing %q", want)
		}
	}
}
