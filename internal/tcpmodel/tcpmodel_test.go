package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"

	"horse/internal/simtime"
)

func TestInitialRate(t *testing.T) {
	p := Params{RTT: 10 * simtime.Millisecond, MSS: 1460, InitialWindow: 10}
	// 10 * 1460 * 8 bits per 10ms = 11.68 Mbps.
	want := 10.0 * 1460 * 8 / 0.010
	if got := p.InitialRate(); math.Abs(got-want) > 1 {
		t.Errorf("InitialRate = %g, want %g", got, want)
	}
}

func TestSlowStartDoubling(t *testing.T) {
	p := DefaultParams()
	r0 := p.SlowStartRate(0)
	r1 := p.SlowStartRate(p.RTT)
	r2 := p.SlowStartRate(2 * p.RTT)
	if math.Abs(r1/r0-2) > 1e-9 || math.Abs(r2/r0-4) > 1e-9 {
		t.Errorf("doubling broken: %g %g %g", r0, r1, r2)
	}
	if p.SlowStartRate(-simtime.Second) != r0 {
		t.Error("negative elapsed should clamp to 0")
	}
	// Huge elapsed must not overflow to NaN/Inf surprises.
	if math.IsNaN(p.SlowStartRate(simtime.Hour)) {
		t.Error("NaN at large elapsed")
	}
}

func TestTimeToRate(t *testing.T) {
	p := DefaultParams()
	r0 := p.InitialRate()
	if p.TimeToRate(r0/2) != 0 {
		t.Error("already-reached target should take 0")
	}
	d := p.TimeToRate(8 * r0)
	want := simtime.FromSeconds(3 * p.RTT.Seconds())
	if math.Abs(float64(d-want)) > float64(simtime.Microsecond) {
		t.Errorf("TimeToRate(8x) = %v, want %v", d, want)
	}
	// Consistency: after TimeToRate(x), SlowStartRate >= x.
	for _, mult := range []float64{1.5, 3, 100, 12345} {
		target := r0 * mult
		if got := p.SlowStartRate(p.TimeToRate(target)); got < target*(1-1e-9) {
			t.Errorf("envelope(%g) = %g < target", mult, got)
		}
	}
}

func TestMathisCap(t *testing.T) {
	p := DefaultParams()
	if !math.IsInf(p.MathisCap(0), 1) {
		t.Error("no loss should mean no cap")
	}
	if p.MathisCap(1) != 0 {
		t.Error("total loss should mean zero throughput")
	}
	// Quadrupling loss halves throughput.
	c1, c4 := p.MathisCap(0.01), p.MathisCap(0.04)
	if math.Abs(c1/c4-2) > 1e-9 {
		t.Errorf("Mathis scaling wrong: %g vs %g", c1, c4)
	}
	// Known value: MSS=1460B, RTT=10ms, p=1%: 1460*8/0.01*1.22/0.1 ≈ 14.25 Mbps.
	want := 1460 * 8 / 0.010 * 1.22 / 0.1
	if got := p.MathisCap(0.01); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("MathisCap(1%%) = %g, want %g", got, want)
	}
}

func TestLossFromPolicer(t *testing.T) {
	if LossFromPolicer(1e9, 2e9) != 0 {
		t.Error("under-limit traffic must see no loss")
	}
	if got := LossFromPolicer(2e9, 1e9); got != 0.5 {
		t.Errorf("loss = %g, want 0.5", got)
	}
	if LossFromPolicer(0, 1e9) != 0 {
		t.Error("no traffic, no loss")
	}
	if LossFromPolicer(1e9, 0) != 1 {
		t.Error("zero policer rate drops everything")
	}
}

func TestDemandCombines(t *testing.T) {
	p := DefaultParams()
	// Early in slow start the envelope dominates.
	d := p.Demand(math.Inf(1), 0, 0)
	if d != p.InitialRate() {
		t.Errorf("fresh demand = %g, want initial rate", d)
	}
	// App demand caps.
	if got := p.Demand(1000, simtime.Hour, 0); got != 1000 {
		t.Errorf("app-capped demand = %g", got)
	}
	// Loss caps.
	capped := p.Demand(math.Inf(1), simtime.Hour, 0.25)
	if math.Abs(capped-p.MathisCap(0.25)) > 1e-9 {
		t.Errorf("loss-capped demand = %g", capped)
	}
}

func TestFCTLowerBound(t *testing.T) {
	p := DefaultParams()
	// A zero-size flow costs one RTT.
	if got := p.FCTLowerBound(0, 1e9); got != p.RTT {
		t.Errorf("zero-size FCT = %v", got)
	}
	// Dead path never completes.
	if p.FCTLowerBound(1e6, 0) != simtime.Forever {
		t.Error("zero rate should never complete")
	}
	// A huge transfer approaches size/bottleneck.
	size := 1e12 // 1 Tbit
	fct := p.FCTLowerBound(size, 1e9).Seconds()
	if fct < size/1e9 || fct > size/1e9*1.05 {
		t.Errorf("bulk FCT = %gs, want ~%gs", fct, size/1e9)
	}
	// Monotone in size.
	if p.FCTLowerBound(1e6, 1e9) >= p.FCTLowerBound(1e8, 1e9) {
		t.Error("FCT not monotone in size")
	}
	// Monotone (non-increasing) in bottleneck.
	if p.FCTLowerBound(1e8, 1e9) < p.FCTLowerBound(1e8, 1e10) {
		t.Error("faster bottleneck should not be slower")
	}
}

func TestZeroValueParamsSafe(t *testing.T) {
	var p Params
	if p.InitialRate() <= 0 {
		t.Error("zero-value params should fall back to defaults")
	}
	if p.MathisCap(0.01) <= 0 {
		t.Error("zero-value MathisCap broken")
	}
}

// Property: slow-start envelope is nondecreasing in elapsed time.
func TestSlowStartMonotoneProperty(t *testing.T) {
	p := DefaultParams()
	prop := func(aMs, bMs uint16) bool {
		a := simtime.Duration(aMs) * simtime.Millisecond
		b := simtime.Duration(bMs) * simtime.Millisecond
		if a > b {
			a, b = b, a
		}
		return p.SlowStartRate(a) <= p.SlowStartRate(b)*(1+1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Demand never exceeds any of its three inputs.
func TestDemandUpperBoundProperty(t *testing.T) {
	p := DefaultParams()
	prop := func(app uint32, ms uint16, lossPct uint8) bool {
		appBps := float64(app)
		elapsed := simtime.Duration(ms) * simtime.Millisecond
		loss := float64(lossPct%101) / 100
		d := p.Demand(appBps, elapsed, loss)
		return d <= appBps+1e-9 &&
			d <= p.SlowStartRate(elapsed)+1e-9 &&
			d <= p.MathisCap(loss)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
