// Package tcpmodel provides the flow-level TCP abstraction used by Horse.
// A packet-level simulator would evolve windows segment by segment; at flow
// granularity we keep only what shapes throughput on simulation-relevant
// timescales:
//
//   - a slow-start envelope: a new connection's usable rate doubles every
//     RTT from an initial-window rate until it reaches the network's fair
//     share, so short flows do not instantly fill fat links;
//   - a Mathis steady-state cap under loss: when a policer (meter) drops a
//     fraction p of a flow's packets, sustained TCP throughput is bounded
//     by MSS/RTT · C/√p (Mathis et al., CCR 1997), which is how a rate
//     limiting policy "undermines the quality of a TCP transmission" in the
//     paper's own motivating example.
//
// The simulator combines both: a TCP flow's offered demand at time t is
// min(appDemand, slowStart(t), mathisCap(p)), and the max–min allocator
// turns offered demands into realized rates.
package tcpmodel

import (
	"math"

	"horse/internal/simtime"
)

// Defaults mirroring common datacenter/IXP member values.
const (
	// DefaultMSS is the TCP maximum segment size in bytes.
	DefaultMSS = 1460
	// DefaultInitialWindow is the initial congestion window in segments
	// (RFC 6928).
	DefaultInitialWindow = 10
	// MathisConstant is the C in the Mathis throughput bound for
	// delayed-ACK Reno.
	MathisConstant = 1.22
)

// Params configures the TCP model for one flow (or a whole simulation).
type Params struct {
	// RTT is the round-trip time the window dynamics operate on.
	RTT simtime.Duration
	// MSS is the segment size in bytes.
	MSS int
	// InitialWindow is the slow-start initial window in segments.
	InitialWindow int
}

// DefaultParams returns parameters for a 10 ms RTT path.
func DefaultParams() Params {
	return Params{RTT: 10 * simtime.Millisecond, MSS: DefaultMSS, InitialWindow: DefaultInitialWindow}
}

func (p Params) rtt() float64 {
	if p.RTT <= 0 {
		return (10 * simtime.Millisecond).Seconds()
	}
	return p.RTT.Seconds()
}

func (p Params) mss() float64 {
	if p.MSS <= 0 {
		return DefaultMSS
	}
	return float64(p.MSS)
}

func (p Params) iw() float64 {
	if p.InitialWindow <= 0 {
		return DefaultInitialWindow
	}
	return float64(p.InitialWindow)
}

// InitialRate returns the sending rate of a fresh connection: one initial
// window per RTT, in bits/second.
func (p Params) InitialRate() float64 {
	return p.iw() * p.mss() * 8 / p.rtt()
}

// SlowStartRate returns the slow-start envelope at `elapsed` since the
// connection started: the initial rate doubled once per RTT.
func (p Params) SlowStartRate(elapsed simtime.Duration) float64 {
	if elapsed < 0 {
		elapsed = 0
	}
	doublings := elapsed.Seconds() / p.rtt()
	// Cap the exponent to avoid overflow; 2^60 RTT-doublings exceeds any
	// real capacity by far.
	if doublings > 60 {
		doublings = 60
	}
	return p.InitialRate() * math.Pow(2, doublings)
}

// TimeToRate returns how long slow start needs to reach target bits/second,
// or 0 if the initial rate already exceeds it.
func (p Params) TimeToRate(target float64) simtime.Duration {
	r0 := p.InitialRate()
	if target <= r0 {
		return 0
	}
	doublings := math.Log2(target / r0)
	// Round up a nanosecond so the envelope at the returned instant is at
	// least the target despite the ns truncation.
	return simtime.FromSeconds(doublings*p.rtt()) + 1
}

// MathisCap returns the steady-state throughput bound (bits/second) under
// packet loss probability loss. Zero or negative loss means no bound
// (+Inf); loss ≥ 1 means the connection makes no progress.
func (p Params) MathisCap(loss float64) float64 {
	if loss <= 0 {
		return math.Inf(1)
	}
	if loss >= 1 {
		return 0
	}
	return p.mss() * 8 / p.rtt() * MathisConstant / math.Sqrt(loss)
}

// LossFromPolicer estimates the loss probability a policer imposes on the
// aggregate passing through it: the excess fraction of offered load beyond
// the policed rate. offered and policed are bits/second.
func LossFromPolicer(offered, policed float64) float64 {
	if offered <= 0 || policed <= 0 {
		if policed <= 0 && offered > 0 {
			return 1
		}
		return 0
	}
	if offered <= policed {
		return 0
	}
	return (offered - policed) / offered
}

// Demand computes the offered demand of a TCP flow at a point in time:
// the minimum of the application demand (appBps, may be +Inf), the
// slow-start envelope elapsed after connection start, and the Mathis cap
// for the current loss estimate.
func (p Params) Demand(appBps float64, elapsed simtime.Duration, loss float64) float64 {
	d := p.SlowStartRate(elapsed)
	if appBps < d {
		d = appBps
	}
	if cap := p.MathisCap(loss); cap < d {
		d = cap
	}
	return d
}

// FCTLowerBound returns the minimum possible flow completion time for a
// transfer of sizeBits on a path with the given bottleneck rate: slow-start
// ramp until the bottleneck is reached, then line rate, plus one RTT of
// handshake. It is the reference curve accuracy experiments compare
// against.
func (p Params) FCTLowerBound(sizeBits, bottleneckBps float64) simtime.Duration {
	if sizeBits <= 0 {
		return p.RTT
	}
	if bottleneckBps <= 0 {
		return simtime.Forever
	}
	rtt := p.rtt()
	rate := p.InitialRate()
	var sent, t float64
	// Walk slow-start RTT by RTT.
	for rate < bottleneckBps {
		sendThisRTT := rate * rtt
		if sent+sendThisRTT >= sizeBits {
			t += (sizeBits - sent) / rate
			return p.RTT + simtime.FromSeconds(t)
		}
		sent += sendThisRTT
		t += rtt
		rate *= 2
	}
	t += (sizeBits - sent) / bottleneckBps
	return p.RTT + simtime.FromSeconds(t)
}
