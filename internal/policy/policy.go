// Package policy implements the high-level policy configuration of Horse's
// control plane. Figure 2 of the paper shows the intended input:
//
//	{
//	  "load balancing":              "edge->core",
//	  "application based peering":   "e1->e3" : "http",
//	  "rate limiting":               "e2->e4" : "500 Mbps"
//	}
//
// This package defines the equivalent JSON schema, parses it, performs the
// "basic policy validation of policy composition" the paper commits to
// (overlapping matches with contradictory actions are flagged), and
// compiles the configuration into the modular controller applications of
// package controller.
package policy

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"horse/internal/addr"
	"horse/internal/controller"
	"horse/internal/header"
	"horse/internal/netgraph"
	"horse/internal/simtime"
)

// Forwarding modes.
const (
	ForwardProactive = "proactive"
	ForwardReactive  = "reactive"
	ForwardECMP      = "ecmp"
	// ForwardMisconfiguredLB is the deliberately skewed load balancer for
	// the Figure-1 failure experiments.
	ForwardMisconfiguredLB = "misconfigured-lb"
)

// Config is the top-level policy document.
type Config struct {
	// Forwarding selects the base forwarding application (default
	// "proactive").
	Forwarding string `json:"forwarding,omitempty"`

	// Blackholing drops traffic destined to these hosts (by node name).
	Blackholing []BlackholePolicy `json:"blackholing,omitempty"`

	// RateLimiting polices traffic classes, e.g. {"from":"h2","to":"h4",
	// "rate_mbps":500,"at":"e2"}.
	RateLimiting []RateLimitPolicy `json:"rate_limiting,omitempty"`

	// AppPeering steers application classes between edges, e.g.
	// {"ingress":"e1","egress":"e3","app":"http"}.
	AppPeering []AppPeeringPolicy `json:"app_peering,omitempty"`

	// SourceRouting pins host pairs to explicit switch paths.
	SourceRouting []SourceRoutePolicy `json:"source_routing,omitempty"`

	// Monitoring enables periodic port-stats polling.
	Monitoring *MonitoringPolicy `json:"monitoring,omitempty"`

	// ReactiveIdleTimeoutMs tunes reactive rule eviction.
	ReactiveIdleTimeoutMs int `json:"reactive_idle_timeout_ms,omitempty"`
}

// BlackholePolicy drops traffic toward a destination host, optionally only
// at one switch.
type BlackholePolicy struct {
	Dst string `json:"dst"`
	At  string `json:"at,omitempty"`
}

// RateLimitPolicy polices src→dst traffic at a switch.
type RateLimitPolicy struct {
	From     string  `json:"from,omitempty"`
	To       string  `json:"to,omitempty"`
	App      string  `json:"app,omitempty"`
	RateMbps float64 `json:"rate_mbps"`
	At       string  `json:"at"`
}

// AppPeeringPolicy steers an application class from an ingress switch to an
// egress switch.
type AppPeeringPolicy struct {
	Ingress string `json:"ingress"`
	Egress  string `json:"egress"`
	App     string `json:"app"`
}

// SourceRoutePolicy pins a host pair to a switch path.
type SourceRoutePolicy struct {
	Src  string   `json:"src"`
	Dst  string   `json:"dst"`
	Path []string `json:"path"`
}

// MonitoringPolicy enables the monitoring app.
type MonitoringPolicy struct {
	PollMs int `json:"poll_ms"`
	// CongestionThreshold (0..1) for reporting; default 0.9.
	CongestionThreshold float64 `json:"congestion_threshold,omitempty"`
}

// Parse reads a JSON policy document.
func Parse(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("policy: parsing config: %w", err)
	}
	if c.Forwarding == "" {
		c.Forwarding = ForwardProactive
	}
	switch c.Forwarding {
	case ForwardProactive, ForwardReactive, ForwardECMP, ForwardMisconfiguredLB:
	default:
		return nil, fmt.Errorf("policy: unknown forwarding mode %q", c.Forwarding)
	}
	return &c, nil
}

// appMatch translates an application name into a match.
func appMatch(app string) (header.Match, error) {
	switch strings.ToLower(app) {
	case "http":
		return header.Match{}.WithProto(header.ProtoTCP).WithDstPort(header.PortHTTP), nil
	case "https":
		return header.Match{}.WithProto(header.ProtoTCP).WithDstPort(header.PortHTTPS), nil
	case "dns":
		return header.Match{}.WithProto(header.ProtoUDP).WithDstPort(header.PortDNS), nil
	case "bgp":
		return header.Match{}.WithProto(header.ProtoTCP).WithDstPort(header.PortBGP), nil
	case "", "any":
		return header.MatchAll, nil
	}
	return header.Match{}, fmt.Errorf("policy: unknown application %q", app)
}

// Compile translates the configuration into a controller chain for the
// given topology. Name resolution errors are returned, not ignored: a
// policy naming a nonexistent node is a configuration bug.
func (c *Config) Compile(topo *netgraph.Topology) (*controller.Chain, error) {
	lookup := func(name string) (netgraph.NodeID, error) {
		id, ok := topo.Lookup(name)
		if !ok {
			return 0, fmt.Errorf("policy: unknown node %q", name)
		}
		return id, nil
	}

	var apps []controller.App
	switch c.Forwarding {
	case ForwardReactive:
		idle := simtime.Duration(c.ReactiveIdleTimeoutMs) * simtime.Millisecond
		apps = append(apps, &controller.ReactiveMAC{IdleTimeout: idle})
	case ForwardECMP:
		apps = append(apps, &controller.ECMPLoadBalancer{})
	case ForwardMisconfiguredLB:
		apps = append(apps, &controller.MisconfiguredLoadBalancer{})
	default:
		apps = append(apps, &controller.ProactiveMAC{})
	}

	if len(c.Blackholing) > 0 {
		var bh []header.Match
		at := map[string][]header.Match{}
		for _, p := range c.Blackholing {
			dst, err := lookup(p.Dst)
			if err != nil {
				return nil, err
			}
			m := header.Match{}.WithEthDst(addr.HostMAC(dst))
			if p.At == "" {
				bh = append(bh, m)
			} else {
				at[p.At] = append(at[p.At], m)
			}
		}
		if len(bh) > 0 {
			apps = append(apps, &controller.Blackhole{Matches: bh})
		}
		for name, ms := range at {
			sw, err := lookup(name)
			if err != nil {
				return nil, err
			}
			apps = append(apps, &controller.Blackhole{Matches: ms, At: []netgraph.NodeID{sw}})
		}
	}

	if len(c.RateLimiting) > 0 {
		rl := &controller.RateLimiter{}
		for _, p := range c.RateLimiting {
			if p.RateMbps <= 0 {
				return nil, fmt.Errorf("policy: rate limit needs a positive rate, got %g", p.RateMbps)
			}
			at, err := lookup(p.At)
			if err != nil {
				return nil, err
			}
			m, err := appMatch(p.App)
			if err != nil {
				return nil, err
			}
			if p.From != "" {
				src, err := lookup(p.From)
				if err != nil {
					return nil, err
				}
				m = m.WithEthSrc(addr.HostMAC(src))
			}
			if p.To != "" {
				dst, err := lookup(p.To)
				if err != nil {
					return nil, err
				}
				m = m.WithEthDst(addr.HostMAC(dst))
			}
			rl.Rules = append(rl.Rules, controller.RateLimitRule{
				Match: m, RateBps: p.RateMbps * 1e6, At: at,
			})
		}
		apps = append(apps, rl)
	}

	if len(c.AppPeering) > 0 {
		ap := &controller.AppPeering{}
		for _, p := range c.AppPeering {
			in, err := lookup(p.Ingress)
			if err != nil {
				return nil, err
			}
			out, err := lookup(p.Egress)
			if err != nil {
				return nil, err
			}
			m, err := appMatch(p.App)
			if err != nil {
				return nil, err
			}
			if m == header.MatchAll {
				return nil, fmt.Errorf("policy: app peering needs a concrete application, got %q", p.App)
			}
			ap.Rules = append(ap.Rules, controller.PeeringRule{Ingress: in, Egress: out, AppMatch: m})
		}
		apps = append(apps, ap)
	}

	if len(c.SourceRouting) > 0 {
		sr := &controller.SourceRouting{}
		for _, p := range c.SourceRouting {
			src, err := lookup(p.Src)
			if err != nil {
				return nil, err
			}
			dst, err := lookup(p.Dst)
			if err != nil {
				return nil, err
			}
			if len(p.Path) == 0 {
				return nil, fmt.Errorf("policy: source route %s->%s has an empty path", p.Src, p.Dst)
			}
			path := make([]netgraph.NodeID, len(p.Path))
			for i, n := range p.Path {
				id, err := lookup(n)
				if err != nil {
					return nil, err
				}
				path[i] = id
			}
			sr.Routes = append(sr.Routes, controller.SourceRoute{Src: src, Dst: dst, Path: path})
		}
		apps = append(apps, sr)
	}

	if c.Monitoring != nil {
		every := simtime.Duration(c.Monitoring.PollMs) * simtime.Millisecond
		apps = append(apps, &controller.Monitor{
			Every:     every,
			Threshold: c.Monitoring.CongestionThreshold,
		})
	}

	return controller.NewChain(apps...), nil
}
