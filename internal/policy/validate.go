package policy

import (
	"fmt"

	"horse/internal/addr"
	"horse/internal/header"
	"horse/internal/netgraph"
)

// ConflictKind classifies composition findings.
type ConflictKind uint8

// Conflict kinds.
const (
	// ConflictShadowed: a policy can never take effect because a
	// higher-priority policy subsumes its match.
	ConflictShadowed ConflictKind = iota
	// ConflictContradiction: two policies overlap with contradictory
	// outcomes (e.g. blackhole vs. peering on the same traffic).
	ConflictContradiction
	// ConflictSuspicious: composition is legal but likely unintended
	// (e.g. rate limiting traffic that is also blackholed).
	ConflictSuspicious
)

func (k ConflictKind) String() string {
	switch k {
	case ConflictShadowed:
		return "shadowed"
	case ConflictContradiction:
		return "contradiction"
	case ConflictSuspicious:
		return "suspicious"
	}
	return "unknown"
}

// Conflict is one validation finding.
type Conflict struct {
	Kind ConflictKind
	// A and B describe the two policies involved.
	A, B string
	// Detail is a human-readable explanation.
	Detail string
}

func (c Conflict) String() string {
	return fmt.Sprintf("%s: %s vs %s: %s", c.Kind, c.A, c.B, c.Detail)
}

// Validate performs the paper's "basic policy validation of policy
// composition": pairwise match-overlap analysis between policies with
// different outcomes. It returns findings, not errors — operators decide;
// Horse's job is to predict the traffic consequences either way.
func (c *Config) Validate(topo *netgraph.Topology) []Conflict {
	var out []Conflict

	type classified struct {
		name    string
		match   header.Match
		action  string // "drop", "steer", "limit", "route"
		atAll   bool
		atNames map[string]bool
	}
	var items []classified

	for i, p := range c.Blackholing {
		if dst, ok := topo.Lookup(p.Dst); ok {
			items = append(items, classified{
				name:    fmt.Sprintf("blackholing[%d] (dst=%s)", i, p.Dst),
				match:   header.Match{}.WithEthDst(addr.HostMAC(dst)),
				action:  "drop",
				atAll:   p.At == "",
				atNames: map[string]bool{p.At: true},
			})
		}
	}
	for i, p := range c.RateLimiting {
		m, err := appMatch(p.App)
		if err != nil {
			continue
		}
		if src, ok := topo.Lookup(p.From); ok && p.From != "" {
			m = m.WithEthSrc(addr.HostMAC(src))
		}
		if dst, ok := topo.Lookup(p.To); ok && p.To != "" {
			m = m.WithEthDst(addr.HostMAC(dst))
		}
		items = append(items, classified{
			name:    fmt.Sprintf("rate_limiting[%d] (at=%s)", i, p.At),
			match:   m,
			action:  "limit",
			atNames: map[string]bool{p.At: true},
		})
	}
	for i, p := range c.AppPeering {
		m, err := appMatch(p.App)
		if err != nil {
			continue
		}
		items = append(items, classified{
			name:    fmt.Sprintf("app_peering[%d] (%s->%s:%s)", i, p.Ingress, p.Egress, p.App),
			match:   m,
			action:  "steer",
			atNames: map[string]bool{p.Ingress: true},
		})
	}
	for i, p := range c.SourceRouting {
		src, okS := topo.Lookup(p.Src)
		dst, okD := topo.Lookup(p.Dst)
		if !okS || !okD {
			continue
		}
		items = append(items, classified{
			name: fmt.Sprintf("source_routing[%d] (%s->%s)", i, p.Src, p.Dst),
			match: header.Match{}.
				WithEthSrc(addr.HostMAC(src)).
				WithEthDst(addr.HostMAC(dst)),
			action: "route",
			atAll:  true,
		})
	}

	colocated := func(a, b classified) bool {
		if a.atAll || b.atAll {
			return true
		}
		for n := range a.atNames {
			if b.atNames[n] {
				return true
			}
		}
		return false
	}

	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			a, b := items[i], items[j]
			if !a.match.Overlaps(b.match) || !colocated(a, b) {
				continue
			}
			switch {
			case a.action == "drop" && b.action != "drop":
				out = append(out, c.conflictDropPair(a.name, b.name, a.match, b.match))
			case b.action == "drop" && a.action != "drop":
				out = append(out, c.conflictDropPair(b.name, a.name, b.match, a.match))
			case a.action == "steer" && b.action == "route":
				out = append(out, Conflict{
					Kind: ConflictContradiction, A: a.name, B: b.name,
					Detail: "app peering and source routing both steer overlapping traffic; the higher-priority rule wins silently",
				})
			case a.action == "route" && b.action == "steer":
				out = append(out, Conflict{
					Kind: ConflictContradiction, A: b.name, B: a.name,
					Detail: "app peering and source routing both steer overlapping traffic; the higher-priority rule wins silently",
				})
			case a.action == "steer" && b.action == "steer" && a.match == b.match:
				out = append(out, Conflict{
					Kind: ConflictContradiction, A: a.name, B: b.name,
					Detail: "two peering policies claim identical traffic at the same ingress",
				})
			}
		}
	}
	return out
}

func (c *Config) conflictDropPair(dropName, otherName string, dropMatch, otherMatch header.Match) Conflict {
	if dropMatch.Subsumes(otherMatch) {
		return Conflict{
			Kind: ConflictShadowed, A: otherName, B: dropName,
			Detail: "policy is fully shadowed by a blackhole: it can never take effect",
		}
	}
	return Conflict{
		Kind: ConflictSuspicious, A: dropName, B: otherName,
		Detail: "blackhole overlaps another policy's traffic; part of that traffic will be dropped",
	}
}
