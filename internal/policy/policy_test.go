package policy

import (
	"context"
	"strings"
	"testing"

	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/netgraph"
	"horse/internal/simtime"
)

const figure2Config = `{
  "forwarding": "ecmp",
  "blackholing": [{"dst": "h5"}],
  "rate_limiting": [{"from": "h0", "to": "h4", "rate_mbps": 500, "at": "leaf0"}],
  "app_peering": [{"ingress": "leaf0", "egress": "spine1", "app": "http"}],
  "monitoring": {"poll_ms": 100}
}`

func leafSpine(t *testing.T) *netgraph.Topology {
	t.Helper()
	return netgraph.LeafSpine(2, 2, 3, netgraph.Gig, netgraph.TenGig)
}

func TestParseFigure2Style(t *testing.T) {
	c, err := Parse(strings.NewReader(figure2Config))
	if err != nil {
		t.Fatal(err)
	}
	if c.Forwarding != ForwardECMP {
		t.Errorf("forwarding = %q", c.Forwarding)
	}
	if len(c.Blackholing) != 1 || len(c.RateLimiting) != 1 || len(c.AppPeering) != 1 {
		t.Error("policies missing")
	}
	if c.Monitoring == nil || c.Monitoring.PollMs != 100 {
		t.Error("monitoring missing")
	}
}

func TestParseDefaultsAndErrors(t *testing.T) {
	c, err := Parse(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Forwarding != ForwardProactive {
		t.Errorf("default forwarding = %q", c.Forwarding)
	}
	if _, err := Parse(strings.NewReader(`{"forwarding": "quantum"}`)); err == nil {
		t.Error("bad forwarding mode accepted")
	}
	if _, err := Parse(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCompileResolvesNames(t *testing.T) {
	topo := leafSpine(t)
	c, err := Parse(strings.NewReader(figure2Config))
	if err != nil {
		t.Fatal(err)
	}
	chain, err := c.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	// ecmp + blackhole + ratelimit + peering + monitor = 5 apps.
	if len(chain.Apps) != 5 {
		names := make([]string, len(chain.Apps))
		for i, a := range chain.Apps {
			names[i] = a.Name()
		}
		t.Errorf("apps = %v", names)
	}
}

func TestCompileUnknownNodeFails(t *testing.T) {
	topo := leafSpine(t)
	c, _ := Parse(strings.NewReader(`{"blackholing": [{"dst": "ghost"}]}`))
	if _, err := c.Compile(topo); err == nil {
		t.Error("unknown node accepted")
	}
	c, _ = Parse(strings.NewReader(`{"rate_limiting": [{"to": "h0", "rate_mbps": 0, "at": "leaf0"}]}`))
	if _, err := c.Compile(topo); err == nil {
		t.Error("zero rate accepted")
	}
	c, _ = Parse(strings.NewReader(`{"app_peering": [{"ingress": "leaf0", "egress": "leaf1", "app": "any"}]}`))
	if _, err := c.Compile(topo); err == nil {
		t.Error("wildcard app peering accepted")
	}
	c, _ = Parse(strings.NewReader(`{"source_routing": [{"src": "h0", "dst": "h3", "path": []}]}`))
	if _, err := c.Compile(topo); err == nil {
		t.Error("empty source route accepted")
	}
}

func TestCompiledPolicyRuns(t *testing.T) {
	topo := leafSpine(t)
	c, err := Parse(strings.NewReader(figure2Config))
	if err != nil {
		t.Fatal(err)
	}
	chain, err := c.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	sim := flowsim.New(flowsim.Config{Topology: topo, Controller: chain, Miss: dataplane.MissController})
	if _, err := sim.Run(context.Background(), simtime.Time(simtime.Second)); err != nil {
		t.Fatal(err)
	}
	// Policy defaults must be installed on every switch: table 0 has at
	// least the goto default.
	for _, sw := range sim.Network().Switches {
		if sw.Tables[0].Len() == 0 {
			t.Errorf("switch %d has an empty policy table", sw.Node)
		}
	}
}

func TestValidateBlackholeShadowsPeering(t *testing.T) {
	topo := leafSpine(t)
	cfg := `{
	  "blackholing": [{"dst": "h3"}],
	  "rate_limiting": [{"to": "h3", "rate_mbps": 100, "at": "leaf0"}]
	}`
	c, err := Parse(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	found := c.Validate(topo)
	if len(found) == 0 {
		t.Fatal("no conflicts found; blackhole shadows the rate limit")
	}
	if found[0].Kind != ConflictShadowed {
		t.Errorf("kind = %v, want shadowed: %v", found[0].Kind, found[0])
	}
}

func TestValidatePeeringVsSourceRouting(t *testing.T) {
	topo := leafSpine(t)
	cfg := `{
	  "app_peering": [{"ingress": "leaf0", "egress": "spine0", "app": "http"}],
	  "source_routing": [{"src": "h0", "dst": "h3", "path": ["leaf0", "spine0", "leaf1"]}]
	}`
	c, err := Parse(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	found := c.Validate(topo)
	if len(found) == 0 {
		t.Fatal("steering contradiction not detected")
	}
	if found[0].Kind != ConflictContradiction {
		t.Errorf("kind = %v: %v", found[0].Kind, found[0])
	}
	if found[0].String() == "" {
		t.Error("empty conflict string")
	}
}

func TestValidateCleanConfig(t *testing.T) {
	topo := leafSpine(t)
	cfg := `{
	  "blackholing": [{"dst": "h5"}],
	  "rate_limiting": [{"to": "h4", "rate_mbps": 100, "at": "leaf0"}]
	}`
	c, err := Parse(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if found := c.Validate(topo); len(found) != 0 {
		t.Errorf("false positives: %v", found)
	}
}

func TestValidateDuplicatePeering(t *testing.T) {
	topo := leafSpine(t)
	cfg := `{
	  "app_peering": [
	    {"ingress": "leaf0", "egress": "spine0", "app": "http"},
	    {"ingress": "leaf0", "egress": "spine1", "app": "http"}
	  ]
	}`
	c, err := Parse(strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	found := c.Validate(topo)
	if len(found) == 0 {
		t.Fatal("duplicate peering not detected")
	}
}

func TestAppMatchNames(t *testing.T) {
	for _, app := range []string{"http", "https", "dns", "bgp", "HTTP"} {
		if _, err := appMatch(app); err != nil {
			t.Errorf("appMatch(%q): %v", app, err)
		}
	}
	if _, err := appMatch("gopher"); err == nil {
		t.Error("unknown app accepted")
	}
	m, _ := appMatch("any")
	if m.NumFields() != 0 {
		t.Error("any should be wildcard")
	}
}
