package header

import (
	"testing"
	"testing/quick"
)

func TestMACRoundTrip(t *testing.T) {
	m := MACFromUint64(0x0102030405c6)
	if m.String() != "01:02:03:04:05:c6" {
		t.Errorf("String = %q", m.String())
	}
	if m.Uint64() != 0x0102030405c6 {
		t.Errorf("Uint64 = %x", m.Uint64())
	}
	parsed, err := ParseMAC(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != m {
		t.Errorf("ParseMAC round trip: %v != %v", parsed, m)
	}
	if _, err := ParseMAC("nonsense"); err == nil {
		t.Error("ParseMAC accepted garbage")
	}
	if _, err := ParseMAC("01:02:03:04:05:06:07:08"); err == nil {
		t.Error("ParseMAC accepted a 64-bit EUI")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4FromUint32(0xc0a80164)
	if ip.String() != "192.168.1.100" {
		t.Errorf("String = %q", ip.String())
	}
	if ip.Uint32() != 0xc0a80164 {
		t.Errorf("Uint32 = %x", ip.Uint32())
	}
	parsed, err := ParseIPv4("192.168.1.100")
	if err != nil {
		t.Fatal(err)
	}
	if parsed != ip {
		t.Errorf("round trip: %v != %v", parsed, ip)
	}
	if _, err := ParseIPv4("::1"); err == nil {
		t.Error("ParseIPv4 accepted IPv6")
	}
	if _, err := ParseIPv4("999.1.1.1"); err == nil {
		t.Error("ParseIPv4 accepted invalid quad")
	}
}

func sampleKey() FlowKey {
	return FlowKey{
		EthSrc:  MACFromUint64(1),
		EthDst:  MACFromUint64(2),
		EthType: EthTypeIPv4,
		IPSrc:   IPv4FromUint32(0x0a000001),
		IPDst:   IPv4FromUint32(0x0a000002),
		Proto:   ProtoTCP,
		SrcPort: 12345,
		DstPort: PortHTTP,
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := sampleKey()
	r := k.Reverse()
	if r.EthSrc != k.EthDst || r.IPSrc != k.IPDst || r.SrcPort != k.DstPort {
		t.Error("Reverse did not swap fields")
	}
	if r.Reverse() != k {
		t.Error("Reverse is not an involution")
	}
}

func TestFastHashDistinguishes(t *testing.T) {
	k := sampleKey()
	k2 := k
	k2.DstPort = PortHTTPS
	if k.FastHash() == k2.FastHash() {
		t.Error("hash collision on port change (suspicious for FNV)")
	}
	if k.FastHash() != sampleKey().FastHash() {
		t.Error("hash is not deterministic")
	}
}

func TestSymmetricHash(t *testing.T) {
	k := sampleKey()
	if k.SymmetricHash() != k.Reverse().SymmetricHash() {
		t.Error("SymmetricHash differs across directions")
	}
}

func TestMatchAll(t *testing.T) {
	if !MatchAll.Matches(sampleKey()) {
		t.Error("MatchAll must match everything")
	}
	if MatchAll.NumFields() != 0 {
		t.Error("MatchAll constrains fields")
	}
	if MatchAll.String() != "*" {
		t.Errorf("MatchAll prints as %q", MatchAll.String())
	}
}

func TestMatchExactFields(t *testing.T) {
	k := sampleKey()
	m := Match{}.
		WithEthSrc(k.EthSrc).
		WithEthDst(k.EthDst).
		WithEthType(k.EthType).
		WithProto(k.Proto).
		WithSrcPort(k.SrcPort).
		WithDstPort(k.DstPort)
	if !m.Matches(k) {
		t.Fatal("exact match failed")
	}
	if m.NumFields() != 6 {
		t.Errorf("NumFields = %d, want 6", m.NumFields())
	}
	k2 := k
	k2.Proto = ProtoUDP
	if m.Matches(k2) {
		t.Error("match ignored proto mismatch")
	}
}

func TestMatchPrefix(t *testing.T) {
	k := sampleKey() // IPDst 10.0.0.2
	m := Match{}.WithIPDst(IPv4FromUint32(0x0a000000), 24)
	if !m.Matches(k) {
		t.Error("10.0.0.0/24 should match 10.0.0.2")
	}
	m32 := Match{}.WithIPDst(IPv4FromUint32(0x0a000003), 32)
	if m32.Matches(k) {
		t.Error("/32 matched wrong host")
	}
	m8 := Match{}.WithIPDst(IPv4FromUint32(0x0a636363), 8)
	if !m8.Matches(k) {
		t.Error("10.0.0.0/8 should match any 10.x")
	}
	// Prefix 0 means exact (/32) by convention.
	mExact := Match{}.WithIPDst(k.IPDst, 0)
	if !mExact.Matches(k) {
		t.Error("prefix 0 should be exact and match the same address")
	}
}

func TestMatchVLAN(t *testing.T) {
	k := sampleKey()
	k.VLAN = 100
	if !(Match{}.WithVLAN(100)).Matches(k) {
		t.Error("VLAN match failed")
	}
	if (Match{}.WithVLAN(200)).Matches(k) {
		t.Error("VLAN mismatch accepted")
	}
}

func TestOverlaps(t *testing.T) {
	a := Match{}.WithDstPort(80)
	b := Match{}.WithProto(ProtoTCP)
	if !a.Overlaps(b) {
		t.Error("disjoint fields must overlap")
	}
	c := Match{}.WithDstPort(443)
	if a.Overlaps(c) {
		t.Error("different exact ports cannot overlap")
	}
	p1 := Match{}.WithIPDst(IPv4FromUint32(0x0a000000), 8)
	p2 := Match{}.WithIPDst(IPv4FromUint32(0x0a010000), 16)
	if !p1.Overlaps(p2) {
		t.Error("10/8 overlaps 10.1/16")
	}
	p3 := Match{}.WithIPDst(IPv4FromUint32(0x0b000000), 8)
	if p1.Overlaps(p3) {
		t.Error("10/8 does not overlap 11/8")
	}
	if !MatchAll.Overlaps(a) || !a.Overlaps(MatchAll) {
		t.Error("wildcard overlaps everything")
	}
}

func TestSubsumes(t *testing.T) {
	all := MatchAll
	specific := Match{}.WithDstPort(80).WithProto(ProtoTCP)
	if !all.Subsumes(specific) {
		t.Error("wildcard subsumes everything")
	}
	if specific.Subsumes(all) {
		t.Error("specific cannot subsume wildcard")
	}
	p8 := Match{}.WithIPDst(IPv4FromUint32(0x0a000000), 8)
	p16 := Match{}.WithIPDst(IPv4FromUint32(0x0a010000), 16)
	if !p8.Subsumes(p16) {
		t.Error("10/8 subsumes 10.1/16")
	}
	if p16.Subsumes(p8) {
		t.Error("10.1/16 does not subsume 10/8")
	}
	if !specific.Subsumes(specific) {
		t.Error("subsumption must be reflexive")
	}
}

// Property: if m.Subsumes(o) then every key matched by o is matched by m.
// We approximate "every key" with randomized keys that are forced to match o.
func TestSubsumesImpliesMatch(t *testing.T) {
	prop := func(srcPort, dstPort uint16, proto uint8, ipd uint32) bool {
		k := FlowKey{
			IPDst:   IPv4FromUint32(ipd),
			Proto:   proto,
			SrcPort: srcPort,
			DstPort: dstPort,
		}
		o := Match{}.WithDstPort(dstPort).WithProto(proto).WithIPDst(k.IPDst, 24)
		m := Match{}.WithIPDst(k.IPDst, 16)
		if !o.Matches(k) {
			return false
		}
		if m.Subsumes(o) && !m.Matches(k) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Overlaps is symmetric.
func TestOverlapSymmetry(t *testing.T) {
	prop := func(aPort, bPort uint16, aProto, bProto uint8, useProtoA, useProtoB bool) bool {
		a, b := Match{}.WithDstPort(aPort), Match{}.WithDstPort(bPort)
		if useProtoA {
			a = a.WithProto(aProto)
		}
		if useProtoB {
			b = b.WithProto(bProto)
		}
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchString(t *testing.T) {
	m := Match{}.WithDstPort(80).WithIPDst(IPv4FromUint32(0x0a000000), 24)
	s := m.String()
	if s != "ip_dst=10.0.0.0/24,dst_port=80" {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkFastHash(b *testing.B) {
	k := sampleKey()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += k.FastHash()
	}
	_ = sink
}

func BenchmarkMatch(b *testing.B) {
	k := sampleKey()
	m := Match{}.WithEthDst(k.EthDst).WithIPDst(k.IPDst, 24).WithDstPort(k.DstPort)
	for i := 0; i < b.N; i++ {
		if !m.Matches(k) {
			b.Fatal("no match")
		}
	}
}
