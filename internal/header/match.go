package header

import (
	"fmt"
	"strings"
)

// Field identifies a single matchable header field.
type Field uint8

// Matchable fields, in pipeline order.
const (
	FieldEthSrc Field = iota
	FieldEthDst
	FieldEthType
	FieldVLAN
	FieldIPSrc
	FieldIPDst
	FieldProto
	FieldSrcPort
	FieldDstPort
	numFields
)

var fieldNames = [...]string{
	"eth_src", "eth_dst", "eth_type", "vlan",
	"ip_src", "ip_dst", "proto", "src_port", "dst_port",
}

// String returns the OpenFlow-style name of the field.
func (f Field) String() string {
	if int(f) < len(fieldNames) {
		return fieldNames[f]
	}
	return fmt.Sprintf("field(%d)", uint8(f))
}

// Match is an OpenFlow-style match: a set of exact-valued fields plus
// optional prefix masks on the IP fields. An unset field is a wildcard.
// The zero Match matches every flow (a table-miss / catch-all match).
type Match struct {
	set uint16 // bitmask of Fields present

	EthSrc  MAC
	EthDst  MAC
	EthType uint16
	VLAN    uint16
	IPSrc   IPv4
	IPDst   IPv4
	Proto   uint8
	SrcPort uint16
	DstPort uint16

	// IPSrcPrefix and IPDstPrefix are CIDR prefix lengths (1..32) applied
	// when the corresponding IP field is set. 0 means /32 (exact).
	IPSrcPrefix uint8
	IPDstPrefix uint8
}

// MatchAll is the wildcard match.
var MatchAll = Match{}

// WithEthSrc returns a copy of m that additionally requires the source MAC.
func (m Match) WithEthSrc(v MAC) Match { m.EthSrc = v; m.set |= 1 << FieldEthSrc; return m }

// WithEthDst returns a copy of m that additionally requires the dest MAC.
func (m Match) WithEthDst(v MAC) Match { m.EthDst = v; m.set |= 1 << FieldEthDst; return m }

// WithEthType returns a copy of m that additionally requires the EtherType.
func (m Match) WithEthType(v uint16) Match { m.EthType = v; m.set |= 1 << FieldEthType; return m }

// WithVLAN returns a copy of m that additionally requires the VLAN ID.
func (m Match) WithVLAN(v uint16) Match { m.VLAN = v; m.set |= 1 << FieldVLAN; return m }

// WithIPSrc returns a copy of m that additionally requires the source IP
// under the given prefix length (32 for exact).
func (m Match) WithIPSrc(v IPv4, prefix uint8) Match {
	m.IPSrc, m.IPSrcPrefix = v, prefix
	m.set |= 1 << FieldIPSrc
	return m
}

// WithIPDst returns a copy of m that additionally requires the dest IP
// under the given prefix length (32 for exact).
func (m Match) WithIPDst(v IPv4, prefix uint8) Match {
	m.IPDst, m.IPDstPrefix = v, prefix
	m.set |= 1 << FieldIPDst
	return m
}

// WithProto returns a copy of m that additionally requires the IP protocol.
func (m Match) WithProto(v uint8) Match { m.Proto = v; m.set |= 1 << FieldProto; return m }

// WithSrcPort returns a copy of m that additionally requires the L4 source
// port.
func (m Match) WithSrcPort(v uint16) Match { m.SrcPort = v; m.set |= 1 << FieldSrcPort; return m }

// WithDstPort returns a copy of m that additionally requires the L4 dest
// port.
func (m Match) WithDstPort(v uint16) Match { m.DstPort = v; m.set |= 1 << FieldDstPort; return m }

// Has reports whether the field participates in the match.
func (m Match) Has(f Field) bool { return m.set&(1<<f) != 0 }

// NumFields returns how many fields the match constrains; a useful
// specificity measure for auto-priorities.
func (m Match) NumFields() int {
	n := 0
	for f := Field(0); f < numFields; f++ {
		if m.Has(f) {
			n++
		}
	}
	return n
}

func prefixMask(prefix uint8) uint32 {
	if prefix == 0 || prefix >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - prefix)
}

// Matches reports whether the flow key satisfies the match.
func (m Match) Matches(k FlowKey) bool {
	if m.Has(FieldEthSrc) && m.EthSrc != k.EthSrc {
		return false
	}
	if m.Has(FieldEthDst) && m.EthDst != k.EthDst {
		return false
	}
	if m.Has(FieldEthType) && m.EthType != k.EthType {
		return false
	}
	if m.Has(FieldVLAN) && m.VLAN != k.VLAN {
		return false
	}
	if m.Has(FieldIPSrc) {
		mask := prefixMask(m.IPSrcPrefix)
		if m.IPSrc.Uint32()&mask != k.IPSrc.Uint32()&mask {
			return false
		}
	}
	if m.Has(FieldIPDst) {
		mask := prefixMask(m.IPDstPrefix)
		if m.IPDst.Uint32()&mask != k.IPDst.Uint32()&mask {
			return false
		}
	}
	if m.Has(FieldProto) && m.Proto != k.Proto {
		return false
	}
	if m.Has(FieldSrcPort) && m.SrcPort != k.SrcPort {
		return false
	}
	if m.Has(FieldDstPort) && m.DstPort != k.DstPort {
		return false
	}
	return true
}

// Overlaps reports whether some flow key could satisfy both matches. It is
// the core primitive of policy-composition validation: two rules with
// overlapping matches and contradictory actions are a potential conflict.
func (m Match) Overlaps(o Match) bool {
	// For each field constrained by both, the constraints must be
	// compatible; fields constrained by only one side never exclude
	// overlap.
	both := m.set & o.set
	if both&(1<<FieldEthSrc) != 0 && m.EthSrc != o.EthSrc {
		return false
	}
	if both&(1<<FieldEthDst) != 0 && m.EthDst != o.EthDst {
		return false
	}
	if both&(1<<FieldEthType) != 0 && m.EthType != o.EthType {
		return false
	}
	if both&(1<<FieldVLAN) != 0 && m.VLAN != o.VLAN {
		return false
	}
	if both&(1<<FieldIPSrc) != 0 {
		// Two prefixes overlap iff one contains the other: compare under
		// the shorter mask.
		p := m.IPSrcPrefix
		if o.IPSrcPrefix != 0 && (p == 0 || o.IPSrcPrefix < p) {
			p = o.IPSrcPrefix
		}
		mask := prefixMask(p)
		if m.IPSrc.Uint32()&mask != o.IPSrc.Uint32()&mask {
			return false
		}
	}
	if both&(1<<FieldIPDst) != 0 {
		p := m.IPDstPrefix
		if o.IPDstPrefix != 0 && (p == 0 || o.IPDstPrefix < p) {
			p = o.IPDstPrefix
		}
		mask := prefixMask(p)
		if m.IPDst.Uint32()&mask != o.IPDst.Uint32()&mask {
			return false
		}
	}
	if both&(1<<FieldProto) != 0 && m.Proto != o.Proto {
		return false
	}
	if both&(1<<FieldSrcPort) != 0 && m.SrcPort != o.SrcPort {
		return false
	}
	if both&(1<<FieldDstPort) != 0 && m.DstPort != o.DstPort {
		return false
	}
	return true
}

// Subsumes reports whether every flow key matched by o is also matched by
// m (m is at least as general as o).
func (m Match) Subsumes(o Match) bool {
	for f := Field(0); f < numFields; f++ {
		if !m.Has(f) {
			continue
		}
		if !o.Has(f) {
			return false
		}
	}
	// All of m's fields are constrained in o; the constraints must agree
	// on every key o admits, which reduces to: o's constraint implies m's.
	if m.Has(FieldEthSrc) && m.EthSrc != o.EthSrc {
		return false
	}
	if m.Has(FieldEthDst) && m.EthDst != o.EthDst {
		return false
	}
	if m.Has(FieldEthType) && m.EthType != o.EthType {
		return false
	}
	if m.Has(FieldVLAN) && m.VLAN != o.VLAN {
		return false
	}
	if m.Has(FieldIPSrc) {
		mp, op := normPrefix(m.IPSrcPrefix), normPrefix(o.IPSrcPrefix)
		if mp > op {
			return false // m is more specific than o
		}
		mask := prefixMask(mp)
		if m.IPSrc.Uint32()&mask != o.IPSrc.Uint32()&mask {
			return false
		}
	}
	if m.Has(FieldIPDst) {
		mp, op := normPrefix(m.IPDstPrefix), normPrefix(o.IPDstPrefix)
		if mp > op {
			return false
		}
		mask := prefixMask(mp)
		if m.IPDst.Uint32()&mask != o.IPDst.Uint32()&mask {
			return false
		}
	}
	if m.Has(FieldProto) && m.Proto != o.Proto {
		return false
	}
	if m.Has(FieldSrcPort) && m.SrcPort != o.SrcPort {
		return false
	}
	if m.Has(FieldDstPort) && m.DstPort != o.DstPort {
		return false
	}
	return true
}

func normPrefix(p uint8) uint8 {
	if p == 0 || p > 32 {
		return 32
	}
	return p
}

// String renders the match in OpenFlow match-string style; the wildcard
// match prints as "*".
func (m Match) String() string {
	if m.set == 0 {
		return "*"
	}
	var parts []string
	add := func(f Field, v string) {
		if m.Has(f) {
			parts = append(parts, f.String()+"="+v)
		}
	}
	add(FieldEthSrc, m.EthSrc.String())
	add(FieldEthDst, m.EthDst.String())
	add(FieldEthType, fmt.Sprintf("0x%04x", m.EthType))
	add(FieldVLAN, fmt.Sprintf("%d", m.VLAN))
	if m.Has(FieldIPSrc) {
		parts = append(parts, fmt.Sprintf("ip_src=%s/%d", m.IPSrc, normPrefix(m.IPSrcPrefix)))
	}
	if m.Has(FieldIPDst) {
		parts = append(parts, fmt.Sprintf("ip_dst=%s/%d", m.IPDst, normPrefix(m.IPDstPrefix)))
	}
	add(FieldProto, fmt.Sprintf("%d", m.Proto))
	add(FieldSrcPort, fmt.Sprintf("%d", m.SrcPort))
	add(FieldDstPort, fmt.Sprintf("%d", m.DstPort))
	return strings.Join(parts, ",")
}
