// Package header defines the flow abstraction at the heart of Horse: a
// "data flow" is an aggregate of packets that share header-field values but
// carry a time-varying rate (Section 2 of the paper). FlowKey captures those
// header fields in a fixed-size, comparable struct so it can be used
// directly as a map key and hashed without allocation — the same trick
// gopacket uses for its Endpoint/Flow types.
package header

import (
	"fmt"
	"net"
)

// MAC is a 48-bit Ethernet address stored by value so FlowKey stays
// comparable.
type MAC [6]byte

// String formats the address in the usual colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACFromUint64 builds a MAC from the low 48 bits of v. It is the standard
// way Horse assigns synthetic addresses to generated hosts.
func MACFromUint64(v uint64) MAC {
	var m MAC
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// Uint64 returns the address as an integer (useful for hashing and tests).
func (m MAC) Uint64() uint64 {
	var v uint64
	for _, b := range m {
		v = v<<8 | uint64(b)
	}
	return v
}

// ParseMAC parses a colon-separated MAC address.
func ParseMAC(s string) (MAC, error) {
	hw, err := net.ParseMAC(s)
	if err != nil {
		return MAC{}, err
	}
	if len(hw) != 6 {
		return MAC{}, fmt.Errorf("header: not a 48-bit MAC: %q", s)
	}
	var m MAC
	copy(m[:], hw)
	return m, nil
}

// IPv4 is a 32-bit IPv4 address stored by value.
type IPv4 [4]byte

// String formats the address in dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IPv4FromUint32 builds an address from its integer representation.
func IPv4FromUint32(v uint32) IPv4 {
	return IPv4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Uint32 returns the address as an integer.
func (ip IPv4) Uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// ParseIPv4 parses a dotted-quad address.
func ParseIPv4(s string) (IPv4, error) {
	p := net.ParseIP(s)
	if p == nil {
		return IPv4{}, fmt.Errorf("header: invalid IPv4 address %q", s)
	}
	p4 := p.To4()
	if p4 == nil {
		return IPv4{}, fmt.Errorf("header: not an IPv4 address %q", s)
	}
	var ip IPv4
	copy(ip[:], p4)
	return ip, nil
}

// EtherType values used by the simulator.
const (
	EthTypeIPv4 uint16 = 0x0800
	EthTypeARP  uint16 = 0x0806
	EthTypeVLAN uint16 = 0x8100
)

// IP protocol numbers used by the simulator.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// Well-known ports for application-layer peering policies.
const (
	PortHTTP  uint16 = 80
	PortHTTPS uint16 = 443
	PortDNS   uint16 = 53
	PortBGP   uint16 = 179
)

// FlowKey is the set of header fields that identifies a data flow. It is a
// comparable value type: two FlowKeys are the same flow iff they are ==.
type FlowKey struct {
	EthSrc  MAC
	EthDst  MAC
	EthType uint16
	VLAN    uint16 // 0 = untagged
	IPSrc   IPv4
	IPDst   IPv4
	Proto   uint8
	SrcPort uint16
	DstPort uint16
}

// Reverse returns the key of the opposite direction of the flow (src and
// dst swapped at every layer).
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		EthSrc: k.EthDst, EthDst: k.EthSrc,
		EthType: k.EthType, VLAN: k.VLAN,
		IPSrc: k.IPDst, IPDst: k.IPSrc,
		Proto:   k.Proto,
		SrcPort: k.DstPort, DstPort: k.SrcPort,
	}
}

// String renders the key compactly for logs and traces.
func (k FlowKey) String() string {
	return fmt.Sprintf("%s->%s %s:%d->%s:%d proto=%d", k.EthSrc, k.EthDst, k.IPSrc, k.SrcPort, k.IPDst, k.DstPort, k.Proto)
}

// FastHash returns a 64-bit FNV-1a hash of the key without allocating. It is
// not symmetric (A→B hashes differently from B→A); use SymmetricHash for
// direction-insensitive bucketing such as ECMP group selection.
func (k FlowKey) FastHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for _, b := range k.EthSrc {
		mix(b)
	}
	for _, b := range k.EthDst {
		mix(b)
	}
	mix(byte(k.EthType >> 8))
	mix(byte(k.EthType))
	mix(byte(k.VLAN >> 8))
	mix(byte(k.VLAN))
	for _, b := range k.IPSrc {
		mix(b)
	}
	for _, b := range k.IPDst {
		mix(b)
	}
	mix(k.Proto)
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	return h
}

// SymmetricHash returns a hash that is identical for a flow and its
// reverse, for bidirectionally consistent load balancing.
func (k FlowKey) SymmetricHash() uint64 {
	a, b := k.FastHash(), k.Reverse().FastHash()
	if a < b {
		return a*31 + b
	}
	return b*31 + a
}
