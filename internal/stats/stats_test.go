package stats

import (
	"bytes"
	"strings"
	"testing"

	"horse/internal/simtime"
)

func TestFlowRecordFCT(t *testing.T) {
	r := FlowRecord{Arrival: simtime.Time(simtime.Second), End: simtime.Time(3 * simtime.Second)}
	if r.FCT() != 2*simtime.Second {
		t.Errorf("FCT = %v", r.FCT())
	}
}

func TestFCTsOnlyCompleted(t *testing.T) {
	c := NewCollector(0)
	c.AddFlow(FlowRecord{ID: 1, Completed: true, Arrival: 0, End: simtime.Time(simtime.Second), SentBits: 1e9})
	c.AddFlow(FlowRecord{ID: 2, Completed: false, Outcome: "dropped"})
	if got := c.FCTs(); len(got) != 1 || got[0] != 1 {
		t.Errorf("FCTs = %v", got)
	}
	if got := c.Throughputs(); len(got) != 1 || got[0] != 1e9 {
		t.Errorf("Throughputs = %v", got)
	}
}

func TestUtilizationAggregates(t *testing.T) {
	c := NewCollector(simtime.Second)
	c.AddLinkSample(LinkSample{At: 0, Link: 1, Forward: true, UsedFrac: 0.2})
	c.AddLinkSample(LinkSample{At: 1, Link: 1, Forward: true, UsedFrac: 0.6})
	c.AddLinkSample(LinkSample{At: 0, Link: 1, Forward: false, UsedFrac: 0.1})
	c.AddLinkSample(LinkSample{At: 0, Link: 2, Forward: true, UsedFrac: 0.9})
	mean := c.MeanLinkUtilization()
	if got := mean[LinkDir{1, true}]; got != 0.4 {
		t.Errorf("mean fwd = %g", got)
	}
	peak := c.PeakLinkUtilization()
	if got := peak[LinkDir{1, true}]; got != 0.6 {
		t.Errorf("peak = %g", got)
	}
	top := c.TopLinks(2)
	if len(top) != 2 || top[0] != (LinkDir{2, true}) {
		t.Errorf("TopLinks = %v", top)
	}
	// TopLinks with n larger than available returns all.
	if got := c.TopLinks(10); len(got) != 3 {
		t.Errorf("TopLinks(10) returned %d", len(got))
	}
}

func TestCSVExports(t *testing.T) {
	c := NewCollector(simtime.Second)
	c.AddLinkSample(LinkSample{At: simtime.Time(simtime.Second), Link: 3, Forward: true, RateBps: 5e8, UsedFrac: 0.5})
	c.AddFlow(FlowRecord{ID: 7, Arrival: 0, End: simtime.Time(2 * simtime.Second), SizeBits: 1e6, SentBits: 1e6, Completed: true, Outcome: "completed", PathLen: 3, Punts: 1})

	var buf bytes.Buffer
	if err := c.WriteLinkSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("link CSV lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "3,fwd,5e+08,0.5") {
		t.Errorf("link CSV row = %q", lines[1])
	}

	buf.Reset()
	if err := c.WriteFlowsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("flow CSV lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "completed") || !strings.Contains(lines[1], "7,") {
		t.Errorf("flow CSV row = %q", lines[1])
	}
}

func TestLinkDirString(t *testing.T) {
	if (LinkDir{4, true}).String() != "link4/fwd" {
		t.Error("fwd string wrong")
	}
	if (LinkDir{4, false}).String() != "link4/rev" {
		t.Error("rev string wrong")
	}
}

func TestFlowSinkDivertsRecords(t *testing.T) {
	c := NewCollector(0)
	var got []FlowRecord
	c.AddFlow(FlowRecord{ID: 1}) // before the sink: retained
	c.SetFlowSink(func(r FlowRecord) { got = append(got, r) })
	c.AddFlow(FlowRecord{ID: 2, Completed: true})
	c.AddFlow(FlowRecord{ID: 3})
	if len(c.Flows()) != 1 || c.Flows()[0].ID != 1 {
		t.Errorf("retained = %v, want only the pre-sink record", c.Flows())
	}
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Errorf("streamed = %v, want records 2 and 3 in order", got)
	}
}
