// Package stats implements the "Traffic statistics & network state" block
// of the Horse data plane: per-link utilization time series, flow
// completion records, and event counters, updated as the simulation runs
// and exportable as CSV for the experiment harness.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"horse/internal/netgraph"
	"horse/internal/simtime"
)

// LinkSample is one utilization observation of one link direction.
type LinkSample struct {
	At      simtime.Time
	Link    netgraph.LinkID
	Forward bool // A→B direction
	RateBps float64
	// UsedFrac is RateBps / capacity at sampling time (0 for down links).
	UsedFrac float64
}

// FlowRecord is the outcome of one data flow.
type FlowRecord struct {
	ID        int64
	Arrival   simtime.Time
	End       simtime.Time
	SizeBits  float64
	SentBits  float64
	Completed bool
	Outcome   string // "completed", "dropped", "looped", "stuck", "killed"
	PathLen   int
	Punts     int // PacketIns this flow triggered
}

// FCT returns the flow completion time.
func (r FlowRecord) FCT() simtime.Duration { return r.End.Sub(r.Arrival) }

// Collector accumulates simulation statistics. The zero value is unusable;
// call NewCollector.
type Collector struct {
	// SampleEvery controls the utilization sampling period (0 disables
	// time-series collection).
	SampleEvery simtime.Duration

	linkSeries []LinkSample
	flows      []FlowRecord
	reroutes   []simtime.Time
	flowSink   func(FlowRecord)

	// Counters.
	FlowsStarted   uint64
	FlowsCompleted uint64
	FlowsDropped   uint64
	FlowsLooped    uint64
	FlowsStuck     uint64
	PacketIns      uint64
	FlowMods       uint64
	RateChanges    uint64
	EventsRun      uint64
	PathChanges    uint64
	// PacketsLost counts packets lost to link/switch failures in the
	// packet-level engine (queued or in flight on a link that died, or
	// offered to a dead link before recovery).
	PacketsLost uint64
	// PacketsCorrupted counts frames a link model corrupted at the
	// transmitter in the packet-level engine — degradation loss, kept
	// separate from the outage loss in PacketsLost.
	PacketsCorrupted uint64
	// PacketsSent counts packet emissions by senders in the packet-level
	// engine (first transmissions plus retransmissions) — the
	// denominator of the retransmit ratio.
	PacketsSent uint64
	// Retransmits counts TCP retransmissions (RTO and fast retransmit)
	// in the packet-level engine.
	Retransmits uint64
}

// NewCollector returns a collector sampling link utilization at the given
// period (0 disables sampling).
func NewCollector(sampleEvery simtime.Duration) *Collector {
	return &Collector{SampleEvery: sampleEvery}
}

// AddLinkSample appends one utilization observation.
func (c *Collector) AddLinkSample(s LinkSample) { c.linkSeries = append(c.linkSeries, s) }

// SetFlowSink diverts finished-flow records: with a sink installed, every
// AddFlow streams its record to sink in recording order instead of
// accumulating it in memory, so Flows() stays empty and a multi-million-
// flow run holds O(1) record state. Counters, link series, and reroute
// times still accumulate. Install before the run; the record stream is
// byte-identical (same records, same order) to what Flows() would have
// returned.
func (c *Collector) SetFlowSink(sink func(FlowRecord)) { c.flowSink = sink }

// AddFlow records a finished flow (or streams it to the flow sink).
func (c *Collector) AddFlow(r FlowRecord) {
	if c.flowSink != nil {
		c.flowSink(r)
		return
	}
	c.flows = append(c.flows, r)
}

// AddReroute records the instant a flow's transmitting path changed — the
// time series scenario metrics use to measure reconvergence latency after
// a scripted failure.
func (c *Collector) AddReroute(at simtime.Time) { c.reroutes = append(c.reroutes, at) }

// RerouteTimes returns every recorded path-change instant in event order.
func (c *Collector) RerouteTimes() []simtime.Time { return c.reroutes }

// Flows returns all finished flow records.
func (c *Collector) Flows() []FlowRecord { return c.flows }

// CountOutcome tallies a record's terminal outcome into the completion
// counters — the fold a merging driver (hybrid) applies per record, so a
// streamed run accumulates the same totals the retained path counts.
func (c *Collector) CountOutcome(r FlowRecord) {
	switch {
	case r.Completed:
		c.FlowsCompleted++
	case r.Outcome == "dropped":
		c.FlowsDropped++
	case r.Outcome == "looped":
		c.FlowsLooped++
	}
}

// Counters is a point-in-time copy of a Collector's event counters — the
// value type the service daemon's status and done summaries encode onto
// the wire. Counters stay valid with a flow sink installed (when Flows
// is empty by design), so a streamed session still reports totals.
type Counters struct {
	FlowsStarted     uint64
	FlowsCompleted   uint64
	FlowsDropped     uint64
	FlowsLooped      uint64
	FlowsStuck       uint64
	PacketIns        uint64
	FlowMods         uint64
	RateChanges      uint64
	EventsRun        uint64
	PathChanges      uint64
	PacketsLost      uint64
	PacketsCorrupted uint64
	PacketsSent      uint64
	Retransmits      uint64
}

// Counters snapshots the collector's counters. Call it only when the run
// is not concurrently mutating the collector (after Run returns, or on
// the simulation goroutine).
func (c *Collector) Counters() Counters {
	return Counters{
		FlowsStarted:     c.FlowsStarted,
		FlowsCompleted:   c.FlowsCompleted,
		FlowsDropped:     c.FlowsDropped,
		FlowsLooped:      c.FlowsLooped,
		FlowsStuck:       c.FlowsStuck,
		PacketIns:        c.PacketIns,
		FlowMods:         c.FlowMods,
		RateChanges:      c.RateChanges,
		EventsRun:        c.EventsRun,
		PathChanges:      c.PathChanges,
		PacketsLost:      c.PacketsLost,
		PacketsCorrupted: c.PacketsCorrupted,
		PacketsSent:      c.PacketsSent,
		Retransmits:      c.Retransmits,
	}
}

// LinkSeries returns the utilization time series.
func (c *Collector) LinkSeries() []LinkSample { return c.linkSeries }

// ReplaceLinkSeries swaps in a merged utilization time series — the
// sharded engines sample per shard and install the deterministically
// sorted union here at Finish.
func (c *Collector) ReplaceLinkSeries(s []LinkSample) { c.linkSeries = s }

// FCTs returns completion times in seconds for all completed flows.
func (c *Collector) FCTs() []float64 {
	var out []float64
	for _, f := range c.flows {
		if f.Completed {
			out = append(out, f.FCT().Seconds())
		}
	}
	return out
}

// Throughputs returns the mean throughput (bits/second) of every completed
// flow.
func (c *Collector) Throughputs() []float64 {
	var out []float64
	for _, f := range c.flows {
		if f.Completed && f.FCT() > 0 {
			out = append(out, f.SentBits/f.FCT().Seconds())
		}
	}
	return out
}

// MeanLinkUtilization returns the average UsedFrac per link direction,
// keyed by (link, forward).
func (c *Collector) MeanLinkUtilization() map[LinkDir]float64 {
	sums := make(map[LinkDir]float64)
	counts := make(map[LinkDir]int)
	for _, s := range c.linkSeries {
		k := LinkDir{s.Link, s.Forward}
		sums[k] += s.UsedFrac
		counts[k]++
	}
	out := make(map[LinkDir]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// PeakLinkUtilization returns the maximum UsedFrac per link direction.
func (c *Collector) PeakLinkUtilization() map[LinkDir]float64 {
	out := make(map[LinkDir]float64)
	for _, s := range c.linkSeries {
		k := LinkDir{s.Link, s.Forward}
		if s.UsedFrac > out[k] {
			out[k] = s.UsedFrac
		}
	}
	return out
}

// LinkDir identifies one direction of one link.
type LinkDir struct {
	Link    netgraph.LinkID
	Forward bool
}

func (d LinkDir) String() string {
	dir := "fwd"
	if !d.Forward {
		dir = "rev"
	}
	return fmt.Sprintf("link%d/%s", d.Link, dir)
}

// WriteLinkSeriesCSV writes the utilization time series.
func (c *Collector) WriteLinkSeriesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "link", "dir", "rate_bps", "utilization"}); err != nil {
		return err
	}
	for _, s := range c.linkSeries {
		dir := "fwd"
		if !s.Forward {
			dir = "rev"
		}
		rec := []string{
			strconv.FormatFloat(s.At.Seconds(), 'g', -1, 64),
			strconv.Itoa(int(s.Link)),
			dir,
			strconv.FormatFloat(s.RateBps, 'g', -1, 64),
			strconv.FormatFloat(s.UsedFrac, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFlowsCSV writes per-flow records.
func (c *Collector) WriteFlowsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "arrival_s", "end_s", "size_bits", "sent_bits", "outcome", "fct_s", "path_len", "punts"}); err != nil {
		return err
	}
	for _, f := range c.flows {
		rec := []string{
			strconv.FormatInt(f.ID, 10),
			strconv.FormatFloat(f.Arrival.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(f.End.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(f.SizeBits, 'g', -1, 64),
			strconv.FormatFloat(f.SentBits, 'g', -1, 64),
			f.Outcome,
			strconv.FormatFloat(f.FCT().Seconds(), 'g', -1, 64),
			strconv.Itoa(f.PathLen),
			strconv.Itoa(f.Punts),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TopLinks returns the n busiest link directions by mean utilization, most
// loaded first.
func (c *Collector) TopLinks(n int) []LinkDir {
	means := c.MeanLinkUtilization()
	dirs := make([]LinkDir, 0, len(means))
	for d := range means {
		dirs = append(dirs, d)
	}
	sort.Slice(dirs, func(i, j int) bool {
		if means[dirs[i]] != means[dirs[j]] {
			return means[dirs[i]] > means[dirs[j]]
		}
		if dirs[i].Link != dirs[j].Link {
			return dirs[i].Link < dirs[j].Link
		}
		return dirs[i].Forward && !dirs[j].Forward
	})
	if n < len(dirs) {
		dirs = dirs[:n]
	}
	return dirs
}
