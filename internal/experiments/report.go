package experiments

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"strings"
	"time"
)

// ReportSchema names the JSON layout written by WriteJSON. Bump it when
// the shape changes so downstream tooling (the CI bench-smoke artifact
// diffing, plotting scripts) can dispatch on it.
const ReportSchema = "horse-bench/v1"

// Report is the machine-readable form of an experiment run — the payload
// of the BENCH_*.json artifacts that cmd/horsebench and the CI bench-smoke
// job emit so the perf trajectory is trackable across PRs.
type Report struct {
	Schema   string   `json:"schema"`
	Parallel int      `json:"parallel"`
	WallMS   float64  `json:"wall_ms"`
	Host     *Host    `json:"host,omitempty"`
	Tables   []*Table `json:"tables"`
}

// Host fingerprints the hardware a report's timing columns were measured
// on. Reports from different hardware are not timing-comparable: a
// baseline generated on a slow dev box trivially passes on a fast CI
// runner (and masks real regressions), so the bench-compare gate skips
// timing columns on fingerprint mismatch. Deterministic columns (event
// counts, parity) compare regardless.
type Host struct {
	// CPUModel is the processor model string ("unknown" when the
	// platform exposes none).
	CPUModel string `json:"cpu_model"`
	// Cores is runtime.NumCPU at report time.
	Cores int `json:"cores"`
	// GOARCH is the architecture the reporting binary was built for.
	GOARCH string `json:"goarch"`
}

// Fingerprint reads the current host's fingerprint.
func Fingerprint() Host {
	return Host{CPUModel: cpuModel(), Cores: runtime.NumCPU(), GOARCH: runtime.GOARCH}
}

// cpuModel extracts the processor model: the first "model name" line of
// /proc/cpuinfo on Linux, "unknown" elsewhere (the cores+GOARCH pair
// still discriminates most machine changes there).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return "unknown"
}

// NewReport wraps finished tables with run metadata, stamping the host
// fingerprint.
func NewReport(tables []*Table, parallel int, wall time.Duration) *Report {
	host := Fingerprint()
	return &Report{
		Schema:   ReportSchema,
		Parallel: parallel,
		WallMS:   float64(wall.Microseconds()) / 1000,
		Host:     &host,
		Tables:   tables,
	}
}

// WriteJSON emits the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
