package experiments

import (
	"encoding/json"
	"io"
	"time"
)

// ReportSchema names the JSON layout written by WriteJSON. Bump it when
// the shape changes so downstream tooling (the CI bench-smoke artifact
// diffing, plotting scripts) can dispatch on it.
const ReportSchema = "horse-bench/v1"

// Report is the machine-readable form of an experiment run — the payload
// of the BENCH_*.json artifacts that cmd/horsebench and the CI bench-smoke
// job emit so the perf trajectory is trackable across PRs.
type Report struct {
	Schema   string   `json:"schema"`
	Parallel int      `json:"parallel"`
	WallMS   float64  `json:"wall_ms"`
	Tables   []*Table `json:"tables"`
}

// NewReport wraps finished tables with run metadata.
func NewReport(tables []*Table, parallel int, wall time.Duration) *Report {
	return &Report{
		Schema:   ReportSchema,
		Parallel: parallel,
		WallMS:   float64(wall.Microseconds()) / 1000,
		Tables:   tables,
	}
}

// WriteJSON emits the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
