// Package experiments implements the evaluation of the paper: every
// experiment the poster commits to (Section 2: an IXP-scale model, traffic
// replay, and simulation time/accuracy under multiple policy
// configurations) plus the Figure-1 policy-failure scenarios and the
// design-choice ablations recorded in DESIGN.md. Each experiment returns a
// Table whose rows the CLI (cmd/horsebench) prints and whose shape
// EXPERIMENTS.md records against the paper's claims.
//
// Execution is data-driven: each experiment compiles its grid — leaf
// counts and arrival rates in E2, member counts in E4, config rows in E5,
// ablation arms in E6 — into a []runner.Cell of closures with stable IDs.
// Every cell is a self-contained simulation (it builds its own topology,
// trace, and simulator), so cells fan out across a bounded worker pool
// (Options.Parallel) and the assembled tables are byte-identical for any
// worker count: rows follow cell order, never completion order.
package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"horse"
	"horse/internal/addr"
	"horse/internal/controller"
	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/header"
	"horse/internal/hybrid"
	"horse/internal/ixp"
	"horse/internal/metrics"
	"horse/internal/netgraph"
	"horse/internal/packetsim"
	"horse/internal/runner"
	"horse/internal/scenario"
	"horse/internal/simtime"
	"horse/internal/stats"
	"horse/internal/tcpmodel"
	"horse/internal/traffic"
)

// mustEngine unwraps a horse.New result inside an experiment cell. Every
// grid cell builds from compile-time-constant options, so a build error
// is a programming error; panicking propagates it through the runner pool
// as a *runner.CellPanic.
func mustEngine(eng horse.Engine, err error) horse.Engine {
	if err != nil {
		panic(err)
	}
	return eng
}

// Options controls how the experiment grid executes.
type Options struct {
	// Parallel bounds the worker pool that fans out experiment cells.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Parallel int

	// Now is the clock used for wall-time columns. Nil means time.Now.
	// Tests inject a frozen clock to make tables fully deterministic.
	Now func() time.Time
}

func (o Options) now() time.Time {
	if o.Now != nil {
		return o.Now()
	}
	return time.Now()
}

func (o Options) since(t0 time.Time) time.Duration { return o.now().Sub(t0) }

// Table is one experiment's result.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes records the qualitative shape the paper predicts and whether
	// the run reproduced it.
	Notes []string `json:"notes,omitempty"`
}

// Fprint renders the table to a writer-ish function (the CLI passes
// fmt.Printf-compatible sinks).
func (t *Table) Fprint(printf func(format string, args ...interface{})) {
	printf("\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for i, c := range t.Columns {
		printf("%-*s  ", widths[i], c)
	}
	printf("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			printf("%-*s  ", widths[i], c)
		}
		printf("\n")
	}
	for _, n := range t.Notes {
		printf("note: %s\n", n)
	}
}

// spec is one experiment compiled to a table skeleton plus the cells that
// produce its rows. A cell returns the rows it contributes (possibly
// none); assembly concatenates them in cell order.
type spec struct {
	table *Table
	cells []runner.Cell[[][]string]
}

// cell appends one unit of work to the spec's grid.
func (sp *spec) cell(id string, run func() [][]string) {
	sp.cells = append(sp.cells, runner.Cell[[][]string]{
		ID: sp.table.ID + "/" + id, Run: run,
	})
}

// runSpecs flattens every spec's cells into one pool, fans them out, and
// assembles the tables. Row order — and therefore the rendered bytes —
// depends only on cell order, not on scheduling.
func runSpecs(o Options, specs []*spec) []*Table {
	var all []runner.Cell[[][]string]
	for _, sp := range specs {
		all = append(all, sp.cells...)
	}
	results := runner.Run(all, o.Parallel)
	tables := make([]*Table, len(specs))
	i := 0
	for si, sp := range specs {
		for range sp.cells {
			sp.table.Rows = append(sp.table.Rows, results[i]...)
			i++
		}
		tables[si] = sp.table
	}
	return tables
}

func row(cols ...string) [][]string { return [][]string{cols} }

func f2(v float64) string       { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string       { return fmt.Sprintf("%.3f", v) }
func di(v uint64) string        { return fmt.Sprintf("%d", v) }
func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }

func cbrDemand(src, dst netgraph.NodeID, start simtime.Time, sizeBits, rateBps float64, sport uint16) traffic.Demand {
	return traffic.Demand{
		Key: addr.FlowKeyBetween(src, dst, header.ProtoUDP, sport, 80),
		Src: src, Dst: dst, Start: start,
		SizeBits: sizeBits, RateBps: rateBps,
	}
}

// runFlowSim executes one flow-level simulation through the unified
// engine API and times it with the options' clock.
func (o Options) runFlowSim(topo *netgraph.Topology, ctrl flowsim.Controller, tr traffic.Trace, statsEvery simtime.Duration) (*stats.Collector, time.Duration) {
	eng := mustEngine(horse.New(topo,
		horse.WithController(ctrl),
		horse.WithMiss(dataplane.MissController),
		horse.WithStatsEvery(statsEvery),
	))
	eng.Load(tr)
	start := o.now()
	col, _ := eng.Run(context.Background(), simtime.Time(10*simtime.Minute))
	return col, o.since(start)
}

// E1PolicyCoexistence reproduces the Figure-1 fabric: four edge switches,
// two core switches, and all five policy classes active at once. It
// quantifies the paper's three failure narratives: a misconfigured load
// balancer congesting the core, an inefficient source route, and a rate
// limiter degrading TCP.
func E1PolicyCoexistence() *Table { return E1With(Options{}) }

// E1With is E1PolicyCoexistence under explicit execution options.
func E1With(o Options) *Table { return runSpecs(o, []*spec{e1Spec(o)})[0] }

func e1Spec(o Options) *spec {
	sp := &spec{table: &Table{
		ID:      "E1",
		Title:   "Policy coexistence on the Figure-1 fabric (4 edges, 2 cores)",
		Columns: []string{"scenario", "mean-core-util", "mean-FCT-s", "p99-FCT-s", "dropped", "punts"},
	}}

	// The fabric is deliberately core-oversubscribed (10G member ports,
	// 1G core links) so that where the load balancer sends flows decides
	// whether the core congests — the Figure-1 narrative.
	build := func() (*netgraph.Topology, []netgraph.NodeID, []netgraph.NodeID) {
		topo := netgraph.New()
		cores := []netgraph.NodeID{topo.AddSwitch("c1"), topo.AddSwitch("c2")}
		var edges []netgraph.NodeID
		for i := 1; i <= 4; i++ {
			e := topo.AddSwitch(fmt.Sprintf("e%d", i))
			edges = append(edges, e)
			for _, c := range cores {
				topo.Connect(e, c, 1e9, 50*simtime.Microsecond) // congestible core
			}
		}
		for i := 0; i < 8; i++ {
			h := topo.AddHost(fmt.Sprintf("h%d", i))
			topo.Connect(edges[i%4], h, 1e10, 50*simtime.Microsecond)
		}
		return topo, edges, cores
	}

	workload := func(topo *netgraph.Topology) traffic.Trace {
		g := traffic.NewGenerator(5)
		return g.PoissonArrivals(traffic.PoissonConfig{
			Hosts: topo.Hosts(), Lambda: 1500, Horizon: 5 * simtime.Second,
			Sizes: traffic.Pareto{XMin: 1e6, Alpha: 1.5}, TCPFraction: 0,
			CBRRateBps: 5e7,
		})
	}

	scenario := func(name string, mk func(topo *netgraph.Topology, edges, cores []netgraph.NodeID) flowsim.Controller) {
		sp.cell(name, func() [][]string {
			topo, edges, cores := build()
			ctrl := mk(topo, edges, cores)
			eng := mustEngine(horse.New(topo,
				horse.WithController(ctrl),
				horse.WithMiss(dataplane.MissController),
				horse.WithStatsEvery(100*simtime.Millisecond),
			))
			eng.Load(workload(topo))
			col, _ := eng.Run(context.Background(), simtime.Time(time.Minute))
			var coreSum float64
			var coreN int
			for d, u := range col.MeanLinkUtilization() {
				l := topo.Link(d.Link)
				if topo.Node(l.A).Kind == netgraph.KindSwitch && topo.Node(l.B).Kind == netgraph.KindSwitch {
					coreSum += u
					coreN++
				}
			}
			meanCore := 0.0
			if coreN > 0 {
				meanCore = coreSum / float64(coreN)
			}
			fcts := col.FCTs()
			return row(
				name, f2(meanCore), f3(metrics.Mean(fcts)), f3(metrics.Percentile(fcts, 99)),
				di(col.FlowsDropped), di(col.PacketIns),
			)
		})
	}

	scenario("ecmp-balanced", func(topo *netgraph.Topology, edges, cores []netgraph.NodeID) flowsim.Controller {
		return controller.NewChain(&controller.ECMPLoadBalancer{})
	})
	scenario("misconfigured-lb", func(topo *netgraph.Topology, edges, cores []netgraph.NodeID) flowsim.Controller {
		return controller.NewChain(&controller.MisconfiguredLoadBalancer{})
	})
	scenario("all-policies", func(topo *netgraph.Topology, edges, cores []netgraph.NodeID) flowsim.Controller {
		h5 := topo.MustLookup("h5")
		h6 := topo.MustLookup("h6")
		sw1, _ := topo.AttachedSwitch(topo.MustLookup("h0"))
		return controller.NewChain(
			&controller.ECMPLoadBalancer{},
			&controller.Blackhole{Matches: []header.Match{header.Match{}.WithEthDst(addr.HostMAC(h5))}},
			&controller.RateLimiter{Rules: []controller.RateLimitRule{{
				Match: header.Match{}.WithEthDst(addr.HostMAC(h6)), RateBps: 5e7, At: sw1,
			}}},
			&controller.AppPeering{Rules: []controller.PeeringRule{{
				Ingress: edges[0], Egress: edges[2],
				AppMatch: header.Match{}.WithProto(header.ProtoTCP).WithDstPort(header.PortHTTP),
			}}},
			&controller.Monitor{Every: simtime.Second},
		)
	})

	sp.table.Notes = append(sp.table.Notes,
		"expected shape: misconfigured-lb has higher FCTs than ecmp-balanced at similar offered load (core congestion)",
		"expected shape: all-policies drops blackholed traffic and punts nothing extra (policies coexist)",
	)
	return sp
}

// E2Scale measures simulation time versus topology size and flow count —
// the scalability motivation ("Mininet is not scalable").
func E2Scale(leafCounts []int, lambdas []float64) *Table {
	return E2With(Options{}, leafCounts, lambdas)
}

// E2With is E2Scale under explicit execution options.
func E2With(o Options, leafCounts []int, lambdas []float64) *Table {
	return runSpecs(o, []*spec{e2Spec(o, leafCounts, lambdas)})[0]
}

func e2Spec(o Options, leafCounts []int, lambdas []float64) *spec {
	sp := &spec{table: &Table{
		ID:      "E2",
		Title:   "Scalability: wall time vs fabric size and flow count",
		Columns: []string{"leaves", "spines", "hosts", "flows", "events", "wall-ms", "events/ms"},
	}}
	for _, leaves := range leafCounts {
		leaves := leaves
		sp.cell(fmt.Sprintf("leaves=%d", leaves), func() [][]string {
			spines := leaves / 2
			if spines < 2 {
				spines = 2
			}
			topo := netgraph.LeafSpine(leaves, spines, 4, netgraph.Gig, netgraph.TenGig)
			g := traffic.NewGenerator(11)
			tr := g.PoissonArrivals(traffic.PoissonConfig{
				Hosts: topo.Hosts(), Lambda: 500, Horizon: 2 * simtime.Second,
				Sizes: traffic.Pareto{XMin: 1e5, Alpha: 1.4}, TCPFraction: 0.5, CBRRateBps: 1e7,
			})
			col, wall := o.runFlowSim(topo, controller.NewChain(&controller.ECMPLoadBalancer{}), tr, 0)
			return row(
				fmt.Sprintf("%d", leaves), fmt.Sprintf("%d", spines),
				fmt.Sprintf("%d", len(topo.Hosts())), fmt.Sprintf("%d", len(tr)),
				di(col.EventsRun), ms(wall), f2(float64(col.EventsRun)/(float64(wall.Microseconds())/1000)),
			)
		})
	}
	// Flow-count sweep on a fixed fabric.
	for _, lambda := range lambdas {
		lambda := lambda
		sp.cell(fmt.Sprintf("lambda=%g", lambda), func() [][]string {
			topo := netgraph.LeafSpine(8, 4, 4, netgraph.Gig, netgraph.TenGig)
			g := traffic.NewGenerator(13)
			tr := g.PoissonArrivals(traffic.PoissonConfig{
				Hosts: topo.Hosts(), Lambda: lambda, Horizon: 2 * simtime.Second,
				Sizes: traffic.Pareto{XMin: 1e5, Alpha: 1.4}, TCPFraction: 0.5, CBRRateBps: 1e7,
			})
			col, wall := o.runFlowSim(topo, controller.NewChain(&controller.ECMPLoadBalancer{}), tr, 0)
			return row(
				"8", "4", fmt.Sprintf("%d", len(topo.Hosts())), fmt.Sprintf("%d", len(tr)),
				di(col.EventsRun), ms(wall), f2(float64(col.EventsRun)/(float64(wall.Microseconds())/1000)),
			)
		})
	}
	sp.table.Notes = append(sp.table.Notes, "expected shape: wall time grows ~linearly with event count; thousands of flows per second of wall time")
	return sp
}

// E3Accuracy compares the flow-level simulator against the packet-level
// baseline on identical pre-installed state and workload: per-flow FCT
// error, link-utilization error, and the speedup.
func E3Accuracy() *Table { return E3With(Options{}) }

// E3With is E3Accuracy under explicit execution options.
func E3With(o Options) *Table { return runSpecs(o, []*spec{e3Spec(o)})[0] }

func e3Spec(o Options) *spec {
	sp := &spec{table: &Table{
		ID:    "E3",
		Title: "Flow-level vs packet-level: accuracy and speedup",
		Columns: []string{
			"scenario", "flows", "fct-W1-s", "fct-relerr", "util-MAE",
			"flow-wall-ms", "pkt-wall-ms", "speedup",
		},
	}}
	scenarios := []struct {
		name   string
		rtt    simtime.Duration // flow-level TCP model RTT, matched to the topology
		window simtime.Duration // run + sampling window
		mkTopo func() *netgraph.Topology
		mkTr   func(topo *netgraph.Topology) traffic.Trace
	}{
		{
			name:   "cbr-dumbbell",
			rtt:    2200 * simtime.Microsecond,
			window: 2 * simtime.Second,
			mkTopo: func() *netgraph.Topology {
				return netgraph.Dumbbell(4, 4, netgraph.Gig, netgraph.LinkSpec{BandwidthBps: 2e8, Delay: simtime.Millisecond})
			},
			mkTr: func(topo *netgraph.Topology) traffic.Trace {
				var tr traffic.Trace
				for i := 0; i < 4; i++ {
					src := topo.MustLookup(fmt.Sprintf("h%d", i))
					dst := topo.MustLookup(fmt.Sprintf("r%d", i))
					tr = append(tr, cbrDemand(src, dst, simtime.Time(i)*simtime.Time(100*simtime.Millisecond), 2e7, 1e8, uint16(30000+i)))
				}
				return tr
			},
		},
		{
			name:   "tcp-dumbbell",
			rtt:    2200 * simtime.Microsecond,
			window: 2 * simtime.Second,
			mkTopo: func() *netgraph.Topology {
				return netgraph.Dumbbell(4, 4, netgraph.Gig, netgraph.LinkSpec{BandwidthBps: 2e8, Delay: simtime.Millisecond})
			},
			mkTr: func(topo *netgraph.Topology) traffic.Trace {
				var tr traffic.Trace
				for i := 0; i < 4; i++ {
					src := topo.MustLookup(fmt.Sprintf("h%d", i))
					dst := topo.MustLookup(fmt.Sprintf("r%d", i))
					d := cbrDemand(src, dst, simtime.Time(i)*simtime.Time(50*simtime.Millisecond), 1e7, math.Inf(1), uint16(31000+i))
					d.TCP = true
					d.Key.Proto = header.ProtoTCP
					tr = append(tr, d)
				}
				return tr
			},
		},
		{
			name:   "leafspine-mix",
			rtt:    500 * simtime.Microsecond,
			window: 2 * simtime.Second,
			mkTopo: func() *netgraph.Topology {
				return netgraph.LeafSpine(3, 2, 3, netgraph.Gig, netgraph.TenGig)
			},
			mkTr: func(topo *netgraph.Topology) traffic.Trace {
				g := traffic.NewGenerator(21)
				return g.PoissonArrivals(traffic.PoissonConfig{
					Hosts: topo.Hosts(), Lambda: 30, Horizon: simtime.Second,
					Sizes: traffic.FixedSize(4e6), TCPFraction: 0.5, CBRRateBps: 2e7,
				})
			},
		},
	}

	for _, sc := range scenarios {
		sc := sc
		sp.cell(sc.name, func() [][]string {
			// Flow-level run (proactive state so both sides see identical rules).
			topoF := sc.mkTopo()
			trF := sc.mkTr(topoF)
			startF := o.now()
			engF := mustEngine(horse.New(topoF,
				horse.WithController(&controller.ProactiveMAC{}),
				horse.WithMiss(dataplane.MissDrop),
				// With µs control latency the proactive installs beat the
				// first arrival, so both simulators see identical rules.
				horse.WithControlLatency(simtime.Microsecond),
				horse.WithStatsEvery(100*simtime.Millisecond),
				horse.WithTCP(tcpmodel.Params{RTT: sc.rtt, MSS: 1500, InitialWindow: 10}),
			))
			engF.Load(trF)
			colF, _ := engF.Run(context.Background(), simtime.Time(sc.window))
			wallF := o.since(startF)

			// Packet-level run with identical pre-installed state.
			topoP := sc.mkTopo()
			trP := sc.mkTr(topoP)
			engP := mustEngine(horse.New(topoP,
				horse.WithFidelity(horse.Packet),
				horse.WithMiss(dataplane.MissDrop),
				horse.WithStatsEvery(100*simtime.Millisecond),
			))
			installMACRoutes(engP.Network())
			startP := o.now()
			engP.Load(trP)
			colP, _ := engP.Run(context.Background(), simtime.Time(sc.window))
			wallP := o.since(startP)

			fctF, fctP := colF.FCTs(), colP.FCTs()
			w1 := metrics.W1Distance(fctF, fctP)
			relerr := 0.0
			if m := metrics.Mean(fctP); m > 0 {
				relerr = math.Abs(metrics.Mean(fctF)-m) / m
			}
			utilErr := utilMAE(colF, colP)
			speedup := float64(wallP) / math.Max(float64(wallF), 1)
			return row(
				sc.name, fmt.Sprintf("%d", len(trF)), f3(w1), f3(relerr), f3(utilErr),
				ms(wallF), ms(wallP), f2(speedup),
			)
		})
	}
	sp.table.Notes = append(sp.table.Notes,
		"expected shape: FCT relative error within ~10-20% (fs-sdn premise), packet-level wall time orders of magnitude higher",
	)
	return sp
}

// utilMAE computes the mean absolute error between mean link utilizations
// of the two runs over the links both observed.
func utilMAE(a, b *stats.Collector) float64 {
	ma, mb := a.MeanLinkUtilization(), b.MeanLinkUtilization()
	var sum float64
	var n int
	for k, va := range ma {
		if vb, ok := mb[k]; ok {
			sum += math.Abs(va - vb)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// installMACRoutes pre-installs MAC shortest-path forwarding directly on
// the packet baseline's switches (the shared dataplane helper).
func installMACRoutes(net *dataplane.Network) { dataplane.InstallMACRoutes(net) }

// E4IXPReplay runs the paper's headline evaluation: an IXP-scale fabric
// with diurnal gravity traffic replayed over a simulated day.
func E4IXPReplay(memberCounts []int, hours int) *Table {
	return E4With(Options{}, memberCounts, hours)
}

// E4With is E4IXPReplay under explicit execution options.
func E4With(o Options, memberCounts []int, hours int) *Table {
	return runSpecs(o, []*spec{e4Spec(o, memberCounts, hours)})[0]
}

func e4Spec(o Options, memberCounts []int, hours int) *spec {
	sp := &spec{table: &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("IXP replay: %dh diurnal gravity traffic", hours),
		Columns: []string{"members", "switches", "epoch-flows", "events", "sim-hours", "wall-ms", "peak-fabric-util"},
	}}
	for _, members := range memberCounts {
		members := members
		sp.cell(fmt.Sprintf("members=%d", members), func() [][]string {
			prof := ixp.LargeIXP(members)
			fab, err := ixp.Build(prof)
			if err != nil {
				return nil
			}
			agg := float64(members) * 1e9 // ~1 Gbps mean per member (busy IXP)
			tr := fab.ReplayTrace(agg, 0.2, simtime.Hour, simtime.Duration(hours)*simtime.Hour, 9)
			eng := mustEngine(horse.New(fab.Topo,
				horse.WithController(controller.NewChain(&controller.ECMPLoadBalancer{})),
				horse.WithMiss(dataplane.MissController),
				horse.WithStatsEvery(10*simtime.Minute),
			))
			eng.Load(tr)
			start := o.now()
			col, _ := eng.Run(context.Background(), simtime.Time(simtime.Duration(hours+1)*simtime.Hour))
			wall := o.since(start)
			peak := 0.0
			for d, u := range col.PeakLinkUtilization() {
				l := fab.Topo.Link(d.Link)
				if fab.Topo.Node(l.A).Kind == netgraph.KindSwitch && fab.Topo.Node(l.B).Kind == netgraph.KindSwitch && u > peak {
					peak = u
				}
			}
			return row(
				fmt.Sprintf("%d", members), fmt.Sprintf("%d", len(fab.Topo.Switches())),
				fmt.Sprintf("%d", len(tr)), di(col.EventsRun),
				fmt.Sprintf("%d", hours), ms(wall), f2(peak),
			)
		})
	}
	sp.table.Notes = append(sp.table.Notes, "expected shape: a simulated day at IXP scale completes in seconds of wall time; events scale ~linearly with members²·density")
	return sp
}

// E5ConfigSweep is the paper's "multiple configurations, from basic
// forwarding based on source and destination MAC, to more complex
// combination of policies": identical fabric and workload under
// increasingly rich policy configurations.
func E5ConfigSweep() *Table { return E5With(Options{}) }

// E5With is E5ConfigSweep under explicit execution options.
func E5With(o Options) *Table { return runSpecs(o, []*spec{e5Spec(o)})[0] }

func e5Spec(o Options) *spec {
	sp := &spec{table: &Table{
		ID:      "E5",
		Title:   "Policy configuration sweep on a fixed IXP fabric",
		Columns: []string{"config", "flows", "events", "flowmods", "packetins", "wall-ms", "mean-FCT-s"},
	}}
	configs := []struct {
		name string
		mk   func(fab *ixp.Fabric) flowsim.Controller
	}{
		{"mac-forwarding", func(*ixp.Fabric) flowsim.Controller {
			return controller.NewChain(&controller.ProactiveMAC{})
		}},
		{"reactive-mac", func(*ixp.Fabric) flowsim.Controller {
			return controller.NewChain(&controller.ReactiveMAC{IdleTimeout: 30 * simtime.Second})
		}},
		{"+load-balancing", func(*ixp.Fabric) flowsim.Controller {
			return controller.NewChain(&controller.ECMPLoadBalancer{})
		}},
		{"+app-peering", func(fab *ixp.Fabric) flowsim.Controller {
			return controller.NewChain(
				&controller.ECMPLoadBalancer{},
				&controller.AppPeering{Rules: []controller.PeeringRule{{
					Ingress: fab.Edges[0], Egress: fab.Edges[2],
					AppMatch: header.Match{}.WithProto(header.ProtoTCP).WithDstPort(header.PortHTTP),
				}}},
			)
		}},
		{"+rate-limit+blackhole", func(fab *ixp.Fabric) flowsim.Controller {
			return controller.NewChain(
				&controller.ECMPLoadBalancer{},
				&controller.AppPeering{Rules: []controller.PeeringRule{{
					Ingress: fab.Edges[0], Egress: fab.Edges[2],
					AppMatch: header.Match{}.WithProto(header.ProtoTCP).WithDstPort(header.PortHTTP),
				}}},
				&controller.RateLimiter{Rules: []controller.RateLimitRule{{
					Match: header.Match{}.WithEthDst(addr.HostMAC(fab.Members[1])), RateBps: 2e8, At: fab.Edges[1],
				}}},
				&controller.Blackhole{Matches: []header.Match{
					header.Match{}.WithEthDst(addr.HostMAC(fab.Members[2])),
				}},
				&controller.Monitor{Every: simtime.Second},
			)
		}},
	}
	for _, cfg := range configs {
		cfg := cfg
		sp.cell(cfg.name, func() [][]string {
			fab, err := ixp.Build(ixp.SmallIXP())
			if err != nil {
				return nil
			}
			tr := fab.ReplayTrace(4e9, 0.3, simtime.Minute, 10*simtime.Minute, 31)
			col, wall := o.runFlowSim(fab.Topo, cfg.mk(fab), tr, 0)
			return row(
				cfg.name, fmt.Sprintf("%d", len(tr)), di(col.EventsRun),
				di(col.FlowMods), di(col.PacketIns), ms(wall), f3(metrics.Mean(col.FCTs())),
			)
		})
	}
	sp.table.Notes = append(sp.table.Notes,
		"expected shape: richer configurations cost more control events (flowmods/packetins) and wall time; reactive-mac pays per-flow punts",
	)
	return sp
}

// E6Ablations benchmarks the DESIGN.md design choices: event-queue
// implementation and fair-share recompute strategy, on a high-churn
// workload.
func E6Ablations() *Table { return E6With(Options{}) }

// E6With is E6Ablations under explicit execution options.
func E6With(o Options) *Table { return runSpecs(o, []*spec{e6Spec(o)})[0] }

// e6SharedFabric builds workload A: one shared fabric — every flow shares
// links with every other, so the dirty component is the whole network and
// incremental solving pays pure overhead.
func e6SharedFabric() (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.LeafSpine(6, 3, 6, netgraph.Gig, netgraph.TenGig)
	g := traffic.NewGenerator(77)
	tr := g.PoissonArrivals(traffic.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 2000, Horizon: simtime.Second,
		Sizes: traffic.Pareto{XMin: 1e5, Alpha: 1.5}, TCPFraction: 0.5, CBRRateBps: 1e7,
	})
	return topo, tr
}

// e6Islands builds workload B: 24 disjoint islands in one topology —
// flows never share links across islands, so components stay small and
// incremental solving touches ~1/24 of the flows per event.
func e6Islands() (*netgraph.Topology, traffic.Trace) {
	const islands = 24
	topo := netgraph.New()
	var islandHosts [islands][]netgraph.NodeID
	for i := 0; i < islands; i++ {
		sw := topo.AddSwitch(fmt.Sprintf("isw%d", i))
		for j := 0; j < 4; j++ {
			h := topo.AddHost(fmt.Sprintf("ih%d_%d", i, j))
			topo.Connect(sw, h, 1e9, 50*simtime.Microsecond)
			islandHosts[i] = append(islandHosts[i], h)
		}
	}
	var tr traffic.Trace
	for i := 0; i < islands; i++ {
		g := traffic.NewGenerator(int64(100 + i))
		tr = append(tr, g.PoissonArrivals(traffic.PoissonConfig{
			Hosts: islandHosts[i], Lambda: 100, Horizon: simtime.Second,
			Sizes: traffic.Pareto{XMin: 1e5, Alpha: 1.5}, TCPFraction: 0.5, CBRRateBps: 1e7,
		})...)
	}
	tr.Sort()
	return topo, tr
}

func e6Spec(o Options) *spec {
	sp := &spec{table: &Table{
		ID:      "E6",
		Title:   "Ablations: event queue and fair-share recompute strategy",
		Columns: []string{"workload", "variant", "events", "rate-changes", "wall-ms"},
	}}
	variants := []struct {
		name  string
		queue horse.EventQueue
		full  bool
	}{
		{"heap+incremental", horse.EventQueueHeap, false},
		{"calendar+incremental", horse.EventQueueCalendar, false},
		{"wheel+incremental", horse.EventQueueWheel, false},
		{"heap+full-recompute", horse.EventQueueHeap, true},
	}
	workloads := []struct {
		name  string
		build func() (*netgraph.Topology, traffic.Trace)
	}{
		{"shared-fabric", e6SharedFabric},
		{"24-islands", e6Islands},
	}
	for _, wl := range workloads {
		for _, v := range variants {
			wl, v := wl, v
			sp.cell(wl.name+"/"+v.name, func() [][]string {
				topo, tr := wl.build()
				opts := []horse.Option{
					horse.WithController(controller.NewChain(&controller.ECMPLoadBalancer{})),
					horse.WithMiss(dataplane.MissController),
				}
				if v.queue != horse.EventQueueHeap {
					opts = append(opts, horse.WithEventQueue(v.queue))
				}
				if v.full {
					opts = append(opts, horse.WithFullRecompute())
				}
				eng := mustEngine(horse.New(topo, opts...))
				eng.Load(tr)
				start := o.now()
				col, _ := eng.Run(context.Background(), simtime.Time(10*simtime.Minute))
				wall := o.since(start)
				return row(wl.name, v.name, di(col.EventsRun), di(col.RateChanges), ms(wall))
			})
		}
	}
	sp.table.Notes = append(sp.table.Notes,
		"expected shape: full recompute wins when traffic is one component (shared fabric); incremental wins when traffic decomposes (islands)",
		"expected shape: queue choice is second-order at these event counts",
	)
	return sp
}

// E7HybridFidelity is the hybrid-engine evaluation: one reactive scenario
// swept from pure flow-level to pure packet-level fidelity under a single
// controller, charting accuracy (per-flow FCT error against the
// standalone packet engine) against simulation work (events/sec).
func E7HybridFidelity(fractions []float64) *Table {
	return E7With(Options{}, fractions)
}

// E7With is E7HybridFidelity under explicit execution options.
func E7With(o Options, fractions []float64) *Table {
	return runSpecs(o, []*spec{e7Spec(o, fractions)})[0]
}

// e7Scenario builds the fixed reactive scenario every E7 arm replays: a
// dumbbell with a congestible core and a mixed CBR/TCP Poisson workload
// under reactive MAC forwarding — every flow must punt before it moves, so
// the control plane is exercised at every fidelity.
func e7Scenario() (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.Dumbbell(4, 4, netgraph.Gig,
		netgraph.LinkSpec{BandwidthBps: 2e8, Delay: simtime.Millisecond})
	g := traffic.NewGenerator(55)
	tr := g.PoissonArrivals(traffic.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 40, Horizon: 500 * simtime.Millisecond,
		Sizes: traffic.FixedSize(2e6), TCPFraction: 0.5, CBRRateBps: 2e7,
	})
	return topo, tr
}

func e7Controller() flowsim.Controller {
	return controller.NewChain(&controller.ReactiveMAC{})
}

const e7Window = simtime.Time(30 * simtime.Second)

func e7Spec(o Options, fractions []float64) *spec {
	sp := &spec{table: &Table{
		ID:    "E7",
		Title: "Hybrid fidelity sweep: packet-level share vs accuracy vs events/sec",
		Columns: []string{
			"mode", "pkt-flows", "flow-flows", "completed", "pkt-hops",
			"events", "wall-ms", "events/ms", "fct-relerr", "pkt-parity",
		},
	}}
	// One cell: the sweep compares every arm against the in-cell packet
	// reference, so rows assemble sequentially (and the table stays
	// byte-identical for any -parallel by construction).
	sp.cell("sweep", func() [][]string {
		var rows [][]string

		// Reference: the standalone controller-attached packet engine.
		topoR, trR := e7Scenario()
		engR := mustEngine(horse.New(topoR,
			horse.WithFidelity(horse.Packet),
			horse.WithMiss(dataplane.MissController),
			horse.WithController(e7Controller()),
			horse.WithControlLatency(simtime.Millisecond),
		))
		simR := engR.(*packetsim.Simulator)
		engR.Load(trR)
		startR := o.now()
		colR, _ := engR.Run(context.Background(), e7Window)
		wallR := o.since(startR)
		ref := colR.Flows()
		refFCT := make(map[int64]float64, len(ref))
		completedR := 0
		for _, r := range ref {
			if r.Completed {
				refFCT[r.ID] = r.FCT().Seconds()
				completedR++
			}
		}
		evR := simR.Kernel().Dispatched()
		rows = append(rows, []string{
			"pkt-engine", fmt.Sprintf("%d", len(trR)), "0",
			fmt.Sprintf("%d", completedR), di(simR.PacketsForwarded()),
			di(evR), ms(wallR), f2(float64(evR) / math.Max(float64(wallR.Microseconds())/1000, 1)),
			"0.000", "ref",
		})

		for _, p := range fractions {
			topo, tr := e7Scenario()
			eng := mustEngine(horse.New(topo,
				horse.WithFidelity(horse.Hybrid),
				horse.WithMiss(dataplane.MissController),
				horse.WithController(e7Controller()),
				horse.WithControlLatency(simtime.Millisecond),
				// Flow-level TCP RTT matched to the dumbbell (the E3
				// methodology), so the accuracy column measures fidelity,
				// not a mis-set fluid model.
				horse.WithTCP(tcpmodel.Params{RTT: 2200 * simtime.Microsecond, MSS: 1500, InitialWindow: 10}),
				horse.WithPacketFraction(p),
			))
			hyb := eng.(*hybrid.Simulator)
			eng.Load(tr)
			start := o.now()
			col, _ := eng.Run(context.Background(), e7Window)
			wall := o.since(start)
			recs := hyb.Records()

			// Accuracy: mean relative FCT error over flows completed in
			// both this arm and the reference.
			var errSum float64
			var errN, completed int
			for _, r := range recs {
				if !r.Completed {
					continue
				}
				completed++
				if fr, ok := refFCT[r.ID]; ok && fr > 0 {
					errSum += math.Abs(r.FCT().Seconds()-fr) / fr
					errN++
				}
			}
			relerr := 0.0
			if errN > 0 {
				relerr = errSum / float64(errN)
			}

			// Parity: the 100% arm must reproduce the reference run
			// exactly — same completion set, outcomes, end times, bytes.
			parity := "-"
			if p >= 1 {
				parity = "identical"
				if len(recs) != len(ref) {
					parity = "DIVERGED"
				} else {
					for i := range recs {
						if recs[i].ID != ref[i].ID || recs[i].Completed != ref[i].Completed ||
							recs[i].Outcome != ref[i].Outcome || recs[i].End != ref[i].End ||
							recs[i].SentBits != ref[i].SentBits {
							parity = "DIVERGED"
							break
						}
					}
				}
			}

			pktN, flowN := hyb.Split()
			rows = append(rows, []string{
				fmt.Sprintf("hybrid-%d%%", int(p*100+0.5)),
				fmt.Sprintf("%d", pktN), fmt.Sprintf("%d", flowN),
				fmt.Sprintf("%d", completed), di(hyb.PacketsForwarded()),
				di(col.EventsRun), ms(wall),
				f2(float64(col.EventsRun) / math.Max(float64(wall.Microseconds())/1000, 1)),
				f3(relerr), parity,
			})
		}
		return rows
	})
	sp.table.Notes = append(sp.table.Notes,
		"expected shape: events (and wall time) grow with the packet-level share; fct-relerr shrinks toward 0 at 100%",
		"contract: the 100% arm reports pkt-parity=identical — the hybrid at full fidelity IS the standalone packet engine",
	)
	return sp
}

// E8Resilience is the dynamic-network evaluation: a seed-reproducible
// random link failure/recovery process (scenario.RandomLinkFailures) swept
// over MTBF × recovery time × controller policy, measuring what each
// disruption level costs — reconvergence latency, flows lost, rule churn,
// and FCT stretch against a failure-free baseline of the identical
// workload.
func E8Resilience(mtbfs, recoveries []simtime.Duration) *Table {
	return E8With(Options{}, mtbfs, recoveries)
}

// E8With is E8Resilience under explicit execution options.
func E8With(o Options, mtbfs, recoveries []simtime.Duration) *Table {
	return runSpecs(o, []*spec{e8Spec(o, mtbfs, recoveries)})[0]
}

// e8Policies are the controller policies the resilience sweep contrasts:
// single-path forwarding reconverges through the controller (flush +
// recompute after PortStatus), while ECMP load balancing also has group
// watch-port failover in the data plane.
var e8Policies = []struct {
	name string
	mk   func() flowsim.Controller
}{
	{"forwarding", func() flowsim.Controller { return controller.NewChain(&controller.ProactiveMAC{}) }},
	{"loadbalance", func() flowsim.Controller { return controller.NewChain(&controller.ECMPLoadBalancer{}) }},
}

// e8Scenario builds the fixed fabric and workload every E8 arm disturbs: a
// dual-spine leaf–spine (so every leaf pair has an alternate path) under a
// mixed CBR/TCP Poisson load.
func e8Scenario() (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.LeafSpine(4, 2, 2, netgraph.Gig, netgraph.TenGig)
	g := traffic.NewGenerator(91)
	tr := g.PoissonArrivals(traffic.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 150, Horizon: 2 * simtime.Second,
		Sizes: traffic.Pareto{XMin: 1e5, Alpha: 1.5}, TCPFraction: 0.5, CBRRateBps: 1e7,
	})
	return topo, tr
}

const e8Window = simtime.Time(10 * simtime.Minute)

func e8Spec(o Options, mtbfs, recoveries []simtime.Duration) *spec {
	sp := &spec{table: &Table{
		ID:    "E8",
		Title: "Resilience sweep: MTBF × recovery × policy under random link failures",
		Columns: []string{
			"policy", "mtbf-s", "recovery-s", "failures", "reroutes",
			"reroute-ms", "completed", "lost", "rule-churn", "fct-stretch",
		},
	}}
	// One cell per policy: the failure-free baseline depends only on the
	// policy, so it is simulated once and shared by every (mtbf,
	// recovery) arm — rows still assemble in grid order, so the table
	// stays byte-identical for any -parallel.
	for _, pol := range e8Policies {
		pol := pol
		sp.cell(pol.name, func() [][]string {
			topoB, trB := e8Scenario()
			engB := mustEngine(horse.New(topoB,
				horse.WithController(pol.mk()),
				horse.WithMiss(dataplane.MissController),
			))
			engB.Load(trB)
			colB, _ := engB.Run(context.Background(), e8Window)

			var rows [][]string
			for _, mtbf := range mtbfs {
				for _, rec := range recoveries {
					// Disturbed run: reproducible failures on core links,
					// compiled onto the engine at build time (WithScenario
					// validates and applies before any Load).
					topo, tr := e8Scenario()
					tl := scenario.RandomLinkFailures(topo, scenario.FailureConfig{
						Seed: 7, MTBF: mtbf, Recovery: rec,
						Horizon: simtime.Time(2 * simtime.Second), CoreOnly: true,
					})
					eng := mustEngine(horse.New(topo,
						horse.WithController(pol.mk()),
						horse.WithMiss(dataplane.MissController),
						horse.WithScenario(tl),
					))
					eng.Load(tr)
					col, _ := eng.Run(context.Background(), e8Window)

					out := scenario.Evaluate(tl, col, colB)
					rows = append(rows, []string{
						pol.name, f2(mtbf.Seconds()), f2(rec.Seconds()),
						fmt.Sprintf("%d", out.Failures), fmt.Sprintf("%d", out.Reroutes),
						ms(time.Duration(out.RerouteLatency)),
						fmt.Sprintf("%d", out.FlowsCompleted), fmt.Sprintf("%d", out.FlowsLost),
						di(out.RuleChurn), f2(out.FCTStretch),
					})
				}
			}
			return rows
		})
	}
	sp.table.Notes = append(sp.table.Notes,
		"expected shape: shorter MTBF / longer recovery raise lost flows, rule churn, and fct-stretch",
		"expected shape: loadbalance reroutes at the failure instant (watch-port failover); forwarding pays the controller round trip",
	)
	return sp
}

// E9ShardScaling is the multi-core evaluation: the packet engine on
// fat-tree fabrics of growing arity, swept over shard counts, measuring
// events/sec and the speedup against the serial engine — with an in-cell
// byte-parity check of Records() against the serial reference, since the
// sharded executor's contract is "same records at any K". A second,
// partition-hostile cell (a star of fat-trees with the load skewed onto
// one tree) sweeps the balancing modes: uniform edge-cut vs
// event-rate-weighted partitioning vs barrier work stealing.
func E9ShardScaling(arities, shardCounts []int) *Table {
	return E9With(Options{}, arities, shardCounts)
}

// E9With is E9ShardScaling under explicit execution options.
func E9With(o Options, arities, shardCounts []int) *Table {
	return runSpecs(o, []*spec{e9Spec(o, arities, shardCounts)})[0]
}

// e9Window bounds every E9 run.
const e9Window = simtime.Time(2 * simtime.Second)

// e9Scenario builds the E9 workload for one fat-tree arity: pre-installed
// MAC routes (the E3 identical-state methodology — E9 measures the
// executor, not the control plane) and a mixed CBR/TCP Poisson load that
// crosses pods, so cut links carry real traffic.
func e9Scenario(k int) (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.FatTree(k, netgraph.Gig)
	g := traffic.NewGenerator(101)
	tr := g.PoissonArrivals(traffic.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 40 * float64(len(topo.Hosts())),
		Horizon: 200 * simtime.Millisecond,
		Sizes:   traffic.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 2e7,
	})
	return topo, tr
}

// e9SkewScenario builds the partition-hostile E9 cell: a star of three
// k=4 fat-trees where the Poisson load runs at full per-host intensity
// inside tree 0 and only a light cross-tree background touches the hub
// cut. Uniform edge-cut partitions are even by switch count here but
// wildly uneven by event rate — the scenario the balancing modes exist
// for.
func e9SkewScenario() (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.StarOfFatTrees(3, 4, netgraph.Gig)
	hosts := topo.Hosts() // tree t owns hosts[16t : 16t+16]
	g := traffic.NewGenerator(131)
	hot := g.PoissonArrivals(traffic.PoissonConfig{
		Hosts: hosts[:16], Lambda: 40 * 16,
		Horizon: 200 * simtime.Millisecond,
		Sizes:   traffic.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 2e7,
	})
	bg := g.PoissonArrivals(traffic.PoissonConfig{
		Hosts: hosts[16:], Lambda: 2 * 32,
		Horizon: 200 * simtime.Millisecond,
		Sizes:   traffic.FixedSize(5e5), CBRRateBps: 2e7,
	})
	tr := append(hot, bg...)
	tr.Sort()
	return topo, tr
}

func e9Spec(o Options, arities, shardCounts []int) *spec {
	sp := &spec{table: &Table{
		ID:    "E9",
		Title: "Sharded multi-core scaling: fabric × shard count × balancing",
		Columns: []string{
			"topo", "fat-tree-k", "switches", "hosts", "flows", "shards", "queue",
			"balance", "pkt-hops", "events", "wall-ms", "events/ms", "shard-speedup", "parity",
		},
	}}
	for _, k := range arities {
		k := k
		sp.cell(fmt.Sprintf("k=%d", k), func() [][]string {
			var rows [][]string
			run := func(shards int, q horse.EventQueue) (*stats.Collector, *packetsim.Simulator, time.Duration) {
				topo, tr := e9Scenario(k)
				eng := mustEngine(horse.New(topo,
					horse.WithFidelity(horse.Packet),
					horse.WithMiss(dataplane.MissDrop),
					horse.WithShards(shards),
					horse.WithEventQueue(q),
				))
				installMACRoutes(eng.Network())
				eng.Load(tr)
				start := o.now()
				col, _ := eng.Run(context.Background(), e9Window)
				return col, eng.(*packetsim.Simulator), o.since(start)
			}
			// The serial heap run is the reference for every (queue, shards)
			// arm: parity across both dimensions at once pins the executor
			// contract AND the backends' identical dispatch order.
			colRef, simRef, wallRef := run(1, horse.EventQueueHeap)
			ref := colRef.Flows()
			for _, q := range []horse.EventQueue{horse.EventQueueHeap, horse.EventQueueWheel} {
				for _, shards := range shardCounts {
					col, sim, wall := colRef, simRef, wallRef
					if shards != 1 || q != horse.EventQueueHeap {
						col, sim, wall = run(shards, q)
					}
					recs := col.Flows()
					topo := sim.Topology()
					ev := sim.EventsDispatched()
					rows = append(rows, []string{
						"fat-tree",
						fmt.Sprintf("%d", k),
						fmt.Sprintf("%d", len(topo.Switches())),
						fmt.Sprintf("%d", len(topo.Hosts())),
						fmt.Sprintf("%d", len(recs)),
						fmt.Sprintf("%d", shards),
						q.String(),
						"uniform",
						di(sim.PacketsForwarded()), di(ev), ms(wall),
						f2(float64(ev) / math.Max(float64(wall.Microseconds())/1000, 1)),
						f2(float64(wallRef) / math.Max(float64(wall), 1)),
						e9Parity(recs, ref),
					})
				}
			}
			return rows
		})
	}
	sp.cell("skewed-star", func() [][]string {
		var rows [][]string
		run := func(shards int, b horse.ShardBalancing) (*stats.Collector, *packetsim.Simulator, time.Duration) {
			topo, tr := e9SkewScenario()
			opts := []horse.Option{
				horse.WithFidelity(horse.Packet),
				horse.WithMiss(dataplane.MissDrop),
				horse.WithShards(shards),
				horse.WithEventQueue(horse.EventQueueHeap),
			}
			if shards > 1 {
				opts = append(opts, horse.WithShardBalancing(b))
			}
			eng := mustEngine(horse.New(topo, opts...))
			installMACRoutes(eng.Network())
			eng.Load(tr)
			start := o.now()
			col, _ := eng.Run(context.Background(), e9Window)
			return col, eng.(*packetsim.Simulator), o.since(start)
		}
		// Serial heap reference; every balancing arm must reproduce it
		// byte-for-byte — the pinned invariant of weighted partitioning
		// and barrier stealing.
		colRef, simRef, wallRef := run(1, horse.BalanceUniform)
		ref := colRef.Flows()
		for _, b := range []horse.ShardBalancing{horse.BalanceUniform, horse.BalanceWeighted, horse.BalanceSteal} {
			for _, shards := range shardCounts {
				if b != horse.BalanceUniform && shards < 2 {
					continue // balancing is a no-op on a single shard
				}
				col, sim, wall := colRef, simRef, wallRef
				if shards != 1 {
					col, sim, wall = run(shards, b)
				}
				recs := col.Flows()
				topo := sim.Topology()
				ev := sim.EventsDispatched()
				rows = append(rows, []string{
					"star-of-trees",
					"4",
					fmt.Sprintf("%d", len(topo.Switches())),
					fmt.Sprintf("%d", len(topo.Hosts())),
					fmt.Sprintf("%d", len(recs)),
					fmt.Sprintf("%d", shards),
					"heap",
					b.String(),
					di(sim.PacketsForwarded()), di(ev), ms(wall),
					f2(float64(ev) / math.Max(float64(wall.Microseconds())/1000, 1)),
					f2(float64(wallRef) / math.Max(float64(wall), 1)),
					e9Parity(recs, ref),
				})
			}
		}
		return rows
	})
	sp.table.Notes = append(sp.table.Notes,
		"expected shape: events/ms grows with shard count on multi-core hardware (speedup > 1 for K > 1); parity stays identical at every K, every queue backend, and every balancing mode",
		"skewed star: weighted/steal arms should beat the uniform arm at the same shard count — uniform edge-cut leaves the hot tree behind few shards",
		"wall times are contended when sibling cells share the pool; the speedup column divides same-cell runs, and CI runners with few cores report speedup ~1",
	)
	return sp
}

// e9Parity byte-compares an arm's flow records against the cell's serial
// reference.
func e9Parity(recs, ref []stats.FlowRecord) string {
	if len(recs) != len(ref) {
		return "DIVERGED"
	}
	for i := range recs {
		if recs[i] != ref[i] {
			return "DIVERGED"
		}
	}
	return "identical"
}

// E10DegradedLinks is the lossy-link evaluation: the link-degradation
// models (internal/linkmodel) swept across loss regimes and all three
// fidelities, measuring goodput, retransmit ratio, corruption drops, and
// FCT stretch against a pristine-link baseline of the identical
// workload — with in-cell byte-parity of every sharded/backend arm
// against the serial heap reference, since the linkmodel contract is
// "same records at any shard count and any queue backend, models on".
func E10DegradedLinks(shardCounts []int) *Table {
	return E10With(Options{}, shardCounts)
}

// E10With is E10DegradedLinks under explicit execution options.
func E10With(o Options, shardCounts []int) *Table {
	return runSpecs(o, []*spec{e10Spec(o, e10Models(), shardCounts)})[0]
}

// E10QuickWith is the reduced-model-grid E10 the Quick suite runs (the
// -quick -only E10 arm must match it for baseline comparisons).
func E10QuickWith(o Options, shardCounts []int) *Table {
	return runSpecs(o, []*spec{e10Spec(o, e10QuickModels(), shardCounts)})[0]
}

// e10Model is one degradation arm of the E10 sweep.
type e10Model struct {
	name, param string
	m           horse.LinkModel
}

// e10Models is the report-scale model grid: light and heavy Bernoulli
// loss, a bursty Gilbert–Elliott channel, and SNR-stepped adaptive rate.
func e10Models() []e10Model {
	return []e10Model{
		{"bernoulli", "p=0.01", horse.BernoulliLoss{P: 0.01}},
		{"bernoulli", "p=0.05", horse.BernoulliLoss{P: 0.05}},
		{"gilbert-elliott", "burst", horse.GilbertElliott{
			PGoodBad: 0.05, PBadGood: 0.3, LossGood: 0.001, LossBad: 0.5,
		}},
		{"adaptive-rate", "4-level", horse.AdaptiveRate{
			Levels: 4, Floor: 0.25, Every: 10 * simtime.Millisecond,
		}},
	}
}

// e10QuickModels is the reduced grid Quick (and the bench baseline) runs.
func e10QuickModels() []e10Model {
	return []e10Model{
		{"bernoulli", "p=0.02", horse.BernoulliLoss{P: 0.02}},
		{"adaptive-rate", "4-level", horse.AdaptiveRate{
			Levels: 4, Floor: 0.25, Every: 10 * simtime.Millisecond,
		}},
	}
}

// e10Window bounds every E10 run.
const e10Window = simtime.Time(2 * simtime.Second)

// e10Scenario builds the fixed fabric and workload every E10 arm
// degrades: a k=4 fat-tree under a cross-pod CBR/TCP Poisson load (the
// E9 fabric at a gentler arrival rate, so loss — not queueing — is the
// dominant effect being measured).
func e10Scenario() (*netgraph.Topology, traffic.Trace) {
	topo := netgraph.FatTree(4, netgraph.Gig)
	g := traffic.NewGenerator(107)
	tr := g.PoissonArrivals(traffic.PoissonConfig{
		Hosts: topo.Hosts(), Lambda: 20 * float64(len(topo.Hosts())),
		Horizon: 200 * simtime.Millisecond,
		Sizes:   traffic.FixedSize(1e6), TCPFraction: 0.5, CBRRateBps: 2e7,
	})
	return topo, tr
}

func e10Spec(o Options, models []e10Model, shardCounts []int) *spec {
	sp := &spec{table: &Table{
		ID:    "E10",
		Title: "Degraded links: loss model × fidelity × shards, vs pristine baseline",
		Columns: []string{
			"model", "param", "fidelity", "shards", "queue", "balance",
			"completed", "goodput-mbps", "retx-ratio", "corrupted", "fct-stretch", "parity",
		},
	}}

	// One run of the scenario at one fidelity. The E3 identical-state
	// methodology: proactive MAC rules installed before the first arrival,
	// so every fidelity forwards on the same paths and the deltas below
	// measure the link models, not the control plane.
	run := func(fid horse.Fidelity, m horse.LinkModel, shards int, q horse.EventQueue, b horse.ShardBalancing) *stats.Collector {
		topo, tr := e10Scenario()
		opts := []horse.Option{
			horse.WithFidelity(fid),
			horse.WithMiss(dataplane.MissDrop),
			horse.WithController(controller.NewChain(&controller.ProactiveMAC{})),
			horse.WithControlLatency(simtime.Microsecond),
			horse.WithEventQueue(q),
		}
		if fid != horse.Packet {
			// The fluid TCP model, RTT-matched to the fat-tree; the packet
			// engine models TCP per packet and rejects the option.
			opts = append(opts, horse.WithTCP(tcpmodel.Params{RTT: 500 * simtime.Microsecond, MSS: 1500, InitialWindow: 10}))
		}
		if fid == horse.Hybrid {
			opts = append(opts, horse.WithPacketFraction(0.5))
		} else if shards > 1 {
			opts = append(opts, horse.WithShards(shards))
		}
		if b != horse.BalanceUniform {
			opts = append(opts, horse.WithShardBalancing(b))
		}
		if m != nil {
			opts = append(opts, horse.WithLinkModel(m), horse.WithLinkModelSeed(7))
		}
		eng := mustEngine(horse.New(topo, opts...))
		eng.Load(tr)
		col, _ := eng.Run(context.Background(), e10Window)
		return col
	}

	// goodput in Mbps over the workload horizon, from completed flows.
	goodput := func(col *stats.Collector) float64 {
		var bits float64
		for _, r := range col.Flows() {
			if r.Completed {
				bits += r.SentBits
			}
		}
		return bits / e10Window.Seconds() / 1e6
	}
	retxRatio := func(col *stats.Collector) float64 {
		if col.PacketsSent == 0 {
			return 0
		}
		return float64(col.Retransmits) / float64(col.PacketsSent)
	}
	completed := func(col *stats.Collector) int {
		n := 0
		for _, r := range col.Flows() {
			if r.Completed {
				n++
			}
		}
		return n
	}

	// One cell per (model, fidelity): the pristine baseline and the serial
	// degraded reference are simulated once per cell and shared by every
	// shard/backend arm; rows assemble in grid order, so the table stays
	// byte-identical for any -parallel.
	for _, mdl := range models {
		for _, fid := range []horse.Fidelity{horse.Flow, horse.Packet, horse.Hybrid} {
			mdl, fid := mdl, fid
			sp.cell(fmt.Sprintf("%s-%s/%s", mdl.name, mdl.param, fid), func() [][]string {
				clean := run(fid, nil, 1, horse.EventQueueHeap, horse.BalanceUniform)
				cleanFCT := metrics.Mean(clean.FCTs())

				// Serial heap run with the model on: the parity reference.
				refCol := run(fid, mdl.m, 1, horse.EventQueueHeap, horse.BalanceUniform)
				ref := refCol.Flows()

				// The arm grid per fidelity: the packet engine sweeps
				// shards × backend plus a BalanceSteal arm, the flow engine
				// sweeps shards, the (serial-only) hybrid sweeps backends.
				type arm struct {
					shards int
					q      horse.EventQueue
					b      horse.ShardBalancing
				}
				var arms []arm
				switch fid {
				case horse.Packet:
					for _, q := range []horse.EventQueue{horse.EventQueueHeap, horse.EventQueueWheel} {
						for _, s := range shardCounts {
							arms = append(arms, arm{s, q, horse.BalanceUniform})
						}
					}
					if max := shardCounts[len(shardCounts)-1]; max > 1 {
						arms = append(arms, arm{max, horse.EventQueueHeap, horse.BalanceSteal})
					}
				case horse.Flow:
					for _, s := range shardCounts {
						arms = append(arms, arm{s, horse.EventQueueHeap, horse.BalanceUniform})
					}
				case horse.Hybrid:
					arms = append(arms, arm{1, horse.EventQueueHeap, horse.BalanceUniform}, arm{1, horse.EventQueueWheel, horse.BalanceUniform})
				}

				var rows [][]string
				for _, a := range arms {
					col := refCol
					if a.shards != 1 || a.q != horse.EventQueueHeap || a.b != horse.BalanceUniform {
						col = run(fid, mdl.m, a.shards, a.q, a.b)
					}
					stretch := 0.0
					if cleanFCT > 0 {
						stretch = metrics.Mean(col.FCTs()) / cleanFCT
					}
					rows = append(rows, []string{
						mdl.name, mdl.param, fid.String(),
						fmt.Sprintf("%d", a.shards), a.q.String(), a.b.String(),
						fmt.Sprintf("%d", completed(col)), f2(goodput(col)),
						f3(retxRatio(col)), di(col.PacketsCorrupted), f2(stretch),
						e9Parity(col.Flows(), ref),
					})
				}
				return rows
			})
		}
	}
	sp.table.Notes = append(sp.table.Notes,
		"expected shape: goodput falls and retx-ratio/fct-stretch rise with loss; adaptive-rate degrades goodput with no corruption drops",
		"contract: parity stays identical at every shard count, queue backend, and balancing mode with models enabled — the linkmodel streams are seed-deterministic and owner-shard-driven",
	)
	return sp
}

// All runs every experiment at report scale.
func All() []*Table { return AllWith(Options{}) }

// AllWith runs every experiment at report scale, fanning all cells across
// one worker pool.
func AllWith(o Options) []*Table {
	return runSpecs(o, []*spec{
		e1Spec(o),
		e2Spec(o, []int{4, 8, 16, 32}, []float64{200, 1000, 5000}),
		e3Spec(o),
		e4Spec(o, []int{100, 200, 400}, 24),
		e5Spec(o),
		e6Spec(o),
		e7Spec(o, []float64{0, 0.25, 0.5, 0.75, 1}),
		e8Spec(o, []simtime.Duration{500 * simtime.Millisecond, 2 * simtime.Second},
			[]simtime.Duration{100 * simtime.Millisecond, 400 * simtime.Millisecond}),
		e9Spec(o, []int{4, 8}, []int{1, 2, 4, 8}),
		e10Spec(o, e10Models(), []int{1, 4}),
	})
}

// Quick runs a reduced suite for tests.
func Quick() []*Table { return QuickWith(Options{}) }

// QuickWith runs the reduced suite under explicit execution options.
func QuickWith(o Options) []*Table {
	return runSpecs(o, []*spec{
		e1Spec(o),
		e2Spec(o, []int{4}, []float64{200}),
		e3Spec(o),
		e4Spec(o, []int{100}, 6),
		e5Spec(o),
		e6Spec(o),
		e7Spec(o, []float64{0, 0.5, 1}),
		e8Spec(o, []simtime.Duration{500 * simtime.Millisecond},
			[]simtime.Duration{200 * simtime.Millisecond}),
		e9Spec(o, []int{4}, []int{1, 4}),
		e10Spec(o, e10QuickModels(), []int{1, 4}),
	})
}
