package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"horse/internal/simtime"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q: %v", tb.ID, row, col, tb.Rows[row][col], err)
	}
	return v
}

func colIndex(tb *Table, name string) int {
	for i, c := range tb.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

func TestE1Shape(t *testing.T) {
	tb := E1PolicyCoexistence()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	fct := colIndex(tb, "mean-FCT-s")
	drop := colIndex(tb, "dropped")
	// Misconfigured LB must cost FCT versus balanced ECMP.
	if cell(t, tb, 1, fct) <= cell(t, tb, 0, fct) {
		t.Errorf("misconfigured LB FCT %s not worse than balanced %s",
			tb.Rows[1][fct], tb.Rows[0][fct])
	}
	// The all-policies run blackholes traffic.
	if cell(t, tb, 2, drop) == 0 {
		t.Error("all-policies run dropped nothing; blackhole inactive")
	}
}

func TestE2Shape(t *testing.T) {
	tb := E2Scale([]int{4, 8}, []float64{200})
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	ev := colIndex(tb, "events")
	for i := range tb.Rows {
		if cell(t, tb, i, ev) == 0 {
			t.Errorf("row %d ran no events", i)
		}
	}
}

func TestE3Shape(t *testing.T) {
	tb := E3Accuracy()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	rel := colIndex(tb, "fct-relerr")
	speedup := colIndex(tb, "speedup")
	// CBR scenario must be near-exact.
	if got := cell(t, tb, 0, rel); got > 0.05 {
		t.Errorf("CBR fct relative error = %g, want < 5%%", got)
	}
	// Every scenario must show a flow-level speedup.
	for i := range tb.Rows {
		if cell(t, tb, i, speedup) < 1 {
			t.Errorf("scenario %s: packet-level faster than flow-level?", tb.Rows[i][0])
		}
	}
	// TCP scenarios stay within the same order of magnitude.
	for i := 1; i < 3; i++ {
		if got := cell(t, tb, i, rel); got > 1.0 {
			t.Errorf("scenario %s: fct relative error = %g, want < 100%%", tb.Rows[i][0], got)
		}
	}
}

func TestE4Shape(t *testing.T) {
	tb := E4IXPReplay([]int{100}, 3)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if cell(t, tb, 0, colIndex(tb, "events")) == 0 {
		t.Error("replay ran no events")
	}
	if cell(t, tb, 0, colIndex(tb, "peak-fabric-util")) <= 0 {
		t.Error("fabric carried no traffic")
	}
}

func TestE5Shape(t *testing.T) {
	tb := E5ConfigSweep()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	fm := colIndex(tb, "flowmods")
	// Reactive forwarding must cost more FlowMods than proactive MAC.
	if cell(t, tb, 1, fm) <= cell(t, tb, 0, fm) {
		t.Errorf("reactive flowmods %s not above proactive %s", tb.Rows[1][fm], tb.Rows[0][fm])
	}
	// Every config moves the same workload.
	flows := colIndex(tb, "flows")
	for i := 1; i < len(tb.Rows); i++ {
		if tb.Rows[i][flows] != tb.Rows[0][flows] {
			t.Error("configs saw different workloads")
		}
	}
}

func TestE6Shape(t *testing.T) {
	tb := E6Ablations()
	const variants = 4 // heap, calendar, wheel (incremental) + heap full-recompute
	if len(tb.Rows) != 2*variants {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Determinism: within a workload, all variants process identical
	// event and rate-change counts — including across queue backends.
	ev := colIndex(tb, "events")
	rc := colIndex(tb, "rate-changes")
	for _, base := range []int{0, variants} {
		for i := base + 1; i < base+variants; i++ {
			if tb.Rows[i][ev] != tb.Rows[base][ev] || tb.Rows[i][rc] != tb.Rows[base][rc] {
				t.Errorf("variant %s diverged from %s", tb.Rows[i][1], tb.Rows[base][1])
			}
		}
	}
}

func TestE7Shape(t *testing.T) {
	fractions := []float64{0, 0.5, 1}
	tb := E7HybridFidelity(fractions)
	if len(tb.Rows) != 1+len(fractions) {
		t.Fatalf("rows = %d, want reference + %d arms", len(tb.Rows), len(fractions))
	}
	parity := colIndex(tb, "pkt-parity")
	relerr := colIndex(tb, "fct-relerr")
	events := colIndex(tb, "events")
	// The 100% arm must reproduce the standalone packet engine exactly.
	last := len(tb.Rows) - 1
	if tb.Rows[last][parity] != "identical" {
		t.Errorf("100%% arm parity = %q, want identical", tb.Rows[last][parity])
	}
	if cell(t, tb, last, relerr) != 0 {
		t.Errorf("100%% arm fct-relerr = %s, want 0", tb.Rows[last][relerr])
	}
	// Work grows with the packet-level share.
	for i := 2; i <= last; i++ {
		if cell(t, tb, i, events) <= cell(t, tb, i-1, events) {
			t.Errorf("events not increasing with fidelity: row %d %s <= row %d %s",
				i, tb.Rows[i][events], i-1, tb.Rows[i-1][events])
		}
	}
	// Accuracy improves (weakly) from pure flow-level to pure packet.
	if cell(t, tb, last, relerr) > cell(t, tb, 1, relerr) {
		t.Errorf("relerr worsened with fidelity: %s -> %s", tb.Rows[1][relerr], tb.Rows[last][relerr])
	}
}

func TestE8Shape(t *testing.T) {
	tb := E8Resilience(
		[]simtime.Duration{500 * simtime.Millisecond},
		[]simtime.Duration{200 * simtime.Millisecond},
	)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want one per policy", len(tb.Rows))
	}
	failures := colIndex(tb, "failures")
	reroutes := colIndex(tb, "reroutes")
	stretch := colIndex(tb, "fct-stretch")
	churn := colIndex(tb, "rule-churn")
	for i := range tb.Rows {
		if cell(t, tb, i, failures) == 0 {
			t.Errorf("row %d saw no failures", i)
		}
		if cell(t, tb, i, reroutes) == 0 {
			t.Errorf("row %d never rerouted", i)
		}
		if cell(t, tb, i, stretch) < 1 {
			t.Errorf("row %d fct-stretch %s < 1: failures made flows faster?", i, tb.Rows[i][stretch])
		}
		if cell(t, tb, i, churn) == 0 {
			t.Errorf("row %d reconverged without rule churn", i)
		}
	}
}

// TestE9Shape pins the scaling table's structure: the fat-tree cell
// sweeps queue backends at uniform balance, the skewed-star cell sweeps
// balancing modes, and every arm holds byte-parity with its serial
// reference.
func TestE9Shape(t *testing.T) {
	tb := E9ShardScaling([]int{4}, []int{1, 4})
	// fat-tree: 2 queues × 2 shard counts; skewed star: uniform × {1,4}
	// plus weighted and steal at 4 shards only.
	if len(tb.Rows) != 4+4 {
		t.Fatalf("rows = %d, want 8", len(tb.Rows))
	}
	topo := colIndex(tb, "topo")
	balance := colIndex(tb, "balance")
	parity := colIndex(tb, "parity")
	ev := colIndex(tb, "events")
	seen := map[string]bool{}
	for i, row := range tb.Rows {
		if row[parity] != "identical" {
			t.Errorf("row %d (%s/%s) parity = %q", i, row[topo], row[balance], row[parity])
		}
		if cell(t, tb, i, ev) == 0 {
			t.Errorf("row %d ran no events", i)
		}
		if row[topo] == "star-of-trees" {
			seen[row[balance]] = true
		}
	}
	for _, b := range []string{"uniform", "weighted", "steal"} {
		if !seen[b] {
			t.Errorf("skewed-star cell missing a %q arm", b)
		}
	}
}

// TestE10Shape pins the degraded-link table's structure and physics: the
// lossy arms corrupt frames and retransmit at packet level, the fluid
// engine folds loss into FCT inflation without per-frame drops, the
// adaptive-rate model degrades with zero corruption — and every
// shard/backend/balancing arm holds byte-parity with its serial heap
// reference, models enabled.
func TestE10Shape(t *testing.T) {
	tb := runSpecs(Options{}, []*spec{e10Spec(Options{}, e10QuickModels(), []int{1, 4})})[0]
	// Per model: flow {1,4} + packet {1,4}×{heap,wheel}+steal + hybrid
	// {heap,wheel} = 9 rows; the quick grid has two models.
	if len(tb.Rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(tb.Rows))
	}
	model := colIndex(tb, "model")
	fid := colIndex(tb, "fidelity")
	parity := colIndex(tb, "parity")
	corrupted := colIndex(tb, "corrupted")
	retx := colIndex(tb, "retx-ratio")
	completed := colIndex(tb, "completed")
	stretch := colIndex(tb, "fct-stretch")
	for i, r := range tb.Rows {
		if r[parity] != "identical" {
			t.Errorf("row %d (%s/%s) parity = %q", i, r[model], r[fid], r[parity])
		}
		if cell(t, tb, i, completed) == 0 {
			t.Errorf("row %d completed no flows", i)
		}
		switch {
		case r[model] == "bernoulli" && r[fid] != "flow":
			// Packet-granular engines drop corrupted frames and retransmit.
			if cell(t, tb, i, corrupted) == 0 {
				t.Errorf("row %d (%s/%s): lossy run corrupted nothing", i, r[model], r[fid])
			}
			if cell(t, tb, i, retx) == 0 {
				t.Errorf("row %d (%s/%s): lossy run never retransmitted", i, r[model], r[fid])
			}
		case r[model] == "bernoulli" && r[fid] == "flow":
			// The fluid engine has no frames to corrupt; loss shows up as
			// Mathis-capped throughput, i.e. FCT stretch.
			if cell(t, tb, i, corrupted) != 0 {
				t.Errorf("row %d: flow engine counted corrupted frames", i)
			}
			if cell(t, tb, i, stretch) <= 1 {
				t.Errorf("row %d: lossy flow run fct-stretch %s, want > 1", i, r[stretch])
			}
		case r[model] == "adaptive-rate":
			if cell(t, tb, i, corrupted) != 0 {
				t.Errorf("row %d: adaptive-rate corrupted frames", i)
			}
			if cell(t, tb, i, stretch) < 1 {
				t.Errorf("row %d: adaptive-rate fct-stretch %s < 1", i, r[stretch])
			}
		}
	}
}

// TestE10ParallelDeterminism: the degraded-link table is byte-identical
// for any worker count (no wall columns, so the comparison is exact).
func TestE10ParallelDeterminism(t *testing.T) {
	mk := func(par int) string {
		o := Options{Parallel: par, Now: frozenClock}
		return renderTables([]*Table{runSpecs(o, []*spec{e10Spec(o, e10QuickModels()[:1], []int{1, 4})})[0]})
	}
	seq, par := mk(1), mk(4)
	if seq != par {
		t.Fatalf("E10 diverged across worker counts:\n%s\nvs\n%s", seq, par)
	}
}

// TestE8ParallelDeterminism: the resilience table is byte-identical for
// any worker count — the scenario half of the parallel-determinism
// property, on the frozen-clock harness.
func TestE8ParallelDeterminism(t *testing.T) {
	mtbfs := []simtime.Duration{500 * simtime.Millisecond, 2 * simtime.Second}
	recs := []simtime.Duration{200 * simtime.Millisecond}
	seq := renderTables([]*Table{E8With(Options{Parallel: 1, Now: frozenClock}, mtbfs, recs)})
	par := renderTables([]*Table{E8With(Options{Parallel: 4, Now: frozenClock}, mtbfs, recs)})
	if seq != par {
		t.Fatalf("E8 diverged across worker counts:\n%s\nvs\n%s", seq, par)
	}
}

// frozenClock makes wall-time columns deterministic so tables can be
// compared byte-for-byte across worker counts.
func frozenClock() time.Time { return time.Time{} }

// renderTables prints tables the way cmd/horsebench does.
func renderTables(tables []*Table) string {
	var sb strings.Builder
	for _, tb := range tables {
		tb.Fprint(func(format string, args ...interface{}) {
			fmt.Fprintf(&sb, format, args...)
		})
	}
	return sb.String()
}

// TestParallelDeterminism is the tentpole's core contract: the Quick suite
// under one worker and under many workers must produce byte-identical
// result tables (wall-clock columns pinned by a frozen test clock).
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full Quick suite twice; skipped in -short")
	}
	seq := renderTables(QuickWith(Options{Parallel: 1, Now: frozenClock}))
	par := renderTables(QuickWith(Options{Parallel: 8, Now: frozenClock}))
	if seq != par {
		t.Fatalf("-parallel 1 and -parallel 8 diverged:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "== E1:") || !strings.Contains(seq, "== E8:") {
		t.Fatalf("suite missing experiments:\n%s", seq)
	}
}

// TestParallelDeterminismSmall is the cheap always-on variant: a grid
// experiment with enough cells to interleave.
func TestParallelDeterminismSmall(t *testing.T) {
	seq := renderTables([]*Table{E2With(Options{Parallel: 1, Now: frozenClock}, []int{4, 8}, []float64{200, 500})})
	par := renderTables([]*Table{E2With(Options{Parallel: 4, Now: frozenClock}, []int{4, 8}, []float64{200, 500})})
	if seq != par {
		t.Fatalf("E2 diverged across worker counts:\n%s\nvs\n%s", seq, par)
	}
}

func TestReportJSON(t *testing.T) {
	tables := []*Table{{
		ID: "EX", Title: "example", Columns: []string{"a"},
		Rows: [][]string{{"1"}}, Notes: []string{"n"},
	}}
	var buf bytes.Buffer
	if err := NewReport(tables, 4, 1500*time.Microsecond).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Schema != ReportSchema || got.Parallel != 4 || got.WallMS != 1.5 {
		t.Errorf("report meta = %+v", got)
	}
	if len(got.Tables) != 1 || got.Tables[0].ID != "EX" || got.Tables[0].Rows[0][0] != "1" {
		t.Errorf("report tables = %+v", got.Tables)
	}
}

func TestTablePrint(t *testing.T) {
	tb := &Table{
		ID: "T", Title: "test", Columns: []string{"a", "bb"},
		Rows:  [][]string{{"1", "2"}},
		Notes: []string{"n"},
	}
	var sb strings.Builder
	tb.Fprint(func(format string, args ...interface{}) {
		fmt.Fprintf(&sb, format, args...)
	})
	out := sb.String()
	for _, want := range []string{"== T: test ==", "a", "bb", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
