// Package ixp builds the evaluation substrate of the paper: an SDN model
// of a large Internet Exchange Point. The paper proposes to model "the
// topology of one of the largest IXPs" and replay "real data from the IXP
// itself"; as public IXP topologies and member traces are not
// redistributable, this package generates a parametric fabric with the
// same structure — member routers attached to edge switches, a core layer
// interconnecting the edges, and a route server — and gravity-model member
// traffic with heavy-tailed member weights and diurnal modulation
// (well-documented properties of IXP traffic). DESIGN.md records the
// substitution.
package ixp

import (
	"fmt"
	"math/rand"

	"horse/internal/netgraph"
	"horse/internal/simtime"
	"horse/internal/traffic"
)

// Profile parameterizes an IXP fabric. The zero value is not useful; use
// one of the presets or fill all fields.
type Profile struct {
	// Members is the number of member routers (hosts in the model).
	Members int
	// EdgeSwitches is the number of access switches members attach to.
	EdgeSwitches int
	// CoreSwitches is the number of core spine switches.
	CoreSwitches int
	// MemberPortBps is the member access-port speed.
	MemberPortBps float64
	// EdgeUplinkBps is the edge→core trunk speed.
	EdgeUplinkBps float64
	// LinkDelay applies to all fabric links.
	LinkDelay simtime.Duration
	// RouteServer adds a route-server host on the first edge switch,
	// as at real IXPs (BGP sessions terminate there).
	RouteServer bool
	// Seed drives member weight generation.
	Seed int64
	// WeightAlpha is the Pareto tail exponent for member weights (a few
	// content-heavy members dominate, like real IXP member mixes).
	WeightAlpha float64
}

// SmallIXP is a laptop-scale profile for tests and examples.
func SmallIXP() Profile {
	return Profile{
		Members: 40, EdgeSwitches: 4, CoreSwitches: 2,
		MemberPortBps: 1e9, EdgeUplinkBps: 1e10,
		LinkDelay: 50 * simtime.Microsecond, RouteServer: true,
		Seed: 1, WeightAlpha: 1.2,
	}
}

// LargeIXP approximates an AMS-IX/DE-CIX-class fabric: hundreds of
// members, tens of edges, a 100G core.
func LargeIXP(members int) Profile {
	edges := members / 20
	if edges < 4 {
		edges = 4
	}
	return Profile{
		Members: members, EdgeSwitches: edges, CoreSwitches: 4,
		MemberPortBps: 1e10, EdgeUplinkBps: 1e11,
		LinkDelay: 50 * simtime.Microsecond, RouteServer: true,
		Seed: 1, WeightAlpha: 1.15,
	}
}

// Fabric is a built IXP topology plus its member inventory.
type Fabric struct {
	Topo *netgraph.Topology
	// Members lists the member router host IDs in creation order.
	Members []netgraph.NodeID
	// Weights are the gravity masses of members (same order).
	Weights []float64
	// Edges and Cores list the switch IDs.
	Edges []netgraph.NodeID
	Cores []netgraph.NodeID
	// RouteServer is the route-server host (-1 if disabled).
	RouteServer netgraph.NodeID

	profile Profile
}

// Build constructs the fabric: each edge connects to every core (full
// bipartite edge–core mesh), and members attach round-robin to edges.
func Build(p Profile) (*Fabric, error) {
	if p.Members < 2 || p.EdgeSwitches < 1 || p.CoreSwitches < 1 {
		return nil, fmt.Errorf("ixp: degenerate profile %+v", p)
	}
	if p.MemberPortBps <= 0 || p.EdgeUplinkBps <= 0 {
		return nil, fmt.Errorf("ixp: non-positive link speeds")
	}
	topo := netgraph.New()
	f := &Fabric{Topo: topo, RouteServer: -1, profile: p}

	for i := 0; i < p.CoreSwitches; i++ {
		f.Cores = append(f.Cores, topo.AddSwitch(fmt.Sprintf("core%d", i)))
	}
	for i := 0; i < p.EdgeSwitches; i++ {
		e := topo.AddSwitch(fmt.Sprintf("edge%d", i))
		f.Edges = append(f.Edges, e)
		for _, c := range f.Cores {
			topo.Connect(e, c, p.EdgeUplinkBps, p.LinkDelay)
		}
	}
	for i := 0; i < p.Members; i++ {
		m := topo.AddHost(fmt.Sprintf("member%d", i))
		f.Members = append(f.Members, m)
		edge := f.Edges[i%len(f.Edges)]
		topo.Connect(edge, m, p.MemberPortBps, p.LinkDelay)
	}
	if p.RouteServer {
		f.RouteServer = topo.AddHost("route-server")
		topo.Connect(f.Edges[0], f.RouteServer, p.MemberPortBps, p.LinkDelay)
	}

	alpha := p.WeightAlpha
	if alpha <= 0 {
		alpha = 1.2
	}
	f.Weights = traffic.ParetoWeights(p.Members, alpha, p.Seed)
	return f, nil
}

// PeeringMatrix returns a gravity traffic matrix over the members scaled
// to aggregate totalBps, masked by a peering density: each ordered member
// pair peers with probability density (deterministic per seed). density 1
// is a full mesh (route-server style multilateral peering).
func (f *Fabric) PeeringMatrix(totalBps, density float64) *traffic.Matrix {
	m := traffic.Gravity(f.Members, f.Weights, totalBps)
	if density >= 1 {
		return m
	}
	rng := rand.New(rand.NewSource(f.profile.Seed + 7))
	var masked, total float64
	for i := range m.Rates {
		for j := range m.Rates[i] {
			total += m.Rates[i][j]
			if i != j && rng.Float64() >= density {
				masked += m.Rates[i][j]
				m.Rates[i][j] = 0
			}
		}
	}
	// Rescale so the aggregate stays at totalBps despite masking.
	if total > masked && masked > 0 {
		scale := total / (total - masked)
		for i := range m.Rates {
			for j := range m.Rates[i] {
				m.Rates[i][j] *= scale
			}
		}
	}
	return m
}

// ReplayTrace produces the paper's replay workload: the peering matrix
// modulated by a 24h diurnal curve, emitted as epoch CBR flows.
func (f *Fabric) ReplayTrace(totalBps, density float64, epoch, horizon simtime.Duration, seed int64) traffic.Trace {
	m := f.PeeringMatrix(totalBps, density)
	g := traffic.NewGenerator(seed)
	return g.Replay(m, traffic.ReplayConfig{
		Epoch:   epoch,
		Horizon: horizon,
		Mod: traffic.Diurnal{
			Base: 1, Amplitude: 0.5, Period: 24 * simtime.Hour,
		},
		// Keep epoch flow counts bounded: entries below 0.01% of a member
		// port are noise.
		MinRateBps: f.profile.MemberPortBps * 1e-4,
	})
}
