package ixp

import (
	"context"
	"math"
	"testing"

	"horse/internal/dataplane"
	"horse/internal/flowsim"
	"horse/internal/netgraph"
	"horse/internal/simtime"

	"horse/internal/controller"
)

func TestBuildSmall(t *testing.T) {
	f, err := Build(SmallIXP())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Members) != 40 || len(f.Edges) != 4 || len(f.Cores) != 2 {
		t.Fatalf("inventory: %d members %d edges %d cores", len(f.Members), len(f.Edges), len(f.Cores))
	}
	if f.RouteServer < 0 {
		t.Error("route server missing")
	}
	// Hosts = members + route server.
	if got := len(f.Topo.Hosts()); got != 41 {
		t.Errorf("hosts = %d", got)
	}
	// Every member reaches every other member.
	if !f.Topo.Reachable(f.Members[0], f.Members[39]) {
		t.Error("fabric not connected")
	}
	// Edge-core mesh: every edge has CoreSwitches trunk ports + members.
	for _, e := range f.Edges {
		n := f.Topo.Neighbors(e)
		cores := 0
		for _, nb := range n {
			if f.Topo.Node(nb).Kind == netgraph.KindSwitch {
				cores++
			}
		}
		if cores != 2 {
			t.Errorf("edge %d connects to %d cores, want 2", e, cores)
		}
	}
}

func TestBuildDegenerate(t *testing.T) {
	if _, err := Build(Profile{Members: 1, EdgeSwitches: 1, CoreSwitches: 1, MemberPortBps: 1, EdgeUplinkBps: 1}); err == nil {
		t.Error("degenerate profile accepted")
	}
	p := SmallIXP()
	p.MemberPortBps = 0
	if _, err := Build(p); err == nil {
		t.Error("zero port speed accepted")
	}
}

func TestLargeProfileScales(t *testing.T) {
	p := LargeIXP(400)
	f, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Members) != 400 {
		t.Errorf("members = %d", len(f.Members))
	}
	if len(f.Edges) != 20 {
		t.Errorf("edges = %d", len(f.Edges))
	}
	if d := f.Topo.Diameter(); d > 4 {
		t.Errorf("diameter = %d; IXP fabrics are flat", d)
	}
}

func TestPeeringMatrixDensity(t *testing.T) {
	f, err := Build(SmallIXP())
	if err != nil {
		t.Fatal(err)
	}
	full := f.PeeringMatrix(1e10, 1)
	if math.Abs(full.Total()-1e10) > 1 {
		t.Errorf("full mesh total = %g", full.Total())
	}
	sparse := f.PeeringMatrix(1e10, 0.3)
	// Total is rescaled to the target.
	if math.Abs(sparse.Total()-1e10) > 1e10*0.01 {
		t.Errorf("sparse total = %g, want ~1e10", sparse.Total())
	}
	// Sparse matrix has fewer nonzero entries.
	count := func(m [][]float64) int {
		n := 0
		for _, row := range m {
			for _, v := range row {
				if v > 0 {
					n++
				}
			}
		}
		return n
	}
	if count(sparse.Rates) >= count(full.Rates) {
		t.Error("density mask did not reduce peerings")
	}
	// Deterministic per seed.
	sparse2 := f.PeeringMatrix(1e10, 0.3)
	for i := range sparse.Rates {
		for j := range sparse.Rates[i] {
			if sparse.Rates[i][j] != sparse2.Rates[i][j] {
				t.Fatal("peering mask not deterministic")
			}
		}
	}
}

func TestReplayTraceShape(t *testing.T) {
	f, err := Build(SmallIXP())
	if err != nil {
		t.Fatal(err)
	}
	tr := f.ReplayTrace(5e9, 0.5, simtime.Hour, 6*simtime.Hour, 3)
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	epochs := map[simtime.Time]bool{}
	for _, d := range tr {
		epochs[d.Start] = true
		if d.RateBps <= 0 {
			t.Fatal("zero-rate epoch flow")
		}
	}
	if len(epochs) != 6 {
		t.Errorf("epochs = %d, want 6", len(epochs))
	}
}

func TestIXPEndToEndReplay(t *testing.T) {
	// A complete small IXP run: fabric, ECMP fabric control, 2h diurnal
	// replay at hourly epochs.
	f, err := Build(SmallIXP())
	if err != nil {
		t.Fatal(err)
	}
	sim := flowsim.New(flowsim.Config{
		Topology:   f.Topo,
		Controller: controller.NewChain(&controller.ECMPLoadBalancer{}),
		Miss:       dataplane.MissController,
		StatsEvery: 10 * simtime.Minute,
	})
	sim.Load(f.ReplayTrace(2e9, 0.5, simtime.Hour, 2*simtime.Hour, 3))
	col, err := sim.Run(context.Background(), simtime.Time(3*simtime.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Flows()) == 0 {
		t.Fatal("no flows recorded")
	}
	completed := 0
	for _, fr := range col.Flows() {
		if fr.Completed {
			completed++
		}
	}
	if completed < len(col.Flows())*9/10 {
		t.Errorf("only %d/%d epoch flows completed", completed, len(col.Flows()))
	}
	// The fabric must have carried roughly epoch×rate traffic.
	var sent float64
	for _, fr := range col.Flows() {
		sent += fr.SentBits
	}
	if sent <= 0 {
		t.Error("no traffic carried")
	}
}
