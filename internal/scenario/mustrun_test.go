package scenario

import (
	"context"

	"horse/internal/simtime"
	"horse/internal/stats"
)

// mustRun drives an engine through the context-aware Run API — the
// replacement for the deprecated RunUntil — under a background context.
// Background contexts cannot cancel, so a returned error is a bug and
// panics the test.
func mustRun(sim interface {
	Run(context.Context, simtime.Time) (*stats.Collector, error)
}, until simtime.Time) *stats.Collector {
	col, err := sim.Run(context.Background(), until)
	if err != nil {
		panic(err)
	}
	return col
}
